package netsim

import (
	"testing"

	"repro/internal/mesh"
	"repro/internal/route"
	"repro/internal/sim"
	"repro/internal/workload"
)

func TestRouteCacheRoundTrip(t *testing.T) {
	rc := newRouteCache(9) // 3x3 grid
	if d, ti := rc.get(0, 8); d != nil || ti != nil {
		t.Fatal("empty cache returned a path")
	}
	dirs := []mesh.Direction{mesh.East, mesh.East, mesh.South}
	tiles := []mesh.Coord{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 2, Y: 0}, {X: 2, Y: 1}}
	rc.put(0, 5, dirs, tiles)
	gd, gt := rc.get(0, 5)
	if len(gd) != 3 || len(gt) != 4 {
		t.Fatalf("got %d dirs / %d tiles, want 3 / 4", len(gd), len(gt))
	}
	for i := range dirs {
		if gd[i] != dirs[i] {
			t.Errorf("dir %d = %v, want %v", i, gd[i], dirs[i])
		}
	}
	for i := range tiles {
		if gt[i] != tiles[i] {
			t.Errorf("tile %d = %v, want %v", i, gt[i], tiles[i])
		}
	}
	// Other pairs stay misses; the reverse direction is its own entry.
	if d, _ := rc.get(5, 0); d != nil {
		t.Error("reverse pair should miss")
	}
	// Arena growth must not corrupt previously returned spans.
	for i := 0; i < 64; i++ {
		rc.put(1, 2+i%6, dirs, tiles)
	}
	gd2, _ := rc.get(0, 5)
	for i := range dirs {
		if gd2[i] != dirs[i] {
			t.Fatalf("span corrupted after arena growth at dir %d", i)
		}
	}
}

func TestRouteCachePutRejectsMalformed(t *testing.T) {
	rc := newRouteCache(4)
	rc.put(0, 1, nil, []mesh.Coord{{}})
	rc.put(0, 1, []mesh.Direction{mesh.East}, []mesh.Coord{{}}) // tiles != dirs+1
	if d, _ := rc.get(0, 1); d != nil {
		t.Error("malformed put was stored")
	}
}

// TestRouteCacheEnabledPerPolicy pins the capability gating end to
// end: a simulator built with a deterministic policy owns a route
// cache, an adaptive one must not (its paths depend on live loads).
func TestRouteCacheEnabledPerPolicy(t *testing.T) {
	grid, err := mesh.NewGrid(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	prog := workload.QFT(9)
	for _, tc := range []struct {
		p      route.Policy
		cached bool
	}{
		{nil, true}, // nil resolves to the deterministic default
		{route.XYOrder(), true},
		{route.ZigZag(), true},
		{route.LeastCongested(), false},
	} {
		cfg := DefaultConfig(grid, HomeBase, 8, 8, 4)
		cfg.Route = tc.p
		s := &simulator{cfg: cfg, engine: sim.New()}
		if err := s.build(prog); err != nil {
			t.Fatal(err)
		}
		if got := s.routes != nil; got != tc.cached {
			t.Errorf("policy %s: cache present = %v, want %v", route.NameOf(tc.p), got, tc.cached)
		}
	}
}
