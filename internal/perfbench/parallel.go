package perfbench

import (
	"context"
	"testing"
	"time"

	"repro/internal/mesh"
	"repro/internal/sim"
	"repro/internal/workload"
)

// The parallel-engine benchmark replays a QFT-shaped communication
// trace directly on sim.Partitioned: every sampled QFT op becomes a
// channel whose batch hops tile to tile along its XY path, one event
// per hop, with the hop latency equal to the engine's lookahead — the
// tightest window the conservative protocol admits.  Unlike the full
// simulator (whose credit, scheduler and RNG couplings serialize it
// onto one region; see internal/netsim/parallel.go), the replay has no
// zero-delay cross-tile interactions, so it decomposes across row
// bands and measures the real concurrency of the windowed barrier
// engine.  The speedup of partitions=N over partitions=1 here is the
// engine's, not the model's.

// ParallelQFTEdges are the mesh edge lengths the parallel replay
// benchmark runs at.
var ParallelQFTEdges = []int{16, 32}

// ParallelQFTPartitions are the region counts of the parallel replay
// benchmark; 1 is the serial baseline the speedups are computed
// against.
var ParallelQFTPartitions = []int{1, 2, 4, 8}

// replayChannels caps how many QFT ops are replayed as channels (the
// full 16x16 QFT has 32640 ops; replaying a stride-sampled subset keeps
// one iteration in the milliseconds while preserving the workload's
// distance mix).
const replayChannels = 2048

// replayHopLat is the replay's hop latency and the engine's lookahead:
// hops are exactly one window apart, the conservative protocol's
// hardest cadence.
const replayHopLat = 5 * time.Microsecond

// replayStagger spreads channel launches over this many hop slots so
// the event population ramps instead of spiking in the first window.
const replayStagger = 16

// replayWorkRounds sizes the per-event computation (an xorshift mix),
// standing in for the per-event model work of the full simulator.
const replayWorkRounds = 256

// replayWork is the deterministic per-hop computation; its value is
// folded into the per-tile checksum so the equivalence assertion covers
// execution, not just event counts.
func replayWork(seed uint64) uint64 {
	x := seed | 1
	for i := 0; i < replayWorkRounds; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
	}
	return x
}

// replay is one configured trace: the partition, the per-channel hop
// paths, and the per-tile observables of a run.  Tiles are owned by
// exactly one region (row bands), and every hop event executes in the
// owner of its tile, so the regions write disjoint index ranges of
// counts/sums — race-free by construction.
type replay struct {
	grid   mesh.Grid
	part   mesh.Partition
	engine *sim.Partitioned
	paths  [][]mesh.Coord
	counts []uint64
	sums   []uint64
}

// xyPath is the dimension-order walk from src to dst, inclusive.
func xyPath(src, dst mesh.Coord) []mesh.Coord {
	path := []mesh.Coord{src}
	c := src
	for c.X != dst.X {
		if dst.X > c.X {
			c.X++
		} else {
			c.X--
		}
		path = append(path, c)
	}
	for c.Y != dst.Y {
		if dst.Y > c.Y {
			c.Y++
		} else {
			c.Y--
		}
		path = append(path, c)
	}
	return path
}

// qftPaths stride-samples the QFT op list into at most replayChannels
// hop paths across the grid (qubit i lives on tile i).
func qftPaths(g mesh.Grid) [][]mesh.Coord {
	ops := workload.QFT(g.Tiles()).Ops
	stride := len(ops) / replayChannels
	if stride < 1 {
		stride = 1
	}
	var paths [][]mesh.Coord
	for i := 0; i < len(ops) && len(paths) < replayChannels; i += stride {
		paths = append(paths, xyPath(g.CoordOf(ops[i].A), g.CoordOf(ops[i].B)))
	}
	return paths
}

// newReplay builds the partitioned engine for one run and schedules
// every channel's launch into the region owning its first hop.
func newReplay(b *testing.B, g mesh.Grid, paths [][]mesh.Coord, partitions int) *replay {
	b.Helper()
	part, err := mesh.RowBands(g, partitions)
	if err != nil {
		b.Fatal(err)
	}
	eng, err := sim.NewPartitioned(part.Regions(), replayHopLat)
	if err != nil {
		b.Fatal(err)
	}
	r := &replay{
		grid:   g,
		part:   part,
		engine: eng,
		paths:  paths,
		counts: make([]uint64, g.Tiles()),
		sums:   make([]uint64, g.Tiles()),
	}
	for k, path := range paths {
		k, path := k, path
		start := time.Duration(k%replayStagger+1) * replayHopLat
		r.engine.Region(part.RegionOf(path[0])).At(start, func() { r.hop(path, 0) })
	}
	return r
}

// hop executes one batch arrival: per-tile bookkeeping plus the model
// work, then forwards the batch one hop (cross-band hops go through
// Send and the barrier merge).
func (r *replay) hop(path []mesh.Coord, i int) {
	c := path[i]
	idx := r.grid.Index(c)
	r.counts[idx]++
	r.sums[idx] ^= replayWork(uint64(idx)<<20 | uint64(i))
	if i+1 == len(path) {
		return
	}
	cur := r.part.RegionOf(c)
	tgt := r.part.RegionOf(path[i+1])
	t := r.engine.Region(cur).Now() + replayHopLat
	next := func() { r.hop(path, i+1) }
	if tgt == cur {
		r.engine.Region(cur).At(t, next)
	} else {
		r.engine.Region(cur).Send(tgt, t, next)
	}
}

// ParallelQFT returns a benchmark replaying the QFT trace of an
// edge x edge mesh on the partitioned engine with the given region
// count.  One iteration is one complete replay; the first iteration is
// pinned tile for tile (event counts and work checksums) against a
// serial replay of the same trace, so the reported throughput is only
// ever measured over runs proven equivalent.  The events/sec metric at
// partitions=N over partitions=1 is the engine's parallel speedup.
func ParallelQFT(edge, partitions int) func(*testing.B) {
	return func(b *testing.B) {
		g, err := mesh.NewGrid(edge, edge)
		if err != nil {
			b.Fatal(err)
		}
		paths := qftPaths(g)
		ctx := context.Background()

		// Serial reference, off the clock.
		ref := newReplay(b, g, paths, 1)
		if _, err := ref.engine.Run(ctx); err != nil {
			b.Fatal(err)
		}
		events := ref.engine.Processed()
		if events == 0 {
			b.Fatal("replay executed no events")
		}

		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r := newReplay(b, g, paths, partitions)
			if _, err := r.engine.Run(ctx); err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.StopTimer()
				if r.engine.Processed() != events {
					b.Fatalf("partitions=%d processed %d events, serial %d",
						partitions, r.engine.Processed(), events)
				}
				for idx := range ref.counts {
					if r.counts[idx] != ref.counts[idx] || r.sums[idx] != ref.sums[idx] {
						b.Fatalf("partitions=%d diverged from serial at tile %d", partitions, idx)
					}
				}
				b.StartTimer()
			}
		}
		b.StopTimer()
		reportEventRate(b, events)
	}
}
