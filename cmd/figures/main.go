// Command figures regenerates every table and figure of the paper
// "Interconnection Networks for Scalable Quantum Computers" (ISCA 2006)
// from the models in this repository.
//
// Usage:
//
//	figures -fig all                # every table and figure, text output
//	figures -fig 8                  # Figure 8 (purification protocols)
//	figures -fig 16 -grid 16        # Figure 16 at the paper's full scale
//	figures -fig 10 -format csv     # machine-readable output
//
// Figures: table1, table2, claims, 8, 9, 10, 11, 12, 16, memm, all.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/figures"
	"repro/internal/report"

	"repro/qnet"
	"repro/qnet/channel"
)

func main() {
	var (
		fig     = flag.String("fig", "all", "which figure to regenerate: table1, table2, claims, 8, 9, 10, 11, 12, 16, memm, all")
		format  = flag.String("format", "text", "output format: text or csv")
		grid    = flag.Int("grid", 8, "mesh edge length for figure 16 (paper: 16)")
		area    = flag.Int("area", 48, "per-tile resource budget t+g+p for figure 16")
		hops    = flag.Int("hops", 10, "path length in hops for figure 12")
		noPlots = flag.Bool("no-plots", false, "suppress ASCII plots in text mode")
	)
	flag.Parse()

	if err := run(os.Stdout, *fig, *format, *grid, *area, *hops, *noPlots); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, fig, format string, grid, area, hops int, noPlots bool) error {
	if format != "text" && format != "csv" {
		return fmt.Errorf("unknown format %q", format)
	}
	emit := func(t *report.Table, p *report.Plot) error {
		if format == "csv" {
			return t.WriteCSV(w)
		}
		if err := t.WriteText(w); err != nil {
			return err
		}
		if p != nil && !noPlots {
			fmt.Fprintln(w)
			if err := p.Write(w); err != nil {
				return err
			}
		}
		fmt.Fprintln(w)
		return nil
	}

	base := qnet.IonTrap2006()
	wanted := strings.Split(fig, ",")
	has := func(name string) bool {
		for _, f := range wanted {
			if f == name || f == "all" {
				return true
			}
		}
		return false
	}
	matched := false

	if has("table1") {
		matched = true
		if err := emit(figures.Table1(base), nil); err != nil {
			return err
		}
	}
	if has("table2") {
		matched = true
		if err := emit(figures.Table2(base), nil); err != nil {
			return err
		}
	}
	if has("claims") {
		matched = true
		if err := emit(figures.Claims(base), nil); err != nil {
			return err
		}
	}
	if has("8") {
		matched = true
		t, p := figures.Fig8(base, 25)
		if err := emit(t, p); err != nil {
			return err
		}
	}
	if has("9") {
		matched = true
		t, p := figures.Fig9(base, 70)
		if err := emit(t, p); err != nil {
			return err
		}
	}
	if has("10") {
		matched = true
		t, p := figures.Fig10(channel.DefaultDistribution(base), false)
		if err := emit(t, p); err != nil {
			return err
		}
	}
	if has("11") {
		matched = true
		t, p := figures.Fig10(channel.DefaultDistribution(base), true)
		if err := emit(t, p); err != nil {
			return err
		}
	}
	if has("12") {
		matched = true
		t, p := figures.Fig12(base, hops)
		if err := emit(t, p); err != nil {
			return err
		}
	}
	if has("16") {
		matched = true
		cfg := figures.DefaultFig16Config()
		cfg.GridSize = grid
		cfg.Area = area
		data, err := figures.Fig16(cfg)
		if err != nil {
			return err
		}
		if err := emit(data.Table(), data.Plot()); err != nil {
			return err
		}
	}
	if has("memm") {
		matched = true
		t, err := figures.MEMM(grid, 16, 16, 8)
		if err != nil {
			return err
		}
		if err := emit(t, nil); err != nil {
			return err
		}
	}
	if !matched {
		return fmt.Errorf("unknown figure %q (want table1, table2, claims, 8, 9, 10, 11, 12, 16, memm or all)", fig)
	}
	return nil
}
