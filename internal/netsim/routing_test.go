package netsim

import (
	"testing"

	"repro/internal/mesh"
	"repro/internal/route"
	"repro/internal/workload"
)

// twoQubitProgram is a single op between qubits a and b, so a HomeBase
// run performs exactly two channels (there and back) over known
// endpoints.
func twoQubitProgram(qubits, a, b int) workload.Program {
	return workload.Program{Name: "pair", Qubits: qubits, Ops: []workload.Op{{A: a, B: b}}}
}

// runTurns executes the program under the policy and returns the
// result plus the per-tile turn counts.
func runTurns(t *testing.T, grid mesh.Grid, p route.Policy, prog workload.Program) (Result, *Detail) {
	t.Helper()
	cfg := DefaultConfig(grid, HomeBase, 16, 16, 8)
	cfg.Route = p
	res, detail, err := RunDetailed(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	return res, detail
}

// TestTurnPenaltyChargedOncePerDirectionChange asserts, for every
// routing policy, that the simulator charges the ballistic turn
// penalty exactly once per direction change of the routed path: the
// run's total turn count equals (turns on the forward path + turns on
// the return path) × the batches per channel, and the per-node counts
// sum to the same total (each charge is counted at exactly one node).
func TestTurnPenaltyChargedOncePerDirectionChange(t *testing.T) {
	grid, err := mesh.NewGrid(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Row-major homes: qubit 0 at (0,0), qubit 15 at (3,3).  HomeBase
	// routes B to A's home and back.
	prog := twoQubitProgram(16, 0, 15)
	src := mesh.Coord{X: 3, Y: 3}
	dst := mesh.Coord{X: 0, Y: 0}
	const batches = 49 // level-2 Steane: pairs per logical teleport

	for _, p := range []route.Policy{nil, route.XYOrder(), route.YXOrder(), route.ZigZag()} {
		name := route.NameOf(p)
		policy := p
		if policy == nil {
			policy = route.Default()
		}
		there, err := policy.Route(grid, src, dst, nil)
		if err != nil {
			t.Fatal(err)
		}
		back, err := policy.Route(grid, dst, src, nil)
		if err != nil {
			t.Fatal(err)
		}
		want := uint64(route.Turns(there)+route.Turns(back)) * batches

		res, detail := runTurns(t, grid, p, prog)
		if res.Turns != want {
			t.Errorf("%s: Result.Turns = %d, want %d (%d+%d path turns × %d batches)",
				name, res.Turns, want, route.Turns(there), route.Turns(back), batches)
		}
		var perNode uint64
		for _, n := range detail.Turns {
			perNode += n
		}
		if perNode != res.Turns {
			t.Errorf("%s: per-node turn counts sum to %d, Result.Turns is %d — a turn was double- or un-counted",
				name, perNode, res.Turns)
		}
	}
}

// TestStraightLinePathsPayNoTurnPenalty asserts the zero-turn case:
// qubits in one row route straight under every policy (including the
// adaptive one, which has no legal detour on a straight line), so no
// turn is ever charged.
func TestStraightLinePathsPayNoTurnPenalty(t *testing.T) {
	grid, err := mesh.NewGrid(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	prog := twoQubitProgram(16, 0, 3) // homes (0,0) and (3,0): same row
	for _, p := range []route.Policy{nil, route.XYOrder(), route.YXOrder(), route.ZigZag(), route.LeastCongested()} {
		res, detail := runTurns(t, grid, p, prog)
		if res.Turns != 0 {
			t.Errorf("%s: straight-line run charged %d turns, want 0", route.NameOf(p), res.Turns)
		}
		for i, n := range detail.Turns {
			if n != 0 {
				t.Errorf("%s: node %v counted %d turns on a straight-line run",
					route.NameOf(p), grid.CoordOf(i), n)
			}
		}
	}
}

// TestAdaptivePolicyStaysMinimalUnderContention runs the adaptive
// policy on a full workload and asserts the minimality invariant the
// other tests check statically: pair-hops (path length × batches)
// match the dimension-order run exactly, even though the turn pattern
// may differ.
func TestAdaptivePolicyStaysMinimalUnderContention(t *testing.T) {
	grid, err := mesh.NewGrid(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	prog := workload.QFT(16)
	cfg := DefaultConfig(grid, HomeBase, 16, 16, 8)
	base, err := Run(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Route = route.LeastCongested()
	adaptive, err := Run(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	if adaptive.PairHops != base.PairHops {
		t.Errorf("adaptive PairHops = %d, xy = %d: adaptive routing must stay minimal",
			adaptive.PairHops, base.PairHops)
	}
	if adaptive.Channels != base.Channels || adaptive.PairsDelivered != base.PairsDelivered {
		t.Errorf("adaptive routing changed traffic totals: %+v vs %+v", adaptive, base)
	}
}
