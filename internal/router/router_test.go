package router

import (
	"testing"
	"time"

	"repro/internal/mesh"
	"repro/internal/phys"
	"repro/internal/sim"
)

func cfg() Config {
	return Config{Teleporters: 4, StorageUnits: 2, TurnCells: 20, Params: phys.IonTrap2006()}
}

func allDirs() []mesh.Direction {
	return []mesh.Direction{mesh.East, mesh.West, mesh.North, mesh.South}
}

func TestNewValidation(t *testing.T) {
	e := sim.New()
	c := cfg()
	c.Teleporters = 0
	if _, err := New(e, mesh.Coord{}, allDirs(), c); err == nil {
		t.Error("zero teleporters should fail")
	}
	c = cfg()
	c.StorageUnits = 0
	if _, err := New(e, mesh.Coord{}, allDirs(), c); err == nil {
		t.Error("zero storage should fail")
	}
	c = cfg()
	c.TurnCells = -1
	if _, err := New(e, mesh.Coord{}, allDirs(), c); err == nil {
		t.Error("negative turn distance should fail")
	}
}

func TestTeleporterSetsSplitEvenly(t *testing.T) {
	e := sim.New()
	n, err := New(e, mesh.Coord{X: 1, Y: 1}, allDirs(), cfg())
	if err != nil {
		t.Fatal(err)
	}
	if n.TeleporterSet(0).Capacity() != 2 || n.TeleporterSet(1).Capacity() != 2 {
		t.Errorf("sets have capacities %d/%d, want 2/2",
			n.TeleporterSet(0).Capacity(), n.TeleporterSet(1).Capacity())
	}
}

func TestSingleTeleporterStillGivesOnePerSet(t *testing.T) {
	e := sim.New()
	c := cfg()
	c.Teleporters = 1
	n, err := New(e, mesh.Coord{}, allDirs(), c)
	if err != nil {
		t.Fatal(err)
	}
	if n.TeleporterSet(0).Capacity() != 1 || n.TeleporterSet(1).Capacity() != 1 {
		t.Error("degenerate node should still have one teleporter per set")
	}
}

func TestStoragePerIncomingLink(t *testing.T) {
	e := sim.New()
	n, err := New(e, mesh.Coord{}, []mesh.Direction{mesh.East, mesh.South}, cfg())
	if err != nil {
		t.Fatal(err)
	}
	if n.Storage(mesh.East) == nil || n.Storage(mesh.South) == nil {
		t.Error("storage missing on declared incoming links")
	}
	if n.Storage(mesh.West) != nil {
		t.Error("storage present on undeclared link")
	}
	if n.Storage(mesh.East).Limit() != 2 {
		t.Errorf("storage limit = %d, want 2", n.Storage(mesh.East).Limit())
	}
}

func TestTurnPenalty(t *testing.T) {
	e := sim.New()
	n, _ := New(e, mesh.Coord{}, allDirs(), cfg())
	// 20 cells × 0.2µs = 4µs.
	if got, want := n.TurnPenalty(), 4*time.Microsecond; got != want {
		t.Errorf("turn penalty = %v, want %v", got, want)
	}
	n.TurnPenalty()
	if n.Turns() != 2 {
		t.Errorf("turns = %d, want 2", n.Turns())
	}
}

func TestAxisPanicsOutOfRange(t *testing.T) {
	e := sim.New()
	n, _ := New(e, mesh.Coord{}, allDirs(), cfg())
	defer func() {
		if recover() == nil {
			t.Error("axis 2 should panic")
		}
	}()
	n.TeleporterSet(2)
}

func TestUtilizationAveragesSets(t *testing.T) {
	e := sim.New()
	n, _ := New(e, mesh.Coord{}, allDirs(), cfg())
	// Occupy one X teleporter for the whole sim: X util 0.5 (1 of 2), Y 0.
	n.TeleporterSet(0).Serve(10*time.Microsecond, nil)
	e.Run(0)
	got := n.Utilization()
	if got < 0.24 || got > 0.26 {
		t.Errorf("mean utilization = %g, want 0.25", got)
	}
}
