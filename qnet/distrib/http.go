// The worker job API over HTTP: Server exposes a Worker as the
// three-endpoint protocol cmd/sweepd serves, and HTTPTransport is the
// coordinator-side client.
//
//	POST /v1/jobs             <- JSON Job, -> 202 + {"id": "..."}
//	GET  /v1/jobs/{id}/stream -> newline-delimited JSON stream lines
//	GET  /v1/healthz          -> 200 "ok"
//	GET  /v1/status           -> 200 + JSON Status (live worker telemetry)
//
// Each stream line carries either one finished point, a terminal
// worker-side error, or the terminal done marker; a stream that ends
// without a terminal line was truncated (worker death) and the client
// reports it as such.

package distrib

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"
)

// jobsPath is the URL prefix of the job endpoints.
const jobsPath = "/v1/jobs"

// healthzPath is the liveness endpoint.
const healthzPath = "/v1/healthz"

// statusPath is the live worker-telemetry endpoint.
const statusPath = "/v1/status"

// drainingBody is the body a draining server answers healthz probes
// and job submissions with (alongside 503); the client maps it to
// ErrWorkerDraining.
const drainingBody = "draining"

// streamLine is one newline-delimited JSON line of a job's result
// stream: exactly one of Point, Err or Done is set.
type streamLine struct {
	// Point is one finished run point.
	Point *PointResult `json:"point,omitempty"`
	// Err terminates the stream with a worker-side failure.
	Err string `json:"error,omitempty"`
	// Done terminates the stream cleanly: every point was delivered.
	Done bool `json:"done,omitempty"`
}

// jobState buffers one job's results between the executing goroutine
// and (possibly later, possibly slower) stream readers.
type jobState struct {
	mu       sync.Mutex
	cond     *sync.Cond
	points   []PointResult
	done     bool
	streamed bool // a reader consumed the stream through its terminal line
	err      error
}

// newJobState builds an empty buffer.
func newJobState() *jobState {
	js := &jobState{}
	js.cond = sync.NewCond(&js.mu)
	return js
}

// Server serves the worker job API over a Worker.  Create it with
// NewServer, mount Handler, and Close it on shutdown to cancel any
// jobs still executing.  For a graceful shutdown, Drain first: the
// server refuses new jobs (503 "draining") while the shards already
// accepted finish executing and streaming.
type Server struct {
	worker *Worker
	ctx    context.Context
	cancel context.CancelFunc

	mu        sync.Mutex
	nextID    int
	jobs      map[string]*jobState
	executing int // jobs whose Execute has not returned yet
	draining  bool
}

// NewServer builds a job server executing on the given worker.
func NewServer(w *Worker) *Server {
	ctx, cancel := context.WithCancel(context.Background())
	return &Server{worker: w, ctx: ctx, cancel: cancel, jobs: make(map[string]*jobState)}
}

// Close cancels every job still executing.  In-flight streams end with
// an error line.
func (s *Server) Close() { s.cancel() }

// StartDrain flips the server into draining mode: /v1/healthz answers
// 503 "draining", /v1/status sets Status.Draining, and new job
// submissions are refused with 503 — while jobs already accepted keep
// executing and streaming.  Draining is one-way; use Drain to also
// wait for the in-flight work.
func (s *Server) StartDrain() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
}

// Draining reports whether StartDrain (or Drain) has been called.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Drain gracefully shuts the job API down: it stops accepting new
// jobs (StartDrain) and blocks until every accepted job has finished
// executing and streamed its terminal line, or ctx expires — the
// SIGTERM path of cmd/sweepd.  It returns ctx.Err() on timeout, nil
// once the server is idle; either way the server stays drained.
func (s *Server) Drain(ctx context.Context) error {
	s.StartDrain()
	for {
		if s.drained() {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(20 * time.Millisecond):
		}
	}
}

// drained reports whether no job is executing and every buffered job
// has streamed its terminal line.
func (s *Server) drained() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.executing > 0 {
		return false
	}
	for _, js := range s.jobs {
		js.mu.Lock()
		ok := js.streamed
		js.mu.Unlock()
		if !ok {
			return false
		}
	}
	return true
}

// Handler returns the job API's http.Handler, with the store API's
// routes left unclaimed (mount a StoreServer beside it if this worker
// should also serve the fleet store).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(healthzPath, func(w http.ResponseWriter, r *http.Request) {
		if s.Draining() {
			http.Error(w, drainingBody, http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc(statusPath, func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		st := s.worker.Status()
		st.Draining = s.Draining()
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(st)
	})
	mux.HandleFunc(jobsPath, s.serveSubmit)
	mux.HandleFunc(jobsPath+"/", s.serveStream)
	return mux
}

// serveSubmit accepts a job, starts executing it immediately, and
// replies with its id.
func (s *Server) serveSubmit(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	var job Job
	if err := json.NewDecoder(io.LimitReader(r.Body, 64<<20)).Decode(&job); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if err := job.Validate(); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		http.Error(w, drainingBody, http.StatusServiceUnavailable)
		return
	}
	s.nextID++
	id := fmt.Sprintf("job-%d", s.nextID)
	js := newJobState()
	s.jobs[id] = js
	s.executing++
	s.mu.Unlock()
	job.ID = id

	go func() {
		err := s.worker.Execute(s.ctx, job, func(pr PointResult) error {
			js.mu.Lock()
			js.points = append(js.points, pr)
			js.cond.Broadcast()
			js.mu.Unlock()
			return nil
		})
		js.mu.Lock()
		js.done, js.err = true, err
		js.cond.Broadcast()
		js.mu.Unlock()
		s.mu.Lock()
		s.executing--
		s.mu.Unlock()
	}()

	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	json.NewEncoder(w).Encode(struct {
		ID string `json:"id"`
	}{ID: id})
}

// serveStream streams a job's results as they finish, ending with a
// terminal done or error line.  The finished job is dropped from the
// server's table once fully streamed.
func (s *Server) serveStream(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	rest := strings.TrimPrefix(r.URL.Path, jobsPath+"/")
	id, ok := strings.CutSuffix(rest, "/stream")
	if !ok || id == "" || strings.Contains(id, "/") {
		http.NotFound(w, r)
		return
	}
	s.mu.Lock()
	js := s.jobs[id]
	s.mu.Unlock()
	if js == nil {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	write := func(line streamLine) bool {
		if err := enc.Encode(line); err != nil {
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}

	next := 0
	for {
		js.mu.Lock()
		for next >= len(js.points) && !js.done {
			js.cond.Wait()
		}
		batch := js.points[next:]
		next = len(js.points)
		done, err := js.done, js.err
		js.mu.Unlock()
		for i := range batch {
			if !write(streamLine{Point: &batch[i]}) {
				return // reader hung up; keep the job for a retry
			}
		}
		if done && next == s.lenPoints(js) {
			if err != nil {
				write(streamLine{Err: err.Error()})
			} else {
				write(streamLine{Done: true})
				s.mu.Lock()
				delete(s.jobs, id)
				s.mu.Unlock()
			}
			js.mu.Lock()
			js.streamed = true
			js.mu.Unlock()
			return
		}
	}
}

// lenPoints reads the job's current point count under its lock.
func (s *Server) lenPoints(js *jobState) int {
	js.mu.Lock()
	defer js.mu.Unlock()
	return len(js.points)
}

// HTTPTransport is the coordinator-side client of the worker job API:
// worker names are base URLs such as "http://host:9000".
type HTTPTransport struct {
	// Client is the HTTP client used for all calls.  It must not set
	// an overall timeout (result streams outlive any fixed budget);
	// bound calls through the context instead.
	Client *http.Client
}

// HTTPTransport implements Transport.
var _ Transport = (*HTTPTransport)(nil)

// NewHTTPTransport builds the default HTTP transport.
func NewHTTPTransport() *HTTPTransport {
	return &HTTPTransport{Client: &http.Client{}}
}

// Run submits the job to the worker at the given base URL and decodes
// its result stream, emitting every point.  Failures are structured
// *TransportError values: a 503 "draining" submission wraps
// ErrWorkerDraining (the worker is shutting down gracefully, not
// dead), and a stream that ends without a terminal line — whether cut
// between lines or mid-line — wraps ErrTruncatedStream, so a worker
// dying mid-shard can never read as a complete shard; either way the
// coordinator reassigns.
func (t *HTTPTransport) Run(ctx context.Context, worker string, job Job, emit func(PointResult) error) error {
	base := strings.TrimSuffix(worker, "/")
	body, err := json.Marshal(job)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+jobsPath, bytes.NewReader(body))
	if err != nil {
		return &TransportError{Worker: worker, Op: "submit", Err: err}
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := t.Client.Do(req)
	if err != nil {
		return &TransportError{Worker: worker, Op: "submit", Err: err}
	}
	acceptBody, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		if isDrainingResponse(resp.StatusCode, acceptBody) {
			return &TransportError{Worker: worker, Op: "submit", Err: ErrWorkerDraining}
		}
		return &TransportError{Worker: worker, Op: "submit", Err: fmt.Errorf("status %s", resp.Status)}
	}
	var accepted struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(acceptBody, &accepted); err != nil || accepted.ID == "" {
		return &TransportError{Worker: worker, Op: "submit", Err: errors.New("bad accept body")}
	}

	req, err = http.NewRequestWithContext(ctx, http.MethodGet,
		fmt.Sprintf("%s%s/%s/stream", base, jobsPath, accepted.ID), nil)
	if err != nil {
		return &TransportError{Worker: worker, Op: "stream", Err: err}
	}
	resp, err = t.Client.Do(req)
	if err != nil {
		return &TransportError{Worker: worker, Op: "stream", Err: err}
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return &TransportError{Worker: worker, Op: "stream", Err: fmt.Errorf("status %s", resp.Status)}
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var line streamLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			// An undecodable line is a stream cut mid-line (a crash
			// between write and flush): structurally truncated, exactly
			// like a missing terminal line.
			return &TransportError{Worker: worker, Op: "stream",
				Err: fmt.Errorf("%w: undecodable line: %v", ErrTruncatedStream, err)}
		}
		switch {
		case line.Err != "":
			return fmt.Errorf("distrib: worker %s: %s", worker, line.Err)
		case line.Done:
			return nil
		case line.Point != nil:
			if err := emit(*line.Point); err != nil {
				return err
			}
		}
	}
	if err := sc.Err(); err != nil {
		return &TransportError{Worker: worker, Op: "stream",
			Err: fmt.Errorf("%w: %v", ErrTruncatedStream, err)}
	}
	return &TransportError{Worker: worker, Op: "stream", Err: ErrTruncatedStream}
}

// isDrainingResponse reports whether a response is a draining server's
// 503 + "draining" refusal.
func isDrainingResponse(status int, body []byte) bool {
	return status == http.StatusServiceUnavailable &&
		strings.Contains(strings.TrimSpace(string(body)), drainingBody)
}

// Status fetches the worker's /v1/status telemetry snapshot with a
// short deadline layered under ctx.
func (t *HTTPTransport) Status(ctx context.Context, worker string) (Status, error) {
	ctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		strings.TrimSuffix(worker, "/")+statusPath, nil)
	if err != nil {
		return Status{}, err
	}
	resp, err := t.Client.Do(req)
	if err != nil {
		return Status{}, err
	}
	var st Status
	decErr := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&st)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return Status{}, fmt.Errorf("distrib: status from %s: %s", worker, resp.Status)
	}
	if decErr != nil {
		return Status{}, fmt.Errorf("distrib: status from %s: %w", worker, decErr)
	}
	return st, nil
}

// Healthy probes the worker's /v1/healthz endpoint with a short
// deadline layered under ctx.  A draining worker (503 "draining")
// reports ErrWorkerDraining — alive, finishing in-flight shards, but
// accepting no new work — distinct from a dead one.
func (t *HTTPTransport) Healthy(ctx context.Context, worker string) error {
	ctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		strings.TrimSuffix(worker, "/")+healthzPath, nil)
	if err != nil {
		return err
	}
	resp, err := t.Client.Do(req)
	if err != nil {
		return err
	}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<10))
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		if isDrainingResponse(resp.StatusCode, body) {
			return &TransportError{Worker: worker, Op: "healthz", Err: ErrWorkerDraining}
		}
		return fmt.Errorf("distrib: %s unhealthy: %s", worker, resp.Status)
	}
	return nil
}
