// Package sim is a small deterministic discrete-event simulation engine:
// an event queue with stable FIFO ordering for simultaneous events, plus
// capacity-limited resources and basic statistics used by the network
// simulator.  It plays the role of the event-driven core of the paper's
// (Java) communication simulator.
//
// The engine is built for throughput on the simulator's hot path: events
// live inline in a value-typed 4-ary min-heap (no per-event pointer
// boxing), their payloads sit in a free-listed arena that is reused in
// steady state (scheduling does not allocate once the backing arrays
// have grown to the working-set size), and cancellation is O(1) by
// tombstoning the event's arena slot — the stale heap entry is discarded
// lazily when it surfaces at the top.
package sim

import (
	"context"
	"fmt"
	"time"
)

// Engine is a discrete-event simulator clock and pending-event queue.
// Events scheduled for the same instant run in scheduling order, which
// keeps simulations deterministic.
type Engine struct {
	now     time.Duration
	seq     uint64
	stepped uint64
	live    int // pending events, excluding tombstoned (cancelled) ones

	// heap is a 4-ary min-heap of inline entries ordered by (at, seq).
	// A 4-ary layout halves the tree depth of a binary heap and keeps
	// sibling comparisons inside one or two cache lines, which measurably
	// beats container/heap's pointer-chasing interface dispatch here.
	heap []heapEntry
	// arena holds event payloads; heap entries reference slots by index.
	// Freed slots chain through a free list and are reused, so the
	// backing array stops growing once it covers the peak backlog.
	arena []eventSlot
	free  int32 // head of the free-slot list, -1 when empty

	// probe, when non-nil, is sampled at every probeInterval boundary of
	// simulated time (see SetProbe).  The disabled path costs one nil
	// check per Step and allocates nothing.
	probe         Probe
	probeInterval time.Duration
	probeNext     time.Duration
}

// Probe observes the engine at fixed simulated-time boundaries.  It is
// the telemetry hook of the tracing layer: Step calls Sample(t, n) for
// every boundary t the clock crosses, before executing the event that
// crosses it, with n the events executed so far.  Sampling happens
// outside the event queue — a probe never schedules events, so a probed
// run executes exactly the same events as an unprobed one (Processed
// and every model counter are unaffected).  Sample must not mutate the
// model; it runs on the engine's goroutine.
type Probe interface {
	Sample(now time.Duration, processed uint64)
}

// heapEntry is one inline heap element.  It carries the ordering key
// (at, seq) so comparisons never touch the arena, plus the arena slot of
// the payload.  Entries whose slot no longer holds their seq are
// tombstones left by Cancel and are discarded when popped.
type heapEntry struct {
	at   time.Duration
	seq  uint64
	slot int32
}

// eventSlot is one arena cell: the payload of a pending event, or a
// free-list node.  seq is the occupant's sequence number (0 when free);
// gen counts how many times the slot has been recycled, letting EventID
// detect stale handles in O(1).
type eventSlot struct {
	fn   func()
	afn  func(any)
	arg  any
	seq  uint64
	gen  uint32
	next int32 // next free slot when on the free list
}

// New returns an engine with the clock at zero and no pending events.
func New() *Engine {
	return &Engine{free: -1}
}

// Now returns the current simulation time.
func (e *Engine) Now() time.Duration { return e.now }

// Processed returns the number of events executed so far.
func (e *Engine) Processed() uint64 { return e.stepped }

// Pending returns the number of events waiting to run.
func (e *Engine) Pending() int { return e.live }

// Reserve pre-sizes the engine for at least n simultaneously pending
// events, growing the heap and payload arena in one step so a model
// that knows its peak backlog (e.g. netsim's batch-event volume) avoids
// the early doubling reallocations.  It never shrinks, and reserving
// less than the current capacity is a no-op.
func (e *Engine) Reserve(n int) {
	if n > cap(e.heap) {
		h := make([]heapEntry, len(e.heap), n)
		copy(h, e.heap)
		e.heap = h
	}
	if n > cap(e.arena) {
		a := make([]eventSlot, len(e.arena), n)
		copy(a, e.arena)
		e.arena = a
	}
}

// SetProbe installs (or, with a nil probe, removes) the engine's
// sampling probe.  The first sample fires at the first multiple of
// interval strictly after the current clock, then every interval of
// simulated time after that — boundaries are exact multiples of the
// interval, so two runs of the same model sample at identical instants
// regardless of their event times.  interval must be positive when a
// probe is installed.
func (e *Engine) SetProbe(p Probe, interval time.Duration) {
	if p == nil {
		e.probe = nil
		return
	}
	if interval <= 0 {
		panic(fmt.Sprintf("sim: probe interval must be positive, got %v", interval))
	}
	e.probe = p
	e.probeInterval = interval
	e.probeNext = (e.now/interval + 1) * interval
}

// runProbe fires the probe for every interval boundary up to and
// including t, advancing the clock to each boundary first so time-based
// statistics (resource busy time) are exact at the sampling instant.
// It is kept out of line so the probe-disabled Step stays small.
func (e *Engine) runProbe(t time.Duration) {
	for t >= e.probeNext {
		if e.probeNext > e.now {
			e.now = e.probeNext
		}
		e.probe.Sample(e.probeNext, e.stepped)
		e.probeNext += e.probeInterval
	}
}

// EventID identifies a scheduled event for cancellation.  It encodes
// the event's arena slot and the slot's generation, so cancelling an
// event that already ran (or was already cancelled) is detected in O(1)
// and returns false.
type EventID uint64

// Schedule runs fn after delay of simulated time.  A negative delay is
// treated as zero (run at the current instant, after already-queued
// events for that instant).
func (e *Engine) Schedule(delay time.Duration, fn func()) EventID {
	if delay < 0 {
		delay = 0
	}
	return e.At(e.now+delay, fn)
}

// At runs fn at absolute simulation time t.  Scheduling in the past is an
// error that panics: it indicates a broken model rather than a
// recoverable condition.
func (e *Engine) At(t time.Duration, fn func()) EventID {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	if fn == nil {
		panic("sim: scheduling nil event function")
	}
	return e.push(t, fn, nil, nil)
}

// ScheduleCall runs fn(arg) after delay of simulated time, with the
// same ordering semantics as Schedule.  It is the allocation-free form
// for hot paths: with fn a package-level function and arg a pointer to
// reusable state, scheduling captures no closure, so the call allocates
// nothing once the engine's arrays have reached steady state.
func (e *Engine) ScheduleCall(delay time.Duration, fn func(any), arg any) EventID {
	if delay < 0 {
		delay = 0
	}
	if fn == nil {
		panic("sim: scheduling nil event function")
	}
	return e.push(e.now+delay, nil, fn, arg)
}

// push stores the payload in a (reused) arena slot and pushes the heap
// entry.  Exactly one of fn and afn is non-nil.
func (e *Engine) push(t time.Duration, fn func(), afn func(any), arg any) EventID {
	e.seq++
	slot := e.allocSlot()
	sl := &e.arena[slot]
	sl.fn, sl.afn, sl.arg, sl.seq = fn, afn, arg, e.seq
	e.heapPush(heapEntry{at: t, seq: e.seq, slot: slot})
	e.live++
	return EventID(uint64(sl.gen)<<32 | uint64(slot+1))
}

// allocSlot pops a free arena slot, growing the arena only when the
// free list is empty.
func (e *Engine) allocSlot() int32 {
	if e.free >= 0 {
		s := e.free
		e.free = e.arena[s].next
		return s
	}
	e.arena = append(e.arena, eventSlot{})
	return int32(len(e.arena) - 1)
}

// freeSlot recycles an arena slot: payload references are dropped, the
// generation advances (invalidating outstanding EventIDs), and the slot
// joins the free list.
func (e *Engine) freeSlot(slot int32) {
	sl := &e.arena[slot]
	sl.fn, sl.afn, sl.arg, sl.seq = nil, nil, nil, 0
	sl.gen++
	sl.next = e.free
	e.free = slot
}

// Cancel removes a pending event.  It reports whether the event was
// found (an already-executed or unknown ID returns false).  The cost is
// O(1): the arena slot is tombstoned and recycled immediately, and the
// event's heap entry is discarded lazily when it reaches the top.
func (e *Engine) Cancel(id EventID) bool {
	slot := int32(uint32(id)) - 1
	if slot < 0 || int(slot) >= len(e.arena) {
		return false
	}
	sl := &e.arena[slot]
	if sl.seq == 0 || sl.gen != uint32(id>>32) {
		return false
	}
	e.freeSlot(slot)
	e.live--
	return true
}

// Step executes the next pending event, advancing the clock to its time.
// It reports whether an event was executed.
func (e *Engine) Step() bool {
	for len(e.heap) > 0 {
		top := e.heap[0]
		sl := &e.arena[top.slot]
		if sl.seq != top.seq {
			// Tombstone left by Cancel: the slot was recycled (and
			// possibly reoccupied under a different seq).  Drop it.
			e.heapPop()
			continue
		}
		e.heapPop()
		if e.probe != nil && top.at >= e.probeNext {
			// Sample every boundary the clock is about to cross, before
			// the event that crosses it executes.
			e.runProbe(top.at)
		}
		e.now = top.at
		e.stepped++
		e.live--
		fn, afn, arg := sl.fn, sl.afn, sl.arg
		// Free before invoking so the payload can reuse the slot when it
		// schedules follow-up events.
		e.freeSlot(top.slot)
		if fn != nil {
			fn()
		} else {
			afn(arg)
		}
		return true
	}
	return false
}

// peek returns the earliest live heap entry, discarding any tombstones
// that have surfaced at the top.  ok is false when no live event remains.
func (e *Engine) peek() (top heapEntry, ok bool) {
	for len(e.heap) > 0 {
		top = e.heap[0]
		if e.arena[top.slot].seq != top.seq {
			e.heapPop()
			continue
		}
		return top, true
	}
	return heapEntry{}, false
}

// NextEventAt returns the time of the earliest pending event, or ok ==
// false when no live event remains.  It does not advance the clock; the
// partitioned engine uses it to compute the global horizon of a
// conservative window.
func (e *Engine) NextEventAt() (time.Duration, bool) {
	top, ok := e.peek()
	return top.at, ok
}

// Run executes events until none remain or the event budget is
// exhausted, returning the number executed.  A budget of 0 means
// unlimited.
func (e *Engine) Run(budget uint64) uint64 {
	var n uint64
	for {
		if budget > 0 && n >= budget {
			return n
		}
		if !e.Step() {
			return n
		}
		n++
	}
}

// ctxCheckInterval is how many events RunContext executes between
// cancellation checks.  Checking ctx.Err() per event would dominate the
// hot loop; every 4096 events keeps cancellation latency well under a
// millisecond of wall time for any realistic model.
const ctxCheckInterval = 4096

// RunContext executes events until none remain, the event budget is
// exhausted, or ctx is cancelled.  A budget of 0 means unlimited.  It
// returns the number of events executed and, when the run was cut short
// by cancellation, the context's error.  On cancellation the engine is
// left intact (clock and pending events preserved), so a caller may
// inspect or resume it.
func (e *Engine) RunContext(ctx context.Context, budget uint64) (uint64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	var n uint64
	for {
		if budget > 0 && n >= budget {
			return n, nil
		}
		if n%ctxCheckInterval == ctxCheckInterval-1 {
			if err := ctx.Err(); err != nil {
				return n, err
			}
		}
		if !e.Step() {
			return n, nil
		}
		n++
	}
}

// RunUntil executes events with time at or before t, then advances the
// clock to t.  Events scheduled after t remain pending.
func (e *Engine) RunUntil(t time.Duration) {
	for {
		top, ok := e.peek()
		if !ok || top.at > t {
			break
		}
		e.Step()
	}
	if e.probe != nil && t >= e.probeNext {
		// Boundaries between the last event and t fire now, so a window
		// advance samples the same instants a serial run would.
		e.runProbe(t)
	}
	if t > e.now {
		e.now = t
	}
}

// entryLess orders heap entries by time, then by scheduling sequence,
// which is what makes simultaneous events run FIFO.
func entryLess(a, b heapEntry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// heapPush appends the entry and sifts it up the 4-ary heap.
func (e *Engine) heapPush(x heapEntry) {
	e.heap = append(e.heap, x)
	h := e.heap
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !entryLess(h[i], h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
}

// heapPop removes and returns the minimum entry, sifting the displaced
// tail element down the 4-ary heap.
func (e *Engine) heapPop() heapEntry {
	h := e.heap
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	e.heap = h[:n]
	h = e.heap
	i := 0
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		m := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if entryLess(h[j], h[m]) {
				m = j
			}
		}
		if !entryLess(h[m], h[i]) {
			break
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
	return top
}
