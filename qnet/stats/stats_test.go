package stats

import (
	"context"
	"math"
	"testing"
	"time"

	"repro/qnet"
	"repro/qnet/simulate"
)

func almost(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestDescribe(t *testing.T) {
	s := Describe([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 {
		t.Fatalf("N = %d, want 8", s.N)
	}
	if !almost(s.Mean, 5, 1e-12) {
		t.Errorf("mean = %g, want 5", s.Mean)
	}
	// Sample (n-1) stddev of this classic set is sqrt(32/7).
	if want := math.Sqrt(32.0 / 7.0); !almost(s.Std, want, 1e-12) {
		t.Errorf("std = %g, want %g", s.Std, want)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Errorf("min/max = %g/%g, want 2/9", s.Min, s.Max)
	}
}

func TestDescribeEmptyAndSingle(t *testing.T) {
	if s := Describe(nil); s.N != 0 || s.Mean != 0 || s.Std != 0 {
		t.Errorf("empty summary = %+v", s)
	}
	s := Describe([]float64{3.5})
	if s.N != 1 || s.Mean != 3.5 || s.Std != 0 || s.Min != 3.5 || s.Max != 3.5 {
		t.Errorf("singleton summary = %+v", s)
	}
	iv := s.CI(0.95)
	if iv.Lo != 3.5 || iv.Hi != 3.5 {
		t.Errorf("singleton CI = %v, want collapsed", iv)
	}
}

func TestZScore(t *testing.T) {
	for _, tc := range []struct{ level, want float64 }{
		{0.6827, 1.0},
		{0.95, 1.9600},
		{0.99, 2.5758},
	} {
		if got := zScore(tc.level); !almost(got, tc.want, 5e-4) {
			t.Errorf("zScore(%g) = %g, want %g", tc.level, got, tc.want)
		}
	}
}

func TestNormalCI(t *testing.T) {
	s := Describe([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	iv := s.CI(0.95)
	h := 1.95996 * s.Std / math.Sqrt(8)
	if !almost(iv.Lo, s.Mean-h, 1e-4) || !almost(iv.Hi, s.Mean+h, 1e-4) {
		t.Errorf("CI = %v, want mean ± %g", iv, h)
	}
	if !almost(iv.Half(), h, 1e-4) {
		t.Errorf("half-width = %g, want %g", iv.Half(), h)
	}
}

func TestBootstrapCIDeterministicAndSane(t *testing.T) {
	samples := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	s := Describe(samples)
	a := s.BootstrapCI(0.95, 2000)
	b := Describe(samples).BootstrapCI(0.95, 2000)
	if a != b {
		t.Errorf("bootstrap CI not deterministic: %v vs %v", a, b)
	}
	if a.Lo > s.Mean || a.Hi < s.Mean {
		t.Errorf("bootstrap CI %v excludes the mean %g", a, s.Mean)
	}
	if a.Lo < s.Min || a.Hi > s.Max {
		t.Errorf("bootstrap CI %v outside sample range [%g, %g]", a, s.Min, s.Max)
	}
}

func TestBootstrapCIOnLiteralSummary(t *testing.T) {
	// A Summary built by struct literal has no samples to resample; the
	// interval must collapse like CI's, not panic.
	s := Summary{N: 3, Mean: 1.5}
	if iv := s.BootstrapCI(0.95, 100); iv.Lo != 1.5 || iv.Hi != 1.5 {
		t.Errorf("literal-summary bootstrap CI = %v, want collapsed to the mean", iv)
	}
}

func TestFromResults(t *testing.T) {
	results := []simulate.Result{
		{Exec: 2 * time.Second, PairsDelivered: 100, TeleporterUtil: 0.5},
		{Exec: 4 * time.Second, PairsDelivered: 300, TeleporterUtil: 0.7},
	}
	e := FromResults(results)
	if e.N != 2 {
		t.Fatalf("N = %d, want 2", e.N)
	}
	if !almost(e.Exec.Mean, 3, 1e-12) {
		t.Errorf("exec mean = %g s, want 3", e.Exec.Mean)
	}
	if e.MeanExec() != 3*time.Second {
		t.Errorf("MeanExec = %v, want 3s", e.MeanExec())
	}
	if !almost(e.PairsDelivered.Mean, 200, 1e-12) {
		t.Errorf("pairs mean = %g, want 200", e.PairsDelivered.Mean)
	}
	if !almost(e.TeleporterUtil.Mean, 0.6, 1e-12) {
		t.Errorf("teleporter util mean = %g, want 0.6", e.TeleporterUtil.Mean)
	}
}

// TestGroupFoldsSeeds runs a small stochastic sweep over several seeds
// and asserts Group folds the seed dimension away, preserving expansion
// order and recording every seed.
func TestGroupFoldsSeeds(t *testing.T) {
	grid, err := qnet.NewGrid(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	space := simulate.Space{
		Grids:   []qnet.Grid{grid},
		Layouts: []simulate.Layout{simulate.HomeBase, simulate.MobileQubit},
		Resources: []simulate.Resources{
			{Teleporters: 16, Generators: 16, Purifiers: 8},
		},
		Programs: []qnet.Program{qnet.QFT(grid.Tiles())},
		Seeds:    []int64{1, 2, 3},
		Options:  []simulate.Option{simulate.WithFailureRate(0.2)},
	}
	points, err := simulate.Sweep(context.Background(), space)
	if err != nil {
		t.Fatal(err)
	}
	groups := Group(points)
	if len(groups) != 2 {
		t.Fatalf("groups = %d, want 2 (one per layout)", len(groups))
	}
	if groups[0].Point.Layout != simulate.HomeBase || groups[1].Point.Layout != simulate.MobileQubit {
		t.Errorf("groups out of expansion order: %v then %v",
			groups[0].Point.Layout, groups[1].Point.Layout)
	}
	for _, g := range groups {
		if g.Ensemble.N != 3 || len(g.Seeds) != 3 || len(g.Results) != 3 {
			t.Errorf("%v: ensemble over %d runs (%d seeds), want 3", g.Point.Layout, g.Ensemble.N, len(g.Seeds))
		}
		if g.Seeds[0] != 1 || g.Seeds[1] != 2 || g.Seeds[2] != 3 {
			t.Errorf("%v: seeds = %v, want [1 2 3]", g.Point.Layout, g.Seeds)
		}
		if g.Ensemble.Exec.Mean <= 0 {
			t.Errorf("%v: non-positive mean exec", g.Point.Layout)
		}
		// With a 20% failure rate the three seeds should not all agree.
		if g.Ensemble.Exec.Std == 0 && g.Ensemble.FailedBatches.Std == 0 {
			t.Errorf("%v: zero spread across seeds under failure injection", g.Point.Layout)
		}
	}
}

// TestGroupSkipsFailures feeds Group a hand-built point list with one
// failed run and asserts the failure is excluded from the ensemble.
func TestGroupSkipsFailures(t *testing.T) {
	grid, _ := qnet.NewGrid(2, 2)
	pt := func(seed int64, err error) simulate.SweepPoint {
		return simulate.SweepPoint{
			Point: simulate.Point{
				Grid:      grid,
				Layout:    simulate.HomeBase,
				Resources: simulate.Resources{Teleporters: 1, Generators: 1, Purifiers: 1},
				Program:   qnet.QFT(4),
				Depth:     3,
				Seed:      seed,
			},
			Result: simulate.Result{Exec: time.Second},
			Err:    err,
		}
	}
	groups := Group([]simulate.SweepPoint{pt(1, nil), pt(2, context.Canceled), pt(3, nil)})
	if len(groups) != 1 {
		t.Fatalf("groups = %d, want 1", len(groups))
	}
	if groups[0].Ensemble.N != 2 {
		t.Errorf("ensemble N = %d, want 2 (failed seed skipped)", groups[0].Ensemble.N)
	}
}
