// Package sim is a small deterministic discrete-event simulation engine:
// an event heap with stable FIFO ordering for simultaneous events, plus
// capacity-limited resources and basic statistics used by the network
// simulator.  It plays the role of the event-driven core of the paper's
// (Java) communication simulator.
package sim

import (
	"container/heap"
	"context"
	"fmt"
	"time"
)

// Engine is a discrete-event simulator clock and pending-event queue.
// Events scheduled for the same instant run in scheduling order, which
// keeps simulations deterministic.
type Engine struct {
	now     time.Duration
	events  eventHeap
	seq     uint64
	stepped uint64
}

// New returns an engine with the clock at zero and no pending events.
func New() *Engine {
	return &Engine{}
}

// Now returns the current simulation time.
func (e *Engine) Now() time.Duration { return e.now }

// Processed returns the number of events executed so far.
func (e *Engine) Processed() uint64 { return e.stepped }

// Pending returns the number of events waiting to run.
func (e *Engine) Pending() int { return len(e.events) }

// EventID identifies a scheduled event for cancellation.
type EventID uint64

// Schedule runs fn after delay of simulated time.  A negative delay is
// treated as zero (run at the current instant, after already-queued
// events for that instant).
func (e *Engine) Schedule(delay time.Duration, fn func()) EventID {
	if delay < 0 {
		delay = 0
	}
	return e.At(e.now+delay, fn)
}

// At runs fn at absolute simulation time t.  Scheduling in the past is an
// error that panics: it indicates a broken model rather than a
// recoverable condition.
func (e *Engine) At(t time.Duration, fn func()) EventID {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	if fn == nil {
		panic("sim: scheduling nil event function")
	}
	e.seq++
	ev := &event{at: t, seq: e.seq, fn: fn}
	heap.Push(&e.events, ev)
	return EventID(e.seq)
}

// Cancel removes a pending event.  It reports whether the event was
// found (an already-executed or unknown ID returns false).
func (e *Engine) Cancel(id EventID) bool {
	for i, ev := range e.events {
		if ev.seq == uint64(id) {
			heap.Remove(&e.events, i)
			return true
		}
	}
	return false
}

// Step executes the next pending event, advancing the clock to its time.
// It reports whether an event was executed.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(*event)
	e.now = ev.at
	e.stepped++
	ev.fn()
	return true
}

// Run executes events until none remain or the event budget is
// exhausted, returning the number executed.  A budget of 0 means
// unlimited.
func (e *Engine) Run(budget uint64) uint64 {
	var n uint64
	for {
		if budget > 0 && n >= budget {
			return n
		}
		if !e.Step() {
			return n
		}
		n++
	}
}

// ctxCheckInterval is how many events RunContext executes between
// cancellation checks.  Checking ctx.Err() per event would dominate the
// hot loop; every 4096 events keeps cancellation latency well under a
// millisecond of wall time for any realistic model.
const ctxCheckInterval = 4096

// RunContext executes events until none remain, the event budget is
// exhausted, or ctx is cancelled.  A budget of 0 means unlimited.  It
// returns the number of events executed and, when the run was cut short
// by cancellation, the context's error.  On cancellation the engine is
// left intact (clock and pending events preserved), so a caller may
// inspect or resume it.
func (e *Engine) RunContext(ctx context.Context, budget uint64) (uint64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	var n uint64
	for {
		if budget > 0 && n >= budget {
			return n, nil
		}
		if n%ctxCheckInterval == ctxCheckInterval-1 {
			if err := ctx.Err(); err != nil {
				return n, err
			}
		}
		if !e.Step() {
			return n, nil
		}
		n++
	}
}

// RunUntil executes events with time at or before t, then advances the
// clock to t.  Events scheduled after t remain pending.
func (e *Engine) RunUntil(t time.Duration) {
	for len(e.events) > 0 && e.events[0].at <= t {
		e.Step()
	}
	if t > e.now {
		e.now = t
	}
}

type event struct {
	at  time.Duration
	seq uint64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}
