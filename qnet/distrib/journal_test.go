package distrib

import (
	"context"
	"os"
	"sync"
	"testing"
	"time"

	"repro/qnet/simulate"
)

// recordingTransport wraps a Transport and records every dispatched
// shard's point indices, so a test can prove which work was (and was
// not) re-dispatched.
type recordingTransport struct {
	Transport
	mu         sync.Mutex
	dispatched [][]int
}

// Run records the job's indices, then forwards.
func (rt *recordingTransport) Run(ctx context.Context, worker string, job Job, emit func(PointResult) error) error {
	rt.mu.Lock()
	rt.dispatched = append(rt.dispatched, append([]int(nil), job.Indices...))
	rt.mu.Unlock()
	return rt.Transport.Run(ctx, worker, job, emit)
}

// dispatchedIndices returns the set of every point index dispatched.
func (rt *recordingTransport) dispatchedIndices() map[int]bool {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	out := make(map[int]bool)
	for _, indices := range rt.dispatched {
		for _, idx := range indices {
			out[idx] = true
		}
	}
	return out
}

// TestJournalCrashResume is the crash-resume proof: run one sweep with
// a journal until the fleet dies mid-way, then re-run the identical
// sweep against the same journal directory and shared store, and
// assert the journaled-complete shards are never dispatched again —
// their points are reconstructed from the store — while the merged
// output stays byte-identical to the single-process sweep.
func TestJournalCrashResume(t *testing.T) {
	spec := testSpec(t)
	want := canonicalPoints(t, singleProcess(t, spec))
	dir := t.TempDir()
	store := simulate.NewCache(0)

	// Run 1: a single serial worker that dies after delivering 3 points.
	// With 4 shards of 2 points, shard 0 completes (and journals) before
	// the death truncates shard 1; the sweep then fails with the whole
	// fleet dead.
	lb1 := NewLoopback()
	lb1.Add("w0", NewWorker(WithWorkerStore(store), WithWorkerParallelism(1)))
	lb1.KillAfterPoints("w0", 3)
	coord1, err := NewCoordinator(lb1, []string{"w0"},
		WithSharedStore(store, ""),
		WithShards(4),
		WithMaxAttempts(2),
		WithRetryBackoff(time.Millisecond),
		WithJournal(dir))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := coord1.Sweep(context.Background(), spec); err == nil {
		t.Fatal("run 1 should have failed with its only worker dead")
	}

	// The journal must have recorded at least shard 0.
	jnl, err := openJournal(dir, spec, 4)
	if err != nil {
		t.Fatal(err)
	}
	completed := make(map[int]bool, len(jnl.done))
	for id := range jnl.done {
		completed[id] = true
	}
	jnl.close()
	if len(completed) == 0 {
		t.Fatal("run 1 journaled no completed shards")
	}

	// Run 2: a healthy fleet, same journal directory, same store.  The
	// journaled shards must be resumed from the store, never dispatched.
	lb2 := NewLoopback()
	lb2.Add("w0", NewWorker(WithWorkerStore(store)))
	lb2.Add("w1", NewWorker(WithWorkerStore(store)))
	rt := &recordingTransport{Transport: lb2}
	coord2, err := NewCoordinator(rt, []string{"w0", "w1"},
		WithSharedStore(store, ""),
		WithShards(4),
		WithRetryBackoff(time.Millisecond),
		WithJournal(dir))
	if err != nil {
		t.Fatal(err)
	}
	points, rep, err := coord2.Sweep(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if got := canonicalPoints(t, points); string(got) != string(want) {
		t.Fatalf("resumed point set differs from single-process sweep:\n got %s\nwant %s", got, want)
	}
	if rep.ResumedShards != len(completed) {
		t.Fatalf("resumed %d shards, journal recorded %d complete", rep.ResumedShards, len(completed))
	}

	// Zero re-dispatch of completed work: no dispatched job may contain
	// any index belonging to a journaled-complete shard.
	shards := PlanShards(8, 4)
	dispatched := rt.dispatchedIndices()
	for id := range completed {
		for _, idx := range shards[id].Indices {
			if dispatched[idx] {
				t.Fatalf("point %d of journaled-complete shard %d was re-dispatched", idx, id)
			}
		}
	}
	// And the resumed points were store-reconstructions.
	if rep.CacheHits < 2 {
		t.Fatalf("resumed shards did not come from the store: %s", rep)
	}
	t.Logf("run 2 report: %s", rep)
}

// TestJournalIdentityAndTornLine covers the journal file's own
// contracts: completions survive reopen, a torn trailing line (a crash
// mid-append) is tolerated, idempotent completion writes once, and a
// journal never matches a sweep with a different shard plan.
func TestJournalIdentityAndTornLine(t *testing.T) {
	spec := testSpec(t)
	dir := t.TempDir()

	jnl, err := openJournal(dir, spec, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(jnl.done) != 0 {
		t.Fatalf("fresh journal has %d completions", len(jnl.done))
	}
	if err := jnl.complete(2); err != nil {
		t.Fatal(err)
	}
	if err := jnl.complete(2); err != nil { // idempotent
		t.Fatal(err)
	}
	if err := jnl.complete(0); err != nil {
		t.Fatal(err)
	}
	path := jnl.path
	jnl.close()

	// A crash mid-append leaves a torn final line; everything before it
	// must still replay.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"shard":`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	jnl2, err := openJournal(dir, spec, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer jnl2.close()
	if !jnl2.done[2] || !jnl2.done[0] || len(jnl2.done) != 2 {
		t.Fatalf("replayed completions %v, want {0, 2}", jnl2.done)
	}

	// Same directory, different shard plan: the file names diverge, so
	// the stale journal can never be matched.
	jnl8, err := openJournal(dir, spec, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer jnl8.close()
	if jnl8.path == path {
		t.Fatal("different shard plan mapped to the same journal file")
	}
	if len(jnl8.done) != 0 {
		t.Fatalf("8-shard journal inherited completions %v", jnl8.done)
	}
}
