package classical

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/mesh"
	"repro/internal/phys"
)

func TestPauliComposeTable(t *testing.T) {
	cases := []struct {
		a, b, want Pauli
	}{
		{PauliI, PauliI, PauliI},
		{PauliI, PauliX, PauliX},
		{PauliX, PauliX, PauliI},
		{PauliX, PauliZ, PauliY},
		{PauliZ, PauliX, PauliY},
		{PauliY, PauliY, PauliI},
		{PauliY, PauliX, PauliZ},
		{PauliY, PauliZ, PauliX},
	}
	for _, c := range cases {
		if got := c.a.Compose(c.b); got != c.want {
			t.Errorf("%v∘%v = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestPauliStrings(t *testing.T) {
	want := map[string]Pauli{"I": PauliI, "X": PauliX, "Z": PauliZ, "Y": PauliY}
	for s, p := range want {
		if p.String() != s {
			t.Errorf("%+v.String() = %q, want %q", p, p.String(), s)
		}
	}
}

func TestPauliBits(t *testing.T) {
	x, z := PauliY.Bits()
	if x != 1 || z != 1 {
		t.Errorf("Y bits = (%d,%d), want (1,1)", x, z)
	}
	x, z = PauliI.Bits()
	if x != 0 || z != 0 {
		t.Errorf("I bits = (%d,%d), want (0,0)", x, z)
	}
}

func TestFrameAccumulation(t *testing.T) {
	var f Frame
	if !f.Correction().Identity() || f.CorrectionOps() != 0 {
		t.Error("fresh frame should be identity")
	}
	f.Absorb(PauliX)
	f.Absorb(PauliZ)
	if f.Correction() != PauliY || f.Hops() != 2 {
		t.Errorf("frame = %v after %d hops, want Y after 2", f.Correction(), f.Hops())
	}
	if f.CorrectionOps() != 2 {
		t.Errorf("Y needs 2 correction ops, got %d", f.CorrectionOps())
	}
	f.Absorb(PauliY)
	if !f.Correction().Identity() {
		t.Errorf("Y∘Y should cancel, got %v", f.Correction())
	}
	if f.CorrectionOps() != 0 {
		t.Errorf("identity needs 0 ops, got %d", f.CorrectionOps())
	}
}

// Property: absorbing any multiset of corrections is order-independent.
func TestFrameOrderIndependenceProperty(t *testing.T) {
	paulis := []Pauli{PauliI, PauliX, PauliZ, PauliY}
	f := func(seq []uint8, swapAt uint8) bool {
		if len(seq) < 2 {
			return true
		}
		var a, b Frame
		for _, s := range seq {
			a.Absorb(paulis[int(s)%4])
		}
		i := int(swapAt) % (len(seq) - 1)
		seq[i], seq[i+1] = seq[i+1], seq[i]
		for _, s := range seq {
			b.Absorb(paulis[int(s)%4])
		}
		return a.Correction() == b.Correction() && a.Hops() == b.Hops()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPacketString(t *testing.T) {
	p := Packet{
		ID:          PacketID{Gen: mesh.Link{From: mesh.Coord{X: 1, Y: 2}, Dir: mesh.East}, Seq: 7},
		Dest:        mesh.Coord{X: 3, Y: 4},
		PartnerDest: mesh.Coord{X: 0, Y: 0},
	}
	p.Frame.Absorb(PauliX)
	s := p.String()
	for _, sub := range []string{"(1,2)#7", "(3,4)", "(0,0)", "X", "1 hops"} {
		if !contains(s, sub) {
			t.Errorf("packet string %q missing %q", s, sub)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestNetworkValidation(t *testing.T) {
	if _, err := NewNetwork(phys.IonTrap2006(), 0); err == nil {
		t.Error("zero hop cells should fail")
	}
}

func TestNetworkLatency(t *testing.T) {
	n, err := NewNetwork(phys.IonTrap2006(), 600)
	if err != nil {
		t.Fatal(err)
	}
	// 10 hops × 600 cells × 1ns/cell = 6µs.
	if got, want := n.Latency(10), 6*time.Microsecond; got != want {
		t.Errorf("latency(10 hops) = %v, want %v", got, want)
	}
	if n.Latency(-1) != 0 {
		t.Error("negative hops should clamp to 0")
	}
}

func TestNetworkAccounting(t *testing.T) {
	n, _ := NewNetwork(phys.IonTrap2006(), 600)
	for i := 0; i < 5; i++ {
		n.RecordTeleport()
	}
	for i := 0; i < 3; i++ {
		n.RecordPurify()
	}
	messages, bits, teleports, purifies := n.Stats()
	if messages != 8 || teleports != 5 || purifies != 3 {
		t.Errorf("messages=%d teleports=%d purifies=%d", messages, teleports, purifies)
	}
	if bits != 16 {
		t.Errorf("bits = %d, want 16 (2 per op)", bits)
	}
}
