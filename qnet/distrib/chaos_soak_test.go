package distrib

import (
	"context"
	"runtime"
	"testing"
	"time"

	"repro/qnet/distrib/chaos"
	"repro/qnet/simulate"
)

// TestChaosSoak is the headline robustness proof: many seeded chaos
// schedules — injected latency, refused dispatches, mid-stream
// truncation, duplicated result lines, health-probe flaps, store
// misses and dropped writes — replayed over a loopback fleet, and for
// every schedule the merged output must stay byte-identical to the
// single-process sweep.  Each schedule runs under a wall-clock bound
// (a hung retry loop fails the test rather than the suite), and the
// whole soak must leak no goroutines.
func TestChaosSoak(t *testing.T) {
	spec := testSpec(t)
	want := canonicalPoints(t, singleProcess(t, spec))

	schedules := 20
	if testing.Short() {
		schedules = 5
	}
	before := runtime.NumGoroutine()

	var total chaos.Stats
	for seed := int64(1); seed <= int64(schedules); seed++ {
		sched := chaos.New(chaos.Default(seed))
		store := simulate.NewCache(0)
		cstore := NewChaosStore(store, sched)

		lb := NewLoopback()
		workers := []string{"w0", "w1", "w2"}
		for _, w := range workers {
			lb.Add(w, NewWorker(WithWorkerStore(cstore)))
		}
		coord, err := NewCoordinator(NewChaos(lb, sched), workers,
			WithSharedStore(cstore, ""),
			WithShards(6),
			WithMaxAttempts(30),
			WithRetryBackoff(time.Millisecond),
			WithRetryBackoffCap(5*time.Millisecond),
			WithCircuitBreaker(3, 2*time.Millisecond))
		if err != nil {
			t.Fatal(err)
		}

		// The wall-clock bound: a coordinator that spins or hangs under
		// chaos fails this schedule instead of stalling the suite.
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		points, rep, err := coord.Sweep(ctx, spec)
		cancel()
		if err != nil {
			t.Fatalf("seed %d: sweep failed under chaos: %v (report: %s, chaos: %s)",
				seed, err, rep, sched.Stats())
		}
		if got := canonicalPoints(t, points); string(got) != string(want) {
			t.Fatalf("seed %d: chaos changed the merged output\n got %s\nwant %s", seed, got, want)
		}
		st := sched.Stats()
		total.Decisions += st.Decisions
		total.Delays += st.Delays
		total.Refusals += st.Refusals
		total.Truncations += st.Truncations
		total.Duplicates += st.Duplicates
		total.Flaps += st.Flaps
		total.StoreMisses += st.StoreMisses
		total.StoreDrops += st.StoreDrops
		t.Logf("seed %d: report %s; chaos %s", seed, rep, st)
	}

	// The soak proves nothing if the schedules never actually injected:
	// at the Default rates over this many dispatches, zero injections
	// means the wiring is broken.
	if total.Injected() == 0 {
		t.Fatalf("no faults injected across %d schedules: %s", schedules, total)
	}
	t.Logf("soak total: %s", total)

	// No goroutine leaks: retry timers, heartbeats and worker loops must
	// all have unwound.  Collection is asynchronous, so poll.
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= before {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d before, %d after\n%s",
				before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}
