package sim

import (
	"fmt"
	"time"
)

// Resource is a capacity-limited server with a FIFO wait queue, driven by
// an Engine.  It models hardware units that serve one job at a time per
// unit — teleporters in a T' node set, generators in a G node, queue
// purifiers in a P node.
//
// Acquire enqueues a job; when a unit is free the job callback runs (at
// the engine's current time).  The callback must eventually call Release
// exactly once (typically after scheduling the service latency).
type Resource struct {
	name     string
	engine   *Engine
	capacity int
	inUse    int
	waiting  []func()

	// Statistics.
	acquired   uint64
	maxQueue   int
	busyTime   time.Duration
	lastChange time.Duration
}

// NewResource creates a resource with the given unit count.
func NewResource(engine *Engine, name string, capacity int) (*Resource, error) {
	if engine == nil {
		return nil, fmt.Errorf("sim: resource %q needs an engine", name)
	}
	if capacity < 1 {
		return nil, fmt.Errorf("sim: resource %q capacity must be >= 1, got %d", name, capacity)
	}
	return &Resource{name: name, engine: engine, capacity: capacity}, nil
}

// Name returns the resource's name.
func (r *Resource) Name() string { return r.name }

// Capacity returns the number of units.
func (r *Resource) Capacity() int { return r.capacity }

// InUse returns the number of units currently serving jobs.
func (r *Resource) InUse() int { return r.inUse }

// QueueLen returns the number of jobs waiting for a unit.
func (r *Resource) QueueLen() int { return len(r.waiting) }

// Acquire requests a unit and runs job once one is available.  If a unit
// is free now, job runs synchronously.
func (r *Resource) Acquire(job func()) {
	if job == nil {
		panic(fmt.Sprintf("sim: resource %q: nil job", r.name))
	}
	if r.inUse < r.capacity {
		r.grab()
		job()
		return
	}
	r.waiting = append(r.waiting, job)
	if len(r.waiting) > r.maxQueue {
		r.maxQueue = len(r.waiting)
	}
}

// Release frees a unit, immediately handing it to the oldest waiting job
// if any.
func (r *Resource) Release() {
	if r.inUse <= 0 {
		panic(fmt.Sprintf("sim: resource %q released more than acquired", r.name))
	}
	r.accountBusy()
	r.inUse--
	if len(r.waiting) == 0 {
		return
	}
	job := r.waiting[0]
	copy(r.waiting, r.waiting[1:])
	r.waiting[len(r.waiting)-1] = nil
	r.waiting = r.waiting[:len(r.waiting)-1]
	r.grab()
	job()
}

// Serve is the common acquire-serve-release pattern: wait for a unit,
// hold it for latency of simulated time, then run done (may be nil).
func (r *Resource) Serve(latency time.Duration, done func()) {
	r.Acquire(func() {
		r.engine.Schedule(latency, func() {
			r.Release()
			if done != nil {
				done()
			}
		})
	})
}

func (r *Resource) grab() {
	r.accountBusy()
	r.inUse++
	r.acquired++
}

func (r *Resource) accountBusy() {
	now := r.engine.Now()
	r.busyTime += time.Duration(r.inUse) * (now - r.lastChange)
	r.lastChange = now
}

// Stats returns cumulative counters: total acquisitions, the maximum
// observed queue length, and the aggregate unit-busy time (unit-seconds
// of service).
func (r *Resource) Stats() (acquired uint64, maxQueue int, busy time.Duration) {
	r.accountBusy()
	return r.acquired, r.maxQueue, r.busyTime
}

// Utilization returns the fraction of unit-time spent busy since the
// start of the simulation (0 if no time has passed).
func (r *Resource) Utilization() float64 {
	r.accountBusy()
	total := time.Duration(r.capacity) * r.engine.Now()
	if total <= 0 {
		return 0
	}
	return float64(r.busyTime) / float64(total)
}

// Tally accumulates scalar observations: count, sum, min, max and mean.
type Tally struct {
	n        uint64
	sum      float64
	min, max float64
}

// Add records one observation.
func (t *Tally) Add(x float64) {
	if t.n == 0 || x < t.min {
		t.min = x
	}
	if t.n == 0 || x > t.max {
		t.max = x
	}
	t.n++
	t.sum += x
}

// Count returns the number of observations.
func (t *Tally) Count() uint64 { return t.n }

// Sum returns the sum of observations.
func (t *Tally) Sum() float64 { return t.sum }

// Mean returns the average observation (0 when empty).
func (t *Tally) Mean() float64 {
	if t.n == 0 {
		return 0
	}
	return t.sum / float64(t.n)
}

// Min returns the smallest observation (0 when empty).
func (t *Tally) Min() float64 { return t.min }

// Max returns the largest observation (0 when empty).
func (t *Tally) Max() float64 { return t.max }
