// The fault-model invariant suite: the harness that makes the fault
// subsystem trustworthy.  It drives meshes from 5x5 up to 32x32 (1024
// routers) across several fault densities and every shipped routing
// policy, and asserts the contract the package documentation promises:
//
//  1. Completes or fails structurally: a run on a faulty mesh either
//     returns a Result or one of the documented structured errors —
//     never a plain string, never a hang.
//  2. Bounded: every run finishes within a generous wall-clock budget
//     (a deadlock would blow it; the context aborts and fails the test
//     instead of wedging the suite).
//  3. Leak-free: the goroutine count settles back to its baseline
//     after every run, including aborted ones.
//  4. Reproducible: rerunning the identical configuration and seed
//     yields a byte-identical JSON result (or the identical error).
//  5. Transparent when empty: the zero Spec reproduces the fault-free
//     simulator byte for byte.
//
// `go test -short` scales the suite down (8x8 ceiling, fewer reruns)
// for the race-detector CI job; the full run covers the 1024-router
// meshes.
package fault_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"repro/qnet"
	"repro/qnet/fault"
	"repro/qnet/route"
	"repro/qnet/simulate"
)

// runBudget bounds one simulation run.  A healthy run at these
// parameters takes well under a second; the budget exists so a routing
// or engine deadlock fails the suite instead of hanging it.
const runBudget = 2 * time.Minute

// densities is the fault dimension of the suite: three nonzero
// densities (the issue's minimum) bracketing light damage through
// heavy partition-inducing damage, plus the healthy control.
var densities = []struct {
	name string
	spec fault.Spec
}{
	{"healthy", fault.Spec{}},
	{"light", fault.Spec{DeadLinks: 0.02, Drop: 0.005}},
	{"medium", fault.Spec{DeadLinks: 0.08, Drop: 0.01,
		Regions: []fault.Region{{X: 1, Y: 1, W: 3, H: 3, Drop: 0.05}}}},
	{"heavy", fault.Spec{DeadLinks: 0.25, Drop: 0.02}},
}

// policies returns every shipped policy plus the fault-adaptive escape
// policy the subsystem introduces.
func policies() []route.Policy {
	return append(route.Policies(), route.FaultAdaptive())
}

// pairsProgram builds a small deterministic workload touching qubits
// all over an n-tile mesh: `ops` operations between pairs drawn from a
// fixed linear congruential sequence.  QFT at 1024 qubits would be
// half a million ops; the invariants need routes crossing the mesh,
// not a big program.
func pairsProgram(tiles, ops int) qnet.Program {
	prog := qnet.Program{Name: fmt.Sprintf("pairs-%d", tiles), Qubits: tiles}
	state := uint64(tiles)
	next := func() int {
		state = state*6364136223846793005 + 1442695040888963407
		return int((state >> 33) % uint64(tiles))
	}
	for len(prog.Ops) < ops {
		a, b := next(), next()
		if a == b {
			continue
		}
		prog.Ops = append(prog.Ops, qnet.Op{A: a, B: b})
	}
	return prog
}

// scaleCase is one mesh size of the suite with a workload sized to
// keep the full sweep tractable.
type scaleCase struct {
	n   int // mesh edge; n*n routers
	ops int
}

// scales returns the mesh sizes to drive.  The full suite tops out at
// 32x32 = 1024 routers (the issue's scale floor); -short stops at 8x8
// so the race-detector CI job stays fast.
func scales(short bool) []scaleCase {
	all := []scaleCase{{5, 60}, {8, 96}, {16, 128}, {32, 192}}
	if short {
		return all[:2]
	}
	return all
}

// buildMachine constructs the suite's standard machine: code level 0
// and purify depth 1 keep per-channel work minimal so the suite's cost
// is routing and fault handling, the thing under test.
func buildMachine(t *testing.T, grid qnet.Grid, pol route.Policy, sp fault.Spec, seed int64) *simulate.Machine {
	t.Helper()
	m, err := simulate.New(grid, simulate.HomeBase,
		simulate.WithResources(4, 4, 2),
		simulate.WithPurifyDepth(1),
		simulate.WithCodeLevel(0),
		simulate.WithRouting(pol),
		simulate.WithSeed(seed),
		simulate.WithFaults(sp))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return m
}

// structuredFaultError reports whether err is one of the documented
// structured outcomes of a faulty run.
func structuredFaultError(err error) bool {
	var unreachable *fault.UnreachableError
	var blocked *fault.RouteBlockedError
	var loss *fault.ExcessiveLossError
	var stall *simulate.StallError
	return errors.As(err, &unreachable) || errors.As(err, &blocked) ||
		errors.As(err, &loss) || errors.As(err, &stall)
}

// outcome is a run's comparable fingerprint: the full result as
// canonical JSON, or the error string.
func outcome(res simulate.Result, err error) string {
	if err != nil {
		return "error: " + err.Error()
	}
	b, jerr := json.Marshal(res)
	if jerr != nil {
		panic(jerr)
	}
	return string(b)
}

// runOnce executes one configuration under the suite's wall-clock
// budget and checks invariants 1 and 2.
func runOnce(t *testing.T, grid qnet.Grid, pol route.Policy, sp fault.Spec, seed int64, prog qnet.Program) string {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), runBudget)
	defer cancel()
	m := buildMachine(t, grid, pol, sp, seed)
	res, err := m.Run(ctx, prog)
	if ctxErr := context.Cause(ctx); ctxErr != nil && errors.Is(ctxErr, context.DeadlineExceeded) {
		t.Fatalf("run exceeded %v — likely deadlock (policy %s, faults %s)", runBudget, pol.Name(), sp)
	}
	if err != nil {
		if sp.Empty() {
			t.Fatalf("healthy mesh must not fail, got: %v", err)
		}
		if !structuredFaultError(err) {
			t.Fatalf("unstructured error from faulty run: %v (%T)", err, err)
		}
	}
	return outcome(res, err)
}

// settleGoroutines waits for the goroutine count to drop back to at
// most base, failing the test if it never does (invariant 3).
func settleGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= base {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d running, baseline %d", runtime.NumGoroutine(), base)
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
}

// TestInvariantsAtScale is the headline suite: every scale x density x
// policy combination upholds the five invariants.
func TestInvariantsAtScale(t *testing.T) {
	for _, sc := range scales(testing.Short()) {
		sc := sc
		t.Run(fmt.Sprintf("%dx%d", sc.n, sc.n), func(t *testing.T) {
			grid, err := qnet.NewGrid(sc.n, sc.n)
			if err != nil {
				t.Fatal(err)
			}
			prog := pairsProgram(grid.Tiles(), sc.ops)
			for _, d := range densities {
				for _, pol := range policies() {
					name := fmt.Sprintf("%s/%s", d.name, pol.Name())
					t.Run(name, func(t *testing.T) {
						// The leak baseline is captured inside the leaf:
						// the nested t.Run tRunner goroutines above this
						// one are alive for the leaf's whole lifetime and
						// are not the simulator's to clean up.
						baseline := runtime.NumGoroutine()
						seed := int64(sc.n)
						first := runOnce(t, grid, pol, d.spec, seed, prog)
						settleGoroutines(t, baseline)
						// Invariant 4: rerun the identical configuration.
						// On the big meshes only the fault-adaptive policy
						// reruns, to keep the full suite's cost linear in
						// the interesting dimension.
						if sc.n <= 8 || pol.Name() == "fault-adaptive" {
							second := runOnce(t, grid, pol, d.spec, seed, prog)
							if first != second {
								t.Fatalf("rerun diverged:\n first: %.200s\nsecond: %.200s", first, second)
							}
							settleGoroutines(t, baseline)
						}
					})
				}
			}
		})
	}
}

// TestEmptySpecIsByteTransparent pins invariant 5 directly: attaching
// the zero Spec must not perturb the simulation in any way — same
// bytes as a machine built without WithFaults at all.
func TestEmptySpecIsByteTransparent(t *testing.T) {
	grid, err := qnet.NewGrid(5, 5)
	if err != nil {
		t.Fatal(err)
	}
	prog := qnet.QFT(grid.Tiles())
	run := func(opts ...simulate.Option) string {
		t.Helper()
		base := []simulate.Option{
			simulate.WithSeed(11),
			simulate.WithFailureRate(0.05),
		}
		m, err := simulate.New(grid, simulate.HomeBase, append(base, opts...)...)
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.Run(context.Background(), prog)
		return outcome(res, err)
	}
	bare := run()
	empty := run(simulate.WithFaults(fault.Spec{}))
	if bare != empty {
		t.Fatalf("empty fault spec perturbed the run:\n bare: %.200s\nfault: %.200s", bare, empty)
	}
}

// TestSeedSelectsPattern pins that the fault pattern is a function of
// the run seed: different seeds draw different patterns (almost
// surely, at this density), and Preview replicates exactly what the
// run materialized — the dead-link count the Result reports.
func TestSeedSelectsPattern(t *testing.T) {
	grid, err := qnet.NewGrid(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	sp := fault.Spec{DeadLinks: 0.15}
	prog := pairsProgram(grid.Tiles(), 16)
	deadBySeed := make(map[int64]int)
	for seed := int64(1); seed <= 4; seed++ {
		model, err := fault.Preview(sp, grid, seed)
		if err != nil {
			t.Fatalf("Preview(seed=%d): %v", seed, err)
		}
		deadBySeed[seed] = model.DeadCount()

		m := buildMachine(t, grid, route.FaultAdaptive(), sp, seed)
		res, err := m.Run(context.Background(), prog)
		if err != nil {
			if !structuredFaultError(err) {
				t.Fatalf("seed %d: unstructured error: %v", seed, err)
			}
			continue
		}
		if res.DeadLinks != model.DeadCount() {
			t.Fatalf("seed %d: run reported %d dead links, Preview drew %d",
				seed, res.DeadLinks, model.DeadCount())
		}
	}
	distinct := make(map[int]bool)
	for _, n := range deadBySeed {
		distinct[n] = true
	}
	if len(distinct) < 2 {
		t.Fatalf("four seeds drew identical dead-link counts %v — pattern not seed-dependent?", deadBySeed)
	}
}

// TestFaultsAsSweepDimension drives the fault dimension through the
// sweep engine end to end: Space.Faults expands into per-spec points,
// healthy points succeed, faulty points complete-or-structurally-fail,
// and the point list is deterministic across expansions.
func TestFaultsAsSweepDimension(t *testing.T) {
	grid, err := qnet.NewGrid(5, 5)
	if err != nil {
		t.Fatal(err)
	}
	space := simulate.Space{
		Grids:     []qnet.Grid{grid},
		Layouts:   []simulate.Layout{simulate.HomeBase},
		Resources: []simulate.Resources{{Teleporters: 4, Generators: 4, Purifiers: 2}},
		Programs:  []qnet.Program{pairsProgram(grid.Tiles(), 12)},
		Depths:    []int{1},
		Routings:  []route.Policy{route.FaultAdaptive()},
		Faults:    []fault.Spec{{}, {DeadLinks: 0.1}, {Drop: 0.02}},
		Seeds:     []int64{1, 2},
	}
	if got, want := space.Size(), 3*2; got != want {
		t.Fatalf("Size() = %d, want %d", got, want)
	}
	points, err := simulate.Sweep(context.Background(), space)
	if err != nil {
		t.Fatalf("Sweep: %v", err)
	}
	if len(points) != space.Size() {
		t.Fatalf("got %d points, want %d", len(points), space.Size())
	}
	for _, pt := range points {
		if pt.Err != nil {
			if pt.Point.Faults.Empty() {
				t.Errorf("healthy point %d failed: %v", pt.Point.Index, pt.Err)
			} else if !structuredFaultError(pt.Err) {
				t.Errorf("point %d (faults %s): unstructured error: %v",
					pt.Point.Index, pt.Point.Faults, pt.Err)
			}
		}
	}
}
