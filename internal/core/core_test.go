package core

import (
	"testing"
	"time"

	"repro/internal/epr"
	"repro/internal/mesh"
	"repro/internal/netsim"
	"repro/internal/phys"
	"repro/internal/workload"
)

var base = phys.IonTrap2006()

func TestPlanBaselineChannel(t *testing.T) {
	ch, err := Plan(Spec{Params: base, Hops: 30})
	if err != nil {
		t.Fatal(err)
	}
	if ch.ErrorRate > 7.5e-5 {
		t.Errorf("error rate %g exceeds threshold", ch.ErrorRate)
	}
	if ch.EndpointRounds != 3 {
		t.Errorf("endpoint rounds = %d, want 3", ch.EndpointRounds)
	}
	// Paper §5.3: 392 pairs for the longest communication path.
	if ch.PairsPerLogical != 392 {
		t.Errorf("pairs per logical = %d, want 392", ch.PairsPerLogical)
	}
	if ch.SetupLatency <= 0 || ch.DataLatency <= 0 {
		t.Error("latencies must be positive")
	}
	if ch.Bandwidth <= 0 {
		t.Error("bandwidth must be positive")
	}
}

func TestPlanValidation(t *testing.T) {
	if _, err := Plan(Spec{Params: base, Hops: 0}); err == nil {
		t.Error("zero hops should fail")
	}
	bad := base
	bad.Errors.MoveCell = -1
	if _, err := Plan(Spec{Params: bad, Hops: 5}); err == nil {
		t.Error("invalid params should fail")
	}
	// Unreachable threshold: huge error rates.
	if _, err := Plan(Spec{Params: base.WithUniformError(1e-3), Hops: 5}); err == nil {
		t.Error("infeasible channel should fail")
	}
}

func TestDataLatencyApproachesClassical(t *testing.T) {
	// The paper's argument: with pre-distributed pairs, data movement
	// takes one teleport (~122µs) regardless of distance, not the
	// ballistic time (ms-scale over long paths).
	ch, err := Plan(Spec{Params: base, Hops: 30})
	if err != nil {
		t.Fatal(err)
	}
	ballistic := base.BallisticTime(30 * 600)
	if ch.DataLatency >= ballistic {
		t.Errorf("data latency %v should beat ballistic %v", ch.DataLatency, ballistic)
	}
	if ch.DataLatency > 200*time.Microsecond {
		t.Errorf("data latency %v should be ~one teleport (~122µs)", ch.DataLatency)
	}
}

func TestSetupLatencyGrowsWithDistance(t *testing.T) {
	prev := time.Duration(0)
	for _, hops := range []int{1, 5, 10, 20, 30} {
		ch, err := Plan(Spec{Params: base, Hops: hops})
		if err != nil {
			t.Fatal(err)
		}
		if ch.SetupLatency <= prev {
			t.Errorf("setup latency did not grow at %d hops: %v <= %v", hops, ch.SetupLatency, prev)
		}
		prev = ch.SetupLatency
	}
}

func TestBandwidthImprovesWithResources(t *testing.T) {
	lean, err := Plan(Spec{Params: base, Hops: 10, Teleporters: 4, Generators: 4, Purifiers: 1})
	if err != nil {
		t.Fatal(err)
	}
	rich, err := Plan(Spec{Params: base, Hops: 10, Teleporters: 64, Generators: 64, Purifiers: 16})
	if err != nil {
		t.Fatal(err)
	}
	if rich.Bandwidth <= lean.Bandwidth {
		t.Errorf("bandwidth should improve with resources: %g <= %g", rich.Bandwidth, lean.Bandwidth)
	}
}

func TestBottleneckShiftsToPurifier(t *testing.T) {
	ch, err := Plan(Spec{Params: base, Hops: 10, Teleporters: 64, Generators: 64, Purifiers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ch.Bottleneck != "purifier" {
		t.Errorf("bottleneck = %q, want purifier with p=1", ch.Bottleneck)
	}
}

func TestWireSchemeReducesPairHops(t *testing.T) {
	end, err := Plan(Spec{Params: base, Hops: 30, Scheme: epr.EndpointsOnly})
	if err != nil {
		t.Fatal(err)
	}
	wire, err := Plan(Spec{Params: base, Hops: 30, Scheme: epr.TwiceBefore})
	if err != nil {
		t.Fatal(err)
	}
	if wire.PairHopsPerLogical > end.PairHopsPerLogical {
		t.Errorf("wire purification should not increase pair-hops: %g > %g",
			wire.PairHopsPerLogical, end.PairHopsPerLogical)
	}
}

// Cross-validation: the analytic setup latency must agree with the
// event-driven simulator's measured uncontended channel latency within a
// factor of two (the models share stage times but differ in pipelining
// detail).
func TestPlanMatchesSimulator(t *testing.T) {
	for _, hops := range []int{1, 3, 7} {
		ch, err := Plan(Spec{Params: base, Hops: hops, Teleporters: 1024, Generators: 1024, Purifiers: 1024})
		if err != nil {
			t.Fatal(err)
		}
		grid, err := mesh.NewGrid(hops+1, 1)
		if err != nil {
			t.Fatal(err)
		}
		cfg := netsim.DefaultConfig(grid, netsim.HomeBase, 1024, 1024, 1024)
		prog := workload.Program{Name: "xval", Qubits: 2, Ops: []workload.Op{{A: 0, B: hops}}}
		// Place qubit "hops" at the far end by using qubits = hops+1 and
		// ops between 0 and hops.
		prog.Qubits = hops + 1
		res, err := netsim.Run(cfg, prog)
		if err != nil {
			t.Fatal(err)
		}
		analytic := ch.SetupLatency + ch.DataLatency
		measured := res.MeanChannelLatency
		ratio := float64(measured) / float64(analytic)
		if ratio < 0.5 || ratio > 2.0 {
			t.Errorf("hops=%d: simulator latency %v vs analytic %v (ratio %.2f), want within 2x",
				hops, measured, analytic, ratio)
		}
	}
}

func TestChannelString(t *testing.T) {
	ch, err := Plan(Spec{Params: base, Hops: 5})
	if err != nil {
		t.Fatal(err)
	}
	s := ch.String()
	for _, want := range []string{"5 hops", "pairs/logical", "bound"} {
		if !containsSub(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func containsSub(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
