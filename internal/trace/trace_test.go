package trace

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/mesh"
)

// fakeSource is a deterministic stand-in for the netsim counters.
type fakeSource struct {
	occ     []float64
	busy    []time.Duration
	linkCap int
}

func (f *fakeSource) SampleOccupancy(dst []float64)      { copy(dst, f.occ) }
func (f *fakeSource) SampleLinkBusy(dst []time.Duration) { copy(dst, f.busy) }
func (f *fakeSource) LinkCapacity() int                  { return f.linkCap }

// newBound builds a tracer bound to a 2x2 mesh (4 tiles, 4 links) over
// the given source.
func newBound(t *testing.T, cfg Config, src *fakeSource) *Tracer {
	t.Helper()
	grid, err := mesh.NewGrid(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	tr := New(cfg)
	tr.Bind(grid, src)
	return tr
}

// TestSampleSeries pins the sampling math: occupancy is copied through,
// and link utilization is the busy-time delta over capacity x elapsed.
func TestSampleSeries(t *testing.T) {
	src := &fakeSource{
		occ:     []float64{1, 0, 2, 0},
		busy:    []time.Duration{time.Microsecond, 0, 0, 0},
		linkCap: 2,
	}
	tr := newBound(t, Config{Interval: time.Microsecond}, src)

	tr.Sample(time.Microsecond, 100)
	// Link 0 was busy 1µs of a 1µs window with 2 units: utilization 0.5.
	src.busy[0] = 3 * time.Microsecond // +2µs over the next 1µs window: saturated
	src.occ[0] = 5
	tr.Sample(2*time.Microsecond, 250)

	ex := tr.Export()
	if ex.Version != Version || ex.GridW != 2 || ex.GridH != 2 {
		t.Fatalf("export header = %q %dx%d", ex.Version, ex.GridW, ex.GridH)
	}
	if want := []int64{1000, 2000}; !reflect.DeepEqual(ex.Times, want) {
		t.Errorf("Times = %v, want %v", ex.Times, want)
	}
	if want := []uint64{100, 250}; !reflect.DeepEqual(ex.Events, want) {
		t.Errorf("Events = %v, want %v", ex.Events, want)
	}
	if got := ex.Occupancy[1][0]; got != 5 {
		t.Errorf("Occupancy[1][0] = %v, want 5", got)
	}
	if got := ex.LinkUtil[0][0]; got != 0.5 {
		t.Errorf("first-window utilization = %v, want 0.5", got)
	}
	if got := ex.LinkUtil[1][0]; got != 1.0 {
		t.Errorf("second-window utilization = %v, want 1.0", got)
	}
	if got := ex.LinkUtil[1][1]; got != 0 {
		t.Errorf("idle link utilization = %v, want 0", got)
	}
}

// TestSampleRingWrap pins the ring contract: only the most recent
// Capacity samples are retained, oldest first, and TotalSamples still
// counts every one taken.
func TestSampleRingWrap(t *testing.T) {
	src := &fakeSource{occ: make([]float64, 4), busy: make([]time.Duration, 4), linkCap: 1}
	tr := newBound(t, Config{Interval: time.Microsecond, Capacity: 4}, src)
	for i := 1; i <= 10; i++ {
		tr.Sample(time.Duration(i)*time.Microsecond, uint64(i*10))
	}
	if got := tr.Samples(); got != 4 {
		t.Fatalf("Samples() = %d, want 4", got)
	}
	ex := tr.Export()
	if ex.TotalSamples != 10 {
		t.Errorf("TotalSamples = %d, want 10", ex.TotalSamples)
	}
	if want := []int64{7000, 8000, 9000, 10000}; !reflect.DeepEqual(ex.Times, want) {
		t.Errorf("Times = %v, want %v (oldest first)", ex.Times, want)
	}
}

// TestEventRingWrap pins the drop/resend log's ring: totals keep
// counting while the log retains the most recent entries oldest-first.
func TestEventRingWrap(t *testing.T) {
	src := &fakeSource{occ: make([]float64, 4), busy: make([]time.Duration, 4), linkCap: 1}
	tr := newBound(t, Config{Interval: time.Microsecond, EventCapacity: 3}, src)
	tr.RecordDrop(1*time.Microsecond, 0)
	tr.RecordResend(2*time.Microsecond, 1)
	tr.RecordDrop(3*time.Microsecond, 2)
	tr.RecordResend(4*time.Microsecond, 3)
	tr.RecordDrop(5*time.Microsecond, 0)

	ex := tr.Export()
	if ex.TotalDrops != 3 || ex.TotalResends != 2 {
		t.Errorf("totals = %d drops, %d resends, want 3, 2", ex.TotalDrops, ex.TotalResends)
	}
	want := []Event{
		{At: 3 * time.Microsecond, Kind: Drop, Link: 2},
		{At: 4 * time.Microsecond, Kind: Resend, Link: 3},
		{At: 5 * time.Microsecond, Kind: Drop, Link: 0},
	}
	if !reflect.DeepEqual(ex.Log, want) {
		t.Errorf("Log = %v, want %v", ex.Log, want)
	}
}

// TestLiveSnapshot pins the concurrent snapshot's contents.
func TestLiveSnapshot(t *testing.T) {
	src := &fakeSource{occ: []float64{2, 4, 0, 2}, busy: make([]time.Duration, 4), linkCap: 1}
	tr := newBound(t, Config{Interval: time.Microsecond}, src)
	if lv := tr.Live(); lv != (Live{}) {
		t.Fatalf("pre-sample Live = %+v, want zero", lv)
	}
	tr.RecordDrop(500*time.Nanosecond, 1)
	tr.Sample(time.Microsecond, 42)
	lv := tr.Live()
	want := Live{At: time.Microsecond, Events: 42, Samples: 1, MeanOccupancy: 2, Drops: 1}
	if lv != want {
		t.Errorf("Live = %+v, want %+v", lv, want)
	}
}

// TestBindResets pins that rebinding a tracer to a new run clears every
// recorded series — a tracer records one run at a time.
func TestBindResets(t *testing.T) {
	src := &fakeSource{occ: make([]float64, 4), busy: make([]time.Duration, 4), linkCap: 1}
	tr := newBound(t, Config{Interval: time.Microsecond}, src)
	tr.Sample(time.Microsecond, 10)
	tr.RecordDrop(time.Microsecond, 0)

	grid, err := mesh.NewGrid(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	tr.Bind(grid, src)
	if got := tr.Samples(); got != 0 {
		t.Errorf("Samples() after rebind = %d, want 0", got)
	}
	ex := tr.Export()
	if ex.TotalSamples != 0 || ex.TotalDrops != 0 || len(ex.Log) != 0 {
		t.Errorf("rebind kept state: %d samples, %d drops, %d log entries",
			ex.TotalSamples, ex.TotalDrops, len(ex.Log))
	}
	if lv := tr.Live(); lv != (Live{}) {
		t.Errorf("Live after rebind = %+v, want zero", lv)
	}
}

// TestExportRoundTrip pins the serialization: Encode → Decode preserves
// the export, and re-encoding is byte-identical (the determinism the
// trace parity tests lean on).
func TestExportRoundTrip(t *testing.T) {
	src := &fakeSource{
		occ:     []float64{1.5, 0, 0.25, 3},
		busy:    []time.Duration{time.Microsecond, 0, 500 * time.Nanosecond, 0},
		linkCap: 2,
	}
	tr := newBound(t, Config{Interval: time.Microsecond}, src)
	tr.Sample(time.Microsecond, 7)
	tr.RecordResend(1500*time.Nanosecond, 2)
	tr.Sample(2*time.Microsecond, 19)
	ex := tr.Export()

	var buf bytes.Buffer
	if err := ex.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	first := buf.String()
	dec, err := Decode(strings.NewReader(first))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dec, ex) {
		t.Errorf("decoded export differs:\n got %+v\nwant %+v", dec, ex)
	}
	var buf2 bytes.Buffer
	if err := dec.Encode(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf2.String() != first {
		t.Error("re-encoded export is not byte-identical")
	}
}

// TestDecodeRejectsVersion pins the format gate.
func TestDecodeRejectsVersion(t *testing.T) {
	if _, err := Decode(strings.NewReader(`{"version":"qnet-trace-v0"}`)); err == nil {
		t.Error("Decode accepted an unknown version")
	}
	if _, err := Decode(strings.NewReader(`{`)); err == nil {
		t.Error("Decode accepted malformed JSON")
	}
}

// TestClamp01 is the normalization-layer half of the route.Loads
// contract: loads legitimately exceed 1.0 under backlog, and the
// figure/heatmap layer clamps them rather than assuming bounded inputs.
func TestClamp01(t *testing.T) {
	cases := []struct {
		in, want float64
	}{
		{-1, 0},
		{-0.001, 0},
		{0, 0},
		{0.5, 0.5},
		{1, 1},
		{1.001, 1}, // just over capacity: one queued batch
		{1.75, 1},  // the backlog regime route.Loads reports
		{3.25, 1},  // deep backlog
		{math.Inf(1), 1},
	}
	for _, c := range cases {
		if got := Clamp01(c.in); got != c.want {
			t.Errorf("Clamp01(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}
