package distrib

import (
	"encoding/json"
	"errors"
	"reflect"
	"testing"

	"repro/qnet"
	"repro/qnet/fault"
	"repro/qnet/simulate"
)

// TestSpaceSpecWireRoundTrip drives every optional dimension — the
// fault dimension included — through the wire: spec → JSON → spec must
// be lossless, and the resolved Space must carry the same dimensions
// (by canonical name for the parsed ones), so coordinator and worker
// expand the identical point list.
func TestSpaceSpecWireRoundTrip(t *testing.T) {
	grid, err := qnet.NewGrid(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	base := SpaceSpec{
		Grids:     []qnet.Grid{grid},
		Layouts:   []string{"HomeBase"},
		Resources: []simulate.Resources{{Teleporters: 8, Generators: 8, Purifiers: 4}},
		Programs:  []qnet.Program{qnet.QFT(grid.Tiles())},
	}
	cases := []struct {
		name     string
		mutate   func(*SpaceSpec)
		wantSize int
	}{
		{"minimal", func(s *SpaceSpec) {}, 1},
		{"seeds and depths", func(s *SpaceSpec) {
			s.Depths = []int{1, 3}
			s.Seeds = []int64{1, 2, 3}
		}, 6},
		{"routings incl fault-adaptive", func(s *SpaceSpec) {
			s.Routings = []string{"xy", "zigzag", "fault-adaptive"}
		}, 3},
		{"fault dimension", func(s *SpaceSpec) {
			s.Faults = []fault.Spec{
				{},
				{DeadLinks: 0.1},
				{Drop: 0.02, Regions: []fault.Region{{X: 0, Y: 0, W: 2, H: 2, Drop: 0.1}}},
			}
			s.Routings = []string{"fault-adaptive"}
		}, 3},
		{"every dimension", func(s *SpaceSpec) {
			s.Layouts = []string{"HomeBase", "MobileQubit"}
			s.Depths = []int{2, 3}
			s.Routings = []string{"xy", "fault-adaptive"}
			s.Faults = []fault.Spec{{}, {DeadLinks: 0.05, Drop: 0.01}}
			s.Seeds = []int64{7, 8}
			s.FailureRate = 0.05
		}, 2 * 2 * 2 * 2 * 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec := base
			tc.mutate(&spec)

			b, err := json.Marshal(spec)
			if err != nil {
				t.Fatalf("Marshal: %v", err)
			}
			var wired SpaceSpec
			if err := json.Unmarshal(b, &wired); err != nil {
				t.Fatalf("Unmarshal: %v", err)
			}
			if !reflect.DeepEqual(spec, wired) {
				t.Fatalf("wire round trip lossy:\n sent: %+v\n got:  %+v", spec, wired)
			}

			space, err := wired.Space()
			if err != nil {
				t.Fatalf("Space: %v", err)
			}
			if got := space.Size(); got != tc.wantSize {
				t.Fatalf("Size = %d, want %d", got, tc.wantSize)
			}
			if n, err := wired.Size(); err != nil || n != tc.wantSize {
				t.Fatalf("spec.Size() = %d, %v", n, err)
			}
			if got := RoutingNames(space.Routings); !reflect.DeepEqual(got, spec.Routings) &&
				!(len(got) == 0 && len(spec.Routings) == 0) {
				t.Fatalf("routings survived as %v, want %v", got, spec.Routings)
			}
			if !reflect.DeepEqual(space.Faults, spec.Faults) {
				t.Fatalf("fault dimension survived as %v, want %v", space.Faults, spec.Faults)
			}
		})
	}
}

// TestSpaceSpecFaultPointsBothSides expands a fault-dimension spec on
// "both sides of the wire" and checks point-by-point identity — the
// property shard dispatch depends on: an index computed by the
// coordinator selects the same configuration on the worker.
func TestSpaceSpecFaultPointsBothSides(t *testing.T) {
	grid, err := qnet.NewGrid(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	spec := SpaceSpec{
		Grids:     []qnet.Grid{grid},
		Layouts:   []string{"HomeBase"},
		Resources: []simulate.Resources{{Teleporters: 4, Generators: 4, Purifiers: 2}},
		Programs:  []qnet.Program{qnet.QFT(grid.Tiles())},
		Routings:  []string{"fault-adaptive"},
		Faults:    []fault.Spec{{}, {DeadLinks: 0.15}},
		Seeds:     []int64{1, 2},
	}
	b, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	var wired SpaceSpec
	if err := json.Unmarshal(b, &wired); err != nil {
		t.Fatal(err)
	}
	expand := func(s SpaceSpec) []string {
		space, err := s.Space()
		if err != nil {
			t.Fatal(err)
		}
		pts, err := simulate.Sweep(t.Context(), space)
		if err != nil {
			t.Fatal(err)
		}
		ids := make([]string, len(pts))
		for i, pt := range pts {
			ids[i] = pt.Point.RoutingName() + "/" + pt.Point.FaultsName() +
				"/" + pt.Point.Program.Name
		}
		return ids
	}
	coordinator, worker := expand(spec), expand(wired)
	if !reflect.DeepEqual(coordinator, worker) {
		t.Fatalf("expansions differ:\ncoordinator: %v\nworker:      %v", coordinator, worker)
	}
}

// TestSpaceSpecStructuredErrors pins the wire layer's rejection
// contract: unknown routing and layout names fail with a
// *qnet.ConfigError naming the offending field and value, matchable
// with errors.As like every other validation failure.
func TestSpaceSpecStructuredErrors(t *testing.T) {
	base := testSpec(t)
	cases := []struct {
		name      string
		mutate    func(*SpaceSpec)
		wantField string
		wantValue any
	}{
		{"unknown routing", func(s *SpaceSpec) { s.Routings = []string{"warp"} }, "Routings", "warp"},
		{"unknown layout", func(s *SpaceSpec) { s.Layouts = []string{"openplan"} }, "Layout", "openplan"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec := base
			tc.mutate(&spec)
			_, err := spec.Space()
			var cerr *qnet.ConfigError
			if !errors.As(err, &cerr) {
				t.Fatalf("got %v (%T), want *qnet.ConfigError", err, err)
			}
			if cerr.Field != tc.wantField {
				t.Fatalf("error names field %q, want %q", cerr.Field, tc.wantField)
			}
			if cerr.Value != tc.wantValue {
				t.Fatalf("error carries value %v, want %v", cerr.Value, tc.wantValue)
			}
			if !errors.Is(err, qnet.ErrInvalidConfig) {
				t.Fatal("ConfigError must unwrap to ErrInvalidConfig")
			}
		})
	}
}
