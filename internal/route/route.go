// Package route is the pluggable routing layer of the mesh
// interconnect: given a source and destination tile it decides the hop
// sequence a quantum channel takes across the grid.
//
// The paper's Section 5 simulator hardwires dimension-order (X then Y)
// routing.  Its router hardware (Figure 6's split X/Y teleporter sets
// with a ballistic turn penalty) is exactly the substrate where the
// routing decision determines contention, turn cost and storage
// pressure, so this package makes it a first-class, swappable Policy:
// the simulator, the analytic channel planner and the sweep engine all
// accept any Policy and thread it down to path construction.
//
// Four policies ship with the repository:
//
//   - XYOrder: X then Y, the paper's dimension-order default.
//   - YXOrder: Y then X, the mirrored dimension order.
//   - ZigZag: staircase interleaving of X and Y moves, spreading the
//     turn penalty across the path's intermediate routers.
//   - LeastCongested: minimal adaptive routing; at every tile it takes
//     the productive direction whose teleporter set and downstream
//     storage report the least live load.
//
// Every shipped policy is minimal: it only ever moves toward the
// destination, so the hop count always equals the Manhattan distance
// and policies differ only in where they turn.
//
// # Deadlock freedom
//
// The simulator's flow control is blocking: a batch holds its storage
// credit at the current tile while waiting for one at the next, so a
// cycle in the channel-dependency graph deadlocks the run.  Dimension
// order (XYOrder, YXOrder) is acyclic by the classic argument; ZigZag
// and LeastCongested restrict themselves to the negative-first turn
// model (Glass & Ni): all West/North (negative) hops are taken before
// any East/South (positive) hop, turns inside each phase are free, and
// the forbidden positive-to-negative turns are exactly the ones every
// dependency cycle needs.  Custom Policy implementations must obey a
// deadlock-free turn model too — staying inside negative-first is the
// simplest sufficient condition — or the simulation can stall (which
// netsim reports as an error rather than hanging).
package route

import (
	"fmt"
	"strings"

	"repro/internal/mesh"
)

// Loads exposes live congestion of the mesh to adaptive policies.  The
// simulator implements it over its router nodes; analytic callers pass
// nil, which every shipped policy treats as a zero-load mesh.
type Loads interface {
	// AxisLoad reports the queue pressure of the directional teleporter
	// set at tile c (axis 0 = X-direction traffic, 1 = Y-direction):
	// in-service plus waiting jobs, normalized by set capacity.
	AxisLoad(c mesh.Coord, axis int) float64
	// StorageLoad reports the occupancy fraction of tile c's incoming
	// storage for traffic arriving from the given direction (0 = empty,
	// 1 = full with waiters; 0 when the tile has no such link).
	StorageLoad(c mesh.Coord, from mesh.Direction) float64
}

// Policy decides the hop path of one channel: a sequence of directions
// from src to dst on the grid.  Implementations must be deterministic
// for equal inputs (the simulator's reproducibility depends on it) and
// safe for concurrent use; the shipped policies are stateless values.
type Policy interface {
	// Name returns the policy's canonical CLI name ("xy", "yx",
	// "zigzag", "least-congested").  Names identify policies in cache
	// keys, so two policies with equal names must route identically.
	Name() string
	// Route produces the hop sequence from src to dst.  loads may be
	// nil; adaptive policies then fall back to a deterministic static
	// order.  An empty path means src == dst.
	Route(g mesh.Grid, src, dst mesh.Coord, loads Loads) ([]mesh.Direction, error)
}

// Deterministic is the optional capability interface a Policy
// implements to declare that its routes depend only on (grid, src,
// dst) — never on the live Loads.  Such a policy answers every
// repeated (src, dst) query identically, so the simulator memoizes its
// paths in a per-run route cache instead of re-running it for every
// channel.  A policy that consults Loads (e.g. LeastCongested) must
// not implement it — or must return false — and transparently bypasses
// the cache.
type Deterministic interface {
	// Deterministic reports whether Route ignores its Loads argument.
	Deterministic() bool
}

// IsDeterministic reports whether p declares load-independence through
// the Deterministic capability interface.  Policies without the method
// are conservatively treated as adaptive (not cacheable).
func IsDeterministic(p Policy) bool {
	d, ok := p.(Deterministic)
	return ok && d.Deterministic()
}

// DefaultName is the canonical name of the default policy (dimension
// order, the paper's hardwired choice).
const DefaultName = "xy"

// NameOf returns the policy's name, mapping nil to DefaultName.  It is
// the canonical form used in cache keys and result grouping: a machine
// built without an explicit policy routes exactly like XYOrder, so both
// must serialize identically.
func NameOf(p Policy) string {
	if p == nil {
		return DefaultName
	}
	return p.Name()
}

// Default returns the default policy, XYOrder.
func Default() Policy { return XYOrder() }

// checkEndpoints validates that both endpoints lie on the grid.
func checkEndpoints(g mesh.Grid, src, dst mesh.Coord) error {
	if !g.Contains(src) {
		return fmt.Errorf("route: source %v outside %dx%d grid", src, g.Width, g.Height)
	}
	if !g.Contains(dst) {
		return fmt.Errorf("route: destination %v outside %dx%d grid", dst, g.Width, g.Height)
	}
	return nil
}

// xDir returns the productive X direction from src toward dst and the
// number of X hops remaining.
func xDir(src, dst mesh.Coord) (mesh.Direction, int) {
	if dst.X >= src.X {
		return mesh.East, dst.X - src.X
	}
	return mesh.West, src.X - dst.X
}

// yDir returns the productive Y direction from src toward dst and the
// number of Y hops remaining.
func yDir(src, dst mesh.Coord) (mesh.Direction, int) {
	if dst.Y >= src.Y {
		return mesh.South, dst.Y - src.Y
	}
	return mesh.North, src.Y - dst.Y
}

// xyOrder is the dimension-order policy (X then Y).
type xyOrder struct{}

// XYOrder returns the paper's dimension-order routing policy: all X
// hops first, then all Y hops, at most one turn per path.  It is the
// default everywhere a Policy is accepted, and it reproduces the
// pre-refactor simulator byte for byte.
func XYOrder() Policy { return xyOrder{} }

// Name returns "xy".
func (xyOrder) Name() string { return "xy" }

// Deterministic reports that dimension-order routes ignore live loads.
func (xyOrder) Deterministic() bool { return true }

// Route produces the X-then-Y dimension-order path.
func (xyOrder) Route(g mesh.Grid, src, dst mesh.Coord, _ Loads) ([]mesh.Direction, error) {
	// mesh.Grid.Route is the dimension-order reference implementation;
	// delegating keeps this policy provably identical to the
	// pre-refactor router.
	return g.Route(src, dst)
}

// yxOrder is the mirrored dimension-order policy (Y then X).
type yxOrder struct{}

// YXOrder returns the mirrored dimension-order policy: all Y hops
// first, then all X hops.  Against XYOrder it shifts which teleporter
// sets and links carry the traffic of a skewed workload.
func YXOrder() Policy { return yxOrder{} }

// Name returns "yx".
func (yxOrder) Name() string { return "yx" }

// Deterministic reports that mirrored dimension-order routes ignore
// live loads.
func (yxOrder) Deterministic() bool { return true }

// Route produces the Y-then-X dimension-order path.
func (yxOrder) Route(g mesh.Grid, src, dst mesh.Coord, _ Loads) ([]mesh.Direction, error) {
	if err := checkEndpoints(g, src, dst); err != nil {
		return nil, err
	}
	dx, nx := xDir(src, dst)
	dy, ny := yDir(src, dst)
	path := make([]mesh.Direction, 0, nx+ny)
	for i := 0; i < ny; i++ {
		path = append(path, dy)
	}
	for i := 0; i < nx; i++ {
		path = append(path, dx)
	}
	return path, nil
}

// negative reports whether a direction decreases its coordinate (West
// or North) — the "negative" phase of the negative-first turn model.
func negative(d mesh.Direction) bool { return d == mesh.West || d == mesh.North }

// zigZag is the staircase policy.
type zigZag struct{}

// ZigZag returns the staircase policy: X and Y moves alternate
// (starting on X) whenever the turn model allows it, so a diagonal
// route turns at almost every intermediate tile, spreading the
// ballistic turn penalty — and the directional teleporter-set pressure
// — across the whole path instead of concentrating it at one corner.
//
// The staircase stays inside the negative-first turn model: when the
// two dimensions travel the same sign (East+South, or West+North) the
// full alternation is legal; when they mix signs the negative
// dimension runs first and the path degenerates to dimension order,
// keeping the policy deadlock-free under blocking flow control.
func ZigZag() Policy { return zigZag{} }

// Name returns "zigzag".
func (zigZag) Name() string { return "zigzag" }

// Deterministic reports that staircase routes ignore live loads.
func (zigZag) Deterministic() bool { return true }

// Route produces the alternating staircase path.
func (zigZag) Route(g mesh.Grid, src, dst mesh.Coord, _ Loads) ([]mesh.Direction, error) {
	if err := checkEndpoints(g, src, dst); err != nil {
		return nil, err
	}
	dx, nx := xDir(src, dst)
	dy, ny := yDir(src, dst)
	path := make([]mesh.Direction, 0, nx+ny)
	if nx > 0 && ny > 0 && negative(dx) != negative(dy) {
		// Mixed signs: every interleaving would need a forbidden
		// positive-to-negative turn, so run the negative dimension
		// first (one legal negative-to-positive turn).
		first, firstN, second, secondN := dx, nx, dy, ny
		if negative(dy) {
			first, firstN, second, secondN = dy, ny, dx, nx
		}
		for i := 0; i < firstN; i++ {
			path = append(path, first)
		}
		for i := 0; i < secondN; i++ {
			path = append(path, second)
		}
		return path, nil
	}
	onX := true
	for nx > 0 || ny > 0 {
		if (onX && nx > 0) || ny == 0 {
			path = append(path, dx)
			nx--
		} else {
			path = append(path, dy)
			ny--
		}
		onX = !onX
	}
	return path, nil
}

// leastCongested is the adaptive policy.
type leastCongested struct{}

// LeastCongested returns the minimal adaptive policy: at every tile
// with a legal choice it compares the live load of the two productive
// directions — the local directional teleporter set plus the next
// tile's incoming storage — and takes the lighter one.  Ties continue
// straight (avoiding a gratuitous turn), and a nil Loads degrades to a
// deterministic static order, so the policy stays fully reproducible
// for a deterministic simulation.
//
// Adaptivity is restricted to the negative-first turn model: when both
// dimensions travel the same sign the choice is free at every hop;
// when they mix signs the negative dimension must finish first (a
// single legal turn), which is the price of deadlock freedom under the
// router's blocking storage credits.
func LeastCongested() Policy { return leastCongested{} }

// Name returns "least-congested".
func (leastCongested) Name() string { return "least-congested" }

// Route produces the load-adaptive minimal path.
func (leastCongested) Route(g mesh.Grid, src, dst mesh.Coord, loads Loads) ([]mesh.Direction, error) {
	if err := checkEndpoints(g, src, dst); err != nil {
		return nil, err
	}
	dx, nx := xDir(src, dst)
	dy, ny := yDir(src, dst)
	path := make([]mesh.Direction, 0, nx+ny)
	cur := src
	var last mesh.Direction
	haveLast := false
	step := func(d mesh.Direction) {
		path = append(path, d)
		cur = cur.Step(d)
		last, haveLast = d, true
	}
	if nx > 0 && ny > 0 && negative(dx) != negative(dy) {
		// Mixed signs: the turn model forces the negative phase first,
		// leaving no adaptive freedom on a minimal path.
		first, firstN, second, secondN := dx, nx, dy, ny
		if negative(dy) {
			first, firstN, second, secondN = dy, ny, dx, nx
		}
		for i := 0; i < firstN; i++ {
			step(first)
		}
		for i := 0; i < secondN; i++ {
			step(second)
		}
		return path, nil
	}
	for nx > 0 || ny > 0 {
		switch {
		case ny == 0:
			step(dx)
			nx--
		case nx == 0:
			step(dy)
			ny--
		default:
			cx, cy := 0.0, 0.0
			if loads != nil {
				// Cost of a move: pressure on the teleporter set that
				// serves it at the current tile, plus the downstream
				// storage the batch will occupy (traffic entering the
				// next tile arrives from the opposite direction).
				cx = loads.AxisLoad(cur, dx.Axis()) + loads.StorageLoad(cur.Step(dx), dx.Opposite())
				cy = loads.AxisLoad(cur, dy.Axis()) + loads.StorageLoad(cur.Step(dy), dy.Opposite())
			}
			switch {
			case cx < cy:
				step(dx)
				nx--
			case cy < cx:
				step(dy)
				ny--
			case haveLast && last == dy:
				// Tie: keep going straight rather than paying a turn.
				step(dy)
				ny--
			default:
				step(dx)
				nx--
			}
		}
	}
	return path, nil
}

// Turns counts the direction changes along a path — the number of
// ballistic X/Y set switches its batches pay inside router nodes.
func Turns(dirs []mesh.Direction) int {
	turns := 0
	for i := 1; i < len(dirs); i++ {
		if dirs[i].Axis() != dirs[i-1].Axis() {
			turns++
		}
	}
	return turns
}

// Policies returns one instance of every shipped policy, in canonical
// order (the order Names documents and the sweep dimension defaults
// to).
func Policies() []Policy {
	return []Policy{XYOrder(), YXOrder(), ZigZag(), LeastCongested()}
}

// Names returns the canonical CLI names of the shipped policies.
func Names() []string {
	ps := Policies()
	names := make([]string, len(ps))
	for i, p := range ps {
		names[i] = p.Name()
	}
	return names
}

// Parse resolves a policy by its canonical name (case-insensitive).
// The empty string resolves to the default policy.  Beyond the
// Policies() comparison set, Parse also recognizes "fault-adaptive",
// the escape-channel policy for meshes with dead links, and the
// per-channel composite "bydist(short,long,threshold)".
func Parse(name string) (Policy, error) {
	n := strings.ToLower(strings.TrimSpace(name))
	if n == "" {
		return Default(), nil
	}
	if strings.HasPrefix(n, "bydist(") && strings.HasSuffix(n, ")") {
		return parseByDistance(n)
	}
	for _, p := range Policies() {
		if p.Name() == n {
			return p, nil
		}
	}
	if fa := FaultAdaptive(); fa.Name() == n {
		return fa, nil
	}
	known := append(Names(), FaultAdaptive().Name(), "bydist(short,long,threshold)")
	return nil, fmt.Errorf("route: unknown policy %q (want %s)", name, strings.Join(known, ", "))
}

// ParseList resolves a comma-separated list of policy names, e.g.
// "xy,yx,zigzag,least-congested".  The split respects parentheses, so
// composite names like "bydist(xy,yx,5)" survive as one element.  The
// empty string resolves to all shipped policies.
func ParseList(csv string) ([]Policy, error) {
	if strings.TrimSpace(csv) == "" {
		return Policies(), nil
	}
	parts := splitTopLevel(csv)
	out := make([]Policy, 0, len(parts))
	for _, part := range parts {
		p, err := Parse(part)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}
