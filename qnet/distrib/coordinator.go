// The coordinator half of the distributed sweep service: shard
// planning, dispatch, capped-exponential retry, circuit-breaker
// quarantine, dead-worker reassignment, checkpoint journaling, and the
// merge back into the single-process []simulate.SweepPoint contract.

package distrib

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/qnet"
	"repro/qnet/simulate"
)

// ErrAttemptsExhausted marks a sweep failure caused by a shard
// exhausting its dispatch attempts (WithMaxAttempts).  It is wrapped
// into the error Sweep returns, so front-ends can errors.Is-match the
// exhausted-retries outcome distinctly from configuration errors and
// cancellation.
var ErrAttemptsExhausted = errors.New("distrib: shard attempts exhausted")

// Coordinator shards a sweep space across a fleet of workers and
// merges their streamed results.  Build one with NewCoordinator and
// run sweeps with Sweep; a Coordinator is safe for sequential reuse
// (one Sweep at a time).
type Coordinator struct {
	transport     Transport
	workers       []string
	shards        int
	attempts      int
	backoff       time.Duration
	backoffCap    time.Duration
	dispatchLimit time.Duration
	breakAfter    int
	breakCooldown time.Duration
	heartbeat     time.Duration
	journalDir    string
	store         simulate.Store
	storeURL      string
	logf          func(format string, args ...any)
	progress      func(worker string, st Status)
}

// CoordinatorOption configures a Coordinator.
type CoordinatorOption func(*Coordinator)

// WithShards sets how many shards the space is partitioned into.  The
// default is four per worker: small enough to amortize dispatch,
// large enough that losing a worker mid-shard forfeits little work.
func WithShards(n int) CoordinatorOption {
	return func(c *Coordinator) { c.shards = n }
}

// WithMaxAttempts caps how many times one shard may be dispatched
// before the sweep fails (first attempt included).  The default is
// the worker count plus two, so a shard survives every worker dying
// once plus scheduling bad luck.
func WithMaxAttempts(n int) CoordinatorOption {
	return func(c *Coordinator) { c.attempts = n }
}

// WithRetryBackoff sets the base delay before a failed shard is
// re-enqueued (default 50ms).  The delay doubles with each failed
// attempt up to the WithRetryBackoffCap ceiling, with deterministic
// jitter in [delay/2, delay] so synchronized failures desynchronize
// their retries.
func WithRetryBackoff(d time.Duration) CoordinatorOption {
	return func(c *Coordinator) { c.backoff = d }
}

// WithRetryBackoffCap sets the ceiling of the exponential retry delay
// (default 2s).  A cap below the base collapses every retry to the
// cap.
func WithRetryBackoffCap(d time.Duration) CoordinatorOption {
	return func(c *Coordinator) { c.backoffCap = d }
}

// WithDispatchTimeout bounds each shard dispatch: a transport Run that
// has not completed within d is cancelled and counts as a failed
// attempt (retried with backoff like any other failure).  Zero (the
// default) leaves dispatches bounded only by the sweep context — size
// d to the slowest legitimate shard, not the mean.
func WithDispatchTimeout(d time.Duration) CoordinatorOption {
	return func(c *Coordinator) { c.dispatchLimit = d }
}

// WithCircuitBreaker quarantines a worker after n consecutive failed
// shard dispatches: the worker receives no new work for the cooldown,
// then re-enters on probation — one further failure re-quarantines it
// immediately, one success restores it fully.  Quarantine is for
// workers that keep answering but keep failing (version skew, a bad
// disk, a flaky link); genuinely dead workers are handled by the
// healthz/heartbeat path instead.  n <= 0 disables the breaker.  The
// default is 3 failures with a 1s cooldown.
func WithCircuitBreaker(n int, cooldown time.Duration) CoordinatorOption {
	return func(c *Coordinator) { c.breakAfter, c.breakCooldown = n, cooldown }
}

// WithHeartbeat enables active liveness probing: every worker's Status
// is fetched at this period, and two consecutive failed fetches mark
// the worker dead and abort its in-flight shard (which then
// reassigns).  Each successful beat also feeds the WithProgress
// callback, so heartbeats double as live progress/telemetry probes.
// Zero (the default) relies on in-band detection only — a dead worker
// is noticed when its result stream breaks.
func WithHeartbeat(d time.Duration) CoordinatorOption {
	return func(c *Coordinator) { c.heartbeat = d }
}

// WithProgress installs a per-worker progress callback, invoked with
// each successful heartbeat's Status snapshot — shard progress plus,
// for workers built with WithWorkerTelemetry, the live event rate and
// router occupancy of their in-flight runs.  It only fires while a
// heartbeat period is set (WithHeartbeat); the callback must be safe
// for concurrent calls, one goroutine per worker.
func WithProgress(f func(worker string, st Status)) CoordinatorOption {
	return func(c *Coordinator) { c.progress = f }
}

// WithJournal enables the coordinator's checkpoint journal: an
// append-only NDJSON file under dir (named by a hash of the spec and
// shard plan) records each shard's completion as it lands.  A crashed
// or cancelled Sweep re-run with the same journal directory, spec and
// shard count re-dispatches only the unfinished shards; the finished
// ones are reconstructed point by point from the shared store
// (Report.ResumedShards counts them).  Resume therefore needs
// WithSharedStore — without a store the journal still records, but
// every shard re-dispatches.  A journaled shard containing a failed
// point is never store-covered, so it too re-dispatches.
func WithJournal(dir string) CoordinatorOption {
	return func(c *Coordinator) { c.journalDir = dir }
}

// WithSharedStore gives the coordinator the fleet's shared result
// store: merged fresh points are sanity-checked against it (see
// Report.Mismatches), its stats land in the Report, and — when url is
// non-empty — every dispatched Job carries it as StoreURL so workers
// consult the same store remotely.  Pass url "" for transports whose
// workers already share the store in process (Loopback).
func WithSharedStore(st simulate.Store, url string) CoordinatorOption {
	return func(c *Coordinator) { c.store, c.storeURL = st, url }
}

// WithLogf installs a progress logger (default: silent).
func WithLogf(f func(format string, args ...any)) CoordinatorOption {
	return func(c *Coordinator) { c.logf = f }
}

// NewCoordinator builds a coordinator dispatching over the transport
// to the named workers (for HTTPTransport, their base URLs).
func NewCoordinator(t Transport, workers []string, opts ...CoordinatorOption) (*Coordinator, error) {
	if t == nil {
		return nil, &qnet.ConfigError{Field: "Transport", Value: "-", Reason: "transport must not be nil"}
	}
	if len(workers) == 0 {
		return nil, &qnet.ConfigError{Field: "Workers", Value: 0, Reason: "need at least one worker"}
	}
	c := &Coordinator{
		transport:     t,
		workers:       workers,
		shards:        4 * len(workers),
		attempts:      len(workers) + 2,
		backoff:       50 * time.Millisecond,
		backoffCap:    2 * time.Second,
		breakAfter:    3,
		breakCooldown: time.Second,
		logf:          func(string, ...any) {},
	}
	for _, opt := range opts {
		opt(c)
	}
	return c, nil
}

// Report is the operational outcome of one distributed sweep: how the
// work spread, what failed over, and how the shared store behaved.
type Report struct {
	// Points is the number of distinct run points merged.
	Points int
	// CacheHits is how many merged points were served from the shared
	// store rather than freshly simulated.
	CacheHits int
	// Shards is the number of planned shards.
	Shards int
	// ResumedShards counts shards never dispatched on this run because
	// the checkpoint journal (WithJournal) recorded them complete and
	// every one of their points was reconstructed from the shared
	// store.
	ResumedShards int
	// Reassignments counts shard dispatches beyond each shard's first
	// (retries on any worker plus failovers to another).
	Reassignments int
	// DuplicatePoints counts points delivered more than once — the
	// overlap a reassigned shard re-delivers; duplicates are dropped
	// on merge (first result wins).
	DuplicatePoints int
	// Mismatches counts fresh results that disagreed with the shared
	// store's entry for the same key: nonzero means a worker diverged
	// (version skew or lost determinism).  Details lists the first few
	// as "index N: <metric deltas>".
	Mismatches int
	// MismatchDetails are the first mismatches' metric deltas.
	MismatchDetails []string
	// Quarantines counts circuit-breaker trips across the fleet
	// (WithCircuitBreaker): workers sidelined for a cooldown after
	// consecutive failed dispatches.
	Quarantines int
	// QuarantinesByWorker counts circuit-breaker trips per worker (nil
	// when the breaker never fired).
	QuarantinesByWorker map[string]int
	// DeadWorkers lists workers that were declared dead during the
	// sweep.
	DeadWorkers []string
	// DrainingWorkers lists workers that refused new work because they
	// were draining — healthy but unavailable, not dead.
	DrainingWorkers []string
	// ShardsByWorker counts completed shards per worker.
	ShardsByWorker map[string]int
	// Store is the shared store's counter snapshot after the sweep
	// (zero when no store was attached).
	Store simulate.CacheStats
}

// String renders the report compactly.
func (r *Report) String() string {
	out := fmt.Sprintf("%d points (%d store hits) over %d shards, %d reassignments, %d duplicates, %d mismatches",
		r.Points, r.CacheHits, r.Shards, r.Reassignments, r.DuplicatePoints, r.Mismatches)
	if r.ResumedShards > 0 {
		out += fmt.Sprintf(", %d resumed from journal", r.ResumedShards)
	}
	if r.Quarantines > 0 {
		out += fmt.Sprintf(", %d quarantines", r.Quarantines)
	}
	if len(r.DeadWorkers) > 0 {
		out += fmt.Sprintf(", dead workers %v", r.DeadWorkers)
	}
	if len(r.DrainingWorkers) > 0 {
		out += fmt.Sprintf(", draining workers %v", r.DrainingWorkers)
	}
	return out
}

// shardState is one shard's dispatch bookkeeping.
type shardState struct {
	Shard
	attempts int
}

// retryDelay computes the re-enqueue delay for a shard's k-th failed
// attempt: base doubled per attempt, capped, then jittered into
// [d/2, d] by a deterministic hash of the (shard, attempt) pair — no
// RNG, so retry timing is reproducible while synchronized failures
// still fan out.
func retryDelay(base, ceil time.Duration, shard, attempt int) time.Duration {
	if base <= 0 {
		return 0
	}
	d := base
	for i := 1; i < attempt && d < ceil; i++ {
		d *= 2
	}
	if d > ceil {
		d = ceil
	}
	h := uint64(shard)*0x9e3779b97f4a7c15 + uint64(attempt)*0xbf58476d1ce4e5b9
	h ^= h >> 31
	h *= 0x94d049bb133111eb
	h ^= h >> 27
	half := int64(d / 2)
	if half <= 0 {
		return d
	}
	return time.Duration(half + int64(h%uint64(half+1)))
}

// resumeShard reconstructs a journaled-complete shard's points from
// the shared store; ok is false when any point is missing, in which
// case the shard re-dispatches normally.
func resumeShard(store simulate.Store, keys []simulate.Key, indices []int) ([]PointResult, bool) {
	out := make([]PointResult, 0, len(indices))
	for _, idx := range indices {
		res, ok := store.Get(keys[idx])
		if !ok {
			return nil, false
		}
		out = append(out, PointResult{Index: idx, Result: res, Cached: true})
	}
	return out, true
}

// confirmDead double-checks a suspect worker after a failed dispatch.
// One probe is not proof: a flapped healthz must not kill a healthy
// worker, so death requires two consecutive probe failures, and a
// draining verdict is not death at all.
func (c *Coordinator) confirmDead(ctx context.Context, worker string) (dead, draining bool) {
	for probe := 0; ; probe++ {
		err := c.transport.Healthy(ctx, worker)
		switch {
		case err == nil:
			return false, false
		case errors.Is(err, ErrWorkerDraining):
			return false, true
		case probe == 1:
			return true, false
		}
		select {
		case <-time.After(10 * time.Millisecond):
		case <-ctx.Done():
			return false, false
		}
	}
}

// Sweep expands the spec, shards it across the fleet, and returns the
// merged points in expansion order — the same contract as
// simulate.Sweep over the same space — plus the operational Report.
// Per-point simulation failures are recorded in SweepPoint.Err exactly
// like the single-process engine; Sweep itself fails only when a shard
// exhausts its attempts (ErrAttemptsExhausted), every worker dies or
// drains with shards outstanding, or ctx is cancelled.
func (c *Coordinator) Sweep(ctx context.Context, spec SpaceSpec) ([]simulate.SweepPoint, *Report, error) {
	space, err := spec.Space()
	if err != nil {
		return nil, nil, err
	}
	pts, err := space.Points()
	if err != nil {
		return nil, nil, err
	}

	// With a store attached, every point's content key is known up
	// front (the same machine validation single-process Sweep performs
	// eagerly); the keys drive the merge-time sanity check and the
	// journal's resume path.
	var keys []simulate.Key
	if c.store != nil {
		keys = make([]simulate.Key, len(pts))
		for i, pt := range pts {
			m, err := space.Machine(pt)
			if err != nil {
				return nil, nil, err
			}
			keys[i] = m.CacheKey(pt.Program)
		}
	}

	shards := PlanShards(len(pts), c.shards)
	rep := &Report{Shards: len(shards), ShardsByWorker: make(map[string]int)}

	var jnl *journal
	if c.journalDir != "" {
		if jnl, err = openJournal(c.journalDir, spec, len(shards)); err != nil {
			return nil, nil, err
		}
		defer jnl.close()
	}

	ctx, cancelSweep := context.WithCancel(ctx)
	defer cancelSweep()

	var (
		mu        sync.Mutex
		merged    = make(map[int]PointResult, len(pts))
		remaining = len(shards)
		dead      = make(map[string]bool, len(c.workers))
		draining  = make(map[string]bool, len(c.workers))
		failure   error
	)
	allDone := make(chan struct{})
	pending := make(chan *shardState, len(shards))
	for i := range shards {
		sh := &shardState{Shard: shards[i]}
		if jnl != nil && keys != nil && jnl.done[sh.ID] {
			if prs, ok := resumeShard(c.store, keys, sh.Indices); ok {
				for _, pr := range prs {
					merged[pr.Index] = pr
					rep.CacheHits++
				}
				rep.ResumedShards++
				remaining--
				continue
			}
		}
		pending <- sh
	}
	if rep.ResumedShards > 0 {
		c.logf("distrib: journal resumed %d of %d shards from the store", rep.ResumedShards, len(shards))
	}
	if remaining == 0 {
		close(allDone)
	}

	fail := func(err error) {
		mu.Lock()
		if failure == nil {
			failure = err
		}
		mu.Unlock()
		cancelSweep()
	}

	// unavailable counts workers that can take no new work.  Callers
	// hold mu.
	unavailable := func() int {
		n := 0
		for _, w := range c.workers {
			if dead[w] || draining[w] {
				n++
			}
		}
		return n
	}

	// merge folds one streamed point in, deduplicating overlap from
	// reassigned shards and sanity-checking fresh results against the
	// shared store.
	merge := func(pr PointResult) error {
		mu.Lock()
		defer mu.Unlock()
		if pr.Index < 0 || pr.Index >= len(pts) {
			return fmt.Errorf("distrib: streamed point index %d out of range", pr.Index)
		}
		if _, dup := merged[pr.Index]; dup {
			rep.DuplicatePoints++
			return nil
		}
		merged[pr.Index] = pr
		if pr.Cached {
			rep.CacheHits++
		}
		if keys != nil && !pr.Cached && pr.Err == "" {
			if prev, ok := c.store.Get(keys[pr.Index]); ok {
				if d := simulate.Diff(prev, pr.Result); !d.IsZero() {
					rep.Mismatches++
					if len(rep.MismatchDetails) < 8 {
						rep.MismatchDetails = append(rep.MismatchDetails,
							fmt.Sprintf("index %d: %s", pr.Index, d))
					}
				}
			}
		}
		return nil
	}

	markDead := func(worker string) {
		mu.Lock()
		if dead[worker] {
			mu.Unlock()
			return
		}
		dead[worker] = true
		rep.DeadWorkers = append(rep.DeadWorkers, worker)
		none := unavailable() == len(c.workers) && remaining > 0
		mu.Unlock()
		c.logf("distrib: worker %s declared dead", worker)
		if none {
			fail(errors.New("distrib: every worker dead or draining with shards outstanding"))
		}
	}

	markDraining := func(worker string) {
		mu.Lock()
		if draining[worker] {
			mu.Unlock()
			return
		}
		draining[worker] = true
		rep.DrainingWorkers = append(rep.DrainingWorkers, worker)
		none := unavailable() == len(c.workers) && remaining > 0
		mu.Unlock()
		c.logf("distrib: worker %s is draining; no new work dispatched to it", worker)
		if none {
			fail(errors.New("distrib: every worker dead or draining with shards outstanding"))
		}
	}

	// Per-worker cancel handles let the heartbeat monitor abort a dead
	// worker's in-flight shard so it reassigns promptly.
	type flight struct {
		mu     sync.Mutex
		cancel context.CancelFunc
	}
	flights := make(map[string]*flight, len(c.workers))
	for _, w := range c.workers {
		flights[w] = &flight{}
	}

	var wg sync.WaitGroup
	for _, worker := range c.workers {
		wg.Add(1)
		go func(worker string) {
			defer wg.Done()
			fl := flights[worker]
			consecutive := 0 // failed dispatches since the last success
			for {
				var sh *shardState
				select {
				case <-ctx.Done():
					return
				case <-allDone:
					return
				case sh = <-pending:
				}
				mu.Lock()
				if dead[worker] || draining[worker] {
					mu.Unlock()
					pending <- sh // hand back untaken
					return
				}
				reassigned := sh.attempts > 0
				if reassigned {
					rep.Reassignments++
				}
				sh.attempts++
				attempts := sh.attempts
				mu.Unlock()

				var jctx context.Context
				var cancel context.CancelFunc
				if c.dispatchLimit > 0 {
					jctx, cancel = context.WithTimeout(ctx, c.dispatchLimit)
				} else {
					jctx, cancel = context.WithCancel(ctx)
				}
				fl.mu.Lock()
				fl.cancel = cancel
				fl.mu.Unlock()
				job := Job{Space: spec, Indices: sh.Indices, StoreURL: c.storeURL}
				err := c.transport.Run(jctx, worker, job, merge)
				fl.mu.Lock()
				fl.cancel = nil
				fl.mu.Unlock()
				cancel()

				if err == nil {
					consecutive = 0
					mu.Lock()
					rep.ShardsByWorker[worker]++
					remaining--
					done := remaining == 0
					mu.Unlock()
					if jnl != nil {
						if jerr := jnl.complete(sh.ID); jerr != nil {
							c.logf("distrib: journal: %v", jerr)
						}
					}
					if done {
						close(allDone)
						return
					}
					continue
				}
				if ctx.Err() != nil {
					return
				}
				if errors.Is(err, ErrWorkerDraining) {
					// Not a failure: the worker refused new work.  Hand
					// the shard back with its attempt un-counted and stop
					// dispatching here.
					mu.Lock()
					sh.attempts--
					if reassigned {
						rep.Reassignments--
					}
					mu.Unlock()
					pending <- sh
					markDraining(worker)
					return
				}
				c.logf("distrib: shard %d attempt %d on %s failed: %v", sh.ID, attempts, worker, err)
				if attempts >= c.attempts {
					fail(fmt.Errorf("%w: shard %d failed after %d attempts: %v",
						ErrAttemptsExhausted, sh.ID, attempts, err))
					return
				}
				// Re-enqueue after a capped exponential backoff with
				// deterministic jitter.  The timer goroutine parks on the
				// sweep's lifetime channels, so a cancelled sweep never
				// has a pending retry fire into it (the buffered channel
				// also guarantees the send cannot block).
				sst := sh
				delay := retryDelay(c.backoff, c.backoffCap, sh.ID, attempts)
				go func() {
					t := time.NewTimer(delay)
					defer t.Stop()
					select {
					case <-t.C:
						pending <- sst
					case <-ctx.Done():
					case <-allDone:
					}
				}()
				// A broken stream usually means a dead worker; confirm
				// out of band (twice — one flapped probe is not proof)
				// and stop pulling work if so.
				if isDead, isDraining := c.confirmDead(ctx, worker); isDead {
					markDead(worker)
					return
				} else if isDraining {
					markDraining(worker)
					return
				}
				// The worker is alive but failing.  After breakAfter
				// consecutive failures, quarantine it for the cooldown,
				// then re-enter on probation: one more failure trips the
				// breaker again immediately.
				consecutive++
				if c.breakAfter > 0 && consecutive >= c.breakAfter {
					mu.Lock()
					rep.Quarantines++
					if rep.QuarantinesByWorker == nil {
						rep.QuarantinesByWorker = make(map[string]int)
					}
					rep.QuarantinesByWorker[worker]++
					mu.Unlock()
					c.logf("distrib: worker %s quarantined after %d consecutive failures (cooldown %s)",
						worker, consecutive, c.breakCooldown)
					select {
					case <-time.After(c.breakCooldown):
					case <-ctx.Done():
						return
					case <-allDone:
						return
					}
					consecutive = c.breakAfter - 1
				}
			}
		}(worker)
	}

	// Heartbeat monitor: each beat fetches the worker's live Status, so
	// one probe serves two purposes — liveness (workers that stop
	// answering are marked dead and their in-flight shards aborted) and
	// progress telemetry (successful beats feed WithProgress).
	hbCtx, stopHB := context.WithCancel(ctx)
	defer stopHB()
	if c.heartbeat > 0 {
		for _, worker := range c.workers {
			go func(worker string) {
				misses := 0
				t := time.NewTicker(c.heartbeat)
				defer t.Stop()
				for {
					select {
					case <-hbCtx.Done():
						return
					case <-allDone:
						return
					case <-t.C:
					}
					st, err := c.transport.Status(hbCtx, worker)
					if err != nil {
						if errors.Is(err, ErrWorkerDraining) {
							markDraining(worker)
							misses = 0
							continue
						}
						if misses++; misses >= 2 {
							markDead(worker)
							fl := flights[worker]
							fl.mu.Lock()
							if fl.cancel != nil {
								fl.cancel()
							}
							fl.mu.Unlock()
							return
						}
						continue
					}
					misses = 0
					if st.Draining {
						markDraining(worker)
					}
					if c.progress != nil {
						c.progress(worker, st)
					}
				}
			}(worker)
		}
	}

	wg.Wait()
	mu.Lock()
	err = failure
	mu.Unlock()
	if err == nil {
		if cerr := ctx.Err(); cerr != nil {
			err = cerr
		}
	}
	if err == nil && len(merged) != len(pts) {
		err = fmt.Errorf("distrib: merged %d of %d points", len(merged), len(pts))
	}
	if err != nil {
		return nil, rep, err
	}

	out := make([]simulate.SweepPoint, len(pts))
	for i, pt := range pts {
		pr := merged[i]
		sp := simulate.SweepPoint{Point: pt, Result: pr.Result, Cached: pr.Cached}
		if pr.Err != "" {
			sp.Err = errors.New(pr.Err)
		}
		out[i] = sp
	}
	rep.Points = len(out)
	if c.store != nil {
		rep.Store = c.store.Stats()
	}
	return out, rep, nil
}
