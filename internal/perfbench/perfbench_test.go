package perfbench

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/sim"
)

func BenchmarkEngineSchedule(b *testing.B) { EngineSchedule(b) }

func BenchmarkEngineCancel(b *testing.B) {
	for _, n := range CancelPendingSizes {
		b.Run(fmt.Sprintf("pending=%d", n), EngineCancel(n))
	}
}

func BenchmarkQFT(b *testing.B) {
	for _, cfg := range FullRunConfigs() {
		b.Run(cfg.Name, QFTRun(cfg.Layout, cfg.Policy))
	}
}

func BenchmarkParallelQFT(b *testing.B) {
	for _, edge := range ParallelQFTEdges {
		for _, parts := range ParallelQFTPartitions {
			b.Run(fmt.Sprintf("mesh=%dx%d/partitions=%d", edge, edge, parts), ParallelQFT(edge, parts))
		}
	}
}

func BenchmarkSweep(b *testing.B) {
	b.Run("workers=8", SweepWorkers(8))
}

func BenchmarkDistribSweep(b *testing.B) {
	b.Run("workers=2", DistributedSweep(2))
}

func BenchmarkTraceQFT(b *testing.B) {
	for _, mode := range TraceModes {
		b.Run("trace="+mode, TraceQFT(mode))
	}
}

// TestEngineStepZeroAllocWithoutProbe pins the telemetry hook's
// disabled cost: with no probe attached, the engine's schedule+step
// churn must not allocate at all.  The probe hook is one nil check on
// the hot path; if it ever grows an allocation, tracer-off runs pay
// for telemetry nobody asked for.
func TestEngineStepZeroAllocWithoutProbe(t *testing.T) {
	const pending = 256
	e := sim.New()
	e.Reserve(pending + 2)
	fn := func() {}
	for i := 0; i < pending; i++ {
		e.Schedule(time.Duration(i+1)*time.Microsecond, fn)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		e.Schedule(pending*time.Microsecond, fn)
		e.Step()
	})
	if allocs != 0 {
		t.Errorf("schedule+step with no probe: %.1f allocs/op, want 0", allocs)
	}
}
