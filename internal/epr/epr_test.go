package epr

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/fidelity"
	"repro/internal/phys"
	"repro/internal/purify"
)

var base = phys.IonTrap2006()

func defCfg() Config { return DefaultConfig(base) }

func TestSchemeStrings(t *testing.T) {
	want := map[Scheme]string{
		EndpointsOnly: "only at end",
		OnceBefore:    "once before teleport",
		TwiceBefore:   "twice before teleport",
		OnceAfter:     "once after each teleport",
		TwiceAfter:    "twice after each teleport",
		Scheme(99):    "Scheme(99)",
	}
	for s, w := range want {
		if got := s.String(); got != w {
			t.Errorf("%d.String() = %q, want %q", int(s), got, w)
		}
	}
}

func TestSchemeProperties(t *testing.T) {
	if EndpointsOnly.PumpRounds() != 0 || OnceBefore.PumpRounds() != 1 ||
		TwiceBefore.PumpRounds() != 2 || OnceAfter.PumpRounds() != 1 || TwiceAfter.PumpRounds() != 2 {
		t.Error("PumpRounds mapping wrong")
	}
	for _, s := range []Scheme{OnceAfter, TwiceAfter} {
		if !s.After() {
			t.Errorf("%v should be an after-scheme", s)
		}
	}
	for _, s := range []Scheme{EndpointsOnly, OnceBefore, TwiceBefore} {
		if s.After() {
			t.Errorf("%v should not be an after-scheme", s)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	if err := defCfg().Validate(); err != nil {
		t.Fatalf("default config should validate: %v", err)
	}
	c := defCfg()
	c.HopCells = 0
	if err := c.Validate(); err == nil {
		t.Error("HopCells=0 should fail")
	}
	c = defCfg()
	c.Protocol = nil
	if err := c.Validate(); err == nil {
		t.Error("nil protocol should fail")
	}
	c = defCfg()
	c.TargetError = 0
	if err := c.Validate(); err == nil {
		t.Error("TargetError=0 should fail")
	}
	c = defCfg()
	c.MaxEndpointRounds = 0
	if err := c.Validate(); err == nil {
		t.Error("MaxEndpointRounds=0 should fail")
	}
}

func TestRawLinkPairError(t *testing.T) {
	// Paper §4.6: a 600-cell hop costs ~6e-4 of movement error ("for two
	// teleporters spaced 100 cells apart, ballistic movement error equals
	// ~1e-4" — scaled to 600 cells).
	e := defCfg().RawLinkPair().Error()
	if e < 5e-4 || e > 8e-4 {
		t.Errorf("raw link pair error = %g, want ~6e-4", e)
	}
}

func TestPumpImprovesFidelity(t *testing.T) {
	raw := defCfg().RawLinkPair()
	proto := purify.DEJMPS{Params: base}
	for rounds := 1; rounds <= 3; rounds++ {
		pumped, cost := Pump(proto, raw, raw, rounds)
		if pumped.Error() >= raw.Error() {
			t.Errorf("%d pump rounds did not improve error: %g >= %g", rounds, pumped.Error(), raw.Error())
		}
		// Pumping k rounds consumes at least k+1 pairs.
		if cost < float64(rounds+1) {
			t.Errorf("%d pump rounds cost %g pairs, want >= %d", rounds, cost, rounds+1)
		}
	}
}

func TestPumpZeroRounds(t *testing.T) {
	raw := defCfg().RawLinkPair()
	out, cost := Pump(purify.DEJMPS{Params: base}, raw, raw, 0)
	if out != raw || cost != 1 {
		t.Errorf("zero pump rounds should be identity with cost 1, got cost %g", cost)
	}
}

func TestWirePairMonotoneInPumpRounds(t *testing.T) {
	c := defCfg()
	prevErr := math.Inf(1)
	prevCost := 0.0
	for k := 0; k <= 2; k++ {
		w, cost := c.WirePair(k)
		if w.Error() >= prevErr {
			t.Errorf("pump %d: error %g not below previous %g", k, w.Error(), prevErr)
		}
		if cost <= prevCost {
			t.Errorf("pump %d: cost %g not above previous %g", k, cost, prevCost)
		}
		prevErr, prevCost = w.Error(), cost
	}
}

func TestEvaluateZeroHops(t *testing.T) {
	c := defCfg()
	got := c.Evaluate(EndpointsOnly, 0)
	if !got.Feasible {
		t.Fatal("zero-hop delivery must be feasible")
	}
	if got.TeleportedPairs != 0 {
		t.Errorf("zero hops should teleport nothing, got %g", got.TeleportedPairs)
	}
	// A single wire pair (error ~6e-4) still needs endpoint purification
	// to reach 7.5e-5.
	if got.EndpointRounds < 1 {
		t.Errorf("zero-hop pair should still need purification, rounds=%d", got.EndpointRounds)
	}
}

func TestEvaluateNegativeHopsClamps(t *testing.T) {
	got := defCfg().Evaluate(EndpointsOnly, -5)
	if got.Hops != 0 {
		t.Errorf("negative hops should clamp to 0, got %d", got.Hops)
	}
}

func TestFinalErrorMeetsTarget(t *testing.T) {
	c := defCfg()
	for _, s := range Schemes {
		for _, d := range []int{1, 10, 30, 64} {
			got := c.Evaluate(s, d)
			if !got.Feasible {
				t.Errorf("%v d=%d should be feasible at Table 2 error rates", s, d)
				continue
			}
			if got.FinalError > c.TargetError {
				t.Errorf("%v d=%d: final error %g exceeds target %g", s, d, got.FinalError, c.TargetError)
			}
		}
	}
}

func TestEndpointRoundsDepthThreeForPaperDistances(t *testing.T) {
	// Paper §5.3: "we will need a maximum purification tree of depth
	// three (for distances under consideration)" — up to the ~30-hop
	// Manhattan diameter of the 16×16 grid.
	c := defCfg()
	maxRounds := 0
	for d := 1; d <= 30; d++ {
		got := c.Evaluate(EndpointsOnly, d)
		if !got.Feasible {
			t.Fatalf("d=%d infeasible", d)
		}
		if got.EndpointRounds > maxRounds {
			maxRounds = got.EndpointRounds
		}
	}
	if maxRounds != 3 {
		t.Errorf("max endpoint rounds over 1..30 hops = %d, want 3", maxRounds)
	}
}

func TestFig10EndpointsOnlyCheapestTotal(t *testing.T) {
	// Paper: "Figure 10 shows that the Endpoints Only scheme uses the
	// fewest total EPR resources."  Allow 10% slack at distances where a
	// wire-purification scheme crosses an endpoint-round boundary (the
	// curves are within a line's width on the paper's 7-decade axis).
	c := defCfg()
	for _, d := range []int{5, 10, 15, 20, 25, 30, 40, 50, 60} {
		endpoints := c.Evaluate(EndpointsOnly, d).TotalPairs
		for _, s := range []Scheme{OnceBefore, TwiceBefore, OnceAfter, TwiceAfter} {
			if other := c.Evaluate(s, d).TotalPairs; endpoints > other*1.10 {
				t.Errorf("d=%d: endpoints-only total %g exceeds %v total %g", d, endpoints, s, other)
			}
		}
	}
}

func TestFig10AfterSchemesExponential(t *testing.T) {
	// "over-purifying bits leads to additional exponential resource
	// requirements": once-after grows ~2x per hop, twice-after ~3x.
	c := defCfg()
	for _, tc := range []struct {
		s         Scheme
		minGrowth float64
		maxGrowth float64
	}{
		{OnceAfter, 1.8, 2.3},
		{TwiceAfter, 2.6, 3.5},
	} {
		t10 := c.Evaluate(tc.s, 10).TotalPairs
		t20 := c.Evaluate(tc.s, 20).TotalPairs
		perHop := math.Pow(t20/t10, 1.0/10)
		if perHop < tc.minGrowth || perHop > tc.maxGrowth {
			t.Errorf("%v: per-hop growth %g, want in [%g, %g]", tc.s, perHop, tc.minGrowth, tc.maxGrowth)
		}
	}
}

func TestFig11BeforeSchemesTeleportNoMore(t *testing.T) {
	// Paper: "virtual wire purification reduces the number of EPR pairs
	// that need to move through the teleporters."
	c := defCfg()
	for _, d := range []int{5, 10, 15, 20, 25, 30, 40, 50, 60} {
		endpoints := c.Evaluate(EndpointsOnly, d).TeleportedPairs
		for _, s := range []Scheme{OnceBefore, TwiceBefore} {
			if got := c.Evaluate(s, d).TeleportedPairs; got > endpoints*(1+1e-9) {
				t.Errorf("d=%d: %v teleported %g > endpoints-only %g", d, s, got, endpoints)
			}
		}
	}
}

func TestFig11AfterSchemesTeleportFarMore(t *testing.T) {
	c := defCfg()
	for _, d := range []int{10, 20, 30} {
		endpoints := c.Evaluate(EndpointsOnly, d).TeleportedPairs
		for _, s := range []Scheme{OnceAfter, TwiceAfter} {
			if got := c.Evaluate(s, d).TeleportedPairs; got < endpoints*10 {
				t.Errorf("d=%d: %v teleported %g, want >> endpoints-only %g", d, s, got, endpoints)
			}
		}
	}
}

func TestFig9Series(t *testing.T) {
	initial := []float64{1e-4, 1e-5, 1e-6, 1e-7, 1e-8}
	pts := Fig9Series(base, initial, 70)
	if want := 5 * 71; len(pts) != want {
		t.Fatalf("series has %d points, want %d", len(pts), want)
	}
	// Error increases monotonically with hops for each curve.
	for _, e0 := range initial {
		var prev float64 = -1
		for _, p := range pts {
			if p.InitialError != e0 {
				continue
			}
			if p.Error < prev {
				t.Errorf("e0=%g: error decreased at hop %d", e0, p.Hops)
			}
			prev = p.Error
		}
	}
}

func TestFig9Factor100At64Hops(t *testing.T) {
	// Paper §4.6: "teleporting 64 times could increase EPR pair qubit
	// error by a factor of 100."
	pts := Fig9Series(base, []float64{1e-6}, 64)
	last := pts[len(pts)-1]
	factor := last.Error / 1e-6
	if factor < 50 || factor > 200 {
		t.Errorf("64-hop amplification = %gx, want ~100x", factor)
	}
}

func TestDistanceSeriesShape(t *testing.T) {
	c := defCfg()
	hops := []int{10, 20, 30}
	pts := c.DistanceSeries(hops)
	if want := len(Schemes) * len(hops); len(pts) != want {
		t.Fatalf("series has %d points, want %d", len(pts), want)
	}
	for _, p := range pts {
		if p.Cost.Scheme != p.Scheme || p.Cost.Hops != p.Hops {
			t.Errorf("point metadata mismatch: %+v", p)
		}
	}
}

func TestFig12BreakdownNearPaperValue(t *testing.T) {
	// Paper: "the abrupt ends of all the plots near 1e-5.  This is the
	// point at which our whole distribution network breaks down."  Our
	// noise model places the breakdown in the same decade.
	rate := BreakdownRate(base, 10, 1e-7, 1e-3)
	if rate < 5e-6 || rate > 8e-5 {
		t.Errorf("breakdown rate = %g, want within [5e-6, 8e-5] (paper: near 1e-5)", rate)
	}
}

func TestFig12AllSchemesBreakTogether(t *testing.T) {
	// Paper: "all the purification configurations stop working for the
	// same error rate" — the limit is the purification noise floor, not
	// the incoming fidelity.
	broken := base.WithUniformError(1e-4)
	cfg := DefaultConfig(broken)
	for _, s := range Schemes {
		if got := cfg.Evaluate(s, 10); got.Feasible {
			t.Errorf("%v should be infeasible at rate 1e-4", s)
		}
	}
	working := base.WithUniformError(1e-6)
	cfg = DefaultConfig(working)
	for _, s := range Schemes {
		if got := cfg.Evaluate(s, 10); !got.Feasible {
			t.Errorf("%v should be feasible at rate 1e-6", s)
		}
	}
}

func TestFig12SeriesInfeasibleMarked(t *testing.T) {
	pts := Fig12Series(base, []float64{1e-8, 1e-4}, 10)
	for _, p := range pts {
		switch p.ErrorRate {
		case 1e-8:
			if !p.Cost.Feasible {
				t.Errorf("%v at 1e-8 should be feasible", p.Scheme)
			}
		case 1e-4:
			if p.Cost.Feasible {
				t.Errorf("%v at 1e-4 should be infeasible", p.Scheme)
			}
			if !math.IsInf(p.Cost.TotalPairs, 1) {
				t.Errorf("%v at 1e-4 should report infinite cost", p.Scheme)
			}
		}
	}
}

func TestFig12ResourceSpreadWithinWorkingRegime(t *testing.T) {
	// Paper: "Throughout the regime at which our system does work ...
	// the total network resources only differ by a factor of up to 100
	// for a 10,000 times difference in operation error rate."
	lo := DefaultConfig(base.WithUniformError(1e-9)).Evaluate(EndpointsOnly, 10)
	hi := DefaultConfig(base.WithUniformError(1e-5)).Evaluate(EndpointsOnly, 10)
	if !lo.Feasible || !hi.Feasible {
		t.Fatal("both ends of the working regime should be feasible")
	}
	spread := hi.TeleportedPairs / lo.TeleportedPairs
	if spread > 100 {
		t.Errorf("resource spread across 1e-9..1e-5 = %gx, paper reports up to 100x", spread)
	}
	if spread < 2 {
		t.Errorf("resource spread %gx suspiciously flat", spread)
	}
}

// Property: delivery cost metrics are always positive and consistent for
// feasible evaluations: total >= teleported (every teleported pair is
// also consumed) and rounds within the cap.
func TestEvaluateConsistencyProperty(t *testing.T) {
	c := defCfg()
	f := func(sRaw, dRaw uint8) bool {
		s := Schemes[int(sRaw)%len(Schemes)]
		d := int(dRaw)%30 + 1
		got := c.Evaluate(s, d)
		if !got.Feasible {
			return false
		}
		if got.TotalPairs < got.TeleportedPairs {
			return false
		}
		if got.EndpointRounds < 0 || got.EndpointRounds > c.MaxEndpointRounds {
			return false
		}
		return got.ArrivalError > 0 && got.ArrivalError < 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: teleported pairs are monotone non-decreasing in distance for
// non-after schemes.
func TestTeleportedMonotoneInDistance(t *testing.T) {
	c := defCfg()
	for _, s := range []Scheme{EndpointsOnly, OnceBefore, TwiceBefore} {
		prev := 0.0
		for d := 1; d <= 40; d++ {
			got := c.Evaluate(s, d)
			if got.TeleportedPairs < prev {
				t.Errorf("%v: teleported dropped at d=%d: %g < %g", s, d, got.TeleportedPairs, prev)
			}
			prev = got.TeleportedPairs
		}
	}
}

func TestTeleportBellMatchesScalarForWerner(t *testing.T) {
	// For Werner inputs the Bell-level teleport must agree with Eq 3.
	data := fidelity.Werner(0.99)
	eprPair := fidelity.Werner(0.999)
	got := fidelity.TeleportBell(base, data, eprPair).Fidelity()
	want := fidelity.Teleport(base, 0.99, 0.999)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("TeleportBell = %g, Eq 3 = %g", got, want)
	}
}
