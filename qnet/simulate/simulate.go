// Package simulate is the event-driven mesh-interconnect simulator of
// the paper's Section 5 behind a builder-style public API: a mesh grid
// of teleporter/generator/purifier nodes executing logical instruction
// streams under full contention.
//
// A Machine is built once from a grid, a layout and functional options,
// then run against any number of Programs:
//
//	m, err := simulate.New(grid, simulate.MobileQubit,
//		simulate.WithResources(16, 16, 8),
//		simulate.WithPurifyDepth(3),
//		simulate.WithSeed(42))
//	res, err := m.Run(ctx, qnet.QFT(grid.Tiles()))
//
// Run takes a context.Context; cancellation and deadlines propagate into
// the discrete-event loop, so a runaway configuration can be aborted.
//
// A Session wraps a Machine for a sequence of runs, deriving a distinct
// reproducible RNG seed per run and recording every result.  Sweep
// expands a parameter space (grids × layouts × resources × programs ×
// depths × routing policies × seeds) and fans the runs out across
// worker goroutines — see sweep.go.  Routing policies come from
// qnet/route (WithRouting, Space.Routings); the default is the paper's
// dimension-order routing.
//
// Because every run is a pure function of its resolved configuration,
// results are content-addressable: Machine.CacheKey hashes the full
// run point and Cache stores Results under it (in-memory LRU plus an
// optional on-disk JSON store, boundable with WithMaxBytes/WithMaxAge),
// so a sweep installed with WithCache or WithCacheDir only simulates
// points it has never seen — see cache.go and the Example_cachedSweep
// function.  The same options attach a cache to a Machine, making
// repeated Run and Session calls cache hits too.  Ensemble statistics
// over the seed dimension live in the sibling package qnet/stats.
//
// Configuration mistakes surface as *qnet.ConfigError and capacity
// overruns as *qnet.CapacityError, matchable with errors.Is/errors.As.
package simulate

import (
	"context"
	"time"

	"repro/internal/netsim"

	"repro/qnet"
	"repro/qnet/fault"
	"repro/qnet/route"
	"repro/qnet/trace"
)

// Layout selects the logical-qubit floorplan (Figure 15).
type Layout = netsim.Layout

// The two floorplans of the paper's Section 5.
const (
	// HomeBase gives every logical qubit a fixed home tile; operands
	// teleport in for each operation and back home afterwards.
	HomeBase = netsim.HomeBase
	// MobileQubit lets the moving operand stay wherever it travels.
	MobileQubit = netsim.MobileQubit
)

// Result summarizes a simulation run: execution time, channel and EPR
// statistics, event counts and resource utilizations.
type Result = netsim.Result

// Detail carries per-component statistics of a run (per-tile and
// per-link utilizations, turn counts, ASCII heatmaps) for bottleneck
// analysis.
type Detail = netsim.Detail

// StallError reports a simulation that stopped making progress before
// every operation completed — the structured form of what would
// otherwise be a hang, with the completed/total op counts attached.
type StallError = netsim.StallError

// machineSpec is the mutable state Options apply to: the simulator
// configuration plus machine-level attachments (the result store).
type machineSpec struct {
	cfg   netsim.Config
	store Store
	err   error
}

// Option configures a Machine.  Options are applied in order over the
// paper's defaults (depth-3 purifiers, level-2 Steane code, 600-cell
// hops, t=g=p=16, XY dimension-order routing, the Table 1-2 ion-trap
// device).  WithCache and WithCacheDir implement both Option and
// SweepOption, so one cache value threads through machines and sweeps
// alike.
type Option interface {
	applyMachine(*machineSpec)
}

// optionFunc adapts a plain function to the Option interface.
type optionFunc func(*machineSpec)

func (f optionFunc) applyMachine(s *machineSpec) { f(s) }

// WithParams replaces the device constants (Tables 1 and 2).
func WithParams(p qnet.Params) Option {
	return optionFunc(func(s *machineSpec) { s.cfg.Params = p })
}

// WithResources sets the per-node resource counts: t teleporters per T'
// node, g generators per G node and p queue purifiers per P node.
func WithResources(t, g, p int) Option {
	return optionFunc(func(s *machineSpec) {
		s.cfg.Teleporters, s.cfg.Generators, s.cfg.Purifiers = t, g, p
	})
}

// WithPurifyDepth sets the queue-purifier tree depth (the paper uses 3:
// 8 pairs per purified output).
func WithPurifyDepth(depth int) Option {
	return optionFunc(func(s *machineSpec) { s.cfg.PurifyDepth = depth })
}

// WithCodeLevel sets the Steane concatenation level of transported
// logical qubits (the paper uses 2: 49 physical qubits).
func WithCodeLevel(level int) Option {
	return optionFunc(func(s *machineSpec) { s.cfg.CodeLevel = level })
}

// WithHopCells sets the physical span of one mesh hop (the paper derives
// 600 cells from the latency crossover).
func WithHopCells(cells int) Option {
	return optionFunc(func(s *machineSpec) { s.cfg.HopCells = cells })
}

// WithTurnCells sets the in-router ballistic distance paid on X/Y turns.
func WithTurnCells(cells int) Option {
	return optionFunc(func(s *machineSpec) { s.cfg.TurnCells = cells })
}

// WithRouting sets the machine's routing policy — the component that
// decides each channel's hop path across the mesh (see qnet/route).
// nil (the default) selects route.XYOrder, the paper's dimension-order
// routing; distinct policies produce distinct cache keys.
func WithRouting(p route.Policy) Option {
	return optionFunc(func(s *machineSpec) { s.cfg.Route = p })
}

// WithSeed sets the base seed of the machine's per-run RNG.  Two
// machines with equal configurations and seeds produce identical runs.
func WithSeed(seed int64) Option {
	return optionFunc(func(s *machineSpec) { s.cfg.Seed = seed })
}

// WithFailureRate injects stochastic purification failure: each batch
// fails end-to-end purification with this probability and a replacement
// batch is sent through the network.  Zero (the default) keeps the
// simulation fully deterministic regardless of seed.
func WithFailureRate(rate float64) Option {
	return optionFunc(func(s *machineSpec) { s.cfg.PurifyFailureRate = rate })
}

// WithFaults attaches a mesh fault spec (qnet/fault): dead links, per-
// link batch drops and degraded-fidelity regions, materialized from
// the run's seeded RNG before any other draw, so the pattern is a pure
// function of (spec, grid, seed) and fault.Preview reproduces it.  The
// zero Spec (the default) is a healthy mesh and keeps the simulation
// byte-identical to a machine built without the option.  On a mesh
// with dead links, pair route.FaultAdaptive (WithRouting) to route
// around the holes; other policies fail blocked paths with a
// structured error.
func WithFaults(sp fault.Spec) Option {
	return optionFunc(func(s *machineSpec) { s.cfg.Faults = sp })
}

// WithParallelism runs the machine's simulations on the
// domain-decomposed parallel event engine with n regions (contiguous
// row bands of the mesh, synchronized by a conservative lookahead
// barrier).  0 and 1 (the default) select the serial engine; larger
// values are clamped to the grid height.  Parallelism is an engine
// choice, not a model change: results are byte-identical to a serial
// run of the same machine, which is why CacheKey ignores it — a cached
// serial result answers a parallel run and vice versa.
func WithParallelism(n int) Option {
	return optionFunc(func(s *machineSpec) { s.cfg.Parallel = n })
}

// WithTrace attaches a telemetry tracer (qnet/trace) to the machine:
// every Run samples per-router occupancy, per-link utilization and
// drop/resend events into it over simulated time.  The tracer is an
// observer, not a model change — a traced run executes the same events
// and produces a byte-identical Result, so CacheKey ignores it like
// WithParallelism.  A traced Run always simulates (a cached Result has
// nothing for the tracer to observe) but still stores its result into
// an attached cache.  A Tracer records one run at a time; attach a
// fresh tracer per concurrent run (Machine.WithTrace derives per-run
// machines cheaply).
func WithTrace(t *trace.Tracer) Option {
	return optionFunc(func(s *machineSpec) { s.cfg.Trace = t })
}

// Machine is a configured, validated simulated quantum computer.  It is
// immutable after New and safe for concurrent use: every Run builds
// fresh simulator state (including a per-run RNG), so one Machine can
// serve many goroutines.  A Machine built with WithCache or
// WithCacheDir serves repeated Runs from its result cache.
type Machine struct {
	cfg   netsim.Config
	store Store
}

// New builds a Machine on the given grid and layout, applying opts over
// the paper's defaults.  It returns a *qnet.ConfigError describing the
// first invalid setting.
func New(grid qnet.Grid, layout Layout, opts ...Option) (*Machine, error) {
	spec := machineSpec{cfg: netsim.DefaultConfig(grid, layout, 16, 16, 16)}
	for _, opt := range opts {
		opt.applyMachine(&spec)
	}
	if spec.err != nil {
		return nil, spec.err
	}
	cfg := spec.cfg
	if err := validate(cfg); err != nil {
		return nil, err
	}
	// Backstop: any rule added to netsim.Config.Validate that validate
	// does not mirror yet still surfaces here at build time as a
	// structured error, not at Run time as a bare string.
	if err := cfg.Validate(); err != nil {
		return nil, &qnet.ConfigError{Field: "Config", Value: "-", Reason: err.Error()}
	}
	return &Machine{cfg: cfg, store: spec.store}, nil
}

// validate mirrors netsim.Config.Validate with structured errors, so
// misconfiguration is caught at build time and matchable with errors.Is.
func validate(cfg netsim.Config) error {
	if err := cfg.Params.Validate(); err != nil {
		return &qnet.ConfigError{Field: "Params", Value: "-", Reason: err.Error()}
	}
	if cfg.Grid.Tiles() == 0 {
		return &qnet.ConfigError{Field: "Grid", Value: cfg.Grid, Reason: "grid must contain at least one tile"}
	}
	switch cfg.Layout {
	case HomeBase, MobileQubit:
	default:
		return &qnet.ConfigError{Field: "Layout", Value: int(cfg.Layout), Reason: "want HomeBase or MobileQubit"}
	}
	if cfg.Teleporters < 1 {
		return &qnet.ConfigError{Field: "Teleporters", Value: cfg.Teleporters, Reason: "must be >= 1"}
	}
	if cfg.Generators < 1 {
		return &qnet.ConfigError{Field: "Generators", Value: cfg.Generators, Reason: "must be >= 1"}
	}
	if cfg.Purifiers < 1 {
		return &qnet.ConfigError{Field: "Purifiers", Value: cfg.Purifiers, Reason: "must be >= 1"}
	}
	if cfg.PurifyDepth < 1 || cfg.PurifyDepth > 16 {
		return &qnet.ConfigError{Field: "PurifyDepth", Value: cfg.PurifyDepth, Reason: "must be in [1,16]"}
	}
	if cfg.CodeLevel < 0 {
		return &qnet.ConfigError{Field: "CodeLevel", Value: cfg.CodeLevel, Reason: "must be >= 0"}
	}
	if cfg.HopCells < 1 {
		return &qnet.ConfigError{Field: "HopCells", Value: cfg.HopCells, Reason: "must be >= 1"}
	}
	if cfg.TurnCells < 0 {
		return &qnet.ConfigError{Field: "TurnCells", Value: cfg.TurnCells, Reason: "must be >= 0"}
	}
	if cfg.PurifyFailureRate < 0 || cfg.PurifyFailureRate >= 1 {
		return &qnet.ConfigError{Field: "FailureRate", Value: cfg.PurifyFailureRate, Reason: "must be in [0,1)"}
	}
	if err := cfg.Faults.Validate(cfg.Grid); err != nil {
		return &qnet.ConfigError{Field: "Faults", Value: cfg.Faults.String(), Reason: err.Error()}
	}
	if cfg.Parallel < 0 {
		return &qnet.ConfigError{Field: "Parallelism", Value: cfg.Parallel, Reason: "must be >= 0"}
	}
	return nil
}

// Grid returns the machine's mesh.
func (m *Machine) Grid() qnet.Grid { return m.cfg.Grid }

// Layout returns the machine's floorplan policy.
func (m *Machine) Layout() Layout { return m.cfg.Layout }

// Routing returns the machine's routing policy (nil means the default
// dimension-order policy; RoutingName canonicalizes).
func (m *Machine) Routing() route.Policy { return m.cfg.Route }

// RoutingName returns the canonical name of the machine's routing
// policy ("xy" when none was set explicitly).
func (m *Machine) RoutingName() string { return route.NameOf(m.cfg.Route) }

// Seed returns the machine's base RNG seed.
func (m *Machine) Seed() int64 { return m.cfg.Seed }

// Parallelism returns the machine's requested parallel region count (0
// or 1 means the serial engine).
func (m *Machine) Parallelism() int { return m.cfg.Parallel }

// Faults returns the machine's fault spec (the zero Spec on a healthy
// machine).
func (m *Machine) Faults() fault.Spec { return m.cfg.Faults }

// Trace returns the machine's attached tracer, or nil when the machine
// runs untraced.
func (m *Machine) Trace() *trace.Tracer { return m.cfg.Trace }

// WithTrace returns a copy of the machine with the given tracer
// attached (or detached, with nil).  The copy shares the original's
// configuration and store; because a Tracer records one run at a time,
// deriving a per-run machine this way is how concurrent runs (sweep
// points, distributed shards) each get their own telemetry.
func (m *Machine) WithTrace(t *trace.Tracer) *Machine {
	m2 := *m
	m2.cfg.Trace = t
	return &m2
}

// Cache returns the machine's attached result cache, or nil when the
// machine was built without WithCache/WithCacheDir (or when the
// attached Store is not a *Cache; use Store for the general form).
func (m *Machine) Cache() *Cache {
	c, _ := m.store.(*Cache)
	return c
}

// Store returns the machine's attached result store, or nil when the
// machine was built without WithCache/WithCacheDir/WithStore.
func (m *Machine) Store() Store { return m.store }

// checkProgram validates prog against the machine's capacity.
func (m *Machine) checkProgram(prog qnet.Program) error {
	if err := prog.Validate(); err != nil {
		return &qnet.ConfigError{Field: "Program", Value: prog.Name, Reason: err.Error()}
	}
	if prog.Qubits > m.cfg.Grid.Tiles() {
		return &qnet.CapacityError{Resource: "tiles", Need: prog.Qubits, Have: m.cfg.Grid.Tiles()}
	}
	return nil
}

// Run executes one logical instruction stream on the machine.  The
// context is threaded into the discrete-event loop: when ctx is
// cancelled or its deadline passes, Run aborts and returns an error
// wrapping ctx.Err().  When the machine carries a result cache
// (WithCache/WithCacheDir), Run consults it first and stores successful
// runs back, so a warm re-run of the same configuration and program is
// a lookup instead of a simulation (Cache().Stats() reports the hit).
func (m *Machine) Run(ctx context.Context, prog qnet.Program) (Result, error) {
	if err := m.checkProgram(prog); err != nil {
		return Result{}, err
	}
	return m.runCached(ctx, m.cfg, prog)
}

// runCached runs one fully-resolved configuration through the attached
// store (a plain simulation when no store is attached).
func (m *Machine) runCached(ctx context.Context, cfg netsim.Config, prog qnet.Program) (Result, error) {
	if m.store == nil {
		return netsim.RunContext(ctx, cfg, prog)
	}
	key := keyFor(cfg, prog)
	// A traced run never answers from the cache — the tracer observes
	// the simulation itself, and a stored Result has no time series to
	// give it — but its result is still stored: trace-on and trace-off
	// runs produce identical Results, so the entry serves either.
	if cfg.Trace == nil {
		if res, ok := m.store.Get(key); ok {
			return res, nil
		}
	}
	res, err := netsim.RunContext(ctx, cfg, prog)
	if err == nil {
		m.store.Put(key, res)
	}
	return res, err
}

// RunDetailed is Run plus per-component statistics for bottleneck
// analysis and heatmaps.  It always simulates — Details are not cached
// — so use Run when only the Result matters.
func (m *Machine) RunDetailed(ctx context.Context, prog qnet.Program) (Result, *Detail, error) {
	if err := m.checkProgram(prog); err != nil {
		return Result{}, nil, err
	}
	return netsim.RunDetailedContext(ctx, m.cfg, prog)
}

// runSeeded is Run with the per-run seed overridden (Session and Sweep
// derive one seed per run from the base seed); it consults the attached
// cache like Run does.
func (m *Machine) runSeeded(ctx context.Context, prog qnet.Program, seed int64) (Result, error) {
	if err := m.checkProgram(prog); err != nil {
		return Result{}, err
	}
	cfg := m.cfg
	cfg.Seed = seed
	return m.runCached(ctx, cfg, prog)
}

// runUncached bypasses the machine's attached cache: the sweep engine
// manages its own cache (with single-flight dedup and pure hit
// accounting), so worker runs must not double-count through a machine
// cache.
func (m *Machine) runUncached(ctx context.Context, prog qnet.Program) (Result, error) {
	if err := m.checkProgram(prog); err != nil {
		return Result{}, err
	}
	return netsim.RunContext(ctx, m.cfg, prog)
}

// Session runs a sequence of programs on one Machine.  Each run gets a
// distinct, reproducibly derived RNG seed (run i of two sessions on
// identical machines behaves identically), and every result is
// recorded.  A Session is not safe for concurrent use; create one per
// goroutine, or use Sweep for parallel fan-out.
type Session struct {
	machine *Machine
	runs    int
	results []Result
}

// NewSession starts a fresh run sequence on the machine.
func (m *Machine) NewSession() *Session {
	return &Session{machine: m}
}

// deriveSeed mixes a base seed and a run index into a decorrelated
// per-run seed (splitmix64 finalizer).
func deriveSeed(base int64, run int) int64 {
	z := uint64(base) + uint64(run+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// Run executes prog as the session's next run.
func (s *Session) Run(ctx context.Context, prog qnet.Program) (Result, error) {
	seed := deriveSeed(s.machine.cfg.Seed, s.runs)
	res, err := s.machine.runSeeded(ctx, prog, seed)
	if err != nil {
		return Result{}, err
	}
	s.runs++
	s.results = append(s.results, res)
	return res, nil
}

// Runs returns the number of completed runs.
func (s *Session) Runs() int { return s.runs }

// Results returns the recorded results of all completed runs, in run
// order.  The returned slice is the session's own; do not modify it.
func (s *Session) Results() []Result { return s.results }

// TotalExec sums the execution times of all completed runs.
func (s *Session) TotalExec() time.Duration {
	var total time.Duration
	for _, r := range s.results {
		total += r.Exec
	}
	return total
}
