package sim

import (
	"testing"
	"testing/quick"
)

func TestSemaphoreValidation(t *testing.T) {
	if _, err := NewSemaphore("x", 0); err == nil {
		t.Error("zero limit should be rejected")
	}
}

func TestSemaphoreImmediateAcquire(t *testing.T) {
	s, err := NewSemaphore("storage", 2)
	if err != nil {
		t.Fatal(err)
	}
	ran := 0
	s.Acquire(func() { ran++ })
	s.Acquire(func() { ran++ })
	if ran != 2 || s.Available() != 0 {
		t.Errorf("ran=%d available=%d, want 2/0", ran, s.Available())
	}
}

func TestSemaphoreQueuesWhenEmpty(t *testing.T) {
	s, _ := NewSemaphore("storage", 1)
	order := []int{}
	s.Acquire(func() { order = append(order, 0) })
	s.Acquire(func() { order = append(order, 1) })
	s.Acquire(func() { order = append(order, 2) })
	if len(order) != 1 || s.Waiting() != 2 {
		t.Fatalf("order=%v waiting=%d", order, s.Waiting())
	}
	s.Release() // hands the credit to waiter 1
	s.Release() // hands the credit to waiter 2
	if len(order) != 3 {
		t.Fatalf("order=%v, want 3 entries", order)
	}
	for i, v := range order {
		if v != i {
			t.Errorf("FIFO violated: %v", order)
		}
	}
	if s.MaxWaiting() != 2 {
		t.Errorf("max waiting = %d, want 2", s.MaxWaiting())
	}
}

func TestSemaphoreTryAcquire(t *testing.T) {
	s, _ := NewSemaphore("x", 1)
	if !s.TryAcquire() {
		t.Error("first TryAcquire should succeed")
	}
	if s.TryAcquire() {
		t.Error("second TryAcquire should fail")
	}
	s.Release()
	if !s.TryAcquire() {
		t.Error("TryAcquire after Release should succeed")
	}
}

func TestSemaphoreReleaseAboveLimitPanics(t *testing.T) {
	s, _ := NewSemaphore("x", 1)
	defer func() {
		if recover() == nil {
			t.Error("over-release should panic")
		}
	}()
	s.Release()
}

func TestSemaphoreNilAcquirePanics(t *testing.T) {
	s, _ := NewSemaphore("x", 1)
	defer func() {
		if recover() == nil {
			t.Error("nil acquire fn should panic")
		}
	}()
	s.Acquire(nil)
}

// Property: after any valid sequence of acquire/release pairs, credits
// plus held equals the limit, and no waiter is lost.
func TestSemaphoreConservationProperty(t *testing.T) {
	f := func(limitRaw uint8, actions []bool) bool {
		limit := int(limitRaw)%5 + 1
		s, err := NewSemaphore("x", limit)
		if err != nil {
			return false
		}
		held, ran, queued := 0, 0, 0
		for _, acquire := range actions {
			if acquire {
				queued++
				s.Acquire(func() { ran++ })
			} else if held < ran {
				// Release something previously granted.
				s.Release()
				held++ // counts releases
			}
		}
		// All grants = releases so far + currently held credits.
		inUse := ran - held
		return s.Available() == limit-inUse && s.Waiting() == queued-ran
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
