// Package chaos generates seeded fault schedules for the distributed
// sweep service: deterministic streams of injected transport and store
// faults — latency, connection refusal, mid-stream truncation,
// duplicated result lines, health-probe flaps, store read misses and
// dropped writes — that distrib.NewChaos and distrib.NewChaosStore
// replay against any inner transport or store.
//
// A Schedule is a probability table (Config) plus a seeded RNG: every
// decision is one draw, serialized under a mutex, so the decision
// *sequence* for a given seed is fixed even though which concurrent
// dispatch consumes which decision depends on goroutine interleaving.
// That is exactly the contract a chaos soak needs — the fault mix is
// reproducible, the placement is adversarial — while the sweep's
// merged output must stay byte-identical regardless.
package chaos

import (
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// Config is the probability table of one fault schedule.  Every field
// is the per-decision probability (in [0,1]) of injecting that fault;
// the zero Config injects nothing.
type Config struct {
	// Seed seeds the schedule's RNG; equal seeds replay equal decision
	// sequences.
	Seed int64
	// Latency is the probability a dispatch is delayed before it
	// reaches the inner transport.
	Latency float64
	// MaxLatency bounds each injected delay (default 2ms).  Delays are
	// uniform in (0, MaxLatency].
	MaxLatency time.Duration
	// Refuse is the probability a dispatch is refused outright, as a
	// connection-refused failure, before the inner transport runs.
	Refuse float64
	// Truncate is the probability a dispatch's result stream is cut
	// mid-shard: a few points are delivered, then the stream breaks
	// without a terminal line.
	Truncate float64
	// Duplicate is the probability a dispatch re-delivers every result
	// line once — the overlap a retried stream produces.
	Duplicate float64
	// Flap is the probability a healthz or status probe fails even
	// though the worker is alive.
	Flap float64
	// StoreMiss is the probability a store Get is forced to miss.
	StoreMiss float64
	// StoreDrop is the probability a store Put is silently dropped.
	StoreDrop float64
}

// Default returns a moderately hostile schedule configuration for the
// given seed: every fault class enabled at rates a correct coordinator
// must absorb without changing its merged output.
func Default(seed int64) Config {
	return Config{
		Seed:       seed,
		Latency:    0.3,
		MaxLatency: 2 * time.Millisecond,
		Refuse:     0.15,
		Truncate:   0.15,
		Duplicate:  0.2,
		Flap:       0.1,
		StoreMiss:  0.2,
		StoreDrop:  0.2,
	}
}

// Dispatch is the fault decision for one transport Run call.
type Dispatch struct {
	// Delay is the injected latency before the dispatch proceeds (zero:
	// none).
	Delay time.Duration
	// Refuse refuses the dispatch outright, before any work happens.
	Refuse bool
	// TruncateAfter, when >= 0, cuts the result stream after that many
	// delivered points; -1 delivers the whole shard.
	TruncateAfter int
	// Duplicate re-delivers every result line once.
	Duplicate bool
}

// Stats counts the faults a schedule has injected so far.
type Stats struct {
	// Decisions is the total number of fault decisions drawn.
	Decisions int
	// Delays counts injected dispatch latencies.
	Delays int
	// Refusals counts refused dispatches.
	Refusals int
	// Truncations counts mid-stream cuts.
	Truncations int
	// Duplicates counts dispatches with duplicated result lines.
	Duplicates int
	// Flaps counts failed-but-alive health probes.
	Flaps int
	// StoreMisses counts store Gets forced to miss.
	StoreMisses int
	// StoreDrops counts store Puts silently dropped.
	StoreDrops int
}

// Injected is the total number of injected faults of every kind.
func (s Stats) Injected() int {
	return s.Delays + s.Refusals + s.Truncations + s.Duplicates + s.Flaps + s.StoreMisses + s.StoreDrops
}

// String renders the counters compactly.
func (s Stats) String() string {
	return fmt.Sprintf("%d faults over %d decisions (%d delays, %d refusals, %d truncations, %d duplicates, %d flaps, %d store misses, %d store drops)",
		s.Injected(), s.Decisions, s.Delays, s.Refusals, s.Truncations, s.Duplicates, s.Flaps, s.StoreMisses, s.StoreDrops)
}

// Schedule is a running fault schedule: a Config plus the seeded RNG
// drawing its decisions.  It is safe for concurrent use; draws are
// serialized, so a seed fixes the decision sequence.
type Schedule struct {
	mu    sync.Mutex
	cfg   Config
	rng   *rand.Rand
	stats Stats
}

// New builds a schedule from the configuration.
func New(cfg Config) *Schedule {
	if cfg.MaxLatency <= 0 {
		cfg.MaxLatency = 2 * time.Millisecond
	}
	return &Schedule{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Dispatch draws the fault decision for one transport Run call.
func (s *Schedule) Dispatch() Dispatch {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.Decisions++
	d := Dispatch{TruncateAfter: -1}
	if s.rng.Float64() < s.cfg.Latency {
		d.Delay = time.Duration(1 + s.rng.Int63n(int64(s.cfg.MaxLatency)))
		s.stats.Delays++
	}
	if s.rng.Float64() < s.cfg.Refuse {
		d.Refuse = true
		s.stats.Refusals++
	}
	if s.rng.Float64() < s.cfg.Truncate {
		d.TruncateAfter = s.rng.Intn(3)
		s.stats.Truncations++
	}
	if s.rng.Float64() < s.cfg.Duplicate {
		d.Duplicate = true
		s.stats.Duplicates++
	}
	return d
}

// Flap draws the decision for one health or status probe: true means
// the probe must fail even though the worker is alive.
func (s *Schedule) Flap() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.Decisions++
	if s.rng.Float64() < s.cfg.Flap {
		s.stats.Flaps++
		return true
	}
	return false
}

// MissGet draws the decision for one store Get: true forces a miss.
func (s *Schedule) MissGet() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.Decisions++
	if s.rng.Float64() < s.cfg.StoreMiss {
		s.stats.StoreMisses++
		return true
	}
	return false
}

// DropPut draws the decision for one store Put: true drops the write.
func (s *Schedule) DropPut() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.Decisions++
	if s.rng.Float64() < s.cfg.StoreDrop {
		s.stats.StoreDrops++
		return true
	}
	return false
}

// Stats returns a snapshot of the faults injected so far.
func (s *Schedule) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}
