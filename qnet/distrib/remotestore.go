// The fleet's shared result store over HTTP: StoreServer exposes any
// simulate.Store (typically the coordinator's disk-backed Cache) as a
// tiny key/value API, and RemoteStore is the simulate.Store client
// workers point at it — so every worker's lookups and write-backs
// land in one warm store, and a shard reassigned after a worker death
// re-hits the points its previous owner already finished.

package distrib

import (
	"bytes"
	"context"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/qnet/simulate"
)

// storePath is the URL prefix of the store API's key endpoints.
const storePath = "/v1/store/"

// storeStatsPath is the URL of the store API's counters endpoint.
const storeStatsPath = "/v1/store/stats"

// parseKey parses the lowercase-hex wire form of a simulate.Key (the
// form Key.String prints).
func parseKey(s string) (simulate.Key, error) {
	var k simulate.Key
	b, err := hex.DecodeString(s)
	if err != nil || len(b) != len(k) {
		return k, fmt.Errorf("distrib: bad store key %q", s)
	}
	copy(k[:], b)
	return k, nil
}

// StoreServer exposes a simulate.Store over HTTP:
//
//	GET /v1/store/{key}   -> 200 + JSON Result, or 404
//	PUT /v1/store/{key}   <- JSON Result, -> 204
//	GET /v1/store/stats   -> 200 + JSON CacheStats
//
// Mount its Handler on the coordinator (or any host the fleet can
// reach) and point workers at it with RemoteStore / Job.StoreURL.
type StoreServer struct {
	store simulate.Store
}

// NewStoreServer wraps a store for HTTP serving.
func NewStoreServer(st simulate.Store) *StoreServer {
	return &StoreServer{store: st}
}

// Handler returns the store API's http.Handler.
func (s *StoreServer) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(storePath, s.serveKey)
	return mux
}

// serveKey handles both key endpoints and the stats endpoint (which
// shares the /v1/store/ prefix).
func (s *StoreServer) serveKey(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == storeStatsPath && r.Method == http.MethodGet {
		writeJSON(w, s.store.Stats())
		return
	}
	key, err := parseKey(strings.TrimPrefix(r.URL.Path, storePath))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	switch r.Method {
	case http.MethodGet:
		res, ok := s.store.Get(key)
		if !ok {
			http.NotFound(w, r)
			return
		}
		writeJSON(w, res)
	case http.MethodPut:
		var res simulate.Result
		if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&res); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		s.store.Put(key, res)
		w.WriteHeader(http.StatusNoContent)
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

// writeJSON writes v as a JSON response body.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

// DefaultStoreTimeout is the per-request deadline a RemoteStore uses
// unless WithStoreTimeout overrides it.
const DefaultStoreTimeout = 30 * time.Second

// RemoteStore is a simulate.Store backed by a StoreServer across the
// network.  Like every Store it is best-effort: an unreachable server
// turns Gets into misses and Puts into counted write errors, never
// into simulation failures — a partitioned worker degrades to
// re-simulating, exactly as if the store were cold.
//
// Every request carries the store's bound context (WithContext) plus a
// per-request timeout (WithStoreTimeout), so cancelling a shard's
// context aborts its in-flight store traffic instead of leaving it to
// a hardcoded client deadline.
type RemoteStore struct {
	base    string
	client  *http.Client
	timeout time.Duration
	ctx     context.Context
	stats   *storeStats // shared across WithContext views
}

// storeStats is a RemoteStore's traffic counters, shared by reference
// so every WithContext view feeds the same totals.
type storeStats struct {
	mu sync.Mutex
	s  simulate.CacheStats
}

// RemoteStore implements simulate.Store.
var _ simulate.Store = (*RemoteStore)(nil)

// RemoteStoreOption configures a RemoteStore.
type RemoteStoreOption func(*RemoteStore)

// WithStoreTimeout sets the per-request deadline for Get/Put/stats
// calls (default DefaultStoreTimeout).  Zero or negative disables the
// per-request deadline, leaving only the bound context in charge.
func WithStoreTimeout(d time.Duration) RemoteStoreOption {
	return func(rs *RemoteStore) { rs.timeout = d }
}

// WithStoreClient replaces the underlying http.Client (sharing a
// transport pool, adding instrumentation, ...).  The client's own
// Timeout stays zero-valued under RemoteStore's control; deadlines
// come from WithStoreTimeout and the bound context.
func WithStoreClient(c *http.Client) RemoteStoreOption {
	return func(rs *RemoteStore) { rs.client = c }
}

// NewRemoteStore builds a client of the store API rooted at base
// (e.g. "http://coordinator:9090").  A trailing slash is tolerated.
func NewRemoteStore(base string, opts ...RemoteStoreOption) *RemoteStore {
	rs := &RemoteStore{
		base:    strings.TrimSuffix(base, "/"),
		client:  &http.Client{},
		timeout: DefaultStoreTimeout,
		ctx:     context.Background(),
		stats:   &storeStats{},
	}
	for _, opt := range opts {
		opt(rs)
	}
	return rs
}

// WithContext returns a view of the store whose requests are children
// of ctx: cancelling ctx aborts in-flight Gets and Puts immediately.
// The view shares the parent's client, configuration and stats
// counters, so a worker can bind one fleet store to each job context.
func (rs *RemoteStore) WithContext(ctx context.Context) *RemoteStore {
	if ctx == nil {
		ctx = context.Background()
	}
	return &RemoteStore{
		base:    rs.base,
		client:  rs.client,
		timeout: rs.timeout,
		ctx:     ctx,
		stats:   rs.stats,
	}
}

// keyURL returns the endpoint of one key.
func (rs *RemoteStore) keyURL(k simulate.Key) string {
	return rs.base + storePath + k.String()
}

// requestCtx derives one request's context from the bound context and
// the per-request timeout.
func (rs *RemoteStore) requestCtx() (context.Context, context.CancelFunc) {
	ctx := rs.ctx
	if ctx == nil {
		ctx = context.Background()
	}
	if rs.timeout > 0 {
		return context.WithTimeout(ctx, rs.timeout)
	}
	return context.WithCancel(ctx)
}

// Get fetches the Result for the key; any transport or decode failure
// — including cancellation of the bound context — is a miss.
func (rs *RemoteStore) Get(k simulate.Key) (simulate.Result, bool) {
	ctx, cancel := rs.requestCtx()
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, rs.keyURL(k), nil)
	if err != nil {
		return rs.miss()
	}
	resp, err := rs.client.Do(req)
	if err != nil {
		return rs.miss()
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return rs.miss()
	}
	var res simulate.Result
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		rs.stats.mu.Lock()
		rs.stats.s.CorruptEntries++
		rs.stats.mu.Unlock()
		return rs.miss()
	}
	rs.stats.mu.Lock()
	rs.stats.s.Hits++
	rs.stats.mu.Unlock()
	return res, true
}

// miss counts and returns a store miss.
func (rs *RemoteStore) miss() (simulate.Result, bool) {
	rs.stats.mu.Lock()
	rs.stats.s.Misses++
	rs.stats.mu.Unlock()
	return simulate.Result{}, false
}

// Put uploads the Result for the key, best effort; failures —
// including cancellation of the bound context — are counted in
// Stats().WriteErrors.
func (rs *RemoteStore) Put(k simulate.Key, res simulate.Result) {
	data, err := json.Marshal(res)
	if err != nil {
		rs.writeError()
		return
	}
	ctx, cancel := rs.requestCtx()
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, rs.keyURL(k), bytes.NewReader(data))
	if err != nil {
		rs.writeError()
		return
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := rs.client.Do(req)
	if err != nil {
		rs.writeError()
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		rs.writeError()
	}
}

// writeError counts one failed Put.
func (rs *RemoteStore) writeError() {
	rs.stats.mu.Lock()
	rs.stats.s.WriteErrors++
	rs.stats.mu.Unlock()
}

// Stats returns this client's local traffic counters (its own hits,
// misses and write errors — not the server's aggregate; see
// ServerStats for that).  WithContext views share one counter set.
func (rs *RemoteStore) Stats() simulate.CacheStats {
	rs.stats.mu.Lock()
	defer rs.stats.mu.Unlock()
	return rs.stats.s
}

// ServerStats fetches the server-side aggregate counters of the
// backing store — the fleet-wide view, including the corrupt-entry
// count SummarizeStore surfaces.
func (rs *RemoteStore) ServerStats(ctx context.Context) (simulate.CacheStats, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, rs.base+storeStatsPath, nil)
	if err != nil {
		return simulate.CacheStats{}, err
	}
	resp, err := rs.client.Do(req)
	if err != nil {
		return simulate.CacheStats{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return simulate.CacheStats{}, fmt.Errorf("distrib: store stats: %s", resp.Status)
	}
	var stats simulate.CacheStats
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		return simulate.CacheStats{}, err
	}
	return stats, nil
}
