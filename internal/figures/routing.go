package figures

import (
	"context"
	"fmt"
	"time"

	"repro/internal/mesh"
	"repro/internal/report"
	"repro/internal/route"
	"repro/internal/workload"

	"repro/qnet/simulate"
	"repro/qnet/stats"
)

// RoutingConfig parameterizes the routing-policy comparison: the
// Figure 16 layouts crossed with every routing policy at one resource
// allocation, each point measured as a seed ensemble and tested for a
// significant difference against the dimension-order baseline.
type RoutingConfig struct {
	// GridSize is the mesh edge length.
	GridSize int
	// Teleporters, Generators and Purifiers fix the per-node
	// allocation.
	Teleporters, Generators, Purifiers int
	// Routings are the policies compared; the default is every shipped
	// policy (xy, yx, zigzag, least-congested).  The first policy is
	// the comparison baseline.
	Routings []route.Policy
	// Seeds are the ensemble seeds; the default is {1..5}.
	Seeds []int64
	// FailureRate injects stochastic purification failure so the
	// ensembles develop a spread; zero keeps runs deterministic (and
	// makes the significance test exact, as documented on
	// stats.Comparison.P).
	FailureRate float64
	// Cache, when non-nil, serves repeated points without
	// re-simulating.
	Cache *simulate.Cache
	// Workers bounds the sweep's worker goroutines (0 = GOMAXPROCS).
	Workers int
}

// DefaultRoutingConfig returns the quick comparison configuration:
// t=g=16, p=8, all four policies, five seeds.
func DefaultRoutingConfig(gridSize int) RoutingConfig {
	return RoutingConfig{
		GridSize:    gridSize,
		Teleporters: 16,
		Generators:  16,
		Purifiers:   8,
		Routings:    route.Policies(),
		Seeds:       simulate.SeedRange(5),
	}
}

// RoutingRow is one layout × policy measurement, with its comparison
// against the same layout's baseline-policy ensemble.
type RoutingRow struct {
	// Layout is the floorplan the row was measured under.
	Layout simulate.Layout
	// Policy is the canonical routing-policy name.
	Policy string
	// Ensemble aggregates the seed ensemble's metrics.
	Ensemble stats.Ensemble
	// VsBaseline compares this row's execution times against the
	// baseline policy under the same layout (zero-valued for the
	// baseline row itself).
	VsBaseline stats.Comparison
}

// RoutingData is the full comparison: rows grouped by layout in policy
// order, plus the sweep tally (for cache-hit reporting).
type RoutingData struct {
	// Config echoes the configuration the data was generated from.
	Config RoutingConfig
	// Qubits is the QFT size (one logical qubit per tile).
	Qubits int
	// Baseline is the canonical name of the comparison baseline
	// policy.
	Baseline string
	// Rows are the measurements, grouped by layout in policy order.
	Rows []RoutingRow
	// Sweep tallies the underlying runs, including cache hits.
	Sweep simulate.Summary
}

// Routing runs the routing-policy comparison: both Figure 16 layouts
// crossed with every configured policy (times every seed) run
// concurrently through the sweep engine, and each policy's execution
// ensemble is Welch-tested against the baseline policy's.
func Routing(cfg RoutingConfig) (*RoutingData, error) {
	return RoutingContext(context.Background(), cfg)
}

// RoutingContext is Routing with cancellation.
func RoutingContext(ctx context.Context, cfg RoutingConfig) (*RoutingData, error) {
	if cfg.GridSize < 2 {
		return nil, fmt.Errorf("figures: grid size %d too small", cfg.GridSize)
	}
	grid, err := mesh.NewGrid(cfg.GridSize, cfg.GridSize)
	if err != nil {
		return nil, err
	}
	// Back-fill the defaults into cfg so RoutingData.Config echoes the
	// configuration actually run (Table reads the seed count from it).
	if len(cfg.Routings) == 0 {
		cfg.Routings = route.Policies()
	}
	if len(cfg.Seeds) == 0 {
		cfg.Seeds = simulate.SeedRange(5)
	}
	routings := cfg.Routings
	seeds := cfg.Seeds
	space := simulate.Space{
		Grids:   []mesh.Grid{grid},
		Layouts: []simulate.Layout{simulate.HomeBase, simulate.MobileQubit},
		Resources: []simulate.Resources{
			{Teleporters: cfg.Teleporters, Generators: cfg.Generators, Purifiers: cfg.Purifiers},
		},
		Programs: []workload.Program{workload.QFT(grid.Tiles())},
		Routings: routings,
		Seeds:    seeds,
		Options:  []simulate.Option{simulate.WithFailureRate(cfg.FailureRate)},
	}
	cache := cfg.Cache
	if cache == nil {
		cache = simulate.NewCache(0)
	}
	points, err := simulate.Sweep(ctx, space,
		simulate.WithCache(cache), simulate.WithWorkers(cfg.Workers))
	if err != nil {
		return nil, err
	}
	for _, pt := range points {
		if pt.Err != nil {
			return nil, fmt.Errorf("figures: %v/%s seed %d: %w",
				pt.Point.Layout, pt.Point.RoutingName(), pt.Point.Seed, pt.Err)
		}
	}

	// Decode by point metadata (layout × policy name), not position.
	type runKey struct {
		layout simulate.Layout
		policy string
	}
	groups := make(map[runKey]stats.PointEnsemble, 2*len(routings))
	for _, g := range stats.Group(points) {
		groups[runKey{g.Point.Layout, g.Point.RoutingName()}] = g
	}

	data := &RoutingData{
		Config:   cfg,
		Qubits:   grid.Tiles(),
		Baseline: route.NameOf(routings[0]),
		Sweep:    simulate.Summarize(points),
	}
	for _, layout := range space.Layouts {
		base, ok := groups[runKey{layout, data.Baseline}]
		if !ok {
			return nil, fmt.Errorf("figures: %v baseline policy %q missing from sweep results", layout, data.Baseline)
		}
		for _, p := range routings {
			name := route.NameOf(p)
			g, ok := groups[runKey{layout, name}]
			if !ok {
				return nil, fmt.Errorf("figures: %v/%s missing from sweep results", layout, name)
			}
			row := RoutingRow{Layout: layout, Policy: name, Ensemble: g.Ensemble}
			if name != data.Baseline {
				row.VsBaseline = stats.Compare(base.Ensemble.Exec, g.Ensemble.Exec)
			}
			data.Rows = append(data.Rows, row)
		}
	}
	return data, nil
}

// Table renders the comparison, one row per layout × policy with the
// ensemble mean ± 95% CI, the mean turn count, and the Welch p-value
// and Cohen's d against the baseline policy ("*" marks p < 0.05).
func (d *RoutingData) Table() *report.Table {
	t := report.NewTable(
		fmt.Sprintf("Routing policies: QFT-%d, t=%d g=%d p=%d, %d seeds (baseline %s, 95%% CI)",
			d.Qubits, d.Config.Teleporters, d.Config.Generators, d.Config.Purifiers,
			len(d.Config.Seeds), d.Baseline),
		"Layout", "Policy", "MeanExec", "ExecCI95", "MeanTurns", "MeanPairHops", "VsBaseline")
	for _, r := range d.Rows {
		vs := "(baseline)"
		if r.Policy != d.Baseline {
			vs = r.VsBaseline.String()
		}
		t.AddRow(r.Layout.String(), r.Policy,
			r.Ensemble.MeanExec().String(),
			fmt.Sprintf("± %s", time.Duration(r.Ensemble.Exec.CI(0.95).Half()*float64(time.Second))),
			r.Ensemble.Turns.Mean,
			r.Ensemble.PairHops.Mean,
			vs)
	}
	return t
}
