package simulate

import (
	"context"
	"encoding/json"
	"runtime"
	"testing"
	"time"

	"repro/qnet"
	"repro/qnet/fault"
	"repro/qnet/route"
)

// parallelPolicies is the full comparison set of the equivalence tests:
// every shipped policy plus the escape-channel one.
func parallelPolicies() []route.Policy {
	return append(route.Policies(), route.FaultAdaptive())
}

// TestParallelByteIdentity is the acceptance gate of the parallel
// engine: for every routing policy, with a nonzero fault spec, the
// JSON-marshalled Result of a parallel run at partitions 2, 3 and 4 is
// byte-identical to the serial run — and so are the errors, if any.
func TestParallelByteIdentity(t *testing.T) {
	grid := testGrid(t, 5)
	prog := qnet.QFT(grid.Tiles())
	// Drop faults keep every policy routable (dead links would block the
	// non-fault-aware ones); the spec is nonzero so the run exercises
	// the seeded RNG draw order, the subtlest thing parallel execution
	// could disturb.
	spec := fault.Spec{Drop: 0.05}
	for _, pol := range parallelPolicies() {
		base := []Option{
			WithResources(16, 16, 8),
			WithRouting(pol),
			WithFaults(spec),
			WithSeed(11),
		}
		serial, err := New(grid, HomeBase, base...)
		if err != nil {
			t.Fatal(err)
		}
		want, wantErr := serial.Run(context.Background(), prog)
		wantJSON, err := json.Marshal(want)
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range []int{2, 3, 4} {
			m, err := New(grid, HomeBase, append(base[:len(base):len(base)], WithParallelism(n))...)
			if err != nil {
				t.Fatal(err)
			}
			got, gotErr := m.Run(context.Background(), prog)
			if (gotErr == nil) != (wantErr == nil) ||
				(gotErr != nil && gotErr.Error() != wantErr.Error()) {
				t.Fatalf("%s parallel=%d: err %v, serial err %v", pol.Name(), n, gotErr, wantErr)
			}
			gotJSON, err := json.Marshal(got)
			if err != nil {
				t.Fatal(err)
			}
			if string(gotJSON) != string(wantJSON) {
				t.Errorf("%s parallel=%d diverged:\n got %s\nwant %s", pol.Name(), n, gotJSON, wantJSON)
			}
		}
	}
}

// TestParallelismExcludedFromCacheKey pins the cache contract: the
// parallel region count never changes the content address, because it
// never changes the result.
func TestParallelismExcludedFromCacheKey(t *testing.T) {
	grid := testGrid(t, 4)
	prog := qnet.QFT(grid.Tiles())
	serial, err := New(grid, HomeBase)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{0, 1, 2, 4, 16} {
		m, err := New(grid, HomeBase, WithParallelism(n))
		if err != nil {
			t.Fatal(err)
		}
		if m.Parallelism() != n {
			t.Errorf("Parallelism() = %d, want %d", m.Parallelism(), n)
		}
		if m.CacheKey(prog) != serial.CacheKey(prog) {
			t.Errorf("parallelism %d changed the cache key", n)
		}
	}
}

// TestParallelSharedCacheAcrossEngines runs serial with a cache, then a
// parallel machine over the same store: the parallel run must be a pure
// cache hit (same key, same result), never a second simulation.
func TestParallelSharedCacheAcrossEngines(t *testing.T) {
	grid := testGrid(t, 4)
	prog := qnet.QFT(grid.Tiles())
	cache := NewCache(0)
	serial, err := New(grid, HomeBase, WithCache(cache))
	if err != nil {
		t.Fatal(err)
	}
	want, err := serial.Run(context.Background(), prog)
	if err != nil {
		t.Fatal(err)
	}
	par, err := New(grid, HomeBase, WithCache(cache), WithParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	got, err := par.Run(context.Background(), prog)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Error("parallel run over the shared cache returned a different result")
	}
	if s := cache.Stats(); s.Hits != 1 || s.Misses != 1 {
		t.Errorf("cache traffic %+v, want the parallel run to hit the serial entry", s)
	}
}

// TestParallelCancelNoLeak cancels parallel runs mid-flight and
// requires Run to return promptly (a cancel landing inside a window
// barrier must not hang) without leaking the engine's worker
// goroutines.
func TestParallelCancelNoLeak(t *testing.T) {
	grid := testGrid(t, 8)
	prog := qnet.QFT(grid.Tiles())
	m, err := New(grid, HomeBase,
		WithResources(2, 2, 2),
		WithParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()
	for i := 0; i < 3; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(time.Duration(i) * 2 * time.Millisecond)
			cancel()
		}()
		done := make(chan error, 1)
		go func() {
			_, err := m.Run(ctx, prog)
			done <- err
		}()
		select {
		case err := <-done:
			// A fast machine may legitimately finish before the cancel
			// lands; all that matters is that it returns.
			_ = err
		case <-time.After(10 * time.Second):
			t.Fatal("cancelled parallel run did not return: mid-barrier hang")
		}
		cancel()
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
	if now := runtime.NumGoroutine(); now > before {
		t.Errorf("goroutines grew from %d to %d after cancelled parallel runs", before, now)
	}
}
