// Package report renders experiment results as CSV, aligned text tables
// and ASCII log-log plots, so every figure and table of the paper can be
// regenerated on a terminal without plotting dependencies.
package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Table accumulates rows and renders them aligned or as CSV.
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// AddRow appends a row; cells are stringified with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "inf"
	case v == 0:
		return "0"
	case math.Abs(v) >= 1e5 || math.Abs(v) < 1e-3:
		return fmt.Sprintf("%.3e", v)
	default:
		return fmt.Sprintf("%.4g", v)
	}
}

// WriteText renders the table aligned for terminals.
func (t *Table) WriteText(w io.Writer) error {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		fmt.Fprintf(&b, "# %s\n", t.title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	_, err := w.Write([]byte(b.String()))
	return err
}

// WriteCSV renders the table as CSV (RFC-4180 quoting for cells that
// need it).
func (t *Table) WriteCSV(w io.Writer) error {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			b.WriteString(c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	for _, row := range t.rows {
		writeRow(row)
	}
	_, err := w.Write([]byte(b.String()))
	return err
}

// Series is one named curve of (x, y) points for plotting.
type Series struct {
	Name string
	X, Y []float64
}

// Plot renders named series on an ASCII grid with optional log scaling,
// one glyph per series.
type Plot struct {
	Title        string
	XLabel       string
	YLabel       string
	LogX, LogY   bool
	Width        int // plot area columns (default 72)
	Height       int // plot area rows (default 24)
	serieses     []Series
	glyphs       string
	clampedAbove int
}

// NewPlot creates an empty plot.
func NewPlot(title, xlabel, ylabel string) *Plot {
	return &Plot{
		Title:  title,
		XLabel: xlabel,
		YLabel: ylabel,
		Width:  72,
		Height: 24,
		glyphs: "*o+x#@%&",
	}
}

// Add appends a series; points with non-finite or (under log scaling)
// non-positive coordinates are dropped.
func (p *Plot) Add(s Series) {
	p.serieses = append(p.serieses, s)
}

// Write renders the plot.
func (p *Plot) Write(w io.Writer) error {
	width, height := p.Width, p.Height
	if width < 16 {
		width = 16
	}
	if height < 8 {
		height = 8
	}

	tx := func(x float64) (float64, bool) { return p.transform(x, p.LogX) }
	ty := func(y float64) (float64, bool) { return p.transform(y, p.LogY) }

	// Find bounds over usable points.
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	usable := 0
	for _, s := range p.serieses {
		for i := range s.X {
			x, okx := tx(s.X[i])
			y, oky := ty(s.Y[i])
			if !okx || !oky {
				continue
			}
			usable++
			minX, maxX = math.Min(minX, x), math.Max(maxX, x)
			minY, maxY = math.Min(minY, y), math.Max(maxY, y)
		}
	}
	var b strings.Builder
	if p.Title != "" {
		fmt.Fprintf(&b, "# %s\n", p.Title)
	}
	if usable == 0 {
		b.WriteString("(no plottable points)\n")
		_, err := w.Write([]byte(b.String()))
		return err
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	cells := make([][]byte, height)
	for i := range cells {
		cells[i] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range p.serieses {
		glyph := p.glyphs[si%len(p.glyphs)]
		for i := range s.X {
			x, okx := tx(s.X[i])
			y, oky := ty(s.Y[i])
			if !okx || !oky {
				continue
			}
			col := int((x - minX) / (maxX - minX) * float64(width-1))
			row := height - 1 - int((y-minY)/(maxY-minY)*float64(height-1))
			cells[row][col] = glyph
		}
	}

	yTop := p.untransform(maxY, p.LogY)
	yBot := p.untransform(minY, p.LogY)
	fmt.Fprintf(&b, "%s (top=%s bottom=%s)\n", p.YLabel, formatFloat(yTop), formatFloat(yBot))
	for _, row := range cells {
		fmt.Fprintf(&b, "|%s|\n", string(row))
	}
	fmt.Fprintf(&b, "+%s+\n", strings.Repeat("-", width))
	fmt.Fprintf(&b, "%s: %s .. %s\n", p.XLabel,
		formatFloat(p.untransform(minX, p.LogX)), formatFloat(p.untransform(maxX, p.LogX)))
	for si, s := range p.serieses {
		fmt.Fprintf(&b, "  %c %s\n", p.glyphs[si%len(p.glyphs)], s.Name)
	}
	_, err := w.Write([]byte(b.String()))
	return err
}

func (p *Plot) transform(v float64, log bool) (float64, bool) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, false
	}
	if !log {
		return v, true
	}
	if v <= 0 {
		return 0, false
	}
	return math.Log10(v), true
}

func (p *Plot) untransform(v float64, log bool) float64 {
	if !log {
		return v
	}
	return math.Pow(10, v)
}
