package figures

import (
	"context"
	"fmt"
	"time"

	"repro/internal/mesh"
	"repro/internal/report"
	"repro/internal/workload"

	"repro/qnet/simulate"
)

// Fig16Config parameterizes the Figure 16 reproduction: the benchmark
// execution time of QFT under both layouts as a function of network
// resource allocation, normalized to t = g = p = 1024.
type Fig16Config struct {
	// GridSize is the mesh edge length; the paper uses 16 (QFT-256).
	// The default harness uses 8 to keep run time short; pass 16 for the
	// full-scale reproduction.
	GridSize int
	// Area is the per-tile resource budget t + g + p; 48 by default.
	Area int
	// Ratios are the t/p points of the sweep.
	Ratios []int
}

// DefaultFig16Config returns the quick (8×8, QFT-64) configuration.
func DefaultFig16Config() Fig16Config {
	return Fig16Config{GridSize: 8, Area: 48, Ratios: []int{1, 2, 4, 8}}
}

// Fig16Row is one measurement of the sweep.
type Fig16Row struct {
	Layout     simulate.Layout
	Allocation simulate.Allocation
	Exec       time.Duration
	Normalized float64
	Result     simulate.Result
}

// Fig16Data holds the full sweep, including the normalization runs.
type Fig16Data struct {
	Config    Fig16Config
	Qubits    int
	Baselines map[simulate.Layout]simulate.Result
	Rows      []Fig16Row
}

// Fig16 runs the resource-allocation sweep of Figure 16.  All
// configurations (both layouts, the baselines and every allocation) run
// concurrently through the simulate.Sweep engine.
func Fig16(cfg Fig16Config) (*Fig16Data, error) {
	return Fig16Context(context.Background(), cfg)
}

// Fig16Context is Fig16 with cancellation.
func Fig16Context(ctx context.Context, cfg Fig16Config) (*Fig16Data, error) {
	if cfg.GridSize < 2 {
		return nil, fmt.Errorf("figures: grid size %d too small", cfg.GridSize)
	}
	grid, err := mesh.NewGrid(cfg.GridSize, cfg.GridSize)
	if err != nil {
		return nil, err
	}
	qubits := grid.Tiles()
	allocs, err := simulate.Allocations(cfg.Area, cfg.Ratios)
	if err != nil {
		return nil, err
	}

	// Point 0 of the resource dimension is the unlimited-resource
	// baseline; the rest are the swept allocations, in ratio order.
	resources := make([]simulate.Resources, 0, len(allocs)+1)
	resources = append(resources, simulate.Resources{Teleporters: 1024, Generators: 1024, Purifiers: 1024})
	for _, a := range allocs {
		resources = append(resources, simulate.AllocationResources(a))
	}
	space := simulate.Space{
		Grids:     []mesh.Grid{grid},
		Layouts:   []simulate.Layout{simulate.HomeBase, simulate.MobileQubit},
		Resources: resources,
		Programs:  []workload.Program{workload.QFT(qubits)},
	}
	points, err := simulate.Sweep(ctx, space)
	if err != nil {
		return nil, err
	}

	// Decode by point metadata, not position, so the mapping survives
	// any change to the space's dimensions or expansion order.
	type runKey struct {
		layout simulate.Layout
		res    simulate.Resources
	}
	results := make(map[runKey]simulate.Result, len(points))
	for _, pt := range points {
		if pt.Err != nil {
			return nil, fmt.Errorf("figures: %v %+v: %w", pt.Point.Layout, pt.Point.Resources, pt.Err)
		}
		results[runKey{pt.Point.Layout, pt.Point.Resources}] = pt.Result
	}

	data := &Fig16Data{
		Config:    cfg,
		Qubits:    qubits,
		Baselines: make(map[simulate.Layout]simulate.Result, 2),
	}
	for _, layout := range space.Layouts {
		base, ok := results[runKey{layout, resources[0]}]
		if !ok {
			return nil, fmt.Errorf("figures: %v baseline missing from sweep results", layout)
		}
		data.Baselines[layout] = base
		for _, a := range allocs {
			res, ok := results[runKey{layout, simulate.AllocationResources(a)}]
			if !ok {
				return nil, fmt.Errorf("figures: %v %v missing from sweep results", layout, a)
			}
			data.Rows = append(data.Rows, Fig16Row{
				Layout:     layout,
				Allocation: a,
				Exec:       res.Exec,
				Normalized: float64(res.Exec) / float64(base.Exec),
				Result:     res,
			})
		}
	}
	return data, nil
}

// Table renders the sweep as a table.
func (d *Fig16Data) Table() *report.Table {
	t := report.NewTable(
		fmt.Sprintf("Figure 16: QFT-%d execution vs resource allocation (normalized to t=g=p=1024)", d.Qubits),
		"Layout", "Allocation", "Exec", "Normalized", "TeleporterUtil", "PurifierUtil")
	for _, layout := range []simulate.Layout{simulate.HomeBase, simulate.MobileQubit} {
		base := d.Baselines[layout]
		t.AddRow(layout.String(), "t=g=p=1024 (baseline)", base.Exec.String(), 1.0,
			base.TeleporterUtil, base.PurifierUtil)
		for _, r := range d.Rows {
			if r.Layout != layout {
				continue
			}
			t.AddRow(layout.String(), r.Allocation.String(), r.Exec.String(), r.Normalized,
				r.Result.TeleporterUtil, r.Result.PurifierUtil)
		}
	}
	return t
}

// Plot renders normalized execution versus the t/p ratio.
func (d *Fig16Data) Plot() *report.Plot {
	plot := report.NewPlot(
		fmt.Sprintf("Figure 16: QFT-%d normalized execution vs t/p ratio", d.Qubits),
		"t = g = ratio × p", "execution / unlimited-resource execution")
	plot.LogY = true
	for _, layout := range []simulate.Layout{simulate.HomeBase, simulate.MobileQubit} {
		s := report.Series{Name: layout.String()}
		for _, r := range d.Rows {
			if r.Layout != layout {
				continue
			}
			s.X = append(s.X, float64(r.Allocation.Ratio))
			s.Y = append(s.Y, r.Normalized)
		}
		plot.Add(s)
	}
	return plot
}

// MEMMData compares the three Shor's-algorithm kernels (the paper's
// benchmark suite of §5.2) under one allocation; the six runs (three
// kernels × two layouts) execute concurrently.
func MEMM(gridSize int, t, g, p int) (*report.Table, error) {
	grid, err := mesh.NewGrid(gridSize, gridSize)
	if err != nil {
		return nil, err
	}
	half := grid.Tiles() / 2
	space := simulate.Space{
		Grids:   []mesh.Grid{grid},
		Layouts: []simulate.Layout{simulate.HomeBase, simulate.MobileQubit},
		Resources: []simulate.Resources{
			{Teleporters: t, Generators: g, Purifiers: p},
		},
		Programs: []workload.Program{
			workload.QFT(grid.Tiles()),
			workload.ModMult(half),
			workload.ModExp(half/2, 1),
		},
	}
	points, err := simulate.Sweep(context.Background(), space)
	if err != nil {
		return nil, err
	}
	// Decode by point metadata (kernel name × layout), not position.
	type runKey struct {
		kernel string
		layout simulate.Layout
	}
	results := make(map[runKey]simulate.Result, len(points))
	for _, pt := range points {
		if pt.Err != nil {
			return nil, pt.Err
		}
		results[runKey{pt.Point.Program.Name, pt.Point.Layout}] = pt.Result
	}
	tab := report.NewTable(
		fmt.Sprintf("Shor kernels on a %dx%d mesh (t=%d g=%d p=%d)", gridSize, gridSize, t, g, p),
		"Kernel", "Layout", "Ops", "Channels", "PairHops", "Exec", "MeanChannelLatency")
	// The paper's table groups by kernel first.
	for _, prog := range space.Programs {
		for _, layout := range space.Layouts {
			res, ok := results[runKey{prog.Name, layout}]
			if !ok {
				return nil, fmt.Errorf("figures: %s/%v missing from sweep results", prog.Name, layout)
			}
			tab.AddRow(prog.Name, layout.String(), res.Ops, res.Channels, res.PairHops,
				res.Exec.String(), res.MeanChannelLatency.String())
		}
	}
	return tab, nil
}
