package simulate

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/qnet"
	"repro/qnet/route"
)

// parityResult mirrors the Result fields that existed before the
// routing layer was extracted, in their original declaration order, so
// marshaling fresh runs through it reproduces the golden file's exact
// JSON shape.  (Result has since gained Turns, which the golden
// predates; everything the pre-refactor simulator reported is pinned
// here.)
type parityResult struct {
	Exec               time.Duration
	Ops                int
	Channels           uint64
	LocalOps           uint64
	PairsDelivered     uint64
	PairHops           uint64
	Events             uint64
	ClassicalMessages  uint64
	FailedBatches      uint64
	MeanChannelLatency time.Duration
	MaxChannelLatency  time.Duration
	TeleporterUtil     float64
	GeneratorUtil      float64
	PurifierUtil       float64
}

// parityRow mirrors the row shape of testdata/parity_xy.json.
type parityRow struct {
	Layout  string
	T, G, P int
	Program string
	Depth   int
	Result  parityResult
}

// paritySpace is the deterministic sweep the golden file was generated
// from, before routing became pluggable: 5x5 grid, both layouts, two
// allocations, two programs, two purifier depths, no failure injection.
func paritySpace(t *testing.T, routings []route.Policy) Space {
	t.Helper()
	grid, err := qnet.NewGrid(5, 5)
	if err != nil {
		t.Fatal(err)
	}
	return Space{
		Grids:   []qnet.Grid{grid},
		Layouts: []Layout{HomeBase, MobileQubit},
		Resources: []Resources{
			{Teleporters: 16, Generators: 16, Purifiers: 8},
			{Teleporters: 4, Generators: 4, Purifiers: 2},
		},
		Programs: []qnet.Program{qnet.QFT(grid.Tiles()), qnet.ModMult(grid.Tiles() / 2)},
		Depths:   []int{2, 3},
		Routings: routings,
	}
}

// parityRows runs the parity space under the given routing dimension
// and flattens the results into golden-file rows.
func parityRows(t *testing.T, routings []route.Policy) []parityRow {
	t.Helper()
	points, err := Sweep(context.Background(), paritySpace(t, routings))
	if err != nil {
		t.Fatal(err)
	}
	rows := make([]parityRow, 0, len(points))
	for _, pt := range points {
		if pt.Err != nil {
			t.Fatalf("point %d: %v", pt.Point.Index, pt.Err)
		}
		r := pt.Result
		rows = append(rows, parityRow{
			Layout:  pt.Point.Layout.String(),
			T:       pt.Point.Resources.Teleporters,
			G:       pt.Point.Resources.Generators,
			P:       pt.Point.Resources.Purifiers,
			Program: pt.Point.Program.Name,
			Depth:   pt.Point.Depth,
			Result: parityResult{
				Exec:               r.Exec,
				Ops:                r.Ops,
				Channels:           r.Channels,
				LocalOps:           r.LocalOps,
				PairsDelivered:     r.PairsDelivered,
				PairHops:           r.PairHops,
				Events:             r.Events,
				ClassicalMessages:  r.ClassicalMessages,
				FailedBatches:      r.FailedBatches,
				MeanChannelLatency: r.MeanChannelLatency,
				MaxChannelLatency:  r.MaxChannelLatency,
				TeleporterUtil:     r.TeleporterUtil,
				GeneratorUtil:      r.GeneratorUtil,
				PurifierUtil:       r.PurifierUtil,
			},
		})
	}
	return rows
}

// TestXYOrderParityWithPreRefactorGolden pins the routing refactor as
// behavior-preserving by default: a sweep under the default (nil →
// XYOrder) policy must reproduce testdata/parity_xy.json — captured by
// the pre-refactor simulator, before routing was pluggable — byte for
// byte.  The explicit XYOrder policy must match the same bytes.
func TestXYOrderParityWithPreRefactorGolden(t *testing.T) {
	want, err := os.ReadFile(filepath.Join("testdata", "parity_xy.json"))
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name     string
		routings []route.Policy
	}{
		{"default", nil},
		{"explicit-xy", []route.Policy{route.XYOrder()}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			got, err := json.MarshalIndent(parityRows(t, tc.routings), "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, '\n')
			if string(got) != string(want) {
				t.Errorf("default-policy sweep diverged from the pre-refactor golden output\n got %d bytes\nwant %d bytes\n"+
					"(the XYOrder policy must keep the refactor behavior-preserving; "+
					"regenerate testdata/parity_xy.json only for an intentional simulator change)", len(got), len(want))
			}
		})
	}
}

// TestRoutingPoliciesDivergeFromXY asserts the other policies are not
// accidental XY clones and complete the whole space without stalling
// (the deadlock-freedom property of their turn models): every policy
// stays minimal (equal pair-hop totals, since all shipped policies
// route Manhattan-minimal paths), and the static alternatives must
// produce different timing than dimension order somewhere in the
// space.  LeastCongested legitimately converges to dimension order
// when loads tie, so only minimality and completion are asserted for
// it.
func TestRoutingPoliciesDivergeFromXY(t *testing.T) {
	base := parityRows(t, nil)
	baseTotal := totalExec(base)
	for _, tc := range []struct {
		policy     route.Policy
		mustDiffer bool
	}{
		{route.YXOrder(), true},
		{route.ZigZag(), true},
		{route.LeastCongested(), false},
	} {
		p := tc.policy
		rows := parityRows(t, []route.Policy{p})
		if len(rows) != len(base) {
			t.Fatalf("%s: %d rows, want %d", p.Name(), len(rows), len(base))
		}
		for i := range rows {
			if rows[i].Result.PairHops != base[i].Result.PairHops {
				t.Errorf("%s row %d: PairHops %d != xy %d (policy is not minimal)",
					p.Name(), i, rows[i].Result.PairHops, base[i].Result.PairHops)
			}
		}
		if tc.mustDiffer && totalExec(rows) == baseTotal {
			t.Errorf("%s: total execution identical to xy across the whole space — policy looks like an XY clone", p.Name())
		}
	}
}

func totalExec(rows []parityRow) time.Duration {
	var total time.Duration
	for _, r := range rows {
		total += r.Result.Exec
	}
	return total
}
