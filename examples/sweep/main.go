// Concurrent parameter sweep: machines, sessions and the sweep engine.
//
// This example is the tour of the qnet/simulate API surface:
//
//  1. build one Machine and run several programs through a Session
//     (per-run reproducible RNG streams, recorded results);
//  2. expand a layouts × workloads × seeds Space and fan it out across
//     worker goroutines with Sweep, streaming progress;
//  3. show cancellation: a context deadline aborts a run mid-flight
//     inside the discrete-event loop;
//  4. show structured errors: errors.Is/errors.As classify bad
//     configurations and capacity overruns without string matching.
//
// Run with: go run ./examples/sweep [-grid 6] [-workers 0]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/qnet"
	"repro/qnet/simulate"
)

func main() {
	gridN := flag.Int("grid", 6, "mesh edge length")
	workers := flag.Int("workers", 0, "sweep worker goroutines (0 = GOMAXPROCS)")
	flag.Parse()

	if err := run(*gridN, *workers); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(gridN, workers int) error {
	ctx := context.Background()
	grid, err := qnet.NewGrid(gridN, gridN)
	if err != nil {
		return err
	}

	// 1. One machine, many programs: a Session records every run.
	fmt.Println("== Session: one machine, three Shor kernels ==")
	m, err := simulate.New(grid, simulate.MobileQubit,
		simulate.WithResources(16, 16, 8),
		simulate.WithSeed(7))
	if err != nil {
		return err
	}
	sess := m.NewSession()
	for _, prog := range []qnet.Program{
		qnet.QFT(grid.Tiles()),
		qnet.ModMult(grid.Tiles() / 2),
		qnet.ModExp(grid.Tiles()/4, 1),
	} {
		res, err := sess.Run(ctx, prog)
		if err != nil {
			return err
		}
		fmt.Printf("%-10s %4d ops  exec %v\n", prog.Name, res.Ops, res.Exec)
	}
	fmt.Printf("session total: %d runs, %v simulated\n\n", sess.Runs(), sess.TotalExec())

	// 2. The sweep engine: layouts × workloads × seeds, in parallel.
	fmt.Println("== Sweep: layouts × workloads × seeds, concurrent ==")
	space := simulate.Space{
		Grids:     []qnet.Grid{grid},
		Layouts:   []simulate.Layout{simulate.HomeBase, simulate.MobileQubit},
		Resources: []simulate.Resources{{Teleporters: 16, Generators: 16, Purifiers: 8}},
		Programs:  []qnet.Program{qnet.QFT(grid.Tiles()), qnet.ModMult(grid.Tiles() / 2)},
		Seeds:     []int64{1, 2},
		Options:   []simulate.Option{simulate.WithFailureRate(0.02)},
	}
	start := time.Now()
	points, err := simulate.Sweep(ctx, space,
		simulate.WithWorkers(workers),
		simulate.WithProgress(func(done, total int) {
			fmt.Fprintf(os.Stderr, "\r%d/%d", done, total)
			if done == total {
				fmt.Fprint(os.Stderr, "\r")
			}
		}))
	if err != nil {
		return err
	}
	fmt.Printf("%d runs in %v wall time\n", len(points), time.Since(start).Round(time.Millisecond))
	for _, pt := range points {
		if pt.Err != nil {
			return pt.Err
		}
		fmt.Printf("%-12v %-10s seed %d: exec %-14v failed batches %d\n",
			pt.Point.Layout, pt.Point.Program.Name, pt.Point.Seed,
			pt.Result.Exec, pt.Result.FailedBatches)
	}

	// 3. Cancellation: a cancelled context aborts the event loop.  A
	// deadline (context.WithTimeout) propagates the same way.
	fmt.Println("\n== Cancellation: cancelled context on a QFT run ==")
	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := m.Run(cancelled, qnet.QFT(grid.Tiles())); err != nil {
		fmt.Printf("run aborted as expected: %v\n", err)
	}

	// 4. Structured errors.
	fmt.Println("\n== Structured errors ==")
	_, err = simulate.New(grid, simulate.HomeBase, simulate.WithPurifyDepth(99))
	var cfgErr *qnet.ConfigError
	if errors.As(err, &cfgErr) {
		fmt.Printf("ConfigError on field %s: %v\n", cfgErr.Field, err)
	}
	_, err = m.Run(ctx, qnet.QFT(grid.Tiles()+1))
	var capErr *qnet.CapacityError
	if errors.As(err, &capErr) {
		fmt.Printf("CapacityError: need %d %s, have %d\n", capErr.Need, capErr.Resource, capErr.Have)
	}
	return nil
}
