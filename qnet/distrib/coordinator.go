// The coordinator half of the distributed sweep service: shard
// planning, dispatch, retry/backoff, dead-worker reassignment, and the
// merge back into the single-process []simulate.SweepPoint contract.

package distrib

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/qnet"
	"repro/qnet/simulate"
)

// Coordinator shards a sweep space across a fleet of workers and
// merges their streamed results.  Build one with NewCoordinator and
// run sweeps with Sweep; a Coordinator is safe for sequential reuse
// (one Sweep at a time).
type Coordinator struct {
	transport Transport
	workers   []string
	shards    int
	attempts  int
	backoff   time.Duration
	heartbeat time.Duration
	store     simulate.Store
	storeURL  string
	logf      func(format string, args ...any)
	progress  func(worker string, st Status)
}

// CoordinatorOption configures a Coordinator.
type CoordinatorOption func(*Coordinator)

// WithShards sets how many shards the space is partitioned into.  The
// default is four per worker: small enough to amortize dispatch,
// large enough that losing a worker mid-shard forfeits little work.
func WithShards(n int) CoordinatorOption {
	return func(c *Coordinator) { c.shards = n }
}

// WithMaxAttempts caps how many times one shard may be dispatched
// before the sweep fails (first attempt included).  The default is
// the worker count plus two, so a shard survives every worker dying
// once plus scheduling bad luck.
func WithMaxAttempts(n int) CoordinatorOption {
	return func(c *Coordinator) { c.attempts = n }
}

// WithRetryBackoff sets the delay before a failed shard is
// re-enqueued (default 50ms; the delay grows linearly with the
// shard's attempt count).
func WithRetryBackoff(d time.Duration) CoordinatorOption {
	return func(c *Coordinator) { c.backoff = d }
}

// WithHeartbeat enables active liveness probing: every worker's Status
// is fetched at this period, and two consecutive failed fetches mark
// the worker dead and abort its in-flight shard (which then
// reassigns).  Each successful beat also feeds the WithProgress
// callback, so heartbeats double as live progress/telemetry probes.
// Zero (the default) relies on in-band detection only — a dead worker
// is noticed when its result stream breaks.
func WithHeartbeat(d time.Duration) CoordinatorOption {
	return func(c *Coordinator) { c.heartbeat = d }
}

// WithProgress installs a per-worker progress callback, invoked with
// each successful heartbeat's Status snapshot — shard progress plus,
// for workers built with WithWorkerTelemetry, the live event rate and
// router occupancy of their in-flight runs.  It only fires while a
// heartbeat period is set (WithHeartbeat); the callback must be safe
// for concurrent calls, one goroutine per worker.
func WithProgress(f func(worker string, st Status)) CoordinatorOption {
	return func(c *Coordinator) { c.progress = f }
}

// WithSharedStore gives the coordinator the fleet's shared result
// store: merged fresh points are sanity-checked against it (see
// Report.Mismatches), its stats land in the Report, and — when url is
// non-empty — every dispatched Job carries it as StoreURL so workers
// consult the same store remotely.  Pass url "" for transports whose
// workers already share the store in process (Loopback).
func WithSharedStore(st simulate.Store, url string) CoordinatorOption {
	return func(c *Coordinator) { c.store, c.storeURL = st, url }
}

// WithLogf installs a progress logger (default: silent).
func WithLogf(f func(format string, args ...any)) CoordinatorOption {
	return func(c *Coordinator) { c.logf = f }
}

// NewCoordinator builds a coordinator dispatching over the transport
// to the named workers (for HTTPTransport, their base URLs).
func NewCoordinator(t Transport, workers []string, opts ...CoordinatorOption) (*Coordinator, error) {
	if t == nil {
		return nil, &qnet.ConfigError{Field: "Transport", Value: "-", Reason: "transport must not be nil"}
	}
	if len(workers) == 0 {
		return nil, &qnet.ConfigError{Field: "Workers", Value: 0, Reason: "need at least one worker"}
	}
	c := &Coordinator{
		transport: t,
		workers:   workers,
		shards:    4 * len(workers),
		attempts:  len(workers) + 2,
		backoff:   50 * time.Millisecond,
		logf:      func(string, ...any) {},
	}
	for _, opt := range opts {
		opt(c)
	}
	return c, nil
}

// Report is the operational outcome of one distributed sweep: how the
// work spread, what failed over, and how the shared store behaved.
type Report struct {
	// Points is the number of distinct run points merged.
	Points int
	// CacheHits is how many merged points were served from the shared
	// store rather than freshly simulated.
	CacheHits int
	// Shards is the number of planned shards.
	Shards int
	// Reassignments counts shard dispatches beyond each shard's first
	// (retries on any worker plus failovers to another).
	Reassignments int
	// DuplicatePoints counts points delivered more than once — the
	// overlap a reassigned shard re-delivers; duplicates are dropped
	// on merge (first result wins).
	DuplicatePoints int
	// Mismatches counts fresh results that disagreed with the shared
	// store's entry for the same key: nonzero means a worker diverged
	// (version skew or lost determinism).  Details lists the first few
	// as "index N: <metric deltas>".
	Mismatches int
	// MismatchDetails are the first mismatches' metric deltas.
	MismatchDetails []string
	// DeadWorkers lists workers that were declared dead during the
	// sweep.
	DeadWorkers []string
	// ShardsByWorker counts completed shards per worker.
	ShardsByWorker map[string]int
	// Store is the shared store's counter snapshot after the sweep
	// (zero when no store was attached).
	Store simulate.CacheStats
}

// String renders the report compactly.
func (r *Report) String() string {
	out := fmt.Sprintf("%d points (%d store hits) over %d shards, %d reassignments, %d duplicates, %d mismatches",
		r.Points, r.CacheHits, r.Shards, r.Reassignments, r.DuplicatePoints, r.Mismatches)
	if len(r.DeadWorkers) > 0 {
		out += fmt.Sprintf(", dead workers %v", r.DeadWorkers)
	}
	return out
}

// shardState is one shard's dispatch bookkeeping.
type shardState struct {
	Shard
	attempts int
}

// Sweep expands the spec, shards it across the fleet, and returns the
// merged points in expansion order — the same contract as
// simulate.Sweep over the same space — plus the operational Report.
// Per-point simulation failures are recorded in SweepPoint.Err exactly
// like the single-process engine; Sweep itself fails only when a shard
// exhausts its attempts, every worker dies, or ctx is cancelled.
func (c *Coordinator) Sweep(ctx context.Context, spec SpaceSpec) ([]simulate.SweepPoint, *Report, error) {
	space, err := spec.Space()
	if err != nil {
		return nil, nil, err
	}
	pts, err := space.Points()
	if err != nil {
		return nil, nil, err
	}

	// With a store attached, every point's content key is known up
	// front (the same machine validation single-process Sweep performs
	// eagerly); the keys drive the merge-time sanity check.
	var keys []simulate.Key
	if c.store != nil {
		keys = make([]simulate.Key, len(pts))
		for i, pt := range pts {
			m, err := space.Machine(pt)
			if err != nil {
				return nil, nil, err
			}
			keys[i] = m.CacheKey(pt.Program)
		}
	}

	shards := PlanShards(len(pts), c.shards)
	rep := &Report{Shards: len(shards), ShardsByWorker: make(map[string]int)}

	ctx, cancelSweep := context.WithCancel(ctx)
	defer cancelSweep()

	var (
		mu        sync.Mutex
		merged    = make(map[int]PointResult, len(pts))
		remaining = len(shards)
		liveW     = len(c.workers)
		failure   error
	)
	allDone := make(chan struct{})
	pending := make(chan *shardState, len(shards))
	for i := range shards {
		pending <- &shardState{Shard: shards[i]}
	}

	fail := func(err error) {
		mu.Lock()
		if failure == nil {
			failure = err
		}
		mu.Unlock()
		cancelSweep()
	}

	// merge folds one streamed point in, deduplicating overlap from
	// reassigned shards and sanity-checking fresh results against the
	// shared store.
	merge := func(pr PointResult) error {
		mu.Lock()
		defer mu.Unlock()
		if _, dup := merged[pr.Index]; dup {
			rep.DuplicatePoints++
			return nil
		}
		if pr.Index < 0 || pr.Index >= len(pts) {
			return fmt.Errorf("distrib: streamed point index %d out of range", pr.Index)
		}
		merged[pr.Index] = pr
		if pr.Cached {
			rep.CacheHits++
		}
		if keys != nil && !pr.Cached && pr.Err == "" {
			if prev, ok := c.store.Get(keys[pr.Index]); ok {
				if d := simulate.Diff(prev, pr.Result); !d.IsZero() {
					rep.Mismatches++
					if len(rep.MismatchDetails) < 8 {
						rep.MismatchDetails = append(rep.MismatchDetails,
							fmt.Sprintf("index %d: %s", pr.Index, d))
					}
				}
			}
		}
		return nil
	}

	markDead := func(worker string) {
		mu.Lock()
		for _, w := range rep.DeadWorkers {
			if w == worker {
				mu.Unlock()
				return
			}
		}
		rep.DeadWorkers = append(rep.DeadWorkers, worker)
		liveW--
		noneLeft := liveW == 0
		mu.Unlock()
		c.logf("distrib: worker %s declared dead", worker)
		if noneLeft {
			fail(errors.New("distrib: every worker died with shards outstanding"))
		}
	}

	// Per-worker cancel handles let the heartbeat monitor abort a dead
	// worker's in-flight shard so it reassigns promptly.
	type flight struct {
		mu     sync.Mutex
		cancel context.CancelFunc
	}
	flights := make(map[string]*flight, len(c.workers))
	for _, w := range c.workers {
		flights[w] = &flight{}
	}

	var wg sync.WaitGroup
	for _, worker := range c.workers {
		wg.Add(1)
		go func(worker string) {
			defer wg.Done()
			fl := flights[worker]
			for {
				var sh *shardState
				select {
				case <-ctx.Done():
					return
				case <-allDone:
					return
				case sh = <-pending:
				}
				mu.Lock()
				dead := false
				for _, w := range rep.DeadWorkers {
					if w == worker {
						dead = true
					}
				}
				if dead {
					mu.Unlock()
					pending <- sh // hand back untaken
					return
				}
				if sh.attempts > 0 {
					rep.Reassignments++
				}
				sh.attempts++
				attempts := sh.attempts
				mu.Unlock()

				jctx, cancel := context.WithCancel(ctx)
				fl.mu.Lock()
				fl.cancel = cancel
				fl.mu.Unlock()
				job := Job{Space: spec, Indices: sh.Indices, StoreURL: c.storeURL}
				err := c.transport.Run(jctx, worker, job, merge)
				fl.mu.Lock()
				fl.cancel = nil
				fl.mu.Unlock()
				cancel()

				if err == nil {
					mu.Lock()
					rep.ShardsByWorker[worker]++
					remaining--
					done := remaining == 0
					mu.Unlock()
					if done {
						close(allDone)
						return
					}
					continue
				}
				if ctx.Err() != nil {
					return
				}
				c.logf("distrib: shard %d attempt %d on %s failed: %v", sh.ID, attempts, worker, err)
				if attempts >= c.attempts {
					fail(fmt.Errorf("distrib: shard %d failed after %d attempts: %w", sh.ID, attempts, err))
					return
				}
				// Re-enqueue after a linear backoff; the buffered channel
				// guarantees the send cannot block.
				sst := sh
				time.AfterFunc(time.Duration(attempts)*c.backoff, func() { pending <- sst })
				// A broken stream usually means a dead worker; confirm
				// out of band and stop pulling work if so.
				if c.transport.Healthy(ctx, worker) != nil {
					markDead(worker)
					return
				}
			}
		}(worker)
	}

	// Heartbeat monitor: each beat fetches the worker's live Status, so
	// one probe serves two purposes — liveness (workers that stop
	// answering are marked dead and their in-flight shards aborted) and
	// progress telemetry (successful beats feed WithProgress).
	hbCtx, stopHB := context.WithCancel(ctx)
	defer stopHB()
	if c.heartbeat > 0 {
		for _, worker := range c.workers {
			go func(worker string) {
				misses := 0
				t := time.NewTicker(c.heartbeat)
				defer t.Stop()
				for {
					select {
					case <-hbCtx.Done():
						return
					case <-allDone:
						return
					case <-t.C:
					}
					st, err := c.transport.Status(hbCtx, worker)
					if err != nil {
						if misses++; misses >= 2 {
							markDead(worker)
							fl := flights[worker]
							fl.mu.Lock()
							if fl.cancel != nil {
								fl.cancel()
							}
							fl.mu.Unlock()
							return
						}
						continue
					}
					misses = 0
					if c.progress != nil {
						c.progress(worker, st)
					}
				}
			}(worker)
		}
	}

	wg.Wait()
	mu.Lock()
	err = failure
	mu.Unlock()
	if err == nil {
		if cerr := ctx.Err(); cerr != nil {
			err = cerr
		}
	}
	if err == nil && len(merged) != len(pts) {
		err = fmt.Errorf("distrib: merged %d of %d points", len(merged), len(pts))
	}
	if err != nil {
		return nil, rep, err
	}

	out := make([]simulate.SweepPoint, len(pts))
	for i, pt := range pts {
		pr := merged[i]
		sp := simulate.SweepPoint{Point: pt, Result: pr.Result, Cached: pr.Cached}
		if pr.Err != "" {
			sp.Err = errors.New(pr.Err)
		}
		out[i] = sp
	}
	rep.Points = len(out)
	if c.store != nil {
		rep.Store = c.store.Stats()
	}
	return out, rep, nil
}
