package figures

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/mesh"
	"repro/internal/report"
	"repro/internal/route"
	"repro/internal/workload"

	"repro/qnet/simulate"
	"repro/qnet/trace"
)

// CongestionConfig parameterizes the congestion-heatmap figure: one
// traced QFT run whose per-link utilization is rendered over simulated
// time.
type CongestionConfig struct {
	// GridSize is the mesh edge length.
	GridSize int
	// Teleporters, Generators and Purifiers fix the per-node
	// allocation.
	Teleporters, Generators, Purifiers int
	// Layout is the floorplan of the traced run.
	Layout simulate.Layout
	// Routing is the routing policy (nil = the xy default).
	Routing route.Policy
	// Columns is the heatmap's time-bucket count; the sampling interval
	// is derived as execution time over Columns, so the whole run fits
	// the trace ring.  The default is 64.
	Columns int
	// MaxLinks bounds the heatmap to the hottest links by mean
	// utilization (0 = every link), keeping large meshes readable.
	MaxLinks int
	// FailureRate injects stochastic purification failure, populating
	// the trace's resend log.
	FailureRate float64
	// Seed drives the failure-injection RNG.
	Seed int64
	// Cache, when non-nil, serves the calibration pass (the traced pass
	// always simulates).
	Cache *simulate.Cache
}

// DefaultCongestionConfig returns the quick congestion figure
// configuration: a MobileQubit QFT at t=g=16, p=8 with 64 time
// buckets, capped at the 24 hottest links.
func DefaultCongestionConfig(gridSize int) CongestionConfig {
	return CongestionConfig{
		GridSize:    gridSize,
		Teleporters: 16,
		Generators:  16,
		Purifiers:   8,
		Layout:      simulate.MobileQubit,
		Columns:     64,
		MaxLinks:    24,
	}
}

// CongestionData is one traced run's congestion record: the exported
// time series plus the run metadata the renderers need.
type CongestionData struct {
	// Config echoes the configuration the data was generated from (with
	// defaults back-filled).
	Config CongestionConfig
	// Qubits is the QFT size (one logical qubit per tile).
	Qubits int
	// Exec is the traced run's execution time.
	Exec time.Duration
	// Policy is the canonical routing-policy name.
	Policy string
	// Trace is the run's exported time series.
	Trace *trace.Export
	// Links are the mesh links in canonical (trace column) order.
	Links []mesh.Link
}

// Congestion runs the congestion-trace figure.
func Congestion(cfg CongestionConfig) (*CongestionData, error) {
	return CongestionContext(context.Background(), cfg)
}

// CongestionContext is Congestion with cancellation.  It runs two
// passes: a calibration run (cacheable) learns the execution time, from
// which the sampling interval is derived so the trace's ring holds the
// whole run at the requested column count; the second, traced run
// records the series.
func CongestionContext(ctx context.Context, cfg CongestionConfig) (*CongestionData, error) {
	if cfg.GridSize < 2 {
		return nil, fmt.Errorf("figures: grid size %d too small", cfg.GridSize)
	}
	if cfg.Columns == 0 {
		cfg.Columns = 64
	}
	if cfg.Columns < 2 {
		return nil, fmt.Errorf("figures: congestion needs >= 2 columns, got %d", cfg.Columns)
	}
	grid, err := mesh.NewGrid(cfg.GridSize, cfg.GridSize)
	if err != nil {
		return nil, err
	}
	opts := []simulate.Option{
		simulate.WithResources(cfg.Teleporters, cfg.Generators, cfg.Purifiers),
		simulate.WithRouting(cfg.Routing),
		simulate.WithFailureRate(cfg.FailureRate),
		simulate.WithSeed(cfg.Seed),
	}
	if cfg.Cache != nil {
		opts = append(opts, simulate.WithCache(cfg.Cache))
	}
	m, err := simulate.New(grid, cfg.Layout, opts...)
	if err != nil {
		return nil, err
	}
	prog := workload.QFT(grid.Tiles())

	// Pass 1: calibrate.  A cached result answers this instantly on
	// warm reruns; only the execution time is needed.
	res, err := m.Run(ctx, prog)
	if err != nil {
		return nil, err
	}
	interval := res.Exec / time.Duration(cfg.Columns)
	if interval <= 0 {
		interval = time.Nanosecond
	}

	// Pass 2: trace.  The ring is sized past the column count so the
	// integer-division slack of the interval cannot wrap it.
	tr := trace.New(trace.Config{Interval: interval, Capacity: cfg.Columns + 8})
	if _, err := m.WithTrace(tr).Run(ctx, prog); err != nil {
		return nil, err
	}

	return &CongestionData{
		Config: cfg,
		Qubits: grid.Tiles(),
		Exec:   res.Exec,
		Policy: route.NameOf(cfg.Routing),
		Trace:  tr.Export(),
		Links:  grid.Links(),
	}, nil
}

// meanUtil returns the mean over time of one link's utilization column.
func (d *CongestionData) meanUtil(link int) float64 {
	if len(d.Trace.LinkUtil) == 0 {
		return 0
	}
	var sum float64
	for _, row := range d.Trace.LinkUtil {
		sum += row[link]
	}
	return sum / float64(len(d.Trace.LinkUtil))
}

// maxUtil returns the peak of one link's utilization column.
func (d *CongestionData) maxUtil(link int) float64 {
	var max float64
	for _, row := range d.Trace.LinkUtil {
		if row[link] > max {
			max = row[link]
		}
	}
	return max
}

// hotLinks returns the link indices ordered hottest-first by mean
// utilization, truncated to Config.MaxLinks when set.
func (d *CongestionData) hotLinks() []int {
	idx := make([]int, len(d.Links))
	means := make([]float64, len(d.Links))
	for i := range idx {
		idx[i] = i
		means[i] = d.meanUtil(i)
	}
	// Insertion sort by descending mean, index ascending on ties: the
	// link count is small and the order must be deterministic.
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0; j-- {
			a, b := idx[j-1], idx[j]
			if means[a] > means[b] || (means[a] == means[b] && a < b) {
				break
			}
			idx[j-1], idx[j] = b, a
		}
	}
	if d.Config.MaxLinks > 0 && len(idx) > d.Config.MaxLinks {
		idx = idx[:d.Config.MaxLinks]
	}
	return idx
}

// Heatmap renders per-link utilization over simulated time as an ASCII
// grid: one row per link (hottest first), one column per sample, each
// cell a digit 0-9 of the clamped utilization ('.' for zero).  Values
// follow the route.Loads contract and can exceed 1.0 under backlog, so
// every cell is clamped through trace.Clamp01 before scaling — a
// saturated link reads '9', it does not blow the scale for the rest of
// the map.
func (d *CongestionData) Heatmap() string {
	var b strings.Builder
	fmt.Fprintf(&b, "link utilization over time: QFT-%d, %v, %s routing, %v per column\n",
		d.Qubits, d.Config.Layout, d.Policy, time.Duration(d.Trace.IntervalNS))
	hot := d.hotLinks()
	for _, li := range hot {
		l := d.Links[li]
		fmt.Fprintf(&b, "%-14s ", fmt.Sprintf("%v/%v", l.From, l.Dir))
		for _, row := range d.Trace.LinkUtil {
			v := trace.Clamp01(row[li])
			if v <= 0 {
				b.WriteByte('.')
			} else {
				b.WriteByte(byte('0' + int(v*9)))
			}
		}
		b.WriteByte('\n')
	}
	if len(hot) < len(d.Links) {
		fmt.Fprintf(&b, "(%d of %d links shown, hottest by mean utilization)\n", len(hot), len(d.Links))
	}
	return b.String()
}

// Table renders the hottest links' summary: mean and peak utilization
// plus the trace's drop/resend totals in the title.
func (d *CongestionData) Table() *report.Table {
	t := report.NewTable(
		fmt.Sprintf("Congestion: QFT-%d, %v, %s routing, %d samples (%d drops, %d resends)",
			d.Qubits, d.Config.Layout, d.Policy,
			len(d.Trace.Times), d.Trace.TotalDrops, d.Trace.TotalResends),
		"Link", "MeanUtil", "PeakUtil")
	for _, li := range d.hotLinks() {
		l := d.Links[li]
		t.AddRow(fmt.Sprintf("%v/%v", l.From, l.Dir),
			fmt.Sprintf("%.3f", d.meanUtil(li)),
			fmt.Sprintf("%.3f", d.maxUtil(li)))
	}
	return t
}
