// Property tests for the routing layer, via Go native fuzzing.  The
// seeded corpus pins the interesting shapes (degenerate 1xN meshes,
// same-tile routes, corner-to-corner diagonals, every policy index);
// `go test` replays the corpus as ordinary tests, and `go test
// -fuzz=FuzzPolicyRoutes ./qnet/route` explores beyond it.
package route_test

import (
	"reflect"
	"testing"

	"repro/qnet"
	"repro/qnet/route"
)

// fuzzPolicies is the set under test: every shipped policy plus the
// fault-adaptive escape policy (healthy-mesh mode, nil fault model).
func fuzzPolicies() []route.Policy {
	return append(route.Policies(), route.FaultAdaptive())
}

func FuzzPolicyRoutes(f *testing.F) {
	// Corpus: mesh extremes x endpoint extremes x every policy.
	f.Add(uint8(8), uint8(8), uint16(0), uint16(63), uint8(0))
	f.Add(uint8(1), uint8(16), uint16(0), uint16(15), uint8(1))
	f.Add(uint8(16), uint8(1), uint16(15), uint16(0), uint8(2))
	f.Add(uint8(5), uint8(4), uint16(7), uint16(7), uint8(3))
	f.Add(uint8(3), uint8(3), uint16(8), uint16(0), uint8(4))
	f.Add(uint8(12), uint8(7), uint16(80), uint16(3), uint8(4))

	f.Fuzz(func(t *testing.T, wRaw, hRaw uint8, siRaw, diRaw uint16, polRaw uint8) {
		w, h := 1+int(wRaw)%16, 1+int(hRaw)%16
		grid, err := qnet.NewGrid(w, h)
		if err != nil {
			t.Fatalf("NewGrid(%d,%d): %v", w, h, err)
		}
		pols := fuzzPolicies()
		pol := pols[int(polRaw)%len(pols)]
		src := grid.CoordOf(int(siRaw) % grid.Tiles())
		dst := grid.CoordOf(int(diRaw) % grid.Tiles())

		dirs, err := pol.Route(grid, src, dst, nil)
		if err != nil {
			t.Fatalf("%s.Route(%v,%v) on %dx%d: %v", pol.Name(), src, dst, w, h, err)
		}

		// Property 1: the path is contiguous and in-bounds, and ends
		// at dst.
		cur := src
		for i, d := range dirs {
			cur = cur.Step(d)
			if !grid.Contains(cur) {
				t.Fatalf("%s.Route(%v,%v): hop %d (%v) leaves the %dx%d grid at %v",
					pol.Name(), src, dst, i, d, w, h, cur)
			}
		}
		if cur != dst {
			t.Fatalf("%s.Route(%v,%v) ends at %v", pol.Name(), src, dst, cur)
		}

		// Property 2: every policy in the set is minimal on a healthy
		// mesh — hop count equals Manhattan distance.
		manhattan := abs(dst.X-src.X) + abs(dst.Y-src.Y)
		if len(dirs) != manhattan {
			t.Fatalf("%s.Route(%v,%v) takes %d hops, minimal is %d",
				pol.Name(), src, dst, len(dirs), manhattan)
		}

		// Property 3: equal inputs produce identical paths.  This is
		// the Policy contract for every implementation (adaptive ones
		// included — their variation comes only through Loads, which is
		// pinned to nil here), and what the per-run route cache and the
		// byte-identical-rerun guarantee lean on.
		again, err := pol.Route(grid, src, dst, nil)
		if err != nil {
			t.Fatalf("%s.Route repeat errored: %v", pol.Name(), err)
		}
		if !reflect.DeepEqual(dirs, again) {
			t.Fatalf("%s.Route(%v,%v) is nondeterministic:\n first: %v\nsecond: %v",
				pol.Name(), src, dst, dirs, again)
		}
	})
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// FuzzParse asserts the name parser never panics and stays consistent
// with NameOf: any string either parses to a policy whose canonical
// name reparses to the same policy type, or fails with an error.
func FuzzParse(f *testing.F) {
	f.Add("xy")
	f.Add("fault-adaptive")
	f.Add("LEAST-CONGESTED")
	f.Add("")
	f.Add("bogus")
	f.Fuzz(func(t *testing.T, name string) {
		p, err := route.Parse(name)
		if err != nil {
			return
		}
		back, err := route.Parse(route.NameOf(p))
		if err != nil {
			t.Fatalf("canonical name %q of parsed %q does not reparse: %v", route.NameOf(p), name, err)
		}
		if route.NameOf(back) != route.NameOf(p) {
			t.Fatalf("Parse/NameOf not stable: %q -> %q", route.NameOf(p), route.NameOf(back))
		}
	})
}
