// Package classical models the classical control network that accompanies
// the quantum datapath (Sections 3.2 and 6): the per-qubit ID packets
// that travel alongside EPR qubits, the cumulative Pauli-frame correction
// information accumulated over chained teleportations, and the latency
// and bandwidth accounting for classical messages.
//
// Every teleportation produces two classical bits that select one of four
// Pauli corrections; over a chain of teleportations these corrections
// compose in the Pauli group and can be applied in aggregate at the
// endpoint (Figure 5), which is what lets T' nodes forward qubits without
// correction hardware.
package classical

import (
	"fmt"
	"time"

	"repro/internal/mesh"
	"repro/internal/phys"
)

// Pauli is a single-qubit Pauli correction, encoded by the two classical
// bits a teleportation measurement produces.
type Pauli struct {
	// X reports whether a bit-flip correction is pending.
	X bool
	// Z reports whether a phase-flip correction is pending.
	Z bool
}

// PauliI, PauliX, PauliZ and PauliY are the four correction operators.
var (
	PauliI = Pauli{}
	PauliX = Pauli{X: true}
	PauliZ = Pauli{Z: true}
	PauliY = Pauli{X: true, Z: true}
)

// Compose returns the net correction of applying q after p.  Pauli
// composition (up to global phase) is bitwise XOR.
func (p Pauli) Compose(q Pauli) Pauli {
	return Pauli{X: p.X != q.X, Z: p.Z != q.Z}
}

// Identity reports whether no correction is pending.
func (p Pauli) Identity() bool { return !p.X && !p.Z }

// Bits returns the two classical bits (x, z) of the correction.
func (p Pauli) Bits() (byte, byte) {
	var x, z byte
	if p.X {
		x = 1
	}
	if p.Z {
		z = 1
	}
	return x, z
}

// String renders I, X, Z or Y.
func (p Pauli) String() string {
	switch p {
	case PauliI:
		return "I"
	case PauliX:
		return "X"
	case PauliZ:
		return "Z"
	default:
		return "Y"
	}
}

// Frame is a cumulative Pauli correction frame carried in a qubit's ID
// packet.  Each teleportation hop folds its two classical bits into the
// frame; the endpoint C node applies the aggregate.
type Frame struct {
	correction Pauli
	hops       int
}

// Absorb folds one teleportation's correction into the frame.
func (f *Frame) Absorb(p Pauli) {
	f.correction = f.correction.Compose(p)
	f.hops++
}

// Correction returns the pending aggregate correction.
func (f *Frame) Correction() Pauli { return f.correction }

// Hops returns the number of teleportations absorbed.
func (f *Frame) Hops() int { return f.hops }

// CorrectionOps returns the number of single-qubit gates the endpoint
// corrector must apply: 0 for I, 1 for X or Z, 2 for Y.
func (f *Frame) CorrectionOps() int {
	n := 0
	if f.correction.X {
		n++
	}
	if f.correction.Z {
		n++
	}
	return n
}

// PacketID uniquely names an EPR pair qubit within the machine: the
// generating G node assigns it.
type PacketID struct {
	// Gen is the generating G node's link.
	Gen mesh.Link
	// Seq is the generator's sequence number for the pair.
	Seq uint64
}

// Packet is the classical message that travels alongside an EPR qubit in
// the parallel classical network (Section 3.2): identity, where this
// qubit is headed, where its entangled partner is headed (needed for the
// endpoint purification pairing), and the cumulative correction frame.
type Packet struct {
	ID          PacketID
	Dest        mesh.Coord
	PartnerDest mesh.Coord
	Frame       Frame
}

// String renders a compact packet description.
func (p Packet) String() string {
	return fmt.Sprintf("pair %v#%d -> %v (partner %v, frame %v after %d hops)",
		p.ID.Gen.From, p.ID.Seq, p.Dest, p.PartnerDest, p.Frame.Correction(), p.Frame.Hops())
}

// Network models the classical control network's latency and aggregate
// bandwidth demand.  The paper requires "adequate bandwidth for one
// in-flight message for each physical qubit in the system as well as the
// classical bits for each teleportation and purification operation".
type Network struct {
	params   phys.Params
	hopCells int

	messages     uint64
	bits         uint64
	teleportMsgs uint64
	purifyMsgs   uint64
}

// NewNetwork builds a classical network model with the given hop span in
// cells (the physical distance between adjacent T' nodes).
func NewNetwork(p phys.Params, hopCells int) (*Network, error) {
	if hopCells < 1 {
		return nil, fmt.Errorf("classical: hopCells must be >= 1, got %d", hopCells)
	}
	return &Network{params: p, hopCells: hopCells}, nil
}

// Latency returns the classical transmission time across the given
// number of mesh hops.
func (n *Network) Latency(hops int) time.Duration {
	if hops < 0 {
		hops = 0
	}
	return time.Duration(hops*n.hopCells) * n.params.Times.ClassicalBitPerCell
}

// RecordTeleport accounts for the two classical bits plus ID packet
// update a teleportation sends between adjacent nodes.
func (n *Network) RecordTeleport() {
	n.messages++
	n.teleportMsgs++
	n.bits += 2
}

// RecordPurify accounts for the one classical bit each endpoint exchanges
// per purification (two bits total on the network).
func (n *Network) RecordPurify() {
	n.messages++
	n.purifyMsgs++
	n.bits += 2
}

// Stats returns cumulative counters: total messages, total payload bits,
// and the per-operation breakdown.
func (n *Network) Stats() (messages, bits, teleports, purifies uint64) {
	return n.messages, n.bits, n.teleportMsgs, n.purifyMsgs
}
