// Package route exposes the pluggable routing layer of the mesh
// interconnect: a Policy decides the hop path every quantum channel
// takes across the grid, and plugs into the simulator
// (simulate.WithRouting, simulate.Space.Routings), the analytic channel
// planner (channel.Spec.Route) and the command-line tools
// (qnetsim -route, sweep -routes).
//
// The paper's Section 5 simulator hardwires dimension-order (X then Y)
// routing; that policy remains the default everywhere, and a machine
// built without an explicit policy behaves — byte for byte — like the
// pre-routing-layer simulator.  Four policies ship:
//
//		p, err := route.Parse("zigzag")
//		m, err := simulate.New(grid, simulate.HomeBase, simulate.WithRouting(p))
//
//	  - XYOrder ("xy"): all X hops then all Y hops, at most one turn.
//	  - YXOrder ("yx"): the mirrored dimension order.
//	  - ZigZag ("zigzag"): staircase interleaving, spreading the ballistic
//	    turn penalty across the path's routers.
//	  - LeastCongested ("least-congested"): minimal adaptive routing by
//	    live teleporter-set and storage load.
//
// All shipped policies are minimal (hop count = Manhattan distance);
// they differ only in where they turn and which links they load.
//
// A fifth policy, FaultAdaptive ("fault-adaptive"), routes around dead
// links on meshes with an attached fault model (qnet/fault,
// simulate.WithFaults) using an escape-channel (up*/down*) extension
// of the negative-first turn model, staying deadlock-free for any
// fault pattern.  It is not part of Policies() — the healthy-mesh
// comparison set — but Parse recognizes its name.
package route

import (
	"repro/internal/mesh"
	"repro/internal/route"
)

// Policy decides the hop path of one channel.  Implementations must be
// deterministic for equal inputs and safe for concurrent use; Name
// identifies the policy in cache keys, so two policies with equal
// names must route identically.
type Policy = route.Policy

// Loads exposes live mesh congestion to adaptive policies; the
// simulator implements it over its router nodes.  Pass nil for a
// zero-load (static) decision.
type Loads = route.Loads

// Deterministic is the optional capability interface a Policy
// implements to declare that its routes depend only on (grid, src,
// dst), never on the live Loads.  The simulator memoizes such
// policies' paths in a per-run route cache; adaptive policies (which
// omit the method, or return false) transparently bypass it.
type Deterministic = route.Deterministic

// Direction is an axis-aligned unit movement on the mesh.
type Direction = mesh.Direction

// Coord is a tile coordinate on the mesh.
type Coord = mesh.Coord

// DefaultName is the canonical name of the default policy ("xy").
const DefaultName = route.DefaultName

// XYOrder returns the paper's dimension-order routing policy: all X
// hops first, then all Y hops.  It is the default everywhere a Policy
// is accepted.
func XYOrder() Policy { return route.XYOrder() }

// YXOrder returns the mirrored dimension-order policy: all Y hops
// first, then all X hops.
func YXOrder() Policy { return route.YXOrder() }

// ZigZag returns the staircase policy: X and Y moves alternate
// wherever the negative-first turn model allows, spreading the
// ballistic turn penalty across the path instead of concentrating it
// at one corner.
func ZigZag() Policy { return route.ZigZag() }

// LeastCongested returns the minimal adaptive policy: at every tile
// with a legal choice it takes the productive direction whose
// teleporter set and downstream storage report the least live load,
// continuing straight on ties.  Its adaptivity is restricted to the
// negative-first turn model, which keeps it deadlock-free under the
// router's blocking storage credits.
func LeastCongested() Policy { return route.LeastCongested() }

// Faults exposes a run's materialized fault pattern to routing: link
// death and the escape ranks (BFS levels from tile 0 over live links).
// *fault.Model (qnet/fault) implements it; nil means a healthy mesh.
type Faults = route.Faults

// FaultAware is the optional capability interface a Policy implements
// to accept a fault pattern: RouteFaulty routes on the live topology,
// avoiding dead links.  The simulator calls it instead of Route
// whenever the run has a fault model and the policy declares the
// capability.
type FaultAware = route.FaultAware

// FaultAdaptive returns the escape-channel policy: the shortest
// up*/down*-legal path over the live topology, deadlock-free for any
// fault pattern, degenerating to a negative-first minimal policy on a
// healthy mesh.  It is the policy of choice for simulations with dead
// links (every other shipped policy fails a blocked path with a
// structured error).
func FaultAdaptive() Policy { return route.FaultAdaptive() }

// ByDistance returns a per-channel composite policy: communications
// whose Manhattan distance is below threshold route with the short
// policy, all others with the long policy.  Its canonical name encodes
// the composition ("bydist(xy,zigzag,5)"), round-trips through Parse
// and distinguishes cache keys per (short, long, threshold); the
// composite is deterministic (route-cacheable) exactly when both inner
// policies are.  threshold must be >= 1.
func ByDistance(short, long Policy, threshold int) (Policy, error) {
	return route.ByDistance(short, long, threshold)
}

// Default returns the default policy, XYOrder.
func Default() Policy { return route.Default() }

// NameOf returns the policy's canonical name, mapping nil to
// DefaultName (a machine without an explicit policy routes exactly
// like XYOrder).
func NameOf(p Policy) string { return route.NameOf(p) }

// IsDeterministic reports whether p declares load-independence through
// the Deterministic capability interface.  Policies without the method
// are conservatively treated as adaptive (not cacheable).
func IsDeterministic(p Policy) bool { return route.IsDeterministic(p) }

// Turns counts the direction changes along a path — the number of
// ballistic X/Y set switches its batches pay inside router nodes.
func Turns(dirs []Direction) int { return route.Turns(dirs) }

// Policies returns one instance of every shipped policy in canonical
// order: xy, yx, zigzag, least-congested.
func Policies() []Policy { return route.Policies() }

// Names returns the canonical CLI names of the shipped policies.
func Names() []string { return route.Names() }

// Parse resolves a policy by its canonical name (case-insensitive);
// the empty string resolves to the default policy.
func Parse(name string) (Policy, error) { return route.Parse(name) }

// ParseList resolves a comma-separated list of policy names; the empty
// string resolves to all shipped policies.
func ParseList(csv string) ([]Policy, error) { return route.ParseList(csv) }
