package mesh

import "fmt"

// Placement maps logical qubits to home tiles on the grid.
type Placement struct {
	grid  Grid
	homes []Coord
}

// RowMajorPlacement assigns logical qubit i to tile i in row-major
// order — the basic layout on the left of the paper's Figure 15 and the
// natural reading of Figure 13.
func RowMajorPlacement(g Grid, qubits int) (*Placement, error) {
	if qubits < 1 || qubits > g.Tiles() {
		return nil, fmt.Errorf("mesh: %d qubits do not fit a %dx%d grid", qubits, g.Width, g.Height)
	}
	homes := make([]Coord, qubits)
	for i := range homes {
		homes[i] = g.CoordOf(i)
	}
	return &Placement{grid: g, homes: homes}, nil
}

// SnakePlacement assigns logical qubits along a boustrophedon path
// (left-to-right, then right-to-left on the next row).  This is the
// Mobile Qubit Layout of Figure 15: consecutive logical qubits are
// physically adjacent, so the QFT's walk from qubit to qubit is a
// sequence of single-hop moves.
func SnakePlacement(g Grid, qubits int) (*Placement, error) {
	if qubits < 1 || qubits > g.Tiles() {
		return nil, fmt.Errorf("mesh: %d qubits do not fit a %dx%d grid", qubits, g.Width, g.Height)
	}
	homes := make([]Coord, qubits)
	for i := range homes {
		y := i / g.Width
		x := i % g.Width
		if y%2 == 1 {
			x = g.Width - 1 - x
		}
		homes[i] = Coord{X: x, Y: y}
	}
	return &Placement{grid: g, homes: homes}, nil
}

// Grid returns the underlying grid.
func (p *Placement) Grid() Grid { return p.grid }

// Qubits returns the number of placed logical qubits.
func (p *Placement) Qubits() int { return len(p.homes) }

// Home returns logical qubit q's home tile.
func (p *Placement) Home(q int) Coord {
	if q < 0 || q >= len(p.homes) {
		panic(fmt.Sprintf("mesh: logical qubit %d out of range [0,%d)", q, len(p.homes)))
	}
	return p.homes[q]
}

// MaxPairDistance returns the largest Manhattan distance between the
// homes of any two logical qubits — the longest communication path.
func (p *Placement) MaxPairDistance() int {
	// The extremes lie on the bounding box of the homes.
	minX, minY := p.homes[0].X, p.homes[0].Y
	maxX, maxY := minX, minY
	for _, h := range p.homes {
		if h.X < minX {
			minX = h.X
		}
		if h.X > maxX {
			maxX = h.X
		}
		if h.Y < minY {
			minY = h.Y
		}
		if h.Y > maxY {
			maxY = h.Y
		}
	}
	return maxX - minX + maxY - minY
}

// MeanPairDistance returns the average Manhattan distance over all
// unordered pairs of logical qubit homes.
func (p *Placement) MeanPairDistance() float64 {
	n := len(p.homes)
	if n < 2 {
		return 0
	}
	var total int64
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			total += int64(Manhattan(p.homes[i], p.homes[j]))
		}
	}
	pairs := int64(n) * int64(n-1) / 2
	return float64(total) / float64(pairs)
}
