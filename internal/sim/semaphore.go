package sim

import "fmt"

// Semaphore is a counting semaphore with a FIFO waiter queue, used for
// credit-based flow control (e.g. the per-link incoming storage cells of
// a T' node).  Unlike Resource it has no notion of service time: callers
// take and return credits explicitly.
type Semaphore struct {
	name    string
	nameFn  func() string
	credits int
	limit   int
	waiting []func()
	maxWait int
}

// NewSemaphore creates a semaphore holding limit credits.
func NewSemaphore(name string, limit int) (*Semaphore, error) {
	if limit < 1 {
		return nil, fmt.Errorf("sim: semaphore %q limit must be >= 1, got %d", name, limit)
	}
	return &Semaphore{name: name, credits: limit, limit: limit}, nil
}

// NewLazySemaphore is NewSemaphore with deferred naming: name is called
// at most once, the first time the semaphore's name is actually needed.
// Builders that create one semaphore per mesh link use it to keep name
// formatting off the build path.
func NewLazySemaphore(name func() string, limit int) (*Semaphore, error) {
	if name == nil {
		return nil, fmt.Errorf("sim: lazy semaphore needs a name function")
	}
	if limit < 1 {
		return nil, fmt.Errorf("sim: semaphore limit must be >= 1, got %d", limit)
	}
	return &Semaphore{nameFn: name, credits: limit, limit: limit}, nil
}

// Name returns the semaphore's name, resolving a lazy name on first use.
func (s *Semaphore) Name() string {
	if s.name == "" && s.nameFn != nil {
		s.name = s.nameFn()
		s.nameFn = nil
	}
	return s.name
}

// Limit returns the total credit count.
func (s *Semaphore) Limit() int { return s.limit }

// Available returns the number of free credits.
func (s *Semaphore) Available() int { return s.credits }

// Waiting returns the number of queued acquirers.
func (s *Semaphore) Waiting() int { return len(s.waiting) }

// MaxWaiting returns the largest observed waiter queue.
func (s *Semaphore) MaxWaiting() int { return s.maxWait }

// Acquire takes one credit, running fn immediately if a credit is free,
// otherwise queueing fn until Release provides one.
func (s *Semaphore) Acquire(fn func()) {
	if fn == nil {
		panic(fmt.Sprintf("sim: semaphore %q: nil acquire function", s.Name()))
	}
	if s.credits > 0 {
		s.credits--
		fn()
		return
	}
	s.waiting = append(s.waiting, fn)
	if len(s.waiting) > s.maxWait {
		s.maxWait = len(s.waiting)
	}
}

// TryAcquire takes a credit without queueing; it reports success.
func (s *Semaphore) TryAcquire() bool {
	if s.credits > 0 {
		s.credits--
		return true
	}
	return false
}

// Release returns one credit, handing it to the oldest waiter if any.
func (s *Semaphore) Release() {
	if len(s.waiting) > 0 {
		fn := s.waiting[0]
		copy(s.waiting, s.waiting[1:])
		s.waiting[len(s.waiting)-1] = nil
		s.waiting = s.waiting[:len(s.waiting)-1]
		fn()
		return
	}
	if s.credits >= s.limit {
		panic(fmt.Sprintf("sim: semaphore %q released above its limit %d", s.Name(), s.limit))
	}
	s.credits++
}
