package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestEngineRunsEventsInTimeOrder(t *testing.T) {
	e := New()
	var order []int
	e.Schedule(30*time.Microsecond, func() { order = append(order, 3) })
	e.Schedule(10*time.Microsecond, func() { order = append(order, 1) })
	e.Schedule(20*time.Microsecond, func() { order = append(order, 2) })
	if n := e.Run(0); n != 3 {
		t.Fatalf("ran %d events, want 3", n)
	}
	for i, v := range order {
		if v != i+1 {
			t.Fatalf("execution order %v, want [1 2 3]", order)
		}
	}
	if e.Now() != 30*time.Microsecond {
		t.Errorf("clock = %v, want 30µs", e.Now())
	}
}

func TestEngineFIFOForSimultaneousEvents(t *testing.T) {
	e := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5*time.Microsecond, func() { order = append(order, i) })
	}
	e.Run(0)
	if !sort.IntsAreSorted(order) {
		t.Errorf("simultaneous events ran out of scheduling order: %v", order)
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := New()
	var hits []time.Duration
	e.Schedule(time.Microsecond, func() {
		hits = append(hits, e.Now())
		e.Schedule(2*time.Microsecond, func() {
			hits = append(hits, e.Now())
		})
	})
	e.Run(0)
	if len(hits) != 2 || hits[0] != time.Microsecond || hits[1] != 3*time.Microsecond {
		t.Errorf("nested event times %v, want [1µs 3µs]", hits)
	}
}

func TestEngineNegativeDelayClampsToNow(t *testing.T) {
	e := New()
	ran := false
	e.Schedule(time.Millisecond, func() {
		e.Schedule(-time.Second, func() { ran = true })
	})
	e.Run(0)
	if !ran {
		t.Error("negative-delay event never ran")
	}
	if e.Now() != time.Millisecond {
		t.Errorf("clock = %v, want 1ms", e.Now())
	}
}

func TestEnginePanicsOnPastEvent(t *testing.T) {
	e := New()
	e.Schedule(time.Millisecond, func() {
		defer func() {
			if recover() == nil {
				t.Error("At() in the past should panic")
			}
		}()
		e.At(0, func() {})
	})
	e.Run(0)
}

func TestEnginePanicsOnNilFunc(t *testing.T) {
	e := New()
	defer func() {
		if recover() == nil {
			t.Error("nil event function should panic")
		}
	}()
	e.Schedule(0, nil)
}

func TestEngineCancel(t *testing.T) {
	e := New()
	ran := false
	id := e.Schedule(time.Microsecond, func() { ran = true })
	if !e.Cancel(id) {
		t.Error("cancel of pending event should succeed")
	}
	if e.Cancel(id) {
		t.Error("double cancel should fail")
	}
	e.Run(0)
	if ran {
		t.Error("cancelled event ran")
	}
}

func TestEngineRunBudget(t *testing.T) {
	e := New()
	count := 0
	for i := 0; i < 10; i++ {
		e.Schedule(time.Duration(i)*time.Microsecond, func() { count++ })
	}
	if n := e.Run(4); n != 4 || count != 4 {
		t.Errorf("budgeted run executed n=%d count=%d, want 4", n, count)
	}
	if e.Pending() != 6 {
		t.Errorf("pending = %d, want 6", e.Pending())
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := New()
	var hits int
	e.Schedule(time.Microsecond, func() { hits++ })
	e.Schedule(2*time.Microsecond, func() { hits++ })
	e.Schedule(5*time.Microsecond, func() { hits++ })
	e.RunUntil(3 * time.Microsecond)
	if hits != 2 {
		t.Errorf("hits = %d, want 2", hits)
	}
	if e.Now() != 3*time.Microsecond {
		t.Errorf("clock = %v, want 3µs", e.Now())
	}
	e.Run(0)
	if hits != 3 {
		t.Errorf("final hits = %d, want 3", hits)
	}
}

func TestEngineProcessedCount(t *testing.T) {
	e := New()
	for i := 0; i < 7; i++ {
		e.Schedule(0, func() {})
	}
	e.Run(0)
	if e.Processed() != 7 {
		t.Errorf("processed = %d, want 7", e.Processed())
	}
}

// Property: regardless of insertion order, events run sorted by time.
func TestEngineOrderProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		e := New()
		var ran []time.Duration
		for _, d := range delays {
			e.Schedule(time.Duration(d)*time.Nanosecond, func() {
				ran = append(ran, e.Now())
			})
		}
		e.Run(0)
		if len(ran) != len(delays) {
			return false
		}
		for i := 1; i < len(ran); i++ {
			if ran[i] < ran[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestResourceValidation(t *testing.T) {
	e := New()
	if _, err := NewResource(nil, "x", 1); err == nil {
		t.Error("nil engine should be rejected")
	}
	if _, err := NewResource(e, "x", 0); err == nil {
		t.Error("zero capacity should be rejected")
	}
}

func TestResourceServesUpToCapacity(t *testing.T) {
	e := New()
	r, err := NewResource(e, "teleporters", 2)
	if err != nil {
		t.Fatal(err)
	}
	var done []time.Duration
	for i := 0; i < 4; i++ {
		r.Serve(10*time.Microsecond, func() { done = append(done, e.Now()) })
	}
	e.Run(0)
	want := []time.Duration{10 * time.Microsecond, 10 * time.Microsecond, 20 * time.Microsecond, 20 * time.Microsecond}
	if len(done) != len(want) {
		t.Fatalf("completed %d jobs, want %d", len(done), len(want))
	}
	for i := range want {
		if done[i] != want[i] {
			t.Errorf("job %d finished at %v, want %v", i, done[i], want[i])
		}
	}
}

func TestResourceFIFO(t *testing.T) {
	e := New()
	r, _ := NewResource(e, "gen", 1)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		r.Serve(time.Microsecond, func() { order = append(order, i) })
	}
	e.Run(0)
	if !sort.IntsAreSorted(order) {
		t.Errorf("jobs completed out of FIFO order: %v", order)
	}
}

func TestResourceReleasePanicsWhenIdle(t *testing.T) {
	e := New()
	r, _ := NewResource(e, "x", 1)
	defer func() {
		if recover() == nil {
			t.Error("Release without Acquire should panic")
		}
	}()
	r.Release()
}

func TestResourceStatsAndUtilization(t *testing.T) {
	e := New()
	r, _ := NewResource(e, "x", 2)
	for i := 0; i < 4; i++ {
		r.Serve(10*time.Microsecond, nil)
	}
	e.Run(0)
	acquired, maxQ, busy := r.Stats()
	if acquired != 4 {
		t.Errorf("acquired = %d, want 4", acquired)
	}
	if maxQ != 2 {
		t.Errorf("max queue = %d, want 2", maxQ)
	}
	if want := 40 * time.Microsecond; busy != want {
		t.Errorf("busy time = %v, want %v", busy, want)
	}
	// 2 units × 20µs elapsed = 40µs of unit-time, all busy.
	if u := r.Utilization(); u < 0.99 || u > 1.01 {
		t.Errorf("utilization = %g, want ~1", u)
	}
}

func TestResourceUtilizationZeroTime(t *testing.T) {
	e := New()
	r, _ := NewResource(e, "x", 1)
	if u := r.Utilization(); u != 0 {
		t.Errorf("utilization with no elapsed time = %g, want 0", u)
	}
}

// Property: with capacity c and n identical jobs of duration d, the last
// completion happens at ceil(n/c)*d.
func TestResourceThroughputProperty(t *testing.T) {
	f := func(cRaw, nRaw uint8) bool {
		c := int(cRaw)%8 + 1
		n := int(nRaw)%50 + 1
		e := New()
		r, err := NewResource(e, "x", c)
		if err != nil {
			return false
		}
		var last time.Duration
		for i := 0; i < n; i++ {
			r.Serve(time.Microsecond, func() { last = e.Now() })
		}
		e.Run(0)
		batches := (n + c - 1) / c
		return last == time.Duration(batches)*time.Microsecond
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTally(t *testing.T) {
	var ta Tally
	if ta.Mean() != 0 || ta.Count() != 0 {
		t.Error("empty tally should be zero")
	}
	for _, x := range []float64{3, 1, 4, 1, 5} {
		ta.Add(x)
	}
	if ta.Count() != 5 || ta.Sum() != 14 {
		t.Errorf("count=%d sum=%g", ta.Count(), ta.Sum())
	}
	if ta.Min() != 1 || ta.Max() != 5 {
		t.Errorf("min=%g max=%g", ta.Min(), ta.Max())
	}
	if m := ta.Mean(); m != 2.8 {
		t.Errorf("mean=%g, want 2.8", m)
	}
}

func TestTallyRandomizedAgainstDirectComputation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var ta Tally
	var xs []float64
	for i := 0; i < 1000; i++ {
		x := rng.NormFloat64()
		xs = append(xs, x)
		ta.Add(x)
	}
	sum, min, max := 0.0, xs[0], xs[0]
	for _, x := range xs {
		sum += x
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	if ta.Sum() != sum || ta.Min() != min || ta.Max() != max {
		t.Error("tally disagrees with direct computation")
	}
}
