// Package ecc models the error-correction sizing assumptions of the
// paper: logical qubits are encoded with a concatenated Steane [[7,1,3]]
// code, so a level-L logical qubit comprises 7^L physical qubits.  The
// paper transports level-2 logical qubits (49 physical qubits) and cites
// the local fault-tolerance threshold of Svore et al. (2005): data
// fidelity must stay above 1 - 7.5e-5.
package ecc

import "fmt"

// SteaneBlock is the number of physical qubits in one Steane [[7,1,3]]
// code block.
const SteaneBlock = 7

// ThresholdError is the maximum tolerable per-operation error on data
// qubits under the threshold theorem, as used throughout the paper.
const ThresholdError = 7.5e-5

// Code describes a concatenated quantum error-correcting code.
type Code struct {
	// Name identifies the base code.
	Name string
	// BlockSize is the number of physical qubits per logical qubit at
	// one level of encoding.
	BlockSize int
	// Level is the concatenation depth (level 0 = bare physical qubit).
	Level int
}

// Steane returns the concatenated Steane code at the given level.
// Level 2 — the paper's choice — encodes one logical qubit in 49
// physical qubits.
func Steane(level int) (Code, error) {
	if level < 0 {
		return Code{}, fmt.Errorf("ecc: concatenation level must be >= 0, got %d", level)
	}
	if level > 10 {
		return Code{}, fmt.Errorf("ecc: concatenation level %d is unphysically deep", level)
	}
	return Code{Name: "Steane[[7,1,3]]", BlockSize: SteaneBlock, Level: level}, nil
}

// PhysicalQubits returns the number of physical qubits that encode one
// logical qubit: BlockSize^Level.
func (c Code) PhysicalQubits() int {
	n := 1
	for i := 0; i < c.Level; i++ {
		n *= c.BlockSize
	}
	return n
}

// PairsPerLogicalTeleport returns the number of high-fidelity EPR pairs a
// single logical-qubit teleportation consumes: one pair per physical
// qubit.
func (c Code) PairsPerLogicalTeleport() int { return c.PhysicalQubits() }

// RawPairsPerLogicalTeleport returns the number of endpoint-delivered EPR
// pairs per logical teleportation when each high-fidelity pair is
// distilled from a purification tree of the given depth: 2^depth pairs
// per physical qubit.  With the paper's level-2 code and depth-3 queue
// purifiers this is 2^3 × 49 = 392, the expected pair count for the
// longest communication path in Section 5.3.
func (c Code) RawPairsPerLogicalTeleport(purifyDepth int) int {
	if purifyDepth < 0 {
		purifyDepth = 0
	}
	return (1 << uint(purifyDepth)) * c.PhysicalQubits()
}

// String renders the code.
func (c Code) String() string {
	return fmt.Sprintf("%s level %d (%d physical qubits/logical)", c.Name, c.Level, c.PhysicalQubits())
}
