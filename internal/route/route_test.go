package route

import (
	"fmt"
	"testing"

	"repro/internal/mesh"
)

// grid returns an 8x8 test mesh.
func grid(t *testing.T) mesh.Grid {
	t.Helper()
	g, err := mesh.NewGrid(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// endpoints covers all four quadrants, straight lines and the
// degenerate same-tile path.
var endpoints = []struct{ src, dst mesh.Coord }{
	{mesh.Coord{X: 0, Y: 0}, mesh.Coord{X: 5, Y: 3}}, // E+S
	{mesh.Coord{X: 5, Y: 3}, mesh.Coord{X: 0, Y: 0}}, // W+N
	{mesh.Coord{X: 0, Y: 5}, mesh.Coord{X: 6, Y: 1}}, // E+N (mixed signs)
	{mesh.Coord{X: 6, Y: 1}, mesh.Coord{X: 0, Y: 5}}, // W+S (mixed signs)
	{mesh.Coord{X: 2, Y: 4}, mesh.Coord{X: 7, Y: 4}}, // straight E
	{mesh.Coord{X: 3, Y: 7}, mesh.Coord{X: 3, Y: 2}}, // straight N
	{mesh.Coord{X: 4, Y: 4}, mesh.Coord{X: 4, Y: 4}}, // same tile
}

// TestPoliciesAreMinimal asserts every shipped policy produces a path
// of exactly Manhattan length that ends at the destination and stays
// on the grid.
func TestPoliciesAreMinimal(t *testing.T) {
	g := grid(t)
	for _, p := range Policies() {
		for _, ep := range endpoints {
			dirs, err := p.Route(g, ep.src, ep.dst, nil)
			if err != nil {
				t.Fatalf("%s %v->%v: %v", p.Name(), ep.src, ep.dst, err)
			}
			if len(dirs) != mesh.Manhattan(ep.src, ep.dst) {
				t.Errorf("%s %v->%v: %d hops, want %d (minimal)",
					p.Name(), ep.src, ep.dst, len(dirs), mesh.Manhattan(ep.src, ep.dst))
			}
			tiles, err := g.Follow(ep.src, dirs)
			if err != nil {
				t.Fatalf("%s %v->%v: path leaves grid: %v", p.Name(), ep.src, ep.dst, err)
			}
			if tiles[len(tiles)-1] != ep.dst {
				t.Errorf("%s %v->%v: path ends at %v", p.Name(), ep.src, ep.dst, tiles[len(tiles)-1])
			}
		}
	}
}

// TestPoliciesObeyDeadlockFreeTurnModels asserts the structural
// property each policy's deadlock-freedom proof rests on: dimension
// order turns at most once, and zigzag and least-congested never take
// a positive-to-negative turn (the negative-first turn model).
func TestPoliciesObeyDeadlockFreeTurnModels(t *testing.T) {
	g := grid(t)
	for _, ep := range endpoints {
		for _, p := range []Policy{XYOrder(), YXOrder()} {
			dirs, err := p.Route(g, ep.src, ep.dst, nil)
			if err != nil {
				t.Fatal(err)
			}
			if turns := Turns(dirs); turns > 1 {
				t.Errorf("%s %v->%v: %d turns, dimension order allows at most 1", p.Name(), ep.src, ep.dst, turns)
			}
		}
		for _, p := range []Policy{ZigZag(), LeastCongested()} {
			dirs, err := p.Route(g, ep.src, ep.dst, nil)
			if err != nil {
				t.Fatal(err)
			}
			for i := 1; i < len(dirs); i++ {
				if !negative(dirs[i-1]) && negative(dirs[i]) {
					t.Errorf("%s %v->%v: forbidden positive-to-negative turn %v->%v at hop %d",
						p.Name(), ep.src, ep.dst, dirs[i-1], dirs[i], i)
				}
			}
		}
	}
}

// TestXYOrderMatchesMeshRoute pins the default policy to the
// dimension-order reference path, the parity anchor of the routing
// refactor.
func TestXYOrderMatchesMeshRoute(t *testing.T) {
	g := grid(t)
	for _, ep := range endpoints {
		want, err := g.Route(ep.src, ep.dst)
		if err != nil {
			t.Fatal(err)
		}
		got, err := XYOrder().Route(g, ep.src, ep.dst, nil)
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Errorf("XYOrder %v->%v: %v, want mesh reference %v", ep.src, ep.dst, got, want)
		}
	}
}

// TestZigZagSpreadsTurns asserts the staircase actually staircases on
// a same-sign diagonal: a kxk diagonal must turn at every interior
// hop, far above dimension order's single turn.
func TestZigZagSpreadsTurns(t *testing.T) {
	g := grid(t)
	dirs, err := ZigZag().Route(g, mesh.Coord{X: 0, Y: 0}, mesh.Coord{X: 5, Y: 5}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if turns := Turns(dirs); turns != len(dirs)-1 {
		t.Errorf("zigzag diagonal turned %d times over %d hops, want %d (every interior hop)",
			turns, len(dirs), len(dirs)-1)
	}
	// Mixed-sign quadrants degenerate to dimension order: the negative
	// dimension must complete first.
	dirs, err = ZigZag().Route(g, mesh.Coord{X: 0, Y: 5}, mesh.Coord{X: 4, Y: 0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range dirs {
		if i < 5 && d != mesh.North {
			t.Fatalf("mixed-sign zigzag path %v: negative phase not first", dirs)
		}
	}
}

// fakeLoads steers the adaptive policy: one axis reports heavy
// pressure everywhere.
type fakeLoads struct{ heavyAxis int }

func (f fakeLoads) AxisLoad(_ mesh.Coord, axis int) float64 {
	if axis == f.heavyAxis {
		return 10
	}
	return 0
}

func (f fakeLoads) StorageLoad(mesh.Coord, mesh.Direction) float64 { return 0 }

// TestLeastCongestedFollowsLoads asserts the adaptive policy avoids
// the loaded axis while it can: with the X axis saturated it must
// spend its Y hops first (and vice versa), and with nil loads it
// behaves deterministically.
func TestLeastCongestedFollowsLoads(t *testing.T) {
	g := grid(t)
	src, dst := mesh.Coord{X: 0, Y: 0}, mesh.Coord{X: 4, Y: 3}
	dirs, err := LeastCongested().Route(g, src, dst, fakeLoads{heavyAxis: 0})
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range dirs {
		if i < 3 && d.Axis() != 1 {
			t.Fatalf("with X saturated, path %v did not spend Y hops first", dirs)
		}
	}
	dirs, err = LeastCongested().Route(g, src, dst, fakeLoads{heavyAxis: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range dirs {
		if i < 4 && d.Axis() != 0 {
			t.Fatalf("with Y saturated, path %v did not spend X hops first", dirs)
		}
	}
	a, err := LeastCongested().Route(g, src, dst, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := LeastCongested().Route(g, src, dst, nil)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Errorf("nil-loads routing not deterministic: %v vs %v", a, b)
	}
}

// TestTurns covers the turn counter.
func TestTurns(t *testing.T) {
	cases := []struct {
		dirs []mesh.Direction
		want int
	}{
		{nil, 0},
		{[]mesh.Direction{mesh.East, mesh.East}, 0},
		{[]mesh.Direction{mesh.East, mesh.South}, 1},
		{[]mesh.Direction{mesh.East, mesh.South, mesh.East, mesh.South}, 3},
		{[]mesh.Direction{mesh.North, mesh.North, mesh.West}, 1},
	}
	for _, tc := range cases {
		if got := Turns(tc.dirs); got != tc.want {
			t.Errorf("Turns(%v) = %d, want %d", tc.dirs, got, tc.want)
		}
	}
}

// TestParse covers name resolution, defaults and error cases.
func TestParse(t *testing.T) {
	for _, name := range Names() {
		p, err := Parse(name)
		if err != nil {
			t.Fatalf("Parse(%q): %v", name, err)
		}
		if p.Name() != name {
			t.Errorf("Parse(%q).Name() = %q", name, p.Name())
		}
	}
	if p, err := Parse(" ZigZag "); err != nil || p.Name() != "zigzag" {
		t.Errorf("case/space-insensitive parse failed: %v, %v", p, err)
	}
	if p, err := Parse(""); err != nil || p.Name() != DefaultName {
		t.Errorf("empty name should resolve to the default policy, got %v, %v", p, err)
	}
	if _, err := Parse("wormhole"); err == nil {
		t.Error("unknown policy name accepted")
	}
	ps, err := ParseList("xy,least-congested")
	if err != nil || len(ps) != 2 || ps[1].Name() != "least-congested" {
		t.Errorf("ParseList failed: %v, %v", ps, err)
	}
	if ps, err := ParseList(""); err != nil || len(ps) != len(Policies()) {
		t.Errorf("empty list should resolve to all policies, got %v, %v", ps, err)
	}
	if _, err := ParseList("xy,nope"); err == nil {
		t.Error("bad list entry accepted")
	}
}

// TestNameOf pins the nil canonicalization cache keys rely on.
func TestNameOf(t *testing.T) {
	if NameOf(nil) != DefaultName {
		t.Errorf("NameOf(nil) = %q, want %q", NameOf(nil), DefaultName)
	}
	if NameOf(YXOrder()) != "yx" {
		t.Errorf("NameOf(YXOrder()) = %q", NameOf(YXOrder()))
	}
}

// TestRouteValidatesEndpoints asserts off-grid endpoints error for
// every policy rather than producing a path.
func TestRouteValidatesEndpoints(t *testing.T) {
	g := grid(t)
	bad := mesh.Coord{X: 9, Y: 0}
	for _, p := range Policies() {
		if _, err := p.Route(g, bad, mesh.Coord{X: 0, Y: 0}, nil); err == nil {
			t.Errorf("%s accepted an off-grid source", p.Name())
		}
		if _, err := p.Route(g, mesh.Coord{X: 0, Y: 0}, bad, nil); err == nil {
			t.Errorf("%s accepted an off-grid destination", p.Name())
		}
	}
}

// TestDeterministicCapability pins which shipped policies declare
// load-independence: the static orders are cacheable, the adaptive
// least-congested policy is not.  Getting this wrong either disables
// the simulator's route cache (slow) or caches an adaptive policy's
// first answer (wrong results), so it is pinned explicitly.
func TestDeterministicCapability(t *testing.T) {
	for _, tc := range []struct {
		p    Policy
		want bool
	}{
		{XYOrder(), true},
		{YXOrder(), true},
		{ZigZag(), true},
		{LeastCongested(), false},
	} {
		if got := IsDeterministic(tc.p); got != tc.want {
			t.Errorf("IsDeterministic(%s) = %v, want %v", tc.p.Name(), got, tc.want)
		}
	}
	if IsDeterministic(nil) {
		t.Error("IsDeterministic(nil) should be false")
	}
}
