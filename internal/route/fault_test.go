package route

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/fault"
	"repro/internal/mesh"
)

// stubFaults is a hand-built fault pattern: an explicit dead-link set
// plus ranks recomputed by the same BFS-from-tile-0 definition the
// real model uses, so tests can place holes exactly where they want
// them instead of fishing for a seed.
type stubFaults struct {
	g    mesh.Grid
	dead map[mesh.Link]bool
	rank []int
}

func newStubFaults(g mesh.Grid, dead ...mesh.Link) *stubFaults {
	s := &stubFaults{g: g, dead: make(map[mesh.Link]bool), rank: make([]int, g.Tiles())}
	for _, l := range dead {
		s.dead[l] = true
	}
	for i := range s.rank {
		s.rank[i] = -1
	}
	queue := []mesh.Coord{g.CoordOf(0)}
	s.rank[0] = 0
	for len(queue) > 0 {
		c := queue[0]
		queue = queue[1:]
		for d := mesh.East; d <= mesh.South; d++ {
			if s.Dead(c, d) {
				continue
			}
			n := c.Step(d)
			if s.rank[g.Index(n)] == -1 {
				s.rank[g.Index(n)] = s.rank[g.Index(c)] + 1
				queue = append(queue, n)
			}
		}
	}
	return s
}

func (s *stubFaults) Dead(c mesh.Coord, d mesh.Direction) bool {
	n := c.Step(d)
	if !s.g.Contains(n) {
		return true
	}
	return s.dead[s.g.LinkFrom(c, d)]
}

func (s *stubFaults) Rank(c mesh.Coord) int { return s.rank[s.g.Index(c)] }

func testGrid(t *testing.T, w, h int) mesh.Grid {
	t.Helper()
	g, err := mesh.NewGrid(w, h)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// follow walks the hop sequence, asserting every hop stays on-grid and
// crosses no dead link, and returns the endpoint.
func follow(t *testing.T, g mesh.Grid, f Faults, src mesh.Coord, dirs []mesh.Direction) mesh.Coord {
	t.Helper()
	c := src
	for i, d := range dirs {
		if f != nil && f.Dead(c, d) {
			t.Fatalf("hop %d (%v from %v) crosses a dead link", i, d, c)
		}
		c = c.Step(d)
		if !g.Contains(c) {
			t.Fatalf("hop %d leaves the grid at %v", i, c)
		}
	}
	return c
}

func TestFaultAdaptiveHealthyIsMinimal(t *testing.T) {
	g := testGrid(t, 6, 5)
	pol := FaultAdaptive()
	for si := 0; si < g.Tiles(); si++ {
		for di := 0; di < g.Tiles(); di++ {
			src, dst := g.CoordOf(si), g.CoordOf(di)
			dirs, err := pol.Route(g, src, dst, nil)
			if err != nil {
				t.Fatalf("Route(%v,%v): %v", src, dst, err)
			}
			if end := follow(t, g, nil, src, dirs); end != dst {
				t.Fatalf("Route(%v,%v) ends at %v", src, dst, end)
			}
			manhattan := abs(dst.X-src.X) + abs(dst.Y-src.Y)
			if len(dirs) != manhattan {
				t.Fatalf("Route(%v,%v) takes %d hops, minimal is %d", src, dst, len(dirs), manhattan)
			}
		}
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func TestFaultAdaptiveRoutesAroundHole(t *testing.T) {
	g := testGrid(t, 4, 4)
	src := mesh.Coord{X: 0, Y: 1}
	dst := mesh.Coord{X: 3, Y: 1}
	// Kill the whole row between src and dst: East out of (0,1), (1,1)
	// and (2,1).  Minimal XY paths are all blocked; a legal detour
	// exists through row 0 or row 2.
	f := newStubFaults(g,
		g.LinkFrom(mesh.Coord{X: 0, Y: 1}, mesh.East),
		g.LinkFrom(mesh.Coord{X: 1, Y: 1}, mesh.East),
		g.LinkFrom(mesh.Coord{X: 2, Y: 1}, mesh.East))
	dirs, err := FaultAdaptive().(FaultAware).RouteFaulty(g, src, dst, f, nil)
	if err != nil {
		t.Fatalf("RouteFaulty: %v", err)
	}
	if end := follow(t, g, f, src, dirs); end != dst {
		t.Fatalf("detour ends at %v, want %v", end, dst)
	}
	if len(dirs) <= 3 {
		t.Fatalf("blocked row crossed in %d hops — path must detour", len(dirs))
	}
}

func TestFaultAdaptiveUnreachable(t *testing.T) {
	g := testGrid(t, 3, 3)
	// Sever the corner (2,2) completely.
	corner := mesh.Coord{X: 2, Y: 2}
	f := newStubFaults(g,
		g.LinkFrom(corner, mesh.West),
		g.LinkFrom(corner, mesh.North))
	_, err := FaultAdaptive().(FaultAware).RouteFaulty(g, mesh.Coord{X: 0, Y: 0}, corner, f, nil)
	var unreachable *fault.UnreachableError
	if !errors.As(err, &unreachable) {
		t.Fatalf("severed corner: got %v (%T), want *fault.UnreachableError", err, err)
	}
	if unreachable.Dst != corner {
		t.Fatalf("error names dst %v, want %v", unreachable.Dst, corner)
	}
}

func TestFaultAdaptiveDeterministic(t *testing.T) {
	g := testGrid(t, 5, 5)
	f := newStubFaults(g,
		g.LinkFrom(mesh.Coord{X: 1, Y: 1}, mesh.East),
		g.LinkFrom(mesh.Coord{X: 2, Y: 0}, mesh.South),
		g.LinkFrom(mesh.Coord{X: 3, Y: 3}, mesh.North))
	pol := FaultAdaptive().(FaultAware)
	for si := 0; si < g.Tiles(); si++ {
		for di := 0; di < g.Tiles(); di++ {
			src, dst := g.CoordOf(si), g.CoordOf(di)
			a, errA := pol.RouteFaulty(g, src, dst, f, nil)
			b, errB := pol.RouteFaulty(g, src, dst, f, nil)
			if (errA == nil) != (errB == nil) {
				t.Fatalf("Route(%v,%v): error flapped: %v vs %v", src, dst, errA, errB)
			}
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("Route(%v,%v) not deterministic: %v vs %v", src, dst, a, b)
			}
		}
	}
	if !IsDeterministic(FaultAdaptive()) {
		t.Fatal("fault-adaptive must declare itself deterministic (route-cache eligibility)")
	}
}

// TestFaultAdaptiveUpDownLegal pins the deadlock-freedom invariant
// directly: every returned path is up* then down* in the (rank,
// row-major index) key order — the property the escape-channel
// argument rests on.
func TestFaultAdaptiveUpDownLegal(t *testing.T) {
	g := testGrid(t, 5, 5)
	f := newStubFaults(g,
		g.LinkFrom(mesh.Coord{X: 0, Y: 0}, mesh.East),
		g.LinkFrom(mesh.Coord{X: 2, Y: 2}, mesh.East),
		g.LinkFrom(mesh.Coord{X: 2, Y: 2}, mesh.South),
		g.LinkFrom(mesh.Coord{X: 4, Y: 1}, mesh.South))
	key := func(c mesh.Coord) [2]int { return [2]int{f.Rank(c), g.Index(c)} }
	less := func(a, b [2]int) bool {
		return a[0] < b[0] || (a[0] == b[0] && a[1] < b[1])
	}
	pol := FaultAdaptive().(FaultAware)
	for si := 0; si < g.Tiles(); si++ {
		for di := 0; di < g.Tiles(); di++ {
			src, dst := g.CoordOf(si), g.CoordOf(di)
			dirs, err := pol.RouteFaulty(g, src, dst, f, nil)
			if err != nil {
				t.Fatalf("Route(%v,%v): %v", src, dst, err)
			}
			c, phaseDown := src, false
			for i, d := range dirs {
				n := c.Step(d)
				down := less(key(c), key(n))
				if phaseDown && !down {
					t.Fatalf("Route(%v,%v) hop %d goes up after going down: %v",
						src, dst, i, dirs)
				}
				phaseDown = phaseDown || down
				c = n
			}
		}
	}
}

func TestParseFaultAdaptive(t *testing.T) {
	p, err := Parse("fault-adaptive")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if p.Name() != "fault-adaptive" {
		t.Fatalf("Parse returned %q", p.Name())
	}
	if _, ok := p.(FaultAware); !ok {
		t.Fatal("parsed policy is not FaultAware")
	}
	if _, err := Parse("bogus"); err == nil {
		t.Fatal("Parse accepted an unknown policy")
	}
}
