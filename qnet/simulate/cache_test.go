package simulate

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/qnet"
	"repro/qnet/fault"
	"repro/qnet/route"
)

// goldenKeyConfig is the fixed configuration pinned by the golden-key
// test below.
func goldenKeyConfig(t testing.TB) (*Machine, qnet.Program) {
	t.Helper()
	grid, err := qnet.NewGrid(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(grid, HomeBase,
		WithResources(16, 16, 8),
		WithPurifyDepth(3),
		WithSeed(7),
		WithFailureRate(0.125))
	if err != nil {
		t.Fatal(err)
	}
	return m, qnet.QFT(16)
}

// goldenKey pins the canonical serialization: any change to the hash
// format (field order, encoding, version string) must change keyVersion
// and update this constant, because it invalidates every on-disk store.
const goldenKey = "d7d5f4cc478a76335c435731b79c8b642c4583a2e85acebf88a5b2eced262c6e"

// TestKeyGolden asserts the content hash of a fixed configuration is
// stable across processes and runs — the property that makes the
// on-disk store valid across invocations.
func TestKeyGolden(t *testing.T) {
	m, prog := goldenKeyConfig(t)
	if got := m.CacheKey(prog).String(); got != goldenKey {
		t.Errorf("golden key drifted:\n got  %s\n want %s\n"+
			"(if the key format changed intentionally, bump keyVersion and update goldenKey)", got, goldenKey)
	}
}

// TestKeyStableAcrossConstructions asserts the key is a pure function
// of the resolved configuration: machines built with options in
// different orders, or rebuilt from scratch, hash identically.  The
// hash never iterates a Go map, so repeated in-process computation (one
// map-ordering roll per run of this test) must agree too.
func TestKeyStableAcrossConstructions(t *testing.T) {
	grid, err := qnet.NewGrid(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	prog := qnet.QFT(16)
	a, err := New(grid, HomeBase, WithResources(16, 16, 8), WithPurifyDepth(3), WithSeed(7), WithFailureRate(0.125))
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(grid, HomeBase, WithFailureRate(0.125), WithSeed(7), WithPurifyDepth(3), WithResources(16, 16, 8))
	if err != nil {
		t.Fatal(err)
	}
	if a.CacheKey(prog) != b.CacheKey(prog) {
		t.Error("option order leaked into the content hash")
	}
	for i := 0; i < 100; i++ {
		if a.CacheKey(prog) != a.CacheKey(prog) {
			t.Fatal("repeated key computation disagrees")
		}
	}
}

// TestKeySensitivity asserts every dimension of the run point is
// covered by the hash, and that the seed is canonicalized away exactly
// when failure injection is off.
func TestKeySensitivity(t *testing.T) {
	grid, err := qnet.NewGrid(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	prog := qnet.QFT(16)
	build := func(opts ...Option) Key {
		t.Helper()
		m, err := New(grid, HomeBase, opts...)
		if err != nil {
			t.Fatal(err)
		}
		return m.CacheKey(prog)
	}
	base := build(WithResources(16, 16, 8))
	distinct := map[string]Key{
		"resources":    build(WithResources(16, 16, 4)),
		"depth":        build(WithResources(16, 16, 8), WithPurifyDepth(4)),
		"code level":   build(WithResources(16, 16, 8), WithCodeLevel(1)),
		"hop cells":    build(WithResources(16, 16, 8), WithHopCells(400)),
		"turn cells":   build(WithResources(16, 16, 8), WithTurnCells(0)),
		"failure rate": build(WithResources(16, 16, 8), WithFailureRate(0.5)),
		"params":       build(WithResources(16, 16, 8), WithParams(qnet.IonTrap2006().Scale(10))),
		"routing":      build(WithResources(16, 16, 8), WithRouting(route.YXOrder())),
		"dead links":   build(WithResources(16, 16, 8), WithFaults(fault.Spec{DeadLinks: 0.1})),
		"link drop":    build(WithResources(16, 16, 8), WithFaults(fault.Spec{Drop: 0.05})),
		"fault region": build(WithResources(16, 16, 8), WithFaults(fault.Spec{
			Regions: []fault.Region{{X: 0, Y: 0, W: 2, H: 2, Drop: 0.2}},
		})),
	}
	// The explicit default policy and the nil default canonicalize to
	// the same name, so they must share a key: they route identically.
	if k := build(WithResources(16, 16, 8), WithRouting(route.XYOrder())); k != base {
		t.Error("explicit XYOrder and the nil default hash differently")
	}
	for dim, k := range distinct {
		if k == base {
			t.Errorf("changing %s did not change the key", dim)
		}
	}
	m, err := New(grid, HomeBase, WithResources(16, 16, 8))
	if err != nil {
		t.Fatal(err)
	}
	if m.CacheKey(qnet.ModMult(8)) == base {
		t.Error("changing the program did not change the key")
	}

	// Deterministic runs: the seed must canonicalize away.
	if build(WithResources(16, 16, 8), WithSeed(1)) != build(WithResources(16, 16, 8), WithSeed(2)) {
		t.Error("seed leaked into the key of a failure-free (deterministic) run")
	}
	// Stochastic runs: the seed must matter.
	if build(WithResources(16, 16, 8), WithFailureRate(0.5), WithSeed(1)) ==
		build(WithResources(16, 16, 8), WithFailureRate(0.5), WithSeed(2)) {
		t.Error("seed ignored in the key of a stochastic run")
	}
	// Faulty runs draw their fault pattern from the seed, so the seed
	// must matter even with failure injection off.
	faulty := fault.Spec{DeadLinks: 0.1}
	if build(WithResources(16, 16, 8), WithFaults(faulty), WithSeed(1)) ==
		build(WithResources(16, 16, 8), WithFaults(faulty), WithSeed(2)) {
		t.Error("seed ignored in the key of a faulty-mesh run")
	}
}

// TestSweepSecondRunFullyCached asserts the headline cache property: a
// second identical sweep against the same on-disk store performs zero
// simulations (100% hits) and returns byte-identical results.
func TestSweepSecondRunFullyCached(t *testing.T) {
	dir := t.TempDir()
	space := test2x2x2Space(t)
	ctx := context.Background()

	run := func() ([]SweepPoint, Summary) {
		t.Helper()
		// A fresh Cache per run, so hits can only come from the disk
		// store — the cross-process path.
		cache, err := NewDiskCache(dir, 0)
		if err != nil {
			t.Fatal(err)
		}
		points, err := Sweep(ctx, space, WithCache(cache))
		if err != nil {
			t.Fatal(err)
		}
		return points, Summarize(points)
	}

	cold, coldSummary := run()
	if coldSummary.CacheHits != 0 {
		t.Fatalf("cold run reported %d cache hits", coldSummary.CacheHits)
	}
	warm, warmSummary := run()
	if warmSummary.CacheHits != warmSummary.Points {
		t.Fatalf("warm run: %v, want 100%% cache hits", warmSummary)
	}
	if len(warm) != len(cold) {
		t.Fatalf("point counts differ: %d vs %d", len(warm), len(cold))
	}
	for i := range cold {
		if warm[i].Result != cold[i].Result {
			t.Errorf("point %d differs between cold and warm run:\n cold %+v\n warm %+v",
				i, cold[i].Result, warm[i].Result)
		}
		// Byte-identical through the JSON store and back.
		coldJSON, err := json.Marshal(cold[i].Result)
		if err != nil {
			t.Fatal(err)
		}
		warmJSON, err := json.Marshal(warm[i].Result)
		if err != nil {
			t.Fatal(err)
		}
		if string(coldJSON) != string(warmJSON) {
			t.Errorf("point %d JSON differs:\n cold %s\n warm %s", i, coldJSON, warmJSON)
		}
	}
}

// TestSweepCollapsedEnsembleCounters asserts the single-flight path:
// a multi-seed ensemble of a deterministic (failure-free) point shares
// one content key, so however the workers interleave, exactly one run
// simulates and the counters are a pure function of the space.
func TestSweepCollapsedEnsembleCounters(t *testing.T) {
	grid, err := qnet.NewGrid(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	space := Space{
		Grids:     []qnet.Grid{grid},
		Layouts:   []Layout{HomeBase},
		Resources: []Resources{{Teleporters: 16, Generators: 16, Purifiers: 8}},
		Programs:  []qnet.Program{qnet.QFT(grid.Tiles())},
		Seeds:     []int64{1, 2, 3, 4},
	}
	for trial := 0; trial < 5; trial++ {
		cache := NewCache(0)
		points, err := Sweep(context.Background(), space, WithCache(cache), WithWorkers(4))
		if err != nil {
			t.Fatal(err)
		}
		if s := Summarize(points); s.CacheHits != 3 {
			t.Fatalf("trial %d: %v, want exactly 3 hits (4 seeds, 1 unique key)", trial, s)
		}
		if s := cache.Stats(); s.Hits != 3 || s.Misses != 1 {
			t.Fatalf("trial %d: cache counters %v, want 3 hits / 1 miss", trial, s)
		}
		for i := 1; i < len(points); i++ {
			if points[i].Result != points[0].Result {
				t.Fatalf("trial %d: collapsed seeds disagree", trial)
			}
		}
	}
}

// TestWithCacheDirOption asserts the convenience option builds the disk
// store and serves the second sweep from it.
func TestWithCacheDirOption(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "nested", "cache")
	space := test2x2x2Space(t)
	ctx := context.Background()
	if _, err := Sweep(ctx, space, WithCacheDir(dir)); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil || len(entries) == 0 {
		t.Fatalf("cache dir not populated: %v (entries %d)", err, len(entries))
	}
	points, err := Sweep(ctx, space, WithCacheDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	if s := Summarize(points); s.CacheHits != s.Points {
		t.Errorf("second WithCacheDir sweep: %v, want all hits", s)
	}
}

// TestCacheLRUEviction asserts the in-memory store honors its capacity
// bound, evicting least-recently-used entries first.
func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(2)
	k := func(b byte) Key { var k Key; k[0] = b; return k }
	c.Put(k(1), Result{Ops: 1})
	c.Put(k(2), Result{Ops: 2})
	if _, ok := c.Get(k(1)); !ok { // touch 1: now 2 is LRU
		t.Fatal("entry 1 missing")
	}
	c.Put(k(3), Result{Ops: 3}) // evicts 2
	if _, ok := c.Get(k(2)); ok {
		t.Error("LRU entry 2 not evicted")
	}
	if _, ok := c.Get(k(1)); !ok {
		t.Error("recently used entry 1 evicted")
	}
	if c.Len() != 2 {
		t.Errorf("len = %d, want 2", c.Len())
	}
	s := c.Stats()
	if s.Entries != 2 || s.Hits != 2 || s.Misses != 1 {
		t.Errorf("stats = %+v, want 2 entries, 2 hits, 1 miss", s)
	}
}

// TestCacheCorruptDiskEntry asserts an unreadable stored result is a
// miss, not an error — but a counted miss: CorruptEntries must record
// it, and both CacheStats and a store-aware Summary must surface it,
// so operators of fleet-shared stores can tell rot from cold.
func TestCacheCorruptDiskEntry(t *testing.T) {
	dir := t.TempDir()
	c, err := NewDiskCache(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	var k Key
	k[0] = 9
	c.Put(k, Result{Ops: 42})
	if err := os.WriteFile(filepath.Join(dir, k.String()+".json"), []byte("{corrupt"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Fresh cache, so the lookup must go to disk.
	c2, err := NewDiskCache(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c2.Get(k); ok {
		t.Error("corrupt entry served as a hit")
	}
	stats := c2.Stats()
	if stats.CorruptEntries != 1 {
		t.Fatalf("CorruptEntries = %d, want 1", stats.CorruptEntries)
	}
	if stats.Misses != 1 {
		t.Fatalf("Misses = %d, want 1 (corrupt entries degrade to misses)", stats.Misses)
	}
	if s := stats.String(); !strings.Contains(s, "1 corrupt") {
		t.Fatalf("CacheStats.String() hides corruption: %q", s)
	}
	sum := SummarizeStore(nil, c2)
	if sum.CorruptEntries != 1 {
		t.Fatalf("SummarizeStore.CorruptEntries = %d, want 1", sum.CorruptEntries)
	}
	if s := sum.String(); !strings.Contains(s, "1 corrupt store entries") {
		t.Fatalf("Summary.String() hides corruption: %q", s)
	}
	// A healthy summary stays unchanged.
	if s := Summarize(nil).String(); strings.Contains(s, "corrupt") {
		t.Fatalf("healthy summary mentions corruption: %q", s)
	}
}

// TestCacheRoundTripExact asserts a Result survives the JSON store
// bit-exactly, floats included.
func TestCacheRoundTripExact(t *testing.T) {
	m, prog := goldenKeyConfig(t)
	res, err := m.Run(context.Background(), prog)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	c, err := NewDiskCache(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	key := m.CacheKey(prog)
	c.Put(key, res)
	c2, err := NewDiskCache(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := c2.Get(key)
	if !ok {
		t.Fatal("stored result missing from disk store")
	}
	if got != res {
		t.Errorf("disk round trip not exact:\n put %+v\n got %+v", res, got)
	}
}
