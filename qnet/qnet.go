// Package qnet is the public API of this repository's reproduction of
// "Interconnection Networks for Scalable Quantum Computers" (Isailovic,
// Patel, Whitney, Kubiatowicz — ISCA 2006, arXiv:quant-ph/0604048).
//
// The API is split across four packages:
//
//   - qnet (this package): the device model and the building blocks —
//     ion-trap parameters (Tables 1-2), channel fidelity equations
//     (Eqs 1-6), Bell-diagonal states, purification protocols and the
//     Figure 14 queue purifier, error-correction sizing, mesh grids,
//     workload programs, and the structured error types shared by the
//     whole tree.
//   - qnet/channel: the analytical reliable-channel models — EPR
//     distribution over chained teleporters, the five purification
//     placement policies (Figs 9-12), ballistic-versus-teleportation
//     methodology comparison, and end-to-end channel planning
//     (latency, bandwidth, error rate, resources).
//   - qnet/simulate: the event-driven mesh-interconnect simulator
//     (Figs 15-16) behind a Machine/Session abstraction with
//     functional options, context-aware runs, a concurrent
//     parameter-sweep engine, and a content-addressed result cache
//     that makes repeated sweeps incremental.
//   - qnet/stats: seed-ensemble statistics over simulation results —
//     mean, standard deviation, extrema and confidence intervals per
//     metric, with Group folding a sweep's seed dimension into
//     per-configuration ensembles.
//
// Quickstart:
//
//	p := qnet.IonTrap2006()
//	grid, _ := qnet.NewGrid(8, 8)
//	m, err := simulate.New(grid, simulate.MobileQubit,
//		simulate.WithResources(16, 16, 8),
//		simulate.WithPurifyDepth(3))
//	res, err := m.Run(ctx, qnet.QFT(grid.Tiles()))
//
// See docs/ARCHITECTURE.md for the package-to-paper map and the
// runnable Example functions in each package for working idioms.  The
// legacy flat facade that once lived in the repository root (package
// repro) was deprecated for one release and has been removed.
package qnet

import (
	"io"

	"repro/internal/ecc"
	"repro/internal/fidelity"
	"repro/internal/isa"
	"repro/internal/mesh"
	"repro/internal/phys"
	"repro/internal/purify"
	"repro/internal/workload"
)

// Params bundles the ion-trap device constants of the paper's Tables 1
// and 2.
type Params = phys.Params

// IonTrap2006 returns the paper's baseline device parameters.
func IonTrap2006() Params { return phys.IonTrap2006() }

// ThresholdError is the fault-tolerance threshold 7.5e-5 the paper
// imposes on data-qubit error.
const ThresholdError = fidelity.ThresholdError

// Bell is a Bell-diagonal two-qubit state; its A coefficient is the
// pair's fidelity.
type Bell = fidelity.Bell

// Werner lifts a scalar fidelity into the Bell-diagonal representation.
func Werner(f float64) Bell { return fidelity.Werner(f) }

// Ballistic applies the paper's Eq 1: fidelity after moving a qubit over
// the given number of ion-trap cells.
func Ballistic(p Params, old float64, cells int) float64 {
	return fidelity.Ballistic(p, old, cells)
}

// Teleport applies the paper's Eq 3: fidelity after one teleportation
// using an EPR pair of the given fidelity.
func Teleport(p Params, old, epr float64) float64 { return fidelity.Teleport(p, old, epr) }

// Generate applies the paper's Eq 4: fidelity of a freshly generated EPR
// pair.
func Generate(p Params, fzero float64) float64 { return fidelity.Generate(p, fzero) }

// CornerToCornerError is the ballistic error of a corner-to-corner move
// on an n×n-cell grid — the paper's argument that raw movement cannot
// scale.
func CornerToCornerError(p Params, n int) float64 { return fidelity.CornerToCornerError(p, n) }

// Protocol is a two-to-one entanglement purification protocol.
type Protocol = purify.Protocol

// DEJMPS is the Deutsch et al. purification protocol (the paper's
// choice).
type DEJMPS = purify.DEJMPS

// BBPSSW is the Bennett et al. purification protocol.
type BBPSSW = purify.BBPSSW

// RoundResult is the state and success probability after one
// purification round.
type RoundResult = purify.RoundResult

// Rounds iterates a purification protocol round by round.
func Rounds(proto Protocol, initial Bell, maxRounds int) []RoundResult {
	return purify.Rounds(proto, initial, maxRounds)
}

// ConvergenceRounds returns the rounds a protocol needs to get within
// slack of its fixed-point error.
func ConvergenceRounds(proto Protocol, initial Bell, slack float64, maxRounds int) int {
	return purify.ConvergenceRounds(proto, initial, slack, maxRounds)
}

// TreePairs is the number of input pairs a purification tree of the
// given depth consumes per output pair (2^rounds).
func TreePairs(rounds int) int { return purify.TreePairs(rounds) }

// QueuePurifier is the robust queue-based purifier of Figure 14.
type QueuePurifier = purify.QueuePurifier

// NewQueuePurifier builds a queue purifier of the given tree depth.
func NewQueuePurifier(proto Protocol, depth int) (*QueuePurifier, error) {
	return purify.NewQueuePurifier(proto, depth)
}

// Code is a concatenated quantum error-correcting code.
type Code = ecc.Code

// Steane returns the concatenated Steane [[7,1,3]] code at the given
// level; level 2 (49 physical qubits) is the paper's choice.
func Steane(level int) (Code, error) { return ecc.Steane(level) }

// Grid is a rectangular tile mesh.
type Grid = mesh.Grid

// NewGrid builds a mesh of the given dimensions.
func NewGrid(w, h int) (Grid, error) { return mesh.NewGrid(w, h) }

// Program is a logical instruction stream of two-qubit operations.
type Program = workload.Program

// Op is one two-logical-qubit operation.
type Op = workload.Op

// QFT returns the Quantum Fourier Transform communication pattern
// (all-to-all) on n logical qubits.
func QFT(n int) Program { return workload.QFT(n) }

// ModMult returns the Modular Multiplication pattern (bipartite) between
// two sets of n logical qubits.
func ModMult(n int) Program { return workload.ModMult(n) }

// ModExp returns the Modular Exponentiation pattern (alternating
// all-to-all and bipartite) over two sets of n qubits.
func ModExp(n, steps int) Program { return workload.ModExp(n, steps) }

// ParseProgram reads an instruction-stream file (the internal/isa
// format: "qubits N", "op A B", plus qft/mm macros) into a Program.
func ParseProgram(r io.Reader) (Program, error) { return isa.Parse(r) }

// FormatProgram renders a Program back to the instruction-stream
// format accepted by ParseProgram.
func FormatProgram(prog Program) string { return isa.Format(prog) }
