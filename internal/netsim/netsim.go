// Package netsim is the event-driven communication simulator of the
// paper's Section 5: a mesh grid of logical-qubit tiles with T'
// (teleporter), G (generator), C (corrector) and P (queue purifier)
// nodes, executing a logical instruction stream with full contention
// for teleporters, generators, purifiers and per-link storage.  The
// hop path of every logical communication is chosen by a pluggable
// route.Policy (Config.Route); the default is the paper's
// dimension-order (X then Y) routing.
//
// Each logical communication sets up a quantum channel: EPR pairs are
// chain-teleported hop by hop from source to destination (consuming a
// link pair from the G node of every link crossed and a teleporter from
// the directional set of every T' node left), then purified by
// depth-PurifyDepth queue purifiers at both endpoints, and finally the
// 7^CodeLevel physical qubits of the logical qubit are teleported with
// the delivered high-fidelity pairs.
//
// Simulation granularity is one purifier batch: 2^PurifyDepth EPR pairs
// move through the network as a unit, since exactly that many arrivals
// produce one purified output pair (Figure 14).  With the paper's
// parameters this is 8 pairs per batch and 49 batches (392 pairs) per
// logical communication, matching Section 5.3.
package netsim

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/classical"
	"repro/internal/ecc"
	"repro/internal/fault"
	"repro/internal/mesh"
	"repro/internal/phys"
	"repro/internal/route"
	"repro/internal/router"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Layout selects the logical-qubit placement policy of Section 5
// (Figure 15).
type Layout int

const (
	// HomeBase gives every logical qubit a fixed home tile with room for
	// one visitor; the moving operand teleports in for each operation
	// and teleports back home afterwards.
	HomeBase Layout = iota
	// MobileQubit lets the moving operand stay wherever it travels;
	// qubits return home only after their final operation.  With the
	// snake placement this makes the QFT walk almost entirely local.
	MobileQubit
)

// String names the layout.
func (l Layout) String() string {
	switch l {
	case HomeBase:
		return "HomeBase"
	case MobileQubit:
		return "MobileQubit"
	default:
		return fmt.Sprintf("Layout(%d)", int(l))
	}
}

// Config parameterizes a simulation run.
type Config struct {
	// Params are the device constants (Tables 1 and 2).
	Params phys.Params
	// Grid is the tile mesh; the paper simulates 16×16.
	Grid mesh.Grid
	// Layout is the placement policy.
	Layout Layout
	// Teleporters is t, the teleporter count per T' node (split into X
	// and Y sets).
	Teleporters int
	// Generators is g, the generator count per G node (one G node per
	// link).
	Generators int
	// Purifiers is p, the queue-purifier count per P node (one P node
	// per tile).
	Purifiers int
	// PurifyDepth is the queue-purifier tree depth; the paper uses 3.
	PurifyDepth int
	// CodeLevel is the Steane concatenation level; the paper transports
	// level-2 logical qubits (49 physical qubits).
	CodeLevel int
	// HopCells is the physical span of one mesh hop (600 cells).
	HopCells int
	// TurnCells is the in-router ballistic distance between teleporter
	// sets, paid on X/Y turns.
	TurnCells int
	// Route is the routing policy deciding each channel's hop path
	// across the mesh.  nil selects route.XYOrder, the paper's
	// dimension-order routing; any policy (including the adaptive
	// route.LeastCongested, which consults the routers' live loads at
	// channel-setup time and again for every resent batch) can be
	// plugged in without touching the simulator core.
	Route route.Policy
	// PurifyFailureRate injects stochastic purification failure: each
	// batch fails end-to-end purification with this probability and a
	// replacement batch must be sent through the network (the queue
	// purifier rebuilds the lost subtree naturally, Figure 14).  Zero
	// disables injection and keeps the simulation fully deterministic.
	PurifyFailureRate float64
	// Faults is the mesh fault spec: dead links, per-link batch drops
	// and degraded-fidelity regions, materialized from the run's seeded
	// RNG at build time (before any failure-injection draw, so
	// fault.Preview reproduces the exact pattern).  The zero Spec is a
	// healthy mesh and leaves the simulation byte-identical to a build
	// without the fault layer.
	Faults fault.Spec
	// Seed drives the failure-injection and fault-materialization RNG;
	// runs with equal seeds are reproducible.
	Seed int64
	// Parallel requests the domain-decomposed event engine: the mesh is
	// cut into that many contiguous row bands and the run executes on a
	// conservative partitioned engine whose lookahead is the minimum
	// latency of a cut-crossing hop.  0 and 1 select the serial engine;
	// any value is clamped to the grid height.  Parallel execution is an
	// engine choice, not a model change — results are byte-identical to
	// a serial run of the same Config, which is why the field is
	// excluded from result cache keys.
	Parallel int
	// Trace attaches a telemetry tracer to the run: it is bound to the
	// mesh at build time and sampled at its interval boundaries through
	// the engine's probe hook, recording per-router occupancy, per-link
	// utilization and drop/resend events over simulated time.  nil (the
	// default) disables tracing at the cost of one nil check per event.
	// A tracer is an observer, never part of the model — a traced run
	// executes the same events and produces a byte-identical Result —
	// which is why the field, like Parallel, is excluded from result
	// cache keys.
	Trace *trace.Tracer
}

// DefaultConfig returns the paper's simulation parameters on the given
// grid with the given per-node resource counts.
func DefaultConfig(grid mesh.Grid, layout Layout, t, g, p int) Config {
	return Config{
		Params:      phys.IonTrap2006(),
		Grid:        grid,
		Layout:      layout,
		Teleporters: t,
		Generators:  g,
		Purifiers:   p,
		PurifyDepth: 3,
		CodeLevel:   2,
		HopCells:    600,
		TurnCells:   20,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if err := c.Params.Validate(); err != nil {
		return err
	}
	if c.Grid.Tiles() == 0 {
		return fmt.Errorf("netsim: empty grid")
	}
	if c.Teleporters < 1 || c.Generators < 1 || c.Purifiers < 1 {
		return fmt.Errorf("netsim: resource counts must be >= 1 (t=%d g=%d p=%d)",
			c.Teleporters, c.Generators, c.Purifiers)
	}
	if c.PurifyDepth < 1 || c.PurifyDepth > 16 {
		return fmt.Errorf("netsim: purify depth %d out of range [1,16]", c.PurifyDepth)
	}
	if c.CodeLevel < 0 {
		return fmt.Errorf("netsim: code level %d must be >= 0", c.CodeLevel)
	}
	if c.HopCells < 1 {
		return fmt.Errorf("netsim: hop cells must be >= 1, got %d", c.HopCells)
	}
	if c.TurnCells < 0 {
		return fmt.Errorf("netsim: turn cells must be >= 0, got %d", c.TurnCells)
	}
	if c.PurifyFailureRate < 0 || c.PurifyFailureRate >= 1 {
		return fmt.Errorf("netsim: purify failure rate must be in [0,1), got %g", c.PurifyFailureRate)
	}
	if err := c.Faults.Validate(c.Grid); err != nil {
		return fmt.Errorf("netsim: %w", err)
	}
	if c.Parallel < 0 {
		return fmt.Errorf("netsim: parallel region count must be >= 0, got %d", c.Parallel)
	}
	return nil
}

// batchPairs returns the EPR pairs per simulated batch (one purifier
// tree's worth).
func (c Config) batchPairs() int { return 1 << uint(c.PurifyDepth) }

// Result summarizes a simulation run.
type Result struct {
	// Exec is the total execution time of the instruction stream,
	// including trailing return-home communications.
	Exec time.Duration
	// Ops is the number of logical operations executed.
	Ops int
	// Channels is the number of quantum channels set up (communications;
	// Home Base pays two per op, there and back).
	Channels uint64
	// LocalOps is the number of ops that needed no network communication
	// (operands co-located).
	LocalOps uint64
	// PairsDelivered is the total EPR pairs delivered to channel
	// endpoints.
	PairsDelivered uint64
	// PairHops is the total pair-teleportations performed (the network
	// strain metric of Figure 11).
	PairHops uint64
	// Turns is the total number of X/Y turns taken inside router nodes
	// (each paying the ballistic set-switch penalty once), summed over
	// every batch of every channel.  Dimension-order routing turns at
	// most once per path; zigzag turns at almost every hop.
	Turns uint64
	// DroppedBatches counts batches lost in flight to fault-model link
	// drops (each triggering a resend from the channel source).  The
	// json tag keeps a healthy run's serialized Result — and the parity
	// goldens — byte-identical to the pre-fault-layer form.
	DroppedBatches uint64 `json:",omitempty"`
	// DeadLinks is the number of mesh links the fault model disabled
	// for this run (0 on a healthy mesh; omitted from JSON then, like
	// DroppedBatches).
	DeadLinks int `json:",omitempty"`
	// Events is the number of simulation events processed.
	Events uint64
	// ClassicalMessages is the classical control message count.
	ClassicalMessages uint64
	// FailedBatches counts purification batches lost to injected
	// failures (and therefore re-sent).
	FailedBatches uint64
	// MeanChannelLatency is the average channel setup-to-data-delivery
	// latency.
	MeanChannelLatency time.Duration
	// MaxChannelLatency is the worst channel latency.
	MaxChannelLatency time.Duration
	// TeleporterUtil, GeneratorUtil and PurifierUtil are mean resource
	// utilizations over the run.
	TeleporterUtil float64
	GeneratorUtil  float64
	PurifierUtil   float64
}

// simulator carries the live state of one run.
type simulator struct {
	cfg    Config
	policy route.Policy
	// routes memoizes the hop paths of a deterministic policy; nil for
	// adaptive policies (which must re-consult live loads per channel).
	routes  *routeCache
	engine  *sim.Engine
	nodes   []*router.Node  // per tile
	purify  []*sim.Resource // per tile P node
	gnodes  []*sim.Resource // per link G node, indexed by mesh.Grid.LinkIndex
	net     *classical.Network
	sch     *sched.Scheduler
	place   *mesh.Placement
	pos     []mesh.Coord // current position of each logical qubit
	lastOp  []int        // final op index touching each qubit
	pending int          // channels + gates in flight (for drain detection)

	numBatches int
	code       ecc.Code

	channels       uint64
	localOps       uint64
	pairHops       uint64
	turns          uint64
	failedBatches  uint64
	droppedBatches uint64
	// faults is the run's materialized fault pattern; nil for a healthy
	// mesh (the common case, costing nothing on the hot path).
	faults *fault.Model
	// err records the first structured abort (blocked route, partition,
	// exhausted resend budget); once set, no new work is issued and the
	// event loop drains, so the run terminates with this error instead
	// of stalling.
	err       error
	rng       *rand.Rand
	latencies sim.Tally
}

// fail records the first abort error; callbacks check s.err and stop
// issuing work, so the engine drains deterministically.
func (s *simulator) fail(err error) {
	if s.err == nil {
		s.err = err
	}
}

// Run executes the program on the configured machine and returns the
// result.
func Run(cfg Config, prog workload.Program) (Result, error) {
	res, _, err := RunDetailed(cfg, prog)
	return res, err
}

// RunContext is Run with cancellation: the event loop polls ctx and
// aborts with the context's error when it is cancelled or times out.
func RunContext(ctx context.Context, cfg Config, prog workload.Program) (Result, error) {
	res, _, err := RunDetailedContext(ctx, cfg, prog)
	return res, err
}

// loads adapts the simulator's router nodes to the route.Loads
// interface, giving adaptive policies a live view of teleporter-set and
// storage pressure at channel-setup time.
type loads struct{ s *simulator }

// AxisLoad reports the directional teleporter-set pressure at c.
func (l loads) AxisLoad(c mesh.Coord, axis int) float64 {
	return l.s.nodes[l.s.cfg.Grid.Index(c)].AxisLoad(axis)
}

// StorageLoad reports the incoming-storage occupancy at c.
func (l loads) StorageLoad(c mesh.Coord, from mesh.Direction) float64 {
	return l.s.nodes[l.s.cfg.Grid.Index(c)].StorageLoad(from)
}

// traceSource adapts the simulator's router nodes and link generators
// to the trace.Source interface: the tracer samples exactly the
// counters the loads adapter normalizes for adaptive routing, so the
// exported time series is the live load view, not a parallel
// bookkeeping layer.
type traceSource struct{ s *simulator }

// SampleOccupancy fills per-tile router queue occupancy in batches.
func (ts traceSource) SampleOccupancy(dst []float64) {
	for i, n := range ts.s.nodes {
		dst[i] = float64(n.Occupancy())
	}
}

// SampleLinkBusy fills per-link cumulative generator busy time.
func (ts traceSource) SampleLinkBusy(dst []time.Duration) {
	for i, g := range ts.s.gnodes {
		_, _, busy := g.Stats()
		dst[i] = busy
	}
}

// LinkCapacity returns the per-link generator unit count.
func (ts traceSource) LinkCapacity() int { return ts.s.cfg.Generators }

func (s *simulator) build(prog workload.Program) error {
	cfg := s.cfg
	var err error
	code, err := ecc.Steane(cfg.CodeLevel)
	if err != nil {
		return err
	}
	s.policy = cfg.Route
	if s.policy == nil {
		s.policy = route.Default()
	}
	if route.IsDeterministic(s.policy) {
		// A deterministic policy answers every (src, dst) pair the same
		// way for the whole run, so its paths are resolved once and
		// replayed from the cache; adaptive policies (consulting live
		// loads) transparently bypass it.
		s.routes = newRouteCache(cfg.Grid.Tiles())
	}
	s.code = code
	s.numBatches = code.PairsPerLogicalTeleport()

	switch cfg.Layout {
	case HomeBase:
		s.place, err = mesh.RowMajorPlacement(cfg.Grid, prog.Qubits)
	case MobileQubit:
		s.place, err = mesh.SnakePlacement(cfg.Grid, prog.Qubits)
	default:
		return fmt.Errorf("netsim: unknown layout %d", int(cfg.Layout))
	}
	if err != nil {
		return err
	}

	// Storage is t cells per incoming link; we traffic in batches of
	// batchPairs pairs.
	storageBatches := cfg.Teleporters / cfg.batchPairs()
	if storageBatches < 1 {
		storageBatches = 1
	}
	rcfg := router.Config{
		Teleporters:  cfg.Teleporters,
		StorageUnits: storageBatches,
		TurnCells:    cfg.TurnCells,
		Params:       cfg.Params,
	}
	s.nodes = make([]*router.Node, cfg.Grid.Tiles())
	for i := range s.nodes {
		c := cfg.Grid.CoordOf(i)
		var incoming []mesh.Direction
		for _, d := range []mesh.Direction{mesh.East, mesh.West, mesh.North, mesh.South} {
			// Traffic arriving "from direction d" entered over the link
			// toward d; it exists if the neighbor in direction d does.
			if cfg.Grid.Contains(c.Step(d)) {
				incoming = append(incoming, d)
			}
		}
		if len(incoming) == 0 {
			incoming = []mesh.Direction{mesh.East} // 1x1 grid degenerate case
		}
		node, err := router.New(s.engine, c, incoming, rcfg)
		if err != nil {
			return err
		}
		s.nodes[i] = node
	}

	// P and G node names resolve lazily (first Name() call): a 16x16 run
	// builds 256 purifier resources and 480 generator resources, and
	// eagerly fmt.Sprintf-ing a name for each was pure build-path waste —
	// names are only read in error messages and statistics reports.
	s.purify = make([]*sim.Resource, cfg.Grid.Tiles())
	for i := range s.purify {
		c := cfg.Grid.CoordOf(i)
		r, err := sim.NewLazyResource(s.engine, func() string { return fmt.Sprintf("P%v", c) }, cfg.Purifiers)
		if err != nil {
			return err
		}
		s.purify[i] = r
	}

	// G nodes live in a dense slice indexed by mesh.Grid.LinkIndex (the
	// Links() enumeration order), replacing the former map[mesh.Link]
	// lookup on the per-hop hot path.
	s.gnodes = make([]*sim.Resource, cfg.Grid.NumLinks())
	for i, l := range cfg.Grid.Links() {
		r, err := sim.NewLazyResource(s.engine, func() string { return fmt.Sprintf("G%v%v", l.From, l.Dir) }, cfg.Generators)
		if err != nil {
			return err
		}
		s.gnodes[i] = r
	}

	s.net, err = classical.NewNetwork(cfg.Params, cfg.HopCells)
	if err != nil {
		return err
	}

	s.sch, err = sched.New(prog)
	if err != nil {
		return err
	}

	// Every run gets its own RNG, unconditionally: sharing the global
	// source would make seed-0 and seedless runs irreproducible, and a
	// per-run source is what lets concurrent sweep workers run
	// identically-seeded points without interleaving draws.
	s.rng = rand.New(rand.NewSource(cfg.Seed))

	// The fault model draws first, before any failure-injection draw,
	// so the pattern is a pure function of (spec, grid, seed) and
	// fault.Preview reproduces it exactly.  An empty spec consumes no
	// draws and yields a nil model — the healthy fast path.
	s.faults, err = cfg.Faults.Build(cfg.Grid, s.rng)
	if err != nil {
		return err
	}

	s.pos = make([]mesh.Coord, prog.Qubits)
	s.lastOp = make([]int, prog.Qubits)
	for q := range s.pos {
		s.pos[q] = s.place.Home(q)
		s.lastOp[q] = -1
	}
	for k, op := range prog.Ops {
		s.lastOp[op.A] = k
		s.lastOp[op.B] = k
	}

	// The tracer (when attached) binds to this run's mesh and installs
	// itself as the engine's sampling probe.  The probe fires at exact
	// interval boundaries without scheduling events, so the traced run's
	// event stream — and Result — is byte-identical to an untraced one.
	if cfg.Trace != nil {
		cfg.Trace.Bind(cfg.Grid, traceSource{s})
		s.engine.SetProbe(cfg.Trace, cfg.Trace.Interval())
	}

	// Pre-size the event queue for the expected in-flight batch volume:
	// every concurrently open channel keeps roughly one scheduled event
	// per batch in flight (batches waiting on a resource sit in that
	// resource's queue, not the engine heap), and the number of open
	// channels is bounded by the qubits that can be mid-operation at
	// once.  One Reserve here replaces the heap/arena's early doubling
	// reallocations with a single allocation.
	s.engine.Reserve(prog.Qubits*s.numBatches + 64)
	return nil
}

// tryIssue starts every currently-ready op; an aborted run issues
// nothing more, so in-flight events drain and the engine terminates.
func (s *simulator) tryIssue() {
	for s.err == nil {
		id, op, ok := s.sch.Issue()
		if !ok {
			return
		}
		s.startOp(id, op)
	}
}

// startOp runs one logical operation according to the layout policy.
func (s *simulator) startOp(id int, op workload.Op) {
	s.pending++
	switch s.cfg.Layout {
	case HomeBase:
		// B teleports to A's home, they interact, B teleports back.
		home := s.place.Home(op.A)
		back := s.place.Home(op.B)
		s.channel(back, home, func() {
			s.gate(func() {
				s.channel(home, back, func() {
					s.finishOp(id, op)
				})
			})
		})
	case MobileQubit:
		// A travels from wherever it is to B's current tile and stays.
		src := s.pos[op.A]
		dst := s.pos[op.B]
		s.channel(src, dst, func() {
			s.pos[op.A] = dst
			s.gate(func() {
				s.finishOp(id, op)
			})
		})
	}
}

// finishOp completes the op in the scheduler, fires any return-home
// moves for qubits whose last op this was, and issues newly-ready work.
func (s *simulator) finishOp(id int, op workload.Op) {
	s.pending--
	if err := s.sch.Complete(id); err != nil {
		panic(err) // scheduler invariant violation: a simulator bug
	}
	if s.cfg.Layout == MobileQubit {
		for _, q := range []int{op.A, op.B} {
			if s.lastOp[q] == id && s.pos[q] != s.place.Home(q) {
				q := q
				s.pending++
				s.channel(s.pos[q], s.place.Home(q), func() {
					s.pos[q] = s.place.Home(q)
					s.pending--
				})
			}
		}
	}
	s.tryIssue()
}

// gate runs the local two-logical-qubit gate latency.
func (s *simulator) gate(done func()) {
	s.engine.Schedule(s.cfg.Params.Times.TwoQubitGate, done)
}

// Allocation is one point of the paper's Figure 16 resource sweep:
// teleporters and generators are scaled to Ratio times the purifier
// count while the total area T+G+P stays fixed.
type Allocation struct {
	// Ratio is t/p (and g/p), the x-axis of Figure 16.
	Ratio int
	// T, G and P are the per-node resource counts.
	T, G, P int
}

// String renders the allocation like "t=g=4p (21/21/6)".
func (a Allocation) String() string {
	return fmt.Sprintf("t=g=%dp (%d/%d/%d)", a.Ratio, a.T, a.G, a.P)
}

// SweepAllocations builds the Figure 16 configurations: for each ratio r,
// the area budget is split so t = g ≈ r·p and t + g + p = area, with
// every count at least 1.
func SweepAllocations(area int, ratios []int) ([]Allocation, error) {
	if area < 3 {
		return nil, fmt.Errorf("netsim: area budget %d too small to hold t, g and p", area)
	}
	out := make([]Allocation, 0, len(ratios))
	for _, r := range ratios {
		if r < 1 {
			return nil, fmt.Errorf("netsim: ratio %d must be >= 1", r)
		}
		p := area / (2*r + 1)
		if p < 1 {
			p = 1
		}
		t := (area - p) / 2
		if t < 1 {
			t = 1
		}
		out = append(out, Allocation{Ratio: r, T: t, G: t, P: p})
	}
	return out, nil
}
