// The transport seam between coordinator and workers.

package distrib

import (
	"context"
	"errors"
	"fmt"
)

// ErrTruncatedStream marks a result stream that ended without a
// terminal done/error line — whether cut between lines or mid-line.
// Transports wrap it (errors.Is-matchable) so the coordinator can tell
// a structurally broken stream from a worker-side failure; either way
// the shard reassigns, never partially merges.
var ErrTruncatedStream = errors.New("distrib: result stream truncated")

// ErrWorkerDraining marks a worker that refused a dispatch or probe
// because it is draining: alive, finishing its in-flight shards, but
// accepting no new work.  The coordinator treats it as
// healthy-but-unavailable — it stops dispatching to the worker without
// declaring it dead.
var ErrWorkerDraining = errors.New("distrib: worker is draining")

// TransportError is the structured failure of one transport call: the
// worker it targeted, the operation that failed, and the cause.  It
// unwraps to the cause, so errors.Is sees sentinels like
// ErrTruncatedStream and ErrWorkerDraining through it.
type TransportError struct {
	// Worker is the worker name (for HTTPTransport, its base URL).
	Worker string
	// Op is the operation that failed: "submit", "stream", "healthz"
	// or "status".
	Op string
	// Err is the underlying cause.
	Err error
}

// Error renders the failure with its worker and operation.
func (e *TransportError) Error() string {
	return fmt.Sprintf("distrib: %s %s: %v", e.Op, e.Worker, e.Err)
}

// Unwrap returns the underlying cause.
func (e *TransportError) Unwrap() error { return e.Err }

// Transport carries jobs from the coordinator to named workers and
// streams their results back.  Two implementations ship: HTTPTransport
// (worker names are base URLs of cmd/sweepd processes) and Loopback
// (in-process workers, for tests and benchmarks — no sockets).  The
// coordinator is transport-agnostic, so a future mesh transport slots
// in without touching dispatch logic.
type Transport interface {
	// Run submits the job to the named worker and calls emit once per
	// finished point until the shard completes.  It returns nil only
	// after the worker signalled clean completion; a truncated stream,
	// an unreachable worker or a worker-side failure is an error (the
	// coordinator's cue to reassign the shard).
	Run(ctx context.Context, worker string, job Job, emit func(PointResult) error) error
	// Healthy probes the named worker's liveness.
	Healthy(ctx context.Context, worker string) error
	// Status fetches the named worker's live telemetry snapshot —
	// shard progress plus, for telemetry-enabled workers, the event
	// rate and router occupancy of the runs in flight.  It doubles as
	// a liveness probe: an unreachable or dead worker is an error.
	Status(ctx context.Context, worker string) (Status, error)
}
