// Package core implements the paper's primary contribution: the reliable
// quantum channel.  A channel connects two points of the quantum datapath
// by distributing high-fidelity EPR pairs to its endpoints; once set up,
// it teleports logical qubits with near-classical latency.
//
// Plan produces the analytical model the paper's abstract promises —
// latency, bandwidth, error rate and resource utilization of a channel —
// from the device parameters, the error-correction level, the
// purification policy and the path length.  The event-driven simulator
// in package netsim measures the same quantities under contention; the
// tests cross-validate the two.
package core

import (
	"fmt"
	"time"

	"repro/internal/ecc"
	"repro/internal/epr"
	"repro/internal/mesh"
	"repro/internal/phys"
	"repro/internal/route"
)

// Spec describes a channel to be planned.  The path is given either
// abstractly (Hops, a straight path with no turns) or concretely (Grid
// with Src/Dst endpoints plus an optional Route policy), in which case
// the planner derives the hop count and turn count from the same
// routing decision the simulator makes, so the closed-form model and
// the measured one agree on geometry.
type Spec struct {
	// Params are the device constants.
	Params phys.Params
	// Hops is the path length in teleporter-grid hops.  Ignored when
	// Grid is set (the routed path determines it).
	Hops int
	// Grid, when non-empty, pins the channel to a concrete mesh: the
	// path runs from Src to Dst under the Route policy.
	Grid mesh.Grid
	// Src and Dst are the channel endpoints on Grid.
	Src, Dst mesh.Coord
	// Route is the routing policy used to derive the concrete path
	// (nil = dimension order, exactly like the simulator's default).
	// Only consulted when Grid is set.
	Route route.Policy
	// TurnCells is the in-router ballistic distance paid per X/Y turn
	// of the routed path (default 20, the simulator's default).
	TurnCells int
	// HopCells is the physical hop span (default 600).
	HopCells int
	// CodeLevel is the Steane concatenation level of the transported
	// logical qubits (default 2).
	CodeLevel int
	// Scheme is the purification placement policy (default
	// EndpointsOnly).
	Scheme epr.Scheme
	// Teleporters, Generators, Purifiers are the per-node resource
	// counts available to this channel, used for the bandwidth model.
	// Zero values default to 16/16/16.
	Teleporters, Generators, Purifiers int
}

// Channel is a planned reliable quantum channel: the paper's four
// metrics plus the derived resource counts.
type Channel struct {
	Spec Spec

	// ErrorRate is the delivered logical-data error per teleportation —
	// the channel's reliability metric (must be under 7.5e-5).
	ErrorRate float64
	// EndpointRounds is the endpoint purification tree depth.
	EndpointRounds int
	// Turns is the number of X/Y direction changes of the planned
	// path: 0 for an abstract straight-line Spec, and the routed
	// path's turn count when the Spec pins Grid/Src/Dst.  Each turn
	// adds one ballistic set-switch to the setup pipeline fill.
	Turns int
	// PairsPerLogical is the EPR pairs delivered to the endpoints per
	// logical-qubit teleportation.
	PairsPerLogical int
	// PairHopsPerLogical is the pair-teleport operations consumed per
	// logical-qubit teleportation (network strain).
	PairHopsPerLogical float64
	// SetupLatency is the uncontended time from the first EPR pair
	// entering the network to the last purified pair being ready.
	SetupLatency time.Duration
	// DataLatency is the logical teleportation time once the channel is
	// up: local operations plus the classical round trip.  This is the
	// paper's "qubit communication time can approach the latency of
	// classical communication".
	DataLatency time.Duration
	// Bandwidth is the sustainable logical-qubit teleportations per
	// second through this channel given its resource counts.
	Bandwidth float64
	// BottleneckStage names the stage limiting Bandwidth: "generator",
	// "teleporter" or "purifier".
	Bottleneck string
}

// Plan builds the analytical channel model.
func Plan(spec Spec) (Channel, error) {
	if spec.HopCells == 0 {
		spec.HopCells = 600
	}
	if spec.CodeLevel == 0 {
		spec.CodeLevel = 2
	}
	if spec.Teleporters == 0 {
		spec.Teleporters = 16
	}
	if spec.Generators == 0 {
		spec.Generators = 16
	}
	if spec.Purifiers == 0 {
		spec.Purifiers = 16
	}
	turns := 0
	if spec.Grid.Tiles() > 0 {
		// Concrete path: the routing policy decides hops and turns,
		// exactly as the simulator would for the same endpoints.
		if spec.TurnCells == 0 {
			spec.TurnCells = 20
		}
		policy := spec.Route
		if policy == nil {
			policy = route.Default()
		}
		dirs, err := policy.Route(spec.Grid, spec.Src, spec.Dst, nil)
		if err != nil {
			return Channel{}, err
		}
		if len(dirs) == 0 {
			return Channel{}, fmt.Errorf("core: channel endpoints %v and %v coincide", spec.Src, spec.Dst)
		}
		spec.Hops = len(dirs)
		turns = route.Turns(dirs)
	}
	if spec.Hops < 1 {
		return Channel{}, fmt.Errorf("core: channel needs at least 1 hop, got %d", spec.Hops)
	}
	if err := spec.Params.Validate(); err != nil {
		return Channel{}, err
	}

	code, err := ecc.Steane(spec.CodeLevel)
	if err != nil {
		return Channel{}, err
	}

	dist := epr.DefaultConfig(spec.Params)
	dist.HopCells = spec.HopCells
	cost := dist.Evaluate(spec.Scheme, spec.Hops)
	if !cost.Feasible {
		return Channel{}, fmt.Errorf("core: no purification depth reaches the threshold over %d hops at these error rates", spec.Hops)
	}

	ch := Channel{
		Spec:           spec,
		ErrorRate:      cost.FinalError,
		EndpointRounds: cost.EndpointRounds,
		Turns:          turns,
	}
	pairsPerQubit := 1 << uint(cost.EndpointRounds)
	ch.PairsPerLogical = pairsPerQubit * code.PhysicalQubits()
	ch.PairHopsPerLogical = cost.TeleportedPairs * float64(code.PhysicalQubits())

	p := spec.Params
	// Stage service times for one EPR pair (pairs flow in parallel
	// across resource units).
	genTime := p.GenerateTime()
	teleTime := p.TeleportTime(spec.HopCells)
	// Endpoint purification processes pairsPerQubit arrivals through one
	// queue purifier: the bottom level dominates with pairsPerQubit/2
	// sequential rounds, plus a drain tail of (rounds-1).
	purifyRound := p.PurifyRoundTime(spec.Hops * spec.HopCells)
	purifyBatch := time.Duration(pairsPerQubit/2+cost.EndpointRounds-1) * purifyRound

	// Setup latency: the first batch fills the pipeline (one generate +
	// one teleport per hop), the remaining pairs stream through the
	// slowest stage at its aggregate rate, and the last batch drains
	// through its endpoint purifier.
	setSize := spec.Teleporters / 2
	if setSize < 1 {
		setSize = 1
	}
	fill := time.Duration(spec.Hops) * (genTime + teleTime)
	// A routed path's turns each add one ballistic set switch to the
	// pipeline fill (turns is 0 for an abstract straight-line Spec, so
	// legacy plans are unchanged).
	fill += time.Duration(turns) * p.BallisticTime(spec.TurnCells)
	totalPairs := ch.PairsPerLogical
	perPair := maxDuration(
		genTime/time.Duration(spec.Generators),
		teleTime/time.Duration(setSize),
		purifyBatch/time.Duration(pairsPerQubit*spec.Purifiers),
	)
	stream := time.Duration(totalPairs-pairsPerQubit) * perPair
	ch.SetupLatency = fill + stream + purifyBatch

	// Data latency: Eq 5 over the full physical distance, with the
	// classical bits crossing the same span.
	span := spec.Hops * spec.HopCells
	ch.DataLatency = p.TeleportTime(span)

	// Bandwidth: the slowest per-stage pair throughput, divided by the
	// pairs a logical teleport consumes.
	genRate := float64(spec.Generators) / genTime.Seconds()
	teleRate := float64(setSize) / teleTime.Seconds()
	purifyRate := float64(spec.Purifiers) * float64(pairsPerQubit) / purifyBatch.Seconds()
	rate, stage := genRate, "generator"
	if teleRate < rate {
		rate, stage = teleRate, "teleporter"
	}
	if purifyRate < rate {
		rate, stage = purifyRate, "purifier"
	}
	ch.Bandwidth = rate / float64(ch.PairsPerLogical)
	ch.Bottleneck = stage
	return ch, nil
}

// String renders a channel plan summary.
func (c Channel) String() string {
	return fmt.Sprintf(
		"channel{%d hops, error %.2e, %d pairs/logical, setup %v, data %v, %.1f logical/s (%s-bound)}",
		c.Spec.Hops, c.ErrorRate, c.PairsPerLogical, c.SetupLatency, c.DataLatency, c.Bandwidth, c.Bottleneck)
}

func maxDuration(ds ...time.Duration) time.Duration {
	m := ds[0]
	for _, d := range ds[1:] {
		if d > m {
			m = d
		}
	}
	return m
}
