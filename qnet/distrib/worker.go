// The worker half of the distributed sweep service: executes one
// shard of run points through the in-process sweep engine, consulting
// the fleet's shared result store, and streams finished points back.

package distrib

import (
	"context"
	"runtime"
	"sync"

	"repro/qnet/simulate"
)

// Worker executes job shards via the in-process simulation engine.  A
// Worker is stateless between jobs and safe for concurrent use; the
// HTTP Server and the Loopback transport both drive one through
// Execute.
type Worker struct {
	store       simulate.Store
	parallel    int
	runParallel int
	newRemote   func(url string) simulate.Store
}

// WorkerOption configures a Worker.
type WorkerOption func(*Worker)

// WithWorkerStore installs the worker's default result store,
// consulted (and written back) for every point of jobs that do not
// name a shared StoreURL of their own.
func WithWorkerStore(st simulate.Store) WorkerOption {
	return func(w *Worker) { w.store = st }
}

// WithWorkerParallelism sets how many points of one job the worker
// simulates concurrently.  Values below 1 (and the default) mean
// GOMAXPROCS.
func WithWorkerParallelism(n int) WorkerOption {
	return func(w *Worker) { w.parallel = n }
}

// WithWorkerRunParallelism runs every simulation of every job on the
// domain-decomposed parallel event engine with n regions
// (simulate.WithParallelism).  Results and cache keys are unchanged —
// parallel runs are byte-identical to serial ones — so a fleet may mix
// workers with different settings against one shared store.  Values
// below 2 (and the default) keep the serial engine.
func WithWorkerRunParallelism(n int) WorkerOption {
	return func(w *Worker) { w.runParallel = n }
}

// NewWorker builds a worker with the given options over the defaults
// (no store, GOMAXPROCS-way parallelism, HTTP remote stores).
func NewWorker(opts ...WorkerOption) *Worker {
	w := &Worker{newRemote: func(url string) simulate.Store { return NewRemoteStore(url) }}
	for _, opt := range opts {
		opt(w)
	}
	return w
}

// storeFor resolves the store one job runs against: the job's shared
// StoreURL when set, else the worker's own.
func (w *Worker) storeFor(job Job) simulate.Store {
	if job.StoreURL != "" {
		return w.newRemote(job.StoreURL)
	}
	return w.store
}

// Execute runs every point of the job's shard and calls emit once per
// finished point, in completion order, serialized (emit is never
// called concurrently).  Points whose simulation fails are emitted
// with Err set and do not abort the shard; Execute itself returns an
// error only for a malformed job, a cancelled context, or an emit
// failure (a broken result stream).  When a store is available —
// per-job via Job.StoreURL or worker-wide via WithWorkerStore — every
// point is looked up before simulating and stored back after, so a
// reassigned shard re-hits the fleet's store for points its previous
// owner already finished.
func (w *Worker) Execute(ctx context.Context, job Job, emit func(PointResult) error) error {
	if err := job.Validate(); err != nil {
		return err
	}
	space, err := job.Space.Space()
	if err != nil {
		return err
	}
	if w.runParallel >= 2 {
		space.Options = append(space.Options, simulate.WithParallelism(w.runParallel))
	}
	pts, err := space.Points()
	if err != nil {
		return err
	}
	store := w.storeFor(job)

	parallel := w.parallel
	if parallel < 1 {
		parallel = runtime.GOMAXPROCS(0)
	}
	if parallel > len(job.Indices) {
		parallel = len(job.Indices)
	}

	// The pool mirrors the sweep engine's shape: a feeder, N point
	// runners, one collector serializing emits.  Execute returns the
	// first emit error (the stream consumer hung up) or ctx.Err().
	jobs := make(chan int)
	results := make(chan PointResult, parallel)
	var wg sync.WaitGroup
	wg.Add(parallel)
	for i := 0; i < parallel; i++ {
		go func() {
			defer wg.Done()
			for idx := range jobs {
				if ctx.Err() != nil {
					return
				}
				pr := w.runPoint(ctx, space, pts[idx], store)
				select {
				case results <- pr:
				case <-ctx.Done():
					return
				}
			}
		}()
	}
	go func() {
		defer close(jobs)
		for _, idx := range job.Indices {
			select {
			case jobs <- idx:
			case <-ctx.Done():
				return
			}
		}
	}()
	go func() {
		wg.Wait()
		close(results)
	}()

	var emitErr error
	emitted := 0
	for pr := range results {
		if emitErr == nil {
			if err := emit(pr); err != nil {
				emitErr = err
			} else {
				emitted++
			}
		}
	}
	if emitErr != nil {
		return emitErr
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if emitted != len(job.Indices) {
		// Runners bailed without a context error: impossible today, but
		// a truncated shard must never read as a complete one.
		return context.Canceled
	}
	return nil
}

// runPoint executes one expanded point against the store (when
// present), mapping simulation failure into the wire error form.
func (w *Worker) runPoint(ctx context.Context, space simulate.Space, pt simulate.Point, store simulate.Store) PointResult {
	m, err := space.Machine(pt)
	if err != nil {
		return PointResult{Index: pt.Index, Err: err.Error()}
	}
	var key simulate.Key
	if store != nil {
		key = m.CacheKey(pt.Program)
		if res, ok := store.Get(key); ok {
			return PointResult{Index: pt.Index, Result: res, Cached: true}
		}
	}
	res, err := m.Run(ctx, pt.Program)
	if err != nil {
		return PointResult{Index: pt.Index, Err: err.Error()}
	}
	if store != nil {
		store.Put(key, res)
	}
	return PointResult{Index: pt.Index, Result: res}
}
