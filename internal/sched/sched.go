// Package sched implements the top-level classical instruction scheduler
// of Section 3.2/5: it takes a logical instruction stream of
// two-logical-qubit operations and issues as many as possible in
// parallel while maintaining program-order dependencies per logical
// qubit.  The router-level concerns (paths, EPR distribution) live in
// packages mesh and netsim; this package only decides what may run when.
package sched

import (
	"fmt"

	"repro/internal/workload"
)

// Scheduler tracks the dependency state of a program.  An op becomes
// ready when the previous op touching each of its qubits has completed.
type Scheduler struct {
	prog workload.Program
	// deps[k] counts uncompleted predecessor ops of op k (0, 1 or 2).
	deps []int
	// succ[k] lists ops directly unblocked by op k's completion.
	succ [][]int

	ready     []int // ready, unissued op indices in program order
	state     []opState
	completed int
}

type opState uint8

const (
	statePending opState = iota
	stateReady
	stateIssued
	stateDone
)

// New builds a scheduler for the program.
func New(prog workload.Program) (*Scheduler, error) {
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	s := &Scheduler{
		prog:  prog,
		deps:  make([]int, len(prog.Ops)),
		succ:  make([][]int, len(prog.Ops)),
		state: make([]opState, len(prog.Ops)),
	}
	last := make([]int, prog.Qubits)
	for i := range last {
		last[i] = -1
	}
	for k, op := range prog.Ops {
		for _, q := range []int{op.A, op.B} {
			if p := last[q]; p >= 0 {
				s.succ[p] = append(s.succ[p], k)
				s.deps[k]++
			}
			last[q] = k
		}
	}
	for k := range prog.Ops {
		if s.deps[k] == 0 {
			s.state[k] = stateReady
			s.ready = append(s.ready, k)
		}
	}
	return s, nil
}

// Len returns the total number of ops.
func (s *Scheduler) Len() int { return len(s.prog.Ops) }

// Completed returns the number of completed ops.
func (s *Scheduler) Completed() int { return s.completed }

// Done reports whether every op has completed.
func (s *Scheduler) Done() bool { return s.completed == len(s.prog.Ops) }

// ReadyCount returns the number of ops ready to issue right now.
func (s *Scheduler) ReadyCount() int { return len(s.ready) }

// Issue pops the oldest ready op (program order), marking it in flight.
// ok is false when nothing is ready.
func (s *Scheduler) Issue() (id int, op workload.Op, ok bool) {
	if len(s.ready) == 0 {
		return 0, workload.Op{}, false
	}
	id = s.ready[0]
	copy(s.ready, s.ready[1:])
	s.ready = s.ready[:len(s.ready)-1]
	s.state[id] = stateIssued
	return id, s.prog.Ops[id], true
}

// Complete marks an issued op as finished, unblocking its dependents.
func (s *Scheduler) Complete(id int) error {
	if id < 0 || id >= len(s.prog.Ops) {
		return fmt.Errorf("sched: op id %d out of range", id)
	}
	if s.state[id] != stateIssued {
		return fmt.Errorf("sched: op %d (%v) completed in state %d, want issued", id, s.prog.Ops[id], s.state[id])
	}
	s.state[id] = stateDone
	s.completed++
	for _, next := range s.succ[id] {
		s.deps[next]--
		if s.deps[next] == 0 {
			s.state[next] = stateReady
			s.ready = append(s.ready, next)
		}
	}
	return nil
}

// Depth returns the dependency-graph depth of the program: the length of
// the longest chain of ops that must execute sequentially.  With
// unlimited communication resources and unit-time ops, execution takes
// exactly Depth steps.
func Depth(prog workload.Program) int {
	level := make([]int, prog.Qubits)
	depth := 0
	for _, op := range prog.Ops {
		l := level[op.A]
		if level[op.B] > l {
			l = level[op.B]
		}
		l++
		level[op.A], level[op.B] = l, l
		if l > depth {
			depth = l
		}
	}
	return depth
}

// MaxParallelism simulates greedy level-by-level execution with unlimited
// resources and returns the largest number of ops in flight at once.
func MaxParallelism(prog workload.Program) (int, error) {
	s, err := New(prog)
	if err != nil {
		return 0, err
	}
	max := 0
	for !s.Done() {
		var batch []int
		for {
			id, _, ok := s.Issue()
			if !ok {
				break
			}
			batch = append(batch, id)
		}
		if len(batch) == 0 {
			return 0, fmt.Errorf("sched: deadlock with %d/%d ops done", s.Completed(), s.Len())
		}
		if len(batch) > max {
			max = len(batch)
		}
		for _, id := range batch {
			if err := s.Complete(id); err != nil {
				return 0, err
			}
		}
	}
	return max, nil
}
