package ecc

import (
	"testing"
	"testing/quick"
)

func TestSteaneLevels(t *testing.T) {
	cases := []struct {
		level, qubits int
	}{{0, 1}, {1, 7}, {2, 49}, {3, 343}}
	for _, c := range cases {
		code, err := Steane(c.level)
		if err != nil {
			t.Fatalf("Steane(%d): %v", c.level, err)
		}
		if got := code.PhysicalQubits(); got != c.qubits {
			t.Errorf("level %d: %d physical qubits, want %d", c.level, got, c.qubits)
		}
	}
}

func TestSteaneRejectsBadLevels(t *testing.T) {
	if _, err := Steane(-1); err == nil {
		t.Error("negative level should be rejected")
	}
	if _, err := Steane(11); err == nil {
		t.Error("absurd level should be rejected")
	}
}

func TestPairsPerLogicalCommunication(t *testing.T) {
	// Paper §5.3: "the expected number of EPR pairs required for the
	// longest communication path is 392 (= pairs for endpoint
	// purification × qubits per logical qubit = 2^3 × 49)".
	code, err := Steane(2)
	if err != nil {
		t.Fatal(err)
	}
	if got := code.RawPairsPerLogicalTeleport(3); got != 392 {
		t.Errorf("raw pairs per level-2 logical teleport with depth-3 purifiers = %d, want 392", got)
	}
	if got := code.PairsPerLogicalTeleport(); got != 49 {
		t.Errorf("high-fidelity pairs per logical teleport = %d, want 49", got)
	}
}

func TestRawPairsNegativeDepthClamps(t *testing.T) {
	code, _ := Steane(1)
	if got := code.RawPairsPerLogicalTeleport(-2); got != 7 {
		t.Errorf("negative depth should clamp to 0 rounds: got %d, want 7", got)
	}
}

func TestThresholdConstant(t *testing.T) {
	if ThresholdError != 7.5e-5 {
		t.Errorf("ThresholdError = %g, want 7.5e-5", ThresholdError)
	}
}

func TestString(t *testing.T) {
	code, _ := Steane(2)
	want := "Steane[[7,1,3]] level 2 (49 physical qubits/logical)"
	if got := code.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

// Property: physical qubit count is multiplicative in level.
func TestConcatenationProperty(t *testing.T) {
	f := func(lRaw uint8) bool {
		l := int(lRaw) % 9
		c1, err1 := Steane(l)
		c2, err2 := Steane(l + 1)
		if err1 != nil || err2 != nil {
			return false
		}
		return c2.PhysicalQubits() == 7*c1.PhysicalQubits()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
