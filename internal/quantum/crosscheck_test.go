package quantum

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/fidelity"
	"repro/internal/phys"
	"repro/internal/purify"
)

// samplePauli draws a Pauli error according to a Bell-diagonal state's
// coefficients and applies it to qubit q: A -> I, B -> Y, C -> X, D -> Z
// (the package fidelity ordering).
func samplePauli(s *State, q int, bell fidelity.Bell, rng *rand.Rand) {
	r := rng.Float64()
	switch {
	case r < bell.A:
		// identity
	case r < bell.A+bell.B:
		s.Y(q)
	case r < bell.A+bell.B+bell.C:
		s.X(q)
	default:
		s.Z(q)
	}
}

// Monte-Carlo entanglement swapping: teleporting one half of a perfect
// EPR pair using a Werner-noisy resource pair must reproduce Eq 3's
// output fidelity (with perfect local operations).  This pins the
// fidelity package's TeleportBell/Teleport models to actual amplitudes.
func TestTeleportBellMatchesAmplitudeMonteCarlo(t *testing.T) {
	perfect := phys.IonTrap2006().WithUniformError(0)
	rng := rand.New(rand.NewSource(23))
	for _, f := range []float64{1.0, 0.95, 0.75} {
		resource := fidelity.Werner(f)
		want := fidelity.TeleportBell(perfect, fidelity.Werner(1), resource).Fidelity()

		const trials = 4000
		var sum float64
		for i := 0; i < trials; i++ {
			// Qubits: (0,1) data pair Φ+; (2,3) resource pair with a
			// sampled Pauli error on qubit 3.
			s, err := NewState(4)
			if err != nil {
				t.Fatal(err)
			}
			s.PrepareEPR(0, 1)
			s.PrepareEPR(2, 3)
			samplePauli(s, 3, resource, rng)
			// Swap: teleport qubit 1 over the resource pair; the
			// surviving pair is (0,3).
			m1, m2 := s.Teleport(1, 2, 3, rng)
			// Fidelity of (0,3) against Φ+: build the reference with the
			// measured qubits in their observed classical states.
			ref, err := NewState(4)
			if err != nil {
				t.Fatal(err)
			}
			ref.PrepareEPR(0, 3)
			if m1 == 1 {
				ref.X(1)
			}
			if m2 == 1 {
				ref.X(2)
			}
			sum += s.FidelityTo(ref)
		}
		got := sum / trials
		// MC standard error ~ sqrt(F(1-F)/n) <= 0.008; use 4 sigma.
		if math.Abs(got-want) > 0.032 {
			t.Errorf("F_resource=%g: amplitude MC fidelity %.4f, Eq 3 predicts %.4f", f, got, want)
		}
	}
}

// Wait-free teleport reference check: the reference construction above
// must give fidelity 1 when the resource pair is perfect.
func TestSwapReferenceConstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for i := 0; i < 20; i++ {
		s, _ := NewState(4)
		s.PrepareEPR(0, 1)
		s.PrepareEPR(2, 3)
		m1, m2 := s.Teleport(1, 2, 3, rng)
		ref, _ := NewState(4)
		ref.PrepareEPR(0, 3)
		if m1 == 1 {
			ref.X(1)
		}
		if m2 == 1 {
			ref.X(2)
		}
		if f := s.FidelityTo(ref); math.Abs(f-1) > 1e-9 {
			t.Fatalf("perfect swap fidelity %g, want 1 (m1=%d m2=%d)", f, m1, m2)
		}
	}
}

// Monte-Carlo purification acceptance: the probability that the two
// measurement bits agree when purifying two Werner(F) pairs must match
// the DEJMPS/BBPSSW success probability N = (A+B)² + (C+D)².
func TestPurificationAcceptanceMatchesFormula(t *testing.T) {
	perfect := phys.IonTrap2006().WithUniformError(0)
	rng := rand.New(rand.NewSource(31))
	for _, f := range []float64{0.95, 0.8, 0.6} {
		in := fidelity.Werner(f)
		_, wantP := purify.DEJMPS{Params: perfect}.Round(in, in)

		const trials = 4000
		accepted := 0
		for i := 0; i < trials; i++ {
			s, err := NewState(4)
			if err != nil {
				t.Fatal(err)
			}
			s.PrepareEPR(0, 1)
			s.PrepareEPR(2, 3)
			samplePauli(s, 1, in, rng)
			samplePauli(s, 3, in, rng)
			// Bilateral CNOT and comparison (Figure 7).  The ideal DEJMPS
			// round additionally applies basis rotations; for Werner
			// inputs the acceptance probability is rotation-invariant,
			// so the plain bilateral-CNOT circuit suffices for this
			// check.
			s.CNOT(0, 2)
			s.CNOT(1, 3)
			if s.Measure(2, rng) == s.Measure(3, rng) {
				accepted++
			}
		}
		got := float64(accepted) / trials
		if math.Abs(got-wantP) > 0.035 {
			t.Errorf("F=%g: amplitude MC acceptance %.4f, formula predicts %.4f", f, got, wantP)
		}
	}
}
