// Package distrib is the distributed sweep service: a coordinator
// that partitions a sweep Space into shards of run points, dispatches
// them to worker processes over a pluggable transport, and merges the
// streamed results back into the same []simulate.SweepPoint contract
// single-process callers already have.
//
// The layer cake, top to bottom:
//
//	Coordinator ── plans shards, dispatches, retries, merges
//	   │ Transport (HTTPTransport over sockets, Loopback in-process)
//	Worker ────── executes a shard via the in-process sweep engine
//	   │ simulate.Store (shared: RemoteStore → the coordinator's store)
//	simulate ──── Machine.Run per point, content-addressed results
//
// Scale-out is nearly free because every run point has been
// content-addressed since the cache layer landed: a point's
// simulate.Key is a host-independent hash of its fully-resolved
// configuration, so any worker may compute any point, a shard
// reassigned from a dead worker re-hits the fleet's shared store for
// the points the dead worker already finished, and a restarted sweep
// resumes idempotently.
//
// The wire protocol is deliberately small (three HTTP endpoints per
// worker — POST /v1/jobs, GET /v1/jobs/{id}/stream as
// newline-delimited JSON, GET /v1/healthz — plus a key/value store
// API on the coordinator), and the Transport interface keeps it
// pluggable: the in-process Loopback transport runs the whole
// subsystem, including injected worker death, without opening a
// socket.
package distrib

import (
	"fmt"
	"strings"

	"repro/qnet"
	"repro/qnet/fault"
	"repro/qnet/route"
	"repro/qnet/simulate"
)

// SpaceSpec is the wire form of a simulate.Space: every dimension in
// plain serializable data (layouts and routing policies by canonical
// name, options as explicit fields), so a coordinator can ship it to
// workers as JSON and both sides expand the identical point list.
type SpaceSpec struct {
	// Grids are the mesh dimensions to sweep.
	Grids []qnet.Grid `json:"grids"`
	// Layouts are the floorplans to sweep, by canonical name
	// ("HomeBase", "MobileQubit"; see LayoutNames).
	Layouts []string `json:"layouts"`
	// Resources are the per-node resource allocations to sweep.
	Resources []simulate.Resources `json:"resources"`
	// Programs are the instruction streams to sweep.
	Programs []qnet.Program `json:"programs"`
	// Depths are the purifier depths to sweep (empty: the engine's
	// default, depth 3).
	Depths []int `json:"depths,omitempty"`
	// Routings are the routing policies to sweep, by canonical name
	// (empty: dimension-order routing).
	Routings []string `json:"routings,omitempty"`
	// Faults are the mesh fault specs to sweep (empty: a healthy mesh).
	// fault.Spec is already plain serializable data, so the wire form is
	// the spec itself; both sides materialize identical per-point fault
	// patterns because patterns are drawn from the point's seed.
	Faults []fault.Spec `json:"faults,omitempty"`
	// Seeds is the seed ensemble (empty: seed 0).
	Seeds []int64 `json:"seeds,omitempty"`
	// FailureRate is the purification failure-injection rate applied
	// machine-wide (the wire form of simulate.WithFailureRate).
	FailureRate float64 `json:"failure_rate,omitempty"`
}

// Space resolves the spec into a runnable simulate.Space, parsing
// layout and routing names and materializing the option fields.
func (s SpaceSpec) Space() (simulate.Space, error) {
	sp := simulate.Space{
		Grids:     s.Grids,
		Resources: s.Resources,
		Programs:  s.Programs,
		Depths:    s.Depths,
		Faults:    s.Faults,
		Seeds:     s.Seeds,
	}
	for _, name := range s.Layouts {
		l, err := ParseLayout(name)
		if err != nil {
			return simulate.Space{}, err
		}
		sp.Layouts = append(sp.Layouts, l)
	}
	for _, name := range s.Routings {
		p, err := route.Parse(name)
		if err != nil {
			// route.Parse's error is a plain string; wrap it into the
			// structured form every other wire-validation failure uses,
			// so coordinators can errors.As-match bad specs uniformly.
			return simulate.Space{}, &qnet.ConfigError{Field: "Routings", Value: name, Reason: err.Error()}
		}
		sp.Routings = append(sp.Routings, p)
	}
	if s.FailureRate != 0 {
		sp.Options = append(sp.Options, simulate.WithFailureRate(s.FailureRate))
	}
	return sp, nil
}

// Size returns the number of points the spec expands to (the product
// of its dimension sizes, with the engine's defaults for empty
// optional dimensions).
func (s SpaceSpec) Size() (int, error) {
	sp, err := s.Space()
	if err != nil {
		return 0, err
	}
	return sp.Size(), nil
}

// ParseLayout resolves a floorplan by the canonical name its String
// method prints ("HomeBase" or "MobileQubit", case-insensitive).
func ParseLayout(name string) (simulate.Layout, error) {
	switch strings.ToLower(name) {
	case "homebase", "home-base":
		return simulate.HomeBase, nil
	case "mobilequbit", "mobile-qubit":
		return simulate.MobileQubit, nil
	default:
		return 0, &qnet.ConfigError{Field: "Layout", Value: name, Reason: `want "HomeBase" or "MobileQubit"`}
	}
}

// LayoutNames renders layouts to their canonical wire names, the
// inverse of ParseLayout.
func LayoutNames(layouts []simulate.Layout) []string {
	out := make([]string, len(layouts))
	for i, l := range layouts {
		out[i] = l.String()
	}
	return out
}

// RoutingNames renders routing policies to their canonical wire
// names (nil canonicalizes to "xy"), the inverse of route.Parse.
func RoutingNames(policies []route.Policy) []string {
	out := make([]string, len(policies))
	for i, p := range policies {
		out[i] = route.NameOf(p)
	}
	return out
}

// Job is one shard dispatch: the full space (so the worker expands the
// identical point list) plus the indices of the points this shard
// owns, and optionally the URL of the fleet's shared result store.
type Job struct {
	// ID identifies the job on the worker that accepted it (assigned
	// by the worker; empty in the submitted body).
	ID string `json:"id,omitempty"`
	// Space is the sweep space the indices refer into.
	Space SpaceSpec `json:"space"`
	// Indices are the Point.Index values of this shard, into the
	// deterministic expansion of Space.
	Indices []int `json:"indices"`
	// StoreURL, when set, is the base URL of the shared remote result
	// store (the coordinator's StoreServer) the worker must consult
	// instead of its local store.
	StoreURL string `json:"store_url,omitempty"`
}

// Validate rejects malformed jobs before any simulation work: an
// index list that is empty or out of the space's range.
func (j Job) Validate() error {
	n, err := j.Space.Size()
	if err != nil {
		return err
	}
	if len(j.Indices) == 0 {
		return &qnet.ConfigError{Field: "Job.Indices", Value: 0, Reason: "shard must contain at least one point"}
	}
	for _, idx := range j.Indices {
		if idx < 0 || idx >= n {
			return &qnet.ConfigError{Field: "Job.Indices", Value: idx, Reason: fmt.Sprintf("point index out of range [0,%d)", n)}
		}
	}
	return nil
}

// PointResult is one finished run point on the wire: the point's index
// into the space's deterministic expansion, its Result, the error
// string for a failed run, and whether the result came from the store
// rather than a fresh simulation.
type PointResult struct {
	// Index is the Point.Index this result belongs to.
	Index int `json:"index"`
	// Result is the run's result (zero when Err is set).
	Result simulate.Result `json:"result"`
	// Err is the failure message of a failed point ("" on success).
	Err string `json:"err,omitempty"`
	// Cached reports that the result was served from the shared store.
	Cached bool `json:"cached,omitempty"`
}
