package simulate

import (
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/qnet"
	"repro/qnet/route"
)

// TestSweepRoutingDimension expands a multi-policy space and asserts
// the routing dimension behaves like every other dimension: the point
// count multiplies, every point carries its policy, distinct policies
// produce distinct cache keys (so the shared cache can never serve one
// policy's result for another), and identical keys only ever come from
// identical policies.
func TestSweepRoutingDimension(t *testing.T) {
	grid := testGrid(t, 4)
	policies := route.Policies()
	space := Space{
		Grids:     []qnet.Grid{grid},
		Layouts:   []Layout{HomeBase},
		Resources: []Resources{{Teleporters: 8, Generators: 8, Purifiers: 4}},
		Programs:  []qnet.Program{qnet.QFT(grid.Tiles())},
		Routings:  policies,
	}
	if space.Size() != len(policies) {
		t.Fatalf("Size() = %d, want %d", space.Size(), len(policies))
	}
	cache := NewCache(0)
	points, err := Sweep(context.Background(), space, WithCache(cache))
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(policies) {
		t.Fatalf("%d points, want %d", len(points), len(policies))
	}
	keys := make(map[Key]string, len(points))
	for _, pt := range points {
		if pt.Err != nil {
			t.Fatalf("%s: %v", pt.Point.RoutingName(), pt.Err)
		}
		m, err := space.machine(pt.Point)
		if err != nil {
			t.Fatal(err)
		}
		key := m.CacheKey(pt.Point.Program)
		if prev, dup := keys[key]; dup {
			t.Fatalf("policies %s and %s share cache key %s — cached results would cross policies",
				prev, pt.Point.RoutingName(), key)
		}
		keys[key] = pt.Point.RoutingName()
	}
	// Every policy simulated exactly once: all misses, no hits.
	if s := cache.Stats(); s.Hits != 0 || s.Misses != uint64(len(policies)) {
		t.Errorf("cache traffic %v, want 0 hits / %d misses", s, len(policies))
	}
	// A repeated sweep is served entirely from the cache, per policy.
	again, err := Sweep(context.Background(), space, WithCache(cache))
	if err != nil {
		t.Fatal(err)
	}
	for i, pt := range again {
		if !pt.Cached {
			t.Errorf("%s: warm point not served from cache", pt.Point.RoutingName())
		}
		if pt.Result != points[i].Result {
			t.Errorf("%s: warm result differs from cold", pt.Point.RoutingName())
		}
	}
}

// TestSweepByDistanceDimension sweeps the per-channel composite policy
// as a routing dimension: distinct thresholds get distinct cache keys,
// and a threshold above every channel distance routes exactly like the
// short policy alone (identical result and identical utilisation).
func TestSweepByDistanceDimension(t *testing.T) {
	grid := testGrid(t, 4)
	near, err := route.ByDistance(route.XYOrder(), route.YXOrder(), 3)
	if err != nil {
		t.Fatal(err)
	}
	far, err := route.ByDistance(route.XYOrder(), route.YXOrder(), 99)
	if err != nil {
		t.Fatal(err)
	}
	space := Space{
		Grids:     []qnet.Grid{grid},
		Layouts:   []Layout{HomeBase},
		Resources: []Resources{{Teleporters: 8, Generators: 8, Purifiers: 4}},
		Programs:  []qnet.Program{qnet.QFT(grid.Tiles())},
		Routings:  []route.Policy{route.XYOrder(), near, far},
	}
	points, err := Sweep(context.Background(), space)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("%d points, want 3", len(points))
	}
	keys := make(map[Key]string, len(points))
	results := make(map[string]Result, len(points))
	for _, pt := range points {
		if pt.Err != nil {
			t.Fatalf("%s: %v", pt.Point.RoutingName(), pt.Err)
		}
		m, err := space.machine(pt.Point)
		if err != nil {
			t.Fatal(err)
		}
		key := m.CacheKey(pt.Point.Program)
		if prev, dup := keys[key]; dup {
			t.Fatalf("policies %s and %s share cache key %s", prev, pt.Point.RoutingName(), key)
		}
		keys[key] = pt.Point.RoutingName()
		results[pt.Point.RoutingName()] = pt.Result
	}
	// Threshold 99 exceeds every Manhattan distance on a 4x4 grid, so
	// the composite degenerates to pure XY.
	if results["bydist(xy,yx,99)"] != results["xy"] {
		t.Error("bydist with unreachable threshold differs from the pure short policy")
	}
	// Threshold 3 splits the channels between XY and YX, which changes
	// turn counts on this workload; the result must differ from pure XY.
	if results["bydist(xy,yx,3)"] == results["xy"] {
		t.Error("bydist with a splitting threshold routed identically to pure XY")
	}
}

// TestSweepRoutingDefaultMatchesExplicitXY asserts the nil default of
// the routing dimension and an explicit XYOrder produce identical
// results and identical cache keys.
func TestSweepRoutingDefaultMatchesExplicitXY(t *testing.T) {
	grid := testGrid(t, 4)
	prog := qnet.QFT(grid.Tiles())
	def, err := New(grid, HomeBase)
	if err != nil {
		t.Fatal(err)
	}
	xy, err := New(grid, HomeBase, WithRouting(route.XYOrder()))
	if err != nil {
		t.Fatal(err)
	}
	if def.CacheKey(prog) != xy.CacheKey(prog) {
		t.Error("nil default and explicit XYOrder hash differently")
	}
	a, err := def.Run(context.Background(), prog)
	if err != nil {
		t.Fatal(err)
	}
	b, err := xy.Run(context.Background(), prog)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("nil default and explicit XYOrder produce different results")
	}
}

// TestCacheMachineRunConsultsAttachedCache asserts Machine.Run serves
// warm runs from the cache installed with WithCache: the second run is
// a hit, returns the identical result, and a Session on the same
// machine shares the attachment.
func TestCacheMachineRunConsultsAttachedCache(t *testing.T) {
	grid := testGrid(t, 4)
	prog := qnet.QFT(grid.Tiles())
	cache := NewCache(0)
	m, err := New(grid, HomeBase, WithResources(8, 8, 4), WithCache(cache))
	if err != nil {
		t.Fatal(err)
	}
	if m.Cache() != cache {
		t.Fatal("Cache() does not return the attached cache")
	}
	cold, err := m.Run(context.Background(), prog)
	if err != nil {
		t.Fatal(err)
	}
	if s := cache.Stats(); s.Misses != 1 || s.Hits != 0 {
		t.Fatalf("after cold run: %v, want 1 miss", s)
	}
	warm, err := m.Run(context.Background(), prog)
	if err != nil {
		t.Fatal(err)
	}
	if warm != cold {
		t.Error("warm run differs from cold run")
	}
	if s := cache.Stats(); s.Hits != 1 {
		t.Errorf("after warm run: %v, want 1 hit", s)
	}
	// Sessions derive distinct per-run seeds; with failure injection
	// off the key canonicalizes the seed away, so session runs hit the
	// same entry.
	if _, err := m.NewSession().Run(context.Background(), prog); err != nil {
		t.Fatal(err)
	}
	if s := cache.Stats(); s.Hits != 2 {
		t.Errorf("after session run: %v, want 2 hits", s)
	}
}

// TestCacheMachineRunDiskWarm asserts the cross-process story behind
// `qnetsim -cache-dir`: a second machine built on the same directory
// serves the first machine's result from disk.
func TestCacheMachineRunDiskWarm(t *testing.T) {
	grid := testGrid(t, 4)
	prog := qnet.QFT(grid.Tiles())
	dir := t.TempDir()
	cold, err := New(grid, HomeBase, WithResources(8, 8, 4), WithCacheDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	res, err := cold.Run(context.Background(), prog)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := New(grid, HomeBase, WithResources(8, 8, 4), WithCacheDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	got, err := warm.Run(context.Background(), prog)
	if err != nil {
		t.Fatal(err)
	}
	if got != res {
		t.Error("disk-warm run differs from the original")
	}
	if s := warm.Cache().Stats(); s.Hits != 1 || s.DiskHits != 1 {
		t.Errorf("warm machine stats %v, want 1 disk hit", s)
	}
}

// diskSize sums the store's *.json sizes.
func diskSize(t *testing.T, dir string) int64 {
	t.Helper()
	names, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, name := range names {
		fi, err := os.Stat(name)
		if err != nil {
			t.Fatal(err)
		}
		total += fi.Size()
	}
	return total
}

// TestCacheDiskEvictionByBytes asserts a max-bytes store never
// outgrows its budget: after many Puts the directory stays under the
// cap, the survivors are the most recently used entries, and every
// surviving file still round-trips.
func TestCacheDiskEvictionByBytes(t *testing.T) {
	dir := t.TempDir()
	// Measure one entry's size to pick a budget of ~3 entries.
	probe, err := NewDiskCache(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	res := Result{Exec: time.Second, Ops: 1}
	probe.Put(Key{0xff}, res)
	entryBytes := diskSize(t, probe.Dir())
	if entryBytes == 0 {
		t.Fatal("probe entry has zero size")
	}
	budget := 3*entryBytes + entryBytes/2

	c, err := NewDiskCache(dir, 0, WithMaxBytes(budget))
	if err != nil {
		t.Fatal(err)
	}
	var keys []Key
	for i := 0; i < 10; i++ {
		k := Key{byte(i + 1)}
		keys = append(keys, k)
		c.Put(k, Result{Exec: time.Duration(i) * time.Second, Ops: i})
		if got := diskSize(t, dir); got > budget {
			t.Fatalf("after put %d the store holds %d bytes, budget %d", i, got, budget)
		}
	}
	if s := c.Stats(); s.DiskEvictions == 0 {
		t.Error("no evictions recorded despite exceeding the budget")
	}
	// The newest entry must have survived and still round-trip from a
	// fresh cache (pure disk read).
	fresh, err := NewDiskCache(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := fresh.Get(keys[9]); !ok || got.Ops != 9 {
		t.Errorf("newest entry missing after eviction: ok=%v res=%+v", ok, got)
	}
}

// TestCacheDiskEvictionByAge asserts a max-age store drops stale
// entries at construction and keeps fresh ones.
func TestCacheDiskEvictionByAge(t *testing.T) {
	dir := t.TempDir()
	writer, err := NewDiskCache(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	stale, fresh := Key{1}, Key{2}
	writer.Put(stale, Result{Ops: 1})
	writer.Put(fresh, Result{Ops: 2})
	old := time.Now().Add(-2 * time.Hour)
	if err := os.Chtimes(filepath.Join(dir, stale.String()+".json"), old, old); err != nil {
		t.Fatal(err)
	}

	c, err := NewDiskCache(dir, 0, WithMaxAge(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(stale); ok {
		t.Error("stale entry survived the age bound")
	}
	if got, ok := c.Get(fresh); !ok || got.Ops != 2 {
		t.Errorf("fresh entry lost: ok=%v res=%+v", ok, got)
	}
	if s := c.Stats(); s.DiskEvictions != 1 {
		t.Errorf("DiskEvictions = %d, want 1", s.DiskEvictions)
	}
}

// TestCacheDiskEvictionKeepsRecentlyRead asserts reads refresh the LRU
// order: an old-but-read entry outlives an old-unread one when the
// byte budget forces an eviction.
func TestCacheDiskEvictionKeepsRecentlyRead(t *testing.T) {
	dir := t.TempDir()
	writer, err := NewDiskCache(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	read, unread := Key{1}, Key{2}
	writer.Put(read, Result{Ops: 1})
	writer.Put(unread, Result{Ops: 2})
	old := time.Now().Add(-time.Hour)
	for _, k := range []Key{read, unread} {
		if err := os.Chtimes(filepath.Join(dir, k.String()+".json"), old, old); err != nil {
			t.Fatal(err)
		}
	}
	size := diskSize(t, dir)

	// A budget of ~2 entries; reading `read` through a bounded cache
	// refreshes its mtime, then one more Put forces an eviction.
	c, err := NewDiskCache(dir, 0, WithMaxBytes(size))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(read); !ok {
		t.Fatal("seed entry missing")
	}
	c.Put(Key{3}, Result{Ops: 3})

	fresh, err := NewDiskCache(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := fresh.Get(read); !ok {
		t.Error("recently read entry was evicted before the unread one")
	}
	if _, ok := fresh.Get(unread); ok {
		t.Error("unread entry survived while the budget was exceeded")
	}
}

// TestCacheDiskEvictionStartupScan asserts a bounded cache opened over
// an over-budget directory prunes it immediately (the long-lived-store
// case of ROADMAP's PR 2 follow-on).
func TestCacheDiskEvictionStartupScan(t *testing.T) {
	dir := t.TempDir()
	writer, err := NewDiskCache(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		writer.Put(Key{byte(i + 1)}, Result{Ops: i})
		// Stagger mtimes so LRU order is well defined.
		ts := time.Now().Add(time.Duration(i-8) * time.Minute)
		if err := os.Chtimes(filepath.Join(dir, (Key{byte(i + 1)}).String()+".json"), ts, ts); err != nil {
			t.Fatal(err)
		}
	}
	budget := diskSize(t, dir) / 2
	if _, err := NewDiskCache(dir, 0, WithMaxBytes(budget)); err != nil {
		t.Fatal(err)
	}
	if got := diskSize(t, dir); got > budget {
		t.Errorf("startup scan left %d bytes, budget %d", got, budget)
	}
	// The newest entry survives the startup prune.
	fresh, err := NewDiskCache(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := fresh.Get(Key{8}); !ok {
		t.Error("newest entry pruned at startup")
	}
}
