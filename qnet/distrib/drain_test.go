package distrib

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/qnet/simulate"
)

// TestLoopbackDrainFailover: a draining worker refuses new shards with
// ErrWorkerDraining; the coordinator treats it as healthy-but-
// unavailable (never dead), finishes the sweep on the rest of the
// fleet, and the merged output is unchanged.
func TestLoopbackDrainFailover(t *testing.T) {
	spec := testSpec(t)
	want := canonicalPoints(t, singleProcess(t, spec))

	store := simulate.NewCache(0)
	lb := NewLoopback()
	lb.Add("w0", NewWorker(WithWorkerStore(store)))
	lb.Add("w1", NewWorker(WithWorkerStore(store)))
	lb.Drain("w0")

	coord, err := NewCoordinator(lb, []string{"w0", "w1"},
		WithSharedStore(store, ""),
		WithShards(4),
		WithRetryBackoff(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	points, rep, err := coord.Sweep(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if got := canonicalPoints(t, points); string(got) != string(want) {
		t.Fatalf("point set with a draining worker differs:\n got %s\nwant %s", got, want)
	}
	if len(rep.DrainingWorkers) != 1 || rep.DrainingWorkers[0] != "w0" {
		t.Fatalf("draining workers %v, want [w0]", rep.DrainingWorkers)
	}
	if len(rep.DeadWorkers) != 0 {
		t.Fatalf("draining worker was declared dead: %v", rep.DeadWorkers)
	}
	if rep.ShardsByWorker["w1"] != 4 {
		t.Fatalf("survivor should own all 4 shards: %v", rep.ShardsByWorker)
	}
	// A drain refusal is not a failed attempt: no reassignments, no
	// quarantines.
	if rep.Reassignments != 0 || rep.Quarantines != 0 {
		t.Fatalf("drain refusal counted as failure: %s", rep)
	}
	t.Logf("report: %s", rep)
}

// TestAllWorkersDrainingFails: a fleet with every worker draining must
// fail the sweep promptly (workers are healthy, so nothing would ever
// mark them dead — the drain path itself has to detect the stall).
func TestAllWorkersDrainingFails(t *testing.T) {
	spec := testSpec(t)
	lb := NewLoopback()
	lb.Add("w0", NewWorker())
	lb.Drain("w0")
	coord, err := NewCoordinator(lb, []string{"w0"}, WithRetryBackoff(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	var sweepErr error
	go func() {
		defer close(done)
		_, _, sweepErr = coord.Sweep(context.Background(), spec)
	}()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("sweep hung with the whole fleet draining")
	}
	if sweepErr == nil {
		t.Fatal("sweep succeeded with the whole fleet draining")
	}
	if !strings.Contains(sweepErr.Error(), "draining") {
		t.Fatalf("want a draining-fleet error, got %v", sweepErr)
	}
}

// TestHTTPServerDrain covers the server side of graceful shutdown: a
// draining server answers healthz with 503 "draining", refuses new
// submissions the same way, keeps /v1/status alive with Draining set,
// and Drain blocks until every accepted job has streamed its terminal
// line.
func TestHTTPServerDrain(t *testing.T) {
	spec := testSpec(t)
	srv := NewServer(NewWorker())
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	tr := NewHTTPTransport()

	if err := tr.Healthy(context.Background(), ts.URL); err != nil {
		t.Fatalf("healthy before drain: %v", err)
	}

	// Accept one job pre-drain, but do not read its stream yet.
	resp := submitJob(t, ts.URL, spec, []int{0})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("pre-drain submit: status %d", resp.StatusCode)
	}
	var accepted struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&accepted); err != nil || accepted.ID == "" {
		t.Fatalf("accept body: %v", err)
	}
	resp.Body.Close()

	srv.StartDrain()
	if !srv.Draining() {
		t.Fatal("Draining() false after StartDrain")
	}

	// healthz now refuses with the draining marker...
	err := tr.Healthy(context.Background(), ts.URL)
	if !errors.Is(err, ErrWorkerDraining) {
		t.Fatalf("healthz during drain: %v, want ErrWorkerDraining", err)
	}
	var terr *TransportError
	if !errors.As(err, &terr) || terr.Op != "healthz" {
		t.Fatalf("healthz drain error not structured: %#v", err)
	}
	// ...new submissions are refused the same way...
	resp2 := submitJob(t, ts.URL, spec, []int{1})
	b, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusServiceUnavailable || !strings.Contains(string(b), drainingBody) {
		t.Fatalf("submit during drain: status %d body %q", resp2.StatusCode, b)
	}
	// ...the transport maps that refusal to ErrWorkerDraining...
	err = tr.Run(context.Background(), ts.URL, Job{Space: spec, Indices: []int{1}},
		func(PointResult) error { return nil })
	if !errors.Is(err, ErrWorkerDraining) {
		t.Fatalf("Run during drain: %v, want ErrWorkerDraining", err)
	}
	// ...but status stays answerable, flagged draining.
	st, err := tr.Status(context.Background(), ts.URL)
	if err != nil {
		t.Fatalf("status during drain: %v", err)
	}
	if !st.Draining {
		t.Fatal("Status.Draining false during drain")
	}

	// Drain must not complete while the accepted job's stream is unread.
	shortCtx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	if err := srv.Drain(shortCtx); err == nil {
		t.Fatal("Drain returned with an unstreamed job outstanding")
	}
	cancel()

	// Reading the stream through its terminal line completes the drain.
	streamResp, err := http.Get(ts.URL + jobsPath + "/" + accepted.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, streamResp.Body)
	streamResp.Body.Close()
	drainCtx, cancel2 := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel2()
	if err := srv.Drain(drainCtx); err != nil {
		t.Fatalf("Drain after stream consumed: %v", err)
	}
}

// TestHTTPCoordinatorDrainFailover runs the drain path end to end over
// real HTTP: one of two sweepd-style servers is draining, and the
// coordinator completes the sweep on the other, reporting the drained
// worker as draining, not dead.
func TestHTTPCoordinatorDrainFailover(t *testing.T) {
	spec := testSpec(t)
	want := canonicalPoints(t, singleProcess(t, spec))

	store := simulate.NewCache(0)
	storeSrv := httptest.NewServer(NewStoreServer(store).Handler())
	defer storeSrv.Close()

	var urls []string
	var servers []*Server
	for i := 0; i < 2; i++ {
		srv := NewServer(NewWorker())
		defer srv.Close()
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		urls = append(urls, ts.URL)
		servers = append(servers, srv)
	}
	servers[0].StartDrain()

	coord, err := NewCoordinator(NewHTTPTransport(), urls,
		WithSharedStore(store, storeSrv.URL),
		WithShards(4),
		WithRetryBackoff(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	points, rep, err := coord.Sweep(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if got := canonicalPoints(t, points); string(got) != string(want) {
		t.Fatalf("point set with a draining HTTP worker differs:\n got %s\nwant %s", got, want)
	}
	if len(rep.DrainingWorkers) != 1 || rep.DrainingWorkers[0] != urls[0] {
		t.Fatalf("draining workers %v, want [%s]", rep.DrainingWorkers, urls[0])
	}
	if len(rep.DeadWorkers) != 0 {
		t.Fatalf("draining worker declared dead: %v", rep.DeadWorkers)
	}
	t.Logf("report: %s", rep)
}

// submitJob POSTs one job to a worker server.
func submitJob(t *testing.T, base string, spec SpaceSpec, indices []int) *http.Response {
	t.Helper()
	data, err := json.Marshal(Job{Space: spec, Indices: indices})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+jobsPath, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}
