package router

import (
	"testing"

	"repro/internal/mesh"
	"repro/internal/phys"
	"repro/internal/sim"
)

// loadNode builds a 4-teleporter node with 2 storage units per incoming
// link for the load-accounting tests.
func loadNode(t *testing.T) *Node {
	t.Helper()
	engine := sim.New()
	n, err := New(engine, mesh.Coord{X: 1, Y: 1},
		[]mesh.Direction{mesh.East, mesh.West, mesh.North, mesh.South},
		Config{Teleporters: 4, StorageUnits: 2, TurnCells: 20, Params: phys.IonTrap2006()})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// TestTurnPenaltyChargesPerCall asserts the ballistic turn penalty is
// a fixed per-turn latency and that every charge is counted exactly
// once: n calls mean n turns, each costing BallisticTime(TurnCells),
// and zero calls mean a zero count (a straight-line path never pays).
func TestTurnPenaltyChargesPerCall(t *testing.T) {
	n := loadNode(t)
	if n.Turns() != 0 {
		t.Fatalf("fresh node reports %d turns", n.Turns())
	}
	want := phys.IonTrap2006().BallisticTime(20)
	for i := 1; i <= 3; i++ {
		if got := n.TurnPenalty(); got != want {
			t.Errorf("turn %d: penalty %v, want %v", i, got, want)
		}
		if n.Turns() != uint64(i) {
			t.Errorf("after %d charges: count %d", i, n.Turns())
		}
	}
}

// TestAxisLoadAccountsServiceAndQueue asserts AxisLoad reflects both
// in-service and waiting jobs, normalized by the set capacity, and
// stays per-axis.
func TestAxisLoadAccountsServiceAndQueue(t *testing.T) {
	n := loadNode(t)
	if n.AxisLoad(0) != 0 || n.AxisLoad(1) != 0 {
		t.Fatalf("idle node reports load %v/%v", n.AxisLoad(0), n.AxisLoad(1))
	}
	// The X set has 2 units (4 teleporters split across two axes).
	// Occupy both, then queue a third job.
	x := n.TeleporterSet(0)
	for i := 0; i < 3; i++ {
		x.Acquire(func() {})
	}
	if got := n.AxisLoad(0); got != 1.5 {
		t.Errorf("AxisLoad(0) = %v, want 1.5 (2 busy + 1 queued over capacity 2)", got)
	}
	if got := n.AxisLoad(1); got != 0 {
		t.Errorf("AxisLoad(1) = %v, want 0 (loads must not leak across axes)", got)
	}
}

// TestStorageLoadAccountsCreditsAndWaiters asserts StorageLoad tracks
// taken credits plus queued acquirers, and returns zero for absent
// links.
func TestStorageLoadAccountsCreditsAndWaiters(t *testing.T) {
	n := loadNode(t)
	s := n.Storage(mesh.East)
	if got := n.StorageLoad(mesh.East); got != 0 {
		t.Fatalf("empty storage load %v", got)
	}
	s.Acquire(func() {})
	if got := n.StorageLoad(mesh.East); got != 0.5 {
		t.Errorf("half-full storage load %v, want 0.5", got)
	}
	s.Acquire(func() {})
	s.Acquire(func() {}) // queued: no credits left
	if got := n.StorageLoad(mesh.East); got != 1.5 {
		t.Errorf("overloaded storage load %v, want 1.5", got)
	}
	// A border node without a link in some direction reports zero.
	engine := sim.New()
	border, err := New(engine, mesh.Coord{X: 0, Y: 0}, []mesh.Direction{mesh.East},
		Config{Teleporters: 4, StorageUnits: 2, Params: phys.IonTrap2006()})
	if err != nil {
		t.Fatal(err)
	}
	if got := border.StorageLoad(mesh.West); got != 0 {
		t.Errorf("absent link storage load %v, want 0", got)
	}
}

// TestLoadsExceedOneUnderBacklog pins the route.Loads contract in the
// deep-backlog regime: AxisLoad and StorageLoad are counter-over-
// capacity ratios, NOT bounded fractions, and grow past 1.0 with every
// queued job.  Consumers that need [0, 1] — the congestion heatmap's
// color scale — must clamp at their own normalization layer
// (trace.Clamp01); the contract here is that the raw signal keeps
// ranking congested nodes even when every candidate is saturated.
func TestLoadsExceedOneUnderBacklog(t *testing.T) {
	// The X teleporter set has capacity 2 and East storage has limit 2,
	// so `acquires` jobs mean max(acquires-2, 0) backlogged ones.
	cases := []struct {
		acquires int
		want     float64
	}{
		{0, 0},
		{1, 0.5},
		{2, 1}, // saturated, nothing queued
		{3, 1.5},
		{4, 2}, // one full extra wave queued
		{6, 3}, // deep backlog keeps scaling linearly
	}
	for _, c := range cases {
		n := loadNode(t)
		x := n.TeleporterSet(0)
		s := n.Storage(mesh.East)
		for i := 0; i < c.acquires; i++ {
			x.Acquire(func() {})
			s.Acquire(func() {})
		}
		if got := n.AxisLoad(0); got != c.want {
			t.Errorf("%d acquires: AxisLoad(0) = %v, want %v", c.acquires, got, c.want)
		}
		if got := n.StorageLoad(mesh.East); got != c.want {
			t.Errorf("%d acquires: StorageLoad(East) = %v, want %v", c.acquires, got, c.want)
		}
	}
}

// TestOccupancyAggregatesLoadCounters asserts Occupancy sums, in
// batches, exactly the counters AxisLoad and StorageLoad normalize —
// the invariant that makes the telemetry tracer's occupancy series and
// adaptive routing's load view two readings of one signal.
func TestOccupancyAggregatesLoadCounters(t *testing.T) {
	n := loadNode(t)
	if got := n.Occupancy(); got != 0 {
		t.Fatalf("idle node occupancy %d, want 0", got)
	}
	// 3 jobs on the X set (2 busy + 1 queued), 1 on the Y set, and 5
	// storage acquires on East (2 credits + 3 waiters): 9 batches total.
	for i := 0; i < 3; i++ {
		n.TeleporterSet(0).Acquire(func() {})
	}
	n.TeleporterSet(1).Acquire(func() {})
	for i := 0; i < 5; i++ {
		n.Storage(mesh.East).Acquire(func() {})
	}
	if got := n.Occupancy(); got != 9 {
		t.Errorf("occupancy %d, want 9", got)
	}
	// Cross-check against the normalized views: occupancy must equal
	// the denormalized sum of every axis and storage load.
	sum := 0.0
	for axis := 0; axis < 2; axis++ {
		sum += n.AxisLoad(axis) * float64(n.TeleporterSet(axis).Capacity())
	}
	for _, d := range []mesh.Direction{mesh.East, mesh.West, mesh.North, mesh.South} {
		if s := n.Storage(d); s != nil {
			sum += n.StorageLoad(d) * float64(s.Limit())
		}
	}
	if int(sum) != n.Occupancy() {
		t.Errorf("denormalized load sum %v != occupancy %d", sum, n.Occupancy())
	}
}
