package purify

import (
	"fmt"

	"repro/internal/fidelity"
)

// QueuePurifier is the robust queue-based purifier of the paper's
// Figure 14.  A purification tree of depth n is implemented with n
// hardware purifiers instead of 2^n - 1: incoming pairs are purified at
// level L0; successes move to L1 and are purified there, and so on.
// Failed purifications simply discard both pairs, and the subtree is
// rebuilt naturally by later arrivals.  The cost is latency: the x
// purifications needed at L0 happen sequentially.
//
// The QueuePurifier is a state machine; time is accounted by the caller
// (each purification step it reports costs one purification round of
// latency).  Randomness is injected through the Decide hook so that
// discrete-event simulations stay deterministic under a seeded RNG and
// analytical studies can force expected-value behaviour.
type QueuePurifier struct {
	proto  Protocol
	levels []slot
	// Decide returns whether a purification with the given success
	// probability succeeds.  If nil, purification always succeeds
	// (the expected-value pipeline view used for capacity planning).
	Decide func(pSuccess float64) bool

	offered   int
	produced  int
	purifies  int
	discarded int
}

type slot struct {
	occupied bool
	state    fidelity.Bell
}

// NewQueuePurifier builds a queue purifier of the given depth (number of
// levels, i.e. purification rounds applied to every emitted pair).  The
// paper's simulations use depth 3.
func NewQueuePurifier(proto Protocol, depth int) (*QueuePurifier, error) {
	if depth < 1 {
		return nil, fmt.Errorf("purify: queue purifier depth must be >= 1, got %d", depth)
	}
	if proto == nil {
		return nil, fmt.Errorf("purify: queue purifier needs a protocol")
	}
	return &QueuePurifier{proto: proto, levels: make([]slot, depth)}, nil
}

// Depth returns the number of levels.
func (q *QueuePurifier) Depth() int { return len(q.levels) }

// OfferResult describes what happened when a pair was offered to the
// queue purifier.
type OfferResult struct {
	// Purifications is the number of purification operations performed
	// as the pair cascaded up the levels.  Each costs one purification
	// round of latency at the caller's clock.
	Purifications int
	// Output is the fully purified pair emitted from the top level, if
	// any.
	Output fidelity.Bell
	// Emitted reports whether Output is valid.
	Emitted bool
}

// Offer feeds one raw pair into level 0 and cascades any purifications it
// triggers.  At most one purification per level can trigger per offer, so
// Purifications <= Depth().
func (q *QueuePurifier) Offer(pair fidelity.Bell) OfferResult {
	q.offered++
	var res OfferResult
	current := pair
	for lvl := 0; lvl < len(q.levels); lvl++ {
		s := &q.levels[lvl]
		if !s.occupied {
			s.occupied = true
			s.state = current
			return res
		}
		// Two pairs at this level: purify them.
		out, ps := q.proto.Round(s.state, current)
		s.occupied = false
		q.purifies++
		res.Purifications++
		if !q.decide(ps) {
			q.discarded += 2
			return res
		}
		current = out
	}
	// Cascaded out of the top level: a fully purified pair.
	q.produced++
	res.Output = current
	res.Emitted = true
	return res
}

func (q *QueuePurifier) decide(p float64) bool {
	if q.Decide == nil {
		return true
	}
	return q.Decide(p)
}

// Reset empties all levels and clears statistics.
func (q *QueuePurifier) Reset() {
	for i := range q.levels {
		q.levels[i] = slot{}
	}
	q.offered, q.produced, q.purifies, q.discarded = 0, 0, 0, 0
}

// Stats reports cumulative counters: pairs offered, fully purified pairs
// emitted, purification operations performed, and pairs lost to failed
// purifications.
func (q *QueuePurifier) Stats() (offered, produced, purifies, discarded int) {
	return q.offered, q.produced, q.purifies, q.discarded
}

// Occupancy returns the number of levels currently holding a waiting
// pair.
func (q *QueuePurifier) Occupancy() int {
	n := 0
	for _, s := range q.levels {
		if s.occupied {
			n++
		}
	}
	return n
}

// PairsPerOutput returns the number of raw input pairs per emitted pair
// in the always-succeeding limit: 2^depth.
func (q *QueuePurifier) PairsPerOutput() int { return TreePairs(len(q.levels)) }
