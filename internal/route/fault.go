// Fault-adaptive routing: an escape-channel (up*/down*) extension of
// the negative-first turn model that routes around dead links.
//
// The shipped minimal policies assume every mesh link is live; on a
// mesh with dead links their paths can cross a hole and the run fails
// (structurally, not silently — netsim validates paths against the
// fault model).  FaultAdaptive instead routes on the live topology:
//
// Every tile gets an escape rank — its BFS level from tile 0 over live
// links (internal/fault precomputes these).  Order tiles by the key
// (rank, row-major index); the key is a total order, so every directed
// link is either "up" (toward a smaller key) or "down" (toward a
// larger one).  A legal path is zero or more up hops followed by zero
// or more down hops — the classic up*/down* rule (Autonet; the
// spanning-tree member of Duato's escape-channel family).  The policy
// BFSes the (tile, phase) state graph — phase "up" may continue up or
// switch down, phase "down" must stay down — and returns the shortest
// legal path, tie-broken by fixed direction order, so routes are a
// deterministic function of (grid, fault pattern, src, dst).
//
// # Deadlock freedom
//
// A batch holds its storage credit at the current tile while it waits
// for one at the next, so a deadlock needs a cycle of channels each
// waiting on the next.  Under up*/down* no such cycle exists: along
// any legal path the tile keys strictly decrease, then strictly
// increase, so a dependency chain of up-phase waits descends the key
// order and a chain of down-phase waits ascends it — and the one
// allowed phase switch (up to down) cannot close a cycle because the
// forbidden down-to-up switch is exactly the edge every cycle would
// need.  This is the same argument negative-first makes with the
// (x+y, x) order; escape ranks generalize it to a mesh with holes.
//
// # Negative-first compatibility
//
// On a healthy mesh the BFS levels from tile 0 are exactly rank(c) =
// c.X + c.Y, adjacent tiles always differ by one, and "up" links are
// precisely the West/North hops — so legal escape paths coincide with
// negative-first paths and FaultAdaptive's shortest legal route has
// minimal (Manhattan) length whenever a minimal negative-first path
// exists.  The escape extension costs nothing until a link dies.
package route

import (
	"repro/internal/fault"
	"repro/internal/mesh"
)

// Faults exposes a run's materialized fault pattern to routing.
// *fault.Model implements it; a nil Faults means a healthy mesh (every
// on-grid link live, ranks = distance from tile 0).
type Faults interface {
	// Dead reports whether the link leaving c in direction d is dead
	// (off-grid hops count as dead).
	Dead(c mesh.Coord, d mesh.Direction) bool
	// Rank returns the tile's escape rank: its BFS distance from tile 0
	// over live links, or -1 for a tile dead links disconnected from
	// tile 0.
	Rank(c mesh.Coord) int
}

// FaultAware is the optional capability interface a Policy implements
// to accept a fault pattern: RouteFaulty routes on the live topology,
// avoiding dead links.  The simulator calls RouteFaulty instead of
// Route whenever the run has a fault model and the policy declares the
// capability; policies without it keep their fault-oblivious paths,
// which netsim then validates against the model (a blocked path is a
// structured error, not a hang).
type FaultAware interface {
	// RouteFaulty produces a hop sequence from src to dst that crosses
	// no dead link of f.  A nil f means a healthy mesh.  Implementations
	// must stay deadlock-free under blocking flow control for ANY fault
	// pattern — the up*/down* escape ordering is the shipped way to get
	// that — and must return a structured error (not a detour through a
	// dead link) when f disconnects src from dst.
	RouteFaulty(g mesh.Grid, src, dst mesh.Coord, f Faults, loads Loads) ([]mesh.Direction, error)
}

// faultAdaptive is the escape-channel policy.
type faultAdaptive struct{}

// FaultAdaptive returns the fault-adaptive escape-channel policy: it
// routes around dead links on the shortest up*/down*-legal path over
// the live topology (see the package comment's deadlock-freedom
// argument), and on a healthy mesh behaves as a negative-first minimal
// policy.  It is not part of Policies() — the healthy-mesh comparison
// set — but Parse recognizes "fault-adaptive", and it is the policy of
// choice for any simulation with dead links.
func FaultAdaptive() Policy { return faultAdaptive{} }

// Name returns "fault-adaptive".
func (faultAdaptive) Name() string { return "fault-adaptive" }

// Deterministic reports that escape routes ignore live loads: paths
// depend only on (grid, fault pattern, src, dst), so the simulator's
// per-run route cache — which is scoped to one fault pattern — may
// memoize them.
func (faultAdaptive) Deterministic() bool { return true }

// Route produces the healthy-mesh escape path (equivalently: a
// negative-first minimal path).  Use RouteFaulty to route on a faulty
// mesh.
func (faultAdaptive) Route(g mesh.Grid, src, dst mesh.Coord, _ Loads) ([]mesh.Direction, error) {
	return routeEscape(g, src, dst, nil)
}

// RouteFaulty produces the shortest up*/down*-legal path over the live
// topology, or a *fault.UnreachableError when dead links separate the
// endpoints.
func (faultAdaptive) RouteFaulty(g mesh.Grid, src, dst mesh.Coord, f Faults, _ Loads) ([]mesh.Direction, error) {
	return routeEscape(g, src, dst, f)
}

// escapeDirs is the fixed neighbor-expansion order of the escape BFS;
// the tie-break that makes routes deterministic.
var escapeDirs = [4]mesh.Direction{mesh.East, mesh.West, mesh.North, mesh.South}

// healthyRank is the escape rank of a tile on a fault-free mesh: the
// BFS distance from tile 0 over the full mesh, which is exactly the
// Manhattan distance x+y.
func healthyRank(c mesh.Coord) int { return c.X + c.Y }

// routeEscape BFSes the (tile, phase) state graph for the shortest
// up*/down*-legal path.  Phase 0 ("up") may take up links, staying in
// phase 0, or down links, switching irrevocably to phase 1 ("down"),
// which only takes down links — so every discovered path obeys the
// escape ordering, and BFS order makes it the shortest such path.
func routeEscape(g mesh.Grid, src, dst mesh.Coord, f Faults) ([]mesh.Direction, error) {
	if err := checkEndpoints(g, src, dst); err != nil {
		return nil, err
	}
	if src == dst {
		return nil, nil
	}
	rank := healthyRank
	dead := func(c mesh.Coord, d mesh.Direction) bool { return !g.Contains(c.Step(d)) }
	if f != nil {
		rank, dead = f.Rank, f.Dead
	}
	// key orders tiles totally: by escape rank, then row-major index.
	// Adjacent tiles can share a rank on a faulty mesh (two tiles at
	// the same BFS level), so the index breaks the tie; a disconnected
	// component (rank -1 throughout) is still totally ordered by index
	// and can route internally.
	key := func(c mesh.Coord) [2]int { return [2]int{rank(c), g.Index(c)} }
	less := func(a, b [2]int) bool { return a[0] < b[0] || (a[0] == b[0] && a[1] < b[1]) }

	const up, down = 0, 1
	n := g.Tiles()
	// parent[state] encodes the BFS tree: the direction taken into the
	// state (+1, so 0 means unvisited) and the predecessor state.
	type pred struct {
		dir   int8 // direction + 1; 0 = unvisited
		state int32
	}
	parents := make([]pred, 2*n)
	state := func(c mesh.Coord, phase int) int { return g.Index(c)*2 + phase }
	start := state(src, up)
	parents[start] = pred{dir: -1}
	queue := make([]int32, 0, n)
	queue = append(queue, int32(start))
	goal := -1
	for len(queue) > 0 && goal < 0 {
		s := int(queue[0])
		queue = queue[1:]
		c := g.CoordOf(s / 2)
		phase := s % 2
		ck := key(c)
		for _, d := range escapeDirs {
			if dead(c, d) {
				continue
			}
			nc := c.Step(d)
			nphase := down
			if less(key(nc), ck) {
				// Up link: only reachable while still in the up phase.
				if phase == down {
					continue
				}
				nphase = up
			}
			ns := state(nc, nphase)
			if parents[ns].dir != 0 {
				continue
			}
			parents[ns] = pred{dir: int8(d) + 1, state: int32(s)}
			if nc == dst {
				goal = ns
				break
			}
			queue = append(queue, int32(ns))
		}
	}
	if goal < 0 {
		name := faultAdaptive{}.Name()
		return nil, &fault.UnreachableError{Src: src, Dst: dst, Policy: name}
	}
	// Walk the BFS tree back to src, then reverse into path order.
	var path []mesh.Direction
	for s := goal; s != start; {
		p := parents[s]
		path = append(path, mesh.Direction(p.dir-1))
		s = int(p.state)
	}
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path, nil
}
