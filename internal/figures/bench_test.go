// Benchmarks regenerating every table and figure of the paper, plus
// ablations of the design decisions called out in DESIGN.md.  Run with:
//
//	go test -bench=. -benchmem ./internal/figures/
//
// Each BenchmarkFigN measures the full recomputation of that figure's
// data from the models; BenchmarkAblation* vary one design choice.
package figures_test

import (
	"strconv"
	"testing"

	"repro/internal/epr"
	"repro/internal/fidelity"
	"repro/internal/figures"
	"repro/internal/mesh"
	"repro/internal/netsim"
	"repro/internal/phys"
	"repro/internal/purify"
	"repro/internal/workload"
)

var base = phys.IonTrap2006()

func BenchmarkTable1Constants(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := figures.Table1(base)
		if t == nil {
			b.Fatal("nil table")
		}
	}
}

func BenchmarkTable2Constants(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := figures.Table2(base)
		if t == nil {
			b.Fatal("nil table")
		}
	}
}

func BenchmarkFig8Purification(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts := purify.Fig8Series(base, figures.Fig8InitialFidelities, 25)
		if len(pts) == 0 {
			b.Fatal("empty series")
		}
	}
}

func BenchmarkFig9ChainedTeleport(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts := epr.Fig9Series(base, figures.Fig9InitialErrors, 70)
		if len(pts) == 0 {
			b.Fatal("empty series")
		}
	}
}

func BenchmarkFig10TotalPairs(b *testing.B) {
	cfg := epr.DefaultConfig(base)
	hops := figures.DistanceHops()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pts := cfg.DistanceSeries(hops)
		if len(pts) == 0 {
			b.Fatal("empty series")
		}
	}
}

func BenchmarkFig11TeleportedPairs(b *testing.B) {
	// Same evaluation as Figure 10 but asserting the teleported metric,
	// benchmarked separately because the paper reports them as distinct
	// figures.
	cfg := epr.DefaultConfig(base)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, s := range epr.Schemes {
			c := cfg.Evaluate(s, 60)
			if c.TeleportedPairs <= 0 {
				b.Fatal("no teleported pairs")
			}
		}
	}
}

func BenchmarkFig12ErrorSweep(b *testing.B) {
	rates := figures.Fig12Rates()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pts := epr.Fig12Series(base, rates, 10)
		if len(pts) == 0 {
			b.Fatal("empty series")
		}
	}
}

func BenchmarkFig16ResourceSweep(b *testing.B) {
	// The full-paper scale (16x16, QFT-256) takes minutes; the benchmark
	// uses the quick 6x6 configuration with a single seed, so it
	// measures simulation rather than cache hits.  cmd/figures -fig 16
	// -grid 16 regenerates the full-scale figure.
	cfg := figures.Fig16Config{GridSize: 6, Area: 48, Ratios: []int{1, 8}, Seeds: []int64{1}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data, err := figures.Fig16(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(data.Rows) != 4 {
			b.Fatalf("rows = %d", len(data.Rows))
		}
	}
}

func BenchmarkCrossover(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if d := base.CrossoverCells(); d < 100 {
			b.Fatalf("crossover %d", d)
		}
	}
}

// --- Ablations -----------------------------------------------------------

func BenchmarkAblationProtocol(b *testing.B) {
	// DEJMPS vs BBPSSW as the system-wide purification protocol: the
	// paper picks DEJMPS after Figure 8; this measures the cost of the
	// choice on a 20-hop endpoint-purified channel.
	for _, proto := range []purify.Protocol{purify.DEJMPS{Params: base}, purify.BBPSSW{Params: base}} {
		proto := proto
		b.Run(proto.Name(), func(b *testing.B) {
			cfg := epr.DefaultConfig(base)
			cfg.Protocol = proto
			cfg.MaxEndpointRounds = 80
			for i := 0; i < b.N; i++ {
				c := cfg.Evaluate(epr.EndpointsOnly, 20)
				if !c.Feasible {
					b.Fatal("infeasible")
				}
			}
		})
	}
}

func BenchmarkAblationQueueDepth(b *testing.B) {
	// Queue purifier depth (the paper fixes 3): cost of pushing 1<<12
	// pairs through one queue purifier at each depth.
	for depth := 1; depth <= 5; depth++ {
		depth := depth
		b.Run(benchName("depth", depth), func(b *testing.B) {
			in := fidelity.Werner(0.995)
			for i := 0; i < b.N; i++ {
				q, err := purify.NewQueuePurifier(purify.DEJMPS{Params: base}, depth)
				if err != nil {
					b.Fatal(err)
				}
				emitted := 0
				for k := 0; k < 1<<12; k++ {
					if res := q.Offer(in); res.Emitted {
						emitted++
					}
				}
				if emitted != (1<<12)>>uint(depth) {
					b.Fatalf("emitted %d", emitted)
				}
			}
		})
	}
}

func BenchmarkAblationHopLength(b *testing.B) {
	// Teleporter spacing (the paper derives 600 cells from the latency
	// crossover): channel cost at alternative spacings.
	for _, cells := range []int{100, 600, 2400} {
		cells := cells
		b.Run(benchName("cells", cells), func(b *testing.B) {
			cfg := epr.DefaultConfig(base)
			cfg.HopCells = cells
			for i := 0; i < b.N; i++ {
				c := cfg.Evaluate(epr.EndpointsOnly, 20)
				if !c.Feasible {
					b.Fatal("infeasible")
				}
			}
		})
	}
}

func BenchmarkAblationLayout(b *testing.B) {
	// Home Base vs Mobile Qubit on QFT-36 with constrained resources.
	grid, err := mesh.NewGrid(6, 6)
	if err != nil {
		b.Fatal(err)
	}
	prog := workload.QFT(36)
	for _, layout := range []netsim.Layout{netsim.HomeBase, netsim.MobileQubit} {
		layout := layout
		b.Run(layout.String(), func(b *testing.B) {
			cfg := netsim.DefaultConfig(grid, layout, 16, 16, 8)
			for i := 0; i < b.N; i++ {
				res, err := netsim.Run(cfg, prog)
				if err != nil {
					b.Fatal(err)
				}
				if res.Exec <= 0 {
					b.Fatal("no progress")
				}
			}
		})
	}
}

func BenchmarkAblationStorage(b *testing.B) {
	// Per-link storage (t cells per incoming link): simulator throughput
	// with starved vs ample storage, isolated by fixing g and p high.
	grid, err := mesh.NewGrid(6, 6)
	if err != nil {
		b.Fatal(err)
	}
	prog := workload.QFT(36)
	for _, t := range []int{8, 32, 128} {
		t := t
		b.Run(benchName("t", t), func(b *testing.B) {
			cfg := netsim.DefaultConfig(grid, netsim.HomeBase, t, 256, 256)
			for i := 0; i < b.N; i++ {
				res, err := netsim.Run(cfg, prog)
				if err != nil {
					b.Fatal(err)
				}
				if res.Exec <= 0 {
					b.Fatal("no progress")
				}
			}
		})
	}
}

func benchName(prefix string, v int) string {
	return prefix + "=" + strconv.Itoa(v)
}
