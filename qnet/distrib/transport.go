// The transport seam between coordinator and workers.

package distrib

import "context"

// Transport carries jobs from the coordinator to named workers and
// streams their results back.  Two implementations ship: HTTPTransport
// (worker names are base URLs of cmd/sweepd processes) and Loopback
// (in-process workers, for tests and benchmarks — no sockets).  The
// coordinator is transport-agnostic, so a future mesh transport slots
// in without touching dispatch logic.
type Transport interface {
	// Run submits the job to the named worker and calls emit once per
	// finished point until the shard completes.  It returns nil only
	// after the worker signalled clean completion; a truncated stream,
	// an unreachable worker or a worker-side failure is an error (the
	// coordinator's cue to reassign the shard).
	Run(ctx context.Context, worker string, job Job, emit func(PointResult) error) error
	// Healthy probes the named worker's liveness.
	Healthy(ctx context.Context, worker string) error
	// Status fetches the named worker's live telemetry snapshot —
	// shard progress plus, for telemetry-enabled workers, the event
	// rate and router occupancy of the runs in flight.  It doubles as
	// a liveness probe: an unreachable or dead worker is an error.
	Status(ctx context.Context, worker string) (Status, error)
}
