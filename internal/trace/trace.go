// Package trace is the time-series telemetry layer of the simulator: a
// ring-buffered, sampling tracer that observes a run over simulated
// time — per-router queue occupancy, per-link utilization, and the
// drop/resend events of the fault and failure layers.
//
// The tracer is an observer, never part of the model: it attaches to
// the event engine through the sim.Probe hook, which fires at exact
// multiples of the sampling interval without scheduling events, so a
// traced run executes the same events — and produces a byte-identical
// Result — as an untraced one.  That is also why the trace
// configuration is excluded from result cache keys.
//
// All sample storage is preallocated when the tracer binds to a run
// (Bind): sampling in steady state reuses ring slots and allocates
// nothing, and a disabled tracer (no tracer attached at all) costs the
// engine exactly one nil check per event.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/mesh"
)

// DefaultInterval is the sampling interval used when Config.Interval is
// unset: one microsecond of simulated time, roughly one sample per few
// thousand events on the paper's parameters.
const DefaultInterval = time.Microsecond

// DefaultCapacity is the sample-ring capacity used when Config.Capacity
// is unset.  Once the ring is full the oldest samples are overwritten;
// Export reports how many were taken in total so truncation is never
// silent.
const DefaultCapacity = 4096

// Config parameterizes a Tracer.
type Config struct {
	// Interval is the sampling period in simulated time; boundaries are
	// exact multiples of it, so equal runs sample at identical instants.
	// 0 selects DefaultInterval.
	Interval time.Duration
	// Capacity is the sample-ring size; the ring keeps the most recent
	// Capacity samples.  0 selects DefaultCapacity.
	Capacity int
	// EventCapacity bounds the drop/resend event ring; 0 selects
	// Capacity.
	EventCapacity int
}

// EventKind classifies one traced network event.
type EventKind uint8

// The traced event kinds: a batch dropped in flight by the fault model,
// and a replacement batch re-sent from a channel source (after a drop
// or a purification failure).
const (
	Drop EventKind = iota
	Resend
)

// String names the kind.
func (k EventKind) String() string {
	switch k {
	case Drop:
		return "drop"
	case Resend:
		return "resend"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one drop or resend, stamped with simulated time and the
// canonical link index (mesh.Grid.LinkIndex) it occurred on — for a
// resend, the first link of the replacement batch's path.
type Event struct {
	At   time.Duration `json:"at"`
	Kind EventKind     `json:"kind"`
	Link int           `json:"link"`
}

// sample is one ring slot: the state of every router and link at one
// interval boundary.  The slices are allocated once by Bind and
// overwritten in place on ring wrap.
type sample struct {
	at        time.Duration
	events    uint64
	occupancy []float64
	linkUtil  []float64
}

// Source is the tracer's view into the running simulator, implemented
// by the netsim layer over its router nodes and generator resources.
// Both methods fill caller-owned slices (sized to the bound grid) and
// must not allocate.
type Source interface {
	// SampleOccupancy fills dst (one slot per tile, row-major) with the
	// routers' live queue occupancy in batches: teleporter-set jobs in
	// service or queued plus storage credits taken or waited for —
	// exactly the counters route.Loads normalizes for adaptive routing.
	SampleOccupancy(dst []float64)
	// SampleLinkBusy fills dst (one slot per link, in Grid.Links order)
	// with each link generator's cumulative unit-busy time.
	SampleLinkBusy(dst []time.Duration)
	// LinkCapacity returns the per-link generator unit count, the
	// normalizer of per-interval link utilization.
	LinkCapacity() int
}

// Live is the tracer's cheap concurrent snapshot, refreshed once per
// sample for observers on other goroutines (the distributed worker's
// heartbeat telemetry).  All fields describe the run so far.
type Live struct {
	// At is the simulated time of the latest sample.
	At time.Duration
	// Events is the engine's processed-event count at the latest sample.
	Events uint64
	// Samples is the total number of samples taken (including any that
	// have been overwritten in the ring).
	Samples uint64
	// MeanOccupancy is the mesh-wide mean router occupancy of the latest
	// sample, in batches per router.
	MeanOccupancy float64
	// Drops and Resends are the running event totals.
	Drops, Resends uint64
}

// Tracer records one run's time series.  It is driven from the engine
// goroutine (Sample, RecordDrop, RecordResend are not safe for
// concurrent use); only Live is safe to call from other goroutines
// while the run executes.  A Tracer records one run at a time: binding
// it to a new run resets all recorded state.
type Tracer struct {
	interval time.Duration
	capacity int
	evCap    int

	grid    mesh.Grid
	linkCap int
	source  Source

	samples []sample
	taken   uint64 // total samples, ring position = taken % capacity

	events  []Event
	evTaken uint64
	drops   uint64
	resends uint64

	prevBusy []time.Duration // cumulative link busy at the previous sample
	prevAt   time.Duration   // time of the previous sample (0 before the first)
	busyBuf  []time.Duration // scratch for the current sample's cumulative busy

	mu   sync.Mutex
	live Live
}

// New builds a tracer with the given configuration (zero fields select
// the defaults).  The tracer allocates its rings lazily at Bind time,
// when the mesh dimensions are known.
func New(cfg Config) *Tracer {
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultInterval
	}
	if cfg.Capacity <= 0 {
		cfg.Capacity = DefaultCapacity
	}
	if cfg.EventCapacity <= 0 {
		cfg.EventCapacity = cfg.Capacity
	}
	return &Tracer{interval: cfg.Interval, capacity: cfg.Capacity, evCap: cfg.EventCapacity}
}

// Interval returns the sampling period.
func (t *Tracer) Interval() time.Duration { return t.interval }

// Bind attaches the tracer to one run: the mesh it will sample and the
// simulator-side source of its counters.  It allocates every ring slot
// up front — sampling afterwards reuses them and allocates nothing —
// and resets any previously recorded run.
func (t *Tracer) Bind(grid mesh.Grid, src Source) {
	t.grid = grid
	t.source = src
	t.linkCap = src.LinkCapacity()
	tiles, links := grid.Tiles(), grid.NumLinks()
	t.samples = make([]sample, t.capacity)
	for i := range t.samples {
		t.samples[i].occupancy = make([]float64, tiles)
		t.samples[i].linkUtil = make([]float64, links)
	}
	t.events = make([]Event, 0, t.evCap)
	t.prevBusy = make([]time.Duration, links)
	t.busyBuf = make([]time.Duration, links)
	t.taken, t.evTaken, t.drops, t.resends = 0, 0, 0, 0
	t.prevAt = 0
	t.mu.Lock()
	t.live = Live{}
	t.mu.Unlock()
}

// Sample records one interval boundary; it implements sim.Probe and is
// called by the engine with the exact boundary time and the events
// executed so far.  Steady-state cost is two counter sweeps over the
// mesh and no allocation.
func (t *Tracer) Sample(now time.Duration, processed uint64) {
	s := &t.samples[t.taken%uint64(t.capacity)]
	s.at = now
	s.events = processed
	t.source.SampleOccupancy(s.occupancy)

	// Per-link utilization over this interval: the generator busy-time
	// delta normalized by capacity × elapsed.  Like route.Loads values
	// it is a pure counter ratio — saturated links read 1.0, and the
	// first sample's longer elapsed window (from time zero) keeps it
	// bounded the same way.
	t.source.SampleLinkBusy(t.busyBuf)
	elapsed := now - t.prevAt
	denom := float64(t.linkCap) * float64(elapsed)
	for i, busy := range t.busyBuf {
		u := 0.0
		if denom > 0 {
			u = float64(busy-t.prevBusy[i]) / denom
		}
		s.linkUtil[i] = u
	}
	t.prevBusy, t.busyBuf = t.busyBuf, t.prevBusy
	t.prevAt = now
	t.taken++

	var occ float64
	for _, v := range s.occupancy {
		occ += v
	}
	t.mu.Lock()
	t.live = Live{
		At:            now,
		Events:        processed,
		Samples:       t.taken,
		MeanOccupancy: occ / float64(len(s.occupancy)),
		Drops:         t.drops,
		Resends:       t.resends,
	}
	t.mu.Unlock()
}

// RecordDrop records a batch dropped in flight on the link with the
// given canonical index.
func (t *Tracer) RecordDrop(at time.Duration, link int) {
	t.drops++
	t.record(Event{At: at, Kind: Drop, Link: link})
}

// RecordResend records a replacement batch injected on the link with
// the given canonical index (the first hop of its path).
func (t *Tracer) RecordResend(at time.Duration, link int) {
	t.resends++
	t.record(Event{At: at, Kind: Resend, Link: link})
}

// record appends into the event ring, overwriting the oldest entry once
// full.
func (t *Tracer) record(ev Event) {
	if len(t.events) < t.evCap {
		t.events = append(t.events, ev)
	} else {
		t.events[t.evTaken%uint64(t.evCap)] = ev
	}
	t.evTaken++
}

// Samples returns the number of samples currently retained in the ring.
func (t *Tracer) Samples() int {
	if t.taken < uint64(t.capacity) {
		return int(t.taken)
	}
	return t.capacity
}

// Live returns the latest concurrent snapshot.  It is the one method
// safe to call from other goroutines while the traced run executes.
func (t *Tracer) Live() Live {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.live
}

// Version is the trace export format identifier; Decode rejects any
// other value.
const Version = "qnet-trace-v1"

// Export is the compact, versioned serialization of one recorded run:
// columnar time series (one row per retained sample, oldest first) plus
// the drop/resend event log.  Equal runs export byte-identical traces.
type Export struct {
	// Version identifies the format (the Version constant).
	Version string `json:"version"`
	// GridW, GridH are the mesh dimensions; occupancy rows hold
	// GridW×GridH tiles row-major, link rows follow mesh.Grid.Links
	// order.
	GridW int `json:"grid_w"`
	GridH int `json:"grid_h"`
	// IntervalNS is the sampling period in nanoseconds of simulated
	// time.
	IntervalNS int64 `json:"interval_ns"`
	// TotalSamples counts every sample taken; when it exceeds
	// len(Times) the ring wrapped and only the most recent samples are
	// retained.
	TotalSamples uint64 `json:"total_samples"`
	// Times are the retained samples' boundary times (ns), oldest
	// first.
	Times []int64 `json:"times"`
	// Events are the engine's cumulative processed-event counts, one
	// per retained sample.
	Events []uint64 `json:"events"`
	// Occupancy is per-sample, per-tile router queue occupancy in
	// batches.  Values exceed 1 per unit of capacity under backlog —
	// clamp with Clamp01 before color-scaling.
	Occupancy [][]float64 `json:"occupancy"`
	// LinkUtil is per-sample, per-link generator utilization over the
	// preceding interval.
	LinkUtil [][]float64 `json:"link_util"`
	// TotalDrops and TotalResends are the full event totals; Drops and
	// Resends retain the most recent EventCapacity entries.
	TotalDrops   uint64  `json:"total_drops"`
	TotalResends uint64  `json:"total_resends"`
	Log          []Event `json:"log"`
}

// Export snapshots the recorded run into its serializable form.  Call
// it after the traced run completes (it is not safe concurrently with
// Sample).
func (t *Tracer) Export() *Export {
	n := t.Samples()
	ex := &Export{
		Version:      Version,
		GridW:        t.grid.Width,
		GridH:        t.grid.Height,
		IntervalNS:   int64(t.interval),
		TotalSamples: t.taken,
		Times:        make([]int64, n),
		Events:       make([]uint64, n),
		Occupancy:    make([][]float64, n),
		LinkUtil:     make([][]float64, n),
		TotalDrops:   t.drops,
		TotalResends: t.resends,
	}
	start := uint64(0)
	if t.taken > uint64(n) {
		start = t.taken - uint64(n)
	}
	for i := 0; i < n; i++ {
		s := &t.samples[(start+uint64(i))%uint64(t.capacity)]
		ex.Times[i] = int64(s.at)
		ex.Events[i] = s.events
		ex.Occupancy[i] = append([]float64(nil), s.occupancy...)
		ex.LinkUtil[i] = append([]float64(nil), s.linkUtil...)
	}
	ex.Log = make([]Event, 0, len(t.events))
	if t.evTaken > uint64(len(t.events)) {
		// Ring wrapped: unroll oldest-first.
		pos := t.evTaken % uint64(t.evCap)
		ex.Log = append(ex.Log, t.events[pos:]...)
		ex.Log = append(ex.Log, t.events[:pos]...)
	} else {
		ex.Log = append(ex.Log, t.events...)
	}
	return ex
}

// Encode writes the export as indented JSON.  The encoding is
// deterministic: equal exports produce byte-identical output.
func (ex *Export) Encode(w io.Writer) error {
	data, err := json.MarshalIndent(ex, "", " ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// Decode reads an export written by Encode, rejecting unknown format
// versions.
func Decode(r io.Reader) (*Export, error) {
	var ex Export
	if err := json.NewDecoder(r).Decode(&ex); err != nil {
		return nil, fmt.Errorf("trace: decode: %w", err)
	}
	if ex.Version != Version {
		return nil, fmt.Errorf("trace: version %q, want %q", ex.Version, Version)
	}
	return &ex, nil
}

// Clamp01 clamps a load or utilization value into [0, 1] for color and
// glyph scaling.  The router's load contract (route.Loads) reports
// queue pressure as occupancy over capacity, which exceeds 1.0 under
// backlog — a correct congestion signal for adaptive routing, but one
// that would blow a naive normalization's scale; every heatmap layer
// clamps through here instead of assuming bounded inputs.
func Clamp01(v float64) float64 {
	switch {
	case v < 0:
		return 0
	case v > 1:
		return 1
	default:
		return v
	}
}
