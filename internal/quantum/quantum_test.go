package quantum

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func newState(t *testing.T, n int) *State {
	t.Helper()
	s, err := NewState(n)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestNewStateValidation(t *testing.T) {
	if _, err := NewState(0); err == nil {
		t.Error("0 qubits should fail")
	}
	if _, err := NewState(21); err == nil {
		t.Error("21 qubits should fail")
	}
}

func TestInitialState(t *testing.T) {
	s := newState(t, 3)
	if !almost(s.Norm(), 1) {
		t.Errorf("norm = %g", s.Norm())
	}
	if s.Amplitude(0) != 1 {
		t.Errorf("amplitude(|000>) = %v, want 1", s.Amplitude(0))
	}
}

func TestXFlipsMSBFirstQubit(t *testing.T) {
	s := newState(t, 2)
	s.X(0)
	// Qubit 0 is the most significant bit: |10> = index 2.
	if s.Amplitude(2) != 1 {
		t.Errorf("X(0)|00> gave amplitudes %v %v %v %v",
			s.Amplitude(0), s.Amplitude(1), s.Amplitude(2), s.Amplitude(3))
	}
}

func TestHadamardSelfInverse(t *testing.T) {
	s := newState(t, 1)
	s.H(0)
	if !almost(real(s.Amplitude(0)), 1/math.Sqrt2) {
		t.Errorf("H|0> amplitude(0) = %v", s.Amplitude(0))
	}
	s.H(0)
	if !almost(cmplx.Abs(s.Amplitude(0)), 1) {
		t.Errorf("HH|0> != |0>: %v", s.Amplitude(0))
	}
}

func TestPauliAlgebra(t *testing.T) {
	// ZX = iY on a single qubit state: check XZ|+> relationships via
	// fidelity: Y|0> = i|1>, so |<1|Y|0>|^2 = 1.
	s := newState(t, 1)
	s.Y(0)
	one := newState(t, 1)
	one.X(0)
	if f := s.FidelityTo(one); !almost(f, 1) {
		t.Errorf("|<1|Y|0>|^2 = %g, want 1", f)
	}
}

func TestCNOTTruthTable(t *testing.T) {
	// |10> -> |11>
	s := newState(t, 2)
	s.X(0)
	s.CNOT(0, 1)
	if cmplx.Abs(s.Amplitude(3)) != 1 {
		t.Errorf("CNOT|10> amplitudes wrong")
	}
	// |00> -> |00>
	s2 := newState(t, 2)
	s2.CNOT(0, 1)
	if cmplx.Abs(s2.Amplitude(0)) != 1 {
		t.Errorf("CNOT|00> amplitudes wrong")
	}
}

func TestCNOTPanicsOnSameQubit(t *testing.T) {
	s := newState(t, 2)
	defer func() {
		if recover() == nil {
			t.Error("CNOT(q,q) should panic")
		}
	}()
	s.CNOT(1, 1)
}

func TestPrepareEPR(t *testing.T) {
	s := newState(t, 2)
	s.PrepareEPR(0, 1)
	r := 1 / math.Sqrt2
	if !almost(real(s.Amplitude(0)), r) || !almost(real(s.Amplitude(3)), r) {
		t.Errorf("EPR state amplitudes: %v %v %v %v",
			s.Amplitude(0), s.Amplitude(1), s.Amplitude(2), s.Amplitude(3))
	}
	if !almost(cmplx.Abs(s.Amplitude(1)), 0) || !almost(cmplx.Abs(s.Amplitude(2)), 0) {
		t.Error("EPR state has weight outside |00>,|11>")
	}
}

func TestMeasureCollapses(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s := newState(t, 2)
	s.PrepareEPR(0, 1)
	m0 := s.Measure(0, rng)
	// Perfect correlation: measuring the partner must give the same bit.
	m1 := s.Measure(1, rng)
	if m0 != m1 {
		t.Errorf("EPR halves measured %d and %d, want equal", m0, m1)
	}
	if !almost(s.Norm(), 1) {
		t.Errorf("norm after measurement = %g", s.Norm())
	}
}

func TestMeasureStatistics(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ones := 0
	const trials = 2000
	for i := 0; i < trials; i++ {
		s := newState(t, 1)
		s.H(0)
		ones += s.Measure(0, rng)
	}
	if ones < trials/2-100 || ones > trials/2+100 {
		t.Errorf("H|0> measured 1 %d/%d times, want ~half", ones, trials)
	}
}

// The centerpiece: Figure 3's teleportation protocol moves an arbitrary
// state exactly, for every measurement outcome branch.
func TestTeleportationExact(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 64; trial++ {
		// Prepare a pseudo-random single-qubit state on qubit 0 via a
		// parameterized rotation built from H/Z/X compositions... use
		// ApplyOne directly with a random unitary.
		theta := rng.Float64() * math.Pi
		phi := rng.Float64() * 2 * math.Pi
		a := complex(math.Cos(theta/2), 0)
		b := cmplx.Exp(complex(0, phi)) * complex(math.Sin(theta/2), 0)

		s := newState(t, 3)
		s.ApplyOne(0, a, -cmplx.Conj(b), b, cmplx.Conj(a))
		s.PrepareEPR(1, 2)
		s.Teleport(0, 1, 2, rng)

		// Reference: the same preparation applied directly to qubit 2 of
		// a fresh 3-qubit register whose qubits 0,1 hold the measured
		// values.  Compare single-qubit marginals instead: qubit 2 must
		// be exactly (a, b) up to global phase.  Build reference with
		// measured bits matching.
		want0 := a
		want1 := b
		// Extract qubit 2's state: after measurement qubits 0 and 1 are
		// classical; find the surviving pair of amplitudes.
		var got0, got1 complex128
		for i := 0; i < 8; i++ {
			amp := s.Amplitude(i)
			if cmplx.Abs(amp) < 1e-12 {
				continue
			}
			if i&1 == 0 {
				got0 = amp
			} else {
				got1 = amp
			}
		}
		// Compare up to global phase: got = e^{iφ} want.
		ratioOK := func(g, w complex128) bool {
			return cmplx.Abs(g)-cmplx.Abs(w) < 1e-9 && cmplx.Abs(g)-cmplx.Abs(w) > -1e-9
		}
		if !ratioOK(got0, want0) || !ratioOK(got1, want1) {
			t.Fatalf("trial %d: teleported amplitudes (%v,%v), want magnitudes (%v,%v)",
				trial, got0, got1, want0, want1)
		}
		// Cross-check phase consistency: got0*want1 == got1*want0 up to
		// global phase.
		if cmplx.Abs(got0*want1-got1*want0) > 1e-9 {
			t.Fatalf("trial %d: teleported state differs beyond global phase", trial)
		}
	}
}

// Teleportation with an EPR pair in a wrong Bell state fails without the
// matching correction — confirming the two classical bits are essential
// (the paper's step 3/4).
func TestTeleportationNeedsCorrections(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	mismatches := 0
	for trial := 0; trial < 32; trial++ {
		s := newState(t, 3)
		s.H(0) // teleport |+>... then corrupt: use Ψ+ instead of Φ+
		s.PrepareEPR(1, 2)
		s.X(2) // now (1,2) hold Ψ+
		s.Teleport(0, 1, 2, rng)
		// The delivered state should be X|+> = |+> ... |+> is X-invariant;
		// use |0> data instead for a state X changes.
		s2 := newState(t, 3)
		s2.PrepareEPR(1, 2)
		s2.X(2)
		s2.Teleport(0, 1, 2, rng) // teleporting |0> over Ψ+ delivers |1>
		one := 0
		for i := 0; i < 8; i++ {
			if cmplx.Abs(s2.Amplitude(i)) > 1e-9 && i&1 == 1 {
				one = 1
			}
		}
		if one == 1 {
			mismatches++
		}
	}
	if mismatches != 32 {
		t.Errorf("teleporting |0> over a Ψ+ pair should always deliver |1>; got %d/32", mismatches)
	}
}

// Property: all gates preserve the norm.
func TestUnitarityProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		s, err := NewState(3)
		if err != nil {
			return false
		}
		s.H(0)
		s.H(1)
		s.H(2)
		for _, op := range ops {
			q := int(op) % 3
			switch (op / 3) % 5 {
			case 0:
				s.H(q)
			case 1:
				s.X(q)
			case 2:
				s.Z(q)
			case 3:
				s.Y(q)
			case 4:
				s.CNOT(q, (q+1)%3)
			}
		}
		return math.Abs(s.Norm()-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// The purification comparison circuit of Figure 7 at the amplitude
// level: two perfect EPR pairs purify into one perfect EPR pair with the
// measurement bits always agreeing.
func TestPurificationCircuitPerfectPairs(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 16; trial++ {
		// Qubits: pair1 = (0,1), pair2 = (2,3); Alice holds 0,2; Bob 1,3.
		s := newState(t, 4)
		s.PrepareEPR(0, 1)
		s.PrepareEPR(2, 3)
		// Bilateral CNOT: Alice 0->2, Bob 1->3; measure pair2.
		s.CNOT(0, 2)
		s.CNOT(1, 3)
		ma := s.Measure(2, rng)
		mb := s.Measure(3, rng)
		if ma != mb {
			t.Fatalf("trial %d: perfect pairs produced disagreeing purification bits", trial)
		}
		// Surviving pair must still be Φ+: fidelity 1 against a fresh
		// EPR preparation of qubits (0,1) with (2,3) in the measured
		// state.
		ref := newState(t, 4)
		ref.PrepareEPR(0, 1)
		if ma == 1 {
			ref.X(2)
			ref.X(3)
		}
		if f := s.FidelityTo(ref); math.Abs(f-1) > 1e-9 {
			t.Fatalf("trial %d: surviving pair fidelity %g, want 1", trial, f)
		}
	}
}

// A pair with a known X error entering purification is caught: the
// comparison bits disagree and the pair is discarded — the mechanism
// purification relies on.
func TestPurificationDetectsBitFlip(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 16; trial++ {
		s := newState(t, 4)
		s.PrepareEPR(0, 1)
		s.PrepareEPR(2, 3)
		s.X(3) // corrupt the sacrificial pair with a bit flip
		s.CNOT(0, 2)
		s.CNOT(1, 3)
		ma := s.Measure(2, rng)
		mb := s.Measure(3, rng)
		if ma == mb {
			t.Fatalf("trial %d: X-corrupted pair escaped detection", trial)
		}
	}
}
