package channel_test

import (
	"fmt"

	"repro/qnet"
	"repro/qnet/channel"
)

// Example evaluates the paper's channel-setup model: EPR pairs
// distributed over a 30-hop path with endpoint-only purification, the
// policy the paper adopts after Figures 10-12.
func Example() {
	p := qnet.IonTrap2006()
	cost := channel.DefaultDistribution(p).Evaluate(channel.EndpointsOnly, 30)
	fmt.Printf("feasible=%v endpointRounds=%d pairsPerHop=%.0f\n",
		cost.Feasible, cost.EndpointRounds, cost.TeleportedPairs/30)
	// Output:
	// feasible=true endpointRounds=3 pairsPerHop=8
}

// Example_compareMethodologies contrasts ballistic EPR distribution
// with chained teleportation over the same physical distance — the
// paper's Section 4.6 crossover argument for teleporter spacing.
func Example_compareMethodologies() {
	p := qnet.IonTrap2006()
	c, err := channel.CompareMethodologies(p, 6000, 600)
	if err != nil {
		panic(err)
	}
	fmt.Printf("ballistic %v vs teleport %v over 6000 cells\n",
		c.BallisticLatency, c.TeleportLatency)
	fmt.Printf("teleportation is %.1fx faster\n",
		float64(c.BallisticLatency)/float64(c.TeleportLatency))
	// Output:
	// ballistic 1.2ms vs teleport 128µs over 6000 cells
	// teleportation is 9.4x faster
}
