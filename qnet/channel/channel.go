// Package channel exposes the analytical reliable-channel models of the
// paper's Section 4: EPR-pair distribution over chained teleporter hops,
// the five purification placement policies of Figures 10-12, the
// ballistic-versus-teleportation methodology comparison of Figures 4-5,
// and end-to-end channel planning — the latency, bandwidth, error-rate
// and resource metrics the paper's abstract promises.
//
// The event-driven simulator in qnet/simulate measures the same
// quantities under contention; this package answers the same questions
// in closed form, instantly, for one path at a time.
//
//	p := qnet.IonTrap2006()
//	cost := channel.DefaultDistribution(p).Evaluate(channel.EndpointsOnly, 30)
//	ch, err := channel.Plan(channel.Spec{Params: p, Hops: 30})
//
// A Spec can also pin the channel to a concrete mesh path: set Grid,
// Src and Dst (plus an optional qnet/route policy), and the planner
// derives the hop and turn counts from the same routing decision the
// simulator makes — PlanOnMesh is the shorthand.
package channel

import (
	"repro/internal/ballistic"
	"repro/internal/core"
	"repro/internal/epr"

	"repro/qnet"
	"repro/qnet/route"
)

// Scheme selects where purification happens during EPR distribution
// (the five policies of Figures 10-12).
type Scheme = epr.Scheme

// The five purification placement policies.
const (
	EndpointsOnly = epr.EndpointsOnly
	OnceBefore    = epr.OnceBefore
	TwiceBefore   = epr.TwiceBefore
	OnceAfter     = epr.OnceAfter
	TwiceAfter    = epr.TwiceAfter
)

// Schemes lists all five placement policies in the paper's Figure 10
// legend order.
var Schemes = epr.Schemes

// Distribution models EPR-pair distribution over a chain of teleporter
// hops.
type Distribution = epr.Config

// Cost is the resource accounting of one distribution policy over one
// path length.
type Cost = epr.Cost

// DefaultDistribution returns the paper's channel-setup model: 600-cell
// hops, DEJMPS purification, the 7.5e-5 threshold.
func DefaultDistribution(p qnet.Params) Distribution { return epr.DefaultConfig(p) }

// Spec describes a reliable quantum channel to be planned.
type Spec = core.Spec

// Channel is a planned reliable quantum channel: the paper's latency,
// bandwidth, error-rate and resource metrics.
type Channel = core.Channel

// Plan builds the analytical channel model of the paper's Section 4 for
// one path.
func Plan(spec Spec) (Channel, error) { return core.Plan(spec) }

// PlanOnMesh plans a channel between two tiles of a mesh under a
// routing policy (nil = dimension order): hop count, turn count and
// the turn penalty in the setup latency all come from the policy's
// path, so the closed-form numbers agree with the geometry the
// simulator would choose for the same endpoints.
func PlanOnMesh(p qnet.Params, g qnet.Grid, src, dst route.Coord, policy route.Policy) (Channel, error) {
	return core.Plan(Spec{Params: p, Grid: g, Src: src, Dst: dst, Route: policy})
}

// MovePlan is the electrode-level pulse program that shuttles one ion
// between traps (Figure 2).
type MovePlan = ballistic.MovePlan

// PlanMove builds the pulse program moving an ion between two traps.
func PlanMove(from, to int) (MovePlan, error) { return ballistic.PlanMove(from, to) }

// BallisticDistribution models delivering EPR-pair halves by physically
// shuttling them down ion-trap channels (the Figure 4 methodology).
type BallisticDistribution = ballistic.Distribution

// BallisticResult is the outcome of a ballistic distribution.
type BallisticResult = ballistic.Result

// Comparison contrasts ballistic distribution with chained teleportation
// over one distance (the paper's Section 4.6).
type Comparison = ballistic.Comparison

// CompareMethodologies evaluates both distribution methodologies over
// the given physical distance with the given teleporter-hop length.
func CompareMethodologies(p qnet.Params, distanceCells, hopCells int) (Comparison, error) {
	return ballistic.Compare(p, distanceCells, hopCells)
}
