package simulate

import (
	"errors"
	"strings"
	"testing"

	"repro/qnet"
	"repro/qnet/fault"
)

// TestValidateNamesEveryField audits the build-time validation layer:
// every rejectable configuration field must fail with a
// *qnet.ConfigError that (a) names exactly that field, (b) carries the
// offending value into the message, and (c) unwraps to
// ErrInvalidConfig.  The table covers every field validate() checks,
// so a new Config field with sloppy (or missing) validation breaks
// this test, not a user.
func TestValidateNamesEveryField(t *testing.T) {
	grid, err := qnet.NewGrid(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		field string
		grid  qnet.Grid
		opts  []Option
	}{
		{"Params", grid, []Option{WithParams(qnet.Params{})}},
		{"Grid", qnet.Grid{}, nil},
		{"Teleporters", grid, []Option{WithResources(0, 4, 2)}},
		{"Generators", grid, []Option{WithResources(4, 0, 2)}},
		{"Purifiers", grid, []Option{WithResources(4, 4, 0)}},
		{"PurifyDepth", grid, []Option{WithPurifyDepth(0)}},
		{"PurifyDepth", grid, []Option{WithPurifyDepth(17)}},
		{"CodeLevel", grid, []Option{WithCodeLevel(-1)}},
		{"HopCells", grid, []Option{WithHopCells(0)}},
		{"TurnCells", grid, []Option{WithTurnCells(-1)}},
		{"FailureRate", grid, []Option{WithFailureRate(-0.1)}},
		{"FailureRate", grid, []Option{WithFailureRate(1)}},
		{"Faults", grid, []Option{WithFaults(fault.Spec{DeadLinks: 2})}},
		{"Faults", grid, []Option{WithFaults(fault.Spec{Drop: 1})}},
		{"Faults", grid, []Option{WithFaults(fault.Spec{
			Regions: []fault.Region{{X: 3, Y: 3, W: 4, H: 4, Drop: 0.1}}})}},
	}
	for _, tc := range cases {
		t.Run(tc.field, func(t *testing.T) {
			_, err := New(tc.grid, HomeBase, tc.opts...)
			if err == nil {
				t.Fatalf("New accepted invalid %s", tc.field)
			}
			var cerr *qnet.ConfigError
			if !errors.As(err, &cerr) {
				t.Fatalf("got %v (%T), want *qnet.ConfigError", err, err)
			}
			if cerr.Field != tc.field {
				t.Fatalf("error names field %q, want %q: %v", cerr.Field, tc.field, err)
			}
			if !strings.Contains(err.Error(), tc.field) {
				t.Fatalf("message %q does not mention the field %q", err, tc.field)
			}
			if !errors.Is(err, qnet.ErrInvalidConfig) {
				t.Fatal("validation error must unwrap to ErrInvalidConfig")
			}
		})
	}

	// Layout is the one field not reachable through an Option; exercise
	// it directly with an out-of-range layout value.
	_, err = New(grid, Layout(99))
	var cerr *qnet.ConfigError
	if !errors.As(err, &cerr) || cerr.Field != "Layout" {
		t.Fatalf("bad layout: got %v, want ConfigError{Field: Layout}", err)
	}

	// And the happy path: the most heavily optioned valid machine
	// builds cleanly, so the table above is rejecting values, not
	// option plumbing.
	if _, err := New(grid, MobileQubit,
		WithResources(4, 4, 2), WithPurifyDepth(16), WithCodeLevel(0),
		WithHopCells(1), WithTurnCells(0), WithFailureRate(0.99),
		WithFaults(fault.Spec{DeadLinks: 1, Drop: 0.9,
			Regions: []fault.Region{{X: 0, Y: 0, W: 4, H: 4, Drop: 0.9}}}),
	); err != nil {
		t.Fatalf("boundary-valid machine rejected: %v", err)
	}
}
