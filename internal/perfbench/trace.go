// The telemetry tracer's overhead benchmarks: the same full QFT run as
// QFTRun with the tracer off, sampling finely, and sampling coarsely,
// so the cost of observation is a tracked number rather than folklore.

package perfbench

import (
	"context"
	"testing"
	"time"

	"repro/qnet"
	"repro/qnet/simulate"
	"repro/qnet/trace"
)

// TraceModes are the tracer-overhead benchmark's modes, in the order
// cmd/bench records them: "off" is the zero-cost baseline (no tracer
// attached — one nil check per engine step), "on" samples every
// simulated microsecond (the package default, thousands of samples per
// run), "sampled" samples every simulated millisecond (a handful of
// samples per run, the figure generators' regime).
var TraceModes = []string{"off", "on", "sampled"}

// traceModeInterval maps a TraceModes entry to its sampling interval
// (zero = no tracer).
func traceModeInterval(b *testing.B, mode string) (time.Duration, bool) {
	switch mode {
	case "off":
		return 0, false
	case "on":
		return time.Microsecond, true
	case "sampled":
		return time.Millisecond, true
	}
	b.Fatalf("unknown trace mode %q", mode)
	return 0, false
}

// TraceQFT returns a benchmark running the full benchGrid QFT
// (MobileQubit, default routing) with the telemetry tracer in the given
// mode.  One iteration is one complete run; comparing the modes'
// events/sec against each other — and "off" against the plain QFTRun
// numbers — pins the tracer's overhead.
func TraceQFT(mode string) func(*testing.B) {
	return func(b *testing.B) {
		interval, traced := traceModeInterval(b, mode)
		grid, err := qnet.NewGrid(benchGrid, benchGrid)
		if err != nil {
			b.Fatal(err)
		}
		m, err := simulate.New(grid, simulate.MobileQubit,
			simulate.WithResources(16, 16, 8))
		if err != nil {
			b.Fatal(err)
		}
		if traced {
			// One tracer reused across iterations: each run rebinds it,
			// which resets the rings, exactly as a long-lived worker does.
			m = m.WithTrace(trace.New(trace.Config{Interval: interval}))
		}
		prog := qnet.QFT(grid.Tiles())
		ctx := context.Background()
		res, err := m.Run(ctx, prog) // warm run: learn the event count
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := m.Run(ctx, prog); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		reportEventRate(b, res.Events)
	}
}
