// Package isa defines the textual instruction-stream format the
// simulator's classical control unit consumes (the "stream of
// instructions" of Figure 1) and its parser.  The format is line
// oriented:
//
//	# comments run to end of line
//	program shor-kernel        # optional name
//	qubits 16                  # required before any op
//	op 0 1                     # one two-logical-qubit operation
//	op 0 2
//	qft 8                      # macro: all-to-all over qubits 0..7
//	qft 8 8                    # macro with offset: qubits 8..15
//	mm 4                       # macro: bipartite 0..3 x 4..7
//	mm 4 8                     # macro with offset: 8..11 x 12..15
//
// Macros expand to the corresponding workload generators, so a hand
// written kernel can mix explicit ops with standard patterns.
package isa

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/workload"
)

// Parse reads an instruction stream.
func Parse(r io.Reader) (workload.Program, error) {
	var prog workload.Program
	prog.Name = "program"
	sawQubits := false

	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "program":
			if len(fields) != 2 {
				return prog, fmt.Errorf("isa: line %d: program takes one name", lineNo)
			}
			prog.Name = fields[1]
		case "qubits":
			n, err := argInt(fields, 1, lineNo)
			if err != nil {
				return prog, err
			}
			if len(fields) != 2 {
				return prog, fmt.Errorf("isa: line %d: qubits takes one count", lineNo)
			}
			if n < 1 {
				return prog, fmt.Errorf("isa: line %d: qubit count must be >= 1, got %d", lineNo, n)
			}
			prog.Qubits = n
			sawQubits = true
		case "op":
			if !sawQubits {
				return prog, fmt.Errorf("isa: line %d: op before qubits declaration", lineNo)
			}
			if len(fields) != 3 {
				return prog, fmt.Errorf("isa: line %d: op takes two qubit labels", lineNo)
			}
			a, err := argInt(fields, 1, lineNo)
			if err != nil {
				return prog, err
			}
			b, err := argInt(fields, 2, lineNo)
			if err != nil {
				return prog, err
			}
			prog.Ops = append(prog.Ops, workload.Op{A: a, B: b})
		case "qft":
			if err := expandMacro(&prog, fields, lineNo, sawQubits, macroQFT); err != nil {
				return prog, err
			}
		case "mm":
			if err := expandMacro(&prog, fields, lineNo, sawQubits, macroMM); err != nil {
				return prog, err
			}
		default:
			return prog, fmt.Errorf("isa: line %d: unknown directive %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return prog, fmt.Errorf("isa: %w", err)
	}
	if !sawQubits {
		return prog, fmt.Errorf("isa: missing qubits declaration")
	}
	if err := prog.Validate(); err != nil {
		return prog, fmt.Errorf("isa: %w", err)
	}
	return prog, nil
}

type macro func(n int) workload.Program

func macroQFT(n int) workload.Program { return workload.QFT(n) }
func macroMM(n int) workload.Program  { return workload.ModMult(n) }

func expandMacro(prog *workload.Program, fields []string, lineNo int, sawQubits bool, m macro) error {
	if !sawQubits {
		return fmt.Errorf("isa: line %d: %s before qubits declaration", lineNo, fields[0])
	}
	if len(fields) != 2 && len(fields) != 3 {
		return fmt.Errorf("isa: line %d: %s takes a size and optional offset", lineNo, fields[0])
	}
	n, err := argInt(fields, 1, lineNo)
	if err != nil {
		return err
	}
	if n < 1 {
		return fmt.Errorf("isa: line %d: %s size must be >= 1, got %d", lineNo, fields[0], n)
	}
	offset := 0
	if len(fields) == 3 {
		offset, err = argInt(fields, 2, lineNo)
		if err != nil {
			return err
		}
		if offset < 0 {
			return fmt.Errorf("isa: line %d: offset must be >= 0, got %d", lineNo, offset)
		}
	}
	for _, op := range m(n).Ops {
		prog.Ops = append(prog.Ops, workload.Op{A: op.A + offset, B: op.B + offset})
	}
	return nil
}

func argInt(fields []string, i, lineNo int) (int, error) {
	if i >= len(fields) {
		return 0, fmt.Errorf("isa: line %d: missing argument", lineNo)
	}
	v, err := strconv.Atoi(fields[i])
	if err != nil {
		return 0, fmt.Errorf("isa: line %d: %q is not an integer", lineNo, fields[i])
	}
	return v, nil
}

// Format renders a program back into the textual format (explicit ops;
// macros are not reconstructed).
func Format(prog workload.Program) string {
	var b strings.Builder
	fmt.Fprintf(&b, "program %s\n", sanitizeName(prog.Name))
	fmt.Fprintf(&b, "qubits %d\n", prog.Qubits)
	for _, op := range prog.Ops {
		fmt.Fprintf(&b, "op %d %d\n", op.A, op.B)
	}
	return b.String()
}

func sanitizeName(name string) string {
	if name == "" {
		return "program"
	}
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			return r
		default:
			return '-'
		}
	}, name)
}
