// Package stats turns raw simulation results into ensemble statistics:
// per-metric mean, standard deviation, extrema and confidence
// intervals over a set of runs that differ only in their RNG seed.
//
// The paper's evaluation reports single numbers per configuration; with
// stochastic failure injection (simulate.WithFailureRate) every
// configuration becomes a distribution, and a point estimate without a
// spread is not reproducible science.  This package computes the spread:
//
//	points, _ := simulate.Sweep(ctx, space)       // space.Seeds = {1..10}
//	for _, e := range stats.Group(points) {
//	    fmt.Println(e.Point, e.Exec.Mean, e.Exec.CI(0.95))
//	}
//
// Group folds a sweep's points into one Ensemble per configuration
// (identical up to seed), preserving expansion order; FromResults and
// Describe build the same aggregates from hand-collected runs or raw
// samples.  Confidence intervals come in two flavours: Summary.CI is
// the normal (Student-free, z-score) interval, and Summary.BootstrapCI
// is a deterministic percentile bootstrap for the small, possibly
// skewed samples a seed ensemble typically is.
package stats

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"repro/qnet/simulate"
)

// Summary is the five-number description of one metric over an
// ensemble of runs: sample count, mean, sample standard deviation
// (Bessel-corrected) and extrema.
type Summary struct {
	// N is the sample count.
	N int
	// Mean is the arithmetic mean of the samples.
	Mean float64
	// Std is the sample standard deviation (0 for N < 2).
	Std float64
	// Min is the smallest sample (0 for an empty summary).
	Min float64
	// Max is the largest sample (0 for an empty summary).
	Max float64

	samples []float64
}

// Interval is a two-sided confidence interval around a point estimate.
type Interval struct {
	// Lo and Hi bound the interval.
	Lo, Hi float64
	// Level is the confidence level the interval was built for, e.g.
	// 0.95.
	Level float64
}

// Half returns the interval's half-width around its midpoint — the
// "±" number printed after a mean.
func (iv Interval) Half() float64 { return (iv.Hi - iv.Lo) / 2 }

// String renders the interval as "[lo, hi]".
func (iv Interval) String() string { return fmt.Sprintf("[%.6g, %.6g]", iv.Lo, iv.Hi) }

// Describe summarizes a raw sample set.  The samples are copied, so the
// caller's slice stays untouched and the Summary stays usable for
// bootstrap resampling afterwards.
func Describe(samples []float64) Summary {
	s := Summary{N: len(samples)}
	if s.N == 0 {
		return s
	}
	s.samples = append([]float64(nil), samples...)
	s.Min, s.Max = s.samples[0], s.samples[0]
	var sum float64
	for _, v := range s.samples {
		sum += v
		s.Min = math.Min(s.Min, v)
		s.Max = math.Max(s.Max, v)
	}
	s.Mean = sum / float64(s.N)
	if s.Min == s.Max {
		// Identical samples: report the sample itself, not sum/n, which
		// can differ in the last bit and fake a nonzero spread.
		s.Mean = s.Min
		return s
	}
	if s.N > 1 {
		var ss float64
		for _, v := range s.samples {
			d := v - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(s.N-1))
	}
	return s
}

// zScore returns the two-sided standard-normal quantile for the given
// confidence level, by bisection on the error function (no tables, no
// external dependencies; accurate to ~1e-12).
func zScore(level float64) float64 {
	if level <= 0 {
		return 0
	}
	if level >= 1 {
		return math.Inf(1)
	}
	// Find z with erf(z/sqrt2) = level.
	lo, hi := 0.0, 40.0
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if math.Erf(mid/math.Sqrt2) < level {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// CI returns the normal-approximation confidence interval for the mean
// at the given level (e.g. 0.95): mean ± z·std/√n.  For N < 2 the
// interval collapses to the mean.
func (s Summary) CI(level float64) Interval {
	iv := Interval{Lo: s.Mean, Hi: s.Mean, Level: level}
	if s.N < 2 || s.Std == 0 {
		return iv
	}
	h := zScore(level) * s.Std / math.Sqrt(float64(s.N))
	iv.Lo, iv.Hi = s.Mean-h, s.Mean+h
	return iv
}

// BootstrapCI returns a percentile-bootstrap confidence interval for
// the mean: resamples resampled means of the original samples, sorted,
// clipped at the (1±level)/2 percentiles.  The resampling RNG is seeded
// deterministically from the inputs, so equal ensembles always produce
// equal intervals.  For N < 2 the interval collapses to the mean.
func (s Summary) BootstrapCI(level float64, resamples int) Interval {
	iv := Interval{Lo: s.Mean, Hi: s.Mean, Level: level}
	// len(s.samples) guards a Summary built by struct literal rather
	// than Describe: no samples to resample, so collapse like CI does.
	if s.N < 2 || resamples < 1 || len(s.samples) < 2 {
		return iv
	}
	rng := rand.New(rand.NewSource(int64(s.N)*1_000_003 + int64(resamples)))
	means := make([]float64, resamples)
	for r := range means {
		var sum float64
		for i := 0; i < s.N; i++ {
			sum += s.samples[rng.Intn(s.N)]
		}
		means[r] = sum / float64(s.N)
	}
	sort.Float64s(means)
	alpha := (1 - level) / 2
	at := func(q float64) float64 {
		i := int(q * float64(resamples-1))
		return means[i]
	}
	iv.Lo, iv.Hi = at(alpha), at(1-alpha)
	return iv
}

// Samples returns a copy of the summarized samples, in input order.
func (s Summary) Samples() []float64 { return append([]float64(nil), s.samples...) }

// Ensemble aggregates every reported metric of a set of simulation
// runs that share a configuration: the latency, EPR-consumption and
// utilization columns of the paper's evaluation, each as a Summary
// over the ensemble.
type Ensemble struct {
	// N is the number of runs aggregated.
	N int
	// Exec summarizes total execution time, in seconds.
	Exec Summary
	// ChannelLatency summarizes the per-run mean channel setup-to-data
	// latency, in seconds.
	ChannelLatency Summary
	// PairsDelivered summarizes EPR pairs delivered to endpoints.
	PairsDelivered Summary
	// PairHops summarizes total pair-teleportations (the network strain
	// metric of Figure 11).
	PairHops Summary
	// Turns summarizes the total X/Y turns routed through T' nodes —
	// the metric routing policies trade against congestion.
	Turns Summary
	// FailedBatches summarizes purification batches lost to injected
	// failure.
	FailedBatches Summary
	// TeleporterUtil, GeneratorUtil and PurifierUtil summarize mean
	// resource utilizations.
	TeleporterUtil Summary
	GeneratorUtil  Summary
	PurifierUtil   Summary
}

// seconds converts a duration sample to float64 seconds.
func seconds(d time.Duration) float64 { return d.Seconds() }

// FromResults aggregates an ensemble from raw results (typically a
// Session's Results() or one configuration's runs collected by hand).
func FromResults(results []simulate.Result) Ensemble {
	pick := func(f func(simulate.Result) float64) Summary {
		vals := make([]float64, len(results))
		for i, r := range results {
			vals[i] = f(r)
		}
		return Describe(vals)
	}
	return Ensemble{
		N:              len(results),
		Exec:           pick(func(r simulate.Result) float64 { return seconds(r.Exec) }),
		ChannelLatency: pick(func(r simulate.Result) float64 { return seconds(r.MeanChannelLatency) }),
		PairsDelivered: pick(func(r simulate.Result) float64 { return float64(r.PairsDelivered) }),
		PairHops:       pick(func(r simulate.Result) float64 { return float64(r.PairHops) }),
		Turns:          pick(func(r simulate.Result) float64 { return float64(r.Turns) }),
		FailedBatches:  pick(func(r simulate.Result) float64 { return float64(r.FailedBatches) }),
		TeleporterUtil: pick(func(r simulate.Result) float64 { return r.TeleporterUtil }),
		GeneratorUtil:  pick(func(r simulate.Result) float64 { return r.GeneratorUtil }),
		PurifierUtil:   pick(func(r simulate.Result) float64 { return r.PurifierUtil }),
	}
}

// MeanExec returns the ensemble's mean execution time as a Duration.
func (e Ensemble) MeanExec() time.Duration {
	return time.Duration(e.Exec.Mean * float64(time.Second))
}

// PointEnsemble is one configuration of a swept space with its runs
// aggregated over the seed dimension.
type PointEnsemble struct {
	// Point identifies the configuration; its Seed field carries the
	// first seed of the ensemble and its Index the first expansion
	// index, so ensembles sort in expansion order.
	Point simulate.Point
	// Seeds are the seeds aggregated, in expansion order.
	Seeds []int64
	// Ensemble is the metric aggregate over those runs.
	Ensemble Ensemble
	// Results are the underlying per-seed results, in seed order.
	Results []simulate.Result
	// Cached is how many of the runs were served from the sweep cache.
	Cached int
}

// groupKey identifies a configuration modulo seed.  Fault specs are
// keyed by their canonical String rendering, which two equal specs
// always share.
type groupKey struct {
	grid      [2]int
	layout    simulate.Layout
	resources simulate.Resources
	program   string
	qubits    int
	depth     int
	routing   string
	faults    string
}

// Group folds a sweep's finished points into one PointEnsemble per
// configuration, aggregating over the seed dimension and preserving
// the space's expansion order.  Points that failed (non-nil Err) are
// skipped, so a partially failed sweep still yields ensembles for the
// configurations that completed; compare PointEnsemble.Ensemble.N
// against the space's seed count to detect gaps.  Programs are
// distinguished by name and qubit count, which is exact for the
// built-in QFT/MM/ME generators; give hand-built program variants
// distinct names.
func Group(points []simulate.SweepPoint) []PointEnsemble {
	byKey := make(map[groupKey]*PointEnsemble)
	var order []groupKey
	collected := make(map[groupKey][]simulate.Result)
	for _, sp := range points {
		if sp.Err != nil {
			continue
		}
		k := groupKey{
			grid:      [2]int{sp.Point.Grid.Width, sp.Point.Grid.Height},
			layout:    sp.Point.Layout,
			resources: sp.Point.Resources,
			program:   sp.Point.Program.Name,
			qubits:    sp.Point.Program.Qubits,
			depth:     sp.Point.Depth,
			routing:   sp.Point.RoutingName(),
			faults:    sp.Point.FaultsName(),
		}
		pe, ok := byKey[k]
		if !ok {
			pe = &PointEnsemble{Point: sp.Point}
			byKey[k] = pe
			order = append(order, k)
		}
		pe.Seeds = append(pe.Seeds, sp.Point.Seed)
		if sp.Cached {
			pe.Cached++
		}
		collected[k] = append(collected[k], sp.Result)
	}
	out := make([]PointEnsemble, 0, len(order))
	for _, k := range order {
		pe := byKey[k]
		pe.Results = collected[k]
		pe.Ensemble = FromResults(pe.Results)
		out = append(out, *pe)
	}
	return out
}
