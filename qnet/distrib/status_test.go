package distrib

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// executeShard runs one shard on the worker, discarding results.
func executeShard(t *testing.T, w *Worker, indices []int) {
	t.Helper()
	spec := testSpec(t)
	err := w.Execute(context.Background(), Job{Space: spec, Indices: indices}, func(PointResult) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
}

// TestWorkerStatusProgressCounters pins the always-on half of Status:
// DonePoints counts every finished point across shards, and
// ActivePoints drains back to zero, telemetry or not.
func TestWorkerStatusProgressCounters(t *testing.T) {
	w := NewWorker(WithWorkerParallelism(2))
	if st := w.Status(); st != (Status{}) {
		t.Fatalf("fresh worker status %+v, want zero", st)
	}
	executeShard(t, w, []int{0, 1, 2})
	if st := w.Status(); st.DonePoints != 3 || st.ActivePoints != 0 {
		t.Errorf("after one shard: %+v, want 3 done, 0 active", st)
	}
	executeShard(t, w, []int{3, 4})
	if st := w.Status(); st.DonePoints != 5 {
		t.Errorf("after two shards: %+v, want 5 done", st)
	}
	// Without telemetry there are no tracers to aggregate.
	if st := w.Status(); st.Events != 0 || st.EventRate != 0 || st.Occupancy != 0 {
		t.Errorf("telemetry-off worker reports telemetry: %+v", st)
	}
}

// TestWorkerTelemetryObserverParity pins that a telemetry-on worker
// emits point results identical to a telemetry-off one: the per-point
// tracer is an observer, so mixed fleets stay consistent.
func TestWorkerTelemetryObserverParity(t *testing.T) {
	spec := testSpec(t)
	execute := func(w *Worker) map[int]PointResult {
		var mu sync.Mutex
		got := make(map[int]PointResult)
		err := w.Execute(context.Background(), Job{Space: spec, Indices: []int{0, 3, 6}}, func(pr PointResult) error {
			mu.Lock()
			defer mu.Unlock()
			got[pr.Index] = pr
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return got
	}
	plain := execute(NewWorker())
	traced := execute(NewWorker(WithWorkerTelemetry(time.Millisecond)))
	if len(traced) != len(plain) {
		t.Fatalf("telemetry worker emitted %d points, plain %d", len(traced), len(plain))
	}
	for idx, want := range plain {
		if got := traced[idx]; got != want {
			t.Errorf("index %d: telemetry %+v, plain %+v", idx, got, want)
		}
	}
}

// TestLoopbackStatus pins the loopback transport's Status routing: a
// live worker's snapshot comes through, an unknown name and a dead
// worker error like Healthy does.
func TestLoopbackStatus(t *testing.T) {
	lb := NewLoopback()
	w := NewWorker()
	lb.Add("w0", w)
	executeShard(t, w, []int{0, 1})

	st, err := lb.Status(context.Background(), "w0")
	if err != nil {
		t.Fatal(err)
	}
	if st.DonePoints != 2 {
		t.Errorf("loopback status %+v, want 2 done", st)
	}
	if _, err := lb.Status(context.Background(), "nosuch"); err == nil {
		t.Error("unknown worker reported a status")
	}
	lb.Add("w1", NewWorker())
	lb.Kill("w1")
	if _, err := lb.Status(context.Background(), "w1"); err == nil {
		t.Error("dead worker reported a status")
	}
}

// TestCoordinatorProgressCallback pins the heartbeat's progress path: a
// sweep with WithHeartbeat and WithProgress observes per-worker live
// snapshots while shards execute, and the final callbacks carry the
// worker's cumulative point count.
func TestCoordinatorProgressCallback(t *testing.T) {
	spec := testSpec(t)
	lb := NewLoopback()
	lb.Add("w0", NewWorker(WithWorkerParallelism(1), WithWorkerTelemetry(time.Millisecond)))

	var mu sync.Mutex
	calls := 0
	var last Status
	coord, err := NewCoordinator(lb, []string{"w0"},
		WithHeartbeat(2*time.Millisecond),
		WithProgress(func(worker string, st Status) {
			mu.Lock()
			defer mu.Unlock()
			if worker != "w0" {
				t.Errorf("progress for unknown worker %q", worker)
			}
			calls++
			last = st
		}))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := coord.Sweep(context.Background(), spec); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if calls == 0 {
		t.Fatal("progress callback never fired during the sweep")
	}
	if last.DonePoints == 0 {
		t.Errorf("last progress snapshot %+v shows no completed points", last)
	}
}

// TestHTTPStatusEndpoint pins the wire path: /v1/status serves the
// worker's snapshot as JSON and HTTPTransport.Status decodes it.
func TestHTTPStatusEndpoint(t *testing.T) {
	w := NewWorker()
	executeShard(t, w, []int{0, 1, 2, 3})
	srv := NewServer(w)
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	st, err := NewHTTPTransport().Status(context.Background(), ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if st.DonePoints != 4 || st.ActivePoints != 0 {
		t.Errorf("HTTP status %+v, want 4 done, 0 active", st)
	}
	// The wire format is the documented snake_case JSON.
	data, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"active_points", "done_points", "events", "event_rate", "occupancy"} {
		if !json.Valid(data) || !containsField(data, field) {
			t.Errorf("status JSON %s missing field %q", data, field)
		}
	}
	// A vanished worker turns into a transport error, which the
	// heartbeat counts as a miss.
	ts.Close()
	if _, err := NewHTTPTransport().Status(context.Background(), ts.URL); err == nil {
		t.Error("closed worker server reported a status")
	}
}

// containsField reports whether marshalled JSON has the given key.
func containsField(data []byte, field string) bool {
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		return false
	}
	_, ok := m[field]
	return ok
}
