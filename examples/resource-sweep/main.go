// Resource allocation sweep: a configurable Figure 16, run concurrently
// as a multi-seed ensemble with content-addressed result caching.
//
// The paper's final experiment fixes the chip area devoted to the
// interconnect (T' + G + P nodes) and varies how it is split between
// teleporters/generators and queue purifiers.  Home Base channels share
// T' nodes heavily, so they tolerate fewer purifiers; the Mobile Qubit
// layout's local traffic hammers the endpoint purifiers instead.
//
// All configurations (both layouts × every allocation × every seed,
// plus the unlimited-resource baselines) fan out across the sweep
// engine's worker pool; stats.Group folds the seed dimension into
// mean ± 95% CI rows.  With -cache-dir the results are stored under a
// content hash of each fully-resolved run, so re-running the example —
// or running it again with one extra allocation — only simulates what
// is new (watch the cache line at the end of the output).
//
// This example deliberately builds the Space and decodes the results by
// hand to show the public qnet/simulate + qnet/stats API end to end;
// the library version of the same experiment — with ASCII plot output —
// is internal/figures.Fig16, reachable via `cmd/figures -fig 16`.
//
// Run with: go run ./examples/resource-sweep [-grid 8] [-area 48]
// [-seeds 5] [-failure 0.05] [-cache-dir .qnet-cache]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"repro/qnet"
	"repro/qnet/simulate"
	"repro/qnet/stats"
)

func main() {
	gridN := flag.Int("grid", 8, "mesh edge length (paper: 16)")
	area := flag.Int("area", 48, "per-tile resource budget t+g+p")
	seeds := flag.Int("seeds", 5, "ensemble size (seeds per configuration)")
	failure := flag.Float64("failure", 0.05, "purification failure-injection rate (0: deterministic)")
	cacheDir := flag.String("cache-dir", "", "on-disk result cache directory (empty: in-memory)")
	flag.Parse()

	if err := run(*gridN, *area, *seeds, *failure, *cacheDir); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(gridN, area, seeds int, failure float64, cacheDir string) error {
	grid, err := qnet.NewGrid(gridN, gridN)
	if err != nil {
		return err
	}
	allocs, err := simulate.Allocations(area, []int{1, 2, 4, 8})
	if err != nil {
		return err
	}
	resources := []simulate.Resources{{Teleporters: 1024, Generators: 1024, Purifiers: 1024}}
	for _, a := range allocs {
		resources = append(resources, simulate.AllocationResources(a))
	}
	if seeds < 1 {
		seeds = 1
	}
	space := simulate.Space{
		Grids:     []qnet.Grid{grid},
		Layouts:   []simulate.Layout{simulate.HomeBase, simulate.MobileQubit},
		Resources: resources,
		Programs:  []qnet.Program{qnet.QFT(grid.Tiles())},
		Seeds:     simulate.SeedRange(seeds),
		Options:   []simulate.Option{simulate.WithFailureRate(failure)},
	}

	// A cache makes the sweep incremental: in-memory it deduplicates
	// identical runs within this process; disk-backed it persists them
	// for the next invocation.
	var cache *simulate.Cache
	if cacheDir != "" {
		if cache, err = simulate.NewDiskCache(cacheDir, 0); err != nil {
			return err
		}
	} else {
		cache = simulate.NewCache(0)
	}

	fmt.Printf("sweeping QFT-%d with area budget %d (%d configurations × %d seeds)...\n\n",
		grid.Tiles(), area, space.Size()/seeds, seeds)
	points, err := simulate.Sweep(context.Background(), space,
		simulate.WithCache(cache),
		simulate.WithProgress(func(done, total int) {
			fmt.Fprintf(os.Stderr, "\r%d/%d runs complete", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}))
	if err != nil {
		return err
	}
	for _, pt := range points {
		if pt.Err != nil {
			return pt.Err
		}
	}

	// Fold the seed dimension into one ensemble per configuration, then
	// decode by point metadata (layout × resources) rather than
	// position, so extending the space cannot mis-pair the rows.
	type runKey struct {
		layout simulate.Layout
		res    simulate.Resources
	}
	groups := make(map[runKey]stats.PointEnsemble, 2*len(resources))
	for _, g := range stats.Group(points) {
		groups[runKey{g.Point.Layout, g.Point.Resources}] = g
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Layout\tAllocation\tMeanExec\tNormalized\t±CI95\tTeleporterUtil\tPurifierUtil")
	for _, layout := range space.Layouts {
		base, ok := groups[runKey{layout, resources[0]}]
		if !ok {
			return fmt.Errorf("%v baseline missing from sweep results", layout)
		}
		fmt.Fprintf(w, "%v\tt=g=p=1024 (baseline)\t%v\t%.3f\t%.3f\t%.3f\t%.3f\n",
			layout, base.Ensemble.MeanExec(), 1.0, 0.0,
			base.Ensemble.TeleporterUtil.Mean, base.Ensemble.PurifierUtil.Mean)
		for _, a := range allocs {
			g, ok := groups[runKey{layout, simulate.AllocationResources(a)}]
			if !ok {
				return fmt.Errorf("%v %v missing from sweep results", layout, a)
			}
			// Normalize each seed's run against the same seed's baseline,
			// then summarize, so the error bar reflects both spreads.
			normalized := make([]float64, len(g.Results))
			for i, r := range g.Results {
				normalized[i] = float64(r.Exec) / float64(base.Results[i].Exec)
			}
			norm := stats.Describe(normalized)
			fmt.Fprintf(w, "%v\t%v\t%v\t%.3f\t%.3f\t%.3f\t%.3f\n",
				layout, a, g.Ensemble.MeanExec(),
				norm.Mean, norm.CI(0.95).Half(),
				g.Ensemble.TeleporterUtil.Mean, g.Ensemble.PurifierUtil.Mean)
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}

	fmt.Println("\nsweep:", simulate.Summarize(points))
	fmt.Println("cache:", cache.Stats())
	fmt.Println("\nReading the sweep: Mobile degrades sharply once purifiers are")
	fmt.Println("starved (t=g=8p); Home Base, already throttled by T' sharing,")
	fmt.Println("tolerates the same cut far better — the paper's Figure 16 shape.")
	return nil
}
