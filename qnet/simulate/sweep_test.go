package simulate

import (
	"context"
	"errors"
	"testing"

	"repro/qnet"
)

// test2x2x2Space is the satellite-task space: layouts × resources ×
// seeds, 8 points total, with failure injection so the seeds matter.
func test2x2x2Space(t testing.TB) Space {
	grid := testGrid(t, 4)
	return Space{
		Grids:   []qnet.Grid{grid},
		Layouts: []Layout{HomeBase, MobileQubit},
		Resources: []Resources{
			{Teleporters: 16, Generators: 16, Purifiers: 8},
			{Teleporters: 8, Generators: 8, Purifiers: 4},
		},
		Programs: []qnet.Program{qnet.QFT(grid.Tiles())},
		Seeds:    []int64{1, 2},
		Options:  []Option{WithFailureRate(0.1)},
	}
}

// TestSweepCoversSpaceExactlyOnce asserts the sweep returns every point
// of the space exactly once, in expansion order.
func TestSweepCoversSpaceExactlyOnce(t *testing.T) {
	space := test2x2x2Space(t)
	if space.Size() != 8 {
		t.Fatalf("space size = %d, want 8", space.Size())
	}
	points, err := Sweep(context.Background(), space, WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 8 {
		t.Fatalf("got %d points, want 8", len(points))
	}
	seen := make(map[int]bool)
	for i, pt := range points {
		if pt.Err != nil {
			t.Fatalf("point %d failed: %v", i, pt.Err)
		}
		if pt.Point.Index != i {
			t.Errorf("point %d has index %d: results not in expansion order", i, pt.Point.Index)
		}
		if seen[pt.Point.Index] {
			t.Errorf("point index %d returned twice", pt.Point.Index)
		}
		seen[pt.Point.Index] = true
	}
	// Expansion order: layouts ≫ resources ≫ seeds (single grid and
	// program), last dimension fastest.
	want := []struct {
		layout Layout
		telep  int
		seed   int64
	}{
		{HomeBase, 16, 1}, {HomeBase, 16, 2}, {HomeBase, 8, 1}, {HomeBase, 8, 2},
		{MobileQubit, 16, 1}, {MobileQubit, 16, 2}, {MobileQubit, 8, 1}, {MobileQubit, 8, 2},
	}
	for i, w := range want {
		pt := points[i].Point
		if pt.Layout != w.layout || pt.Resources.Teleporters != w.telep || pt.Seed != w.seed {
			t.Errorf("point %d = (%v, t=%d, seed=%d), want (%v, t=%d, seed=%d)",
				i, pt.Layout, pt.Resources.Teleporters, pt.Seed, w.layout, w.telep, w.seed)
		}
	}
}

// TestSweepDeterministic asserts sweep results are a pure function of
// the space: worker count and scheduling must not leak into results.
func TestSweepDeterministic(t *testing.T) {
	space := test2x2x2Space(t)
	ctx := context.Background()
	seq, err := Sweep(ctx, space, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	par, err := Sweep(ctx, space, WithWorkers(8))
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(par) {
		t.Fatalf("sequential %d points vs parallel %d", len(seq), len(par))
	}
	for i := range seq {
		if seq[i].Result != par[i].Result {
			t.Errorf("point %d: sequential and 8-worker results differ:\n seq %+v\n par %+v",
				i, seq[i].Result, par[i].Result)
		}
	}
}

func TestSweepEmptyDimension(t *testing.T) {
	space := test2x2x2Space(t)
	space.Programs = nil
	_, err := Sweep(context.Background(), space)
	if !errors.Is(err, qnet.ErrInvalidConfig) {
		t.Fatalf("err = %v, want ErrInvalidConfig", err)
	}
}

func TestSweepInvalidPoint(t *testing.T) {
	space := test2x2x2Space(t)
	space.Depths = []int{0}
	_, err := Sweep(context.Background(), space)
	if !errors.Is(err, qnet.ErrInvalidConfig) {
		t.Fatalf("err = %v, want ErrInvalidConfig (bad depth caught up front)", err)
	}
}

func TestSweepCancelled(t *testing.T) {
	space := test2x2x2Space(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	points, err := Sweep(ctx, space)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(points) != 0 {
		// Cancelled before any dispatch: workers abort their in-flight
		// runs, so nothing (or at most nothing) should be delivered.
		t.Errorf("got %d points from a pre-cancelled sweep", len(points))
	}
}

func TestSweepProgress(t *testing.T) {
	space := test2x2x2Space(t)
	var calls int
	last := -1
	_, err := Sweep(context.Background(), space, WithWorkers(2),
		WithProgress(func(done, total int) {
			calls++
			if total != 8 {
				t.Errorf("progress total = %d, want 8", total)
			}
			if done <= last {
				t.Errorf("progress went backwards: %d after %d", done, last)
			}
			last = done
		}))
	if err != nil {
		t.Fatal(err)
	}
	if calls != 8 || last != 8 {
		t.Errorf("progress called %d times ending at %d, want 8 ending at 8", calls, last)
	}
}

func TestStreamDeliversAll(t *testing.T) {
	space := test2x2x2Space(t)
	ch, total, err := Stream(context.Background(), space, WithWorkers(3))
	if err != nil {
		t.Fatal(err)
	}
	if total != 8 {
		t.Fatalf("total = %d, want 8", total)
	}
	seen := make(map[int]bool)
	for pt := range ch {
		if seen[pt.Point.Index] {
			t.Errorf("stream delivered index %d twice", pt.Point.Index)
		}
		seen[pt.Point.Index] = true
	}
	if len(seen) != 8 {
		t.Errorf("stream delivered %d points, want 8", len(seen))
	}
}

// depthSweepSpace mirrors the cmd/sweep default grid: the purifier-depth
// ablation on a 6×6 mesh (QFT-36, HomeBase, t=g=16 p=8, depths 1-5).
// The benchmarks below compare the seed's sequential loop against the
// concurrent sweep engine on exactly this workload.
func depthSweepSpace(tb testing.TB, gridN int) Space {
	grid := testGrid(tb, gridN)
	return Space{
		Grids:     []qnet.Grid{grid},
		Layouts:   []Layout{HomeBase},
		Resources: []Resources{{Teleporters: 16, Generators: 16, Purifiers: 8}},
		Programs:  []qnet.Program{qnet.QFT(grid.Tiles())},
		Depths:    []int{1, 2, 3, 4, 5},
	}
}

func benchmarkSweep(b *testing.B, gridN, workers int) {
	space := depthSweepSpace(b, gridN)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		points, err := Sweep(ctx, space, WithWorkers(workers))
		if err != nil {
			b.Fatal(err)
		}
		for _, pt := range points {
			if pt.Err != nil {
				b.Fatal(pt.Err)
			}
		}
	}
}

// BenchmarkSweepDefaultGridSequential is the seed's behavior: the
// cmd/sweep depth ablation run one configuration at a time.
func BenchmarkSweepDefaultGridSequential(b *testing.B) { benchmarkSweep(b, 6, 1) }

// BenchmarkSweepDefaultGridWorkers8 is the same grid through 8 sweep
// workers; on a multi-core host it completes close to
// max(point)/sum(point) of the sequential time.
func BenchmarkSweepDefaultGridWorkers8(b *testing.B) { benchmarkSweep(b, 6, 8) }

// Smaller variants for quick comparisons on constrained machines.
func BenchmarkSweepSmallGridSequential(b *testing.B) { benchmarkSweep(b, 4, 1) }
func BenchmarkSweepSmallGridWorkers8(b *testing.B)   { benchmarkSweep(b, 4, 8) }
