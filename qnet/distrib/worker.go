// The worker half of the distributed sweep service: executes one
// shard of run points through the in-process sweep engine, consulting
// the fleet's shared result store, and streams finished points back.

package distrib

import (
	"context"
	"runtime"
	"sync"
	"time"

	"repro/qnet/simulate"
	"repro/qnet/trace"
)

// Worker executes job shards via the in-process simulation engine.  A
// Worker carries no job state between shards and is safe for concurrent
// use; the HTTP Server and the Loopback transport both drive one
// through Execute.  Status exposes its live progress counters and — with
// WithWorkerTelemetry — the event-rate and occupancy telemetry of the
// runs in flight.
type Worker struct {
	store       simulate.Store
	parallel    int
	runParallel int
	newRemote   func(ctx context.Context, url string) simulate.Store
	telemetry   bool
	traceIv     time.Duration

	mu     sync.Mutex
	active map[*trace.Tracer]struct{} // tracers of in-flight points (telemetry on)
	inRun  int                        // points simulating right now
	done   uint64                     // points finished since the worker started
}

// WorkerOption configures a Worker.
type WorkerOption func(*Worker)

// WithWorkerStore installs the worker's default result store,
// consulted (and written back) for every point of jobs that do not
// name a shared StoreURL of their own.
func WithWorkerStore(st simulate.Store) WorkerOption {
	return func(w *Worker) { w.store = st }
}

// WithWorkerParallelism sets how many points of one job the worker
// simulates concurrently.  Values below 1 (and the default) mean
// GOMAXPROCS.
func WithWorkerParallelism(n int) WorkerOption {
	return func(w *Worker) { w.parallel = n }
}

// WithWorkerRunParallelism runs every simulation of every job on the
// domain-decomposed parallel event engine with n regions
// (simulate.WithParallelism).  Results and cache keys are unchanged —
// parallel runs are byte-identical to serial ones — so a fleet may mix
// workers with different settings against one shared store.  Values
// below 2 (and the default) keep the serial engine.
func WithWorkerRunParallelism(n int) WorkerOption {
	return func(w *Worker) { w.runParallel = n }
}

// WithWorkerTelemetry attaches a telemetry tracer (qnet/trace) to every
// point the worker simulates, sampled at the given simulated-time
// interval (non-positive selects the trace package default).  The live
// snapshots feed Worker.Status — and through it the /v1/status endpoint
// and the coordinator's WithProgress callback — with the in-flight
// runs' event rates and router occupancy.  Tracers are observers:
// results and cache keys are unchanged, so telemetry-on and
// telemetry-off workers may share one fleet store.
func WithWorkerTelemetry(interval time.Duration) WorkerOption {
	return func(w *Worker) { w.telemetry, w.traceIv = true, interval }
}

// NewWorker builds a worker with the given options over the defaults
// (no store, GOMAXPROCS-way parallelism, HTTP remote stores, no
// telemetry).
func NewWorker(opts ...WorkerOption) *Worker {
	w := &Worker{
		newRemote: func(ctx context.Context, url string) simulate.Store {
			return NewRemoteStore(url).WithContext(ctx)
		},
		active: make(map[*trace.Tracer]struct{}),
	}
	for _, opt := range opts {
		opt(w)
	}
	return w
}

// Status returns the worker's live telemetry snapshot.  It is cheap
// (one mutex and a read of each active run's latest sample) and safe to
// call at heartbeat frequency while shards execute.
func (w *Worker) Status() Status {
	w.mu.Lock()
	defer w.mu.Unlock()
	st := Status{ActivePoints: w.inRun, DonePoints: w.done}
	for tr := range w.active {
		lv := tr.Live()
		st.Events += lv.Events
		if lv.At > 0 {
			st.EventRate += float64(lv.Events) / lv.At.Seconds()
		}
		st.Occupancy += lv.MeanOccupancy
	}
	if n := len(w.active); n > 0 {
		st.Occupancy /= float64(n)
	}
	return st
}

// storeFor resolves the store one job runs against: the job's shared
// StoreURL when set (bound to the job's context, so cancelling the
// job aborts its in-flight store traffic), else the worker's own.
func (w *Worker) storeFor(ctx context.Context, job Job) simulate.Store {
	if job.StoreURL != "" {
		return w.newRemote(ctx, job.StoreURL)
	}
	return w.store
}

// Execute runs every point of the job's shard and calls emit once per
// finished point, in completion order, serialized (emit is never
// called concurrently).  Points whose simulation fails are emitted
// with Err set and do not abort the shard; Execute itself returns an
// error only for a malformed job, a cancelled context, or an emit
// failure (a broken result stream).  When a store is available —
// per-job via Job.StoreURL or worker-wide via WithWorkerStore — every
// point is looked up before simulating and stored back after, so a
// reassigned shard re-hits the fleet's store for points its previous
// owner already finished.
func (w *Worker) Execute(ctx context.Context, job Job, emit func(PointResult) error) error {
	if err := job.Validate(); err != nil {
		return err
	}
	space, err := job.Space.Space()
	if err != nil {
		return err
	}
	if w.runParallel >= 2 {
		space.Options = append(space.Options, simulate.WithParallelism(w.runParallel))
	}
	pts, err := space.Points()
	if err != nil {
		return err
	}
	store := w.storeFor(ctx, job)

	parallel := w.parallel
	if parallel < 1 {
		parallel = runtime.GOMAXPROCS(0)
	}
	if parallel > len(job.Indices) {
		parallel = len(job.Indices)
	}

	// The pool mirrors the sweep engine's shape: a feeder, N point
	// runners, one collector serializing emits.  Execute returns the
	// first emit error (the stream consumer hung up) or ctx.Err().
	jobs := make(chan int)
	results := make(chan PointResult, parallel)
	var wg sync.WaitGroup
	wg.Add(parallel)
	for i := 0; i < parallel; i++ {
		go func() {
			defer wg.Done()
			for idx := range jobs {
				if ctx.Err() != nil {
					return
				}
				pr := w.runPoint(ctx, space, pts[idx], store)
				select {
				case results <- pr:
				case <-ctx.Done():
					return
				}
			}
		}()
	}
	go func() {
		defer close(jobs)
		for _, idx := range job.Indices {
			select {
			case jobs <- idx:
			case <-ctx.Done():
				return
			}
		}
	}()
	go func() {
		wg.Wait()
		close(results)
	}()

	var emitErr error
	emitted := 0
	for pr := range results {
		if emitErr == nil {
			if err := emit(pr); err != nil {
				emitErr = err
			} else {
				emitted++
			}
		}
	}
	if emitErr != nil {
		return emitErr
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if emitted != len(job.Indices) {
		// Runners bailed without a context error: impossible today, but
		// a truncated shard must never read as a complete one.
		return context.Canceled
	}
	return nil
}

// runPoint executes one expanded point against the store (when
// present), mapping simulation failure into the wire error form.  The
// point is registered in the worker's live Status for its duration;
// with telemetry on, a per-point tracer makes its event rate and
// occupancy observable while it simulates.
func (w *Worker) runPoint(ctx context.Context, space simulate.Space, pt simulate.Point, store simulate.Store) PointResult {
	w.mu.Lock()
	w.inRun++
	w.mu.Unlock()
	defer func() {
		w.mu.Lock()
		w.inRun--
		w.done++
		w.mu.Unlock()
	}()

	m, err := space.Machine(pt)
	if err != nil {
		return PointResult{Index: pt.Index, Err: err.Error()}
	}
	var key simulate.Key
	if store != nil {
		key = m.CacheKey(pt.Program)
		if res, ok := store.Get(key); ok {
			return PointResult{Index: pt.Index, Result: res, Cached: true}
		}
	}
	if w.telemetry {
		tr := trace.New(trace.Config{Interval: w.traceIv})
		m = m.WithTrace(tr)
		w.mu.Lock()
		w.active[tr] = struct{}{}
		w.mu.Unlock()
		defer func() {
			w.mu.Lock()
			delete(w.active, tr)
			w.mu.Unlock()
		}()
	}
	res, err := m.Run(ctx, pt.Program)
	if err != nil {
		return PointResult{Index: pt.Index, Err: err.Error()}
	}
	if store != nil {
		store.Put(key, res)
	}
	return PointResult{Index: pt.Index, Result: res}
}
