// Command qnetsim runs the event-driven quantum-network simulator on one
// configuration and prints the full result: execution time, channel
// statistics, resource utilizations and classical-network traffic.
//
// Usage:
//
//	qnetsim -workload qft -grid 8 -layout mobile -t 16 -g 16 -p 8
//	qnetsim -workload mm -grid 16 -layout home -t 24 -g 24 -p 6
//	qnetsim -program kernel.q -grid 8 -heatmap      # custom program file
//	qnetsim -grid 12 -timeout 30s                   # bounded run
//	qnetsim -route zigzag                           # routing policy (xy, yx, zigzag, least-congested)
//	qnetsim -cache-dir .qnet                        # warm re-runs hit the result cache
//	qnetsim -grid 16 -parallel 4                    # domain-decomposed parallel engine (byte-identical results)
//	qnetsim -grid 8 -trace trace.json               # time-series congestion trace (qnet/trace JSON)
//	qnetsim -grid 16 -cpuprofile cpu.pprof          # profile the hot loop (go tool pprof cpu.pprof)
//	qnetsim -grid 16 -memprofile mem.pprof          # heap profile after the run
//
// Program files use the instruction-stream format of qnet.ParseProgram:
//
//	qubits 16
//	op 0 1
//	qft 8 8
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/qnet"
	"repro/qnet/fault"
	"repro/qnet/route"
	"repro/qnet/simulate"
	"repro/qnet/trace"
)

func main() {
	// All work happens in realMain so that deferred cleanups — the pprof
	// profile writers in particular — run before the process exits.
	os.Exit(realMain())
}

func realMain() int {
	var (
		wl       = flag.String("workload", "qft", "workload: qft, mm or me (ignored with -program)")
		program  = flag.String("program", "", "path to an instruction-stream file (see qnet.ParseProgram)")
		gridN    = flag.Int("grid", 8, "mesh edge length")
		layout   = flag.String("layout", "home", "layout: home or mobile")
		t        = flag.Int("t", 16, "teleporters per T' node")
		g        = flag.Int("g", 16, "generators per G node")
		p        = flag.Int("p", 16, "queue purifiers per P node")
		depth    = flag.Int("depth", 3, "queue purifier depth")
		level    = flag.Int("level", 2, "Steane code concatenation level")
		hopCell  = flag.Int("hopcells", 600, "cells per mesh hop")
		routeFl  = flag.String("route", "xy", "routing policy: "+strings.Join(route.Names(), ", ")+", fault-adaptive")
		failure  = flag.Float64("failure", 0, "injected purification failure probability per batch")
		fDead    = flag.Float64("fault-dead", 0, "fraction of mesh links killed before the run (use -route fault-adaptive to route around them)")
		fDrop    = flag.Float64("fault-drop", 0, "per-hop batch drop probability on live links")
		seed     = flag.Int64("seed", 0, "fault-pattern and failure-injection RNG seed")
		parallel = flag.Int("parallel", 0, "run on the domain-decomposed parallel engine with this many row-band regions (0 or 1 = serial; results are byte-identical)")
		timeout  = flag.Duration("timeout", 0, "abort the simulation after this wall-clock time (0 = none)")
		traceOut = flag.String("trace", "", "write a time-series congestion trace (versioned JSON) to this file")
		traceIv  = flag.Duration("trace-interval", 0, "simulated-time sampling interval for -trace (0 = the trace package default)")
		heatmap  = flag.Bool("heatmap", false, "print per-tile utilization heatmaps")
		cache    = flag.String("cache-dir", "", "directory for the on-disk result cache (warm runs are served from it)")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile of the simulation to this file (go tool pprof)")
		memProf  = flag.String("memprofile", "", "write a heap profile after the simulation to this file (go tool pprof)")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "qnetsim:", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "qnetsim:", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		// The heap profile is written after the run (deferred), so it
		// captures the simulator's full allocation profile rather than
		// startup noise.
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "qnetsim:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle live objects so the profile reflects retained memory
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintln(os.Stderr, "qnetsim:", err)
			}
		}()
	}

	if err := run(opts{
		workload: *wl, program: *program, gridN: *gridN, layout: *layout,
		t: *t, g: *g, p: *p, depth: *depth, level: *level, hopCells: *hopCell,
		route: *routeFl, failure: *failure, faultDead: *fDead, faultDrop: *fDrop,
		seed: *seed, parallel: *parallel, timeout: *timeout,
		traceOut: *traceOut, traceInterval: *traceIv,
		heatmap: *heatmap, cacheDir: *cache,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "qnetsim:", err)
		return 1
	}
	return 0
}

type opts struct {
	workload, program, layout    string
	gridN, t, g, p, depth, level int
	hopCells                     int
	route                        string
	failure                      float64
	faultDead, faultDrop         float64
	seed                         int64
	parallel                     int
	timeout                      time.Duration
	traceOut                     string
	traceInterval                time.Duration
	heatmap                      bool
	cacheDir                     string
}

func run(o opts) error {
	grid, err := qnet.NewGrid(o.gridN, o.gridN)
	if err != nil {
		return err
	}

	var layout simulate.Layout
	switch o.layout {
	case "home":
		layout = simulate.HomeBase
	case "mobile":
		layout = simulate.MobileQubit
	default:
		return fmt.Errorf("unknown layout %q (want home or mobile)", o.layout)
	}

	var prog qnet.Program
	if o.program != "" {
		f, err := os.Open(o.program)
		if err != nil {
			return err
		}
		defer f.Close()
		prog, err = qnet.ParseProgram(f)
		if err != nil {
			return err
		}
	} else {
		switch o.workload {
		case "qft":
			prog = qnet.QFT(grid.Tiles())
		case "mm":
			prog = qnet.ModMult(grid.Tiles() / 2)
		case "me":
			prog = qnet.ModExp(grid.Tiles()/4, 1)
		default:
			return fmt.Errorf("unknown workload %q (want qft, mm or me)", o.workload)
		}
	}

	policy, err := route.Parse(o.route)
	if err != nil {
		return err
	}

	mopts := []simulate.Option{
		simulate.WithResources(o.t, o.g, o.p),
		simulate.WithPurifyDepth(o.depth),
		simulate.WithCodeLevel(o.level),
		simulate.WithHopCells(o.hopCells),
		simulate.WithRouting(policy),
		simulate.WithFailureRate(o.failure),
		simulate.WithFaults(fault.Spec{DeadLinks: o.faultDead, Drop: o.faultDrop}),
		simulate.WithSeed(o.seed),
		simulate.WithParallelism(o.parallel),
	}
	if o.cacheDir != "" {
		mopts = append(mopts, simulate.WithCacheDir(o.cacheDir))
	}
	m, err := simulate.New(grid, layout, mopts...)
	if err != nil {
		return err
	}

	// -trace attaches a telemetry tracer; the traced run always
	// simulates (never answers from the cache) so the time series
	// reflects a real execution.
	var tracer *trace.Tracer
	if o.traceOut != "" {
		tracer = trace.New(trace.Config{Interval: o.traceInterval})
		m = m.WithTrace(tracer)
	}

	ctx := context.Background()
	if o.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, o.timeout)
		defer cancel()
	}

	// The heatmap needs per-component Details, which are not cached;
	// plain runs go through Machine.Run so an attached cache can serve
	// warm re-runs without simulating.
	var res simulate.Result
	var detail *simulate.Detail
	if o.heatmap {
		res, detail, err = m.RunDetailed(ctx, prog)
	} else {
		res, err = m.Run(ctx, prog)
	}
	if err != nil {
		return err
	}

	fmt.Printf("workload            %s (%d logical qubits, %d ops)\n", prog.Name, prog.Qubits, res.Ops)
	fmt.Printf("machine             %dx%d mesh, %v layout, t=%d g=%d p=%d, depth-%d purifiers, level-%d code, %s routing\n",
		o.gridN, o.gridN, layout, o.t, o.g, o.p, o.depth, o.level, m.RoutingName())
	fmt.Printf("execution time      %v\n", res.Exec)
	fmt.Printf("channels            %d (%d ops were local)\n", res.Channels, res.LocalOps)
	fmt.Printf("EPR pairs delivered %d\n", res.PairsDelivered)
	fmt.Printf("EPR pair-hops       %d (%d router turns)\n", res.PairHops, res.Turns)
	if res.FailedBatches > 0 {
		fmt.Printf("failed batches      %d (failure rate %.2f)\n", res.FailedBatches, o.failure)
	}
	if res.DeadLinks > 0 || res.DroppedBatches > 0 {
		fmt.Printf("faults              %d dead links, %d dropped batches\n", res.DeadLinks, res.DroppedBatches)
	}
	fmt.Printf("channel latency     mean %v, max %v\n", res.MeanChannelLatency, res.MaxChannelLatency)
	fmt.Printf("utilization         teleporters %.1f%%, generators %.1f%%, purifiers %.1f%%\n",
		100*res.TeleporterUtil, 100*res.GeneratorUtil, 100*res.PurifierUtil)
	fmt.Printf("classical messages  %d\n", res.ClassicalMessages)
	fmt.Printf("simulation events   %d\n", res.Events)

	if tracer != nil {
		ex := tracer.Export()
		f, err := os.Create(o.traceOut)
		if err != nil {
			return err
		}
		if err := ex.Encode(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("trace               %s (%d samples every %v, %d drops, %d resends)\n",
			o.traceOut, len(ex.Times), time.Duration(ex.IntervalNS), ex.TotalDrops, ex.TotalResends)
	}

	if o.heatmap {
		for _, metric := range []string{"teleporter", "purifier"} {
			fmt.Println()
			m, err := detail.Heatmap(metric)
			if err != nil {
				return err
			}
			fmt.Print(m)
		}
		hot, v := detail.HottestTile()
		fmt.Printf("\nhottest T' node: %v at %.1f%%\n", hot, 100*v)
	}
	if c := m.Cache(); c != nil {
		fmt.Fprintln(os.Stderr, "qnetsim: result cache:", c.Stats())
	}
	return nil
}
