// Package quantum is a small state-vector simulator used to validate the
// circuit-level building blocks the architecture models abstract over:
// the teleportation protocol of Figure 3 (local operations, two classical
// bits, Pauli corrections) and the purification round of Figure 7
// (bilateral CNOT, measurement comparison).
//
// The architecture packages never run amplitudes — they use the
// fidelity recurrences of Section 4 — but the tests here pin those
// recurrences to the actual quantum mechanics for small systems.
package quantum

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"
)

// State is a pure quantum state of n qubits: 2^n complex amplitudes.
// Qubit 0 is the most significant bit of the basis index, matching the
// usual circuit-diagram reading order.
type State struct {
	n   int
	amp []complex128
}

// NewState returns the all-zeros computational basis state |0...0> of n
// qubits.
func NewState(n int) (*State, error) {
	if n < 1 || n > 20 {
		return nil, fmt.Errorf("quantum: qubit count %d out of range [1,20]", n)
	}
	amp := make([]complex128, 1<<uint(n))
	amp[0] = 1
	return &State{n: n, amp: amp}, nil
}

// Qubits returns the number of qubits.
func (s *State) Qubits() int { return s.n }

// Amplitude returns the amplitude of basis state i.
func (s *State) Amplitude(i int) complex128 { return s.amp[i] }

// Norm returns the state's norm (should be 1).
func (s *State) Norm() float64 {
	var t float64
	for _, a := range s.amp {
		t += real(a)*real(a) + imag(a)*imag(a)
	}
	return math.Sqrt(t)
}

// bit returns the value of qubit q in basis index i.
func (s *State) bit(i, q int) int {
	return (i >> uint(s.n-1-q)) & 1
}

// flip returns basis index i with qubit q flipped.
func (s *State) flip(i, q int) int {
	return i ^ (1 << uint(s.n-1-q))
}

// ApplyOne applies a single-qubit unitary [[a,b],[c,d]] to qubit q.
func (s *State) ApplyOne(q int, a, b, c, d complex128) {
	if q < 0 || q >= s.n {
		panic(fmt.Sprintf("quantum: qubit %d out of range", q))
	}
	for i := range s.amp {
		if s.bit(i, q) == 0 {
			j := s.flip(i, q)
			a0, a1 := s.amp[i], s.amp[j]
			s.amp[i] = a*a0 + b*a1
			s.amp[j] = c*a0 + d*a1
		}
	}
}

// H applies a Hadamard gate to qubit q.
func (s *State) H(q int) {
	r := complex(1/math.Sqrt2, 0)
	s.ApplyOne(q, r, r, r, -r)
}

// X applies a bit flip to qubit q.
func (s *State) X(q int) { s.ApplyOne(q, 0, 1, 1, 0) }

// Z applies a phase flip to qubit q.
func (s *State) Z(q int) { s.ApplyOne(q, 1, 0, 0, -1) }

// Y applies the Pauli Y gate to qubit q.
func (s *State) Y(q int) { s.ApplyOne(q, 0, -1i, 1i, 0) }

// CNOT applies a controlled-NOT with the given control and target.
func (s *State) CNOT(control, target int) {
	if control == target {
		panic("quantum: CNOT control equals target")
	}
	for i := range s.amp {
		if s.bit(i, control) == 1 && s.bit(i, target) == 0 {
			j := s.flip(i, target)
			s.amp[i], s.amp[j] = s.amp[j], s.amp[i]
		}
	}
}

// Measure projects qubit q in the computational basis using rng for the
// outcome, returning the observed bit.  The state collapses and is
// renormalized.
func (s *State) Measure(q int, rng *rand.Rand) int {
	var p1 float64
	for i, a := range s.amp {
		if s.bit(i, q) == 1 {
			p1 += real(a)*real(a) + imag(a)*imag(a)
		}
	}
	outcome := 0
	if rng.Float64() < p1 {
		outcome = 1
	}
	s.project(q, outcome)
	return outcome
}

// project collapses qubit q to the given value and renormalizes.
func (s *State) project(q, value int) {
	var norm float64
	for i, a := range s.amp {
		if s.bit(i, q) != value {
			s.amp[i] = 0
		} else {
			norm += real(a)*real(a) + imag(a)*imag(a)
		}
	}
	if norm == 0 {
		panic("quantum: projecting onto zero-probability outcome")
	}
	scale := complex(1/math.Sqrt(norm), 0)
	for i := range s.amp {
		s.amp[i] *= scale
	}
}

// PrepareEPR entangles qubits a and b (assumed |00>) into the Bell state
// Φ+ = (|00> + |11>)/√2 — the paper's EPR pair generation (Eq 4 with
// perfect gates).
func (s *State) PrepareEPR(a, b int) {
	s.H(a)
	s.CNOT(a, b)
}

// FidelityTo returns |<other|s>|² for two states of equal size.
func (s *State) FidelityTo(other *State) float64 {
	if other.n != s.n {
		panic("quantum: comparing states of different sizes")
	}
	var in complex128
	for i := range s.amp {
		in += cmplx.Conj(other.amp[i]) * s.amp[i]
	}
	return real(in)*real(in) + imag(in)*imag(in)
}

// Teleport runs the Figure 3 protocol: the state of qubit data is
// transferred onto qubit eprB using the entangled pair (eprA, eprB).
// The three qubits must be distinct; (eprA, eprB) must already hold an
// EPR pair.  Returns the two classical bits sent to the target side.
//
// After the call, qubit eprB carries the former state of data (the
// no-cloning theorem is respected: data collapses during the protocol).
func (s *State) Teleport(data, eprA, eprB int, rng *rand.Rand) (m1, m2 int) {
	// Local operations at the source (step 2): CNOT data->eprA, H data.
	s.CNOT(data, eprA)
	s.H(data)
	// Measure both source qubits (the two classical bits of step 3).
	m1 = s.Measure(data, rng)
	m2 = s.Measure(eprA, rng)
	// Correction at the target (step 4).
	if m2 == 1 {
		s.X(eprB)
	}
	if m1 == 1 {
		s.Z(eprB)
	}
	return m1, m2
}
