package simulate

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"repro/internal/netsim"

	"repro/qnet"
	"repro/qnet/fault"
	"repro/qnet/route"
)

// Resources is one per-node resource allocation: t teleporters, g
// generators and p queue purifiers.
type Resources struct {
	Teleporters, Generators, Purifiers int
}

// SeedRange returns the canonical n-seed ensemble {1, 2, ..., n} used
// throughout this repository for Space.Seeds (never less than one
// seed).  Centralizing it keeps commands, examples and figures on the
// same ensemble, so their cached results share content keys.
func SeedRange(n int) []int64 {
	if n < 1 {
		n = 1
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(i + 1)
	}
	return out
}

// flightGroup tracks content keys currently being simulated, so
// duplicate in-flight points can wait for the first run instead of
// repeating it.
type flightGroup struct {
	mu       sync.Mutex
	inflight map[Key]chan struct{}
}

// newFlightGroup returns an empty flight group.
func newFlightGroup() *flightGroup {
	return &flightGroup{inflight: make(map[Key]chan struct{})}
}

// claim registers the key as in flight.  It returns (nil, true) when
// the caller now owns the flight and must release it, or (wait, false)
// when another goroutine owns it; wait closes on release.
func (f *flightGroup) claim(k Key) (<-chan struct{}, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if ch, ok := f.inflight[k]; ok {
		return ch, false
	}
	f.inflight[k] = make(chan struct{})
	return nil, true
}

// release ends the caller's flight, waking every waiter.
func (f *flightGroup) release(k Key) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if ch, ok := f.inflight[k]; ok {
		close(ch)
		delete(f.inflight, k)
	}
}

// Allocation is one point of the paper's Figure 16 resource sweep:
// teleporters and generators are scaled to Ratio times the purifier
// count while the total area t+g+p stays fixed.
type Allocation = netsim.Allocation

// Allocations builds the Figure 16 configurations: for each ratio r the
// area budget is split so t = g ≈ r·p and t+g+p = area.
func Allocations(area int, ratios []int) ([]Allocation, error) {
	return netsim.SweepAllocations(area, ratios)
}

// AllocationResources converts an allocation to a sweep resource point.
func AllocationResources(a Allocation) Resources {
	return Resources{Teleporters: a.T, Generators: a.G, Purifiers: a.P}
}

// Space is a parameter grid to sweep: the cross product of every
// populated dimension.  Grids, Layouts, Resources and Programs are
// required; Depths defaults to {3} (the paper's purifier depth),
// Routings to {nil} (dimension-order routing), Faults to {the zero
// Spec} (a healthy mesh) and Seeds to {0}.  Options are applied to
// every machine before the per-point settings, so device parameters,
// code level, hop length or failure injection can be varied
// machine-wide.
type Space struct {
	Grids     []qnet.Grid
	Layouts   []Layout
	Resources []Resources
	Programs  []qnet.Program
	Depths    []int
	Routings  []route.Policy
	Faults    []fault.Spec
	Seeds     []int64
	Options   []Option
}

// Size returns the number of points the space expands to.
func (sp Space) Size() int {
	n := len(sp.Grids) * len(sp.Layouts) * len(sp.Resources) * len(sp.Programs)
	if len(sp.Depths) > 0 {
		n *= len(sp.Depths)
	}
	if len(sp.Routings) > 0 {
		n *= len(sp.Routings)
	}
	if len(sp.Faults) > 0 {
		n *= len(sp.Faults)
	}
	if len(sp.Seeds) > 0 {
		n *= len(sp.Seeds)
	}
	return n
}

// Point is one expanded configuration of a Space.  Index is the point's
// position in the deterministic expansion order (grids ≫ layouts ≫
// resources ≫ programs ≫ depths ≫ routings ≫ faults ≫ seeds, last
// dimension fastest).
type Point struct {
	Index     int
	Grid      qnet.Grid
	Layout    Layout
	Resources Resources
	Program   qnet.Program
	Depth     int
	Routing   route.Policy
	Faults    fault.Spec
	Seed      int64
}

// RoutingName returns the canonical name of the point's routing policy
// ("xy" for the nil default), the form cache keys and result grouping
// use.
func (p Point) RoutingName() string { return route.NameOf(p.Routing) }

// FaultsName returns the canonical rendering of the point's fault spec
// ("none" for a healthy mesh), the form result grouping and CLI tables
// use.
func (p Point) FaultsName() string { return p.Faults.String() }

// SweepPoint is one finished run of a sweep: the point, its result, and
// the error if the run failed (a failed point does not abort the sweep).
// Cached reports that the result was served from the sweep's Cache
// instead of being simulated.
type SweepPoint struct {
	Point  Point
	Result Result
	Err    error
	Cached bool
}

// Summary aggregates a finished sweep: point counts, cache traffic and
// failures.  It is computed from the returned points by Summarize, so
// it works for Sweep and for a drained Stream alike.
type Summary struct {
	// Points is the number of finished points summarized.
	Points int
	// CacheHits is how many of them were served from the cache.
	CacheHits int
	// Failed is how many ended with a non-nil Err.
	Failed int
	// CorruptEntries is the store's corrupt-entry count at summary
	// time (zero unless the summary was built by SummarizeStore with a
	// store that reports rot, e.g. a disk cache with unparseable
	// files).  Fleet-shared stores use it to detect on-disk damage
	// that would otherwise silently degrade into misses.
	CorruptEntries uint64
}

// HitRate returns CacheHits / Points, or 0 for an empty sweep.
func (s Summary) HitRate() float64 {
	if s.Points == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(s.Points)
}

// String renders the summary compactly ("20 points, 15 cached (75.0%),
// 0 failed"), flagging corrupt store entries when any were seen.
func (s Summary) String() string {
	out := fmt.Sprintf("%d points, %d cached (%.1f%%), %d failed",
		s.Points, s.CacheHits, 100*s.HitRate(), s.Failed)
	if s.CorruptEntries > 0 {
		out += fmt.Sprintf(", %d corrupt store entries", s.CorruptEntries)
	}
	return out
}

// Summarize tallies a sweep's finished points into a Summary.
func Summarize(points []SweepPoint) Summary {
	var s Summary
	for _, pt := range points {
		s.Points++
		if pt.Cached {
			s.CacheHits++
		}
		if pt.Err != nil {
			s.Failed++
		}
	}
	return s
}

// SummarizeStore is Summarize folded together with the sweep's store
// health: the store's corrupt-entry count is copied into the summary,
// so a fleet-shared store's rot surfaces next to the hit rate instead
// of hiding inside silently-degraded misses.  A nil store is allowed
// and behaves like plain Summarize.
func SummarizeStore(points []SweepPoint, st Store) Summary {
	s := Summarize(points)
	if st != nil {
		s.CorruptEntries = st.Stats().CorruptEntries
	}
	return s
}

// Points expands the space into its full point list in the
// deterministic order documented on Point.Index.  The expansion is a
// pure function of the space's dimensions, so two processes expanding
// equal spaces agree on every index — the property qnet/distrib relies
// on to ship shards as bare index lists.
func (sp Space) Points() ([]Point, error) { return sp.points() }

// Machine builds the validated Machine for one expanded point of the
// space, exactly as Sweep does for its workers: the space's Options
// first, then the point's resources, depth, routing and seed.
func (sp Space) Machine(pt Point) (*Machine, error) { return sp.machine(pt) }

// points expands the space in deterministic order.
func (sp Space) points() ([]Point, error) {
	for _, dim := range []struct {
		name string
		n    int
	}{
		{"Grids", len(sp.Grids)},
		{"Layouts", len(sp.Layouts)},
		{"Resources", len(sp.Resources)},
		{"Programs", len(sp.Programs)},
	} {
		if dim.n == 0 {
			return nil, &qnet.ConfigError{Field: "Space." + dim.name, Value: 0, Reason: "dimension must not be empty"}
		}
	}
	depths := sp.Depths
	if len(depths) == 0 {
		depths = []int{3}
	}
	routings := sp.Routings
	if len(routings) == 0 {
		routings = []route.Policy{nil}
	}
	faults := sp.Faults
	if len(faults) == 0 {
		faults = []fault.Spec{{}}
	}
	seeds := sp.Seeds
	if len(seeds) == 0 {
		seeds = []int64{0}
	}
	pts := make([]Point, 0, sp.Size())
	for _, grid := range sp.Grids {
		for _, layout := range sp.Layouts {
			for _, res := range sp.Resources {
				for _, prog := range sp.Programs {
					for _, depth := range depths {
						for _, routing := range routings {
							for _, fs := range faults {
								for _, seed := range seeds {
									pts = append(pts, Point{
										Index:     len(pts),
										Grid:      grid,
										Layout:    layout,
										Resources: res,
										Program:   prog,
										Depth:     depth,
										Routing:   routing,
										Faults:    fs,
										Seed:      seed,
									})
								}
							}
						}
					}
				}
			}
		}
	}
	return pts, nil
}

// machine builds the validated Machine for one point.
func (sp Space) machine(pt Point) (*Machine, error) {
	opts := make([]Option, 0, len(sp.Options)+5)
	opts = append(opts, sp.Options...)
	opts = append(opts,
		WithResources(pt.Resources.Teleporters, pt.Resources.Generators, pt.Resources.Purifiers),
		WithPurifyDepth(pt.Depth),
		WithRouting(pt.Routing),
		WithFaults(pt.Faults),
		WithSeed(pt.Seed),
	)
	return New(pt.Grid, pt.Layout, opts...)
}

// SweepOption configures a sweep.  WithCache and WithCacheDir satisfy
// both SweepOption and Option, so the same cache attachment works on a
// Machine and on a Sweep.
type SweepOption interface {
	applySweep(*sweepConfig)
}

// sweepOptionFunc adapts a plain function to the SweepOption interface.
type sweepOptionFunc func(*sweepConfig)

func (f sweepOptionFunc) applySweep(c *sweepConfig) { f(c) }

type sweepConfig struct {
	workers  int
	progress func(done, total int)
	store    Store
	cacheOpt *cacheOption
}

// WithWorkers sets the worker-goroutine count.  Values below 1 (and the
// default) mean GOMAXPROCS.
func WithWorkers(n int) SweepOption {
	return sweepOptionFunc(func(c *sweepConfig) { c.workers = n })
}

// WithProgress installs a progress callback invoked after every finished
// point with the completed and total counts.  Sweep calls it from the
// collecting goroutine, so the callback needs no locking; Stream ignores
// it (the drained channel is the progress signal).
func WithProgress(fn func(done, total int)) SweepOption {
	return sweepOptionFunc(func(c *sweepConfig) { c.progress = fn })
}

// CacheOption attaches a result cache and satisfies both Option (a
// machine consults the cache on every Run) and SweepOption (the sweep
// engine consults it with single-flight dedup across workers).  A
// sweep whose Space.Options carry a CacheOption adopts the machines'
// cache as its sweep cache, so the attachment works at either level.
type CacheOption interface {
	Option
	SweepOption
}

// cacheOption is the shared implementation of WithCache, WithCacheDir
// and WithStore.  The disk-backed variant memoizes its cache, so one
// WithCacheDir value applied to many machines (e.g. via Space.Options,
// once per expanded point) builds and shares a single store.
type cacheOption struct {
	store Store
	dir   string
	once  sync.Once
	built *Cache
	err   error
}

// resolve returns the option's store, building the disk-backed cache
// on first use.
func (o *cacheOption) resolve() (Store, error) {
	if o.store != nil {
		return o.store, nil
	}
	o.once.Do(func() {
		o.built, o.err = NewDiskCache(o.dir, 0)
	})
	if o.err != nil {
		return nil, o.err
	}
	return o.built, nil
}

func (o *cacheOption) applyMachine(s *machineSpec) {
	st, err := o.resolve()
	if err != nil {
		s.err = &qnet.ConfigError{Field: "CacheDir", Value: o.dir, Reason: err.Error()}
		return
	}
	s.store = st
}

func (o *cacheOption) applySweep(cfg *sweepConfig) {
	cfg.cacheOpt = o
}

// WithCache installs a result cache: every point's content hash
// (Machine.CacheKey) is looked up before simulating, successful runs
// are stored back, and served points are marked SweepPoint.Cached.  The
// same cache can be shared across machines and sweeps — and, when built
// with NewDiskCache, across processes — so regenerating a figure after
// changing one dimension of its space only simulates the new points.
func WithCache(c *Cache) CacheOption {
	return &cacheOption{store: c}
}

// WithCacheDir is WithCache with a throwaway disk-backed cache rooted
// at dir (capacity DefaultCacheEntries).  Use NewDiskCache plus
// WithCache instead when the hit/miss counters are wanted afterwards;
// Summarize recovers per-sweep hit counts either way, and a Machine
// exposes its cache via Cache().
func WithCacheDir(dir string) CacheOption {
	return &cacheOption{dir: dir}
}

// Sweep expands the space and runs every point, fanning the runs out
// across worker goroutines.  Each point gets its own Machine and its own
// per-run RNG seeded from the point's seed, so results are independent
// of worker count and scheduling: a sweep is exactly as reproducible as
// its points.  Results are returned in expansion order.  Per-point
// simulation failures are recorded in SweepPoint.Err; Sweep itself
// returns an error only for an invalid space or a cancelled context
// (alongside the points finished before cancellation).
func Sweep(ctx context.Context, space Space, opts ...SweepOption) ([]SweepPoint, error) {
	cfg := sweepOptions(opts)
	ch, total, err := stream(ctx, space, cfg)
	if err != nil {
		return nil, err
	}
	out := make([]SweepPoint, 0, total)
	for sp := range ch {
		out = append(out, sp)
		if cfg.progress != nil {
			cfg.progress(len(out), total)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Point.Index < out[j].Point.Index })
	if err := ctx.Err(); err != nil {
		return out, err
	}
	return out, nil
}

// Stream is Sweep with results delivered as they finish, in completion
// order, over the returned channel.  The second return is the total
// point count.  The channel closes when every point has been delivered
// or the context is cancelled.  The caller must either drain the
// channel or cancel ctx; abandoning the channel mid-stream leaves the
// worker goroutines blocked on their sends for the life of ctx.
func Stream(ctx context.Context, space Space, opts ...SweepOption) (<-chan SweepPoint, int, error) {
	return stream(ctx, space, sweepOptions(opts))
}

func sweepOptions(opts []SweepOption) sweepConfig {
	var cfg sweepConfig
	for _, opt := range opts {
		opt.applySweep(&cfg)
	}
	if cfg.workers < 1 {
		cfg.workers = runtime.GOMAXPROCS(0)
	}
	return cfg
}

func stream(ctx context.Context, space Space, cfg sweepConfig) (<-chan SweepPoint, int, error) {
	pts, err := space.points()
	if err != nil {
		return nil, 0, err
	}
	if cfg.cacheOpt != nil {
		st, err := cfg.cacheOpt.resolve()
		if err != nil {
			return nil, 0, err
		}
		cfg.store = st
	}
	// Validate every point's machine up front so configuration errors
	// surface before any simulation work is spent.
	machines := make([]*Machine, len(pts))
	for i, pt := range pts {
		m, err := space.machine(pt)
		if err != nil {
			return nil, 0, err
		}
		machines[i] = m
	}
	// A store attached through Space.Options lands on every machine;
	// adopt it as the sweep store so those points get the same
	// single-flight dedup and hit accounting as a WithCache sweep
	// (workers bypass the machine-level attachment via runUncached).
	if cfg.store == nil {
		for _, m := range machines {
			if m.store != nil {
				cfg.store = m.store
				break
			}
		}
	}

	workers := cfg.workers
	if workers > len(pts) {
		workers = len(pts)
	}
	jobs := make(chan int)
	results := make(chan SweepPoint, workers)

	// Single-flight dedup for cached sweeps: when several in-flight
	// points share a content key (e.g. a multi-seed ensemble of a
	// deterministic configuration, whose keys canonicalize the seed
	// away), only the first simulates; the rest wait and take the
	// cached result.  This makes hit counts a pure function of the
	// space — independent of worker count and scheduling — and keeps
	// the documented "one simulation plus cache hits" collapse true on
	// multi-core hosts.
	flights := newFlightGroup()

	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range jobs {
				// The explicit Err checks (here and in the feeder) make
				// cancellation deterministic: a select with a ready send
				// and a closed Done channel picks randomly, which would
				// let an already-cancelled sweep deliver stray points.
				if ctx.Err() != nil {
					return
				}
				var (
					res    Result
					err    error
					cached bool
				)
				if cfg.store == nil {
					res, err = machines[i].runUncached(ctx, pts[i].Program)
				} else {
					// Claim-first: every point takes the flight for its
					// key before the (single, counted) cache lookup, so a
					// duplicate can never slip between another worker's
					// Put and release and re-simulate — and the hit/miss
					// counters stay a pure function of the space: one
					// miss per unique key, one hit per duplicate point.
					key := machines[i].CacheKey(pts[i].Program)
					claimed := false
					for !claimed {
						var wait <-chan struct{}
						if wait, claimed = flights.claim(key); !claimed {
							select {
							case <-wait:
							case <-ctx.Done():
								return
							}
						}
					}
					if res, cached = cfg.store.Get(key); !cached {
						res, err = machines[i].runUncached(ctx, pts[i].Program)
						if err == nil {
							cfg.store.Put(key, res)
						}
					}
					flights.release(key)
				}
				select {
				case results <- SweepPoint{Point: pts[i], Result: res, Err: err, Cached: cached}:
				case <-ctx.Done():
					return
				}
			}
		}()
	}
	go func() {
		defer close(jobs)
		for i := range pts {
			if ctx.Err() != nil {
				return
			}
			select {
			case jobs <- i:
			case <-ctx.Done():
				return
			}
		}
	}()
	go func() {
		wg.Wait()
		close(results)
	}()
	return results, len(pts), nil
}
