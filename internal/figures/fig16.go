package figures

import (
	"fmt"
	"time"

	"repro/internal/mesh"
	"repro/internal/netsim"
	"repro/internal/report"
	"repro/internal/workload"
)

// Fig16Config parameterizes the Figure 16 reproduction: the benchmark
// execution time of QFT under both layouts as a function of network
// resource allocation, normalized to t = g = p = 1024.
type Fig16Config struct {
	// GridSize is the mesh edge length; the paper uses 16 (QFT-256).
	// The default harness uses 8 to keep run time short; pass 16 for the
	// full-scale reproduction.
	GridSize int
	// Area is the per-tile resource budget t + g + p; 48 by default.
	Area int
	// Ratios are the t/p points of the sweep.
	Ratios []int
}

// DefaultFig16Config returns the quick (8×8, QFT-64) configuration.
func DefaultFig16Config() Fig16Config {
	return Fig16Config{GridSize: 8, Area: 48, Ratios: []int{1, 2, 4, 8}}
}

// Fig16Row is one measurement of the sweep.
type Fig16Row struct {
	Layout     netsim.Layout
	Allocation netsim.Allocation
	Exec       time.Duration
	Normalized float64
	Result     netsim.Result
}

// Fig16Data holds the full sweep, including the normalization runs.
type Fig16Data struct {
	Config    Fig16Config
	Qubits    int
	Baselines map[netsim.Layout]netsim.Result
	Rows      []Fig16Row
}

// Fig16 runs the resource-allocation sweep of Figure 16.
func Fig16(cfg Fig16Config) (*Fig16Data, error) {
	if cfg.GridSize < 2 {
		return nil, fmt.Errorf("figures: grid size %d too small", cfg.GridSize)
	}
	grid, err := mesh.NewGrid(cfg.GridSize, cfg.GridSize)
	if err != nil {
		return nil, err
	}
	qubits := grid.Tiles()
	prog := workload.QFT(qubits)
	allocs, err := netsim.SweepAllocations(cfg.Area, cfg.Ratios)
	if err != nil {
		return nil, err
	}

	data := &Fig16Data{
		Config:    cfg,
		Qubits:    qubits,
		Baselines: make(map[netsim.Layout]netsim.Result, 2),
	}
	for _, layout := range []netsim.Layout{netsim.HomeBase, netsim.MobileQubit} {
		base, err := netsim.Run(netsim.DefaultConfig(grid, layout, 1024, 1024, 1024), prog)
		if err != nil {
			return nil, fmt.Errorf("figures: %v baseline: %w", layout, err)
		}
		data.Baselines[layout] = base
		for _, a := range allocs {
			res, err := netsim.Run(netsim.DefaultConfig(grid, layout, a.T, a.G, a.P), prog)
			if err != nil {
				return nil, fmt.Errorf("figures: %v %v: %w", layout, a, err)
			}
			data.Rows = append(data.Rows, Fig16Row{
				Layout:     layout,
				Allocation: a,
				Exec:       res.Exec,
				Normalized: float64(res.Exec) / float64(base.Exec),
				Result:     res,
			})
		}
	}
	return data, nil
}

// Table renders the sweep as a table.
func (d *Fig16Data) Table() *report.Table {
	t := report.NewTable(
		fmt.Sprintf("Figure 16: QFT-%d execution vs resource allocation (normalized to t=g=p=1024)", d.Qubits),
		"Layout", "Allocation", "Exec", "Normalized", "TeleporterUtil", "PurifierUtil")
	for _, layout := range []netsim.Layout{netsim.HomeBase, netsim.MobileQubit} {
		base := d.Baselines[layout]
		t.AddRow(layout.String(), "t=g=p=1024 (baseline)", base.Exec.String(), 1.0,
			base.TeleporterUtil, base.PurifierUtil)
		for _, r := range d.Rows {
			if r.Layout != layout {
				continue
			}
			t.AddRow(layout.String(), r.Allocation.String(), r.Exec.String(), r.Normalized,
				r.Result.TeleporterUtil, r.Result.PurifierUtil)
		}
	}
	return t
}

// Plot renders normalized execution versus the t/p ratio.
func (d *Fig16Data) Plot() *report.Plot {
	plot := report.NewPlot(
		fmt.Sprintf("Figure 16: QFT-%d normalized execution vs t/p ratio", d.Qubits),
		"t = g = ratio × p", "execution / unlimited-resource execution")
	plot.LogY = true
	for _, layout := range []netsim.Layout{netsim.HomeBase, netsim.MobileQubit} {
		s := report.Series{Name: layout.String()}
		for _, r := range d.Rows {
			if r.Layout != layout {
				continue
			}
			s.X = append(s.X, float64(r.Allocation.Ratio))
			s.Y = append(s.Y, r.Normalized)
		}
		plot.Add(s)
	}
	return plot
}

// MEMMData compares the three Shor's-algorithm kernels (the paper's
// benchmark suite of §5.2) under one allocation.
func MEMM(gridSize int, t, g, p int) (*report.Table, error) {
	grid, err := mesh.NewGrid(gridSize, gridSize)
	if err != nil {
		return nil, err
	}
	half := grid.Tiles() / 2
	progs := []workload.Program{
		workload.QFT(grid.Tiles()),
		workload.ModMult(half),
		workload.ModExp(half/2, 1),
	}
	tab := report.NewTable(
		fmt.Sprintf("Shor kernels on a %dx%d mesh (t=%d g=%d p=%d)", gridSize, gridSize, t, g, p),
		"Kernel", "Layout", "Ops", "Channels", "PairHops", "Exec", "MeanChannelLatency")
	for _, prog := range progs {
		for _, layout := range []netsim.Layout{netsim.HomeBase, netsim.MobileQubit} {
			res, err := netsim.Run(netsim.DefaultConfig(grid, layout, t, g, p), prog)
			if err != nil {
				return nil, err
			}
			tab.AddRow(prog.Name, layout.String(), res.Ops, res.Channels, res.PairHops,
				res.Exec.String(), res.MeanChannelLatency.String())
		}
	}
	return tab, nil
}
