package figures

import (
	"strings"
	"testing"

	"repro/internal/epr"
	"repro/internal/netsim"
	"repro/internal/phys"
)

var base = phys.IonTrap2006()

func render(t *testing.T, w interface {
	WriteText(sw *strings.Builder) error
}) string {
	t.Helper()
	var b strings.Builder
	if err := w.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func TestTable1ContainsPaperValues(t *testing.T) {
	var b strings.Builder
	if err := Table1(base).WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"t1q", "t2q", "20", "tgen", "122", "ttprt", "tprfy"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 missing %q:\n%s", want, out)
		}
	}
}

func TestTable2ContainsPaperValues(t *testing.T) {
	var b strings.Builder
	if err := Table2(base).WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"p1q", "1.000e-08", "pmv", "1.000e-06"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 2 missing %q:\n%s", want, out)
		}
	}
}

func TestFig8Renders(t *testing.T) {
	tab, plot := Fig8(base, 25)
	var b strings.Builder
	if err := tab.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	// 2 protocols × 3 fidelities × 26 rounds + header.
	if lines := strings.Count(b.String(), "\n"); lines != 2*3*26+1 {
		t.Errorf("Fig8 CSV has %d lines, want %d", lines, 2*3*26+1)
	}
	b.Reset()
	if err := plot.Write(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"DEJMPS F0=0.99", "BBPSSW F0=0.9999"} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("Fig8 plot missing legend %q", want)
		}
	}
}

func TestFig9Renders(t *testing.T) {
	tab, plot := Fig9(base, 70)
	var b strings.Builder
	if err := tab.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(b.String(), "\n"); lines != 5*71+1 {
		t.Errorf("Fig9 CSV has %d lines, want %d", lines, 5*71+1)
	}
	b.Reset()
	if err := plot.Write(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "threshold error 7.5e-5") {
		t.Error("Fig9 plot missing the threshold line")
	}
}

func TestFig10And11Render(t *testing.T) {
	cfg := epr.DefaultConfig(base)
	for _, teleported := range []bool{false, true} {
		tab, plot := Fig10(cfg, teleported)
		var b strings.Builder
		if err := tab.WriteCSV(&b); err != nil {
			t.Fatal(err)
		}
		if lines := strings.Count(b.String(), "\n"); lines != 5*60+1 {
			t.Errorf("teleported=%v: CSV has %d lines, want %d", teleported, lines, 5*60+1)
		}
		b.Reset()
		if err := plot.Write(&b); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(b.String(), "only at end") {
			t.Errorf("teleported=%v: missing scheme legend", teleported)
		}
	}
}

func TestFig12Renders(t *testing.T) {
	tab, plot := Fig12(base, 10)
	var b strings.Builder
	if err := tab.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	// Breakdown must appear: some rows infeasible.
	if !strings.Contains(out, "false") {
		t.Error("Fig12 should contain infeasible points near 1e-4")
	}
	if !strings.Contains(out, "true") {
		t.Error("Fig12 should contain feasible points at low error rates")
	}
	b.Reset()
	if err := plot.Write(&b); err != nil {
		t.Fatal(err)
	}
}

func TestFig12RatesSpanFiveDecades(t *testing.T) {
	rates := Fig12Rates()
	if rates[0] != 1e-9 {
		t.Errorf("first rate = %g, want 1e-9", rates[0])
	}
	last := rates[len(rates)-1]
	if last < 9.9e-5 || last > 1.1e-4 {
		t.Errorf("last rate = %g, want 1e-4", last)
	}
	if len(rates) != 21 {
		t.Errorf("rate count = %d, want 21 (quarter decades)", len(rates))
	}
}

func TestClaimsTable(t *testing.T) {
	var b strings.Builder
	if err := Claims(base).WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Corner-to-corner", "crossover", "392", "breakdown", "several dozen"} {
		if !strings.Contains(strings.ToLower(out), strings.ToLower(want)) {
			t.Errorf("claims table missing %q:\n%s", want, out)
		}
	}
}

func TestFig16SmallSweep(t *testing.T) {
	cfg := Fig16Config{GridSize: 4, Area: 48, Ratios: []int{1, 8}}
	data, err := Fig16(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(data.Rows) != 4 { // 2 layouts × 2 ratios
		t.Fatalf("rows = %d, want 4", len(data.Rows))
	}
	if len(data.Seeds) != 5 {
		t.Fatalf("seeds = %v, want the default five-seed ensemble", data.Seeds)
	}
	for _, r := range data.Rows {
		if r.Normalized < 1 {
			t.Errorf("%v %v normalized %.2f < 1: cannot beat unlimited resources",
				r.Layout, r.Allocation, r.Normalized)
		}
		if r.Ensemble.N != 5 {
			t.Errorf("%v %v: ensemble over %d seeds, want 5", r.Layout, r.Allocation, r.Ensemble.N)
		}
		// Deterministic (failure-free) configuration: the ensemble must
		// collapse to zero spread.
		if r.NormalizedCI.Half() != 0 {
			t.Errorf("%v %v: nonzero CI %v without failure injection",
				r.Layout, r.Allocation, r.NormalizedCI)
		}
	}
	// With failure injection off, every seed beyond the first must be a
	// cache hit: 2 layouts × 3 resource points × (5-1) seeds.
	if data.Sweep.CacheHits != 2*3*4 {
		t.Errorf("cache hits = %d, want %d (seed ensemble should collapse)",
			data.Sweep.CacheHits, 2*3*4)
	}
	var b strings.Builder
	if err := data.Table().WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "baseline") {
		t.Error("Fig16 table missing baseline rows")
	}
	b.Reset()
	if err := data.Plot().Write(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "MobileQubit") {
		t.Error("Fig16 plot missing layout legend")
	}
}

func TestFig16PaperShape(t *testing.T) {
	// The paper's Figure 16 claims, on the quick 8×8 configuration:
	// (1) Mobile Qubit performance suffers as resources shift from P to
	//     T' — "as shown in the difference between t=g=4p and t=g=8p";
	// (2) Home Base tolerates the shift better than Mobile.
	if testing.Short() {
		t.Skip("multi-second sweep")
	}
	data, err := Fig16(DefaultFig16Config())
	if err != nil {
		t.Fatal(err)
	}
	norm := map[netsim.Layout]map[int]float64{
		netsim.HomeBase:    {},
		netsim.MobileQubit: {},
	}
	for _, r := range data.Rows {
		norm[r.Layout][r.Allocation.Ratio] = r.Normalized
	}
	mobile := norm[netsim.MobileQubit]
	home := norm[netsim.HomeBase]
	if mobile[8] <= mobile[4] {
		t.Errorf("Mobile at 8p (%.2f) should be slower than at 4p (%.2f)", mobile[8], mobile[4])
	}
	if mobile[4] <= mobile[1] {
		t.Errorf("Mobile at 4p (%.2f) should be slower than at 1p (%.2f)", mobile[4], mobile[1])
	}
	mobileDegradation := mobile[8] / mobile[1]
	homeDegradation := home[8] / home[1]
	if mobileDegradation <= homeDegradation {
		t.Errorf("Mobile degradation %.2fx should exceed Home Base %.2fx",
			mobileDegradation, homeDegradation)
	}
}

func TestFig16RejectsTinyGrid(t *testing.T) {
	if _, err := Fig16(Fig16Config{GridSize: 1, Area: 48, Ratios: []int{1}}); err == nil {
		t.Error("grid size 1 should fail")
	}
}

func TestMEMMTable(t *testing.T) {
	data, err := MEMM(DefaultMEMMConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := data.Table.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"QFT", "MM", "ME", "HomeBase", "MobileQubit"} {
		if !strings.Contains(out, want) {
			t.Errorf("kernel table missing %q:\n%s", want, out)
		}
	}
}
