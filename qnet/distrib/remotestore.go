// The fleet's shared result store over HTTP: StoreServer exposes any
// simulate.Store (typically the coordinator's disk-backed Cache) as a
// tiny key/value API, and RemoteStore is the simulate.Store client
// workers point at it — so every worker's lookups and write-backs
// land in one warm store, and a shard reassigned after a worker death
// re-hits the points its previous owner already finished.

package distrib

import (
	"bytes"
	"context"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/qnet/simulate"
)

// storePath is the URL prefix of the store API's key endpoints.
const storePath = "/v1/store/"

// storeStatsPath is the URL of the store API's counters endpoint.
const storeStatsPath = "/v1/store/stats"

// parseKey parses the lowercase-hex wire form of a simulate.Key (the
// form Key.String prints).
func parseKey(s string) (simulate.Key, error) {
	var k simulate.Key
	b, err := hex.DecodeString(s)
	if err != nil || len(b) != len(k) {
		return k, fmt.Errorf("distrib: bad store key %q", s)
	}
	copy(k[:], b)
	return k, nil
}

// StoreServer exposes a simulate.Store over HTTP:
//
//	GET /v1/store/{key}   -> 200 + JSON Result, or 404
//	PUT /v1/store/{key}   <- JSON Result, -> 204
//	GET /v1/store/stats   -> 200 + JSON CacheStats
//
// Mount its Handler on the coordinator (or any host the fleet can
// reach) and point workers at it with RemoteStore / Job.StoreURL.
type StoreServer struct {
	store simulate.Store
}

// NewStoreServer wraps a store for HTTP serving.
func NewStoreServer(st simulate.Store) *StoreServer {
	return &StoreServer{store: st}
}

// Handler returns the store API's http.Handler.
func (s *StoreServer) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(storePath, s.serveKey)
	return mux
}

// serveKey handles both key endpoints and the stats endpoint (which
// shares the /v1/store/ prefix).
func (s *StoreServer) serveKey(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == storeStatsPath && r.Method == http.MethodGet {
		writeJSON(w, s.store.Stats())
		return
	}
	key, err := parseKey(strings.TrimPrefix(r.URL.Path, storePath))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	switch r.Method {
	case http.MethodGet:
		res, ok := s.store.Get(key)
		if !ok {
			http.NotFound(w, r)
			return
		}
		writeJSON(w, res)
	case http.MethodPut:
		var res simulate.Result
		if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&res); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		s.store.Put(key, res)
		w.WriteHeader(http.StatusNoContent)
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

// writeJSON writes v as a JSON response body.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

// RemoteStore is a simulate.Store backed by a StoreServer across the
// network.  Like every Store it is best-effort: an unreachable server
// turns Gets into misses and Puts into counted write errors, never
// into simulation failures — a partitioned worker degrades to
// re-simulating, exactly as if the store were cold.
type RemoteStore struct {
	base   string
	client *http.Client

	mu    sync.Mutex
	stats simulate.CacheStats
}

// RemoteStore implements simulate.Store.
var _ simulate.Store = (*RemoteStore)(nil)

// NewRemoteStore builds a client of the store API rooted at base
// (e.g. "http://coordinator:9090").  A trailing slash is tolerated.
func NewRemoteStore(base string) *RemoteStore {
	return &RemoteStore{
		base:   strings.TrimSuffix(base, "/"),
		client: &http.Client{Timeout: 30 * time.Second},
	}
}

// keyURL returns the endpoint of one key.
func (rs *RemoteStore) keyURL(k simulate.Key) string {
	return rs.base + storePath + k.String()
}

// Get fetches the Result for the key; any transport or decode failure
// is a miss.
func (rs *RemoteStore) Get(k simulate.Key) (simulate.Result, bool) {
	resp, err := rs.client.Get(rs.keyURL(k))
	if err != nil {
		return rs.miss()
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return rs.miss()
	}
	var res simulate.Result
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		rs.mu.Lock()
		rs.stats.CorruptEntries++
		rs.mu.Unlock()
		return rs.miss()
	}
	rs.mu.Lock()
	rs.stats.Hits++
	rs.mu.Unlock()
	return res, true
}

// miss counts and returns a store miss.
func (rs *RemoteStore) miss() (simulate.Result, bool) {
	rs.mu.Lock()
	rs.stats.Misses++
	rs.mu.Unlock()
	return simulate.Result{}, false
}

// Put uploads the Result for the key, best effort; failures are
// counted in Stats().WriteErrors.
func (rs *RemoteStore) Put(k simulate.Key, res simulate.Result) {
	data, err := json.Marshal(res)
	if err != nil {
		rs.writeError()
		return
	}
	req, err := http.NewRequest(http.MethodPut, rs.keyURL(k), bytes.NewReader(data))
	if err != nil {
		rs.writeError()
		return
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := rs.client.Do(req)
	if err != nil {
		rs.writeError()
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		rs.writeError()
	}
}

// writeError counts one failed Put.
func (rs *RemoteStore) writeError() {
	rs.mu.Lock()
	rs.stats.WriteErrors++
	rs.mu.Unlock()
}

// Stats returns this client's local traffic counters (its own hits,
// misses and write errors — not the server's aggregate; see
// ServerStats for that).
func (rs *RemoteStore) Stats() simulate.CacheStats {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.stats
}

// ServerStats fetches the server-side aggregate counters of the
// backing store — the fleet-wide view, including the corrupt-entry
// count SummarizeStore surfaces.
func (rs *RemoteStore) ServerStats(ctx context.Context) (simulate.CacheStats, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, rs.base+storeStatsPath, nil)
	if err != nil {
		return simulate.CacheStats{}, err
	}
	resp, err := rs.client.Do(req)
	if err != nil {
		return simulate.CacheStats{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return simulate.CacheStats{}, fmt.Errorf("distrib: store stats: %s", resp.Status)
	}
	var stats simulate.CacheStats
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		return simulate.CacheStats{}, err
	}
	return stats, nil
}
