package phys

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestTable1Constants(t *testing.T) {
	p := IonTrap2006()
	if got, want := p.Times.OneQubitGate, 1*time.Microsecond; got != want {
		t.Errorf("t1q = %v, want %v", got, want)
	}
	if got, want := p.Times.TwoQubitGate, 20*time.Microsecond; got != want {
		t.Errorf("t2q = %v, want %v", got, want)
	}
	if got, want := p.Times.MoveCell, 200*time.Nanosecond; got != want {
		t.Errorf("tmv = %v, want %v", got, want)
	}
	if got, want := p.Times.Measure, 100*time.Microsecond; got != want {
		t.Errorf("tms = %v, want %v", got, want)
	}
}

func TestTable1DerivedConstants(t *testing.T) {
	p := IonTrap2006()
	// Table 1 lists tgen = 122 µs, ttprt ≈ 122 µs, tprfy ≈ 121 µs.
	if got, want := p.GenerateTime(), 122*time.Microsecond; got != want {
		t.Errorf("tgen = %v, want %v", got, want)
	}
	if got, want := p.TeleportTime(0), 122*time.Microsecond; got != want {
		t.Errorf("ttprt(0) = %v, want %v", got, want)
	}
	if got, want := p.PurifyRoundTime(0), 120*time.Microsecond; got != want {
		// Eq 6 literally: t2q + tms = 120 µs; Table 1 rounds to ~121 µs.
		t.Errorf("tprfy(0) = %v, want %v", got, want)
	}
}

func TestTable2Constants(t *testing.T) {
	p := IonTrap2006()
	cases := []struct {
		name string
		got  float64
		want float64
	}{
		{"p1q", p.Errors.OneQubitGate, 1e-8},
		{"p2q", p.Errors.TwoQubitGate, 1e-7},
		{"pmv", p.Errors.MoveCell, 1e-6},
		{"pms", p.Errors.Measure, 1e-8},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("%s = %g, want %g", c.name, c.got, c.want)
		}
	}
}

func TestValidateAcceptsBaseline(t *testing.T) {
	if err := IonTrap2006().Validate(); err != nil {
		t.Fatalf("baseline params should validate: %v", err)
	}
}

func TestValidateRejectsBadTimes(t *testing.T) {
	p := IonTrap2006()
	p.Times.TwoQubitGate = 0
	if err := p.Validate(); err == nil {
		t.Error("zero two-qubit gate time should fail validation")
	}
	p = IonTrap2006()
	p.Times.MoveCell = -time.Nanosecond
	if err := p.Validate(); err == nil {
		t.Error("negative move time should fail validation")
	}
	p = IonTrap2006()
	p.Times.ClassicalBitPerCell = -time.Nanosecond
	if err := p.Validate(); err == nil {
		t.Error("negative classical time should fail validation")
	}
}

func TestValidateRejectsBadProbabilities(t *testing.T) {
	p := IonTrap2006()
	p.Errors.MoveCell = 1.0
	if err := p.Validate(); err == nil {
		t.Error("error probability of 1 should fail validation")
	}
	p = IonTrap2006()
	p.Errors.Measure = -0.1
	if err := p.Validate(); err == nil {
		t.Error("negative error probability should fail validation")
	}
}

func TestWithUniformError(t *testing.T) {
	p := IonTrap2006().WithUniformError(3e-6)
	for name, got := range map[string]float64{
		"p1q": p.Errors.OneQubitGate,
		"p2q": p.Errors.TwoQubitGate,
		"pmv": p.Errors.MoveCell,
		"pms": p.Errors.Measure,
	} {
		if got != 3e-6 {
			t.Errorf("%s = %g, want 3e-6", name, got)
		}
	}
	// Times must be untouched.
	if p.Times != IonTrap2006().Times {
		t.Error("WithUniformError must not modify time constants")
	}
}

func TestScaleClamps(t *testing.T) {
	p := IonTrap2006().Scale(1e20)
	if p.Errors.MoveCell >= 1 {
		t.Errorf("scaled pmv = %g, want < 1", p.Errors.MoveCell)
	}
	p = IonTrap2006().Scale(0)
	if p.Errors.TwoQubitGate != 0 {
		t.Errorf("scaled-to-zero p2q = %g, want 0", p.Errors.TwoQubitGate)
	}
}

func TestScaleProperty(t *testing.T) {
	base := IonTrap2006()
	f := func(factorRaw uint16) bool {
		factor := float64(factorRaw) / 1000.0 // 0 .. 65.5
		p := base.Scale(factor)
		if p.Validate() != nil {
			return false
		}
		// Scaling by a factor <= 1/pmax can never clamp, so scaling must be exact.
		if factor*base.Errors.MoveCell < 1 {
			want := base.Errors.MoveCell * factor
			if math.Abs(p.Errors.MoveCell-want) > 1e-18 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBallisticTime(t *testing.T) {
	p := IonTrap2006()
	if got, want := p.BallisticTime(600), 120*time.Microsecond; got != want {
		t.Errorf("ballistic 600 cells = %v, want %v", got, want)
	}
	if got := p.BallisticTime(-5); got != 0 {
		t.Errorf("negative distance should clamp to 0, got %v", got)
	}
}

func TestTeleportTimeDistanceTerm(t *testing.T) {
	p := IonTrap2006()
	d0 := p.TeleportTime(0)
	d1000 := p.TeleportTime(1000)
	want := 1000 * p.Times.ClassicalBitPerCell
	if d1000-d0 != want {
		t.Errorf("classical distance term = %v, want %v", d1000-d0, want)
	}
}

func TestCrossoverCellsMatchesPaper(t *testing.T) {
	// Paper §4.6: "for a distance of about 600 cells, teleportation is
	// faster than ballistic movement."
	p := IonTrap2006()
	d := p.CrossoverCells()
	if d < 550 || d > 650 {
		t.Errorf("crossover = %d cells, want ~600 (±50)", d)
	}
	// At the crossover, ballistic must indeed be at least as slow.
	if p.BallisticTime(d) < p.TeleportTime(d) {
		t.Errorf("at crossover %d: ballistic %v < teleport %v", d, p.BallisticTime(d), p.TeleportTime(d))
	}
	// One cell before, ballistic must still win or tie.
	if p.BallisticTime(d-1) > p.TeleportTime(d-1) {
		t.Errorf("one before crossover %d: ballistic %v > teleport %v", d-1, p.BallisticTime(d-1), p.TeleportTime(d-1))
	}
}

func TestCrossoverNoSolution(t *testing.T) {
	p := IonTrap2006()
	p.Times.ClassicalBitPerCell = p.Times.MoveCell // classical as slow as moving
	if got := p.CrossoverCells(); got != -1 {
		t.Errorf("crossover with slow classical network = %d, want -1", got)
	}
}

func TestStringContainsKeyNumbers(t *testing.T) {
	s := IonTrap2006().String()
	for _, want := range []string{"t2q=20µs", "pmv=1.0e-06"} {
		if !containsSub(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
}

func containsSub(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
