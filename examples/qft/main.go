// QFT on the network simulator: Home Base versus Mobile Qubit layouts.
//
// The Quantum Fourier Transform is the all-to-all kernel of Shor's
// algorithm and the paper's primary benchmark.  This example runs it on
// an 8x8 mesh under both floorplans of Figure 15 and shows why the
// Mobile Qubit layout wins: the snake placement turns the all-to-all
// pattern into a mostly nearest-neighbour walk.
//
// Run with: go run ./examples/qft
package main

import (
	"context"
	"fmt"
	"os"

	"repro/qnet"
	"repro/qnet/simulate"
)

func main() {
	grid, err := qnet.NewGrid(8, 8)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	prog := qnet.QFT(grid.Tiles())
	fmt.Printf("QFT over %d logical qubits: %d two-qubit operations\n\n",
		prog.Qubits, len(prog.Ops))

	ctx := context.Background()
	for _, layout := range []simulate.Layout{simulate.HomeBase, simulate.MobileQubit} {
		m, err := simulate.New(grid, layout, simulate.WithResources(16, 16, 16))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		res, err := m.Run(ctx, prog)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("== %v layout ==\n", layout)
		fmt.Printf("execution time       %v\n", res.Exec)
		fmt.Printf("channels set up      %d (%d local ops)\n", res.Channels, res.LocalOps)
		fmt.Printf("EPR pairs delivered  %d\n", res.PairsDelivered)
		fmt.Printf("EPR pair-hops        %d (network strain)\n", res.PairHops)
		fmt.Printf("mean channel latency %v\n", res.MeanChannelLatency)
		fmt.Printf("utilization          T' %.1f%%  G %.1f%%  P %.1f%%\n\n",
			100*res.TeleporterUtil, 100*res.GeneratorUtil, 100*res.PurifierUtil)
	}

	fmt.Println("The Mobile Qubit layout teleports each walker one hop per step,")
	fmt.Println("so it moves far fewer pairs through the network — but it leans")
	fmt.Println("harder on the endpoint purifiers (see examples/resource-sweep).")
}
