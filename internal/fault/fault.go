// Package fault is the mesh fault-model layer: it turns a declarative
// Spec — dead links, transient per-link drop probability, degraded-
// fidelity regions — into a concrete per-link Model for one simulation
// run, drawn from the run's seeded RNG so fault patterns are exactly
// reproducible (and therefore content-addressable by the result cache).
//
// Three fault axes compose:
//
//   - Dead links: a fraction of mesh links is disabled outright.  A
//     routing policy that cannot route around them fails the run with a
//     *RouteBlockedError; the fault-adaptive policy (internal/route)
//     escapes around the holes, and a mesh the faults disconnect fails
//     with an *UnreachableError.  Both are structured, matchable errors
//     — a faulty run completes or fails cleanly, never hangs.
//   - Transient drops: every EPR batch crossing a live link is lost
//     with the link's drop probability and must be re-sent from the
//     channel source.  A run whose resends exceed the per-channel
//     attempt budget fails with an *ExcessiveLossError instead of
//     simulating forever, which keeps simulated time bounded under any
//     admissible spec.
//   - Degraded regions: rectangular areas of the mesh whose links lose
//     batches at an elevated rate (fidelity degradation surfaces as
//     post-purification loss), stacked on top of the baseline drop.
//
// The Model also precomputes the escape ranks (BFS levels over live
// links from tile 0) that the fault-adaptive routing policy uses for
// its deadlock-free up*/down* escape ordering — see internal/route.
package fault

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/mesh"
)

// maxDrop caps the effective per-link drop probability after stacking
// the baseline and region rates: even a maximally degraded link lets
// one batch in twenty through, so every channel terminates with a
// bounded expected resend count (the per-channel attempt budget turns
// pathological stacking into a structured error, not a hang).
const maxDrop = 0.95

// Region is one degraded-fidelity rectangle: links with an endpoint
// inside the rectangle lose batches at an extra Drop probability on
// top of the spec's baseline rate.
type Region struct {
	// X, Y is the rectangle's top-left tile.
	X int `json:"x"`
	// Y is the rectangle's top row (see X).
	Y int `json:"y"`
	// W, H are the rectangle's extent in tiles (both must be >= 1).
	W int `json:"w"`
	// H is the rectangle's height in tiles (see W).
	H int `json:"h"`
	// Drop is the extra per-batch drop probability the region's links
	// pay, in [0,1).
	Drop float64 `json:"drop"`
}

// contains reports whether the region covers the tile.
func (r Region) contains(c mesh.Coord) bool {
	return c.X >= r.X && c.X < r.X+r.W && c.Y >= r.Y && c.Y < r.Y+r.H
}

// Spec declares a fault pattern for one run.  The zero value means a
// healthy mesh: no dead links, no drops, no degraded regions — and a
// simulation with the zero Spec is bit-for-bit the simulation that
// existed before the fault layer (the parity goldens pin this).
type Spec struct {
	// DeadLinks is the fraction of mesh links disabled at random, in
	// [0,1]; each link dies independently with this probability, drawn
	// from the run's seeded RNG (so the pattern is a pure function of
	// the seed).  1 kills every link.
	DeadLinks float64 `json:"dead_links,omitempty"`
	// Drop is the baseline per-batch drop probability every live link
	// applies to crossing traffic, in [0,1).
	Drop float64 `json:"drop,omitempty"`
	// Regions are the degraded-fidelity rectangles; their Drop rates
	// stack on the baseline (capped so channels always terminate).
	Regions []Region `json:"regions,omitempty"`
}

// Empty reports whether the spec declares no faults at all.  An empty
// spec never consults the RNG and leaves the simulation byte-identical
// to a fault-free build, so cache keys canonicalize its seed away
// exactly as they always have.
func (sp Spec) Empty() bool {
	return sp.DeadLinks == 0 && sp.Drop == 0 && len(sp.Regions) == 0
}

// Validate reports the first invalid field of the spec, checking
// region rectangles against the grid.
func (sp Spec) Validate(g mesh.Grid) error {
	if sp.DeadLinks < 0 || sp.DeadLinks > 1 {
		return fmt.Errorf("fault: DeadLinks fraction must be in [0,1], got %g", sp.DeadLinks)
	}
	if sp.Drop < 0 || sp.Drop >= 1 {
		return fmt.Errorf("fault: Drop probability must be in [0,1), got %g", sp.Drop)
	}
	for i, r := range sp.Regions {
		if r.W < 1 || r.H < 1 {
			return fmt.Errorf("fault: region %d extent must be >= 1x1, got %dx%d", i, r.W, r.H)
		}
		if r.X < 0 || r.Y < 0 || r.X+r.W > g.Width || r.Y+r.H > g.Height {
			return fmt.Errorf("fault: region %d (%d,%d)+%dx%d outside %dx%d grid",
				i, r.X, r.Y, r.W, r.H, g.Width, g.Height)
		}
		if r.Drop < 0 || r.Drop >= 1 {
			return fmt.Errorf("fault: region %d drop probability must be in [0,1), got %g", i, r.Drop)
		}
	}
	return nil
}

// String renders the spec canonically ("dead=0.05,drop=0.02,
// region=(2,2)+3x3@0.2"; "none" when empty) — the form result grouping
// and CLI tables use, so two equal specs always render identically.
func (sp Spec) String() string {
	if sp.Empty() {
		return "none"
	}
	var parts []string
	if sp.DeadLinks != 0 {
		parts = append(parts, fmt.Sprintf("dead=%g", sp.DeadLinks))
	}
	if sp.Drop != 0 {
		parts = append(parts, fmt.Sprintf("drop=%g", sp.Drop))
	}
	for _, r := range sp.Regions {
		parts = append(parts, fmt.Sprintf("region=(%d,%d)+%dx%d@%g", r.X, r.Y, r.W, r.H, r.Drop))
	}
	return strings.Join(parts, ",")
}

// Model is one run's materialized fault pattern: per-link death and
// drop probabilities plus the escape ranks fault-adaptive routing
// needs.  A Model is immutable after Build and safe for concurrent
// reads.
type Model struct {
	grid mesh.Grid
	// dead and drop are indexed by mesh.Grid.LinkIndex.
	dead []bool
	drop []float64
	// rank is the BFS level of each tile (row-major) over live links
	// from the escape root (tile 0); -1 marks tiles the faults
	// disconnected from the root.
	rank     []int
	deadN    int
	anyDrop  bool
	hasFault bool
}

// Build materializes the spec on the grid, drawing the dead-link
// pattern from rng — the run's seeded RNG, so equal (spec, grid, seed)
// triples produce identical models.  Exactly NumLinks draws are
// consumed when DeadLinks > 0 and none otherwise, keeping the RNG
// stream of a drop-only or empty spec aligned with a fault-free run.
func (sp Spec) Build(g mesh.Grid, rng *rand.Rand) (*Model, error) {
	if err := sp.Validate(g); err != nil {
		return nil, err
	}
	if sp.Empty() {
		return nil, nil
	}
	n := g.NumLinks()
	m := &Model{
		grid:     g,
		dead:     make([]bool, n),
		drop:     make([]float64, n),
		hasFault: true,
	}
	if sp.DeadLinks > 0 {
		// One Bernoulli draw per link, in canonical LinkIndex order, so
		// the pattern is a pure function of the RNG state.
		for i := 0; i < n; i++ {
			if rng.Float64() < sp.DeadLinks {
				m.dead[i] = true
				m.deadN++
			}
		}
	}
	for i, l := range g.Links() {
		if m.dead[i] {
			continue
		}
		d := sp.Drop
		to := l.From.Step(l.Dir)
		for _, r := range sp.Regions {
			if r.contains(l.From) || r.contains(to) {
				// Independent loss processes stack multiplicatively:
				// the batch survives only if every process spares it.
				d = 1 - (1-d)*(1-r.Drop)
			}
		}
		if d > maxDrop {
			d = maxDrop
		}
		m.drop[i] = d
		if d > 0 {
			m.anyDrop = true
		}
	}
	m.computeRanks()
	return m, nil
}

// Preview materializes the spec exactly as a simulation run with the
// given seed will: a fresh seeded RNG, faults drawn first.  Use it to
// inspect a fault pattern — dead-link count, connectivity — before (or
// without) paying for the run.  A nil model means the spec is empty.
func Preview(sp Spec, g mesh.Grid, seed int64) (*Model, error) {
	return sp.Build(g, rand.New(rand.NewSource(seed)))
}

// computeRanks BFS-labels every tile with its distance from tile 0
// over live links, the escape ordering fault-adaptive routing builds
// its up*/down* phases on.  Direction order is fixed (East, West,
// North, South) so the labeling — like everything else about the model
// — is deterministic.
func (m *Model) computeRanks() {
	m.rank = make([]int, m.grid.Tiles())
	for i := range m.rank {
		m.rank[i] = -1
	}
	m.rank[0] = 0
	queue := []int{0}
	for len(queue) > 0 {
		idx := queue[0]
		queue = queue[1:]
		c := m.grid.CoordOf(idx)
		for _, d := range []mesh.Direction{mesh.East, mesh.West, mesh.North, mesh.South} {
			nc := c.Step(d)
			if !m.grid.Contains(nc) || m.Dead(c, d) {
				continue
			}
			ni := m.grid.Index(nc)
			if m.rank[ni] < 0 {
				m.rank[ni] = m.rank[idx] + 1
				queue = append(queue, ni)
			}
		}
	}
}

// Grid returns the mesh the model was built on.
func (m *Model) Grid() mesh.Grid { return m.grid }

// Dead reports whether the link leaving c in direction d is dead.  A
// hop off the grid edge counts as dead (there is no link there), so
// callers may probe all four directions uniformly.
func (m *Model) Dead(c mesh.Coord, d mesh.Direction) bool {
	if !m.grid.Contains(c.Step(d)) {
		return true
	}
	return m.dead[m.grid.LinkIndex(m.grid.LinkFrom(c, d))]
}

// DropRate returns the per-batch drop probability of the link leaving
// c in direction d (0 for a dead or off-grid link: dead links carry no
// traffic to drop).
func (m *Model) DropRate(c mesh.Coord, d mesh.Direction) float64 {
	if !m.grid.Contains(c.Step(d)) {
		return 0
	}
	return m.drop[m.grid.LinkIndex(m.grid.LinkFrom(c, d))]
}

// dropByIndex returns the drop probability of the link with the given
// canonical index — the allocation-free form the simulator's hop path
// uses.
func (m *Model) dropByIndex(li int) float64 { return m.drop[li] }

// DropByIndex returns the drop probability of the link with the given
// mesh.Grid.LinkIndex.
func (m *Model) DropByIndex(li int) float64 { return m.dropByIndex(li) }

// Rank returns the escape rank of the tile: its BFS distance from tile
// 0 over live links, or -1 when the faults disconnected it from the
// escape root.
func (m *Model) Rank(c mesh.Coord) int { return m.rank[m.grid.Index(c)] }

// DeadCount returns the number of dead links the model drew.
func (m *Model) DeadCount() int { return m.deadN }

// HasDeadLinks reports whether any link died — the condition under
// which routing must consult the model.
func (m *Model) HasDeadLinks() bool { return m.deadN > 0 }

// HasDrops reports whether any live link drops traffic.
func (m *Model) HasDrops() bool { return m.anyDrop }

// Connected reports whether every tile can still reach tile 0 over
// live links.  A disconnected model makes some channels impossible;
// those runs fail with an *UnreachableError.
func (m *Model) Connected() bool {
	for _, r := range m.rank {
		if r < 0 {
			return false
		}
	}
	return true
}

// UnreachableError reports that a channel's endpoints are separated by
// dead links: no live path connects them, under any routing policy.
type UnreachableError struct {
	// Src and Dst are the channel endpoints.
	Src, Dst mesh.Coord
	// Policy is the routing policy that detected the partition.
	Policy string
}

// Error renders the unreachable pair.
func (e *UnreachableError) Error() string {
	return fmt.Sprintf("fault: no live path from %v to %v (mesh partitioned by dead links; policy %q)",
		e.Src, e.Dst, e.Policy)
}

// RouteBlockedError reports that a routing policy's chosen path
// crosses a dead link the policy cannot route around (dimension-order
// and the other static minimal policies do not reroute; use the
// fault-adaptive policy on faulty meshes).
type RouteBlockedError struct {
	// Src and Dst are the channel endpoints.
	Src, Dst mesh.Coord
	// At is the tile whose outgoing link is dead.
	At mesh.Coord
	// Policy is the routing policy whose path was blocked.
	Policy string
}

// Error renders the blocked hop.
func (e *RouteBlockedError) Error() string {
	return fmt.Sprintf("fault: policy %q routes %v to %v across a dead link at %v (fault-adaptive routing can escape around it)",
		e.Policy, e.Src, e.Dst, e.At)
}

// ExcessiveLossError reports that one channel burned through its
// resend budget: the fault pattern drops batches faster than the
// channel can redeliver them, so the run is aborted with a structured
// error instead of simulating unboundedly.
type ExcessiveLossError struct {
	// Src and Dst are the channel endpoints.
	Src, Dst mesh.Coord
	// Attempts is the number of batch transmissions the channel spent.
	Attempts uint64
}

// Error renders the exhausted budget.
func (e *ExcessiveLossError) Error() string {
	return fmt.Sprintf("fault: channel %v to %v exhausted its resend budget after %d batch attempts (drop rates too hostile)",
		e.Src, e.Dst, e.Attempts)
}
