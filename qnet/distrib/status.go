// Per-worker live telemetry: the progress/health snapshot a worker
// exports while it executes, carried over the transport so coordinator
// heartbeats double as progress probes.

package distrib

// Status is one worker's live telemetry snapshot: shard progress plus
// the aggregate event-rate and congestion view of the runs in flight.
// The progress counters are always maintained; the event-rate and
// occupancy fields are fed by qnet/trace and stay zero unless the
// worker was built with WithWorkerTelemetry.
type Status struct {
	// Draining reports that the worker is shutting down gracefully: it
	// refuses new jobs (ErrWorkerDraining) while finishing the shards
	// already in flight.  The coordinator treats a draining worker as
	// healthy but unavailable — never dead.
	Draining bool `json:"draining,omitempty"`
	// ActivePoints is how many run points the worker is simulating
	// right now.
	ActivePoints int `json:"active_points"`
	// DonePoints counts run points the worker has finished since it
	// started — simulated, store-served and failed alike.
	DonePoints uint64 `json:"done_points"`
	// Events is the summed processed-event count of the active traced
	// runs, as of each run's latest telemetry sample.
	Events uint64 `json:"events"`
	// EventRate is the summed simulation event rate of the active
	// traced runs, in events per second of simulated time.
	EventRate float64 `json:"event_rate"`
	// Occupancy is the mean router queue occupancy across the active
	// traced runs' latest samples, in batches per router — the same
	// series the congestion tracer exports.
	Occupancy float64 `json:"occupancy"`
}
