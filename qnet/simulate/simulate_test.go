package simulate

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"repro/internal/netsim"

	"repro/qnet"
)

func testGrid(t testing.TB, n int) qnet.Grid {
	t.Helper()
	grid, err := qnet.NewGrid(n, n)
	if err != nil {
		t.Fatal(err)
	}
	return grid
}

// TestOptionsRoundTrip asserts that the functional options build exactly
// the netsim.Config the old positional constructor plus field pokes
// produced — the two configuration paths must stay equivalent while the
// deprecated facade is alive.
func TestOptionsRoundTrip(t *testing.T) {
	grid := testGrid(t, 4)
	p := qnet.IonTrap2006().Scale(10)

	m, err := New(grid, MobileQubit,
		WithParams(p),
		WithResources(24, 12, 6),
		WithPurifyDepth(4),
		WithCodeLevel(1),
		WithHopCells(800),
		WithTurnCells(40),
		WithSeed(99),
		WithFailureRate(0.25),
	)
	if err != nil {
		t.Fatal(err)
	}

	want := netsim.DefaultConfig(grid, netsim.MobileQubit, 24, 12, 6)
	want.Params = p
	want.PurifyDepth = 4
	want.CodeLevel = 1
	want.HopCells = 800
	want.TurnCells = 40
	want.Seed = 99
	want.PurifyFailureRate = 0.25

	if !reflect.DeepEqual(m.cfg, want) {
		t.Errorf("options round-trip mismatch:\n got %+v\nwant %+v", m.cfg, want)
	}
}

func TestDefaultsMatchPaper(t *testing.T) {
	grid := testGrid(t, 4)
	m, err := New(grid, HomeBase)
	if err != nil {
		t.Fatal(err)
	}
	want := netsim.DefaultConfig(grid, netsim.HomeBase, 16, 16, 16)
	if !reflect.DeepEqual(m.cfg, want) {
		t.Errorf("defaults mismatch:\n got %+v\nwant %+v", m.cfg, want)
	}
}

func TestNewRejectsBadOptions(t *testing.T) {
	grid := testGrid(t, 4)
	cases := []struct {
		name  string
		opt   Option
		field string
	}{
		{"teleporters", WithResources(0, 16, 16), "Teleporters"},
		{"generators", WithResources(16, 0, 16), "Generators"},
		{"purifiers", WithResources(16, 16, 0), "Purifiers"},
		{"depth", WithPurifyDepth(17), "PurifyDepth"},
		{"code", WithCodeLevel(-1), "CodeLevel"},
		{"hops", WithHopCells(0), "HopCells"},
		{"turns", WithTurnCells(-1), "TurnCells"},
		{"failure", WithFailureRate(1.0), "FailureRate"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := New(grid, HomeBase, tc.opt)
			if !errors.Is(err, qnet.ErrInvalidConfig) {
				t.Fatalf("err = %v, want ErrInvalidConfig", err)
			}
			var ce *qnet.ConfigError
			if !errors.As(err, &ce) || ce.Field != tc.field {
				t.Errorf("field = %v, want %s", ce, tc.field)
			}
			// Pin the mirrored validators to each other: anything
			// simulate rejects must also be invalid to netsim, so a
			// future relaxation in netsim.Config.Validate that is not
			// mirrored here fails this test instead of drifting.
			spec := machineSpec{cfg: netsim.DefaultConfig(grid, netsim.HomeBase, 16, 16, 16)}
			tc.opt.applyMachine(&spec)
			if spec.cfg.Validate() == nil {
				t.Errorf("netsim.Config.Validate accepts a config simulate rejects: validators have drifted")
			}
		})
	}
}

func TestRunHonorsCancelledContext(t *testing.T) {
	grid := testGrid(t, 4)
	m, err := New(grid, HomeBase)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = m.Run(ctx, qnet.QFT(grid.Tiles()))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestRunCapacityError(t *testing.T) {
	grid := testGrid(t, 4)
	m, err := New(grid, HomeBase)
	if err != nil {
		t.Fatal(err)
	}
	_, err = m.Run(context.Background(), qnet.QFT(grid.Tiles()+1))
	if !errors.Is(err, qnet.ErrCapacity) {
		t.Fatalf("err = %v, want ErrCapacity", err)
	}
	var ce *qnet.CapacityError
	if !errors.As(err, &ce) || ce.Resource != "tiles" {
		t.Errorf("capacity error = %+v, want tiles", ce)
	}
}

// TestMachineReusable asserts a machine can run many programs and that
// repeated runs of the same program are identical (fresh per-run state).
func TestMachineReusable(t *testing.T) {
	grid := testGrid(t, 4)
	m, err := New(grid, MobileQubit, WithResources(16, 16, 8))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	first, err := m.Run(ctx, qnet.QFT(grid.Tiles()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(ctx, qnet.ModMult(grid.Tiles()/2)); err != nil {
		t.Fatal(err)
	}
	again, err := m.Run(ctx, qnet.QFT(grid.Tiles()))
	if err != nil {
		t.Fatal(err)
	}
	if first != again {
		t.Errorf("re-run of the same program differs:\n got %+v\nwant %+v", again, first)
	}
}

// TestSessionReproducible asserts two sessions on identical machines
// produce identical run sequences, and that the per-run derived seeds
// actually vary between runs under failure injection.
func TestSessionReproducible(t *testing.T) {
	grid := testGrid(t, 4)
	prog := qnet.QFT(grid.Tiles())
	ctx := context.Background()

	build := func() *Session {
		m, err := New(grid, HomeBase,
			WithResources(16, 16, 8),
			WithSeed(42),
			WithFailureRate(0.1))
		if err != nil {
			t.Fatal(err)
		}
		return m.NewSession()
	}
	a, b := build(), build()
	var aFailed, bFailed []uint64
	for i := 0; i < 3; i++ {
		ra, err := a.Run(ctx, prog)
		if err != nil {
			t.Fatal(err)
		}
		rb, err := b.Run(ctx, prog)
		if err != nil {
			t.Fatal(err)
		}
		if ra != rb {
			t.Errorf("run %d diverged between identical sessions", i)
		}
		aFailed = append(aFailed, ra.FailedBatches)
		bFailed = append(bFailed, rb.FailedBatches)
	}
	if a.Runs() != 3 || len(a.Results()) != 3 {
		t.Errorf("session recorded %d/%d runs, want 3/3", a.Runs(), len(a.Results()))
	}
	if a.TotalExec() <= 0 {
		t.Error("session total exec not positive")
	}
	// With a 10% failure rate the three derived seeds should not all
	// produce the same failure count; identical counts would suggest the
	// per-run seed derivation is broken.
	if aFailed[0] == aFailed[1] && aFailed[1] == aFailed[2] {
		t.Errorf("all session runs had identical failure counts %v: per-run seeds look constant", aFailed)
	}
	_ = bFailed
}

// TestSeededRunsReproducible guards the per-run RNG fix: two runs with
// the same seed (including seed 0) and failure injection must be
// identical, and different seeds should diverge.
func TestSeededRunsReproducible(t *testing.T) {
	grid := testGrid(t, 4)
	prog := qnet.QFT(grid.Tiles())
	ctx := context.Background()
	run := func(seed int64) Result {
		m, err := New(grid, HomeBase,
			WithResources(16, 16, 8),
			WithSeed(seed),
			WithFailureRate(0.2))
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.Run(ctx, prog)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	if run(0) != run(0) {
		t.Error("seed-0 runs are not reproducible")
	}
	if run(5) != run(5) {
		t.Error("seed-5 runs are not reproducible")
	}
	if run(0) == run(5) {
		t.Error("different seeds produced identical runs; failure injection looks dead")
	}
}
