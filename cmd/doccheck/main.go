// Command doccheck enforces the repository's documentation contract:
// every exported identifier in the given package directories must carry
// a doc comment, and every package must have a package-level comment.
// CI runs it over qnet/... so the public API surface cannot silently
// grow undocumented (the same contract revive's `exported` rule
// enforces, without the external dependency).
//
// Usage:
//
//	doccheck ./qnet ./qnet/channel ./qnet/route ./qnet/simulate ./qnet/stats
//
// Each argument is a directory containing one package; _test.go files
// are skipped.  Exit status is 1 if any exported identifier is bare,
// with one "file:line: name" diagnostic per finding.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: doccheck <package-dir> [<package-dir> ...]")
		os.Exit(2)
	}
	bad := 0
	for _, dir := range os.Args[1:] {
		findings, err := check(dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "doccheck:", err)
			os.Exit(2)
		}
		for _, f := range findings {
			fmt.Println(f)
		}
		bad += len(findings)
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "doccheck: %d undocumented exported identifier(s)\n", bad)
		os.Exit(1)
	}
}

// check parses one package directory and returns a diagnostic per
// undocumented exported identifier.
func check(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var findings []string
	report := func(pos token.Pos, what, name string) {
		findings = append(findings, fmt.Sprintf("%s: undocumented exported %s %s",
			fset.Position(pos), what, name))
	}
	for _, pkg := range pkgs {
		hasPkgDoc := false
		for _, file := range pkg.Files {
			if file.Doc != nil {
				hasPkgDoc = true
			}
		}
		if !hasPkgDoc {
			findings = append(findings, fmt.Sprintf("%s: package %s has no package comment", dir, pkg.Name))
		}
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					// Methods count: an exported method on an exported
					// type is API surface.
					if d.Name.IsExported() && d.Doc == nil {
						what := "function"
						if d.Recv != nil {
							what = "method"
						}
						report(d.Pos(), what, d.Name.Name)
					}
				case *ast.GenDecl:
					checkGenDecl(d, report)
				}
			}
		}
	}
	return findings, nil
}

// checkGenDecl walks a const/var/type declaration.  A doc comment on
// the grouped declaration covers its members (the Go convention for
// const blocks); otherwise each exported spec needs its own.
func checkGenDecl(d *ast.GenDecl, report func(token.Pos, string, string)) {
	groupDoc := d.Doc != nil
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && !groupDoc && s.Doc == nil {
				report(s.Pos(), "type", s.Name.Name)
			}
		case *ast.ValueSpec:
			documented := groupDoc || s.Doc != nil
			for _, name := range s.Names {
				if name.IsExported() && !documented {
					kind := "var"
					if d.Tok == token.CONST {
						kind = "const"
					}
					report(name.Pos(), kind, name.Name)
				}
			}
		}
	}
}
