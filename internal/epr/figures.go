package epr

import (
	"math"

	"repro/internal/fidelity"
	"repro/internal/phys"
)

// Fig9Point is one sample of Figure 9: the error of an EPR pair after a
// number of chained teleportations, for a given initial pair quality
// (both the traveling pair and the wire link pairs start at the initial
// error).
type Fig9Point struct {
	InitialError float64
	Hops         int
	Error        float64
}

// Fig9Series reproduces Figure 9: final EPR error as a function of
// teleport count for each initial error, 0..maxHops hops.  The paper
// plots initial errors 1e-4 .. 1e-8 against the 7.5e-5 threshold line and
// notes that 64 teleports raise the error by roughly two orders of
// magnitude.
func Fig9Series(p phys.Params, initialErrors []float64, maxHops int) []Fig9Point {
	var out []Fig9Point
	for _, e0 := range initialErrors {
		link := fidelity.Werner(1 - e0)
		state := link
		out = append(out, Fig9Point{e0, 0, state.Error()})
		for h := 1; h <= maxHops; h++ {
			state = fidelity.TeleportBell(p, state, link)
			out = append(out, Fig9Point{e0, h, state.Error()})
		}
	}
	return out
}

// Fig10Point is one sample of Figures 10 and 11: delivery cost versus
// distance for one placement scheme.
type Fig10Point struct {
	Scheme Scheme
	Hops   int
	Cost   Cost
}

// DistanceSeries evaluates every scheme at each distance, producing the
// data behind Figures 10 (TotalPairs) and 11 (TeleportedPairs).
func (c Config) DistanceSeries(hops []int) []Fig10Point {
	var out []Fig10Point
	for _, s := range Schemes {
		for _, h := range hops {
			out = append(out, Fig10Point{s, h, c.Evaluate(s, h)})
		}
	}
	return out
}

// Fig12Point is one sample of Figure 12: pairs teleported to sustain the
// threshold as a function of a uniform operation error rate.
type Fig12Point struct {
	Scheme    Scheme
	ErrorRate float64
	Cost      Cost
}

// Fig12Series reproduces Figure 12: for each scheme, sweep a uniform
// error rate applied to every operation (gates, movement, measurement)
// and report the pairs that must be teleported to deliver one
// above-threshold pair over the given distance.  Points where the
// distribution network breaks down (purification cannot reach the
// threshold) are reported with Feasible=false — the abrupt ends near
// 1e-5 in the paper's figure.
func Fig12Series(base phys.Params, rates []float64, hops int) []Fig12Point {
	var out []Fig12Point
	for _, s := range Schemes {
		for _, r := range rates {
			cfg := DefaultConfig(base.WithUniformError(r))
			out = append(out, Fig12Point{s, r, cfg.Evaluate(s, hops)})
		}
	}
	return out
}

// BreakdownRate locates the uniform error rate at which the distribution
// network stops working (Figure 12's line ends) by bisecting between lo
// and hi.  It returns the highest rate (within a 5% multiplicative
// tolerance) at which EndpointsOnly delivery over hops is still feasible.
func BreakdownRate(base phys.Params, hops int, lo, hi float64) float64 {
	feasible := func(rate float64) bool {
		cfg := DefaultConfig(base.WithUniformError(rate))
		return cfg.Evaluate(EndpointsOnly, hops).Feasible
	}
	if !feasible(lo) {
		return lo
	}
	if feasible(hi) {
		return hi
	}
	for hi/lo > 1.05 {
		mid := lo * math.Sqrt(hi/lo) // geometric midpoint
		if feasible(mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}
