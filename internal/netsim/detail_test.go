package netsim

import (
	"strings"
	"testing"

	"repro/internal/workload"
)

func TestRunDetailedMatchesRun(t *testing.T) {
	g := grid(t, 4, 4)
	prog := workload.QFT(16)
	cfg := DefaultConfig(g, HomeBase, 16, 16, 8)
	plain, err := Run(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	detailed, detail, err := RunDetailed(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	if plain != detailed {
		t.Error("Run and RunDetailed disagree on the summary")
	}
	if detail == nil {
		t.Fatal("detail missing")
	}
	if len(detail.TeleporterUtil) != 16 || len(detail.PurifierUtil) != 16 {
		t.Errorf("per-tile stats have wrong length: %d/%d",
			len(detail.TeleporterUtil), len(detail.PurifierUtil))
	}
	if len(detail.GeneratorUtil) != len(g.Links()) {
		t.Errorf("per-link stats length %d, want %d", len(detail.GeneratorUtil), len(g.Links()))
	}
}

func TestDetailAggregatesMatchResult(t *testing.T) {
	g := grid(t, 4, 4)
	prog := workload.QFT(16)
	cfg := DefaultConfig(g, HomeBase, 16, 16, 8)
	res, detail, err := RunDetailed(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, v := range detail.TeleporterUtil {
		sum += v
	}
	mean := sum / float64(len(detail.TeleporterUtil))
	if diff := mean - res.TeleporterUtil; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("mean of per-tile teleporter util %g != summary %g", mean, res.TeleporterUtil)
	}
}

func TestHeatmapRendering(t *testing.T) {
	g := grid(t, 4, 4)
	prog := workload.QFT(16)
	_, detail, err := RunDetailed(DefaultConfig(g, HomeBase, 16, 16, 8), prog)
	if err != nil {
		t.Fatal(err)
	}
	for _, metric := range []string{"teleporter", "purifier"} {
		out, err := detail.Heatmap(metric)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(out, metric) {
			t.Errorf("heatmap missing title: %q", out)
		}
		rows := strings.Count(out, "\n") - 1
		if rows != 4 {
			t.Errorf("heatmap has %d rows, want 4", rows)
		}
		// At least one hot tile must appear (digit 9 = the maximum).
		if !strings.Contains(out, "9") {
			t.Errorf("heatmap has no maximal tile:\n%s", out)
		}
	}
	if _, err := detail.Heatmap("bogus"); err == nil {
		t.Error("unknown metric should fail")
	}
}

func TestHottestTile(t *testing.T) {
	g := grid(t, 4, 4)
	prog := workload.QFT(16)
	_, detail, err := RunDetailed(DefaultConfig(g, HomeBase, 16, 16, 8), prog)
	if err != nil {
		t.Fatal(err)
	}
	c, v := detail.HottestTile()
	if !g.Contains(c) {
		t.Errorf("hottest tile %v outside grid", c)
	}
	if v <= 0 {
		t.Errorf("hottest utilization = %g, want > 0", v)
	}
	for _, u := range detail.TeleporterUtil {
		if u > v {
			t.Errorf("found hotter tile (%g) than reported max (%g)", u, v)
		}
	}
}
