package mesh

import "testing"

func TestRowBandsCoverage(t *testing.T) {
	for _, tc := range []struct{ w, h, n, wantRegions int }{
		{5, 5, 1, 1},
		{5, 5, 2, 2},
		{5, 5, 5, 5},
		{5, 5, 8, 5}, // clamps to one region per row
		{16, 16, 4, 4},
		{3, 7, 3, 3},
		{1, 1, 4, 1},
	} {
		g, err := NewGrid(tc.w, tc.h)
		if err != nil {
			t.Fatal(err)
		}
		p, err := RowBands(g, tc.n)
		if err != nil {
			t.Fatalf("%dx%d n=%d: %v", tc.w, tc.h, tc.n, err)
		}
		if p.Regions() != tc.wantRegions {
			t.Errorf("%dx%d n=%d: %d regions, want %d", tc.w, tc.h, tc.n, p.Regions(), tc.wantRegions)
		}
		// Every tile belongs to exactly one region; regions are
		// contiguous and non-decreasing down the rows; band sizes differ
		// by at most one row.
		sizes := make([]int, p.Regions())
		prev := 0
		for y := 0; y < tc.h; y++ {
			r := p.RegionOf(Coord{X: 0, Y: y})
			if r < prev || r > prev+1 {
				t.Fatalf("%dx%d n=%d: region jumped %d -> %d at row %d", tc.w, tc.h, tc.n, prev, r, y)
			}
			for x := 0; x < tc.w; x++ {
				if p.RegionOf(Coord{X: x, Y: y}) != r {
					t.Fatalf("%dx%d n=%d: row %d split across regions", tc.w, tc.h, tc.n, y)
				}
			}
			sizes[r]++
			prev = r
		}
		minSz, maxSz := tc.h, 0
		for r, sz := range sizes {
			if sz == 0 {
				t.Errorf("%dx%d n=%d: region %d empty", tc.w, tc.h, tc.n, r)
			}
			if sz < minSz {
				minSz = sz
			}
			if sz > maxSz {
				maxSz = sz
			}
			y0, y1 := p.RowRange(r)
			if y1-y0 != sz {
				t.Errorf("%dx%d n=%d: RowRange(%d) spans %d rows, counted %d", tc.w, tc.h, tc.n, r, y1-y0, sz)
			}
		}
		if maxSz-minSz > 1 {
			t.Errorf("%dx%d n=%d: band sizes %v not near-equal", tc.w, tc.h, tc.n, sizes)
		}
	}
}

func TestRowBandsCutLinks(t *testing.T) {
	g, err := NewGrid(6, 8)
	if err != nil {
		t.Fatal(err)
	}
	p, err := RowBands(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	cuts := p.CutLinks()
	// 4 bands of 2 rows: 3 cuts, each crossed by Width South links.
	if want := (p.Regions() - 1) * g.Width; len(cuts) != want {
		t.Fatalf("%d cut links, want %d", len(cuts), want)
	}
	for _, l := range cuts {
		if l.Dir != South {
			t.Errorf("cut link %v/%v is not a South link", l.From, l.Dir)
		}
		if !p.IsCut(l) {
			t.Errorf("CutLinks returned non-cut link %v/%v", l.From, l.Dir)
		}
		a, b := p.RegionOf(l.From), p.RegionOf(l.From.Step(l.Dir))
		if b != a+1 {
			t.Errorf("cut link %v spans regions %d -> %d, want adjacent", l.From, a, b)
		}
	}
	// A single-region partition has no cuts.
	whole, err := RowBands(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	if cuts := whole.CutLinks(); len(cuts) != 0 {
		t.Errorf("1-region partition has %d cut links", len(cuts))
	}
}

func TestRowBandsValidation(t *testing.T) {
	g, err := NewGrid(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RowBands(g, 0); err == nil {
		t.Error("RowBands accepted n=0")
	}
	if _, err := RowBands(Grid{}, 2); err == nil {
		t.Error("RowBands accepted the empty grid")
	}
	p, err := RowBands(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("RegionOf off-grid", func() { p.RegionOf(Coord{X: -1, Y: 0}) })
	mustPanic("RowRange out of range", func() { p.RowRange(2) })
}
