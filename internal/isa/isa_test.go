package isa

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/workload"
)

func TestParseBasicProgram(t *testing.T) {
	src := `
# a tiny kernel
program demo
qubits 4
op 0 1
op 2 3   # trailing comment
op 0 3
`
	prog, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if prog.Name != "demo" || prog.Qubits != 4 {
		t.Errorf("header parsed wrong: %q %d", prog.Name, prog.Qubits)
	}
	want := []workload.Op{{A: 0, B: 1}, {A: 2, B: 3}, {A: 0, B: 3}}
	if len(prog.Ops) != len(want) {
		t.Fatalf("ops = %v, want %v", prog.Ops, want)
	}
	for i := range want {
		if prog.Ops[i] != want[i] {
			t.Fatalf("ops = %v, want %v", prog.Ops, want)
		}
	}
}

func TestParseMacros(t *testing.T) {
	src := `
qubits 16
qft 8
mm 4 8
`
	prog, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	wantOps := len(workload.QFT(8).Ops) + len(workload.ModMult(4).Ops)
	if len(prog.Ops) != wantOps {
		t.Errorf("ops = %d, want %d", len(prog.Ops), wantOps)
	}
	// The mm macro with offset 8 must land on qubits 8..15.
	for _, op := range prog.Ops[len(workload.QFT(8).Ops):] {
		if op.A < 8 || op.B < 8 {
			t.Errorf("offset mm op %v touches qubits below 8", op)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"missing qubits":    "op 0 1\n",
		"no declaration":    "# nothing\n",
		"bad directive":     "qubits 4\nfrobnicate 1\n",
		"op arity":          "qubits 4\nop 1\n",
		"non-integer":       "qubits 4\nop a b\n",
		"self op":           "qubits 4\nop 2 2\n",
		"out of range":      "qubits 4\nop 0 9\n",
		"zero qubits":       "qubits 0\n",
		"qft before qubits": "qft 4\n",
		"negative offset":   "qubits 8\nqft 4 -1\n",
		"macro size":        "qubits 8\nmm 0\n",
		"program arity":     "program a b\nqubits 2\nop 0 1\n",
		"qubits arity":      "qubits 4 5\n",
	}
	for name, src := range cases {
		if _, err := Parse(strings.NewReader(src)); err == nil {
			t.Errorf("%s: expected parse error for %q", name, src)
		}
	}
}

func TestFormatRoundTrip(t *testing.T) {
	orig := workload.QFT(6)
	parsed, err := Parse(strings.NewReader(Format(orig)))
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Qubits != orig.Qubits || len(parsed.Ops) != len(orig.Ops) {
		t.Fatalf("round trip changed shape: %d/%d vs %d/%d",
			parsed.Qubits, len(parsed.Ops), orig.Qubits, len(orig.Ops))
	}
	for i := range orig.Ops {
		if parsed.Ops[i] != orig.Ops[i] {
			t.Fatalf("round trip changed op %d: %v vs %v", i, parsed.Ops[i], orig.Ops[i])
		}
	}
}

func TestFormatSanitizesName(t *testing.T) {
	prog := workload.Program{Name: "has spaces/slashes", Qubits: 2, Ops: []workload.Op{{A: 0, B: 1}}}
	out := Format(prog)
	if !strings.Contains(out, "program has-spaces-slashes\n") {
		t.Errorf("name not sanitized: %q", out)
	}
	prog.Name = ""
	if !strings.Contains(Format(prog), "program program\n") {
		t.Error("empty name should default")
	}
}

// Property: Format/Parse round-trips every generated workload.
func TestRoundTripProperty(t *testing.T) {
	f := func(nRaw, kind uint8) bool {
		n := int(nRaw)%10 + 2
		var prog workload.Program
		switch kind % 3 {
		case 0:
			prog = workload.QFT(n)
		case 1:
			prog = workload.ModMult(n)
		default:
			prog = workload.ModExp(n, 1)
		}
		parsed, err := Parse(strings.NewReader(Format(prog)))
		if err != nil {
			return false
		}
		if parsed.Qubits != prog.Qubits || len(parsed.Ops) != len(prog.Ops) {
			return false
		}
		for i := range prog.Ops {
			if parsed.Ops[i] != prog.Ops[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
