// Chaos fault injection at the service layer: a Transport wrapper and
// a Store wrapper that replay a seeded chaos.Schedule against any
// inner implementation, so every coordinator failure path — injected
// latency, refused dispatches, mid-stream truncation, duplicated
// result lines, health-probe flaps, store read misses and dropped
// writes — is exercisable deterministically in process, with no
// sockets and no real failures.

package distrib

import (
	"context"
	"errors"
	"time"

	"repro/qnet/distrib/chaos"
	"repro/qnet/simulate"
)

// Chaos wraps an inner Transport with seeded fault injection driven by
// a chaos.Schedule.  Faults are injected on the coordinator side of
// the transport seam, so the inner transport (Loopback or
// HTTPTransport) and the workers behind it stay healthy — exactly the
// point: the coordinator must absorb every injected failure without
// changing its merged output.
type Chaos struct {
	inner Transport
	sched *chaos.Schedule
}

// Chaos implements Transport.
var _ Transport = (*Chaos)(nil)

// NewChaos wraps the transport with fault injection from the schedule.
func NewChaos(inner Transport, sched *chaos.Schedule) *Chaos {
	return &Chaos{inner: inner, sched: sched}
}

// errRefused is the cause of an injected connection refusal.
var errRefused = errors.New("chaos: connection refused")

// errProbeDropped is the cause of an injected health-probe flap.
var errProbeDropped = errors.New("chaos: probe dropped")

// Run applies one Dispatch decision around the inner transport's Run:
// an injected delay first, then possibly an outright refusal; during
// the stream, result lines may be duplicated, and the stream may be
// cut after a few points as a truncation error.  Emit failures from
// the coordinator pass through unwrapped.
func (c *Chaos) Run(ctx context.Context, worker string, job Job, emit func(PointResult) error) error {
	d := c.sched.Dispatch()
	if d.Delay > 0 {
		t := time.NewTimer(d.Delay)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return &TransportError{Worker: worker, Op: "submit", Err: ctx.Err()}
		}
	}
	if d.Refuse {
		return &TransportError{Worker: worker, Op: "submit", Err: errRefused}
	}
	truncated := errors.New("chaos: stream cut") // unique sentinel per call
	delivered := 0
	err := c.inner.Run(ctx, worker, job, func(pr PointResult) error {
		if d.TruncateAfter >= 0 && delivered >= d.TruncateAfter {
			return truncated
		}
		delivered++
		if err := emit(pr); err != nil {
			return err
		}
		if d.Duplicate {
			return emit(pr)
		}
		return nil
	})
	if errors.Is(err, truncated) {
		return &TransportError{Worker: worker, Op: "stream", Err: ErrTruncatedStream}
	}
	return err
}

// Healthy probes through the inner transport, with injected flaps: a
// flapped probe fails even though the worker is alive.  A draining
// verdict passes through un-flapped, so chaos never turns a draining
// worker into a dead-looking one.
func (c *Chaos) Healthy(ctx context.Context, worker string) error {
	err := c.inner.Healthy(ctx, worker)
	if err == nil && c.sched.Flap() {
		return &TransportError{Worker: worker, Op: "healthz", Err: errProbeDropped}
	}
	return err
}

// Status fetches through the inner transport, with injected flaps.
func (c *Chaos) Status(ctx context.Context, worker string) (Status, error) {
	st, err := c.inner.Status(ctx, worker)
	if err == nil && c.sched.Flap() {
		return Status{}, &TransportError{Worker: worker, Op: "status", Err: errProbeDropped}
	}
	return st, err
}

// ChaosStore wraps an inner simulate.Store with injected read misses
// and dropped writes from a chaos.Schedule.  Both faults respect the
// Store contract — best-effort, never an error — so they model a flaky
// or partitioned store exactly: a forced miss re-simulates, a dropped
// write leaves the store cold for the next reader.
type ChaosStore struct {
	inner simulate.Store
	sched *chaos.Schedule
}

// ChaosStore implements simulate.Store.
var _ simulate.Store = (*ChaosStore)(nil)

// NewChaosStore wraps the store with fault injection from the schedule.
func NewChaosStore(inner simulate.Store, sched *chaos.Schedule) *ChaosStore {
	return &ChaosStore{inner: inner, sched: sched}
}

// Get forwards to the inner store unless the schedule forces a miss.
func (cs *ChaosStore) Get(k simulate.Key) (simulate.Result, bool) {
	if cs.sched.MissGet() {
		return simulate.Result{}, false
	}
	return cs.inner.Get(k)
}

// Put forwards to the inner store unless the schedule drops the write.
func (cs *ChaosStore) Put(k simulate.Key, res simulate.Result) {
	if cs.sched.DropPut() {
		return
	}
	cs.inner.Put(k, res)
}

// Stats returns the inner store's counters.
func (cs *ChaosStore) Stats() simulate.CacheStats { return cs.inner.Stats() }
