// The coordinator's checkpoint journal: an append-only NDJSON file
// recording which shards of a sweep have completed, keyed by a hash of
// the sweep's wire spec and shard plan.  A crashed or cancelled Sweep
// resumed with the same journal directory re-dispatches only the
// unfinished shards and reconstructs the finished ones from the shared
// result store — zero re-simulation of completed work.

package distrib

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// journalLine is one NDJSON line of a checkpoint journal: the first
// line is the header (SpaceHash and Shards set), every later line
// records one completed shard.
type journalLine struct {
	// SpaceHash is the sweep's spec/plan hash (header line only).
	SpaceHash string `json:"space_hash,omitempty"`
	// Shards is the planned shard count (header line only).
	Shards int `json:"shards,omitempty"`
	// Shard is a completed shard's ID (completion lines only; the
	// header never carries it, so pointer-nil distinguishes the forms).
	Shard *int `json:"shard,omitempty"`
}

// specHash fingerprints a sweep for journal identity: the SHA-256 of
// the spec's canonical JSON plus the shard count, so a journal can
// never resume a different space or a differently-sharded plan.
func specHash(spec SpaceSpec, shards int) (string, error) {
	data, err := json.Marshal(spec)
	if err != nil {
		return "", err
	}
	h := sha256.New()
	h.Write(data)
	fmt.Fprintf(h, "|shards=%d", shards)
	return hex.EncodeToString(h.Sum(nil)), nil
}

// journal is an open checkpoint journal: the append handle plus the
// set of shard completions already on disk.  complete is safe for
// concurrent use (worker goroutines checkpoint as shards finish).
type journal struct {
	path string
	mu   sync.Mutex
	f    *os.File
	done map[int]bool
}

// openJournal opens (or creates) the journal for one sweep identity in
// dir, replaying any completions a previous run recorded.  The file
// name embeds the spec/plan hash, so one directory serves many sweeps
// and a changed spec or shard count never matches a stale journal.
func openJournal(dir string, spec SpaceSpec, shards int) (*journal, error) {
	hash, err := specHash(spec, shards)
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("distrib: journal dir: %w", err)
	}
	path := filepath.Join(dir, "sweep-"+hash[:16]+".journal")
	j := &journal{path: path, done: make(map[int]bool)}

	if data, err := os.Open(path); err == nil {
		sc := bufio.NewScanner(data)
		first := true
		for sc.Scan() {
			if len(sc.Bytes()) == 0 {
				continue
			}
			var line journalLine
			if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
				// A torn final line is what a crash mid-append leaves
				// behind; everything before it is still trustworthy.
				break
			}
			if first {
				first = false
				if line.SpaceHash != hash || line.Shards != shards {
					data.Close()
					return nil, fmt.Errorf("distrib: journal %s does not match this sweep (hash %s, %d shards)",
						path, hash[:16], shards)
				}
				continue
			}
			if line.Shard != nil && *line.Shard >= 0 && *line.Shard < shards {
				j.done[*line.Shard] = true
			}
		}
		data.Close()
	}

	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("distrib: journal: %w", err)
	}
	j.f = f
	if fi, err := f.Stat(); err == nil && fi.Size() == 0 {
		if err := j.append(journalLine{SpaceHash: hash, Shards: shards}); err != nil {
			f.Close()
			return nil, err
		}
	}
	return j, nil
}

// append writes one NDJSON line and syncs it — a completion must be
// durable before the coordinator acts on it, or a crash could forget
// finished work the store no longer double-covers.
func (j *journal) append(line journalLine) error {
	data, err := json.Marshal(line)
	if err != nil {
		return err
	}
	if _, err := j.f.Write(append(data, '\n')); err != nil {
		return fmt.Errorf("distrib: journal append: %w", err)
	}
	return j.f.Sync()
}

// complete records one shard's completion (idempotent).
func (j *journal) complete(id int) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.done[id] {
		return nil
	}
	j.done[id] = true
	return j.append(journalLine{Shard: &id})
}

// close releases the append handle.
func (j *journal) close() {
	if j.f != nil {
		j.f.Close()
	}
}
