package netsim

import (
	"testing"

	"repro/internal/mesh"
	"repro/internal/workload"
)

func grid(t *testing.T, w, h int) mesh.Grid {
	t.Helper()
	g, err := mesh.NewGrid(w, h)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestConfigValidate(t *testing.T) {
	g := grid(t, 4, 4)
	good := DefaultConfig(g, HomeBase, 16, 16, 16)
	if err := good.Validate(); err != nil {
		t.Fatalf("default config should validate: %v", err)
	}
	bad := good
	bad.Teleporters = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero teleporters should fail")
	}
	bad = good
	bad.PurifyDepth = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero purify depth should fail")
	}
	bad = good
	bad.CodeLevel = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative code level should fail")
	}
	bad = good
	bad.HopCells = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero hop cells should fail")
	}
	bad = good
	bad.TurnCells = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative turn cells should fail")
	}
}

func TestLayoutString(t *testing.T) {
	if HomeBase.String() != "HomeBase" || MobileQubit.String() != "MobileQubit" {
		t.Error("layout names wrong")
	}
	if Layout(9).String() != "Layout(9)" {
		t.Error("unknown layout rendering wrong")
	}
}

func TestRunRejectsTooManyQubits(t *testing.T) {
	g := grid(t, 2, 2)
	cfg := DefaultConfig(g, HomeBase, 16, 16, 16)
	if _, err := Run(cfg, workload.QFT(5)); err == nil {
		t.Error("5 qubits on a 2x2 grid should fail")
	}
}

func TestRunSingleOp(t *testing.T) {
	g := grid(t, 4, 1)
	cfg := DefaultConfig(g, HomeBase, 1024, 1024, 1024)
	prog := workload.Program{Name: "one", Qubits: 2, Ops: []workload.Op{{A: 0, B: 1}}}
	res, err := Run(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != 1 {
		t.Errorf("ops = %d, want 1", res.Ops)
	}
	// Home Base: one channel in, one channel back.
	if res.Channels != 2 {
		t.Errorf("channels = %d, want 2", res.Channels)
	}
	// Each channel delivers 2^3 × 49 = 392 pairs (paper §5.3).
	if res.PairsDelivered != 2*392 {
		t.Errorf("pairs delivered = %d, want 784", res.PairsDelivered)
	}
	// Both channels span 1 hop: pair-hops = pairs.
	if res.PairHops != 2*392 {
		t.Errorf("pair hops = %d, want 784", res.PairHops)
	}
	if res.Exec <= 0 {
		t.Error("execution time must be positive")
	}
}

func TestRunSingleOpChannelLatencyBreakdown(t *testing.T) {
	// With unlimited resources, a 1-hop channel's critical path is
	// storage(immediate) + generate + teleport + correct + purify-batch
	// + data teleport.  Check the mean latency is in that ballpark
	// (pipelining makes the 49 batches nearly concurrent).
	g := grid(t, 2, 1)
	cfg := DefaultConfig(g, HomeBase, 4096, 4096, 4096)
	prog := workload.Program{Name: "one", Qubits: 2, Ops: []workload.Op{{A: 0, B: 1}}}
	res, err := Run(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	p := cfg.Params
	min := p.GenerateTime() + p.TeleportTime(600) + (4+2)*p.PurifyRoundTime(600)
	if res.MeanChannelLatency < min {
		t.Errorf("channel latency %v below physical minimum %v", res.MeanChannelLatency, min)
	}
	if res.MeanChannelLatency > 3*min {
		t.Errorf("channel latency %v far above uncontended minimum %v", res.MeanChannelLatency, min)
	}
}

func TestMobileLayoutUsesLocalCommunication(t *testing.T) {
	// The Mobile Qubit layout turns the QFT into mostly single-hop moves:
	// total pair-hops must be far below Home Base's.
	g := grid(t, 4, 4)
	prog := workload.QFT(16)
	home, err := Run(DefaultConfig(g, HomeBase, 1024, 1024, 1024), prog)
	if err != nil {
		t.Fatal(err)
	}
	mobile, err := Run(DefaultConfig(g, MobileQubit, 1024, 1024, 1024), prog)
	if err != nil {
		t.Fatal(err)
	}
	if mobile.PairHops*2 > home.PairHops {
		t.Errorf("mobile pair-hops %d not well below home-base %d", mobile.PairHops, home.PairHops)
	}
	if mobile.Exec >= home.Exec {
		t.Errorf("mobile exec %v should beat home-base %v on QFT", mobile.Exec, home.Exec)
	}
	// Home Base sets up two channels per op; Mobile one per op plus
	// returns.
	if home.Channels != 2*uint64(len(prog.Ops)) {
		t.Errorf("home-base channels = %d, want %d", home.Channels, 2*len(prog.Ops))
	}
	if mobile.Channels >= home.Channels {
		t.Errorf("mobile channels = %d, want fewer than home-base %d", mobile.Channels, home.Channels)
	}
}

func TestMobileQubitsReturnHome(t *testing.T) {
	// After the run, every qubit's trailing return must have executed:
	// the run drains all events, so exec includes returns.  We detect
	// this by comparing against a run whose last ops end far from home.
	g := grid(t, 4, 4)
	prog := workload.QFT(16)
	res, err := Run(DefaultConfig(g, MobileQubit, 1024, 1024, 1024), prog)
	if err != nil {
		t.Fatal(err)
	}
	// 15 movers must return (qubit 15 never moves as A), mostly from
	// qubit 15's home: returns are long channels, so channel count is
	// ops + returns.
	wantReturns := uint64(15)
	minChannels := uint64(len(prog.Ops)) - res.LocalOps + wantReturns
	if res.Channels < minChannels-2 || res.Channels > minChannels+2 {
		t.Errorf("channels = %d, want ~%d (ops + returns)", res.Channels, minChannels)
	}
}

func TestDeterminism(t *testing.T) {
	g := grid(t, 4, 4)
	prog := workload.QFT(16)
	cfg := DefaultConfig(g, HomeBase, 8, 8, 4)
	a, err := Run(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("two identical runs disagree:\n%+v\n%+v", a, b)
	}
}

func TestContentionSlowsExecution(t *testing.T) {
	g := grid(t, 4, 4)
	prog := workload.QFT(16)
	rich, err := Run(DefaultConfig(g, HomeBase, 1024, 1024, 1024), prog)
	if err != nil {
		t.Fatal(err)
	}
	poor, err := Run(DefaultConfig(g, HomeBase, 8, 8, 1), prog)
	if err != nil {
		t.Fatal(err)
	}
	if poor.Exec <= rich.Exec {
		t.Errorf("constrained run %v should be slower than unlimited %v", poor.Exec, rich.Exec)
	}
}

func TestPurifierStarvationHurtsMobileMore(t *testing.T) {
	// The Figure 16 asymmetry: Mobile Qubit concentrates demand on few
	// endpoint purifiers, so cutting p hurts it more than Home Base,
	// whose channel bandwidth is already limited by T' sharing.
	g := grid(t, 4, 4)
	prog := workload.QFT(16)
	slowdown := func(layout Layout) float64 {
		rich, err := Run(DefaultConfig(g, layout, 16, 16, 16), prog)
		if err != nil {
			t.Fatal(err)
		}
		starved, err := Run(DefaultConfig(g, layout, 22, 22, 2), prog)
		if err != nil {
			t.Fatal(err)
		}
		return float64(starved.Exec) / float64(rich.Exec)
	}
	home := slowdown(HomeBase)
	mobile := slowdown(MobileQubit)
	if mobile <= home {
		t.Errorf("purifier starvation slowdown: mobile %.2fx vs home %.2fx — mobile should suffer more", mobile, home)
	}
}

func TestAllToAllOnMinimalResources(t *testing.T) {
	// Deadlock-freedom stress: minimal resources everywhere, ops forced
	// through shared links in both directions.
	g := grid(t, 3, 3)
	prog := workload.QFT(9)
	cfg := DefaultConfig(g, HomeBase, 1, 1, 1)
	res, err := Run(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != len(prog.Ops) {
		t.Errorf("completed %d ops, want %d", res.Ops, len(prog.Ops))
	}
}

func TestModMultAndModExpRun(t *testing.T) {
	g := grid(t, 4, 4)
	for _, prog := range []workload.Program{workload.ModMult(8), workload.ModExp(4, 2)} {
		for _, layout := range []Layout{HomeBase, MobileQubit} {
			res, err := Run(DefaultConfig(g, layout, 16, 16, 8), prog)
			if err != nil {
				t.Fatalf("%s on %v: %v", prog.Name, layout, err)
			}
			if res.Exec <= 0 {
				t.Errorf("%s on %v: non-positive exec time", prog.Name, layout)
			}
		}
	}
}

func TestLocalOpsSkipNetwork(t *testing.T) {
	// Two qubits at the same tile (mobile, after A moves to B) perform
	// later ops locally.  Construct: op(0,1) moves 0 to 1's tile; then
	// op(0,1) again is forbidden (duplicate) — instead use op ordering
	// where A returns to the same destination: op(0,1), op(2,1)...
	// Simplest check: a 1x2 grid with ops between the two qubits in
	// mobile layout: second op between co-located qubits is local.
	g := grid(t, 2, 1)
	prog := workload.Program{
		Name:   "local",
		Qubits: 2,
		Ops:    []workload.Op{{A: 0, B: 1}, {A: 1, B: 0}},
	}
	res, err := Run(DefaultConfig(g, MobileQubit, 64, 64, 64), prog)
	if err != nil {
		t.Fatal(err)
	}
	// Op 1: qubit 0 moves to tile of qubit 1 (1 hop).  Op 2: qubit 1
	// moves to qubit 0's position — same tile, so it is local.
	if res.LocalOps != 1 {
		t.Errorf("local ops = %d, want 1", res.LocalOps)
	}
}

func TestSweepAllocations(t *testing.T) {
	allocs, err := SweepAllocations(48, []int{1, 2, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(allocs) != 4 {
		t.Fatalf("got %d allocations, want 4", len(allocs))
	}
	for _, a := range allocs {
		if a.T < 1 || a.G < 1 || a.P < 1 {
			t.Errorf("%v has a zero resource", a)
		}
		if a.T != a.G {
			t.Errorf("%v should have t == g", a)
		}
		area := a.T + a.G + a.P
		if area < 44 || area > 52 {
			t.Errorf("%v area = %d, want ~48", a, area)
		}
	}
	// Ratio 1 must split evenly.
	if allocs[0].T != 16 || allocs[0].P != 16 {
		t.Errorf("ratio-1 allocation = %v, want 16/16/16", allocs[0])
	}
	// Purifiers must shrink as the ratio grows.
	for i := 1; i < len(allocs); i++ {
		if allocs[i].P >= allocs[i-1].P {
			t.Errorf("purifiers did not shrink: %v -> %v", allocs[i-1], allocs[i])
		}
	}
}

func TestSweepAllocationsValidation(t *testing.T) {
	if _, err := SweepAllocations(2, []int{1}); err == nil {
		t.Error("tiny area should fail")
	}
	if _, err := SweepAllocations(48, []int{0}); err == nil {
		t.Error("zero ratio should fail")
	}
}

func TestPairHopsScaleWithDistance(t *testing.T) {
	// A single op between far-apart qubits teleports 392 pairs across
	// every hop of the dimension-ordered path, both ways (Home Base).
	g := grid(t, 8, 1)
	cfg := DefaultConfig(g, HomeBase, 1024, 1024, 1024)
	prog := workload.Program{Name: "far", Qubits: 8, Ops: []workload.Op{{A: 0, B: 7}}}
	res, err := Run(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	if want := uint64(2 * 392 * 7); res.PairHops != want {
		t.Errorf("pair hops = %d, want %d", res.PairHops, want)
	}
}

func TestClassicalTrafficAccounted(t *testing.T) {
	g := grid(t, 4, 1)
	cfg := DefaultConfig(g, HomeBase, 1024, 1024, 1024)
	prog := workload.Program{Name: "one", Qubits: 2, Ops: []workload.Op{{A: 0, B: 1}}}
	res, err := Run(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	// Per channel: 392 teleport messages (1 hop) + 49 batches × 7
	// purification messages; two channels.
	want := uint64(2 * (392 + 49*7))
	if res.ClassicalMessages != want {
		t.Errorf("classical messages = %d, want %d", res.ClassicalMessages, want)
	}
}

func TestFailureInjectionValidation(t *testing.T) {
	g := grid(t, 4, 4)
	cfg := DefaultConfig(g, HomeBase, 16, 16, 16)
	cfg.PurifyFailureRate = 1.0
	if err := cfg.Validate(); err == nil {
		t.Error("failure rate 1.0 should be rejected")
	}
	cfg.PurifyFailureRate = -0.1
	if err := cfg.Validate(); err == nil {
		t.Error("negative failure rate should be rejected")
	}
}

func TestFailureInjectionCostsPairsAndTime(t *testing.T) {
	g := grid(t, 4, 4)
	prog := workload.QFT(16)
	clean := DefaultConfig(g, HomeBase, 16, 16, 8)
	resClean, err := Run(clean, prog)
	if err != nil {
		t.Fatal(err)
	}
	faulty := clean
	faulty.PurifyFailureRate = 0.2
	faulty.Seed = 1
	resFaulty, err := Run(faulty, prog)
	if err != nil {
		t.Fatal(err)
	}
	if resFaulty.FailedBatches == 0 {
		t.Fatal("20% failure rate should lose some batches")
	}
	if resClean.FailedBatches != 0 {
		t.Errorf("clean run reported %d failed batches", resClean.FailedBatches)
	}
	if resFaulty.PairHops <= resClean.PairHops {
		t.Errorf("failures should force extra pair-hops: %d <= %d", resFaulty.PairHops, resClean.PairHops)
	}
	if resFaulty.Exec <= resClean.Exec {
		t.Errorf("failures should slow execution: %v <= %v", resFaulty.Exec, resClean.Exec)
	}
	// Roughly 20% of batches should fail (with slack for a finite run:
	// each failure respawns a batch that can itself fail, so the rate is
	// against total batch-attempts).
	attempts := resFaulty.Channels*49 + resFaulty.FailedBatches
	frac := float64(resFaulty.FailedBatches) / float64(attempts)
	if frac < 0.1 || frac > 0.3 {
		t.Errorf("failed fraction = %.3f, want ~0.2", frac)
	}
}

func TestFailureInjectionSeedReproducible(t *testing.T) {
	g := grid(t, 4, 4)
	prog := workload.QFT(16)
	cfg := DefaultConfig(g, HomeBase, 16, 16, 8)
	cfg.PurifyFailureRate = 0.1
	cfg.Seed = 42
	a, err := Run(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("same seed should reproduce the same run")
	}
	cfg.Seed = 43
	c, err := Run(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Error("different seeds should (almost surely) differ")
	}
}
