package sim

import (
	"container/heap"
	"math/rand"
	"testing"
	"time"
)

// oracleEngine is a faithful copy of the pre-refactor engine — a
// container/heap of boxed events with a linearly-scanning Cancel — kept
// as the behavioral oracle for the randomized equivalence test below.
// Any divergence in pop order, cancellation outcome, clock or pending
// count between it and the rewritten arena engine is a bug in the
// rewrite.
type oracleEngine struct {
	now    time.Duration
	events oracleHeap
	seq    uint64
}

func (e *oracleEngine) Schedule(delay time.Duration, fn func()) uint64 {
	if delay < 0 {
		delay = 0
	}
	e.seq++
	heap.Push(&e.events, &oracleEvent{at: e.now + delay, seq: e.seq, fn: fn})
	return e.seq
}

func (e *oracleEngine) Cancel(id uint64) bool {
	for i, ev := range e.events {
		if ev.seq == id {
			heap.Remove(&e.events, i)
			return true
		}
	}
	return false
}

func (e *oracleEngine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(*oracleEvent)
	e.now = ev.at
	ev.fn()
	return true
}

func (e *oracleEngine) Pending() int { return len(e.events) }

type oracleEvent struct {
	at  time.Duration
	seq uint64
	fn  func()
}

type oracleHeap []*oracleEvent

func (h oracleHeap) Len() int { return len(h) }
func (h oracleHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h oracleHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *oracleHeap) Push(x interface{}) { *h = append(*h, x.(*oracleEvent)) }
func (h *oracleHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// TestEngineMatchesOracleOnRandomOps drives the rewritten engine and
// the pre-refactor oracle through identical randomized
// Schedule/Cancel/Step sequences and demands bit-identical observable
// behavior: the same (time, seq) pop order, the same Cancel verdicts,
// the same clock and the same pending counts — including after the
// queue is drained with tombstones still buried in the heap.
func TestEngineMatchesOracleOnRandomOps(t *testing.T) {
	rng := rand.New(rand.NewSource(20060618))
	for trial := 0; trial < 100; trial++ {
		e := New()
		o := &oracleEngine{}
		var got, want []int
		var ids []EventID
		var oids []uint64
		label := 0
		ops := 50 + rng.Intn(400)
		for i := 0; i < ops; i++ {
			switch rng.Intn(6) {
			case 0, 1, 2: // schedule the same event in both engines
				k := label
				label++
				d := time.Duration(rng.Intn(40)) * time.Microsecond
				ids = append(ids, e.Schedule(d, func() { got = append(got, k) }))
				oids = append(oids, o.Schedule(d, func() { want = append(want, k) }))
			case 3: // cancel a random (possibly stale) handle in both
				if len(ids) == 0 {
					continue
				}
				k := rng.Intn(len(ids))
				if g, w := e.Cancel(ids[k]), o.Cancel(oids[k]); g != w {
					t.Fatalf("trial %d: Cancel(event %d) = %v, oracle %v", trial, k, g, w)
				}
			case 4, 5: // step both
				if g, w := e.Step(), o.Step(); g != w {
					t.Fatalf("trial %d: Step() = %v, oracle %v", trial, g, w)
				}
				if e.Now() != o.now {
					t.Fatalf("trial %d: clock %v, oracle %v", trial, e.Now(), o.now)
				}
			}
			if e.Pending() != o.Pending() {
				t.Fatalf("trial %d: pending %d, oracle %d", trial, e.Pending(), o.Pending())
			}
		}
		for { // drain both queues to the end
			g, w := e.Step(), o.Step()
			if g != w {
				t.Fatalf("trial %d: drain Step() = %v, oracle %v", trial, g, w)
			}
			if !g {
				break
			}
		}
		if e.Pending() != 0 {
			t.Fatalf("trial %d: %d events pending after drain", trial, e.Pending())
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: executed %d events, oracle %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: execution order diverges at %d: got event %d, oracle %d",
					trial, i, got[i], want[i])
			}
		}
	}
}
