package qnet

import (
	"errors"
	"fmt"
)

// Sentinel errors for errors.Is matching.  Every structured error in the
// qnet packages unwraps to one of these, so callers can classify a
// failure without knowing the concrete type:
//
//	if errors.Is(err, qnet.ErrInvalidConfig) { ... }
//	var ce *qnet.CapacityError
//	if errors.As(err, &ce) { log.Printf("need %d %s", ce.Need, ce.Resource) }
var (
	// ErrInvalidConfig marks any configuration rejected at build time.
	ErrInvalidConfig = errors.New("qnet: invalid configuration")
	// ErrCapacity marks a request exceeding what the configured machine
	// can hold (for example more logical qubits than mesh tiles).
	ErrCapacity = errors.New("qnet: capacity exceeded")
)

// ConfigError reports one rejected configuration field or option.  It
// unwraps to ErrInvalidConfig.
type ConfigError struct {
	// Field is the option or configuration field at fault, for example
	// "PurifyDepth" or "FailureRate".
	Field string
	// Value is the rejected value.
	Value any
	// Reason says what a valid value looks like.
	Reason string
}

// Error implements the error interface.
func (e *ConfigError) Error() string {
	return fmt.Sprintf("qnet: invalid %s %v: %s", e.Field, e.Value, e.Reason)
}

// Unwrap makes errors.Is(err, ErrInvalidConfig) true.
func (e *ConfigError) Unwrap() error { return ErrInvalidConfig }

// CapacityError reports a request that exceeds a machine resource.  It
// unwraps to ErrCapacity.
type CapacityError struct {
	// Resource names the exhausted resource, for example "tiles".
	Resource string
	// Need is what the request requires; Have is what the machine has.
	Need, Have int
}

// Error implements the error interface.
func (e *CapacityError) Error() string {
	return fmt.Sprintf("qnet: %s capacity exceeded: need %d, have %d", e.Resource, e.Need, e.Have)
}

// Unwrap makes errors.Is(err, ErrCapacity) true.
func (e *CapacityError) Unwrap() error { return ErrCapacity }
