// Quickstart: build a reliable quantum channel step by step.
//
// This example walks the paper's core argument: moving a qubit
// ballistically across a large ion-trap chip destroys it; teleportation
// needs high-fidelity EPR pairs; chained teleportation distributes those
// pairs but degrades them; endpoint purification repairs them at an
// exponential (but affordable) cost.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"

	"repro/qnet"
	"repro/qnet/channel"
)

func main() {
	p := qnet.IonTrap2006()
	fmt.Println("== Ion-trap device parameters (paper Tables 1 and 2) ==")
	fmt.Println(p)

	// Step 1: why not just move the qubit?  On a 1000x1000-cell chip the
	// corner-to-corner ballistic error is already fatal for data.
	fmt.Println("\n== Step 1: ballistic movement does not scale ==")
	for _, n := range []int{10, 100, 1000} {
		fmt.Printf("corner-to-corner on a %4dx%-4d grid: error %.2e (threshold %.2e)\n",
			n, n, qnet.CornerToCornerError(p, n), qnet.ThresholdError)
	}

	// Step 2: teleportation needs an EPR pair at both endpoints; its
	// output fidelity depends on the pair's fidelity (Eq 3).
	fmt.Println("\n== Step 2: teleportation quality tracks EPR pair quality ==")
	for _, eprErr := range []float64{1e-7, 1e-5, 1e-3} {
		out := qnet.Teleport(p, 1, 1-eprErr)
		fmt.Printf("teleport with EPR error %.0e: data error %.2e\n", eprErr, 1-out)
	}

	// Step 3: the latency crossover that sets the teleporter grid pitch.
	fmt.Println("\n== Step 3: when is teleporting faster than moving? ==")
	d := p.CrossoverCells()
	fmt.Printf("crossover at %d cells (paper: ~600): ballistic %v vs teleport %v\n",
		d, p.BallisticTime(d), p.TeleportTime(d))

	// Step 4: set up a channel across 30 hops (the 16x16 grid diameter)
	// and see what it costs under the paper's chosen policy.
	fmt.Println("\n== Step 4: channel setup cost across 30 hops ==")
	cfg := channel.DefaultDistribution(p)
	cost := cfg.Evaluate(channel.EndpointsOnly, 30)
	fmt.Printf("arrival error after 30 chained teleports: %.2e\n", cost.ArrivalError)
	fmt.Printf("endpoint purification rounds needed:      %d (tree of %d pairs)\n",
		cost.EndpointRounds, 1<<uint(cost.EndpointRounds))
	fmt.Printf("delivered pair error:                     %.2e (threshold %.2e)\n",
		cost.FinalError, qnet.ThresholdError)
	fmt.Printf("pairs teleported per delivered pair:      %.1f\n", cost.TeleportedPairs)
	fmt.Printf("total pairs consumed per delivered pair:  %.1f\n", cost.TotalPairs)

	// Step 5: a logical qubit is 49 physical qubits (level-2 Steane), so
	// one logical communication needs hundreds of pairs — the paper's
	// headline number.
	fmt.Println("\n== Step 5: scaling to a logical qubit ==")
	code, err := qnet.Steane(2)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%v\n", code)
	fmt.Printf("EPR pairs delivered per logical teleport: %d (= 2^3 x %d, paper: 392)\n",
		code.RawPairsPerLogicalTeleport(3), code.PhysicalQubits())
}
