package mesh

import (
	"testing"
	"testing/quick"
)

func mustGrid(t *testing.T, w, h int) Grid {
	t.Helper()
	g, err := NewGrid(w, h)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewGridValidation(t *testing.T) {
	if _, err := NewGrid(0, 5); err == nil {
		t.Error("zero width should fail")
	}
	if _, err := NewGrid(5, -1); err == nil {
		t.Error("negative height should fail")
	}
}

func TestGridBasics(t *testing.T) {
	g := mustGrid(t, 16, 16)
	if g.Tiles() != 256 {
		t.Errorf("tiles = %d, want 256", g.Tiles())
	}
	if g.Diameter() != 30 {
		t.Errorf("diameter = %d, want 30", g.Diameter())
	}
	if !g.Contains(Coord{15, 15}) || g.Contains(Coord{16, 0}) || g.Contains(Coord{0, -1}) {
		t.Error("Contains is wrong at the boundary")
	}
}

func TestIndexCoordRoundTrip(t *testing.T) {
	g := mustGrid(t, 7, 3)
	for i := 0; i < g.Tiles(); i++ {
		if got := g.Index(g.CoordOf(i)); got != i {
			t.Errorf("round trip of %d gave %d", i, got)
		}
	}
	if g.Index(Coord{2, 1}) != 9 {
		t.Errorf("Index(2,1) = %d, want 9", g.Index(Coord{2, 1}))
	}
}

func TestIndexPanicsOutside(t *testing.T) {
	g := mustGrid(t, 4, 4)
	defer func() {
		if recover() == nil {
			t.Error("Index outside grid should panic")
		}
	}()
	g.Index(Coord{4, 0})
}

func TestManhattan(t *testing.T) {
	cases := []struct {
		a, b Coord
		want int
	}{
		{Coord{0, 0}, Coord{0, 0}, 0},
		{Coord{0, 0}, Coord{3, 4}, 7},
		{Coord{5, 2}, Coord{1, 9}, 11},
	}
	for _, c := range cases {
		if got := Manhattan(c.a, c.b); got != c.want {
			t.Errorf("Manhattan(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
		if got := Manhattan(c.b, c.a); got != c.want {
			t.Errorf("Manhattan not symmetric for %v,%v", c.a, c.b)
		}
	}
}

func TestDirectionAxis(t *testing.T) {
	if East.Axis() != 0 || West.Axis() != 0 {
		t.Error("East/West should be axis 0")
	}
	if North.Axis() != 1 || South.Axis() != 1 {
		t.Error("North/South should be axis 1")
	}
}

func TestRouteDimensionOrder(t *testing.T) {
	g := mustGrid(t, 8, 8)
	dirs, err := g.Route(Coord{1, 1}, Coord{4, 6})
	if err != nil {
		t.Fatal(err)
	}
	// X first (3 East), then Y (5 South).
	if len(dirs) != 8 {
		t.Fatalf("route length %d, want 8", len(dirs))
	}
	for i, d := range dirs {
		if i < 3 && d != East {
			t.Errorf("hop %d = %v, want East", i, d)
		}
		if i >= 3 && d != South {
			t.Errorf("hop %d = %v, want South", i, d)
		}
	}
}

func TestRouteWestNorth(t *testing.T) {
	g := mustGrid(t, 8, 8)
	dirs, err := g.Route(Coord{5, 5}, Coord{2, 1})
	if err != nil {
		t.Fatal(err)
	}
	wantWest, wantNorth := 3, 4
	var west, north int
	for _, d := range dirs {
		switch d {
		case West:
			west++
		case North:
			north++
		default:
			t.Errorf("unexpected direction %v", d)
		}
	}
	if west != wantWest || north != wantNorth {
		t.Errorf("got %d West %d North, want %d/%d", west, north, wantWest, wantNorth)
	}
}

func TestRouteErrors(t *testing.T) {
	g := mustGrid(t, 4, 4)
	if _, err := g.Route(Coord{-1, 0}, Coord{0, 0}); err == nil {
		t.Error("route from outside should fail")
	}
	if _, err := g.Route(Coord{0, 0}, Coord{9, 9}); err == nil {
		t.Error("route to outside should fail")
	}
}

func TestRouteTiles(t *testing.T) {
	g := mustGrid(t, 8, 8)
	tiles, err := g.RouteTiles(Coord{0, 0}, Coord{2, 1})
	if err != nil {
		t.Fatal(err)
	}
	want := []Coord{{0, 0}, {1, 0}, {2, 0}, {2, 1}}
	if len(tiles) != len(want) {
		t.Fatalf("path %v, want %v", tiles, want)
	}
	for i := range want {
		if tiles[i] != want[i] {
			t.Fatalf("path %v, want %v", tiles, want)
		}
	}
}

// Property: routes are valid paths of the right length entirely on the
// grid, turning at most once between axes (dimension order).
func TestRouteProperty(t *testing.T) {
	g := mustGrid(t, 16, 16)
	f := func(sx, sy, dx, dy uint8) bool {
		src := Coord{int(sx) % 16, int(sy) % 16}
		dst := Coord{int(dx) % 16, int(dy) % 16}
		tiles, err := g.RouteTiles(src, dst)
		if err != nil {
			return false
		}
		if len(tiles) != Manhattan(src, dst)+1 {
			return false
		}
		if tiles[0] != src || tiles[len(tiles)-1] != dst {
			return false
		}
		axisSwitches := 0
		dirs, _ := g.Route(src, dst)
		for i := 1; i < len(dirs); i++ {
			if dirs[i].Axis() != dirs[i-1].Axis() {
				axisSwitches++
			}
		}
		for _, c := range tiles {
			if !g.Contains(c) {
				return false
			}
		}
		return axisSwitches <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLinkBetween(t *testing.T) {
	l, err := LinkBetween(Coord{3, 3}, Coord{4, 3})
	if err != nil || l.From != (Coord{3, 3}) || l.Dir != East {
		t.Errorf("link = %+v err=%v, want {(3,3) East}", l, err)
	}
	// Canonicalization: reversed arguments give the same link.
	l2, err := LinkBetween(Coord{4, 3}, Coord{3, 3})
	if err != nil || l2 != l {
		t.Errorf("reversed link = %+v, want %+v", l2, l)
	}
	l3, err := LinkBetween(Coord{2, 5}, Coord{2, 4})
	if err != nil || l3.From != (Coord{2, 4}) || l3.Dir != South {
		t.Errorf("vertical link = %+v err=%v", l3, err)
	}
	if _, err := LinkBetween(Coord{0, 0}, Coord{2, 0}); err == nil {
		t.Error("non-adjacent tiles should fail")
	}
	if _, err := LinkBetween(Coord{0, 0}, Coord{0, 0}); err == nil {
		t.Error("identical tiles should fail")
	}
}

func TestLinksCount(t *testing.T) {
	g := mustGrid(t, 4, 3)
	// Horizontal: 3 per row × 3 rows = 9; vertical: 4 per column pair × 2 = 8.
	if got := len(g.Links()); got != 17 {
		t.Errorf("links = %d, want 17", got)
	}
	seen := map[Link]bool{}
	for _, l := range g.Links() {
		if seen[l] {
			t.Errorf("duplicate link %+v", l)
		}
		seen[l] = true
	}
}

func TestLinkIndexMatchesLinksOrder(t *testing.T) {
	// LinkIndex must agree with Links() enumeration on every grid shape,
	// including degenerate 1-wide and 1-tall meshes: that equivalence is
	// what lets netsim swap its map[Link] G-node lookup for a dense slice.
	for _, dims := range [][2]int{{1, 1}, {1, 5}, {5, 1}, {2, 2}, {4, 3}, {5, 5}, {16, 16}} {
		g := mustGrid(t, dims[0], dims[1])
		links := g.Links()
		if got := g.NumLinks(); got != len(links) {
			t.Errorf("%dx%d: NumLinks = %d, Links() has %d", dims[0], dims[1], got, len(links))
		}
		for i, l := range links {
			if got := g.LinkIndex(l); got != i {
				t.Errorf("%dx%d: LinkIndex(%v/%v) = %d, want %d", dims[0], dims[1], l.From, l.Dir, got, i)
			}
		}
	}
}

func TestLinkIndexPanicsOffGrid(t *testing.T) {
	g := mustGrid(t, 3, 3)
	for _, l := range []Link{
		{From: Coord{2, 0}, Dir: East},  // off the east edge
		{From: Coord{0, 2}, Dir: South}, // off the south edge
		{From: Coord{3, 0}, Dir: East},  // source outside
		{From: Coord{1, 1}, Dir: West},  // non-canonical orientation
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("LinkIndex(%v/%v) should panic", l.From, l.Dir)
				}
			}()
			g.LinkIndex(l)
		}()
	}
}

func TestLinkFromMatchesLinkBetween(t *testing.T) {
	// For every on-grid hop, LinkFrom must produce the same canonical
	// link LinkBetween derives from the two endpoints.
	g := mustGrid(t, 4, 3)
	for i := 0; i < g.Tiles(); i++ {
		c := g.CoordOf(i)
		for _, d := range []Direction{East, West, North, South} {
			n := c.Step(d)
			if !g.Contains(n) {
				continue
			}
			want, err := LinkBetween(c, n)
			if err != nil {
				t.Fatal(err)
			}
			if got := g.LinkFrom(c, d); got != want {
				t.Errorf("LinkFrom(%v, %v) = %+v, want %+v", c, d, got, want)
			}
		}
	}
}

func TestRowMajorPlacement(t *testing.T) {
	g := mustGrid(t, 4, 4)
	p, err := RowMajorPlacement(g, 16)
	if err != nil {
		t.Fatal(err)
	}
	if p.Home(0) != (Coord{0, 0}) || p.Home(5) != (Coord{1, 1}) || p.Home(15) != (Coord{3, 3}) {
		t.Error("row-major homes wrong")
	}
	if p.MaxPairDistance() != 6 {
		t.Errorf("max distance = %d, want 6", p.MaxPairDistance())
	}
}

func TestSnakePlacementAdjacency(t *testing.T) {
	// The Mobile Qubit Layout property: consecutive logical qubits are
	// adjacent, so the QFT's visit order is all single-hop moves.
	g := mustGrid(t, 16, 16)
	p, err := SnakePlacement(g, 256)
	if err != nil {
		t.Fatal(err)
	}
	for q := 1; q < 256; q++ {
		if d := Manhattan(p.Home(q-1), p.Home(q)); d != 1 {
			t.Errorf("qubits %d and %d are %d hops apart, want 1", q-1, q, d)
		}
	}
}

func TestPlacementValidation(t *testing.T) {
	g := mustGrid(t, 4, 4)
	if _, err := RowMajorPlacement(g, 17); err == nil {
		t.Error("too many qubits should fail")
	}
	if _, err := SnakePlacement(g, 0); err == nil {
		t.Error("zero qubits should fail")
	}
}

func TestHomePanicsOutOfRange(t *testing.T) {
	g := mustGrid(t, 4, 4)
	p, _ := RowMajorPlacement(g, 4)
	defer func() {
		if recover() == nil {
			t.Error("Home out of range should panic")
		}
	}()
	p.Home(4)
}

func TestMeanPairDistance(t *testing.T) {
	g := mustGrid(t, 2, 1)
	p, _ := RowMajorPlacement(g, 2)
	if d := p.MeanPairDistance(); d != 1 {
		t.Errorf("mean distance = %g, want 1", d)
	}
	g16 := mustGrid(t, 16, 16)
	p16, _ := RowMajorPlacement(g16, 256)
	// Mean Manhattan distance on a 16x16 grid is ~2/3*16 ≈ 10.7.
	if d := p16.MeanPairDistance(); d < 10 || d > 11.5 {
		t.Errorf("16x16 mean distance = %g, want ~10.7", d)
	}
	single, _ := RowMajorPlacement(g16, 1)
	if d := single.MeanPairDistance(); d != 0 {
		t.Errorf("single qubit mean distance = %g, want 0", d)
	}
}
