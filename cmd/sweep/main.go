// Command sweep explores the sensitivity of the communication models to
// device parameters: it scales all error rates around the Table 2
// baseline, sweeps the teleporter hop length around the 600-cell latency
// crossover, and sweeps the queue-purifier depth — the ablations of the
// design decisions called out in DESIGN.md.
//
// The depth sweep runs every configuration concurrently through the
// qnet/simulate sweep engine, optionally as a multi-seed ensemble with
// failure injection, and caches results on disk with -cache-dir so a
// repeated ablation only simulates what changed.
//
// The routing sweep (-routes) compares routing policies head to head:
// every named policy runs the same workload under both layouts, and
// each policy's execution-time ensemble is Welch-tested against the
// first policy in the list, so a significant difference is flagged
// rather than eyeballed.
//
// Usage:
//
//	sweep -mode errors              # error-rate scaling ablation
//	sweep -mode hops                # hop-length ablation
//	sweep -mode depth -grid 6       # purifier-depth ablation (simulator)
//	sweep -mode depth -workers 8    # explicit worker count
//	sweep -mode depth -seeds 5 -failure 0.05 -cache-dir .qnet
//	sweep -routes xy,yx,zigzag,least-congested      # routing-policy comparison
//	sweep -routes all -seeds 5 -failure 0.05        # with a real ensemble spread
//
// The depth sweep can also run distributed: give -workers a
// comma-separated list of sweepd base URLs and this command becomes
// the coordinator — it shards the space, dispatches the shards,
// reassigns on worker death, and merges the streamed results into the
// same table.  With -cache-dir and -store-listen it also serves the
// fleet's shared result store, so every worker re-hits every other
// worker's finished points:
//
//	sweep -mode depth -workers http://h1:9000,http://h2:9000 \
//	      -cache-dir .qnet -store-listen 10.0.0.5:9100
//
// With -journal a distributed sweep checkpoints shard completions to
// an append-only journal in that directory; rerunning the identical
// sweep after a coordinator crash re-dispatches only the unfinished
// shards and reconstructs the rest from the shared store.
//
// Exit codes: 0 success, 1 runtime failure, 2 configuration error,
// 3 a shard exhausted its dispatch attempts, 4 interrupted (SIGINT/
// SIGTERM or context deadline).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/figures"
	"repro/internal/report"

	"repro/qnet"
	"repro/qnet/channel"
	"repro/qnet/distrib"
	"repro/qnet/fault"
	"repro/qnet/route"
	"repro/qnet/simulate"
	"repro/qnet/stats"
)

func main() {
	var (
		mode        = flag.String("mode", "errors", "sweep mode: errors, hops, depth, routes or methodology")
		dist        = flag.Int("dist", 20, "path length in hops for the analytic sweeps")
		gridN       = flag.Int("grid", 6, "mesh edge length for the simulator sweeps")
		workers     = flag.String("workers", "0", `worker goroutines for the simulator sweeps (0 = GOMAXPROCS), or a comma-separated list of sweepd URLs ("http://h1:9000,http://h2:9000") to run the depth sweep distributed`)
		seeds       = flag.Int("seeds", 1, "ensemble size (seeds per simulated point)")
		failure     = flag.Float64("failure", 0, "purification failure-injection rate for the simulator sweeps")
		cacheDir    = flag.String("cache-dir", "", "directory for the on-disk result cache (empty: no cache)")
		storeListen = flag.String("store-listen", "", "host:port to serve the fleet's shared result store on in distributed mode (must be reachable by the workers; empty: workers use their local stores)")
		routes      = flag.String("routes", "", `routing policies to compare, comma-separated ("all" or e.g. "xy,yx,zigzag,least-congested"); implies -mode routes`)
		faultDead   = flag.Float64("fault-dead", 0, "fraction of mesh links to kill per depth-sweep point (drawn from each point's seed; switches routing to fault-adaptive)")
		faultDrop   = flag.Float64("fault-drop", 0, "per-link batch drop probability injected on live links for the depth sweep")
		journalDir  = flag.String("journal", "", "directory for the distributed coordinator's checkpoint journal (empty: no journal); rerunning an identical sweep resumes it")
	)
	flag.Parse()

	// SIGINT/SIGTERM cancel the sweep context so in-flight shards abort
	// cleanly; the distinct exit code tells schedulers apart from crash.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	goroutines, workerURLs, err := parseWorkers(*workers)
	if err != nil {
		err = &configError{err}
	} else {
		switch {
		case len(workerURLs) > 0 && *mode != "depth" && *routes == "":
			err = &configError{fmt.Errorf("distributed -workers is only supported with -mode depth")}
		case *journalDir != "" && len(workerURLs) == 0:
			err = &configError{fmt.Errorf("-journal is only supported with distributed -workers")}
		case *routes != "" || *mode == "routes":
			if len(workerURLs) > 0 {
				err = &configError{fmt.Errorf("distributed -workers is only supported with -mode depth")}
			} else {
				err = sweepRoutes(*routes, *gridN, goroutines, *seeds, *failure, *cacheDir)
			}
		case *mode == "errors":
			err = sweepErrors(*dist)
		case *mode == "hops":
			err = sweepHops(*dist)
		case *mode == "depth" && len(workerURLs) > 0:
			err = sweepDepthDistributed(ctx, *gridN, workerURLs, *seeds, *failure, *cacheDir, *storeListen, *journalDir,
				fault.Spec{DeadLinks: *faultDead, Drop: *faultDrop})
		case *mode == "depth":
			err = sweepDepth(ctx, *gridN, goroutines, *seeds, *failure, *cacheDir,
				fault.Spec{DeadLinks: *faultDead, Drop: *faultDrop})
		case *mode == "methodology":
			err = sweepMethodology()
		default:
			err = &configError{fmt.Errorf("unknown mode %q (want errors, hops, depth, routes or methodology)", *mode)}
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(exitCode(err))
	}
}

// configError marks a failure in flags or setup rather than in the
// sweep itself; it exits with a distinct code so schedulers never
// retry a sweep that can only fail the same way again.
type configError struct{ err error }

// Error formats the wrapped error.
func (e *configError) Error() string { return e.err.Error() }

// Unwrap exposes the wrapped error.
func (e *configError) Unwrap() error { return e.err }

// exitCode maps a sweep failure to the process exit code documented in
// the package comment: 2 for configuration errors, 3 when a shard
// exhausted its dispatch attempts, 4 for interruption, 1 otherwise.
func exitCode(err error) int {
	var cfg *configError
	switch {
	case errors.As(err, &cfg):
		return 2
	case errors.Is(err, distrib.ErrAttemptsExhausted):
		return 3
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return 4
	}
	return 1
}

// parseWorkers interprets the -workers flag: a bare integer is a
// goroutine count for the in-process engine; anything else is a
// comma-separated list of sweepd worker URLs for distributed mode.
func parseWorkers(s string) (goroutines int, urls []string, err error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, nil, nil
	}
	if n, err := strconv.Atoi(s); err == nil {
		return n, nil, nil
	}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if !strings.Contains(part, "://") {
			return 0, nil, fmt.Errorf("-workers %q: %q is neither a goroutine count nor a URL", s, part)
		}
		urls = append(urls, part)
	}
	if len(urls) == 0 {
		return 0, nil, fmt.Errorf("-workers %q: no worker URLs", s)
	}
	return 0, urls, nil
}

// sweepErrors scales all Table 2 error rates by powers of ten and
// reports the channel-setup cost.
func sweepErrors(dist int) error {
	t := report.NewTable(
		fmt.Sprintf("Error-rate scaling ablation (endpoints-only, %d hops)", dist),
		"Scale", "pmv", "ArrivalError", "EndpointRounds", "TeleportedPairs", "Feasible")
	for _, scale := range []float64{0.01, 0.1, 1, 10, 100, 1000} {
		p := qnet.IonTrap2006().Scale(scale)
		cfg := channel.DefaultDistribution(p)
		c := cfg.Evaluate(channel.EndpointsOnly, dist)
		t.AddRow(scale, p.Errors.MoveCell, c.ArrivalError, c.EndpointRounds, c.TeleportedPairs, c.Feasible)
	}
	return t.WriteText(os.Stdout)
}

// sweepHops varies the teleporter spacing around the latency crossover
// and reports both latency and fidelity consequences.
func sweepHops(dist int) error {
	p := qnet.IonTrap2006()
	t := report.NewTable(
		fmt.Sprintf("Hop-length ablation (%d hops of each length)", dist),
		"HopCells", "BallisticPerHop", "TeleportPerHop", "LinkPairError", "TeleportedPairs")
	for _, cells := range []int{100, 200, 400, 600, 800, 1200, 2400} {
		cfg := channel.DefaultDistribution(p)
		cfg.HopCells = cells
		c := cfg.Evaluate(channel.EndpointsOnly, dist)
		t.AddRow(cells,
			p.BallisticTime(cells).String(),
			p.TeleportTime(cells).String(),
			cfg.RawLinkPair().Error(),
			c.TeleportedPairs)
	}
	return t.WriteText(os.Stdout)
}

// depthSweepSpace is the cmd/sweep default grid: the queue-purifier
// depth ablation the benchmark in qnet/simulate measures.  A non-empty
// fault spec becomes the space's fault dimension; dead links also
// switch routing to the fault-adaptive policy, since the static
// default would fail every blocked path.  The second return reports
// that switch, so the front-ends can label it instead of silently
// changing the measured configuration; the swap is also visible in the
// cache keys, which hash the routing policy.
func depthSweepSpace(gridN, seeds int, failure float64, fs fault.Spec) (simulate.Space, bool, error) {
	grid, err := qnet.NewGrid(gridN, gridN)
	if err != nil {
		return simulate.Space{}, false, err
	}
	space := simulate.Space{
		Grids:     []qnet.Grid{grid},
		Layouts:   []simulate.Layout{simulate.HomeBase},
		Resources: []simulate.Resources{{Teleporters: 16, Generators: 16, Purifiers: 8}},
		Programs:  []qnet.Program{qnet.QFT(grid.Tiles())},
		Depths:    []int{1, 2, 3, 4, 5},
		Seeds:     simulate.SeedRange(seeds),
		Options:   []simulate.Option{simulate.WithFailureRate(failure)},
	}
	auto := false
	if !fs.Empty() {
		space.Faults = []fault.Spec{fs}
		if fs.DeadLinks > 0 {
			space.Routings = []route.Policy{route.FaultAdaptive()}
			auto = true
		}
	}
	return space, auto, nil
}

// sweepDepth varies the queue-purifier depth in the full simulator,
// running all depths (times all seeds) concurrently and folding the
// seed dimension into mean ± 95% CI columns.
func sweepDepth(ctx context.Context, gridN, workers, seeds int, failure float64, cacheDir string, fs fault.Spec) error {
	space, autoRouting, err := depthSweepSpace(gridN, seeds, failure, fs)
	if err != nil {
		return err
	}
	if autoRouting {
		fmt.Fprintln(os.Stderr, "sweep: -fault-dead switches routing to fault-adaptive (the static default would fail every blocked path)")
	}
	opts := []simulate.SweepOption{simulate.WithWorkers(workers)}
	if cacheDir != "" {
		cache, err := simulate.NewDiskCache(cacheDir, 0)
		if err != nil {
			return err
		}
		opts = append(opts, simulate.WithCache(cache))
	}
	points, err := simulate.Sweep(ctx, space, opts...)
	if err != nil {
		return err
	}
	if err := writeDepthTable(points, gridN, len(space.Seeds), autoRouting); err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, "sweep:", simulate.Summarize(points))
	return nil
}

// writeDepthTable renders the depth-ablation table shared by the local
// and distributed depth sweeps, failing on the first errored point.
// Each row names its routing policy; autoRouting marks policies the
// sweep switched to itself (dead links force fault-adaptive) so a
// faulted table is never mistaken for a default-routed one.
func writeDepthTable(points []simulate.SweepPoint, gridN, seeds int, autoRouting bool) error {
	for _, pt := range points {
		if pt.Err != nil {
			return pt.Err
		}
	}
	t := report.NewTable(
		fmt.Sprintf("Queue-purifier depth ablation (QFT-%d, HomeBase, t=g=16 p=8, %d seeds)",
			gridN*gridN, seeds),
		"Depth", "Routing", "PairsPerOutput", "PairsDelivered", "MeanExec", "ExecCI95")
	for _, g := range stats.Group(points) {
		e := g.Ensemble
		routing := g.Point.RoutingName()
		if autoRouting {
			routing += " (auto)"
		}
		t.AddRow(g.Point.Depth, routing, 1<<uint(g.Point.Depth),
			uint64(e.PairsDelivered.Mean),
			e.MeanExec().String(),
			fmt.Sprintf("± %s", time.Duration(e.Exec.CI(0.95).Half()*float64(time.Second))))
	}
	return t.WriteText(os.Stdout)
}

// sweepDepthDistributed runs the same depth ablation as sweepDepth but
// as the coordinator of a sweepd fleet: the space ships to the workers
// as a wire spec, shards stream back over HTTP, and the merged points
// feed the identical table.  With -store-listen set, the coordinator
// also serves its cache (disk-backed under -cache-dir) as the fleet's
// shared result store; with -journal it checkpoints shard completions
// so an identical rerun resumes instead of restarting.
func sweepDepthDistributed(ctx context.Context, gridN int, workerURLs []string, seeds int, failure float64, cacheDir, storeListen, journalDir string, fs fault.Spec) error {
	grid, err := qnet.NewGrid(gridN, gridN)
	if err != nil {
		return err
	}
	spec := distrib.SpaceSpec{
		Grids:       []qnet.Grid{grid},
		Layouts:     distrib.LayoutNames([]simulate.Layout{simulate.HomeBase}),
		Resources:   []simulate.Resources{{Teleporters: 16, Generators: 16, Purifiers: 8}},
		Programs:    []qnet.Program{qnet.QFT(grid.Tiles())},
		Depths:      []int{1, 2, 3, 4, 5},
		Seeds:       simulate.SeedRange(seeds),
		FailureRate: failure,
	}
	autoRouting := false
	if !fs.Empty() {
		spec.Faults = []fault.Spec{fs}
		if fs.DeadLinks > 0 {
			spec.Routings = []string{"fault-adaptive"}
			autoRouting = true
			fmt.Fprintln(os.Stderr, "sweep: -fault-dead switches routing to fault-adaptive (the static default would fail every blocked path)")
		}
	}

	var store simulate.Store
	if cacheDir != "" {
		if store, err = simulate.NewDiskCache(cacheDir, 0); err != nil {
			return err
		}
	} else {
		store = simulate.NewCache(0)
	}
	var storeURL string
	if storeListen != "" {
		ln, err := net.Listen("tcp", storeListen)
		if err != nil {
			return fmt.Errorf("store listener: %w", err)
		}
		defer ln.Close()
		srv := &http.Server{Handler: distrib.NewStoreServer(store).Handler()}
		go srv.Serve(ln)
		defer srv.Close()
		storeURL = "http://" + ln.Addr().String()
		fmt.Fprintln(os.Stderr, "sweep: serving shared store on", storeURL)
	}

	copts := []distrib.CoordinatorOption{
		distrib.WithSharedStore(store, storeURL),
		distrib.WithHeartbeat(2 * time.Second),
		distrib.WithLogf(func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}),
	}
	if journalDir != "" {
		copts = append(copts, distrib.WithJournal(journalDir))
	}
	coord, err := distrib.NewCoordinator(distrib.NewHTTPTransport(), workerURLs, copts...)
	if err != nil {
		return err
	}
	points, rep, err := coord.Sweep(ctx, spec)
	if err != nil {
		// The partial report tells the operator what the fleet did get
		// done (and which workers died or drained) before the failure.
		fmt.Fprintln(os.Stderr, "sweep: partial report:", rep)
		return err
	}
	if err := writeDepthTable(points, gridN, len(spec.Seeds), autoRouting); err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, "sweep:", rep)
	fmt.Fprintln(os.Stderr, "sweep:", simulate.SummarizeStore(points, store))
	return nil
}

// sweepRoutes compares routing policies on one workload: every policy
// in the list runs QFT under both layouts as a seed ensemble, and each
// policy's execution times are Welch-tested against the first policy's
// (the baseline), with Cohen's d as the effect size ("*" marks
// p < 0.05).  The measurement and table are figures.Routing — the same
// comparison cmd/figures prints — so the two front-ends cannot drift.
func sweepRoutes(routes string, gridN, workers, seeds int, failure float64, cacheDir string) error {
	if routes == "all" {
		routes = ""
	}
	policies, err := route.ParseList(routes)
	if err != nil {
		return err
	}
	if len(policies) < 2 {
		return fmt.Errorf("routing comparison needs at least 2 policies, got %d", len(policies))
	}
	cfg := figures.DefaultRoutingConfig(gridN)
	cfg.Routings = policies
	cfg.Seeds = simulate.SeedRange(seeds)
	cfg.FailureRate = failure
	cfg.Workers = workers
	if cacheDir != "" {
		if cfg.Cache, err = simulate.NewDiskCache(cacheDir, 0); err != nil {
			return err
		}
	}
	data, err := figures.Routing(cfg)
	if err != nil {
		return err
	}
	if err := data.Table().WriteText(os.Stdout); err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, "sweep:", data.Sweep)
	return nil
}

// sweepMethodology compares the two EPR distribution methodologies of
// Figures 4 and 5 over a range of physical distances (the paper's §4.6
// fidelity/latency comparison plus the control-complexity metric).
func sweepMethodology() error {
	p := qnet.IonTrap2006()
	t := report.NewTable(
		"Distribution methodology comparison (ballistic vs chained teleportation)",
		"Cells", "BallisticLatency", "TeleportLatency",
		"BallisticPairErr", "ChainedPairErr", "BallisticCtrlSignals")
	for _, cells := range []int{600, 1800, 6000, 18000, 36000} {
		c, err := channel.CompareMethodologies(p, cells, 600)
		if err != nil {
			return err
		}
		d := channel.BallisticDistribution{Params: p, DistanceCells: cells}
		res, err := d.Evaluate()
		if err != nil {
			return err
		}
		t.AddRow(cells, c.BallisticLatency.String(), c.TeleportLatency.String(),
			c.BallisticPairError, c.ChainedPairError, res.ControlSignals)
	}
	return t.WriteText(os.Stdout)
}
