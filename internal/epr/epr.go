// Package epr models the distribution of EPR pairs across the
// teleporter-grid interconnect: chained teleportation over virtual-wire
// links, the five purification placement policies of Section 4.7, and the
// resource accounting behind the paper's Figures 9, 10, 11 and 12.
//
// Terminology (Sections 3 and 4):
//
//   - A virtual wire is the constant stream of EPR pairs a G node
//     generates between two adjacent T' (teleporter) nodes one hop
//     (~600 cells) apart.  A "link pair" is one pair of that stream.
//   - Channel setup distributes an end-to-end EPR pair by chaining
//     teleports across the wire links, then purifies at the endpoints
//     until the pair is above the fault-tolerance threshold.
//   - "Before teleport" purification pumps each link pair with fresh
//     pairs from its G node before it is used to teleport (virtual-wire
//     purification).  "After each teleport" purifies the traveling pair
//     itself after every hop, which requires extra copies spanning the
//     same distance and is therefore exponential in hop count.
package epr

import (
	"fmt"
	"math"

	"repro/internal/fidelity"
	"repro/internal/phys"
	"repro/internal/purify"
)

// Scheme selects where purification is performed during EPR pair
// distribution (the five curves of Figures 10-12).
type Scheme int

const (
	// EndpointsOnly purifies only at the channel endpoints, immediately
	// before pairs are used to teleport data.
	EndpointsOnly Scheme = iota
	// OnceBefore additionally pumps every virtual-wire link pair once
	// before it is used for chained teleportation.
	OnceBefore
	// TwiceBefore pumps every virtual-wire link pair twice.
	TwiceBefore
	// OnceAfter purifies the traveling pair once after every teleport.
	OnceAfter
	// TwiceAfter purifies the traveling pair twice after every teleport.
	TwiceAfter
)

// Schemes lists all five placement policies in the paper's Figure 10
// legend order (bottom of the figure first).
var Schemes = []Scheme{EndpointsOnly, OnceBefore, TwiceBefore, OnceAfter, TwiceAfter}

// String implements fmt.Stringer with the paper's legend labels.
func (s Scheme) String() string {
	switch s {
	case EndpointsOnly:
		return "only at end"
	case OnceBefore:
		return "once before teleport"
	case TwiceBefore:
		return "twice before teleport"
	case OnceAfter:
		return "once after each teleport"
	case TwiceAfter:
		return "twice after each teleport"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// PumpRounds returns the number of purification pump rounds the scheme
// applies per link pair (before-schemes) or per hop (after-schemes).
func (s Scheme) PumpRounds() int {
	switch s {
	case OnceBefore, OnceAfter:
		return 1
	case TwiceBefore, TwiceAfter:
		return 2
	default:
		return 0
	}
}

// After reports whether the scheme purifies the traveling pair after
// every teleport (the exponential-resource policies).
func (s Scheme) After() bool { return s == OnceAfter || s == TwiceAfter }

// Config holds the channel-setup model parameters.
type Config struct {
	// Params are the device constants (Tables 1 and 2).
	Params phys.Params
	// HopCells is the ballistic span of one teleporter hop; the paper
	// derives 600 cells from the latency crossover.
	HopCells int
	// Protocol is the purification protocol used everywhere (the paper
	// settles on DEJMPS after Figure 8).
	Protocol purify.Protocol
	// TargetError is the error the delivered pair must not exceed; the
	// paper uses the fault-tolerance threshold 7.5e-5.
	TargetError float64
	// MaxEndpointRounds caps the endpoint purification tree depth when
	// searching for feasibility (breakdown detection for Figure 12).
	MaxEndpointRounds int
}

// DefaultConfig returns the configuration the paper's evaluation uses:
// 600-cell hops, DEJMPS purification, the 7.5e-5 threshold.
func DefaultConfig(p phys.Params) Config {
	return Config{
		Params:            p,
		HopCells:          600,
		Protocol:          purify.DEJMPS{Params: p},
		TargetError:       fidelity.ThresholdError,
		MaxEndpointRounds: 40,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if err := c.Params.Validate(); err != nil {
		return err
	}
	if c.HopCells < 1 {
		return fmt.Errorf("epr: HopCells must be >= 1, got %d", c.HopCells)
	}
	if c.Protocol == nil {
		return fmt.Errorf("epr: Protocol must be set")
	}
	if c.TargetError <= 0 || c.TargetError >= 1 {
		return fmt.Errorf("epr: TargetError must be in (0,1), got %g", c.TargetError)
	}
	if c.MaxEndpointRounds < 1 {
		return fmt.Errorf("epr: MaxEndpointRounds must be >= 1, got %d", c.MaxEndpointRounds)
	}
	return nil
}

// RawLinkPair returns the state of a virtual-wire link pair as delivered
// by its G node: generated (Eq 4) and ballistically distributed over the
// hop (half the hop distance per side, the full hop of movement error on
// the pair).
func (c Config) RawLinkPair() fidelity.Bell {
	gen := fidelity.Werner(fidelity.GeneratePerfectInit(c.Params))
	return gen.AfterBallistic(c.Params, c.HopCells)
}

// Pump applies rounds of entanglement pumping to base: each round
// purifies the current pair with one fresh copy of fresh.  It returns the
// pumped state and the expected total number of fresh-quality pairs
// consumed per pumped pair (including the base pair), accounting for
// retries on purification failure.
func Pump(proto purify.Protocol, base, fresh fidelity.Bell, rounds int) (fidelity.Bell, float64) {
	state := base
	cost := 1.0
	for i := 0; i < rounds; i++ {
		next, ps := proto.Round(state, fresh)
		if ps <= 0 {
			return state, math.Inf(1)
		}
		cost = (cost + 1) / ps
		state = next
	}
	return state, cost
}

// WirePair returns the link-pair state used for chained teleportation
// under the given number of pump rounds, together with the expected raw
// link pairs consumed per delivered wire pair.
func (c Config) WirePair(pumpRounds int) (fidelity.Bell, float64) {
	raw := c.RawLinkPair()
	return Pump(c.Protocol, raw, raw, pumpRounds)
}

// Cost is the resource accounting for delivering one above-threshold EPR
// pair across a path, under a placement scheme (one point of
// Figures 10-12).
type Cost struct {
	Scheme Scheme
	// Hops is the path length in teleporter hops.
	Hops int
	// ArrivalError is the traveling pair's error on arrival at the
	// endpoints, before endpoint purification.
	ArrivalError float64
	// EndpointRounds is the endpoint purification tree depth required to
	// reach the target error.
	EndpointRounds int
	// FinalError is the delivered pair's error after endpoint
	// purification.
	FinalError float64
	// TeleportedPairs is the expected number of pair-teleportations
	// through the network per delivered pair — the Figure 11/12 metric.
	// Every pair moved through the network consumes teleporter bandwidth,
	// so this is the network-strain metric.
	TeleportedPairs float64
	// TotalPairs is the expected number of EPR pairs consumed anywhere
	// (generated at G nodes, pumped into wires, teleported, purified at
	// endpoints) per delivered pair — the Figure 10 metric.
	TotalPairs float64
	// Feasible is false when no endpoint tree depth within
	// MaxEndpointRounds reaches the target (network breakdown, the
	// abrupt line ends of Figure 12).
	Feasible bool
}

// Evaluate computes the delivery cost of one above-threshold EPR pair
// over hops teleporter hops under scheme s.
func (c Config) Evaluate(s Scheme, hops int) Cost {
	if hops < 0 {
		hops = 0
	}
	res := Cost{Scheme: s, Hops: hops}

	switch {
	case !s.After():
		// Wire purification (possibly zero rounds), then chained
		// teleportation of a single traveling pair.
		wire, wireCost := c.WirePair(s.PumpRounds())
		state := wire // the traveling pair starts as one wire-quality pair
		for i := 0; i < hops; i++ {
			state = fidelity.TeleportBell(c.Params, state, wire)
		}
		res.ArrivalError = state.Error()
		// Long-distance distribution randomizes the residual Pauli error
		// across directions, so the endpoint purifier sees Werner-like
		// input — this matches the paper's method of stitching Figure 8's
		// (Werner-start) purification curves onto Figure 9's distribution
		// error.
		rounds, final, eEnd, ok := purify.RoundsToReach(c.Protocol, state.Twirl(), c.TargetError, c.MaxEndpointRounds)
		res.EndpointRounds = rounds
		res.FinalError = final.Error()
		res.Feasible = ok
		if !ok {
			res.TeleportedPairs = math.Inf(1)
			res.TotalPairs = math.Inf(1)
			return res
		}
		// eEnd arriving pairs per delivered pair; each is teleported
		// through hops hops and consumes one wire pair per hop plus its
		// own generation.
		res.TeleportedPairs = eEnd * float64(hops)
		res.TotalPairs = eEnd * (1 + float64(hops)*wireCost)
		return res

	default:
		// Purify the traveling pair after every teleport, pumping with
		// fresh copies that span the same distance (hence the recursion
		// in cost).  Wires are unpurified.
		wire, _ := c.WirePair(0)
		k := s.PumpRounds()
		state := wire
		// teleported(i), total(i): expected pair-teleports / total pairs
		// consumed to produce one span-i pumped pair.
		teleported := 0.0
		total := 1.0
		for i := 0; i < hops; i++ {
			// Teleport the span-i pair one hop (one pair-hop, one wire
			// link pair consumed), then pump it k times with fresh
			// copies of the same just-teleported state.
			moved := fidelity.TeleportBell(c.Params, state, wire)
			hopTeleported := teleported + 1
			hopTotal := total + 1
			pumped, copies := Pump(c.Protocol, moved, moved, k)
			if math.IsInf(copies, 1) {
				res.Feasible = false
				res.TeleportedPairs = math.Inf(1)
				res.TotalPairs = math.Inf(1)
				return res
			}
			state = pumped
			teleported = copies * hopTeleported
			total = copies * hopTotal
		}
		res.ArrivalError = state.Error()
		// See the EndpointsOnly branch for why arrivals are twirled.
		rounds, final, eEnd, ok := purify.RoundsToReach(c.Protocol, state.Twirl(), c.TargetError, c.MaxEndpointRounds)
		res.EndpointRounds = rounds
		res.FinalError = final.Error()
		res.Feasible = ok
		if !ok {
			res.TeleportedPairs = math.Inf(1)
			res.TotalPairs = math.Inf(1)
			return res
		}
		res.TeleportedPairs = eEnd * teleported
		res.TotalPairs = eEnd * total
		return res
	}
}

// EvaluateAll evaluates every scheme at the given distance.
func (c Config) EvaluateAll(hops int) []Cost {
	out := make([]Cost, 0, len(Schemes))
	for _, s := range Schemes {
		out = append(out, c.Evaluate(s, hops))
	}
	return out
}
