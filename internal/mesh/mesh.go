// Package mesh models the communication-grid topology of the paper's
// Section 5 (Figure 13): a 2-D mesh of tiles, each holding a logical
// qubit (LQ) site with its associated teleporter (T'), corrector (C) and
// purifier (P) nodes, with generator (G) nodes on the links between
// adjacent tiles.
//
// Path construction lives behind the routing layer (package
// internal/route): a route.Policy turns a src/dst pair into a hop
// sequence, and Grid.Follow walks that sequence into the tiles it
// visits.  Grid.Route remains as the dimension-ordered (X then Y)
// reference path — the paper's hardwired routing — which the default
// policy delegates to.
package mesh

import "fmt"

// Coord is a tile coordinate on the mesh.
type Coord struct {
	X, Y int
}

// String renders the coordinate as (x,y).
func (c Coord) String() string { return fmt.Sprintf("(%d,%d)", c.X, c.Y) }

// Manhattan returns the Manhattan distance between two tiles — the hop
// count of a dimension-ordered route.
func Manhattan(a, b Coord) int {
	return abs(a.X-b.X) + abs(a.Y-b.Y)
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Direction is an axis-aligned unit movement on the mesh.
type Direction int

// The four mesh directions.  X-direction traffic (East/West) and
// Y-direction traffic (North/South) use distinct teleporter sets in a T'
// node (Figure 6).
const (
	East Direction = iota
	West
	North
	South
)

// String names the direction.
func (d Direction) String() string {
	switch d {
	case East:
		return "East"
	case West:
		return "West"
	case North:
		return "North"
	case South:
		return "South"
	default:
		return fmt.Sprintf("Direction(%d)", int(d))
	}
}

// Axis returns 0 for X-direction movement (East/West) and 1 for
// Y-direction movement (North/South).
func (d Direction) Axis() int {
	if d == East || d == West {
		return 0
	}
	return 1
}

// Opposite returns the reverse direction: traffic traveling in
// direction d arrives at the next tile from d.Opposite().
func (d Direction) Opposite() Direction {
	switch d {
	case East:
		return West
	case West:
		return East
	case North:
		return South
	default:
		return North
	}
}

// Step returns the coordinate one tile away in the direction.
func (c Coord) Step(d Direction) Coord {
	switch d {
	case East:
		return Coord{c.X + 1, c.Y}
	case West:
		return Coord{c.X - 1, c.Y}
	case North:
		return Coord{c.X, c.Y - 1}
	default:
		return Coord{c.X, c.Y + 1}
	}
}

// Grid is a rectangular mesh of tiles.
type Grid struct {
	Width, Height int
}

// NewGrid validates and builds a mesh of the given dimensions.
func NewGrid(width, height int) (Grid, error) {
	if width < 1 || height < 1 {
		return Grid{}, fmt.Errorf("mesh: grid dimensions must be >= 1, got %dx%d", width, height)
	}
	return Grid{Width: width, Height: height}, nil
}

// Tiles returns the number of tiles.
func (g Grid) Tiles() int { return g.Width * g.Height }

// Contains reports whether c lies on the grid.
func (g Grid) Contains(c Coord) bool {
	return c.X >= 0 && c.X < g.Width && c.Y >= 0 && c.Y < g.Height
}

// Index linearizes a coordinate in row-major order.
func (g Grid) Index(c Coord) int {
	if !g.Contains(c) {
		panic(fmt.Sprintf("mesh: coordinate %v outside %dx%d grid", c, g.Width, g.Height))
	}
	return c.Y*g.Width + c.X
}

// CoordOf is the inverse of Index.
func (g Grid) CoordOf(i int) Coord {
	if i < 0 || i >= g.Tiles() {
		panic(fmt.Sprintf("mesh: index %d outside %dx%d grid", i, g.Width, g.Height))
	}
	return Coord{X: i % g.Width, Y: i / g.Width}
}

// Diameter returns the longest dimension-ordered route on the grid, in
// hops (the corner-to-corner Manhattan distance).
func (g Grid) Diameter() int { return g.Width - 1 + g.Height - 1 }

// Route returns the dimension-ordered (X then Y) path from src to dst as
// a sequence of directions.  An empty path means src == dst.
func (g Grid) Route(src, dst Coord) ([]Direction, error) {
	if !g.Contains(src) {
		return nil, fmt.Errorf("mesh: route source %v outside grid", src)
	}
	if !g.Contains(dst) {
		return nil, fmt.Errorf("mesh: route destination %v outside grid", dst)
	}
	path := make([]Direction, 0, Manhattan(src, dst))
	for x := src.X; x < dst.X; x++ {
		path = append(path, East)
	}
	for x := src.X; x > dst.X; x-- {
		path = append(path, West)
	}
	for y := src.Y; y < dst.Y; y++ {
		path = append(path, South)
	}
	for y := src.Y; y > dst.Y; y-- {
		path = append(path, North)
	}
	return path, nil
}

// RouteTiles returns the dimension-ordered path as the sequence of tiles
// visited, starting at src and ending at dst (len = Manhattan+1).
func (g Grid) RouteTiles(src, dst Coord) ([]Coord, error) {
	dirs, err := g.Route(src, dst)
	if err != nil {
		return nil, err
	}
	return g.Follow(src, dirs)
}

// Follow walks a hop sequence from src and returns the tiles visited,
// starting at src (len = len(dirs)+1).  It validates that every tile on
// the way lies on the grid, so a routing policy that walks off the mesh
// is caught here rather than corrupting the simulation.
func (g Grid) Follow(src Coord, dirs []Direction) ([]Coord, error) {
	if !g.Contains(src) {
		return nil, fmt.Errorf("mesh: path source %v outside %dx%d grid", src, g.Width, g.Height)
	}
	tiles := make([]Coord, 0, len(dirs)+1)
	tiles = append(tiles, src)
	cur := src
	for i, d := range dirs {
		cur = cur.Step(d)
		if !g.Contains(cur) {
			return nil, fmt.Errorf("mesh: path leaves the %dx%d grid at hop %d (%v)", g.Width, g.Height, i, cur)
		}
		tiles = append(tiles, cur)
	}
	return tiles, nil
}

// Link identifies an undirected mesh link by its lexicographically
// smaller endpoint and orientation.  Each link hosts one G node
// continuously generating EPR pairs between its two T' nodes.
type Link struct {
	From Coord
	Dir  Direction // East or South only (canonical orientation)
}

// LinkBetween returns the canonical link connecting two adjacent tiles.
func LinkBetween(a, b Coord) (Link, error) {
	if Manhattan(a, b) != 1 {
		return Link{}, fmt.Errorf("mesh: tiles %v and %v are not adjacent", a, b)
	}
	switch {
	case b.X == a.X+1:
		return Link{From: a, Dir: East}, nil
	case a.X == b.X+1:
		return Link{From: b, Dir: East}, nil
	case b.Y == a.Y+1:
		return Link{From: a, Dir: South}, nil
	default:
		return Link{From: b, Dir: South}, nil
	}
}

// LinkFrom returns the canonical link crossed by a hop leaving c in
// direction d: East/South hops own their link, West/North hops use the
// neighbor's East/South link.  It does not validate that the link lies
// on the grid; pair it with LinkIndex (which does) or Contains.
func (g Grid) LinkFrom(c Coord, d Direction) Link {
	switch d {
	case East, South:
		return Link{From: c, Dir: d}
	case West:
		return Link{From: Coord{c.X - 1, c.Y}, Dir: East}
	default: // North
		return Link{From: Coord{c.X, c.Y - 1}, Dir: South}
	}
}

// NumLinks returns the number of links of the grid: (W-1)·H East links
// plus W·(H-1) South links.
func (g Grid) NumLinks() int {
	return (g.Width-1)*g.Height + g.Width*(g.Height-1)
}

// LinkIndex returns the dense index of a link, in exactly the order
// Links enumerates them, so a []T of length NumLinks indexed by
// LinkIndex replaces a map[Link]T on hot lookup paths.  It panics on a
// link that does not lie on the grid (an off-grid endpoint, or a
// non-canonical direction), which — like Index — indicates a broken
// caller rather than a recoverable condition.
func (g Grid) LinkIndex(l Link) int {
	c := l.From
	valid := g.Contains(c)
	if valid {
		switch l.Dir {
		case East:
			valid = c.X+1 < g.Width
		case South:
			valid = c.Y+1 < g.Height
		default:
			valid = false
		}
	}
	if !valid {
		panic(fmt.Sprintf("mesh: link %v/%v not on %dx%d grid", l.From, l.Dir, g.Width, g.Height))
	}
	// Links() walks rows in order; every row before c.Y is complete and
	// contributes (W-1) East + W South links (the South links exist
	// because that row is above c.Y <= H-1, hence not the last row).
	idx := c.Y * (2*g.Width - 1)
	// Tiles before c.X in row c.Y: an East link each (they all precede
	// the last column, since c.X is on the grid), plus a South link each
	// when this is not the last row.
	idx += c.X
	if c.Y+1 < g.Height {
		idx += c.X
	}
	if l.Dir == South && c.X+1 < g.Width {
		idx++ // this tile's East link precedes its South link
	}
	return idx
}

// Links enumerates every link of the grid in deterministic order.
func (g Grid) Links() []Link {
	links := make([]Link, 0, 2*g.Tiles())
	for y := 0; y < g.Height; y++ {
		for x := 0; x < g.Width; x++ {
			if x+1 < g.Width {
				links = append(links, Link{From: Coord{x, y}, Dir: East})
			}
			if y+1 < g.Height {
				links = append(links, Link{From: Coord{x, y}, Dir: South})
			}
		}
	}
	return links
}
