// Package workload generates the logical instruction streams of the
// paper's Section 5.2 benchmarks: the Quantum Fourier Transform (QFT,
// all-to-all communication), Modular Multiplication (MM, bipartite
// communication) and Modular Exponentiation (ME, alternating squaring and
// multiplication steps) — the three communication-intensive components of
// Shor's factorization algorithm.
package workload

import "fmt"

// Op is one two-logical-qubit operation.  A is the qubit that travels in
// the Mobile Qubit layout (the paper's mobile QFT walks the
// lower-numbered qubit along the line); B stays at its node.
type Op struct {
	A, B int
}

// String renders the op as "A-B".
func (o Op) String() string { return fmt.Sprintf("%d-%d", o.A, o.B) }

// Program is a named logical instruction stream over a set of logical
// qubits.
type Program struct {
	Name   string
	Qubits int
	Ops    []Op
}

// Validate checks that every op references distinct, in-range qubits.
func (p Program) Validate() error {
	if p.Qubits < 1 {
		return fmt.Errorf("workload: program %q has %d qubits", p.Name, p.Qubits)
	}
	for i, op := range p.Ops {
		if op.A == op.B {
			return fmt.Errorf("workload: program %q op %d (%v) uses one qubit twice", p.Name, i, op)
		}
		if op.A < 0 || op.A >= p.Qubits || op.B < 0 || op.B >= p.Qubits {
			return fmt.Errorf("workload: program %q op %d (%v) out of range [0,%d)", p.Name, i, op, p.Qubits)
		}
	}
	return nil
}

// QFT returns the Quantum Fourier Transform communication pattern on n
// logical qubits: every qubit interacts once with every other qubit, in
// numerical order.  With 1-based labels the stream begins 1-2, 1-3,
// (1-4, 2-3), (1-5, 2-4), (1-6, 2-5, 3-4) — pairs ordered by label sum,
// with pairs of equal sum independent and thus schedulable in parallel
// (the paper's parenthesized groups).  Labels here are 0-based.
func QFT(n int) Program {
	if n < 2 {
		return Program{Name: "QFT", Qubits: n}
	}
	ops := make([]Op, 0, n*(n-1)/2)
	// sum ranges over i+j for 0 <= i < j < n.
	for sum := 1; sum <= 2*n-3; sum++ {
		lo := 0
		if sum >= n {
			lo = sum - n + 1
		}
		for i := lo; i < sum-i; i++ {
			ops = append(ops, Op{A: i, B: sum - i})
		}
	}
	return Program{Name: "QFT", Qubits: n, Ops: ops}
}

// ModMult returns the Modular Multiplication pattern between two sets of
// n logical qubits (2n total): every qubit of set A (labels 0..n-1)
// interacts once with every qubit of set B (labels n..2n-1).  Ops are
// emitted in n rounds of n independent pairs (a round-robin), so rounds
// serialize per qubit while each round is fully parallel.
func ModMult(n int) Program {
	if n < 1 {
		return Program{Name: "MM", Qubits: 2 * n}
	}
	ops := make([]Op, 0, n*n)
	for shift := 0; shift < n; shift++ {
		for a := 0; a < n; a++ {
			ops = append(ops, Op{A: a, B: n + (a+shift)%n})
		}
	}
	return Program{Name: "MM", Qubits: 2 * n, Ops: ops}
}

// ModExp returns a Modular Exponentiation pattern over two sets of n
// qubits: steps iterations, each consisting of a squaring step
// (all-to-all within set A, the QFT pattern) followed by a multiplication
// step (bipartite between the sets, the MM pattern).
func ModExp(n, steps int) Program {
	p := Program{Name: "ME", Qubits: 2 * n}
	if n < 1 || steps < 1 {
		return p
	}
	sq := QFT(n)
	mm := ModMult(n)
	for s := 0; s < steps; s++ {
		p.Ops = append(p.Ops, sq.Ops...)
		p.Ops = append(p.Ops, mm.Ops...)
	}
	return p
}
