package purify

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/fidelity"
	"repro/internal/phys"
)

var base = phys.IonTrap2006()

func TestDEJMPSIdealFirstRoundFromWerner(t *testing.T) {
	// From a Werner state of F=0.99 the first DEJMPS round coincides with
	// the BBPSSW fidelity recurrence: F' ≈ 0.99326 with perfect gates.
	perfect := base.WithUniformError(0)
	out, ps := DEJMPS{perfect}.Round(fidelity.Werner(0.99), fidelity.Werner(0.99))
	if math.Abs(out.Fidelity()-0.99326) > 2e-4 {
		t.Errorf("first-round fidelity = %g, want ~0.99326", out.Fidelity())
	}
	if ps < 0.97 || ps > 1 {
		t.Errorf("success probability = %g, want ~0.987", ps)
	}
}

func TestDEJMPSQuadraticConvergence(t *testing.T) {
	// DEJMPS on non-twirled states converges near-quadratically: from
	// F=0.99 the error should fall below 1e-4 within 3 rounds (perfect
	// gates).
	perfect := base.WithUniformError(0)
	rs := Rounds(DEJMPS{perfect}, fidelity.Werner(0.99), 3)
	if len(rs) != 3 {
		t.Fatalf("expected 3 rounds, got %d", len(rs))
	}
	if e := rs[2].State.Error(); e > 1e-4 {
		t.Errorf("error after 3 DEJMPS rounds = %g, want < 1e-4", e)
	}
}

func TestBBPSSWSlowConvergence(t *testing.T) {
	// BBPSSW twirls each round; from F=0.99 the error shrinks by roughly
	// a constant factor per round, needing ~20+ rounds to reach 1e-5.
	perfect := base.WithUniformError(0)
	rounds, _, _, ok := RoundsToReach(BBPSSW{perfect}, fidelity.Werner(0.99), 1e-5, 60)
	if !ok {
		t.Fatal("BBPSSW should eventually reach 1e-5 with perfect gates")
	}
	if rounds < 10 {
		t.Errorf("BBPSSW reached 1e-5 in %d rounds, expected slow (>=10) convergence", rounds)
	}
}

func TestDEJMPSBeatsBBPSSWConvergence(t *testing.T) {
	// Paper §4.5 / Figure 8: "The BBPSSW protocol takes 5-10 times more
	// rounds to converge to its maximum value as the DEJMPS protocol."
	for _, f0 := range []float64{0.99, 0.999, 0.9999} {
		init := fidelity.Werner(f0)
		d := ConvergenceRounds(DEJMPS{base}, init, 1e-7, 100)
		b := ConvergenceRounds(BBPSSW{base}, init, 1e-7, 100)
		if d <= 0 || b <= 0 {
			t.Fatalf("f0=%g: convergence failed (d=%d b=%d)", f0, d, b)
		}
		if ratio := float64(b) / float64(d); ratio < 3 {
			t.Errorf("f0=%g: BBPSSW/DEJMPS round ratio = %.1f (b=%d d=%d), want >= 3", f0, ratio, b, d)
		}
	}
}

func TestDEJMPSHigherMaxFidelity(t *testing.T) {
	// Paper: "DEJMPS has higher maximum fidelity ... than BBPSSW."
	// Use an error rate large enough for the floors to separate clearly.
	noisy := base.WithUniformError(1e-4)
	init := fidelity.Werner(0.99)
	d := MaxFidelity(DEJMPS{noisy}, init)
	b := MaxFidelity(BBPSSW{noisy}, init)
	if d <= b {
		t.Errorf("DEJMPS max fidelity %g should exceed BBPSSW %g", d, b)
	}
}

func TestNoiseFloorScalesWithGateError(t *testing.T) {
	init := fidelity.Werner(0.99)
	f5 := MaxFidelity(DEJMPS{base.WithUniformError(1e-5)}, init)
	f4 := MaxFidelity(DEJMPS{base.WithUniformError(1e-4)}, init)
	if f4 >= f5 {
		t.Errorf("higher gate error must lower max fidelity: %g >= %g", f4, f5)
	}
	// Floor error should be the same order as the gate error.
	if e := 1 - f5; e < 1e-6 || e > 1e-4 {
		t.Errorf("noise floor at p=1e-5 is %g, want O(1e-5)", e)
	}
}

func TestBreakdownNearThreshold(t *testing.T) {
	// Paper Figure 12: the distribution network breaks down near uniform
	// error 1e-5 because purification can no longer reach the 7.5e-5
	// threshold.  The achievable fidelity must be above threshold at
	// 1e-6 and below it by 1e-4.
	init := fidelity.Werner(0.99)
	if f := MaxFidelity(DEJMPS{base.WithUniformError(1e-6)}, init); f < fidelity.Threshold {
		t.Errorf("at p=1e-6 max fidelity %g should exceed threshold %g", f, fidelity.Threshold)
	}
	if f := MaxFidelity(DEJMPS{base.WithUniformError(1e-4)}, init); f >= fidelity.Threshold {
		t.Errorf("at p=1e-4 max fidelity %g should be below threshold %g", f, fidelity.Threshold)
	}
}

func TestRoundsToReachAlreadyThere(t *testing.T) {
	r, final, pairs, ok := RoundsToReach(DEJMPS{base}, fidelity.Werner(1-1e-9), 1e-5, 10)
	if !ok || r != 0 || pairs != 1 {
		t.Errorf("already-pure input: rounds=%d pairs=%g ok=%v", r, pairs, ok)
	}
	if final.Fidelity() != 1-1e-9 {
		t.Errorf("state should be untouched, got %g", final.Fidelity())
	}
}

func TestRoundsToReachUnreachable(t *testing.T) {
	// With a huge error rate the protocol floor is far above 1e-9.
	noisy := base.WithUniformError(1e-3)
	_, _, _, ok := RoundsToReach(DEJMPS{noisy}, fidelity.Werner(0.99), 1e-9, 50)
	if ok {
		t.Error("target below the noise floor should be unreachable")
	}
}

func TestExpectedPairsGrowExponentially(t *testing.T) {
	rs := Rounds(DEJMPS{base}, fidelity.Werner(0.99), 5)
	for i, r := range rs {
		if min := float64(TreePairs(i + 1)); r.ExpectedPairs < min {
			t.Errorf("round %d: expected pairs %g < noiseless tree %g", r.Round, r.ExpectedPairs, min)
		}
	}
	// And not absurdly more for high-fidelity inputs (success prob near 1).
	if rs[2].ExpectedPairs > 10 {
		t.Errorf("3 rounds from F=0.99 should cost ~8 pairs, got %g", rs[2].ExpectedPairs)
	}
}

func TestFig8Series(t *testing.T) {
	pts := Fig8Series(base, []float64{0.99, 0.999, 0.9999}, 25)
	// 2 protocols × 3 fidelities × (25 rounds + round 0)
	if want := 2 * 3 * 26; len(pts) != want {
		t.Fatalf("series has %d points, want %d", len(pts), want)
	}
	// Error must be non-increasing for every curve.
	byCurve := map[[2]string][]Fig8Point{}
	for _, pt := range pts {
		key := [2]string{pt.Protocol, fmtF(pt.InitialFidelity)}
		byCurve[key] = append(byCurve[key], pt)
	}
	for key, curve := range byCurve {
		for i := 1; i < len(curve); i++ {
			if curve[i].Error > curve[i-1].Error*(1+1e-9) {
				t.Errorf("%v: error increased at round %d: %g -> %g",
					key, curve[i].Round, curve[i-1].Error, curve[i].Error)
			}
		}
		// Every curve must end well below its starting error.
		last := curve[len(curve)-1]
		if last.Error > curve[0].Error/10 {
			t.Errorf("%v: final error %g did not improve 10x over initial %g", key, last.Error, curve[0].Error)
		}
	}
}

func fmtF(f float64) string {
	switch f {
	case 0.99:
		return "0.99"
	case 0.999:
		return "0.999"
	default:
		return "0.9999"
	}
}

func TestTreePairs(t *testing.T) {
	cases := map[int]int{0: 1, 1: 2, 3: 8, 10: 1024}
	for depth, want := range cases {
		if got := TreePairs(depth); got != want {
			t.Errorf("TreePairs(%d) = %d, want %d", depth, got, want)
		}
	}
	if got := TreePairs(-1); got != 0 {
		t.Errorf("TreePairs(-1) = %d, want 0", got)
	}
}

// Property: both protocols keep states valid and never report success
// probability outside [0, 1].
func TestProtocolValidityProperty(t *testing.T) {
	protos := []Protocol{DEJMPS{base}, BBPSSW{base}}
	f := func(a1, b1, c1, d1, a2, b2, c2, d2 uint16) bool {
		s1, err1 := (fidelity.Bell{A: float64(a1) + 1, B: float64(b1), C: float64(c1), D: float64(d1)}).Normalize()
		s2, err2 := (fidelity.Bell{A: float64(a2) + 1, B: float64(b2), C: float64(c2), D: float64(d2)}).Normalize()
		if err1 != nil || err2 != nil {
			return true
		}
		for _, p := range protos {
			out, ps := p.Round(s1, s2)
			if ps < 0 || ps > 1+1e-12 {
				return false
			}
			if ps > 0 && !out.Valid() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: purifying two copies of a decent Werner state never lowers
// fidelity below the input for fidelities in the purifiable regime
// (F > 0.6 comfortably above the 0.5 purification threshold).
func TestPurificationGainProperty(t *testing.T) {
	f := func(x uint8) bool {
		f0 := 0.6 + 0.399*float64(x)/255
		in := fidelity.Werner(f0)
		out, ps := DEJMPS{base}.Round(in, in)
		if ps <= 0 {
			return false
		}
		return out.Fidelity() >= in.Fidelity()-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
