// Two-ensemble comparison: Welch's unequal-variance t-test and Cohen's
// d effect size, for questions like "does the zigzag routing policy
// actually run this workload faster than dimension order, or is the
// difference seed noise?".  The figures routing table uses it to flag
// significant policy differences against the XY baseline.

package stats

import (
	"fmt"
	"math"
)

// DefaultAlpha is the significance level Comparison.Significant is
// evaluated at.
const DefaultAlpha = 0.05

// Comparison is the outcome of comparing one metric between two
// ensembles A (the baseline) and B (the candidate).
type Comparison struct {
	// DeltaMean is B's mean minus A's mean (negative = B is smaller).
	DeltaMean float64
	// T is Welch's t statistic.
	T float64
	// DF is the Welch–Satterthwaite effective degrees of freedom.
	DF float64
	// P is the two-sided p-value of the Welch t-test: the probability
	// of a |t| at least this large under the null hypothesis of equal
	// means.  With zero variance on both sides and at least two
	// samples per side, the ensembles are genuinely deterministic and
	// the comparison is exact: P is 1 for equal means and 0 for
	// distinct ones.  With fewer than two samples on either side no
	// spread can be estimated, so P is 1 and nothing is flagged — a
	// single draw per side never supports a significance claim.
	P float64
	// CohenD is the standardized effect size: the mean difference over
	// the pooled sample standard deviation.  Conventionally |d| ≈ 0.2
	// is small, 0.5 medium, 0.8 large.  Infinite when the pooled
	// spread is zero but the means differ.
	CohenD float64
	// Significant reports P < DefaultAlpha.
	Significant bool
}

// String renders the comparison compactly ("Δ=-0.031, d=-1.24, p=0.003*"
// — the star marks significance).
func (c Comparison) String() string {
	star := ""
	if c.Significant {
		star = "*"
	}
	return fmt.Sprintf("Δ=%.4g, d=%.3g, p=%.3g%s", c.DeltaMean, c.CohenD, c.P, star)
}

// Compare runs Welch's two-sided unequal-variance t-test of b against
// the baseline a and computes Cohen's d.  It needs at least two
// samples on each side to flag anything: with fewer, P degenerates to
// 1 as documented on Comparison.P, and the effect size stays 0 when
// no spread can be pooled.
func Compare(a, b Summary) Comparison {
	c := Comparison{DeltaMean: b.Mean - a.Mean}
	va, vb := a.Std*a.Std, b.Std*b.Std
	pooled := pooledStd(a, b)
	enough := a.N >= 2 && b.N >= 2
	switch {
	case pooled > 0:
		c.CohenD = c.DeltaMean / pooled
	case c.DeltaMean != 0 && enough:
		c.CohenD = math.Inf(sign(c.DeltaMean))
	}
	if !enough {
		// A single sample on either side has no spread estimate
		// (Summary.Std is 0 for N < 2 by construction, which must not
		// masquerade as determinism): never claim significance.
		c.P = 1
		return c
	}
	if va == 0 && vb == 0 {
		// Two or more identical samples per side: the ensembles are
		// genuinely deterministic and the difference exact.
		if c.DeltaMean == 0 {
			c.P = 1
		} else {
			c.P = 0
			c.T = math.Inf(sign(c.DeltaMean))
			c.Significant = true
		}
		return c
	}
	sea := va / float64(a.N)
	seb := vb / float64(b.N)
	se := math.Sqrt(sea + seb)
	c.T = c.DeltaMean / se
	// Welch–Satterthwaite degrees of freedom.  A zero-variance side
	// contributes nothing to the denominator; guard the N=1 division by
	// treating its df term as zero only when its variance is zero too
	// (a nonzero-variance side always has N >= 2, since Std is 0 for
	// N < 2 by construction).
	var denom float64
	if va > 0 {
		denom += sea * sea / float64(a.N-1)
	}
	if vb > 0 {
		denom += seb * seb / float64(b.N-1)
	}
	c.DF = (sea + seb) * (sea + seb) / denom
	c.P = welchP(c.T, c.DF)
	c.Significant = c.P < DefaultAlpha
	return c
}

// sign maps a nonzero float to ±1 for math.Inf.
func sign(x float64) int {
	if x < 0 {
		return -1
	}
	return 1
}

// pooledStd is the pooled sample standard deviation of two summaries
// (Cohen's d denominator); it falls back to the one-sided deviation
// when the other side has fewer than two samples.
func pooledStd(a, b Summary) float64 {
	switch {
	case a.N >= 2 && b.N >= 2:
		num := float64(a.N-1)*a.Std*a.Std + float64(b.N-1)*b.Std*b.Std
		return math.Sqrt(num / float64(a.N+b.N-2))
	case a.N >= 2:
		return a.Std
	case b.N >= 2:
		return b.Std
	default:
		return 0
	}
}

// welchP is the two-sided p-value of a t statistic with df degrees of
// freedom: P(|T| >= |t|) = I_{df/(df+t²)}(df/2, 1/2), the regularized
// incomplete beta function.
func welchP(t, df float64) float64 {
	if math.IsInf(t, 0) {
		return 0
	}
	if df <= 0 || math.IsNaN(t) {
		return 1
	}
	x := df / (df + t*t)
	return regIncBeta(df/2, 0.5, x)
}

// regIncBeta computes the regularized incomplete beta function
// I_x(a, b) by the standard continued-fraction expansion (Lentz's
// method), accurate to ~1e-12 over the t-distribution's domain — no
// tables, no external dependencies.
func regIncBeta(a, b, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	// Symmetry: the continued fraction converges fast only for
	// x < (a+1)/(a+b+2).
	if x > (a+1)/(a+b+2) {
		return 1 - regIncBeta(b, a, 1-x)
	}
	lbeta := lgamma(a) + lgamma(b) - lgamma(a+b)
	front := math.Exp(a*math.Log(x)+b*math.Log(1-x)-lbeta) / a
	// Lentz's algorithm for the continued fraction.
	const tiny = 1e-300
	const eps = 1e-14
	f, c, d := 1.0, 1.0, 0.0
	for i := 0; i <= 400; i++ {
		m := i / 2
		var numerator float64
		switch {
		case i == 0:
			numerator = 1
		case i%2 == 0:
			numerator = float64(m) * (b - float64(m)) * x / ((a + 2*float64(m) - 1) * (a + 2*float64(m)))
		default:
			numerator = -(a + float64(m)) * (a + b + float64(m)) * x / ((a + 2*float64(m)) * (a + 2*float64(m) + 1))
		}
		d = 1 + numerator*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		d = 1 / d
		c = 1 + numerator/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		cd := c * d
		f *= cd
		if math.Abs(1-cd) < eps {
			break
		}
	}
	return front * (f - 1)
}

// lgamma is math.Lgamma without the sign (the arguments here are
// always positive).
func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}
