package fault

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/mesh"
)

func grid(t *testing.T, w, h int) mesh.Grid {
	t.Helper()
	g, err := mesh.NewGrid(w, h)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestEmptySpecBuildsNilAndDrawsNothing(t *testing.T) {
	g := grid(t, 4, 4)
	rng := rand.New(rand.NewSource(9))
	m, err := Spec{}.Build(g, rng)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if m != nil {
		t.Fatalf("empty spec built a model: %+v", m)
	}
	// The empty spec must consume zero RNG draws, so the stream an
	// empty-fault run sees is byte-identical to a run with no fault
	// plumbing at all.
	if got, want := rng.Int63(), rand.New(rand.NewSource(9)).Int63(); got != want {
		t.Fatalf("empty Build consumed RNG draws: next=%d, fresh=%d", got, want)
	}
}

func TestBuildIsDeterministic(t *testing.T) {
	g := grid(t, 6, 6)
	sp := Spec{DeadLinks: 0.2, Drop: 0.03,
		Regions: []Region{{X: 1, Y: 1, W: 2, H: 2, Drop: 0.1}}}
	a, err := Preview(sp, g, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Preview(sp, g, 42)
	if err != nil {
		t.Fatal(err)
	}
	if a.DeadCount() != b.DeadCount() {
		t.Fatalf("dead counts differ: %d vs %d", a.DeadCount(), b.DeadCount())
	}
	for i := 0; i < g.Tiles(); i++ {
		c := g.CoordOf(i)
		if a.Rank(c) != b.Rank(c) {
			t.Fatalf("rank(%v) differs: %d vs %d", c, a.Rank(c), b.Rank(c))
		}
		for d := mesh.East; d <= mesh.South; d++ {
			if a.Dead(c, d) != b.Dead(c, d) {
				t.Fatalf("Dead(%v,%v) differs", c, d)
			}
			if a.DropRate(c, d) != b.DropRate(c, d) {
				t.Fatalf("DropRate(%v,%v) differs", c, d)
			}
		}
	}
}

func TestSeedChangesPattern(t *testing.T) {
	g := grid(t, 8, 8)
	sp := Spec{DeadLinks: 0.3}
	counts := make(map[int]bool)
	for seed := int64(0); seed < 5; seed++ {
		m, err := Preview(sp, g, seed)
		if err != nil {
			t.Fatal(err)
		}
		counts[m.DeadCount()] = true
	}
	if len(counts) < 2 {
		t.Fatalf("five seeds, one dead-link count: pattern ignores the seed")
	}
}

func TestHealthyRanksAreManhattan(t *testing.T) {
	g := grid(t, 5, 4)
	// Drop-only spec: no dead links, so BFS ranks from tile 0 must be
	// the Manhattan distance x+y on the full mesh.
	m, err := Preview(Spec{Drop: 0.01}, g, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < g.Tiles(); i++ {
		c := g.CoordOf(i)
		if got, want := m.Rank(c), c.X+c.Y; got != want {
			t.Fatalf("Rank(%v) = %d, want %d", c, got, want)
		}
	}
	if !m.Connected() {
		t.Fatal("healthy mesh reported disconnected")
	}
}

func TestAllLinksDeadDisconnects(t *testing.T) {
	g := grid(t, 3, 3)
	m, err := Preview(Spec{DeadLinks: 1}, g, 7)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := m.DeadCount(), g.NumLinks(); got != want {
		t.Fatalf("DeadCount = %d, want every link (%d)", got, want)
	}
	if m.Connected() {
		t.Fatal("fully severed mesh reported connected")
	}
	// Tile 0 is its own BFS root; everything else is unreachable.
	for i := 1; i < g.Tiles(); i++ {
		if r := m.Rank(g.CoordOf(i)); r != -1 {
			t.Fatalf("Rank(%v) = %d, want -1 (disconnected)", g.CoordOf(i), r)
		}
	}
}

func TestRegionDropsStackAndCap(t *testing.T) {
	g := grid(t, 4, 4)
	whole := Region{X: 0, Y: 0, W: 4, H: 4, Drop: 0.5}
	m, err := Preview(Spec{Drop: 0.5, Regions: []Region{whole, whole, whole, whole}}, g, 1)
	if err != nil {
		t.Fatal(err)
	}
	// 1-(1-.5)^5 = 0.96875, which must clip at the cap: a spec can
	// degrade a link, not permanently sever it through the drop path.
	c := mesh.Coord{X: 1, Y: 1}
	if got := m.DropRate(c, mesh.East); got != maxDrop {
		t.Fatalf("stacked DropRate = %v, want capped at %v", got, maxDrop)
	}
}

func TestOffGridHopsCountDead(t *testing.T) {
	g := grid(t, 3, 3)
	m, err := Preview(Spec{Drop: 0.01}, g, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Dead(mesh.Coord{X: 0, Y: 0}, mesh.West) {
		t.Fatal("off-grid hop reported live")
	}
	if !m.Dead(mesh.Coord{X: 2, Y: 2}, mesh.East) {
		t.Fatal("off-grid hop reported live")
	}
}

func TestValidateRejects(t *testing.T) {
	g := grid(t, 4, 4)
	cases := []struct {
		name string
		sp   Spec
		want string
	}{
		{"dead fraction above 1", Spec{DeadLinks: 1.5}, "DeadLinks"},
		{"dead fraction negative", Spec{DeadLinks: -0.1}, "DeadLinks"},
		{"drop of 1 severs", Spec{Drop: 1}, "Drop"},
		{"drop negative", Spec{Drop: -0.2}, "Drop"},
		{"region outside grid", Spec{Regions: []Region{{X: 3, Y: 3, W: 2, H: 2, Drop: 0.1}}}, "region"},
		{"region empty rect", Spec{Regions: []Region{{X: 1, Y: 1, W: 0, H: 2, Drop: 0.1}}}, "region"},
		{"region drop of 1", Spec{Regions: []Region{{X: 0, Y: 0, W: 2, H: 2, Drop: 1}}}, "region"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.sp.Validate(g)
			if err == nil {
				t.Fatalf("Validate accepted %+v", c.sp)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not name %q", err, c.want)
			}
		})
	}
	if err := (Spec{DeadLinks: 0.5, Drop: 0.5,
		Regions: []Region{{X: 0, Y: 0, W: 4, H: 4, Drop: 0.5}}}).Validate(g); err != nil {
		t.Fatalf("Validate rejected a legal spec: %v", err)
	}
}

func TestStringCanonical(t *testing.T) {
	cases := []struct {
		sp   Spec
		want string
	}{
		{Spec{}, "none"},
		{Spec{DeadLinks: 0.05}, "dead=0.05"},
		{Spec{Drop: 0.02}, "drop=0.02"},
		{Spec{DeadLinks: 0.05, Drop: 0.02, Regions: []Region{{X: 2, Y: 2, W: 3, H: 3, Drop: 0.2}}},
			"dead=0.05,drop=0.02,region=(2,2)+3x3@0.2"},
	}
	for _, c := range cases {
		if got := c.sp.String(); got != c.want {
			t.Fatalf("String() = %q, want %q", got, c.want)
		}
	}
}
