// The pluggable result-store seam of the sweep engine.
//
// PR 2 made every run content-addressable (cache.go); this file
// extracts the minimal interface the engine actually needs from a
// result store, so the in-memory/on-disk Cache is just one
// implementation.  qnet/distrib adds an HTTP-backed RemoteStore behind
// the same three methods, letting a fleet of worker processes share a
// single warm store.

package simulate

// Store is a content-addressed result store: the pluggable persistence
// seam behind WithCache/WithCacheDir/WithStore.  Cache is the shipped
// in-memory/on-disk implementation; qnet/distrib.RemoteStore speaks the
// same interface over HTTP so a worker fleet shares one warm store.
//
// Implementations must be safe for concurrent use, and both Get and
// Put must be best-effort: a store that cannot serve a key reports a
// miss (never an error), and a failed Put must not fail the
// simulation.  Two runs with equal Keys are guaranteed identical, so a
// Store may serve any previously Put value for a key, from any
// process or host.
type Store interface {
	// Get returns the stored Result for the key, if present.
	Get(Key) (Result, bool)
	// Put stores the Result under the key (best effort).
	Put(Key, Result)
	// Stats returns a snapshot of the store's traffic counters.
	Stats() CacheStats
}

// Cache implements Store.
var _ Store = (*Cache)(nil)

// WithStore attaches an arbitrary result Store to a Machine or a
// Sweep: the generalization of WithCache to stores that are not the
// shipped Cache, such as qnet/distrib.RemoteStore (a worker fleet's
// shared HTTP store).  Semantics match WithCache exactly: lookups
// before simulating, successful runs stored back, served points marked
// Cached.
func WithStore(st Store) CacheOption {
	return &cacheOption{store: st}
}
