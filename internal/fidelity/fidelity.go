// Package fidelity implements the quantum channel fidelity models of the
// paper's Section 4: ballistic transport (Eq 1), teleportation (Eq 3),
// EPR pair generation (Eq 4), and the associated latency models
// (Eqs 2, 5, 6).  It also provides a Bell-diagonal state representation
// used by the purification recurrences in package purify.
//
// Fidelity measures the overlap between an operational quantum state and
// a reference state: 1 means the state is definitely the reference state,
// 0 means no overlap.  Error is 1 - fidelity.
package fidelity

import (
	"fmt"
	"math"

	"repro/internal/phys"
)

// Threshold is the minimum data-qubit fidelity required by the threshold
// theorem for fault-tolerant quantum computation as cited by the paper
// (Svore et al. 2005): fidelity must stay above 1 - 7.5e-5.
const Threshold = 1 - ThresholdError

// ThresholdError is the maximum tolerable data-qubit error, 7.5e-5.
const ThresholdError = 7.5e-5

// Ballistic returns the fidelity of a qubit after ballistic movement over
// cells ion traps, starting from fidelity old (Eq 1):
//
//	F_new = F_old · (1 - pmv)^D
func Ballistic(p phys.Params, old float64, cells int) float64 {
	if cells <= 0 {
		return old
	}
	return old * math.Pow(1-p.Errors.MoveCell, float64(cells))
}

// BallisticError returns the error (1 - fidelity) accumulated by a
// perfect qubit moved over cells ion traps.
func BallisticError(p phys.Params, cells int) float64 {
	return 1 - Ballistic(p, 1, cells)
}

// Teleport returns the fidelity of a qubit after one teleportation
// (Eq 3):
//
//	F_new = 1/4 · (1 + 3(1-p1q)(1-p2q) · (4(1-pms)² - 1)/3
//	                 · (4·F_old - 1)(4·F_EPR - 1)/9)
//
// old is the fidelity of the data qubit before teleportation and epr is
// the fidelity of the EPR pair consumed by the teleportation.  With
// perfect operations and a perfect EPR pair, Teleport(old) == old.
func Teleport(p phys.Params, old, epr float64) float64 {
	gate := (1 - p.Errors.OneQubitGate) * (1 - p.Errors.TwoQubitGate)
	meas := (4*(1-p.Errors.Measure)*(1-p.Errors.Measure) - 1) / 3
	return 0.25 * (1 + 3*gate*meas*(4*old-1)*(4*epr-1)/9)
}

// TeleportChain applies Teleport hops times, each hop consuming a link
// EPR pair of fidelity epr.  This models chained teleportation along a
// path of teleporter nodes whose virtual-wire links all have the same
// quality (Section 3.1, Figure 5).
func TeleportChain(p phys.Params, old, epr float64, hops int) float64 {
	f := old
	for i := 0; i < hops; i++ {
		f = Teleport(p, f, epr)
	}
	return f
}

// Generate returns the fidelity of an EPR pair immediately after
// generation (Eq 4):
//
//	F_gen ∝ (1 - p1q)(1 - p2q) · F_zero
//
// fzero is the fidelity of the two freshly initialized zeroed qubits.
func Generate(p phys.Params, fzero float64) float64 {
	return (1 - p.Errors.OneQubitGate) * (1 - p.Errors.TwoQubitGate) * fzero
}

// GeneratePerfectInit returns Generate with perfectly initialized qubits.
func GeneratePerfectInit(p phys.Params) float64 {
	return Generate(p, 1)
}

// LinkPairFidelity is the fidelity of one half-pair-distributed EPR pair
// forming a virtual-wire link between two teleporter nodes hopCells
// apart: the pair is generated at the midpoint G node and each half is
// ballistically moved hopCells/2 cells (Figures 4/5).  Movement error
// applies to both halves, so the pair accumulates the full hopCells of
// ballistic error.
func LinkPairFidelity(p phys.Params, hopCells int) float64 {
	return Ballistic(p, GeneratePerfectInit(p), hopCells)
}

// CornerToCornerError returns the error accumulated by ballistically
// moving a qubit corner-to-corner on an n×n grid of storage cells
// (Manhattan distance 2(n-1) cells).  The paper's introduction notes that
// on a dense 1000×1000 grid this exceeds 1e-3.
func CornerToCornerError(p phys.Params, n int) float64 {
	if n < 1 {
		return 0
	}
	return BallisticError(p, 2*(n-1))
}

// Combine multiplies two independent fidelities.  For small errors this
// adds the error probabilities; it is the composition rule used
// throughout Section 4 for sequential independent error processes.
func Combine(f1, f2 float64) float64 { return f1 * f2 }

// Bell is a two-qubit state that is diagonal in the Bell basis,
// represented by the probabilities of the four Bell states.  A is the
// coefficient of the reference state Φ+ and therefore equals the pair's
// fidelity; B, C and D are the coefficients of Ψ−, Ψ+ and Φ−
// respectively (the ordering used by the DEJMPS analysis).
type Bell struct {
	A, B, C, D float64
}

// Fidelity returns the pair's fidelity, the Φ+ coefficient.
func (s Bell) Fidelity() float64 { return s.A }

// Error returns 1 - Fidelity.
func (s Bell) Error() float64 { return 1 - s.A }

// Sum returns the total probability mass (should be 1 for a normalized
// state).
func (s Bell) Sum() float64 { return s.A + s.B + s.C + s.D }

// Normalize rescales the coefficients to sum to 1.  It returns an error
// if the total mass is not positive.
func (s Bell) Normalize() (Bell, error) {
	t := s.Sum()
	if t <= 0 {
		return Bell{}, fmt.Errorf("fidelity: cannot normalize Bell state with mass %g", t)
	}
	return Bell{s.A / t, s.B / t, s.C / t, s.D / t}, nil
}

// Valid reports whether the state is a proper probability distribution
// over the four Bell states (all coefficients non-negative, summing to 1
// within tolerance).
func (s Bell) Valid() bool {
	if s.A < -1e-12 || s.B < -1e-12 || s.C < -1e-12 || s.D < -1e-12 {
		return false
	}
	return math.Abs(s.Sum()-1) < 1e-9
}

// Werner returns the Werner state of fidelity f: the remaining error mass
// is spread evenly over the three non-reference Bell states.  This is the
// state produced by twirling, and the form the BBPSSW protocol maintains.
func Werner(f float64) Bell {
	e := (1 - f) / 3
	return Bell{A: f, B: e, C: e, D: e}
}

// Twirl converts an arbitrary Bell-diagonal state into the Werner state
// of the same fidelity (the randomizing operation BBPSSW applies after
// every round).
func (s Bell) Twirl() Bell { return Werner(s.A) }

// Depolarize applies a two-qubit depolarizing channel of strength p to
// the pair: with probability 1-p the state is untouched, with probability
// p it is replaced by the maximally mixed Bell-diagonal state.  This is
// the standard model for a noisy two-qubit gate acting on one side of the
// pair and is how gate noise enters the purification recurrences.
func (s Bell) Depolarize(p float64) Bell {
	return Bell{
		A: (1-p)*s.A + p/4,
		B: (1-p)*s.B + p/4,
		C: (1-p)*s.C + p/4,
		D: (1-p)*s.D + p/4,
	}
}

// AfterBallistic applies per-cell movement noise to the pair over cells
// ion traps.  Movement decoherence is modeled as depolarizing with the
// accumulated error probability 1-(1-pmv)^cells, consistent with Eq 1 for
// the fidelity coefficient.
func (s Bell) AfterBallistic(p phys.Params, cells int) Bell {
	if cells <= 0 {
		return s
	}
	acc := 1 - math.Pow(1-p.Errors.MoveCell, float64(cells))
	// Rescale so the fidelity coefficient follows Eq 1 exactly:
	// F_new = F_old·(1-p_acc) + p_acc/4 would overshoot Eq 1 slightly;
	// the paper's Eq 1 has F_new = F_old·(1-pmv)^D, i.e. error mass
	// leaves A entirely.  We send the lost mass to the other Bell states
	// evenly, which keeps the state normalized and matches Eq 1 for A.
	lost := s.A * acc
	return Bell{
		A: s.A - lost,
		B: s.B + lost/3,
		C: s.C + lost/3,
		D: s.D + lost/3,
	}
}

// BellFromFidelity builds a Werner state of fidelity f; it is the default
// way to lift a scalar fidelity into the Bell-diagonal representation.
func BellFromFidelity(f float64) Bell { return Werner(f) }

// TeleportBell is the Bell-diagonal generalization of Eq 3: teleporting a
// pair half whose joint state with its remote partner is data, using a
// resource EPR pair in state epr.  The resource pair's Pauli error is
// composed with the data pair's error (a convolution over the Pauli
// group), and the local gates and measurements of the teleportation
// depolarize the result exactly as in Eq 3.  For Werner inputs this
// reduces to Eq 3 for the fidelity coefficient.
func TeleportBell(p phys.Params, data, epr Bell) Bell {
	// Klein four-group composition with (A,B,C,D) = (I, Y, X, Z).
	out := Bell{
		A: data.A*epr.A + data.B*epr.B + data.C*epr.C + data.D*epr.D,
		B: data.A*epr.B + data.B*epr.A + data.C*epr.D + data.D*epr.C,
		C: data.A*epr.C + data.C*epr.A + data.B*epr.D + data.D*epr.B,
		D: data.A*epr.D + data.D*epr.A + data.B*epr.C + data.C*epr.B,
	}
	gate := (1 - p.Errors.OneQubitGate) * (1 - p.Errors.TwoQubitGate)
	meas := (4*(1-p.Errors.Measure)*(1-p.Errors.Measure) - 1) / 3
	return out.Depolarize(1 - gate*meas)
}
