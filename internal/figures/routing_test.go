package figures

import (
	"strings"
	"testing"

	"repro/internal/route"

	"repro/qnet/simulate"
)

// TestRoutingTableSmall runs the routing comparison on a small grid
// and checks its structure: one row per layout × policy, the baseline
// marked, turn counts ordered as the policies' geometry dictates, and
// the deterministic-ensemble significance semantics.
func TestRoutingTableSmall(t *testing.T) {
	cfg := DefaultRoutingConfig(4)
	cfg.Seeds = simulate.SeedRange(2)
	data, err := Routing(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantRows := 2 * len(route.Policies())
	if len(data.Rows) != wantRows {
		t.Fatalf("%d rows, want %d", len(data.Rows), wantRows)
	}
	if data.Baseline != "xy" {
		t.Errorf("baseline %q, want xy", data.Baseline)
	}
	byPolicy := make(map[string]RoutingRow, len(data.Rows))
	for _, r := range data.Rows {
		if r.Layout != simulate.HomeBase {
			continue
		}
		byPolicy[r.Policy] = r
	}
	// ZigZag staircases wherever legal, so it must pay at least as many
	// turns as dimension order on the same traffic.
	if byPolicy["zigzag"].Ensemble.Turns.Mean < byPolicy["xy"].Ensemble.Turns.Mean {
		t.Errorf("zigzag mean turns %v below xy %v",
			byPolicy["zigzag"].Ensemble.Turns.Mean, byPolicy["xy"].Ensemble.Turns.Mean)
	}
	// All policies are minimal, so pair-hop totals agree across rows.
	for name, r := range byPolicy {
		if r.Ensemble.PairHops.Mean != byPolicy["xy"].Ensemble.PairHops.Mean {
			t.Errorf("%s mean pair-hops %v differ from xy %v (non-minimal policy?)",
				name, r.Ensemble.PairHops.Mean, byPolicy["xy"].Ensemble.PairHops.Mean)
		}
	}
	// Deterministic ensembles (failure rate 0): a policy that changes
	// the execution time at all is an exact, significant difference.
	for name, r := range byPolicy {
		if name == "xy" {
			continue
		}
		if r.Ensemble.Exec.Mean != byPolicy["xy"].Ensemble.Exec.Mean && !r.VsBaseline.Significant {
			t.Errorf("%s changed exec deterministically but was not flagged significant: %v",
				name, r.VsBaseline)
		}
	}
	var b strings.Builder
	if err := data.Table().WriteText(&b); err != nil {
		t.Fatal(err)
	}
	rendered := b.String()
	for _, want := range []string{"xy", "yx", "zigzag", "least-congested", "(baseline)", "HomeBase", "MobileQubit"} {
		if !strings.Contains(rendered, want) {
			t.Errorf("routing table missing %q:\n%s", want, rendered)
		}
	}
}

// TestRoutingRejectsTinyGrid mirrors the other figure constructors.
func TestRoutingRejectsTinyGrid(t *testing.T) {
	if _, err := Routing(RoutingConfig{GridSize: 1}); err == nil {
		t.Error("1x1 grid accepted")
	}
}
