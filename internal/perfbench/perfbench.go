// Package perfbench is the repository's performance measurement layer:
// reusable benchmark bodies covering the discrete-event engine's hot
// operations (scheduling, cancellation), a full 5x5 QFT simulation per
// layout and routing policy, and the concurrent sweep engine.
//
// The bodies are exported plain functions taking *testing.B so that two
// harnesses can share them: the conventional `go test -bench .` wrappers
// in this package's _test file, and cmd/bench, which runs them through
// testing.Benchmark and emits the machine-readable BENCH_qft.json the
// perf trajectory is tracked with.  Keeping one set of bodies guarantees
// the JSON numbers and the go-test numbers measure the same code.
package perfbench

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/qnet"
	"repro/qnet/distrib"
	"repro/qnet/route"
	"repro/qnet/simulate"
)

// benchGrid is the mesh edge of the full-run benchmarks: the 5x5 QFT
// workload of the parity goldens, big enough to exercise routing,
// contention and purification without making `go test -bench` minutes
// long.
const benchGrid = 5

// schedulePending is the steady-state backlog EngineSchedule maintains
// while churning events, approximating the pending-queue depth of a
// mid-size netsim run.
const schedulePending = 1024

// EngineSchedule measures the engine's core churn: one Schedule plus
// one Step per iteration against a steady backlog of schedulePending
// events, so both the heap push and the pop path are on the clock.
func EngineSchedule(b *testing.B) {
	e := sim.New()
	fn := func() {}
	for i := 0; i < schedulePending; i++ {
		e.Schedule(time.Duration(i+1)*time.Microsecond, fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(schedulePending*time.Microsecond, fn)
		e.Step()
	}
}

// EngineCancel returns a benchmark measuring one Schedule+Cancel pair
// with `pending` unrelated events outstanding.  Running it at several
// pending sizes is the regression pin for cancellation cost: since the
// tombstone design landed, ns/op must stay flat as pending grows (the
// pre-refactor engine scanned the heap linearly, so its cost grew with
// the backlog).
func EngineCancel(pending int) func(*testing.B) {
	return func(b *testing.B) {
		fn := func() {}
		// Scheduled after the whole backlog so the victim sits at the
		// bottom of the heap: the worst case for a scanning Cancel.
		horizon := time.Duration(pending+2) * time.Microsecond
		// Cancelled events leave lazy tombstones that only pops reclaim,
		// so an unbounded schedule+cancel loop would grow the heap with
		// b.N and bill the growth copies (and their memory) to Cancel.
		// Rebuilding the engine off the clock every epoch keeps the
		// measurement honest and the peak heap bounded; Reserve covers
		// the backlog plus one epoch of tombstones, so the timed section
		// never allocates.
		const epoch = 1 << 15
		var e *sim.Engine
		reset := func() {
			e = sim.New()
			e.Reserve(pending + epoch + 1)
			for i := 0; i < pending; i++ {
				e.Schedule(time.Duration(i+1)*time.Microsecond, fn)
			}
		}
		reset()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if i%epoch == epoch-1 {
				b.StopTimer()
				reset()
				b.StartTimer()
			}
			id := e.Schedule(horizon, fn)
			if !e.Cancel(id) {
				b.Fatal("cancel of pending event failed")
			}
		}
	}
}

// QFTRun returns a benchmark running the full event-driven simulator —
// a QFT over every tile of a benchGrid x benchGrid mesh with the
// paper's resource mix — under the given layout and routing policy.
// One iteration is one complete run; the reported events/sec metric is
// the end-to-end simulated-event throughput, the number the ROADMAP's
// "as fast as the hardware allows" north star is tracked by.
func QFTRun(layout simulate.Layout, policy route.Policy) func(*testing.B) {
	return func(b *testing.B) {
		grid, err := qnet.NewGrid(benchGrid, benchGrid)
		if err != nil {
			b.Fatal(err)
		}
		m, err := simulate.New(grid, layout,
			simulate.WithResources(16, 16, 8),
			simulate.WithRouting(policy))
		if err != nil {
			b.Fatal(err)
		}
		prog := qnet.QFT(grid.Tiles())
		ctx := context.Background()
		res, err := m.Run(ctx, prog) // warm run: learn the event count
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := m.Run(ctx, prog); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		reportEventRate(b, res.Events)
	}
}

// SweepWorkers returns a benchmark driving the concurrent sweep engine
// with the given worker count over a 16-point space (two layouts, two
// purifier depths, all four routing policies on a 4x4 QFT), one full
// sweep per iteration.  It measures the parallel orchestration path the
// figure generators and cmd/sweep use.
func SweepWorkers(workers int) func(*testing.B) {
	return func(b *testing.B) {
		grid, err := qnet.NewGrid(4, 4)
		if err != nil {
			b.Fatal(err)
		}
		space := simulate.Space{
			Grids:     []qnet.Grid{grid},
			Layouts:   []simulate.Layout{simulate.HomeBase, simulate.MobileQubit},
			Resources: []simulate.Resources{{Teleporters: 16, Generators: 16, Purifiers: 8}},
			Programs:  []qnet.Program{qnet.QFT(grid.Tiles())},
			Depths:    []int{2, 3},
			Routings:  route.Policies(),
		}
		ctx := context.Background()
		var events uint64
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			points, err := simulate.Sweep(ctx, space, simulate.WithWorkers(workers))
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				for _, pt := range points {
					if pt.Err != nil {
						b.Fatal(pt.Err)
					}
					events += pt.Result.Events
				}
			}
		}
		b.StopTimer()
		reportEventRate(b, events)
	}
}

// DistributedSweep returns a benchmark driving the full distributed
// sweep service in process: a coordinator sharding the same 16-point
// space as SweepWorkers across `workers` loopback workers that share
// one result store.  One iteration is one complete distributed sweep
// with a cold store, so the dispatch, streaming and merge overhead is
// all on the clock; the reported points/sec metric is the
// coordinator-side merge throughput cmd/bench tracks.
func DistributedSweep(workers int) func(*testing.B) {
	return func(b *testing.B) {
		grid, err := qnet.NewGrid(4, 4)
		if err != nil {
			b.Fatal(err)
		}
		spec := distrib.SpaceSpec{
			Grids:     []qnet.Grid{grid},
			Layouts:   distrib.LayoutNames([]simulate.Layout{simulate.HomeBase, simulate.MobileQubit}),
			Resources: []simulate.Resources{{Teleporters: 16, Generators: 16, Purifiers: 8}},
			Programs:  []qnet.Program{qnet.QFT(grid.Tiles())},
			Depths:    []int{2, 3},
			Routings:  distrib.RoutingNames(route.Policies()),
		}
		size, err := spec.Size()
		if err != nil {
			b.Fatal(err)
		}
		ctx := context.Background()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			store := simulate.NewCache(0)
			lb := distrib.NewLoopback()
			names := make([]string, workers)
			for w := 0; w < workers; w++ {
				names[w] = fmt.Sprintf("w%d", w)
				lb.Add(names[w], distrib.NewWorker(distrib.WithWorkerStore(store)))
			}
			coord, err := distrib.NewCoordinator(lb, names, distrib.WithSharedStore(store, ""))
			if err != nil {
				b.Fatal(err)
			}
			points, _, err := coord.Sweep(ctx, spec)
			if err != nil {
				b.Fatal(err)
			}
			if len(points) != size {
				b.Fatalf("merged %d of %d points", len(points), size)
			}
			if i == 0 {
				for _, pt := range points {
					if pt.Err != nil {
						b.Fatal(pt.Err)
					}
				}
			}
		}
		b.StopTimer()
		secs := b.Elapsed().Seconds()
		if secs > 0 {
			b.ReportMetric(float64(size)*float64(b.N)/secs, "points/sec")
		}
	}
}

// reportEventRate attaches the simulated-event throughput metric to the
// benchmark: eventsPerOp simulated events per iteration over the
// measured wall time.  cmd/bench reads it back from
// testing.BenchmarkResult.Extra to fill the JSON trajectory.
func reportEventRate(b *testing.B, eventsPerOp uint64) {
	secs := b.Elapsed().Seconds()
	if secs > 0 {
		b.ReportMetric(float64(eventsPerOp)*float64(b.N)/secs, "events/sec")
	}
}

// CancelPendingSizes are the backlog sizes the cancellation regression
// benchmark runs at; flat ns/op across them proves Cancel no longer
// scales with the pending-event count.
var CancelPendingSizes = []int{1 << 10, 1 << 14}

// FullRunConfigs enumerates the layout x policy matrix of the full-run
// benchmark, in deterministic order.
func FullRunConfigs() []FullRunConfig {
	var out []FullRunConfig
	for _, layout := range []simulate.Layout{simulate.HomeBase, simulate.MobileQubit} {
		for _, p := range route.Policies() {
			out = append(out, FullRunConfig{
				Name:   fmt.Sprintf("layout=%s/route=%s", layout, p.Name()),
				Layout: layout,
				Policy: p,
			})
		}
	}
	return out
}

// FullRunConfig is one cell of the full-run benchmark matrix.
type FullRunConfig struct {
	// Name is the benchmark sub-name, "layout=<layout>/route=<policy>".
	Name string
	// Layout is the placement policy under test.
	Layout simulate.Layout
	// Policy is the routing policy under test.
	Policy route.Policy
}
