package sim

import (
	"reflect"
	"testing"
	"time"
)

// recProbe records every Sample call for inspection.
type recProbe struct {
	times  []time.Duration
	events []uint64
}

func (p *recProbe) Sample(now time.Duration, processed uint64) {
	p.times = append(p.times, now)
	p.events = append(p.events, processed)
}

// TestSetProbeRejectsBadInterval pins the interval contract: a probe
// needs a positive period, and a nil probe removes the hook.
func TestSetProbeRejectsBadInterval(t *testing.T) {
	for _, iv := range []time.Duration{0, -time.Microsecond} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SetProbe(probe, %v) did not panic", iv)
				}
			}()
			New().SetProbe(&recProbe{}, iv)
		}()
	}
	// Removal never needs an interval.
	e := New()
	e.SetProbe(&recProbe{}, time.Microsecond)
	e.SetProbe(nil, 0)
	e.Schedule(5*time.Microsecond, func() {})
	for e.Step() {
	}
}

// TestProbeSamplesExactBoundaries pins the sampling instants: every
// multiple of the interval the clock crosses is sampled exactly once,
// in order, before the event that crosses it executes — including
// catch-up across quiet gaps spanning several boundaries.
func TestProbeSamplesExactBoundaries(t *testing.T) {
	e := New()
	p := &recProbe{}
	e.SetProbe(p, 10*time.Microsecond)
	for _, at := range []time.Duration{3, 12, 25, 47} {
		e.Schedule(at*time.Microsecond, func() {})
	}
	for e.Step() {
	}

	wantTimes := []time.Duration{10, 20, 30, 40}
	for i := range wantTimes {
		wantTimes[i] *= time.Microsecond
	}
	if !reflect.DeepEqual(p.times, wantTimes) {
		t.Errorf("sample times = %v, want %v", p.times, wantTimes)
	}
	// Each sample sees the events processed strictly before its
	// boundary: 1 event (t=3µs) before 10µs, 2 before 20µs, 3 before
	// both 30µs and 40µs (the catch-up pair of the 25→47µs gap).
	if want := []uint64{1, 2, 3, 3}; !reflect.DeepEqual(p.events, want) {
		t.Errorf("sample event counts = %v, want %v", p.events, want)
	}
	if e.Processed() != 4 {
		t.Errorf("processed %d events, want 4 (the probe must not add any)", e.Processed())
	}
	if e.Now() != 47*time.Microsecond {
		t.Errorf("final clock %v, want 47µs", e.Now())
	}
}

// TestProbeAttachMidRun pins the first-boundary rule: the first sample
// fires at the first interval multiple strictly after the clock at
// SetProbe time, so attaching at an off-boundary instant never samples
// the past.
func TestProbeAttachMidRun(t *testing.T) {
	e := New()
	e.Schedule(25*time.Microsecond, func() {})
	for e.Step() {
	}
	p := &recProbe{}
	e.SetProbe(p, 10*time.Microsecond)
	e.Schedule(10*time.Microsecond, func() {}) // at t=35µs
	for e.Step() {
	}
	if want := []time.Duration{30 * time.Microsecond}; !reflect.DeepEqual(p.times, want) {
		t.Errorf("sample times = %v, want %v", p.times, want)
	}
}

// TestRunUntilSamplesTrailingBoundaries pins the window-advance path:
// RunUntil fires every boundary between the last event and the horizon,
// so a partitioned run advancing in quiet windows samples the same
// instants a serial event-by-event run would.
func TestRunUntilSamplesTrailingBoundaries(t *testing.T) {
	e := New()
	p := &recProbe{}
	e.SetProbe(p, 10*time.Microsecond)
	e.Schedule(5*time.Microsecond, func() {})
	e.RunUntil(35 * time.Microsecond)

	wantTimes := []time.Duration{10 * time.Microsecond, 20 * time.Microsecond, 30 * time.Microsecond}
	if !reflect.DeepEqual(p.times, wantTimes) {
		t.Errorf("sample times = %v, want %v", p.times, wantTimes)
	}
	if e.Now() != 35*time.Microsecond {
		t.Errorf("clock after RunUntil = %v, want 35µs", e.Now())
	}
	// The horizon itself is a boundary on the next window: advancing to
	// 40µs fires it exactly once.
	e.RunUntil(40 * time.Microsecond)
	if got := p.times[len(p.times)-1]; got != 40*time.Microsecond {
		t.Errorf("boundary-at-horizon sample = %v, want 40µs", got)
	}
	if n := len(p.times); n != 4 {
		t.Errorf("%d samples after second window, want 4", n)
	}
}

// TestProbeDoesNotAlterExecution pins the observer property at the
// engine level: an identical model runs the identical event sequence —
// same order, same clock readings, same processed count — with and
// without a probe attached.
func TestProbeDoesNotAlterExecution(t *testing.T) {
	run := func(probe bool) (order []int, clocks []time.Duration, processed uint64) {
		e := New()
		if probe {
			e.SetProbe(&recProbe{}, 7*time.Microsecond)
		}
		delays := []time.Duration{11, 3, 29, 17, 3, 23}
		for i, d := range delays {
			i, d := i, d
			e.Schedule(d*time.Microsecond, func() {
				order = append(order, i)
				clocks = append(clocks, e.Now())
				if i == 1 {
					// Nested scheduling from inside an event, as models do.
					e.Schedule(10*time.Microsecond, func() {
						order = append(order, 100)
						clocks = append(clocks, e.Now())
					})
				}
			})
		}
		for e.Step() {
		}
		return order, clocks, e.Processed()
	}

	plainOrder, plainClocks, plainN := run(false)
	tracedOrder, tracedClocks, tracedN := run(true)
	if !reflect.DeepEqual(plainOrder, tracedOrder) {
		t.Errorf("event order diverged: %v vs %v", plainOrder, tracedOrder)
	}
	if !reflect.DeepEqual(plainClocks, tracedClocks) {
		t.Errorf("event clocks diverged: %v vs %v", plainClocks, tracedClocks)
	}
	if plainN != tracedN {
		t.Errorf("processed %d vs %d events", plainN, tracedN)
	}
}
