package sim

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"
)

// tokenRing is the synthetic multi-region model of the partition tests:
// M nodes in a ring, tokens hopping node to node with a fixed hop
// latency (>= the lookahead), each arrival incrementing the node's
// counter until the end time.  Every node is owned by exactly one
// region and only its owner executes its arrivals, so the model is
// race-free by construction; its observables (per-node counts, total
// events, final clock) are a pure function of the token schedule and
// must be identical for every decomposition of the ring.
type tokenRing struct {
	p       *Partitioned
	nodes   int
	hopLat  time.Duration
	endAt   time.Duration
	counts  []uint64
	ownerOf func(node int) int
}

func (tr *tokenRing) owner(node int) *Region { return tr.p.Region(tr.ownerOf(node)) }

// arrive processes a token landing on node at the owning region's
// current clock, then forwards it one hop around the ring.
func (tr *tokenRing) arrive(node int) {
	tr.counts[node]++
	r := tr.owner(node)
	t := r.Now() + tr.hopLat
	if t > tr.endAt {
		return
	}
	next := (node + 1) % tr.nodes
	if tr.ownerOf(next) == r.Index() {
		r.At(t, func() { tr.arrive(next) })
	} else {
		r.Send(tr.ownerOf(next), t, func() { tr.arrive(next) })
	}
}

// launch injects the initial tokens: one per node, at staggered start
// times, scheduled into each node's owning region.
func (tr *tokenRing) launch() {
	for n := 0; n < tr.nodes; n++ {
		n := n
		tr.owner(n).At(time.Duration(n+1)*time.Microsecond, func() { tr.arrive(n) })
	}
}

// newTokenRing builds the model on a fresh partitioned engine with the
// given region count; nodes are dealt to regions in contiguous blocks.
func newTokenRing(t *testing.T, regions int) *tokenRing {
	t.Helper()
	const nodes = 12
	lookahead := 5 * time.Microsecond
	p, err := NewPartitioned(regions, lookahead)
	if err != nil {
		t.Fatal(err)
	}
	tr := &tokenRing{
		p:      p,
		nodes:  nodes,
		hopLat: lookahead, // exactly the bound: the tightest legal send
		endAt:  3 * time.Millisecond,
		counts: make([]uint64, nodes),
		ownerOf: func(node int) int {
			return node * regions / nodes
		},
	}
	tr.launch()
	return tr
}

// TestPartitionedMatchesSerial pins the partitioned engine's results to
// the single-region (serial) execution of the same model, for several
// region counts: per-node counts, total processed events and the final
// clock must all be identical.
func TestPartitionedMatchesSerial(t *testing.T) {
	ref := newTokenRing(t, 1)
	if _, err := ref.p.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if ref.p.Processed() == 0 {
		t.Fatal("serial reference executed no events")
	}
	for _, regions := range []int{2, 3, 4, 6} {
		tr := newTokenRing(t, regions)
		if _, err := tr.p.Run(context.Background()); err != nil {
			t.Fatalf("regions=%d: %v", regions, err)
		}
		if got, want := tr.p.Processed(), ref.p.Processed(); got != want {
			t.Errorf("regions=%d: processed %d events, serial %d", regions, got, want)
		}
		if got, want := tr.p.Now(), ref.p.Now(); got != want {
			t.Errorf("regions=%d: final clock %v, serial %v", regions, got, want)
		}
		for n := range tr.counts {
			if tr.counts[n] != ref.counts[n] {
				t.Errorf("regions=%d: node %d count %d, serial %d", regions, n, tr.counts[n], ref.counts[n])
			}
		}
	}
}

// TestPartitionedDeterministic runs the same decomposition twice and
// requires identical results — the merge order must not depend on
// goroutine scheduling.
func TestPartitionedDeterministic(t *testing.T) {
	a := newTokenRing(t, 4)
	if _, err := a.p.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	b := newTokenRing(t, 4)
	if _, err := b.p.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if a.p.Processed() != b.p.Processed() || a.p.Now() != b.p.Now() {
		t.Fatalf("two identical runs diverged: %d/%v vs %d/%v",
			a.p.Processed(), a.p.Now(), b.p.Processed(), b.p.Now())
	}
	for n := range a.counts {
		if a.counts[n] != b.counts[n] {
			t.Errorf("node %d count %d vs %d across identical runs", n, a.counts[n], b.counts[n])
		}
	}
}

// TestPartitionedLookaheadViolation requires a send below the lookahead
// bound to abort the run with ErrLookahead instead of producing a
// schedule-dependent result.
func TestPartitionedLookaheadViolation(t *testing.T) {
	p, err := NewPartitioned(2, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	r0 := p.Region(0)
	r0.At(time.Microsecond, func() {
		// Clock is 1µs; anything before 1µs+1ms violates the bound.
		r0.Send(1, r0.Now()+time.Microsecond, func() {})
	})
	if _, err := p.Run(context.Background()); !errors.Is(err, ErrLookahead) {
		t.Fatalf("Run error = %v, want ErrLookahead", err)
	}
}

// TestPartitionedSendValidation pins the Send panics for bad targets
// and nil functions.
func TestPartitionedSendValidation(t *testing.T) {
	p, err := NewPartitioned(2, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("bad target", func() { p.Region(0).Send(7, time.Second, func() {}) })
	mustPanic("nil fn", func() { p.Region(0).Send(1, time.Second, nil) })
}

// TestNewPartitionedValidation pins the constructor errors.
func TestNewPartitionedValidation(t *testing.T) {
	if _, err := NewPartitioned(0, time.Millisecond); err == nil {
		t.Error("0 regions accepted")
	}
	if _, err := NewPartitioned(2, 0); err == nil {
		t.Error("zero lookahead accepted")
	}
}

// endlessRing is a token ring without an end time, for cancellation
// tests: it generates windows forever until the context stops the run.
func endlessRing(t *testing.T, regions int) *tokenRing {
	t.Helper()
	tr := newTokenRing(t, regions)
	tr.endAt = 1 << 62
	return tr
}

// TestPartitionedCancel cancels a run mid-flight — including while
// region workers are inside a window barrier cycle — and requires Run
// to return the context error promptly without leaking its worker
// goroutines.
func TestPartitionedCancel(t *testing.T) {
	before := runtime.NumGoroutine()
	tr := endlessRing(t, 4)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	done := make(chan error, 1)
	go func() {
		_, err := tr.p.Run(ctx)
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Run error = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled run did not return: mid-barrier hang")
	}
	// Worker goroutines shut down with Run; give the runtime a moment
	// to reap them before comparing.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
	if now := runtime.NumGoroutine(); now > before {
		t.Errorf("goroutines grew from %d to %d after cancelled run", before, now)
	}
}

// TestPartitionedRerunAfterCancel verifies the engine state survives a
// cancellation intact: resuming the run completes it.
func TestPartitionedRerunAfterCancel(t *testing.T) {
	tr := newTokenRing(t, 3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := tr.p.Run(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled Run error = %v", err)
	}
	if _, err := tr.p.Run(context.Background()); err != nil {
		t.Fatalf("resumed Run: %v", err)
	}
	ref := newTokenRing(t, 3)
	if _, err := ref.p.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if tr.p.Processed() != ref.p.Processed() || tr.p.Now() != ref.p.Now() {
		t.Fatalf("resumed run diverged: %d/%v vs %d/%v",
			tr.p.Processed(), tr.p.Now(), ref.p.Processed(), ref.p.Now())
	}
}
