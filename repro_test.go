package repro_test

import (
	"context"
	"testing"

	repro "repro"
	"repro/qnet"
	"repro/qnet/simulate"
)

// The facade tests exercise the public API end to end, the way a
// downstream user would.

func TestFacadeChannelModel(t *testing.T) {
	p := repro.IonTrap2006()
	if f := repro.Ballistic(p, 1, 100); f >= 1 || f < 0.9999 {
		t.Errorf("ballistic fidelity over 100 cells = %g", f)
	}
	if f := repro.Teleport(p, 1, 1); 1-f > 1e-6 {
		t.Errorf("near-perfect teleport error = %g", 1-f)
	}
	if f := repro.Generate(p, 1); f <= 0.999 {
		t.Errorf("generated pair fidelity = %g", f)
	}
}

func TestFacadeDistribution(t *testing.T) {
	cfg := repro.DefaultDistributionConfig(repro.IonTrap2006())
	cost := cfg.Evaluate(repro.EndpointsOnly, 30)
	if !cost.Feasible {
		t.Fatal("baseline 30-hop channel should be feasible")
	}
	if cost.FinalError > repro.ThresholdError {
		t.Errorf("delivered error %g exceeds threshold", cost.FinalError)
	}
	if cost.EndpointRounds != 3 {
		t.Errorf("endpoint rounds = %d, want 3 (paper §5.3)", cost.EndpointRounds)
	}
}

func TestFacadePurification(t *testing.T) {
	q, err := repro.NewQueuePurifier(repro.DEJMPS{Params: repro.IonTrap2006()}, 3)
	if err != nil {
		t.Fatal(err)
	}
	emitted := 0
	for i := 0; i < 32; i++ {
		if res := q.Offer(repro.Werner(0.99)); res.Emitted {
			emitted++
		}
	}
	if emitted != 4 {
		t.Errorf("emitted %d outputs from 32 pairs, want 4", emitted)
	}
}

func TestFacadeCode(t *testing.T) {
	code, err := repro.Steane(2)
	if err != nil {
		t.Fatal(err)
	}
	if code.RawPairsPerLogicalTeleport(3) != 392 {
		t.Errorf("pairs per logical teleport = %d, want 392", code.RawPairsPerLogicalTeleport(3))
	}
}

func TestFacadeSimulation(t *testing.T) {
	grid, err := repro.NewGrid(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, layout := range []repro.Layout{repro.HomeBase, repro.MobileQubit} {
		cfg := repro.DefaultSimConfig(grid, layout, 16, 16, 8)
		res, err := repro.RunSimulation(cfg, repro.QFT(16))
		if err != nil {
			t.Fatalf("%v: %v", layout, err)
		}
		if res.Ops != 120 {
			t.Errorf("%v: ops = %d, want 120", layout, res.Ops)
		}
		if res.Exec <= 0 {
			t.Errorf("%v: non-positive exec time", layout)
		}
	}
}

// TestFacadeParity asserts the deprecated repro shim and the qnet API
// produce identical results for the same configuration — the guarantee
// that lets downstream users migrate call by call.
func TestFacadeParity(t *testing.T) {
	oldGrid, err := repro.NewGrid(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	newGrid, err := qnet.NewGrid(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, layout := range []repro.Layout{repro.HomeBase, repro.MobileQubit} {
		oldRes, err := repro.RunSimulation(
			repro.DefaultSimConfig(oldGrid, layout, 16, 16, 8), repro.QFT(16))
		if err != nil {
			t.Fatalf("%v: legacy run: %v", layout, err)
		}
		m, err := simulate.New(newGrid, layout, simulate.WithResources(16, 16, 8))
		if err != nil {
			t.Fatalf("%v: simulate.New: %v", layout, err)
		}
		newRes, err := m.Run(context.Background(), qnet.QFT(16))
		if err != nil {
			t.Fatalf("%v: qnet run: %v", layout, err)
		}
		if oldRes != newRes {
			t.Errorf("%v: facade and qnet results differ:\n old %+v\n new %+v", layout, oldRes, newRes)
		}
	}
}

func TestFacadeWorkloads(t *testing.T) {
	if got := len(repro.QFT(16).Ops); got != 120 {
		t.Errorf("QFT(16) ops = %d, want 120", got)
	}
	if got := len(repro.ModMult(8).Ops); got != 64 {
		t.Errorf("ModMult(8) ops = %d, want 64", got)
	}
	if got := len(repro.ModExp(4, 2).Ops); got != 2*(6+16) {
		t.Errorf("ModExp(4,2) ops = %d, want 44", got)
	}
	for _, prog := range []repro.Program{repro.QFT(8), repro.ModMult(4), repro.ModExp(4, 1)} {
		if err := prog.Validate(); err != nil {
			t.Errorf("%s: %v", prog.Name, err)
		}
	}
}
