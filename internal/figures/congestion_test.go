package figures

import (
	"strings"
	"testing"

	"repro/internal/mesh"

	"repro/qnet/simulate"
	"repro/qnet/trace"
)

// smallCongestion runs the figure at the smallest interesting size.
func smallCongestion(t *testing.T) *CongestionData {
	t.Helper()
	cfg := DefaultCongestionConfig(3)
	cfg.Columns = 16
	data, err := Congestion(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestCongestionProducesFullSeries asserts the two-pass calibration
// works: the derived interval makes the traced run fill approximately
// the requested column count without wrapping the ring.
func TestCongestionProducesFullSeries(t *testing.T) {
	data := smallCongestion(t)
	cols := len(data.Trace.Times)
	if cols < 16 || cols > 24 {
		t.Errorf("trace has %d columns, want about the requested 16 (ring slack 8)", cols)
	}
	if int(data.Trace.TotalSamples) != cols {
		t.Errorf("ring wrapped: %d samples taken, %d retained", data.Trace.TotalSamples, cols)
	}
	if data.Qubits != 9 {
		t.Errorf("Qubits = %d, want 9 on a 3x3 mesh", data.Qubits)
	}
	if data.Exec <= 0 {
		t.Errorf("Exec = %v, want positive", data.Exec)
	}
	if data.Policy != "xy" {
		t.Errorf("Policy = %q, want the xy default", data.Policy)
	}
	if len(data.Links) != 12 {
		t.Errorf("%d links on a 3x3 mesh, want 12", len(data.Links))
	}
}

// TestCongestionHeatmapRenders asserts the ASCII heatmap carries one
// row per link with one cell per sample, using only the digit alphabet.
func TestCongestionHeatmapRenders(t *testing.T) {
	data := smallCongestion(t)
	out := data.Heatmap()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if !strings.Contains(lines[0], "QFT-9") || !strings.Contains(lines[0], "xy routing") {
		t.Errorf("heatmap header %q missing run metadata", lines[0])
	}
	rows := lines[1:]
	if len(rows) != len(data.Links) {
		t.Fatalf("%d heatmap rows, want one per link (%d)", len(rows), len(data.Links))
	}
	cols := len(data.Trace.Times)
	for _, row := range rows {
		cells := row[strings.LastIndexByte(row, ' ')+1:]
		if len(cells) != cols {
			t.Errorf("row %q has %d cells, want %d", row, len(cells), cols)
		}
		for _, c := range cells {
			if c != '.' && (c < '0' || c > '9') {
				t.Errorf("row %q contains cell %q outside the digit alphabet", row, c)
			}
		}
	}
	// Something must actually be hot: a QFT saturates the mesh links.
	if !strings.ContainsAny(out, "123456789") {
		t.Error("heatmap shows no nonzero utilization for a full QFT")
	}
}

// TestCongestionHeatmapClampsBacklog asserts the normalization-layer
// half of the route.Loads contract at the renderer: utilization values
// past 1.0 (the backlog regime) read as '9', never as an out-of-range
// byte.
func TestCongestionHeatmapClampsBacklog(t *testing.T) {
	grid, err := mesh.NewGrid(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	data := &CongestionData{
		Config: CongestionConfig{Layout: simulate.HomeBase},
		Qubits: 4,
		Policy: "xy",
		Links:  grid.Links(),
		Trace: &trace.Export{
			Times: []int64{1000, 2000},
			LinkUtil: [][]float64{
				{2.5, 0.5, 0, 1.0},
				{1.001, 0, 0, 0.999},
			},
		},
	}
	out := data.Heatmap()
	rows := strings.Split(strings.TrimRight(out, "\n"), "\n")[1:]
	// Hottest link first: link 0 (mean 1.75) renders both overloaded
	// cells as the top digit.
	if cells := rows[0][strings.LastIndexByte(rows[0], ' ')+1:]; cells != "99" {
		t.Errorf("backlogged link renders %q, want \"99\"", cells)
	}
	for _, row := range rows {
		for _, c := range row[strings.LastIndexByte(row, ' ')+1:] {
			if c != '.' && (c < '0' || c > '9') {
				t.Errorf("unclamped cell %q in %q", c, row)
			}
		}
	}
}

// TestCongestionHotLinksDeterministic asserts the hottest-first order is
// stable: descending mean utilization, index-ascending ties, truncated
// at MaxLinks.
func TestCongestionHotLinksDeterministic(t *testing.T) {
	grid, err := mesh.NewGrid(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	data := &CongestionData{
		Config: CongestionConfig{MaxLinks: 3},
		Links:  grid.Links(),
		Trace: &trace.Export{
			// Means: link0=0.2, link1=0.5, link2=0.5, link3=0.1.
			LinkUtil: [][]float64{
				{0.2, 0.4, 0.6, 0.1},
				{0.2, 0.6, 0.4, 0.1},
			},
		},
	}
	want := []int{1, 2, 0}
	got := data.hotLinks()
	if len(got) != len(want) {
		t.Fatalf("hotLinks = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("hotLinks = %v, want %v (ties break index-ascending)", got, want)
		}
	}
}

// TestCongestionUsesCalibrationCache asserts the calibration pass is
// served by an attached cache on reruns while the traced pass still
// simulates.
func TestCongestionUsesCalibrationCache(t *testing.T) {
	cache := simulate.NewCache(0)
	cfg := DefaultCongestionConfig(3)
	cfg.Columns = 8
	cfg.Cache = cache
	if _, err := Congestion(cfg); err != nil {
		t.Fatal(err)
	}
	first := cache.Stats()
	if first.Misses != 1 {
		t.Fatalf("cold figure: %+v, want exactly the calibration miss", first)
	}
	data, err := Congestion(cfg)
	if err != nil {
		t.Fatal(err)
	}
	warm := cache.Stats()
	if warm.Hits != first.Hits+1 || warm.Misses != first.Misses {
		t.Errorf("warm figure cache traffic %+v after %+v, want one more hit", warm, first)
	}
	if data.Trace.TotalSamples == 0 {
		t.Error("warm rerun's traced pass did not simulate")
	}
}

// TestCongestionRejectsBadConfig pins the validation errors.
func TestCongestionRejectsBadConfig(t *testing.T) {
	if _, err := Congestion(CongestionConfig{GridSize: 1}); err == nil {
		t.Error("grid size 1 accepted")
	}
	cfg := DefaultCongestionConfig(3)
	cfg.Columns = 1
	if _, err := Congestion(cfg); err == nil {
		t.Error("single-column heatmap accepted")
	}
}
