package distrib

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/qnet/simulate"
)

// TestHTTPTransportMidLineCut: a stream cut in the middle of an NDJSON
// line (a worker crash between write and flush) must surface the
// structured truncation error — errors.Is-matchable ErrTruncatedStream
// inside a *TransportError — never a silent partial shard.
func TestHTTPTransportMidLineCut(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc(jobsPath, func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusAccepted)
		fmt.Fprintln(w, `{"id":"job-1"}`)
	})
	mux.HandleFunc(jobsPath+"/", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, `{"point":{"index":0,"result":{}}}`)
		io.WriteString(w, `{"point":{"ind`) // cut mid-line, no newline, no terminal
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
		if hj, ok := w.(http.Hijacker); ok {
			conn, _, err := hj.Hijack()
			if err == nil {
				conn.Close()
			}
		}
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	emitted := 0
	err := NewHTTPTransport().Run(context.Background(), ts.URL,
		Job{Space: testSpec(t), Indices: []int{0, 1}},
		func(PointResult) error { emitted++; return nil })
	if !errors.Is(err, ErrTruncatedStream) {
		t.Fatalf("want ErrTruncatedStream, got %v (emitted %d)", err, emitted)
	}
	var terr *TransportError
	if !errors.As(err, &terr) {
		t.Fatalf("truncation error not a *TransportError: %#v", err)
	}
	if terr.Op != "stream" || terr.Worker != ts.URL {
		t.Fatalf("transport error fields: %+v", terr)
	}
	if emitted != 1 {
		t.Fatalf("emitted %d points before the cut, want 1", emitted)
	}
}

// TestHTTPTransportMissingTerminal: the existing no-terminal-line shape
// must also match ErrTruncatedStream structurally (the string check in
// TestHTTPTransportTruncatedStream predates the sentinel).
func TestHTTPTransportMissingTerminal(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc(jobsPath, func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusAccepted)
		fmt.Fprintln(w, `{"id":"job-1"}`)
	})
	mux.HandleFunc(jobsPath+"/", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, `{"point":{"index":0,"result":{}}}`)
		// Clean close with no done marker.
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	err := NewHTTPTransport().Run(context.Background(), ts.URL,
		Job{Space: testSpec(t), Indices: []int{0}},
		func(PointResult) error { return nil })
	if !errors.Is(err, ErrTruncatedStream) {
		t.Fatalf("want ErrTruncatedStream, got %v", err)
	}
}

// truncatingTransport wraps a Transport and cuts the first dispatch's
// stream after one point, reporting the structured truncation error —
// the transport-seam shape of a worker crash mid-line.
type truncatingTransport struct {
	Transport
	mu   sync.Mutex
	used bool
}

// errCutHere marks the injected cut inside the emit chain.
var errCutHere = errors.New("test: cut here")

// Run truncates the first call, then forwards transparently.
func (tt *truncatingTransport) Run(ctx context.Context, worker string, job Job, emit func(PointResult) error) error {
	tt.mu.Lock()
	first := !tt.used
	tt.used = true
	tt.mu.Unlock()
	if !first {
		return tt.Transport.Run(ctx, worker, job, emit)
	}
	n := 0
	err := tt.Transport.Run(ctx, worker, job, func(pr PointResult) error {
		if n >= 1 {
			return errCutHere
		}
		n++
		return emit(pr)
	})
	if err == nil || errors.Is(err, errCutHere) {
		return &TransportError{Worker: worker, Op: "stream", Err: ErrTruncatedStream}
	}
	return err
}

// TestTruncationTriggersReassignment: a truncated shard must be
// re-dispatched in full — the point delivered before the cut arrives
// again and deduplicates — so the merged output never contains a
// partial shard.
func TestTruncationTriggersReassignment(t *testing.T) {
	spec := testSpec(t)
	want := canonicalPoints(t, singleProcess(t, spec))

	store := simulate.NewCache(0)
	lb := NewLoopback()
	lb.Add("w0", NewWorker(WithWorkerStore(store), WithWorkerParallelism(1)))
	tt := &truncatingTransport{Transport: lb}
	coord, err := NewCoordinator(tt, []string{"w0"},
		WithSharedStore(store, ""),
		WithShards(2),
		WithMaxAttempts(3),
		WithRetryBackoff(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	points, rep, err := coord.Sweep(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if got := canonicalPoints(t, points); string(got) != string(want) {
		t.Fatalf("point set after truncation differs:\n got %s\nwant %s", got, want)
	}
	if rep.Reassignments < 1 {
		t.Fatalf("truncated shard was not re-dispatched: %s", rep)
	}
	if rep.DuplicatePoints < 1 {
		t.Fatalf("re-dispatched shard re-delivered nothing: %s", rep)
	}
	if rep.Points != 8 {
		t.Fatalf("merged %d points, want 8: %s", rep.Points, rep)
	}
	t.Logf("report: %s", rep)
}

// TestRemoteStoreContext covers the context/timeout satellite: a bound
// context governs Get and Put (cancellation degrades to miss/write-
// error, never a hang), the per-request timeout is configurable, and
// WithContext views share one stats counter set.
func TestRemoteStoreContext(t *testing.T) {
	release := make(chan struct{})
	var once sync.Once
	defer once.Do(func() { close(release) })
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release
		http.NotFound(w, r)
	}))
	defer slow.Close()

	var key simulate.Key
	key[0] = 0x5a

	// A cancelled bound context turns Get into an immediate miss and Put
	// into a counted write error, even against a hung server.
	rs := NewRemoteStore(slow.URL)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	bound := rs.WithContext(ctx)
	start := time.Now()
	if _, ok := bound.Get(key); ok {
		t.Fatal("hit from a cancelled context")
	}
	bound.Put(key, simulate.Result{Events: 1})
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancelled requests took %v", elapsed)
	}
	// The view's traffic landed in the parent's counters.
	if s := rs.Stats(); s.Misses != 1 || s.WriteErrors != 1 {
		t.Fatalf("parent stats after bound-view traffic: %+v", s)
	}

	// The per-request timeout is an option, not a hardcoded 30s.
	quick := NewRemoteStore(slow.URL, WithStoreTimeout(20*time.Millisecond))
	start = time.Now()
	if _, ok := quick.Get(key); ok {
		t.Fatal("hit from a timed-out request")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("timed-out Get took %v", elapsed)
	}
	once.Do(func() { close(release) })
}
