package netsim

import (
	"context"
	"encoding/json"
	"testing"

	"repro/internal/fault"
	"repro/internal/route"
	"repro/internal/workload"
)

// TestParallelMatchesSerial pins the engine contract of parallel mode:
// for every partition count, routing policy and fault spec, the Result
// is byte-identical to the serial run of the same Config.
func TestParallelMatchesSerial(t *testing.T) {
	g := grid(t, 5, 5)
	prog := workload.QFT(g.Tiles())
	faulty := fault.Spec{DeadLinks: 0.05, Drop: 0.02}
	for _, tc := range []struct {
		name  string
		route route.Policy
		spec  fault.Spec
		rate  float64
	}{
		{name: "xy-healthy"},
		{name: "zigzag-healthy", route: route.ZigZag()},
		{name: "least-congested-healthy", route: route.LeastCongested()},
		{name: "fault-adaptive-faulty", route: route.FaultAdaptive(), spec: faulty},
		{name: "fault-adaptive-stochastic", route: route.FaultAdaptive(), spec: faulty, rate: 0.1},
	} {
		cfg := DefaultConfig(g, HomeBase, 16, 16, 8)
		cfg.Route = tc.route
		cfg.Faults = tc.spec
		cfg.PurifyFailureRate = tc.rate
		cfg.Seed = 7
		serial, err := Run(cfg, prog)
		if err != nil {
			t.Fatalf("%s serial: %v", tc.name, err)
		}
		want, err := json.Marshal(serial)
		if err != nil {
			t.Fatal(err)
		}
		for _, regions := range []int{2, 3, 4, 99} {
			cfg.Parallel = regions
			got, err := Run(cfg, prog)
			if err != nil {
				t.Fatalf("%s parallel=%d: %v", tc.name, regions, err)
			}
			gotJSON, err := json.Marshal(got)
			if err != nil {
				t.Fatal(err)
			}
			if string(gotJSON) != string(want) {
				t.Errorf("%s parallel=%d diverged from serial:\n got %s\nwant %s",
					tc.name, regions, gotJSON, want)
			}
		}
	}
}

// TestParallelCancel cancels a parallel run up front and requires the
// structured context error, with the partitioned engine's workers shut
// down (the -race CI job would catch a leak as a lingering goroutine
// write).
func TestParallelCancel(t *testing.T) {
	g := grid(t, 5, 5)
	cfg := DefaultConfig(g, HomeBase, 16, 16, 8)
	cfg.Parallel = 4
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := RunDetailedContext(ctx, cfg, workload.QFT(g.Tiles())); err == nil {
		t.Fatal("cancelled parallel run returned no error")
	}
}

// TestParallelValidation pins the config check.
func TestParallelValidation(t *testing.T) {
	g := grid(t, 4, 4)
	cfg := DefaultConfig(g, HomeBase, 16, 16, 8)
	cfg.Parallel = -1
	if err := cfg.Validate(); err == nil {
		t.Error("negative Parallel accepted")
	}
	for _, ok := range []int{0, 1, 2, 100} {
		cfg.Parallel = ok
		if err := cfg.Validate(); err != nil {
			t.Errorf("Parallel=%d rejected: %v", ok, err)
		}
	}
}
