package stats_test

import (
	"context"
	"fmt"
	"log"

	"repro/qnet"
	"repro/qnet/simulate"
	"repro/qnet/stats"
)

// Example summarizes a raw sample set: the five-number description
// plus normal and bootstrap confidence intervals for the mean.
func Example() {
	s := stats.Describe([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	fmt.Printf("n=%d mean=%.2f std=%.2f range=[%g, %g]\n", s.N, s.Mean, s.Std, s.Min, s.Max)
	ci := s.CI(0.95)
	fmt.Printf("95%% CI: %.2f ± %.2f\n", s.Mean, ci.Half())
	// Output:
	// n=8 mean=5.00 std=2.14 range=[2, 9]
	// 95% CI: 5.00 ± 1.48
}

// Example_group sweeps one configuration over a seed ensemble with
// stochastic failure injection and folds the seeds into a per-point
// ensemble — the mean ± CI workflow behind the Figure 16 error bars.
func Example_group() {
	grid, err := qnet.NewGrid(4, 4)
	if err != nil {
		log.Fatal(err)
	}
	points, err := simulate.Sweep(context.Background(), simulate.Space{
		Grids:     []qnet.Grid{grid},
		Layouts:   []simulate.Layout{simulate.HomeBase},
		Resources: []simulate.Resources{{Teleporters: 16, Generators: 16, Purifiers: 8}},
		Programs:  []qnet.Program{qnet.QFT(grid.Tiles())},
		Seeds:     []int64{1, 2, 3, 4, 5},
		Options:   []simulate.Option{simulate.WithFailureRate(0.1)},
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, g := range stats.Group(points) {
		fmt.Printf("%v: %d seeds, spread %v\n",
			g.Point.Layout, g.Ensemble.N, g.Ensemble.Exec.Std > 0)
	}
	// Output:
	// HomeBase: 5 seeds, spread true
}
