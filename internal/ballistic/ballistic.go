// Package ballistic models the Ballistic Movement Distribution
// Methodology of the paper's Figure 4 — the alternative to chained
// teleportation in which EPR pairs are generated at a midpoint G node and
// physically shuttled down channels of ion traps to purifier nodes near
// the endpoints — together with the electrode-level control model of
// Figure 2 that quantifies the paper's Classical Control Complexity
// metric (Section 3.3).
//
// The paper's Section 4.6 compares the two methodologies: their final
// fidelities are approximately equal (gate error is far below movement
// error for ion traps), while their latencies cross over near 600 cells.
// This package makes those comparisons executable.
package ballistic

import (
	"fmt"
	"time"

	"repro/internal/fidelity"
	"repro/internal/phys"
	"repro/internal/purify"
)

// ElectrodesPerTrap is the number of electrode pairs forming one ion
// trap in the Figure 2 layout (three: confinement on both sides plus the
// well centre).
const ElectrodesPerTrap = 3

// PhasesPerCell is the number of waveform phases needed to shuttle an
// ion across one cell: the well must be squeezed, shifted and re-opened,
// each phase changing the levels of the adjacent electrode pairs (the
// waveform staircase of Figure 2).
const PhasesPerCell = 6

// Level is a discrete electrode drive level of the simplified waveform
// model: Low confines, Mid carries, High pushes.
type Level int8

// The three drive levels.
const (
	Low Level = iota
	Mid
	High
)

// String names the level.
func (l Level) String() string {
	switch l {
	case Low:
		return "low"
	case Mid:
		return "mid"
	case High:
		return "high"
	default:
		return fmt.Sprintf("Level(%d)", int8(l))
	}
}

// PulseStep is one phase of a shuttle waveform: the set of electrode
// levels applied simultaneously.  Electrodes are indexed along the
// channel; each index addresses a top/bottom pair driven together (the a
// and b traces of Figure 2 mirror each other).
type PulseStep struct {
	// Phase is the step index within the move.
	Phase int
	// Levels maps electrode index to the drive level it must take this
	// phase.  Electrodes not listed hold their previous level.
	Levels map[int]Level
}

// MovePlan is the waveform program that shuttles an ion between traps.
type MovePlan struct {
	FromTrap, ToTrap int
	Steps            []PulseStep
}

// PlanMove builds the pulse program to shuttle one ion from trap from to
// trap to along a straight channel.  The returned plan has
// PhasesPerCell × |to-from| steps, each touching the three electrode
// pairs around the ion's current position.
func PlanMove(from, to int) (MovePlan, error) {
	if from < 0 || to < 0 {
		return MovePlan{}, fmt.Errorf("ballistic: trap indices must be >= 0 (got %d -> %d)", from, to)
	}
	plan := MovePlan{FromTrap: from, ToTrap: to}
	if from == to {
		return plan, nil
	}
	dir := 1
	if to < from {
		dir = -1
	}
	phase := 0
	for pos := from; pos != to; pos += dir {
		next := pos + dir
		// Six phases per cell: lower the barrier toward `next`, raise the
		// well at `pos`, carry, confine at `next`, restore the barrier,
		// settle.  The exact electro-dynamics are irrelevant to the
		// architecture study; what matters is the signal count and the
		// locality (three electrode pairs per phase).
		cells := [][]struct {
			offset int
			level  Level
		}{
			{{pos, Mid}, {next, Mid}},
			{{pos, High}, {next, Mid}},
			{{pos, High}, {next, Low}},
			{{pos, Mid}, {next, Low}},
			{{pos, Low}, {next, Low}},
			{{next, Mid}, {pos, Low}},
		}
		for _, settings := range cells {
			step := PulseStep{Phase: phase, Levels: make(map[int]Level, len(settings))}
			for _, s := range settings {
				step.Levels[s.offset] = s.level
			}
			plan.Steps = append(plan.Steps, step)
			phase++
		}
	}
	return plan, nil
}

// Cells returns the distance of the move in cells.
func (m MovePlan) Cells() int {
	d := m.ToTrap - m.FromTrap
	if d < 0 {
		d = -d
	}
	return d
}

// Signals returns the total electrode level changes the plan issues —
// the control-complexity cost of the move.
func (m MovePlan) Signals() int {
	n := 0
	for _, s := range m.Steps {
		n += len(s.Levels)
	}
	return n
}

// Duration returns the wall-clock time of the move under the device
// parameters (Eq 2).
func (m MovePlan) Duration(p phys.Params) time.Duration {
	return p.BallisticTime(m.Cells())
}

// Fidelity returns the fidelity of a perfect qubit after the move (Eq 1).
func (m MovePlan) Fidelity(p phys.Params) float64 {
	return fidelity.Ballistic(p, 1, m.Cells())
}

// Distribution models the Figure 4 methodology end to end: EPR pairs are
// generated at the midpoint of a channel of DistanceCells ion traps,
// each half shuttled DistanceCells/2 to its endpoint purifier, and the
// arrivals tree-purified until the pair error is at or below
// TargetError.
type Distribution struct {
	Params phys.Params
	// DistanceCells is the endpoint-to-endpoint channel length.
	DistanceCells int
	// TargetError is the delivered pair error bound (default: the
	// 7.5e-5 threshold).
	TargetError float64
	// MaxRounds caps endpoint purification (default 40).
	MaxRounds int
}

// Result is the cost of delivering one above-target EPR pair
// ballistically.
type Result struct {
	// ArrivalError is the pair error after both halves are shuttled.
	ArrivalError float64
	// Rounds is the endpoint purification tree depth.
	Rounds int
	// FinalError is the delivered pair error.
	FinalError float64
	// PairsConsumed is the expected raw pairs per delivered pair.
	PairsConsumed float64
	// SetupLatency is movement plus sequential purification rounds.
	SetupLatency time.Duration
	// ControlSignals counts electrode level changes to shuttle all
	// consumed pairs (both halves).
	ControlSignals int
	// Feasible is false when purification cannot reach the target.
	Feasible bool
}

// Evaluate runs the distribution model.
func (d Distribution) Evaluate() (Result, error) {
	if d.DistanceCells < 2 {
		return Result{}, fmt.Errorf("ballistic: distance must be >= 2 cells, got %d", d.DistanceCells)
	}
	if err := d.Params.Validate(); err != nil {
		return Result{}, err
	}
	target := d.TargetError
	if target == 0 {
		target = fidelity.ThresholdError
	}
	maxRounds := d.MaxRounds
	if maxRounds == 0 {
		maxRounds = 40
	}

	// Both halves move half the distance; the pair accrues the full
	// distance of movement error (as in the chained-teleportation wire
	// model).
	gen := fidelity.Werner(fidelity.GeneratePerfectInit(d.Params))
	arrived := gen.AfterBallistic(d.Params, d.DistanceCells)

	proto := purify.DEJMPS{Params: d.Params}
	rounds, final, pairs, ok := purify.RoundsToReach(proto, arrived.Twirl(), target, maxRounds)
	res := Result{
		ArrivalError:  arrived.Error(),
		Rounds:        rounds,
		FinalError:    final.Error(),
		PairsConsumed: pairs,
		Feasible:      ok,
	}
	if !ok {
		return res, nil
	}

	// Latency: the halves move in parallel (D/2 each), then the
	// purification tree runs level by level; each level is one
	// purification round with classical exchange over the channel.
	move := d.Params.BallisticTime(d.DistanceCells / 2)
	res.SetupLatency = move + time.Duration(rounds)*d.Params.PurifyRoundTime(d.DistanceCells)

	// Control: each consumed pair shuttles two halves of D/2 cells.
	plan, err := PlanMove(0, d.DistanceCells/2)
	if err != nil {
		return Result{}, err
	}
	res.ControlSignals = int(pairs+0.5) * 2 * plan.Signals()
	return res, nil
}

// Comparison holds the Section 4.6 methodology comparison at one
// distance.
type Comparison struct {
	DistanceCells int
	// BallisticLatency and TeleportLatency are the one-way data movement
	// times of Eq 2 and Eq 5.
	BallisticLatency time.Duration
	TeleportLatency  time.Duration
	// BallisticPairError and ChainedPairError are the delivered EPR pair
	// errors (before endpoint purification) under the two distribution
	// methodologies across the same physical span.
	BallisticPairError float64
	ChainedPairError   float64
}

// Compare evaluates both methodologies over the same physical span,
// chaining teleports every hopCells for the teleportation methodology.
func Compare(p phys.Params, distanceCells, hopCells int) (Comparison, error) {
	if distanceCells < 1 || hopCells < 1 {
		return Comparison{}, fmt.Errorf("ballistic: distances must be >= 1 (got %d, %d)", distanceCells, hopCells)
	}
	c := Comparison{
		DistanceCells:    distanceCells,
		BallisticLatency: p.BallisticTime(distanceCells),
		TeleportLatency:  p.TeleportTime(distanceCells),
	}
	gen := fidelity.Werner(fidelity.GeneratePerfectInit(p))
	c.BallisticPairError = gen.AfterBallistic(p, distanceCells).Error()

	hops := distanceCells / hopCells
	if hops < 1 {
		hops = 1
	}
	wire := gen.AfterBallistic(p, hopCells)
	state := wire
	for i := 0; i < hops; i++ {
		state = fidelity.TeleportBell(p, state, wire)
	}
	c.ChainedPairError = state.Error()
	return c, nil
}
