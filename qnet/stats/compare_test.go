package stats

import (
	"math"
	"testing"
)

// TestCompareReference pins Welch's t-test against independently
// computed references: the t statistic and Welch–Satterthwaite df
// match a direct evaluation of their formulas, and the p-value matches
// numerical integration of the t density (Simpson's rule, agreeing to
// ~1e-12).
func TestCompareReference(t *testing.T) {
	a := Describe([]float64{27.1, 22.0, 20.8, 23.4, 23.4, 23.5, 25.8, 22.0, 24.8, 20.2, 21.9,
		22.1, 22.9, 30.5, 24.5, 26.4, 22.4, 27.9, 24.9, 28.5, 30.3})
	b := Describe([]float64{27.1, 22.0, 20.8, 23.4, 23.4, 23.5, 25.8, 21.0, 31.9, 27.9, 25.9,
		26.2, 21.8, 31.0, 24.6, 25.8, 30.9, 26.8, 26.1, 23.6, 25.6})
	c := Compare(a, b)
	if math.Abs(c.T-0.9989431124287369) > 1e-9 {
		t.Errorf("T = %v, want 0.9989431124287369", c.T)
	}
	if math.Abs(c.DF-39.88577766708169) > 1e-9 {
		t.Errorf("DF = %v, want 39.88577766708169", c.DF)
	}
	if math.Abs(c.P-0.3238443104752748) > 1e-9 {
		t.Errorf("P = %v, want 0.3238443104752748", c.P)
	}
	if c.Significant {
		t.Error("p = 0.32 flagged significant")
	}
	if c.DeltaMean <= 0 || c.CohenD <= 0 {
		t.Errorf("expected positive delta and effect size, got Δ=%v d=%v", c.DeltaMean, c.CohenD)
	}
}

// TestCompareSymmetry asserts swapping the ensembles flips the signs
// of the delta, t and d but leaves the p-value unchanged.
func TestCompareSymmetry(t *testing.T) {
	a := Describe([]float64{1, 2, 3, 4, 5})
	b := Describe([]float64{2, 3, 4, 5, 7})
	ab, ba := Compare(a, b), Compare(b, a)
	if ab.DeltaMean != -ba.DeltaMean || ab.T != -ba.T || ab.CohenD != -ba.CohenD {
		t.Errorf("comparison not antisymmetric: %+v vs %+v", ab, ba)
	}
	if math.Abs(ab.P-ba.P) > 1e-14 {
		t.Errorf("p changed under swap: %v vs %v", ab.P, ba.P)
	}
}

// TestCompareLargeEffect asserts clearly separated ensembles come out
// significant with a large effect size.
func TestCompareLargeEffect(t *testing.T) {
	a := Describe([]float64{10.0, 10.1, 9.9, 10.05, 9.95})
	b := Describe([]float64{12.0, 12.1, 11.9, 12.05, 11.95})
	c := Compare(a, b)
	if !c.Significant {
		t.Errorf("clearly separated ensembles not significant: %v", c)
	}
	if c.CohenD < 8 {
		t.Errorf("CohenD = %v, want a huge effect", c.CohenD)
	}
}

// TestCompareDeterministicEnsembles pins the documented degenerate
// behavior: zero variance on both sides makes the comparison exact.
func TestCompareDeterministicEnsembles(t *testing.T) {
	same := Describe([]float64{5, 5, 5})
	if c := Compare(same, Describe([]float64{5, 5, 5})); c.P != 1 || c.Significant || c.CohenD != 0 {
		t.Errorf("identical deterministic ensembles: %+v, want p=1 d=0", c)
	}
	c := Compare(same, Describe([]float64{6, 6, 6}))
	if c.P != 0 || !c.Significant {
		t.Errorf("distinct deterministic ensembles: %+v, want p=0 significant", c)
	}
	if !math.IsInf(c.CohenD, 1) {
		t.Errorf("CohenD = %v, want +Inf for an exact difference", c.CohenD)
	}
}

// TestCompareSingleSampleNeverSignificant pins the N<2 guard: one
// noisy draw per side (Std is 0 for N<2 by construction, which looks
// exactly like determinism) must never be flagged significant, and
// must not report an infinite effect size.
func TestCompareSingleSampleNeverSignificant(t *testing.T) {
	a := Describe([]float64{10})
	b := Describe([]float64{12})
	c := Compare(a, b)
	if c.P != 1 || c.Significant {
		t.Errorf("single-sample comparison flagged: %+v, want p=1 not significant", c)
	}
	if math.IsInf(c.CohenD, 0) {
		t.Errorf("CohenD = %v for single samples, want finite", c.CohenD)
	}
	// One real ensemble against one draw is equally unsupportable.
	if c := Compare(Describe([]float64{10, 11, 10.5}), b); c.P != 1 || c.Significant {
		t.Errorf("ensemble-vs-single comparison flagged: %+v", c)
	}
}

// TestCompareOneSidedVariance covers a deterministic baseline against a
// noisy candidate (common with failure injection off in the baseline).
func TestCompareOneSidedVariance(t *testing.T) {
	det := Describe([]float64{10, 10, 10, 10})
	noisy := Describe([]float64{11, 12, 13, 12})
	c := Compare(det, noisy)
	if c.P <= 0 || c.P >= DefaultAlpha {
		t.Errorf("p = %v, want small but nonzero", c.P)
	}
	if !c.Significant {
		t.Errorf("well separated one-sided-variance pair not significant: %v", c)
	}
}

// TestRegIncBetaBounds sanity-checks the continued-fraction incomplete
// beta at its edges and against the symmetry identity.
func TestRegIncBetaBounds(t *testing.T) {
	if got := regIncBeta(2, 3, 0); got != 0 {
		t.Errorf("I_0 = %v, want 0", got)
	}
	if got := regIncBeta(2, 3, 1); got != 1 {
		t.Errorf("I_1 = %v, want 1", got)
	}
	for _, x := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
		a, b := 1.7, 4.2
		if diff := regIncBeta(a, b, x) + regIncBeta(b, a, 1-x) - 1; math.Abs(diff) > 1e-12 {
			t.Errorf("symmetry violated at x=%v: off by %v", x, diff)
		}
	}
	// I_x(1/2, 1/2) = (2/π)·asin(√x) in closed form.
	for _, x := range []float64{0.2, 0.5, 0.8} {
		want := 2 / math.Pi * math.Asin(math.Sqrt(x))
		if got := regIncBeta(0.5, 0.5, x); math.Abs(got-want) > 1e-12 {
			t.Errorf("I_%v(1/2,1/2) = %v, want %v", x, got, want)
		}
	}
}
