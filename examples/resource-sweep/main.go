// Resource allocation sweep: a configurable Figure 16.
//
// The paper's final experiment fixes the chip area devoted to the
// interconnect (T' + G + P nodes) and varies how it is split between
// teleporters/generators and queue purifiers.  Home Base channels share
// T' nodes heavily, so they tolerate fewer purifiers; the Mobile Qubit
// layout's local traffic hammers the endpoint purifiers instead.
//
// Run with: go run ./examples/resource-sweep [-grid 8] [-area 48]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/figures"
)

func main() {
	gridN := flag.Int("grid", 8, "mesh edge length (paper: 16)")
	area := flag.Int("area", 48, "per-tile resource budget t+g+p")
	flag.Parse()

	cfg := figures.Fig16Config{
		GridSize: *gridN,
		Area:     *area,
		Ratios:   []int{1, 2, 4, 8},
	}
	fmt.Printf("sweeping QFT-%d with area budget %d...\n\n", cfg.GridSize*cfg.GridSize, cfg.Area)
	data, err := figures.Fig16(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := data.Table().WriteText(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println()
	if err := data.Plot().Write(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println("\nReading the sweep: Mobile degrades sharply once purifiers are")
	fmt.Println("starved (t=g=8p); Home Base, already throttled by T' sharing,")
	fmt.Println("tolerates the same cut far better — the paper's Figure 16 shape.")
}
