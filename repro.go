// Package repro is the legacy flat facade over this repository's
// reproduction of "Interconnection Networks for Scalable Quantum
// Computers" (Isailovic, Patel, Whitney, Kubiatowicz — ISCA 2006,
// arXiv:quant-ph/0604048).
//
// Deprecated: use the qnet package tree instead.  This package is now a
// thin shim re-exporting the same symbols from their new homes and will
// be removed one release after the redesign:
//
//   - device, fidelity, purification, codes, grids, workloads:
//     package repro/qnet
//   - channel planning and EPR distribution: package repro/qnet/channel
//   - the network simulator: package repro/qnet/simulate, whose
//     Machine/Session API replaces DefaultSimConfig/RunSimulation and
//     adds context cancellation and a concurrent sweep engine
//
// Migration table:
//
//	repro.DefaultSimConfig(grid, layout, t, g, p)  ->  simulate.New(grid, layout, simulate.WithResources(t, g, p))
//	repro.RunSimulation(cfg, prog)                 ->  machine.Run(ctx, prog)
//	repro.DefaultDistributionConfig(p)             ->  channel.DefaultDistribution(p)
//	repro.PlanChannel(spec)                        ->  channel.Plan(spec)
//	everything else                                ->  same name in repro/qnet
package repro

import (
	"context"

	"repro/internal/netsim"

	"repro/qnet"
	"repro/qnet/channel"
	"repro/qnet/simulate"
)

// Params bundles the ion-trap device constants of the paper's Tables 1
// and 2.
//
// Deprecated: use qnet.Params.
type Params = qnet.Params

// IonTrap2006 returns the paper's baseline device parameters.
//
// Deprecated: use qnet.IonTrap2006.
func IonTrap2006() Params { return qnet.IonTrap2006() }

// ThresholdError is the fault-tolerance threshold 7.5e-5 the paper
// imposes on data-qubit error.
//
// Deprecated: use qnet.ThresholdError.
const ThresholdError = qnet.ThresholdError

// Bell is a Bell-diagonal two-qubit state; its A coefficient is the
// pair's fidelity.
//
// Deprecated: use qnet.Bell.
type Bell = qnet.Bell

// Werner lifts a scalar fidelity into the Bell-diagonal representation.
//
// Deprecated: use qnet.Werner.
func Werner(f float64) Bell { return qnet.Werner(f) }

// Ballistic applies the paper's Eq 1: fidelity after moving a qubit over
// the given number of ion-trap cells.
//
// Deprecated: use qnet.Ballistic.
func Ballistic(p Params, old float64, cells int) float64 {
	return qnet.Ballistic(p, old, cells)
}

// Teleport applies the paper's Eq 3: fidelity after one teleportation
// using an EPR pair of the given fidelity.
//
// Deprecated: use qnet.Teleport.
func Teleport(p Params, old, epr float64) float64 { return qnet.Teleport(p, old, epr) }

// Generate applies the paper's Eq 4: fidelity of a freshly generated EPR
// pair.
//
// Deprecated: use qnet.Generate.
func Generate(p Params, fzero float64) float64 { return qnet.Generate(p, fzero) }

// Protocol is a two-to-one entanglement purification protocol.
//
// Deprecated: use qnet.Protocol.
type Protocol = qnet.Protocol

// DEJMPS is the Deutsch et al. purification protocol (the paper's
// choice).
//
// Deprecated: use qnet.DEJMPS.
type DEJMPS = qnet.DEJMPS

// BBPSSW is the Bennett et al. purification protocol.
//
// Deprecated: use qnet.BBPSSW.
type BBPSSW = qnet.BBPSSW

// QueuePurifier is the robust queue-based purifier of Figure 14.
//
// Deprecated: use qnet.QueuePurifier.
type QueuePurifier = qnet.QueuePurifier

// NewQueuePurifier builds a queue purifier of the given tree depth.
//
// Deprecated: use qnet.NewQueuePurifier.
func NewQueuePurifier(proto Protocol, depth int) (*QueuePurifier, error) {
	return qnet.NewQueuePurifier(proto, depth)
}

// Scheme selects where purification happens during EPR distribution
// (the five policies of Figures 10-12).
//
// Deprecated: use channel.Scheme.
type Scheme = channel.Scheme

// The five purification placement policies.
//
// Deprecated: use the channel package constants.
const (
	EndpointsOnly = channel.EndpointsOnly
	OnceBefore    = channel.OnceBefore
	TwiceBefore   = channel.TwiceBefore
	OnceAfter     = channel.OnceAfter
	TwiceAfter    = channel.TwiceAfter
)

// DistributionConfig models EPR-pair distribution over a chain of
// teleporter hops.
//
// Deprecated: use channel.Distribution.
type DistributionConfig = channel.Distribution

// DefaultDistributionConfig returns the paper's channel-setup model:
// 600-cell hops, DEJMPS purification, 7.5e-5 target.
//
// Deprecated: use channel.DefaultDistribution.
func DefaultDistributionConfig(p Params) DistributionConfig { return channel.DefaultDistribution(p) }

// Code is a concatenated quantum error-correcting code.
//
// Deprecated: use qnet.Code.
type Code = qnet.Code

// Steane returns the concatenated Steane [[7,1,3]] code at the given
// level; level 2 (49 physical qubits) is the paper's choice.
//
// Deprecated: use qnet.Steane.
func Steane(level int) (Code, error) { return qnet.Steane(level) }

// Grid is a rectangular tile mesh.
//
// Deprecated: use qnet.Grid.
type Grid = qnet.Grid

// NewGrid builds a mesh of the given dimensions.
//
// Deprecated: use qnet.NewGrid.
func NewGrid(w, h int) (Grid, error) { return qnet.NewGrid(w, h) }

// Layout selects the logical-qubit floorplan (Figure 15).
//
// Deprecated: use simulate.Layout.
type Layout = simulate.Layout

// The two floorplans of the paper's Section 5.
//
// Deprecated: use the simulate package constants.
const (
	HomeBase    = simulate.HomeBase
	MobileQubit = simulate.MobileQubit
)

// SimConfig parameterizes the event-driven network simulator.
//
// Deprecated: configure a simulate.Machine with functional options
// instead.
type SimConfig = netsim.Config

// SimResult summarizes a simulation run.
//
// Deprecated: use simulate.Result.
type SimResult = simulate.Result

// DefaultSimConfig returns the paper's simulator parameters on the given
// grid with per-node resource counts t (teleporters), g (generators) and
// p (queue purifiers).
//
// Deprecated: use simulate.New(grid, layout, simulate.WithResources(t, g, p)).
func DefaultSimConfig(grid Grid, layout Layout, t, g, p int) SimConfig {
	return netsim.DefaultConfig(grid, layout, t, g, p)
}

// RunSimulation executes a logical instruction stream on the simulated
// machine.
//
// Deprecated: use simulate.Machine.Run, which takes a context.Context.
func RunSimulation(cfg SimConfig, prog Program) (SimResult, error) {
	return netsim.RunContext(context.Background(), cfg, prog)
}

// ChannelSpec describes a reliable quantum channel to be planned.
//
// Deprecated: use channel.Spec.
type ChannelSpec = channel.Spec

// Channel is a planned reliable quantum channel: the paper's latency,
// bandwidth, error-rate and resource metrics.
//
// Deprecated: use channel.Channel.
type Channel = channel.Channel

// PlanChannel builds the analytical channel model of the paper's
// Section 4 for one path.
//
// Deprecated: use channel.Plan.
func PlanChannel(spec ChannelSpec) (Channel, error) { return channel.Plan(spec) }

// Program is a logical instruction stream of two-qubit operations.
//
// Deprecated: use qnet.Program.
type Program = qnet.Program

// Op is one two-logical-qubit operation.
//
// Deprecated: use qnet.Op.
type Op = qnet.Op

// QFT returns the Quantum Fourier Transform communication pattern
// (all-to-all) on n logical qubits.
//
// Deprecated: use qnet.QFT.
func QFT(n int) Program { return qnet.QFT(n) }

// ModMult returns the Modular Multiplication pattern (bipartite) between
// two sets of n logical qubits.
//
// Deprecated: use qnet.ModMult.
func ModMult(n int) Program { return qnet.ModMult(n) }

// ModExp returns the Modular Exponentiation pattern (alternating
// all-to-all and bipartite) over two sets of n qubits.
//
// Deprecated: use qnet.ModExp.
func ModExp(n, steps int) Program { return qnet.ModExp(n, steps) }
