// Package router models the quantum router of the paper's Figure 6: a T'
// node whose teleporters are partitioned into two equal sets — one for
// X-direction traffic, one for Y-direction traffic — with t storage cells
// per incoming link (4t per node) and a ballistic move between the sets
// when a route turns.  Sets are time multiplexed between the channels
// crossing the node, which the FIFO resource queue models.
package router

import (
	"fmt"
	"time"

	"repro/internal/mesh"
	"repro/internal/phys"
	"repro/internal/sim"
)

// Node is one T' node's contended hardware: two teleporter sets and
// per-incoming-link storage.
type Node struct {
	coord mesh.Coord
	sets  [2]*sim.Resource
	// storage is indexed by the incoming mesh.Direction (a dense 0..3
	// enum); border tiles leave the missing directions nil.  An array
	// keeps the per-hop storage lookup free of map hashing.
	storage [4]*sim.Semaphore
	params  phys.Params

	turns     uint64
	turnCells int
}

// Config sizes a router node.
type Config struct {
	// Teleporters is t, the total teleporter count; it is split into an
	// X set and a Y set of t/2 each (minimum 1 per set).
	Teleporters int
	// StorageUnits is the per-incoming-link storage capacity in whatever
	// unit the caller traffics in (pairs, or batches of pairs).
	StorageUnits int
	// TurnCells is the ballistic distance between the X and Y teleporter
	// sets, paid when a route turns at this node.
	TurnCells int
	// Params supplies movement timing for the turn penalty.
	Params phys.Params
}

// New builds a router node at coord with storage on the given incoming
// directions (border tiles have fewer than four).
func New(engine *sim.Engine, coord mesh.Coord, incoming []mesh.Direction, cfg Config) (*Node, error) {
	if cfg.Teleporters < 1 {
		return nil, fmt.Errorf("router: node %v needs >= 1 teleporter, got %d", coord, cfg.Teleporters)
	}
	if cfg.StorageUnits < 1 {
		return nil, fmt.Errorf("router: node %v needs >= 1 storage unit, got %d", coord, cfg.StorageUnits)
	}
	if cfg.TurnCells < 0 {
		return nil, fmt.Errorf("router: node %v turn distance must be >= 0, got %d", coord, cfg.TurnCells)
	}
	perSet := cfg.Teleporters / 2
	if perSet < 1 {
		perSet = 1
	}
	n := &Node{
		coord:     coord,
		params:    cfg.Params,
		turnCells: cfg.TurnCells,
	}
	// Names resolve lazily: a simulator builds two resources and up to
	// four semaphores per tile, and their names are only ever read on
	// error paths or in statistics reports, so the fmt.Sprintf cost
	// stays off the build path.
	for axis := 0; axis < 2; axis++ {
		r, err := sim.NewLazyResource(engine, func() string {
			return fmt.Sprintf("T'%v/axis%d", coord, axis)
		}, perSet)
		if err != nil {
			return nil, err
		}
		n.sets[axis] = r
	}
	for _, d := range incoming {
		if d < 0 || int(d) >= len(n.storage) {
			return nil, fmt.Errorf("router: node %v has invalid incoming direction %v", coord, d)
		}
		s, err := sim.NewLazySemaphore(func() string {
			return fmt.Sprintf("storage%v/%v", coord, d)
		}, cfg.StorageUnits)
		if err != nil {
			return nil, err
		}
		n.storage[d] = s
	}
	return n, nil
}

// Coord returns the node's tile.
func (n *Node) Coord() mesh.Coord { return n.coord }

// TeleporterSet returns the teleporter resource for the given axis
// (0 = X-direction traffic, 1 = Y-direction traffic).
func (n *Node) TeleporterSet(axis int) *sim.Resource {
	if axis != 0 && axis != 1 {
		panic(fmt.Sprintf("router: axis %d out of range", axis))
	}
	return n.sets[axis]
}

// Storage returns the incoming-storage semaphore for traffic arriving
// from the given direction, or nil when the node has no link there (or
// the direction is not one of the four mesh directions).
func (n *Node) Storage(fromDir mesh.Direction) *sim.Semaphore {
	if fromDir < 0 || int(fromDir) >= len(n.storage) {
		return nil
	}
	return n.storage[fromDir]
}

// AxisLoad reports the live queue pressure of the directional
// teleporter set (0 = X traffic, 1 = Y traffic): jobs in service plus
// jobs waiting, normalized by the set's capacity.  0 means idle; values
// above 1 mean a backlog.  Adaptive routing policies consult it at
// channel-setup time through the route.Loads interface.
func (n *Node) AxisLoad(axis int) float64 {
	r := n.TeleporterSet(axis)
	return float64(r.InUse()+r.QueueLen()) / float64(r.Capacity())
}

// StorageLoad reports the occupancy fraction of the incoming storage
// for traffic arriving from the given direction: taken credits plus
// queued acquirers over the storage limit (0 when the node has no link
// there).  Like AxisLoad it exceeds 1 under backlog.
func (n *Node) StorageLoad(fromDir mesh.Direction) float64 {
	s := n.Storage(fromDir)
	if s == nil {
		return 0
	}
	return float64(s.Limit()-s.Available()+s.Waiting()) / float64(s.Limit())
}

// Occupancy returns the node's total live queue occupancy: jobs in
// service or waiting at both teleporter sets, plus storage credits
// taken or queued for across every incoming link.  It aggregates, in
// units of batches, exactly the counters AxisLoad and StorageLoad
// normalize — the quantity the telemetry tracer samples over simulated
// time.
func (n *Node) Occupancy() int {
	occ := 0
	for axis := 0; axis < 2; axis++ {
		r := n.sets[axis]
		occ += r.InUse() + r.QueueLen()
	}
	for _, s := range n.storage {
		if s != nil {
			occ += s.Limit() - s.Available() + s.Waiting()
		}
	}
	return occ
}

// TurnPenalty returns the ballistic-move latency for switching between
// the X and Y teleporter sets and counts the turn.
func (n *Node) TurnPenalty() time.Duration {
	n.turns++
	return n.params.BallisticTime(n.turnCells)
}

// Turns returns the number of turns taken through this node.
func (n *Node) Turns() uint64 { return n.turns }

// Utilization returns the mean utilization of the two teleporter sets.
func (n *Node) Utilization() float64 {
	return (n.sets[0].Utilization() + n.sets[1].Utilization()) / 2
}
