// Purification protocols and placement: the tradeoffs behind Figures 8,
// 10 and 11.
//
// This example compares the DEJMPS and BBPSSW entanglement-purification
// protocols round by round, then evaluates the five purification
// placement policies for distributing EPR pairs across a 20-hop path.
//
// Run with: go run ./examples/purification
package main

import (
	"fmt"

	"repro/qnet"
	"repro/qnet/channel"
)

func main() {
	p := qnet.IonTrap2006()

	fmt.Println("== Protocol race: error after each purification round (F0 = 0.99) ==")
	fmt.Println("round   DEJMPS        BBPSSW")
	initial := qnet.Werner(0.99)
	dejmps := qnet.Rounds(qnet.DEJMPS{Params: p}, initial, 8)
	bbpssw := qnet.Rounds(qnet.BBPSSW{Params: p}, initial, 8)
	for i := 0; i < 8; i++ {
		fmt.Printf("%5d   %.3e     %.3e\n", i+1, dejmps[i].State.Error(), bbpssw[i].State.Error())
	}
	dr := qnet.ConvergenceRounds(qnet.DEJMPS{Params: p}, initial, 1e-7, 100)
	br := qnet.ConvergenceRounds(qnet.BBPSSW{Params: p}, initial, 1e-7, 100)
	fmt.Printf("\nconvergence: DEJMPS %d rounds, BBPSSW %d rounds (paper: BBPSSW needs 5-10x more)\n",
		dr, br)
	fmt.Printf("resource cost is exponential in rounds: %d rounds -> %d pairs, %d rounds -> %d pairs\n\n",
		dr, qnet.TreePairs(dr), br, qnet.TreePairs(br))

	fmt.Println("== Queue purifier (Figure 14): depth 3, one output per 8 pairs ==")
	q, err := qnet.NewQueuePurifier(qnet.DEJMPS{Params: p}, 3)
	if err != nil {
		panic(err)
	}
	in := qnet.Werner(0.995)
	for i := 1; i <= 16; i++ {
		res := q.Offer(in)
		if res.Emitted {
			fmt.Printf("offer %2d: %d purifications cascaded, output error %.2e\n",
				i, res.Purifications, res.Output.Error())
		}
	}
	fmt.Println()

	fmt.Println("== Placement policies across a 20-hop channel (Figures 10/11) ==")
	cfg := channel.DefaultDistribution(p)
	fmt.Printf("%-28s %12s %14s %10s\n", "scheme", "teleported", "total pairs", "endpoint rounds")
	for _, s := range channel.Schemes {
		c := cfg.Evaluate(s, 20)
		fmt.Printf("%-28s %12.3g %14.3g %10d\n", s, c.TeleportedPairs, c.TotalPairs, c.EndpointRounds)
	}
	fmt.Println("\nEndpoints-only minimizes TOTAL pairs (purify low-fidelity pairs once,")
	fmt.Println("at the end); wire purification minimizes pairs TELEPORTED (network")
	fmt.Println("strain); purifying after every teleport is exponentially wasteful.")
}
