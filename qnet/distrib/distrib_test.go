package distrib

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/qnet"
	"repro/qnet/simulate"
)

// testSpec is the e2e sweep space: 2 layouts x 2 depths x 2 seeds on a
// 3x3 QFT with failure injection (so the seed dimension matters and
// keys do not collapse), 8 points total.
func testSpec(t testing.TB) SpaceSpec {
	t.Helper()
	grid, err := qnet.NewGrid(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	return SpaceSpec{
		Grids:       []qnet.Grid{grid},
		Layouts:     []string{"HomeBase", "MobileQubit"},
		Resources:   []simulate.Resources{{Teleporters: 8, Generators: 8, Purifiers: 4}},
		Programs:    []qnet.Program{qnet.QFT(grid.Tiles())},
		Depths:      []int{2, 3},
		Seeds:       []int64{1, 2},
		FailureRate: 0.05,
	}
}

// canonicalPoints renders a point set into comparable bytes: every
// field that identifies the point and its result, with the Cached
// flag deliberately excluded (whether a point came from the store is
// an execution detail, not part of the result contract).
func canonicalPoints(t testing.TB, points []simulate.SweepPoint) []byte {
	t.Helper()
	type row struct {
		Index     int
		Grid      qnet.Grid
		Layout    string
		Resources simulate.Resources
		Program   string
		Depth     int
		Routing   string
		Seed      int64
		Result    simulate.Result
		Err       string
	}
	rows := make([]row, len(points))
	for i, sp := range points {
		rows[i] = row{
			Index:     sp.Point.Index,
			Grid:      sp.Point.Grid,
			Layout:    sp.Point.Layout.String(),
			Resources: sp.Point.Resources,
			Program:   sp.Point.Program.Name,
			Depth:     sp.Point.Depth,
			Routing:   sp.Point.RoutingName(),
			Seed:      sp.Point.Seed,
			Result:    sp.Result,
		}
		if sp.Err != nil {
			rows[i].Err = sp.Err.Error()
		}
	}
	data, err := json.Marshal(rows)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// singleProcess runs the reference single-process sweep of a spec.
func singleProcess(t testing.TB, spec SpaceSpec) []simulate.SweepPoint {
	t.Helper()
	space, err := spec.Space()
	if err != nil {
		t.Fatal(err)
	}
	points, err := simulate.Sweep(context.Background(), space)
	if err != nil {
		t.Fatal(err)
	}
	return points
}

func TestPlanShards(t *testing.T) {
	for _, tc := range []struct {
		total, shards int
		wantShards    int
	}{
		{total: 8, shards: 3, wantShards: 3},
		{total: 8, shards: 8, wantShards: 8},
		{total: 3, shards: 8, wantShards: 3},
		{total: 5, shards: 0, wantShards: 5},
		{total: 0, shards: 4, wantShards: 0},
	} {
		got := PlanShards(tc.total, tc.shards)
		if len(got) != tc.wantShards {
			t.Fatalf("PlanShards(%d, %d): %d shards, want %d", tc.total, tc.shards, len(got), tc.wantShards)
		}
		next := 0
		for i, sh := range got {
			if sh.ID != i {
				t.Fatalf("shard %d has ID %d", i, sh.ID)
			}
			for _, idx := range sh.Indices {
				if idx != next {
					t.Fatalf("PlanShards(%d, %d): want contiguous coverage, got index %d at position %d", tc.total, tc.shards, idx, next)
				}
				next++
			}
		}
		if next != tc.total {
			t.Fatalf("PlanShards(%d, %d) covered %d points", tc.total, tc.shards, next)
		}
	}
}

func TestSpaceSpecRoundTrip(t *testing.T) {
	spec := testSpec(t)
	space, err := spec.Space()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := space.Size(), 8; got != want {
		t.Fatalf("space size %d, want %d", got, want)
	}
	if n, err := spec.Size(); err != nil || n != 8 {
		t.Fatalf("spec.Size() = %d, %v", n, err)
	}
	if names := LayoutNames(space.Layouts); names[0] != "HomeBase" || names[1] != "MobileQubit" {
		t.Fatalf("LayoutNames = %v", names)
	}
	if names := RoutingNames(space.Routings); len(names) != 0 {
		t.Fatalf("RoutingNames of empty dimension = %v", names)
	}
	if _, err := ParseLayout("nonsense"); err == nil {
		t.Fatal("ParseLayout accepted nonsense")
	}
	bad := spec
	bad.Layouts = []string{"nonsense"}
	if _, err := bad.Space(); err == nil {
		t.Fatal("Space() accepted a bad layout name")
	}
}

func TestJobValidate(t *testing.T) {
	spec := testSpec(t)
	if err := (Job{Space: spec, Indices: []int{0, 7}}).Validate(); err != nil {
		t.Fatalf("valid job rejected: %v", err)
	}
	if err := (Job{Space: spec}).Validate(); err == nil {
		t.Fatal("empty shard accepted")
	}
	if err := (Job{Space: spec, Indices: []int{8}}).Validate(); err == nil {
		t.Fatal("out-of-range index accepted")
	}
}

func TestWorkerExecute(t *testing.T) {
	spec := testSpec(t)
	w := NewWorker(WithWorkerParallelism(2))
	var mu sync.Mutex
	got := make(map[int]PointResult)
	err := w.Execute(context.Background(), Job{Space: spec, Indices: []int{1, 3, 5}}, func(pr PointResult) error {
		mu.Lock()
		defer mu.Unlock()
		got[pr.Index] = pr
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("emitted %d points, want 3", len(got))
	}
	for _, idx := range []int{1, 3, 5} {
		pr, ok := got[idx]
		if !ok {
			t.Fatalf("index %d missing", idx)
		}
		if pr.Err != "" || pr.Cached || pr.Result.Events == 0 {
			t.Fatalf("index %d: unexpected result %+v", idx, pr)
		}
	}
}

// TestWorkerRunParallelism runs the same shard on a serial worker and
// on one driving every simulation through the parallel event engine;
// the emitted results must be identical point for point (parallelism is
// an engine choice, never a result change).
func TestWorkerRunParallelism(t *testing.T) {
	spec := testSpec(t)
	execute := func(w *Worker) map[int]PointResult {
		var mu sync.Mutex
		got := make(map[int]PointResult)
		err := w.Execute(context.Background(), Job{Space: spec, Indices: []int{0, 2, 4}}, func(pr PointResult) error {
			mu.Lock()
			defer mu.Unlock()
			got[pr.Index] = pr
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return got
	}
	serial := execute(NewWorker())
	parallel := execute(NewWorker(WithWorkerRunParallelism(4)))
	if len(parallel) != len(serial) {
		t.Fatalf("parallel worker emitted %d points, serial %d", len(parallel), len(serial))
	}
	for idx, want := range serial {
		got, ok := parallel[idx]
		if !ok {
			t.Fatalf("index %d missing from parallel worker", idx)
		}
		if got != want {
			t.Errorf("index %d: parallel %+v, serial %+v", idx, got, want)
		}
	}
}

// TestLoopbackParity is the core acceptance test: a sweep sharded
// across two loopback workers returns a point set byte-identical to
// the single-process Sweep over the same Space.
func TestLoopbackParity(t *testing.T) {
	spec := testSpec(t)
	want := canonicalPoints(t, singleProcess(t, spec))

	store := simulate.NewCache(0)
	lb := NewLoopback()
	lb.Add("w0", NewWorker(WithWorkerStore(store)))
	lb.Add("w1", NewWorker(WithWorkerStore(store)))
	coord, err := NewCoordinator(lb, []string{"w0", "w1"}, WithSharedStore(store, ""))
	if err != nil {
		t.Fatal(err)
	}
	points, rep, err := coord.Sweep(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	got := canonicalPoints(t, points)
	if string(got) != string(want) {
		t.Fatalf("distributed point set differs from single-process sweep:\n got %s\nwant %s", got, want)
	}
	if rep.Points != 8 || rep.Shards != 8 {
		t.Fatalf("report %+v", rep)
	}
	if rep.Mismatches != 0 {
		t.Fatalf("sanity check reported mismatches: %v", rep.MismatchDetails)
	}
	if len(rep.ShardsByWorker) == 0 {
		t.Fatal("no shard attribution recorded")
	}
	t.Logf("report: %s", rep)
}

// TestLoopbackWorkerDeath kills one worker mid-shard and asserts the
// reassigned shard completes on the survivor, re-hitting the shared
// store for the points the dead worker already finished, with the
// final point set still byte-identical to the single-process sweep.
func TestLoopbackWorkerDeath(t *testing.T) {
	spec := testSpec(t)
	want := canonicalPoints(t, singleProcess(t, spec))

	store := simulate.NewCache(0)
	lb := NewLoopback()
	lb.Add("w0", NewWorker(WithWorkerStore(store), WithWorkerParallelism(1)))
	lb.Add("w1", NewWorker(WithWorkerStore(store), WithWorkerParallelism(1)))
	// w0 dies after delivering one point: by then it has simulated and
	// stored at least one more, so the reassigned shard must re-hit
	// the shared store.
	lb.KillAfterPoints("w0", 1)
	coord, err := NewCoordinator(lb, []string{"w0", "w1"},
		WithSharedStore(store, ""),
		WithShards(4),
		WithMaxAttempts(4),
		WithRetryBackoff(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	points, rep, err := coord.Sweep(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	got := canonicalPoints(t, points)
	if string(got) != string(want) {
		t.Fatalf("point set after worker death differs from single-process sweep:\n got %s\nwant %s", got, want)
	}
	if len(rep.DeadWorkers) != 1 || rep.DeadWorkers[0] != "w0" {
		t.Fatalf("dead workers %v, want [w0]", rep.DeadWorkers)
	}
	if rep.Reassignments < 1 {
		t.Fatalf("no reassignments recorded: %s", rep)
	}
	if rep.CacheHits < 1 {
		t.Fatalf("reassigned shard did not re-hit the shared store: %s", rep)
	}
	if rep.Mismatches != 0 {
		t.Fatalf("sanity check reported mismatches: %v", rep.MismatchDetails)
	}
	if rep.ShardsByWorker["w1"] != 4 {
		t.Fatalf("survivor should own all 4 shards: %v", rep.ShardsByWorker)
	}
	t.Logf("report: %s", rep)
}

// TestAllWorkersDead asserts the sweep fails (rather than hangs) when
// the whole fleet dies.
func TestAllWorkersDead(t *testing.T) {
	spec := testSpec(t)
	store := simulate.NewCache(0)
	lb := NewLoopback()
	lb.Add("w0", NewWorker(WithWorkerStore(store)))
	lb.KillAfterPoints("w0", 0)
	coord, err := NewCoordinator(lb, []string{"w0"},
		WithRetryBackoff(time.Millisecond), WithMaxAttempts(2))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	var sweepErr error
	go func() {
		defer close(done)
		_, _, sweepErr = coord.Sweep(context.Background(), spec)
	}()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("sweep hung with a dead fleet")
	}
	if sweepErr == nil {
		t.Fatal("sweep succeeded with a dead fleet")
	}
}

// TestHTTPEndToEnd runs the full wire path: two worker job servers and
// a shared store server over real HTTP, merged by the coordinator,
// byte-identical to the single-process sweep.
func TestHTTPEndToEnd(t *testing.T) {
	spec := testSpec(t)
	want := canonicalPoints(t, singleProcess(t, spec))

	store := simulate.NewCache(0)
	storeSrv := httptest.NewServer(NewStoreServer(store).Handler())
	defer storeSrv.Close()

	var workerURLs []string
	for i := 0; i < 2; i++ {
		srv := NewServer(NewWorker())
		defer srv.Close()
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		workerURLs = append(workerURLs, ts.URL)
	}

	coord, err := NewCoordinator(NewHTTPTransport(), workerURLs,
		WithSharedStore(store, storeSrv.URL),
		WithHeartbeat(200*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	points, rep, err := coord.Sweep(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	got := canonicalPoints(t, points)
	if string(got) != string(want) {
		t.Fatalf("HTTP point set differs from single-process sweep:\n got %s\nwant %s", got, want)
	}
	if rep.Store.Entries == 0 {
		t.Fatalf("shared store never populated: %s", rep)
	}
	if rep.Mismatches != 0 {
		t.Fatalf("sanity check reported mismatches: %v", rep.MismatchDetails)
	}
	t.Logf("report: %s", rep)
}

func TestRemoteStore(t *testing.T) {
	backing := simulate.NewCache(0)
	srv := httptest.NewServer(NewStoreServer(backing).Handler())
	defer srv.Close()

	rs := NewRemoteStore(srv.URL + "/")
	var key simulate.Key
	key[0] = 0xab
	if _, ok := rs.Get(key); ok {
		t.Fatal("hit on empty store")
	}
	want := simulate.Result{Events: 42, Ops: 7}
	rs.Put(key, want)
	got, ok := rs.Get(key)
	if !ok || got.Events != 42 || got.Ops != 7 {
		t.Fatalf("round trip: got %+v ok=%v", got, ok)
	}
	if s := rs.Stats(); s.Hits != 1 || s.Misses != 1 || s.WriteErrors != 0 {
		t.Fatalf("client stats %+v", s)
	}
	server, err := rs.ServerStats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if server.Entries != 1 {
		t.Fatalf("server stats %+v", server)
	}

	// An unreachable server degrades to misses and counted write
	// errors, never failures.
	srv.Close()
	if _, ok := rs.Get(key); ok {
		t.Fatal("hit from closed server")
	}
	rs.Put(key, want)
	if s := rs.Stats(); s.Misses != 2 || s.WriteErrors != 1 {
		t.Fatalf("stats after server loss: %+v", s)
	}
}

func TestStoreServerRejectsBadKey(t *testing.T) {
	srv := httptest.NewServer(NewStoreServer(simulate.NewCache(0)).Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/v1/store/nothex")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad key: status %d", resp.StatusCode)
	}
}

func TestHTTPTransportTruncatedStream(t *testing.T) {
	// A server that accepts the job but drops the stream mid-way must
	// surface an error, not a silent partial shard.
	mux := http.NewServeMux()
	mux.HandleFunc(jobsPath, func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusAccepted)
		fmt.Fprintln(w, `{"id":"job-1"}`)
	})
	mux.HandleFunc(jobsPath+"/", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, `{"point":{"index":0,"result":{}}}`)
		// ...and then nothing: no done marker, no error line.
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	tr := NewHTTPTransport()
	emitted := 0
	err := tr.Run(context.Background(), ts.URL, Job{Space: testSpec(t), Indices: []int{0}},
		func(PointResult) error { emitted++; return nil })
	if err == nil || !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("want truncation error, got %v (emitted %d)", err, emitted)
	}
}
