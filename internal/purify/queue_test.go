package purify

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/fidelity"
)

func mustQueue(t *testing.T, depth int) *QueuePurifier {
	t.Helper()
	q, err := NewQueuePurifier(DEJMPS{base}, depth)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestNewQueuePurifierValidation(t *testing.T) {
	if _, err := NewQueuePurifier(DEJMPS{base}, 0); err == nil {
		t.Error("depth 0 should be rejected")
	}
	if _, err := NewQueuePurifier(nil, 3); err == nil {
		t.Error("nil protocol should be rejected")
	}
}

func TestQueuePurifierEmitsEveryEighthPair(t *testing.T) {
	// Depth 3, always-succeeding: exactly one output per 8 offered pairs
	// (Figure 14; paper §5.3 uses 2^3 = 8 pairs per purified pair).
	q := mustQueue(t, 3)
	in := fidelity.Werner(0.999)
	emitted := 0
	for i := 1; i <= 64; i++ {
		res := q.Offer(in)
		if res.Emitted {
			emitted++
			if i%8 != 0 {
				t.Errorf("output emitted at offer %d, want multiples of 8", i)
			}
		}
	}
	if emitted != 8 {
		t.Errorf("emitted %d outputs from 64 pairs, want 8", emitted)
	}
	if got := q.PairsPerOutput(); got != 8 {
		t.Errorf("PairsPerOutput = %d, want 8", got)
	}
}

func TestQueuePurifierOutputQualityMatchesTree(t *testing.T) {
	// The emitted pair must equal three symmetric tree rounds.
	q := mustQueue(t, 3)
	in := fidelity.Werner(0.999)
	var out fidelity.Bell
	for i := 0; i < 8; i++ {
		if res := q.Offer(in); res.Emitted {
			out = res.Output
		}
	}
	want := Rounds(DEJMPS{base}, in, 3)[2].State
	if diff := out.Fidelity() - want.Fidelity(); diff > 1e-12 || diff < -1e-12 {
		t.Errorf("queue output fidelity %g != tree fidelity %g", out.Fidelity(), want.Fidelity())
	}
}

func TestQueuePurifierPurificationCountsPerOffer(t *testing.T) {
	q := mustQueue(t, 3)
	in := fidelity.Werner(0.999)
	// Offers 1..8 trigger 0,1,0,2,0,1,0,3 purifications respectively
	// (binary carry pattern).
	want := []int{0, 1, 0, 2, 0, 1, 0, 3}
	for i, w := range want {
		res := q.Offer(in)
		if res.Purifications != w {
			t.Errorf("offer %d: %d purifications, want %d", i+1, res.Purifications, w)
		}
	}
}

func TestQueuePurifierFailureDiscardsSubtree(t *testing.T) {
	q := mustQueue(t, 2)
	q.Decide = func(float64) bool { return false } // every purification fails
	in := fidelity.Werner(0.9)
	for i := 0; i < 20; i++ {
		if res := q.Offer(in); res.Emitted {
			t.Fatal("nothing should ever be emitted when all purifications fail")
		}
	}
	offered, produced, purifies, discarded := q.Stats()
	if offered != 20 || produced != 0 {
		t.Errorf("offered=%d produced=%d", offered, produced)
	}
	if purifies == 0 || discarded != 2*purifies {
		t.Errorf("purifies=%d discarded=%d, want discarded = 2*purifies", purifies, discarded)
	}
}

func TestQueuePurifierRandomizedThroughput(t *testing.T) {
	// With real success probabilities (high-fidelity inputs, so ~0.99 per
	// round), throughput should be close to but no better than 1/8.
	q := mustQueue(t, 3)
	rng := rand.New(rand.NewSource(42))
	q.Decide = func(p float64) bool { return rng.Float64() < p }
	in := fidelity.Werner(0.995)
	const n = 8000
	for i := 0; i < n; i++ {
		q.Offer(in)
	}
	_, produced, _, _ := q.Stats()
	if produced > n/8 {
		t.Errorf("produced %d outputs from %d pairs, cannot beat 1/8", produced, n)
	}
	if produced < n/10 {
		t.Errorf("produced %d outputs from %d pairs, expected close to %d", produced, n, n/8)
	}
}

func TestQueuePurifierReset(t *testing.T) {
	q := mustQueue(t, 3)
	in := fidelity.Werner(0.99)
	for i := 0; i < 5; i++ {
		q.Offer(in)
	}
	if q.Occupancy() == 0 {
		t.Fatal("expected occupied levels before reset")
	}
	q.Reset()
	if q.Occupancy() != 0 {
		t.Error("levels should be empty after reset")
	}
	if offered, produced, purifies, discarded := q.Stats(); offered+produced+purifies+discarded != 0 {
		t.Error("stats should be zeroed after reset")
	}
}

// Property: for any depth 1..6 and any number of offers, the number of
// emitted outputs with always-success is offers / 2^depth, and occupancy
// encodes the binary representation of the remainder.
func TestQueuePurifierCountingProperty(t *testing.T) {
	f := func(depthRaw, offersRaw uint8) bool {
		depth := 1 + int(depthRaw)%6
		offers := int(offersRaw)
		q, err := NewQueuePurifier(DEJMPS{base}, depth)
		if err != nil {
			return false
		}
		in := fidelity.Werner(0.999)
		emitted := 0
		for i := 0; i < offers; i++ {
			if res := q.Offer(in); res.Emitted {
				emitted++
			}
		}
		if emitted != offers/TreePairs(depth) {
			return false
		}
		rem := offers % TreePairs(depth)
		occ := 0
		for rem > 0 {
			occ += rem & 1
			rem >>= 1
		}
		return q.Occupancy() == occ
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
