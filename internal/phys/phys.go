// Package phys defines the physical device parameters of an ion-trap
// quantum computer as used throughout the paper "Interconnection Networks
// for Scalable Quantum Computers" (ISCA 2006).
//
// The package centralizes the paper's Table 1 (operation time constants)
// and Table 2 (operation error probabilities) so that every model and
// simulator in this repository draws its numbers from a single, validated
// source.  All latencies are expressed as time.Duration; all error
// probabilities are dimensionless values in [0, 1).
package phys

import (
	"fmt"
	"time"
)

// Times holds the latency of each primitive ion-trap operation
// (paper Table 1).  A "cell" is the minimum distance of a ballistic move:
// one ion trap.
type Times struct {
	// OneQubitGate is the latency of a single-qubit gate (t1q).
	OneQubitGate time.Duration
	// TwoQubitGate is the latency of a two-qubit gate (t2q).
	TwoQubitGate time.Duration
	// MoveCell is the latency of ballistically moving an ion one cell (tmv).
	MoveCell time.Duration
	// Measure is the latency of measuring a qubit (tms).
	Measure time.Duration
	// ClassicalBitPerCell is the time for a classical bit to traverse one
	// cell of distance.  The paper assumes classical communication is
	// orders of magnitude faster than quantum operations; we default to
	// 1 ns/cell, which keeps the classical term negligible (as the paper
	// assumes) while still letting experiments account for it.
	ClassicalBitPerCell time.Duration
}

// Errors holds the error probability of each primitive ion-trap operation
// (paper Table 2).  Estimates in the paper come from the QLA
// microarchitecture study and the ARDA roadmap.
type Errors struct {
	// OneQubitGate is the depolarizing probability of a one-qubit gate (p1q).
	OneQubitGate float64
	// TwoQubitGate is the depolarizing probability of a two-qubit gate (p2q).
	TwoQubitGate float64
	// MoveCell is the per-cell decoherence probability of ballistic
	// movement (pmv).
	MoveCell float64
	// Measure is the probability a measurement reports the wrong
	// classical outcome (pms).
	Measure float64
}

// Params bundles the full device parameter set used by the channel models
// and the network simulator.
type Params struct {
	Times  Times
	Errors Errors
}

// IonTrap2006 returns the parameter set of the paper's Tables 1 and 2.
//
// Time constants (Table 1): t1q = 1 µs, t2q = 20 µs, tmv = 0.2 µs/cell,
// tms = 100 µs.  The derived constants tgen ≈ 122 µs, ttprt ≈ 122 µs and
// tprfy ≈ 121 µs are computed by the methods below rather than stored, so
// they stay consistent under parameter sweeps.
//
// Error probabilities (Table 2): p1q = 1e-8, p2q = 1e-7, pmv = 1e-6,
// pms = 1e-8.
func IonTrap2006() Params {
	return Params{
		Times: Times{
			OneQubitGate:        1 * time.Microsecond,
			TwoQubitGate:        20 * time.Microsecond,
			MoveCell:            200 * time.Nanosecond,
			Measure:             100 * time.Microsecond,
			ClassicalBitPerCell: 1 * time.Nanosecond,
		},
		Errors: Errors{
			OneQubitGate: 1e-8,
			TwoQubitGate: 1e-7,
			MoveCell:     1e-6,
			Measure:      1e-8,
		},
	}
}

// WithUniformError returns a copy of p with every operation error
// probability (one-qubit gate, two-qubit gate, per-cell movement and
// measurement) set to rate.  This is the sweep used by the paper's
// Figure 12 sensitivity study.
func (p Params) WithUniformError(rate float64) Params {
	p.Errors = Errors{
		OneQubitGate: rate,
		TwoQubitGate: rate,
		MoveCell:     rate,
		Measure:      rate,
	}
	return p
}

// Scale returns a copy of p with all error probabilities multiplied by
// factor (clamped to [0, 1)).  Useful for sensitivity sweeps around the
// baseline technology point.
func (p Params) Scale(factor float64) Params {
	clamp := func(x float64) float64 {
		if x < 0 {
			return 0
		}
		if x >= 1 {
			return 1 - 1e-15
		}
		return x
	}
	p.Errors.OneQubitGate = clamp(p.Errors.OneQubitGate * factor)
	p.Errors.TwoQubitGate = clamp(p.Errors.TwoQubitGate * factor)
	p.Errors.MoveCell = clamp(p.Errors.MoveCell * factor)
	p.Errors.Measure = clamp(p.Errors.Measure * factor)
	return p
}

// Validate reports an error if any latency is non-positive or any error
// probability lies outside [0, 1).
func (p Params) Validate() error {
	type namedDur struct {
		name string
		d    time.Duration
	}
	for _, nd := range []namedDur{
		{"OneQubitGate", p.Times.OneQubitGate},
		{"TwoQubitGate", p.Times.TwoQubitGate},
		{"MoveCell", p.Times.MoveCell},
		{"Measure", p.Times.Measure},
	} {
		if nd.d <= 0 {
			return fmt.Errorf("phys: time constant %s must be positive, got %v", nd.name, nd.d)
		}
	}
	if p.Times.ClassicalBitPerCell < 0 {
		return fmt.Errorf("phys: ClassicalBitPerCell must be non-negative, got %v", p.Times.ClassicalBitPerCell)
	}
	type namedProb struct {
		name string
		p    float64
	}
	for _, np := range []namedProb{
		{"OneQubitGate", p.Errors.OneQubitGate},
		{"TwoQubitGate", p.Errors.TwoQubitGate},
		{"MoveCell", p.Errors.MoveCell},
		{"Measure", p.Errors.Measure},
	} {
		if np.p < 0 || np.p >= 1 {
			return fmt.Errorf("phys: error probability %s must be in [0,1), got %g", np.name, np.p)
		}
	}
	return nil
}

// GenerateTime is the latency of generating an EPR pair (tgen in Table 1).
// Generation of the entangled pair itself needs one single- and one
// double-qubit gate (~21 µs, as the paper notes under Eq 4); the Table 1
// entry of 122 µs additionally accounts for the verification measurement
// round performed at the generator.  We model tgen = t1q + t2q + tms + t1q
// = 122 µs with the default constants, matching Table 1.
func (p Params) GenerateTime() time.Duration {
	return 2*p.Times.OneQubitGate + p.Times.TwoQubitGate + p.Times.Measure
}

// TeleportTime is the latency of one teleportation over a classical
// distance of cells (Eq 5):
//
//	t = 2·t1q + t2q + tms + tclassical·D
//
// With Table 1 constants and negligible classical time this is ~122 µs,
// matching the ttprt entry.
func (p Params) TeleportTime(cells int) time.Duration {
	if cells < 0 {
		cells = 0
	}
	return 2*p.Times.OneQubitGate + p.Times.TwoQubitGate + p.Times.Measure +
		time.Duration(cells)*p.Times.ClassicalBitPerCell
}

// PurifyRoundTime is the latency of one round of purification over a
// classical distance of cells (Eq 6):
//
//	t = t2q + tms + tclassical·D
//
// With Table 1 constants this is ~121 µs (the tprfy entry) when the
// classical term is small, with a half-microsecond of single-qubit setup
// included in t2q's shadow; we follow Eq 6 literally.
func (p Params) PurifyRoundTime(cells int) time.Duration {
	if cells < 0 {
		cells = 0
	}
	return p.Times.TwoQubitGate + p.Times.Measure +
		time.Duration(cells)*p.Times.ClassicalBitPerCell
}

// BallisticTime is the latency of ballistically moving an ion across
// cells ion traps (Eq 2).
func (p Params) BallisticTime(cells int) time.Duration {
	if cells < 0 {
		cells = 0
	}
	return time.Duration(cells) * p.Times.MoveCell
}

// CrossoverCells returns the smallest distance in cells at which a single
// teleportation (whose EPR pair is pre-distributed) is faster than
// ballistic transport over the same distance.  The paper derives ~600
// cells from Table 1 and adopts it as the teleporter-grid hop length.
func (p Params) CrossoverCells() int {
	// Solve tmv·D >= tteleport(D) for the smallest integer D.  Both sides
	// are linear in D, so do it directly; guard against a classical
	// per-cell time exceeding the movement time (no crossover).
	perCellQuantum := p.Times.MoveCell
	perCellClassical := p.Times.ClassicalBitPerCell
	if perCellQuantum <= perCellClassical {
		return -1
	}
	fixed := 2*p.Times.OneQubitGate + p.Times.TwoQubitGate + p.Times.Measure
	d := int(fixed/(perCellQuantum-perCellClassical)) + 1
	return d
}

// String renders the parameter set as a compact human-readable summary.
func (p Params) String() string {
	return fmt.Sprintf(
		"phys.Params{t1q=%v t2q=%v tmv=%v/cell tms=%v | p1q=%.1e p2q=%.1e pmv=%.1e pms=%.1e}",
		p.Times.OneQubitGate, p.Times.TwoQubitGate, p.Times.MoveCell, p.Times.Measure,
		p.Errors.OneQubitGate, p.Errors.TwoQubitGate, p.Errors.MoveCell, p.Errors.Measure,
	)
}
