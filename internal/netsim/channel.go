package netsim

import (
	"fmt"
	"time"

	"repro/internal/fault"
	"repro/internal/mesh"
	"repro/internal/route"
	"repro/internal/workload"
)

// dropBudgetPerBatch bounds the resend attempts of one channel at this
// many transmissions per logical batch: under any admissible drop rate
// the expected attempt count is far below it, so hitting the budget
// means the fault pattern is effectively severing the channel — the
// run then fails with a structured *fault.ExcessiveLossError instead
// of simulating (bounded but absurdly long) retry storms.  Only faulty
// runs enforce it; a healthy run's resends (purification failures) are
// governed by PurifyFailureRate < 1 alone, exactly as before the fault
// layer.
const dropBudgetPerBatch = 1000

// channel sets up a quantum channel from src to dst and teleports a
// logical qubit across it, calling done when the data has arrived.
//
// Pipeline per batch of 2^PurifyDepth pairs (one purified output):
//
//	for each hop: [storage credit at next tile] -> [link pairs from the
//	G node] -> [turn penalty if changing axis] -> [teleporter from the
//	directional set] -> next hop
//	then: [corrector] -> [queue purifier at both endpoints] -> output
//
// When all numBatches outputs are ready, the logical qubit's physical
// qubits teleport over (in parallel, one delivered pair each).
func (s *simulator) channel(src, dst mesh.Coord, done func()) {
	if s.err != nil {
		return // aborted run: issue nothing more, let the engine drain
	}
	if src == dst {
		s.localOps++
		done()
		return
	}
	s.channels++
	start := s.engine.Now()

	// The routing policy decides the hop path at setup time; adaptive
	// policies see the routers' live loads through the loads adapter.
	// Deterministic policies answer repeated (src, dst) pairs from the
	// per-run route cache, skipping the policy call, the Follow
	// validation walk and both slice allocations.  (The cache is scoped
	// to one run, hence to one materialized fault pattern, so caching
	// fault-aware routes is sound.)
	srcIdx, dstIdx := s.cfg.Grid.Index(src), s.cfg.Grid.Index(dst)
	var dirs []mesh.Direction
	var tiles []mesh.Coord
	if s.routes != nil {
		dirs, tiles = s.routes.get(srcIdx, dstIdx)
	}
	if dirs == nil {
		var err error
		dirs, err = s.routeChannel(src, dst)
		if err != nil {
			// A structured routing failure on the faulty mesh (blocked
			// path, partition): abort the run cleanly.
			s.fail(err)
			return
		}
		tiles, err = s.cfg.Grid.Follow(src, dirs)
		if err != nil {
			panic(err) // a policy that walks off the mesh is a policy bug
		}
		if tiles[len(tiles)-1] != dst {
			panic(fmt.Sprintf("netsim: policy %q routed %v to %v, want %v",
				s.policy.Name(), src, tiles[len(tiles)-1], dst))
		}
		if s.routes != nil {
			s.routes.put(srcIdx, dstIdx, dirs, tiles)
		}
	}

	ch := &channelRun{
		sim: s,
		src: src,
		dst: dst,
		done: func() {
			s.latencies.Add(float64(s.engine.Now() - start))
			done()
		},
	}
	ch.base = batchFlight{ch: ch, dirs: dirs, tiles: tiles}
	if s.faults != nil {
		ch.budget = dropBudgetPerBatch * uint64(s.numBatches)
	}
	for b := 0; b < s.numBatches; b++ {
		ch.startBatch()
	}
}

// routeChannel resolves one channel's hop path under the run's fault
// model.  A fault-aware policy routes on the live topology (and may
// return a structured *fault.UnreachableError on a partitioned pair);
// any other policy keeps its fault-oblivious path, which is then
// validated link by link — a path crossing a dead link is a structured
// *fault.RouteBlockedError, never a silent teleport across a hole.
func (s *simulator) routeChannel(src, dst mesh.Coord) ([]mesh.Direction, error) {
	if fa, ok := s.policy.(route.FaultAware); ok && s.faults != nil {
		return fa.RouteFaulty(s.cfg.Grid, src, dst, s.faults, loads{s})
	}
	dirs, err := s.policy.Route(s.cfg.Grid, src, dst, loads{s})
	if err != nil {
		panic(err) // placements are validated against the grid
	}
	if s.faults != nil && s.faults.HasDeadLinks() {
		cur := src
		for _, d := range dirs {
			if s.faults.Dead(cur, d) {
				return nil, &fault.RouteBlockedError{Src: src, Dst: dst, At: cur, Policy: s.policy.Name()}
			}
			cur = cur.Step(d)
		}
	}
	return dirs, nil
}

// channelRun tracks one channel's in-flight batches.
type channelRun struct {
	sim      *simulator
	src, dst mesh.Coord
	// base is the channel's setup-time path, shared read-only by every
	// batch that follows it; resent batches of an adaptive policy may
	// fly a fresher path (see resend).
	base    batchFlight
	outputs int
	done    func()
	// attempts counts batch transmissions (initial sends plus drop and
	// purification resends); budget caps them on a faulty mesh (0 = no
	// cap, the healthy-mesh behavior).
	attempts uint64
	budget   uint64
	finished bool
}

// batchFlight is the path one batch flies: a dirs/tiles pair the hop
// chain indexes into.  It is immutable once built — in-flight batches
// release storage by indexing their own path, so a path is never
// mutated while any batch references it.  All initial batches share
// the channel's base flight; only adaptive-policy resends allocate a
// fresh one.
type batchFlight struct {
	ch    *channelRun
	dirs  []mesh.Direction
	tiles []mesh.Coord
}

func (ch *channelRun) startBatch() {
	if ch.sim.err != nil {
		return
	}
	if !ch.admit() {
		return
	}
	ch.base.hop(0)
}

// admit counts one batch transmission against the resend budget,
// failing the run with a structured error once a faulty mesh exhausts
// it.
func (ch *channelRun) admit() bool {
	ch.attempts++
	if ch.budget > 0 && ch.attempts > ch.budget {
		ch.sim.fail(&fault.ExcessiveLossError{
			Src:      ch.src,
			Dst:      ch.dst,
			Attempts: ch.attempts - 1,
		})
		return false
	}
	return true
}

// resend injects a replacement batch after a drop or a purification
// failure.  This is where the stale-load fix lives: an adaptive policy
// (one without a route cache) re-routes the replacement with the
// routers' *current* loads — the congestion that built up since channel
// setup, read through the same counters the tracer samples — instead of
// replaying a path chosen from a snapshot that may be long stale.
// Deterministic policies re-fly the cached path unchanged, and healthy
// deterministic runs never resend at all, so their results stay
// byte-identical to the pre-fix simulator.  If re-routing fails (e.g. a
// transiently blocked faulty path), the batch falls back to the
// channel's validated setup-time path.
func (ch *channelRun) resend() {
	s := ch.sim
	if s.err != nil {
		return
	}
	if !ch.admit() {
		return
	}
	f := &ch.base
	if s.routes == nil {
		if nf := ch.reroute(); nf != nil {
			f = nf
		}
	}
	if t := s.cfg.Trace; t != nil {
		li := s.cfg.Grid.LinkIndex(s.cfg.Grid.LinkFrom(f.tiles[0], f.dirs[0]))
		t.RecordResend(s.engine.Now(), li)
	}
	f.hop(0)
}

// reroute resolves a fresh path for a replacement batch under the live
// loads, or nil to keep the setup-time path.  All shipped adaptive
// policies are minimal, so the fresh path's hop count (and with it the
// batch's purification and delivery latencies) matches the original.
func (ch *channelRun) reroute() *batchFlight {
	s := ch.sim
	dirs, err := s.routeChannel(ch.src, ch.dst)
	if err != nil {
		return nil
	}
	tiles, err := s.cfg.Grid.Follow(ch.src, dirs)
	if err != nil || tiles[len(tiles)-1] != ch.dst {
		return nil
	}
	return &batchFlight{ch: ch, dirs: dirs, tiles: tiles}
}

// hop advances a batch from tiles[i] to tiles[i+1].
func (f *batchFlight) hop(i int) {
	ch := f.ch
	s := ch.sim
	from := f.tiles[i]
	to := f.tiles[i+1]
	dir := f.dirs[i]

	// Storage at the receiving T' node: traffic arrives from the
	// opposite direction of travel.
	store := s.nodes[s.cfg.Grid.Index(to)].Storage(dir.Opposite())
	store.Acquire(func() {
		// Link pairs from the G node of the crossed link: a dense-slice
		// lookup via the canonical link index, no map hashing.
		li := s.cfg.Grid.LinkIndex(s.cfg.Grid.LinkFrom(from, dir))
		g := s.gnodes[li]
		g.Serve(s.genLatency(), func() {
			// Teleporter from the sending node's directional set, plus a
			// turn penalty when the route changes axis at this node.
			node := s.nodes[s.cfg.Grid.Index(from)]
			latency := s.teleportLatency()
			if i > 0 && f.dirs[i-1].Axis() != dir.Axis() {
				latency += node.TurnPenalty()
				s.turns++
			}
			node.TeleporterSet(dir.Axis()).Serve(latency, func() {
				s.pairHops += uint64(s.cfg.batchPairs())
				for k := 0; k < s.cfg.batchPairs(); k++ {
					s.net.RecordTeleport()
				}
				// The batch now occupies storage at `to`; it frees its
				// slot at the previous tile (held since the prior hop).
				if i > 0 {
					prev := s.nodes[s.cfg.Grid.Index(from)].Storage(f.dirs[i-1].Opposite())
					prev.Release()
				}
				if ch.droppedOn(li) {
					// The fault model dropped the batch on this link: it
					// frees the slot it just occupied and a replacement
					// is sent from the channel source (budget permitting).
					store.Release()
					s.droppedBatches++
					if t := s.cfg.Trace; t != nil {
						t.RecordDrop(s.engine.Now(), li)
					}
					ch.resend()
					return
				}
				if i+1 < len(f.dirs) {
					f.hop(i + 1)
				} else {
					f.arrive()
				}
			})
		})
	})
}

// droppedOn draws the fault model's Bernoulli for a batch crossing the
// link with the given canonical index.  On a healthy mesh — or a live
// link with zero drop rate — it never consults the RNG, keeping the
// draw stream of drop-free runs byte-identical to the pre-fault-layer
// simulator.
func (ch *channelRun) droppedOn(li int) bool {
	s := ch.sim
	if s.faults == nil {
		return false
	}
	rate := s.faults.DropByIndex(li)
	return rate > 0 && s.rng.Float64() < rate
}

// arrive runs the endpoint stages for one batch: correction, then
// synchronized queue purification at both endpoint P nodes.
func (f *batchFlight) arrive() {
	ch := f.ch
	s := ch.sim
	last := len(f.tiles) - 1
	dstIdx := s.cfg.Grid.Index(f.tiles[last])
	srcIdx := s.cfg.Grid.Index(f.tiles[0])

	// Corrector: the accumulated Pauli frame costs at most two
	// single-qubit gates, applied to each pair of the batch in parallel.
	correct := 2 * s.cfg.Params.Times.OneQubitGate
	s.engine.Schedule(correct, func() {
		// Queue purification holds one purifier unit at each endpoint,
		// acquired in canonical index order to prevent circular wait.
		lo, hi := srcIdx, dstIdx
		if lo > hi {
			lo, hi = hi, lo
		}
		s.purify[lo].Acquire(func() {
			s.purify[hi].Acquire(func() {
				// Purify: free the arrival storage slot as the batch
				// drains into the purifier.
				storeDir := f.dirs[len(f.dirs)-1].Opposite()
				s.nodes[dstIdx].Storage(storeDir).Release()
				latency := s.purifyBatchLatency(len(f.dirs))
				rounds := s.cfg.batchPairs() - 1 // tree of 2^d leaves has 2^d - 1 purifications
				for k := 0; k < rounds; k++ {
					s.net.RecordPurify()
				}
				s.engine.Schedule(latency, func() {
					s.purify[hi].Release()
					s.purify[lo].Release()
					if s.cfg.PurifyFailureRate > 0 && s.rng.Float64() < s.cfg.PurifyFailureRate {
						// The subtree is lost; send a replacement batch
						// through the network (Figure 14's natural
						// rebuild).
						s.failedBatches++
						ch.resend()
						return
					}
					ch.output()
				})
			})
		})
	})
}

// output counts a purified pair; when all batches have produced theirs,
// the data teleport fires.
func (ch *channelRun) output() {
	s := ch.sim
	ch.outputs++
	if ch.outputs < s.numBatches || ch.finished {
		return
	}
	ch.finished = true
	// All physical qubits of the logical qubit teleport in parallel,
	// each consuming one delivered pair; the latency is one teleport
	// plus the classical correction round trip over the setup-time path
	// (the channel-level delivery metric; minimal-policy resends fly
	// paths of the same length).
	latency := s.cfg.Params.TeleportTime(len(ch.base.dirs)*s.cfg.HopCells) +
		s.net.Latency(len(ch.base.dirs))
	s.engine.Schedule(latency, ch.done)
}

// genLatency is the G-node service time for one batch of link pairs.
func (s *simulator) genLatency() time.Duration {
	return s.cfg.Params.GenerateTime() * time.Duration(ceilDiv(s.cfg.batchPairs(), s.cfg.Generators))
}

// teleportLatency is the teleporter-set service time for one batch: the
// set's units work in parallel, so a batch needs ceil(batch/setSize)
// rounds of the hop-local teleport time.
func (s *simulator) teleportLatency() time.Duration {
	setSize := s.cfg.Teleporters / 2
	if setSize < 1 {
		setSize = 1
	}
	rounds := ceilDiv(s.cfg.batchPairs(), setSize)
	per := s.cfg.Params.TeleportTime(s.cfg.HopCells)
	return per * time.Duration(rounds)
}

// purifyBatchLatency is the queue-purifier makespan for one batch: the
// bottom level performs 2^(depth-1) sequential purifications and the
// remaining levels add a pipeline-drain tail of depth-1 rounds; each
// round exchanges classical bits across the channel (Eq 6).
func (s *simulator) purifyBatchLatency(hops int) time.Duration {
	depth := s.cfg.PurifyDepth
	rounds := 1<<uint(depth-1) + depth - 1
	per := s.cfg.Params.PurifyRoundTime(hops * s.cfg.HopCells)
	return per * time.Duration(rounds)
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// result assembles the Result from the simulator's counters.
func (s *simulator) result(prog workload.Program) Result {
	res := Result{
		Exec:           s.engine.Now(),
		Ops:            len(prog.Ops),
		Channels:       s.channels,
		LocalOps:       s.localOps,
		PairsDelivered: s.channels * uint64(s.numBatches*s.cfg.batchPairs()),
		PairHops:       s.pairHops,
		Turns:          s.turns,
		Events:         s.engine.Processed(),
	}
	msgs, _, _, _ := s.net.Stats()
	res.ClassicalMessages = msgs
	res.FailedBatches = s.failedBatches
	res.DroppedBatches = s.droppedBatches
	if s.faults != nil {
		res.DeadLinks = s.faults.DeadCount()
	}
	if s.latencies.Count() > 0 {
		res.MeanChannelLatency = time.Duration(s.latencies.Mean())
		res.MaxChannelLatency = time.Duration(s.latencies.Max())
	}
	var tu float64
	for _, n := range s.nodes {
		tu += n.Utilization()
	}
	res.TeleporterUtil = tu / float64(len(s.nodes))
	var gu float64
	for _, g := range s.gnodes {
		gu += g.Utilization()
	}
	if len(s.gnodes) > 0 {
		res.GeneratorUtil = gu / float64(len(s.gnodes))
	}
	var pu float64
	for _, p := range s.purify {
		pu += p.Utilization()
	}
	res.PurifierUtil = pu / float64(len(s.purify))
	return res
}
