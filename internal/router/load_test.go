package router

import (
	"testing"

	"repro/internal/mesh"
	"repro/internal/phys"
	"repro/internal/sim"
)

// loadNode builds a 4-teleporter node with 2 storage units per incoming
// link for the load-accounting tests.
func loadNode(t *testing.T) *Node {
	t.Helper()
	engine := sim.New()
	n, err := New(engine, mesh.Coord{X: 1, Y: 1},
		[]mesh.Direction{mesh.East, mesh.West, mesh.North, mesh.South},
		Config{Teleporters: 4, StorageUnits: 2, TurnCells: 20, Params: phys.IonTrap2006()})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// TestTurnPenaltyChargesPerCall asserts the ballistic turn penalty is
// a fixed per-turn latency and that every charge is counted exactly
// once: n calls mean n turns, each costing BallisticTime(TurnCells),
// and zero calls mean a zero count (a straight-line path never pays).
func TestTurnPenaltyChargesPerCall(t *testing.T) {
	n := loadNode(t)
	if n.Turns() != 0 {
		t.Fatalf("fresh node reports %d turns", n.Turns())
	}
	want := phys.IonTrap2006().BallisticTime(20)
	for i := 1; i <= 3; i++ {
		if got := n.TurnPenalty(); got != want {
			t.Errorf("turn %d: penalty %v, want %v", i, got, want)
		}
		if n.Turns() != uint64(i) {
			t.Errorf("after %d charges: count %d", i, n.Turns())
		}
	}
}

// TestAxisLoadAccountsServiceAndQueue asserts AxisLoad reflects both
// in-service and waiting jobs, normalized by the set capacity, and
// stays per-axis.
func TestAxisLoadAccountsServiceAndQueue(t *testing.T) {
	n := loadNode(t)
	if n.AxisLoad(0) != 0 || n.AxisLoad(1) != 0 {
		t.Fatalf("idle node reports load %v/%v", n.AxisLoad(0), n.AxisLoad(1))
	}
	// The X set has 2 units (4 teleporters split across two axes).
	// Occupy both, then queue a third job.
	x := n.TeleporterSet(0)
	for i := 0; i < 3; i++ {
		x.Acquire(func() {})
	}
	if got := n.AxisLoad(0); got != 1.5 {
		t.Errorf("AxisLoad(0) = %v, want 1.5 (2 busy + 1 queued over capacity 2)", got)
	}
	if got := n.AxisLoad(1); got != 0 {
		t.Errorf("AxisLoad(1) = %v, want 0 (loads must not leak across axes)", got)
	}
}

// TestStorageLoadAccountsCreditsAndWaiters asserts StorageLoad tracks
// taken credits plus queued acquirers, and returns zero for absent
// links.
func TestStorageLoadAccountsCreditsAndWaiters(t *testing.T) {
	n := loadNode(t)
	s := n.Storage(mesh.East)
	if got := n.StorageLoad(mesh.East); got != 0 {
		t.Fatalf("empty storage load %v", got)
	}
	s.Acquire(func() {})
	if got := n.StorageLoad(mesh.East); got != 0.5 {
		t.Errorf("half-full storage load %v, want 0.5", got)
	}
	s.Acquire(func() {})
	s.Acquire(func() {}) // queued: no credits left
	if got := n.StorageLoad(mesh.East); got != 1.5 {
		t.Errorf("overloaded storage load %v, want 1.5", got)
	}
	// A border node without a link in some direction reports zero.
	engine := sim.New()
	border, err := New(engine, mesh.Coord{X: 0, Y: 0}, []mesh.Direction{mesh.East},
		Config{Teleporters: 4, StorageUnits: 2, Params: phys.IonTrap2006()})
	if err != nil {
		t.Fatal(err)
	}
	if got := border.StorageLoad(mesh.West); got != 0 {
		t.Errorf("absent link storage load %v, want 0", got)
	}
}
