// Command figures regenerates every table and figure of the paper
// "Interconnection Networks for Scalable Quantum Computers" (ISCA 2006)
// from the models in this repository.
//
// Simulator-backed figures (16 and the kernel table) are measured as
// seed ensembles with 95% confidence intervals, and their runs are
// content-addressed: with -cache-dir, results persist on disk and a
// re-run that changed nothing (or one dimension) only simulates what
// is new.  Cache traffic is reported on stderr, so stdout stays
// byte-identical between a cold and a warm run.
//
// Usage:
//
//	figures -fig all                    # every table and figure, text output
//	figures -fig 8                      # Figure 8 (purification protocols)
//	figures -fig 16 -grid 16            # Figure 16 at the paper's full scale
//	figures -fig 16 -cache-dir .qnet    # incremental re-generation
//	figures -fig 16 -seeds 10 -failure 0.05  # stochastic ensemble, real error bars
//	figures -fig 10 -format csv         # machine-readable output
//
// Figures: table1, table2, claims, 8, 9, 10, 11, 12, 16, memm,
// routing, congestion, all.  The routing table crosses the Figure 16
// layouts with every routing policy (qnet/route) and Welch-tests each
// policy's execution ensemble against the dimension-order baseline.
// The congestion figure traces one run through qnet/trace and renders
// per-link utilization over simulated time as a heatmap.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/figures"
	"repro/internal/report"

	"repro/qnet"
	"repro/qnet/channel"
	"repro/qnet/simulate"
)

func main() {
	var (
		fig      = flag.String("fig", "all", "which figure to regenerate: table1, table2, claims, 8, 9, 10, 11, 12, 16, memm, routing, congestion, all")
		format   = flag.String("format", "text", "output format: text or csv")
		grid     = flag.Int("grid", 8, "mesh edge length for figure 16 (paper: 16)")
		area     = flag.Int("area", 48, "per-tile resource budget t+g+p for figure 16")
		hops     = flag.Int("hops", 10, "path length in hops for figure 12")
		noPlots  = flag.Bool("no-plots", false, "suppress ASCII plots in text mode")
		cacheDir = flag.String("cache-dir", "", "directory for the on-disk result cache (empty: in-memory only)")
		seeds    = flag.Int("seeds", 5, "ensemble size (seeds per simulated point) for figures 16 and memm")
		failure  = flag.Float64("failure", 0, "purification failure-injection rate (0 keeps runs deterministic)")
	)
	flag.Parse()

	if err := run(os.Stdout, options{
		fig:      *fig,
		format:   *format,
		grid:     *grid,
		area:     *area,
		hops:     *hops,
		noPlots:  *noPlots,
		cacheDir: *cacheDir,
		seeds:    *seeds,
		failure:  *failure,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
}

// options carries the parsed command line.
type options struct {
	fig, format      string
	grid, area, hops int
	noPlots          bool
	cacheDir         string
	seeds            int
	failure          float64
}

// seedList expands -seeds N to the canonical ensemble {1..N}.
func (o options) seedList() []int64 { return simulate.SeedRange(o.seeds) }

func run(w io.Writer, o options) error {
	if o.format != "text" && o.format != "csv" {
		return fmt.Errorf("unknown format %q", o.format)
	}
	emit := func(t *report.Table, p *report.Plot) error {
		if o.format == "csv" {
			return t.WriteCSV(w)
		}
		if err := t.WriteText(w); err != nil {
			return err
		}
		if p != nil && !o.noPlots {
			fmt.Fprintln(w)
			if err := p.Write(w); err != nil {
				return err
			}
		}
		fmt.Fprintln(w)
		return nil
	}

	// One result cache shared by every simulator-backed figure of this
	// invocation; disk-backed when -cache-dir is set, so the next
	// invocation starts warm.
	var cache *simulate.Cache
	if o.cacheDir != "" {
		var err error
		if cache, err = simulate.NewDiskCache(o.cacheDir, 0); err != nil {
			return err
		}
	} else {
		cache = simulate.NewCache(0)
	}

	base := qnet.IonTrap2006()
	wanted := strings.Split(o.fig, ",")
	has := func(name string) bool {
		for _, f := range wanted {
			if f == name || f == "all" {
				return true
			}
		}
		return false
	}
	matched := false

	if has("table1") {
		matched = true
		if err := emit(figures.Table1(base), nil); err != nil {
			return err
		}
	}
	if has("table2") {
		matched = true
		if err := emit(figures.Table2(base), nil); err != nil {
			return err
		}
	}
	if has("claims") {
		matched = true
		if err := emit(figures.Claims(base), nil); err != nil {
			return err
		}
	}
	if has("8") {
		matched = true
		t, p := figures.Fig8(base, 25)
		if err := emit(t, p); err != nil {
			return err
		}
	}
	if has("9") {
		matched = true
		t, p := figures.Fig9(base, 70)
		if err := emit(t, p); err != nil {
			return err
		}
	}
	if has("10") {
		matched = true
		t, p := figures.Fig10(channel.DefaultDistribution(base), false)
		if err := emit(t, p); err != nil {
			return err
		}
	}
	if has("11") {
		matched = true
		t, p := figures.Fig10(channel.DefaultDistribution(base), true)
		if err := emit(t, p); err != nil {
			return err
		}
	}
	if has("12") {
		matched = true
		t, p := figures.Fig12(base, o.hops)
		if err := emit(t, p); err != nil {
			return err
		}
	}
	if has("16") {
		matched = true
		cfg := figures.DefaultFig16Config()
		cfg.GridSize = o.grid
		cfg.Area = o.area
		cfg.Seeds = o.seedList()
		cfg.FailureRate = o.failure
		cfg.Cache = cache
		data, err := figures.Fig16(cfg)
		if err != nil {
			return err
		}
		if err := emit(data.Table(), data.Plot()); err != nil {
			return err
		}
		fmt.Fprintln(os.Stderr, "figures: fig16 sweep:", data.Sweep)
	}
	if has("memm") {
		matched = true
		cfg := figures.DefaultMEMMConfig(o.grid)
		cfg.Seeds = o.seedList()
		cfg.FailureRate = o.failure
		cfg.Cache = cache
		data, err := figures.MEMM(cfg)
		if err != nil {
			return err
		}
		if err := emit(data.Table, nil); err != nil {
			return err
		}
		fmt.Fprintln(os.Stderr, "figures: memm sweep:", data.Sweep)
	}
	if has("routing") {
		matched = true
		cfg := figures.DefaultRoutingConfig(o.grid)
		cfg.Seeds = o.seedList()
		cfg.FailureRate = o.failure
		cfg.Cache = cache
		data, err := figures.Routing(cfg)
		if err != nil {
			return err
		}
		if err := emit(data.Table(), nil); err != nil {
			return err
		}
		fmt.Fprintln(os.Stderr, "figures: routing sweep:", data.Sweep)
	}
	if has("congestion") {
		matched = true
		cfg := figures.DefaultCongestionConfig(o.grid)
		cfg.FailureRate = o.failure
		cfg.Cache = cache
		data, err := figures.Congestion(cfg)
		if err != nil {
			return err
		}
		if err := emit(data.Table(), nil); err != nil {
			return err
		}
		if o.format == "text" && !o.noPlots {
			fmt.Fprintln(w, data.Heatmap())
		}
	}
	if !matched {
		return fmt.Errorf("unknown figure %q (want table1, table2, claims, 8, 9, 10, 11, 12, 16, memm, routing, congestion or all)", o.fig)
	}
	if s := cache.Stats(); s.Hits+s.Misses > 0 {
		fmt.Fprintln(os.Stderr, "figures: result cache:", s)
	}
	return nil
}
