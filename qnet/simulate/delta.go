// Per-run delta analytics: structured comparison of two Results.
//
// A Session records every run; Delta compares two of them metric by
// metric, so an ablation ("what did doubling the purifier count buy?")
// reads as a signed report instead of two tables to eyeball.  The
// distributed coordinator (qnet/distrib) reuses Diff as its
// shard-merge sanity check: a freshly simulated point whose stored
// twin differs by a nonzero delta means a worker diverged.

package simulate

import (
	"fmt"
	"strings"
	"time"

	"repro/qnet"
)

// ResultDelta is the signed metric-by-metric difference between two
// Results (b minus a, field for field).  The zero value means the two
// runs agreed on every metric.
type ResultDelta struct {
	// Exec is the execution-time difference.
	Exec time.Duration
	// Ops is the logical-operation count difference.
	Ops int
	// Channels is the quantum-channel count difference.
	Channels int64
	// LocalOps is the difference in ops needing no network.
	LocalOps int64
	// PairsDelivered is the delivered-EPR-pair difference.
	PairsDelivered int64
	// PairHops is the pair-teleportation (network strain) difference.
	PairHops int64
	// Turns is the in-router X/Y turn count difference.
	Turns int64
	// Events is the simulation-event count difference.
	Events int64
	// ClassicalMessages is the control-message count difference.
	ClassicalMessages int64
	// FailedBatches is the injected-failure batch count difference.
	FailedBatches int64
	// DroppedBatches is the fault-model link-drop count difference.
	DroppedBatches int64
	// DeadLinks is the dead-link count difference.
	DeadLinks int
	// MeanChannelLatency is the mean channel-latency difference.
	MeanChannelLatency time.Duration
	// MaxChannelLatency is the worst channel-latency difference.
	MaxChannelLatency time.Duration
	// TeleporterUtil, GeneratorUtil and PurifierUtil are the mean
	// resource-utilization differences.
	TeleporterUtil, GeneratorUtil, PurifierUtil float64
}

// Diff returns the metric deltas of b relative to a: positive fields
// mean b is larger.  Two equal Results produce the zero delta.
func Diff(a, b Result) ResultDelta {
	return ResultDelta{
		Exec:               b.Exec - a.Exec,
		Ops:                b.Ops - a.Ops,
		Channels:           int64(b.Channels) - int64(a.Channels),
		LocalOps:           int64(b.LocalOps) - int64(a.LocalOps),
		PairsDelivered:     int64(b.PairsDelivered) - int64(a.PairsDelivered),
		PairHops:           int64(b.PairHops) - int64(a.PairHops),
		Turns:              int64(b.Turns) - int64(a.Turns),
		Events:             int64(b.Events) - int64(a.Events),
		ClassicalMessages:  int64(b.ClassicalMessages) - int64(a.ClassicalMessages),
		FailedBatches:      int64(b.FailedBatches) - int64(a.FailedBatches),
		DroppedBatches:     int64(b.DroppedBatches) - int64(a.DroppedBatches),
		DeadLinks:          b.DeadLinks - a.DeadLinks,
		MeanChannelLatency: b.MeanChannelLatency - a.MeanChannelLatency,
		MaxChannelLatency:  b.MaxChannelLatency - a.MaxChannelLatency,
		TeleporterUtil:     b.TeleporterUtil - a.TeleporterUtil,
		GeneratorUtil:      b.GeneratorUtil - a.GeneratorUtil,
		PurifierUtil:       b.PurifierUtil - a.PurifierUtil,
	}
}

// IsZero reports whether every metric delta is zero, i.e. the two
// compared Results were identical.
func (d ResultDelta) IsZero() bool { return d == ResultDelta{} }

// String renders only the nonzero deltas, signed and named
// ("exec +1.2ms, events +340, turns -12"), or "no change" for the
// zero delta.
func (d ResultDelta) String() string {
	var parts []string
	addInt := func(name string, v int64) {
		if v != 0 {
			parts = append(parts, fmt.Sprintf("%s %+d", name, v))
		}
	}
	addDur := func(name string, v time.Duration) {
		if v > 0 {
			parts = append(parts, fmt.Sprintf("%s +%v", name, v))
		} else if v < 0 {
			parts = append(parts, fmt.Sprintf("%s %v", name, v))
		}
	}
	addFloat := func(name string, v float64) {
		if v != 0 {
			parts = append(parts, fmt.Sprintf("%s %+.4f", name, v))
		}
	}
	addDur("exec", d.Exec)
	addInt("ops", int64(d.Ops))
	addInt("channels", d.Channels)
	addInt("local-ops", d.LocalOps)
	addInt("pairs", d.PairsDelivered)
	addInt("pair-hops", d.PairHops)
	addInt("turns", d.Turns)
	addInt("events", d.Events)
	addInt("classical-msgs", d.ClassicalMessages)
	addInt("failed-batches", d.FailedBatches)
	addInt("dropped-batches", d.DroppedBatches)
	addInt("dead-links", int64(d.DeadLinks))
	addDur("mean-latency", d.MeanChannelLatency)
	addDur("max-latency", d.MaxChannelLatency)
	addFloat("teleporter-util", d.TeleporterUtil)
	addFloat("generator-util", d.GeneratorUtil)
	addFloat("purifier-util", d.PurifierUtil)
	if len(parts) == 0 {
		return "no change"
	}
	return strings.Join(parts, ", ")
}

// Delta compares two of the session's recorded runs by index (run 0 is
// the first), returning run j's metrics relative to run i's.  It
// returns a *qnet.ConfigError when either index is out of range.
func (s *Session) Delta(i, j int) (ResultDelta, error) {
	for _, idx := range []int{i, j} {
		if idx < 0 || idx >= len(s.results) {
			return ResultDelta{}, &qnet.ConfigError{
				Field:  "Session.Delta",
				Value:  idx,
				Reason: fmt.Sprintf("run index out of range [0,%d)", len(s.results)),
			}
		}
	}
	return Diff(s.results[i], s.results[j]), nil
}
