package simulate

import (
	"bytes"
	"context"
	"encoding/json"
	"runtime"
	"testing"
	"time"

	"repro/qnet"
	"repro/qnet/fault"
	"repro/qnet/trace"
)

// encodeTrace serializes a tracer's export for byte-level comparison.
func encodeTrace(t *testing.T, tr *trace.Tracer) string {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.Export().Encode(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// tracedBaseOptions is the shared configuration of the trace tests: a
// nonzero drop spec so the run records drop/resend events, and a fixed
// seed so reruns are comparable.
func tracedBaseOptions() []Option {
	return []Option{
		WithResources(16, 16, 8),
		WithFaults(fault.Spec{Drop: 0.05}),
		WithSeed(11),
	}
}

// TestTraceObserverParity pins the tentpole's correctness contract: a
// traced run executes the same events as an untraced one and returns a
// byte-identical Result — the tracer is an observer, never a model
// change — while still recording a non-trivial time series.
func TestTraceObserverParity(t *testing.T) {
	grid := testGrid(t, 5)
	prog := qnet.QFT(grid.Tiles())
	m, err := New(grid, HomeBase, tracedBaseOptions()...)
	if err != nil {
		t.Fatal(err)
	}
	want, err := m.Run(context.Background(), prog)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}

	tr := trace.New(trace.Config{Interval: time.Millisecond})
	got, err := m.WithTrace(tr).Run(context.Background(), prog)
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, err := json.Marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	if string(gotJSON) != string(wantJSON) {
		t.Errorf("traced result diverged:\n got %s\nwant %s", gotJSON, wantJSON)
	}
	ex := tr.Export()
	if ex.TotalSamples == 0 {
		t.Error("traced run recorded no samples")
	}
	if ex.TotalDrops+ex.TotalResends == 0 {
		t.Error("traced run under a drop spec recorded no drop/resend events")
	}
}

// TestTraceExportDeterministic pins the export's reproducibility: the
// same configuration traced twice yields byte-identical exports, and a
// parallel run at partitions 2 and 4 yields the same bytes as serial —
// the probe fires at the same simulated instants regardless of the
// engine choice.
func TestTraceExportDeterministic(t *testing.T) {
	grid := testGrid(t, 5)
	prog := qnet.QFT(grid.Tiles())
	base := tracedBaseOptions()

	runTraced := func(extra ...Option) string {
		t.Helper()
		m, err := New(grid, HomeBase, append(base[:len(base):len(base)], extra...)...)
		if err != nil {
			t.Fatal(err)
		}
		tr := trace.New(trace.Config{Interval: time.Millisecond})
		if _, err := m.WithTrace(tr).Run(context.Background(), prog); err != nil {
			t.Fatal(err)
		}
		return encodeTrace(t, tr)
	}

	first := runTraced()
	if second := runTraced(); second != first {
		t.Error("rerun of the same traced configuration changed the export bytes")
	}
	for _, n := range []int{2, 4} {
		if got := runTraced(WithParallelism(n)); got != first {
			t.Errorf("parallel=%d traced export differs from serial", n)
		}
	}
}

// TestTraceExcludedFromCacheKey pins the cache contract: like
// WithParallelism, a tracer never changes the result, so it never
// changes the content address.
func TestTraceExcludedFromCacheKey(t *testing.T) {
	grid := testGrid(t, 4)
	prog := qnet.QFT(grid.Tiles())
	plain, err := New(grid, HomeBase)
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.New(trace.Config{})
	if plain.WithTrace(tr).CacheKey(prog) != plain.CacheKey(prog) {
		t.Error("Machine.WithTrace changed the cache key")
	}
	viaOption, err := New(grid, HomeBase, WithTrace(tr))
	if err != nil {
		t.Fatal(err)
	}
	if viaOption.CacheKey(prog) != plain.CacheKey(prog) {
		t.Error("WithTrace option changed the cache key")
	}
	if viaOption.Trace() != tr {
		t.Error("WithTrace option did not attach the tracer")
	}
}

// TestTraceBypassesCacheReadButStores pins the traced run's cache
// behavior: it never answers from the cache (a stored Result has no
// time series for the tracer to observe) but still stores its result,
// so a later untraced run of the same configuration is a pure hit.
func TestTraceBypassesCacheReadButStores(t *testing.T) {
	grid := testGrid(t, 4)
	prog := qnet.QFT(grid.Tiles())
	cache := NewCache(0)
	m, err := New(grid, HomeBase, WithCache(cache))
	if err != nil {
		t.Fatal(err)
	}

	tr := trace.New(trace.Config{Interval: time.Millisecond})
	want, err := m.WithTrace(tr).Run(context.Background(), prog)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Export().TotalSamples == 0 {
		t.Fatal("cold traced run did not simulate")
	}
	got, err := m.Run(context.Background(), prog)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Error("untraced run did not return the traced run's stored result")
	}
	if s := cache.Stats(); s.Hits != 1 || s.Misses != 0 {
		t.Errorf("cache traffic %+v, want exactly the untraced run's hit on the traced run's entry", s)
	}

	// A warm cache must not stop a traced run from simulating: the
	// tracer needs the events, not the answer.
	tr2 := trace.New(trace.Config{Interval: time.Millisecond})
	if _, err := m.WithTrace(tr2).Run(context.Background(), prog); err != nil {
		t.Fatal(err)
	}
	if tr2.Export().TotalSamples == 0 {
		t.Error("warm-cache traced run answered from the cache instead of simulating")
	}
	if s := cache.Stats(); s.Hits != 1 {
		t.Errorf("warm-cache traced run touched the read path: %+v", s)
	}
}

// TestTraceCancelNoLeak cancels traced parallel runs mid-flight and
// requires Run to return promptly without leaking goroutines — the
// tracer adds no teardown of its own, and the partitioned engine's
// workers must exit with the probe attached exactly as without it.
func TestTraceCancelNoLeak(t *testing.T) {
	grid := testGrid(t, 8)
	prog := qnet.QFT(grid.Tiles())
	m, err := New(grid, HomeBase,
		WithResources(2, 2, 2),
		WithParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()
	for i := 0; i < 3; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(time.Duration(i) * 2 * time.Millisecond)
			cancel()
		}()
		done := make(chan error, 1)
		go func() {
			tr := trace.New(trace.Config{Interval: time.Millisecond})
			_, err := m.WithTrace(tr).Run(ctx, prog)
			done <- err
		}()
		select {
		case err := <-done:
			// A fast machine may finish before the cancel lands; all
			// that matters is that it returns.
			_ = err
		case <-time.After(10 * time.Second):
			t.Fatal("cancelled traced run did not return")
		}
		cancel()
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
	if now := runtime.NumGoroutine(); now > before {
		t.Errorf("goroutines grew from %d to %d after cancelled traced runs", before, now)
	}
}
