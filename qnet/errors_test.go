package qnet_test

import (
	"errors"
	"fmt"
	"testing"

	"repro/qnet"
)

func TestConfigErrorMatching(t *testing.T) {
	var err error = &qnet.ConfigError{Field: "PurifyDepth", Value: 99, Reason: "must be in [1,16]"}
	if !errors.Is(err, qnet.ErrInvalidConfig) {
		t.Error("ConfigError does not match ErrInvalidConfig")
	}
	if errors.Is(err, qnet.ErrCapacity) {
		t.Error("ConfigError must not match ErrCapacity")
	}
	var ce *qnet.ConfigError
	if !errors.As(err, &ce) || ce.Field != "PurifyDepth" {
		t.Errorf("errors.As lost the field: %+v", ce)
	}
	// Matching must survive wrapping.
	wrapped := fmt.Errorf("building machine: %w", err)
	if !errors.Is(wrapped, qnet.ErrInvalidConfig) {
		t.Error("wrapped ConfigError does not match ErrInvalidConfig")
	}
}

func TestCapacityErrorMatching(t *testing.T) {
	var err error = &qnet.CapacityError{Resource: "tiles", Need: 65, Have: 64}
	if !errors.Is(err, qnet.ErrCapacity) {
		t.Error("CapacityError does not match ErrCapacity")
	}
	if errors.Is(err, qnet.ErrInvalidConfig) {
		t.Error("CapacityError must not match ErrInvalidConfig")
	}
	var ce *qnet.CapacityError
	if !errors.As(err, &ce) || ce.Need != 65 || ce.Have != 64 {
		t.Errorf("errors.As lost the counts: %+v", ce)
	}
}

func TestErrorStrings(t *testing.T) {
	cfg := &qnet.ConfigError{Field: "HopCells", Value: 0, Reason: "must be >= 1"}
	if got := cfg.Error(); got != "qnet: invalid HopCells 0: must be >= 1" {
		t.Errorf("ConfigError.Error() = %q", got)
	}
	cap := &qnet.CapacityError{Resource: "tiles", Need: 17, Have: 16}
	if got := cap.Error(); got != "qnet: tiles capacity exceeded: need 17, have 16" {
		t.Errorf("CapacityError.Error() = %q", got)
	}
}
