// Package fault is the public mesh fault-model API: declarative fault
// specs (dead links, transient per-link drop probability, degraded-
// fidelity regions) that the simulator materializes from its per-run
// seeded RNG — so fault patterns are reproducible, content-addressable
// by the result cache, and sweepable as a first-class dimension.
//
// Attach a spec to a machine with simulate.WithFaults, or sweep over
// several with simulate.Space.Faults:
//
//	m, err := simulate.New(grid, simulate.MobileQubit,
//		simulate.WithRouting(route.FaultAdaptive()),
//		simulate.WithSeed(7),
//		simulate.WithFaults(fault.Spec{DeadLinks: 0.05, Drop: 0.01}))
//
// A run on a faulty mesh completes or fails with a structured error —
// *UnreachableError (dead links partition a communicating pair),
// *RouteBlockedError (a fault-oblivious policy's path crosses a dead
// link; switch to route.FaultAdaptive) or *ExcessiveLossError (drop
// rates exceed the channel resend budget) — never a hang: blocked work
// leaves the event engine without pending events, so even a deadlocked
// configuration terminates immediately with a structured error.
//
// Preview materializes a spec exactly as a run with the same seed
// will, for inspecting the drawn pattern (dead-link count,
// connectivity) without simulating.  The zero Spec means a healthy
// mesh and reproduces the fault-free simulator byte for byte.
package fault

import (
	"repro/internal/fault"

	"repro/qnet"
)

// Spec declares a fault pattern: the dead-link fraction, the baseline
// per-link batch-drop probability, and degraded-fidelity regions.  The
// zero value is a healthy mesh.
type Spec = fault.Spec

// Region is one degraded-fidelity rectangle: links touching it pay an
// extra per-batch drop probability on top of the spec's baseline.
type Region = fault.Region

// Model is one run's materialized fault pattern: per-link death and
// drop rates plus the escape ranks fault-adaptive routing uses.  It is
// immutable and safe for concurrent reads.
type Model = fault.Model

// UnreachableError reports that dead links partition a communicating
// pair: no live path connects the endpoints under any routing policy.
type UnreachableError = fault.UnreachableError

// RouteBlockedError reports that a fault-oblivious routing policy's
// path crosses a dead link; route.FaultAdaptive escapes around holes.
type RouteBlockedError = fault.RouteBlockedError

// ExcessiveLossError reports that one channel exhausted its resend
// budget: the spec's drop rates are severing the channel, so the run
// aborts with this error instead of simulating unboundedly.
type ExcessiveLossError = fault.ExcessiveLossError

// Preview materializes the spec exactly as a simulation run with the
// given seed will — a fresh seeded RNG, faults drawn first — so the
// pattern can be inspected before (or without) paying for the run.  A
// nil model with nil error means the spec is empty (healthy mesh).
func Preview(sp Spec, g qnet.Grid, seed int64) (*Model, error) {
	return fault.Preview(sp, g, seed)
}
