package simulate

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/qnet/route"
)

// policyRow is one golden row of the cross-policy determinism pin: the
// sweep-point coordinates plus the full Result (including Turns, which
// the older parity_xy.json golden predates).
type policyRow struct {
	Layout  string
	T, G, P int
	Program string
	Depth   int
	Result  Result
}

// policyGolden groups the golden rows of one routing policy.
type policyGolden struct {
	Routing string
	Rows    []policyRow
}

// policyRows runs the parity space under one policy and flattens the
// results into golden rows.
func policyRows(t *testing.T, p route.Policy) []policyRow {
	t.Helper()
	points, err := Sweep(context.Background(), paritySpace(t, []route.Policy{p}))
	if err != nil {
		t.Fatal(err)
	}
	rows := make([]policyRow, 0, len(points))
	for _, pt := range points {
		if pt.Err != nil {
			t.Fatalf("point %d: %v", pt.Point.Index, pt.Err)
		}
		rows = append(rows, policyRow{
			Layout:  pt.Point.Layout.String(),
			T:       pt.Point.Resources.Teleporters,
			G:       pt.Point.Resources.Generators,
			P:       pt.Point.Resources.Purifiers,
			Program: pt.Point.Program.Name,
			Depth:   pt.Point.Depth,
			Result:  pt.Result,
		})
	}
	return rows
}

// TestCrossPolicyGoldenResults pins the non-default routing policies
// (yx, zigzag, least-congested) byte for byte: a sweep of the parity
// space under each must reproduce testdata/parity_policies.json, which
// was captured before the allocation-free engine refactor.  Together
// with TestXYOrderParityWithPreRefactorGolden this proves the perf work
// changes no simulated result under any shipped policy.
//
// Regenerate (only for an intentional simulator change) with:
//
//	QNET_UPDATE_GOLDEN=1 go test -run TestCrossPolicyGolden ./qnet/simulate/
func TestCrossPolicyGoldenResults(t *testing.T) {
	path := filepath.Join("testdata", "parity_policies.json")
	goldens := make([]policyGolden, 0, 3)
	for _, p := range []route.Policy{route.YXOrder(), route.ZigZag(), route.LeastCongested()} {
		goldens = append(goldens, policyGolden{Routing: p.Name(), Rows: policyRows(t, p)})
	}
	got, err := json.MarshalIndent(goldens, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	if os.Getenv("QNET_UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s (%d bytes)", path, len(got))
		return
	}

	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Errorf("cross-policy sweep diverged from the pre-refactor golden\n got %d bytes\nwant %d bytes\n"+
			"(yx/zigzag/least-congested results must survive the perf refactor unchanged; "+
			"regenerate testdata/parity_policies.json only for an intentional simulator change)",
			len(got), len(want))
	}
}
