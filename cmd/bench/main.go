// Command bench runs the repository's performance benchmarks
// (internal/perfbench) outside `go test` and emits a machine-readable
// JSON report — by default BENCH_qft.json — so the simulator's perf
// trajectory (ns/op, allocs/op, simulated events/sec) is recorded per
// change and comparable across changes.
//
// The benchmark bodies are exactly the ones `go test -bench .
// ./internal/perfbench/` runs; this command drives them through
// testing.Benchmark, so both harnesses measure the same code.
//
// Usage:
//
//	bench                  # 1s per benchmark, writes BENCH_qft.json
//	bench -benchtime 3x    # exactly 3 iterations per benchmark
//	bench -out report.json # alternate output path
//	bench -check           # 1 iteration each, validate the JSON, write nothing
//
// The -check form is the CI smoke mode: it exercises every benchmark
// body and the whole JSON emission path in seconds, failing loudly if
// either rots, without recording numbers from an unloaded shared
// runner as if they were a trustworthy baseline.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/perfbench"
)

// report is the schema of BENCH_qft.json.
type report struct {
	// Schema versions the file format; consumers should check it.
	Schema string `json:"schema"`
	// Go, OS and Arch identify the toolchain and platform the numbers
	// were measured on (benchmark numbers are only comparable within a
	// platform).
	Go   string `json:"go"`
	OS   string `json:"os"`
	Arch string `json:"arch"`
	// Generated is the RFC 3339 wall-clock time of the run.
	Generated string `json:"generated"`
	// Benchtime is the per-benchmark measuring budget that produced
	// these numbers ("1s", "3x", ...).
	Benchtime string `json:"benchtime"`
	// Benchmarks holds one entry per benchmark, in a fixed order.
	Benchmarks []entry `json:"benchmarks"`
}

// entry is one benchmark's measurement.
type entry struct {
	// Name is the benchmark's go-test-style name, e.g.
	// "EngineCancel/pending=1024" or "QFT/layout=HomeBase/route=xy".
	Name string `json:"name"`
	// Iterations is the measured b.N.
	Iterations int `json:"iterations"`
	// NsPerOp is wall time per operation in nanoseconds.
	NsPerOp float64 `json:"ns_per_op"`
	// AllocsPerOp and BytesPerOp are heap allocation counts and bytes
	// per operation.
	AllocsPerOp int64 `json:"allocs_per_op"`
	// BytesPerOp is heap bytes allocated per operation.
	BytesPerOp int64 `json:"bytes_per_op"`
	// EventsPerSec is the simulated-event throughput for full-run and
	// sweep benchmarks (0 for micro-benchmarks that don't report it).
	EventsPerSec float64 `json:"events_per_sec,omitempty"`
	// PointsPerSec is the merged run-point throughput of the
	// distributed-sweep benchmark (0 for benchmarks that don't report
	// it).
	PointsPerSec float64 `json:"points_per_sec,omitempty"`
}

func main() {
	out := flag.String("out", "BENCH_qft.json", "output path for the JSON report")
	benchtime := flag.String("benchtime", "1s", "per-benchmark measuring budget (go test -benchtime syntax: a duration or Nx)")
	check := flag.Bool("check", false, "smoke mode: one iteration per benchmark, validate the JSON, write nothing")
	// testing.Init registers the test.* flags testing.Benchmark reads
	// its benchtime from; it must run before flag.Parse.
	testing.Init()
	flag.Parse()

	if *check {
		*benchtime = "1x"
	}
	if err := flag.Set("test.benchtime", *benchtime); err != nil {
		fmt.Fprintf(os.Stderr, "bench: bad -benchtime %q: %v\n", *benchtime, err)
		os.Exit(2)
	}

	rep := report{
		Schema:    "qnet-bench-v1",
		Go:        runtime.Version(),
		OS:        runtime.GOOS,
		Arch:      runtime.GOARCH,
		Generated: time.Now().UTC().Format(time.RFC3339),
		Benchtime: *benchtime,
	}
	for _, b := range benchmarks() {
		fmt.Fprintf(os.Stderr, "bench: %s...\n", b.name)
		rep.Benchmarks = append(rep.Benchmarks, measure(b.name, b.fn))
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := validate(data); err != nil {
		fmt.Fprintln(os.Stderr, "bench: invalid report:", err)
		os.Exit(1)
	}
	if *check {
		fmt.Printf("bench: ok (%d benchmarks, JSON emitter valid, nothing written)\n", len(rep.Benchmarks))
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	for _, e := range rep.Benchmarks {
		fmt.Printf("%-48s %12.0f ns/op %10d allocs/op", e.Name, e.NsPerOp, e.AllocsPerOp)
		if e.EventsPerSec > 0 {
			fmt.Printf(" %12.0f events/sec", e.EventsPerSec)
		}
		if e.PointsPerSec > 0 {
			fmt.Printf(" %12.1f points/sec", e.PointsPerSec)
		}
		fmt.Println()
	}
	fmt.Printf("bench: wrote %s (%d benchmarks)\n", *out, len(rep.Benchmarks))
}

// namedBench pairs a benchmark body with its report name.
type namedBench struct {
	name string
	fn   func(*testing.B)
}

// benchmarks enumerates the report's benchmark suite in fixed order:
// the engine micro-benchmarks, the cancellation regression sizes, the
// full-run layout x policy matrix, the 8-worker sweep and the
// 2-worker distributed sweep.
func benchmarks() []namedBench {
	list := []namedBench{{name: "EngineSchedule", fn: perfbench.EngineSchedule}}
	for _, n := range perfbench.CancelPendingSizes {
		list = append(list, namedBench{
			name: fmt.Sprintf("EngineCancel/pending=%d", n),
			fn:   perfbench.EngineCancel(n),
		})
	}
	for _, cfg := range perfbench.FullRunConfigs() {
		list = append(list, namedBench{
			name: "QFT/" + cfg.Name,
			fn:   perfbench.QFTRun(cfg.Layout, cfg.Policy),
		})
	}
	list = append(list, namedBench{name: "Sweep/workers=8", fn: perfbench.SweepWorkers(8)})
	list = append(list, namedBench{name: "DistribSweep/workers=2", fn: perfbench.DistributedSweep(2)})
	return list
}

// measure runs one benchmark body through testing.Benchmark and
// flattens the result into a report entry.
func measure(name string, fn func(*testing.B)) entry {
	r := testing.Benchmark(fn)
	e := entry{
		Name:        name,
		Iterations:  r.N,
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
	if r.N > 0 {
		e.NsPerOp = float64(r.T.Nanoseconds()) / float64(r.N)
	}
	e.EventsPerSec = r.Extra["events/sec"]
	e.PointsPerSec = r.Extra["points/sec"]
	return e
}

// validate round-trips the marshaled report and rejects entries a
// perf-trajectory consumer could not use, so a silent breakage of the
// emitter (or of a benchmark body) fails this command instead of
// producing a plausible-looking but useless BENCH file.
func validate(data []byte) error {
	var rep report
	if err := json.Unmarshal(data, &rep); err != nil {
		return err
	}
	if rep.Schema != "qnet-bench-v1" {
		return fmt.Errorf("schema %q, want qnet-bench-v1", rep.Schema)
	}
	if len(rep.Benchmarks) == 0 {
		return fmt.Errorf("no benchmarks in report")
	}
	seen := make(map[string]bool, len(rep.Benchmarks))
	for _, e := range rep.Benchmarks {
		switch {
		case e.Name == "":
			return fmt.Errorf("entry with empty name")
		case seen[e.Name]:
			return fmt.Errorf("duplicate benchmark %q", e.Name)
		case e.Iterations <= 0:
			return fmt.Errorf("%s: %d iterations", e.Name, e.Iterations)
		case e.NsPerOp <= 0:
			return fmt.Errorf("%s: ns/op = %g", e.Name, e.NsPerOp)
		case e.AllocsPerOp < 0:
			return fmt.Errorf("%s: allocs/op = %d", e.Name, e.AllocsPerOp)
		}
		seen[e.Name] = true
	}
	return nil
}
