// Conservative domain-decomposed parallel execution.
//
// A Partitioned engine runs N region Engines side by side, one worker
// goroutine per region, synchronized by a lookahead barrier: in each
// round the coordinator computes the global horizon — the earliest
// pending event anywhere plus the model's lookahead — and every region
// executes all of its events strictly before that horizon concurrently.
// Events a region schedules for another region ("boundary events")
// are not pushed into the target heap directly; they are collected in
// per-sender outboxes and delivered at the barrier, merged in the fixed
// (at, seq, region) order, so the execution is deterministic for any
// region count and any goroutine scheduling.
//
// The conservative correctness contract is the classic one: a region
// may only send an event whose timestamp is at least the sender's
// current clock plus the lookahead.  The lookahead is a model property
// (for the mesh interconnect: the minimum latency a batch needs to
// cross an inter-region link); Send enforces the bound and the run
// aborts with ErrLookahead if the model violates it, rather than
// silently producing a schedule-dependent result.
package sim

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// ErrLookahead reports a model that sent a cross-region event closer in
// the future than the declared lookahead.  Such an event could land
// inside a window another region has already executed, so the run
// aborts instead of risking a nondeterministic (schedule-dependent)
// result.
var ErrLookahead = errors.New("sim: cross-region event violates the lookahead bound")

// boundaryEvent is one cross-region message: an event to deliver into
// the target region's heap at the barrier.  seq is the sender-local
// message sequence; together with the sender's region index it gives
// the fixed (at, seq, region) merge order.
type boundaryEvent struct {
	at     time.Duration
	seq    uint64
	sender int
	target int
	fn     func()
}

// Region is one domain of a Partitioned engine: a serial Engine core
// plus the outbox for boundary events.  Model code running inside a
// region's window uses its Engine exactly like a serial simulation
// (Schedule, At, resources, semaphores) and Send for events that cross
// into another region.  A Region's methods are not safe for concurrent
// use from outside its own window execution.
type Region struct {
	// Engine is the region's serial event core (heap + arena).
	*Engine
	index   int
	parent  *Partitioned
	sendSeq uint64
	outbox  []boundaryEvent
	// violation records the window's first lookahead violation; it is
	// region-local (concurrent windows never write shared memory) and
	// surfaced as a structured error at the barrier.
	violation error
}

// Index returns the region's position in the partition, in [0, Regions).
func (r *Region) Index() int { return r.index }

// Send schedules fn in the target region at absolute time t.  The event
// is held in the sender's outbox and delivered at the next barrier,
// merged with all other boundary events in (at, seq, region) order.
// t must be at least the sender's current clock plus the partition's
// lookahead; a violating send poisons the run, which then aborts with
// ErrLookahead at the barrier.  Sending to the own region is allowed
// and equivalent to At (but pays the barrier round-trip; prefer At).
func (r *Region) Send(target int, t time.Duration, fn func()) {
	p := r.parent
	if target < 0 || target >= len(p.regions) {
		panic(fmt.Sprintf("sim: Send to region %d of %d", target, len(p.regions)))
	}
	if fn == nil {
		panic("sim: Send of nil event function")
	}
	if t < r.Now()+p.lookahead {
		// Record the earliest violation; the coordinator turns it into
		// a structured error at the barrier.  Execution continues so the
		// window stays deterministic (aborting mid-window would make the
		// partial state depend on goroutine timing).
		if r.violation == nil {
			r.violation = fmt.Errorf("%w: region %d sent t=%v to region %d with clock %v and lookahead %v",
				ErrLookahead, r.index, t, target, r.Now(), p.lookahead)
		}
		return
	}
	r.sendSeq++
	r.outbox = append(r.outbox, boundaryEvent{at: t, seq: r.sendSeq, sender: r.index, target: target, fn: fn})
}

// Partitioned is a conservative parallel discrete-event engine: N
// region Engines advancing in lookahead-synchronized windows.  Build
// one with NewPartitioned, populate the regions' initial events, then
// call Run.
type Partitioned struct {
	regions   []*Region
	lookahead time.Duration

	// Worker pool state: workers persist across windows and block on
	// start; Run closes shutdown when it returns, so no goroutines
	// outlive the call.
	start       []chan windowJob
	done        chan windowDone
	workersOnce sync.Once
}

// windowJob is one window assignment for a region worker.
type windowJob struct {
	ctx     context.Context
	horizon time.Duration
}

// windowDone is a worker's barrier report.
type windowDone struct {
	region int
	err    error
}

// NewPartitioned builds a partitioned engine with the given region
// count and lookahead.  lookahead must be positive: it is the model's
// guarantee about the minimum latency of cross-region interactions and
// a zero bound would force zero-width windows (serial execution).
func NewPartitioned(regions int, lookahead time.Duration) (*Partitioned, error) {
	if regions < 1 {
		return nil, fmt.Errorf("sim: partitioned engine needs >= 1 region, got %d", regions)
	}
	if lookahead <= 0 {
		return nil, fmt.Errorf("sim: partitioned engine needs a positive lookahead, got %v", lookahead)
	}
	p := &Partitioned{lookahead: lookahead}
	p.regions = make([]*Region, regions)
	for i := range p.regions {
		p.regions[i] = &Region{Engine: New(), index: i, parent: p}
	}
	return p, nil
}

// Regions returns the region count.
func (p *Partitioned) Regions() int { return len(p.regions) }

// Region returns the i'th region.
func (p *Partitioned) Region(i int) *Region { return p.regions[i] }

// Lookahead returns the conservative synchronization bound.
func (p *Partitioned) Lookahead() time.Duration { return p.lookahead }

// Pending returns the number of live events across all regions,
// including undelivered boundary events.
func (p *Partitioned) Pending() int {
	n := 0
	for _, r := range p.regions {
		n += r.Engine.Pending() + len(r.outbox)
	}
	return n
}

// Processed returns the number of events executed across all regions.
func (p *Partitioned) Processed() uint64 {
	var n uint64
	for _, r := range p.regions {
		n += r.Engine.Processed()
	}
	return n
}

// Now returns the global horizon reached so far: the maximum region
// clock (regions only advance by executing events, so this is the time
// of the latest executed event).
func (p *Partitioned) Now() time.Duration {
	var t time.Duration
	for _, r := range p.regions {
		if n := r.Engine.Now(); n > t {
			t = n
		}
	}
	return t
}

// nextEventAt returns the earliest pending event time across regions.
func (p *Partitioned) nextEventAt() (time.Duration, bool) {
	var best time.Duration
	ok := false
	for _, r := range p.regions {
		if at, live := r.Engine.NextEventAt(); live && (!ok || at < best) {
			best, ok = at, true
		}
	}
	return best, ok
}

// deliver flushes every region's outbox into the target heaps, in the
// fixed (at, seq, sender-region) order.  The total order makes the
// insertion sequence — hence each target engine's tie-breaking seq
// assignment — independent of which goroutine produced which message
// first, which is what keeps a partitioned run deterministic.
func (p *Partitioned) deliver() error {
	var all []boundaryEvent
	for _, r := range p.regions {
		if r.violation != nil {
			return r.violation
		}
		all = append(all, r.outbox...)
		r.outbox = r.outbox[:0]
	}
	if len(all) == 0 {
		return nil
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.at != b.at {
			return a.at < b.at
		}
		if a.seq != b.seq {
			return a.seq < b.seq
		}
		return a.sender < b.sender
	})
	for _, ev := range all {
		tgt := p.regions[ev.target].Engine
		t := ev.at
		if t < tgt.Now() {
			// Cannot happen under the Send-side lookahead check (the
			// target never executes past the window horizon, and every
			// send is at or beyond it); guard anyway so a future engine
			// change fails loudly instead of corrupting causality.
			return fmt.Errorf("%w: delivery at %v behind region %d clock %v",
				ErrLookahead, ev.at, ev.target, tgt.Now())
		}
		tgt.At(t, ev.fn)
	}
	return nil
}

// startWorkers lazily spins up one persistent goroutine per region.
func (p *Partitioned) startWorkers() {
	p.workersOnce.Do(func() {
		p.start = make([]chan windowJob, len(p.regions))
		p.done = make(chan windowDone, len(p.regions))
		for i := range p.regions {
			ch := make(chan windowJob)
			p.start[i] = ch
			go func(i int, ch chan windowJob) {
				for job := range ch {
					err := p.regions[i].runWindow(job.ctx, job.horizon)
					p.done <- windowDone{region: i, err: err}
				}
			}(i, ch)
		}
	})
}

// stopWorkers shuts the worker pool down; Run defers it, so a
// Partitioned engine leaves no goroutines behind when Run returns (for
// any reason, including cancellation and lookahead violations).
func (p *Partitioned) stopWorkers() {
	if p.start == nil {
		return
	}
	for _, ch := range p.start {
		close(ch)
	}
	p.start = nil
	p.workersOnce = sync.Once{}
}

// runWindow executes all of the region's events strictly before the
// horizon, polling ctx between batches of events like the serial
// engine's RunContext.
func (r *Region) runWindow(ctx context.Context, horizon time.Duration) error {
	e := r.Engine
	var n uint64
	for {
		at, ok := e.NextEventAt()
		if !ok || at >= horizon {
			return nil
		}
		e.Step()
		n++
		if n%ctxCheckInterval == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
	}
}

// Run executes the partitioned simulation to completion: rounds of
// horizon computation, concurrent window execution and deterministic
// boundary delivery, until no region holds a pending event.  It returns
// the total number of events executed.  Cancelling ctx aborts between
// and within windows (workers poll it), leaving the regions' state
// intact for inspection; Run never leaks its worker goroutines, even
// when cancelled mid-barrier.
func (p *Partitioned) Run(ctx context.Context) (uint64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	// A single region needs no barriers: degrade to the serial loop.
	if len(p.regions) == 1 {
		if err := p.deliver(); err != nil { // self-sends from setup code
			return 0, err
		}
		return p.regions[0].Engine.RunContext(ctx, 0)
	}
	p.startWorkers()
	defer p.stopWorkers()
	var total uint64
	for {
		next, ok := p.nextEventAt()
		if !ok {
			return total, nil
		}
		horizon := next + p.lookahead
		before := p.Processed()
		for _, ch := range p.start {
			ch <- windowJob{ctx: ctx, horizon: horizon}
		}
		var windowErr error
		for range p.regions {
			if d := <-p.done; d.err != nil && windowErr == nil {
				windowErr = d.err
			}
		}
		total += p.Processed() - before
		if windowErr != nil {
			return total, windowErr
		}
		if err := p.deliver(); err != nil {
			return total, err
		}
		if err := ctx.Err(); err != nil {
			return total, err
		}
	}
}
