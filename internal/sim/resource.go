package sim

import (
	"fmt"
	"time"
)

// Resource is a capacity-limited server with a FIFO wait queue, driven by
// an Engine.  It models hardware units that serve one job at a time per
// unit — teleporters in a T' node set, generators in a G node, queue
// purifiers in a P node.
//
// Acquire enqueues a job; when a unit is free the job callback runs (at
// the engine's current time).  The callback must eventually call Release
// exactly once (typically after scheduling the service latency).
type Resource struct {
	name     string
	nameFn   func() string
	engine   *Engine
	capacity int
	inUse    int
	waiting  []waiter

	// freeJobs recycles the per-Serve bookkeeping records, so the
	// acquire-serve-release pattern allocates nothing in steady state.
	freeJobs *serveJob

	// Statistics.
	acquired   uint64
	maxQueue   int
	busyTime   time.Duration
	lastChange time.Duration
}

// waiter is one queued acquirer: either a plain Acquire callback or a
// Serve job record.  Exactly one field is set.
type waiter struct {
	fn  func()
	job *serveJob
}

// serveJob is the reusable record of one Serve call: the service
// latency to hold the unit for and the completion callback.  Records
// cycle through the owning resource's free list, and the scheduled
// completion event carries the record as its argument, so a Serve
// performs no per-call allocation.
type serveJob struct {
	r       *Resource
	latency time.Duration
	done    func()
	next    *serveJob // free-list link
}

// NewResource creates a resource with the given unit count.
func NewResource(engine *Engine, name string, capacity int) (*Resource, error) {
	if engine == nil {
		return nil, fmt.Errorf("sim: resource %q needs an engine", name)
	}
	if capacity < 1 {
		return nil, fmt.Errorf("sim: resource %q capacity must be >= 1, got %d", name, capacity)
	}
	return &Resource{name: name, engine: engine, capacity: capacity}, nil
}

// NewLazyResource is NewResource with deferred naming: name is called at
// most once, the first time the resource's name is actually needed (an
// error message, a statistics report).  Simulators that build thousands
// of resources per run use it to keep name formatting off the build
// path.
func NewLazyResource(engine *Engine, name func() string, capacity int) (*Resource, error) {
	if name == nil {
		return nil, fmt.Errorf("sim: lazy resource needs a name function")
	}
	if engine == nil {
		return nil, fmt.Errorf("sim: resource needs an engine")
	}
	if capacity < 1 {
		return nil, fmt.Errorf("sim: resource capacity must be >= 1, got %d", capacity)
	}
	return &Resource{nameFn: name, engine: engine, capacity: capacity}, nil
}

// Name returns the resource's name, resolving a lazy name on first use.
func (r *Resource) Name() string {
	if r.name == "" && r.nameFn != nil {
		r.name = r.nameFn()
		r.nameFn = nil
	}
	return r.name
}

// Capacity returns the number of units.
func (r *Resource) Capacity() int { return r.capacity }

// InUse returns the number of units currently serving jobs.
func (r *Resource) InUse() int { return r.inUse }

// QueueLen returns the number of jobs waiting for a unit.
func (r *Resource) QueueLen() int { return len(r.waiting) }

// Acquire requests a unit and runs job once one is available.  If a unit
// is free now, job runs synchronously.
func (r *Resource) Acquire(job func()) {
	if job == nil {
		panic(fmt.Sprintf("sim: resource %q: nil job", r.Name()))
	}
	if r.inUse < r.capacity {
		r.grab()
		job()
		return
	}
	r.enqueue(waiter{fn: job})
}

// Release frees a unit, immediately handing it to the oldest waiting job
// if any.
func (r *Resource) Release() {
	if r.inUse <= 0 {
		panic(fmt.Sprintf("sim: resource %q released more than acquired", r.Name()))
	}
	r.accountBusy()
	r.inUse--
	if len(r.waiting) == 0 {
		return
	}
	w := r.waiting[0]
	copy(r.waiting, r.waiting[1:])
	r.waiting[len(r.waiting)-1] = waiter{}
	r.waiting = r.waiting[:len(r.waiting)-1]
	r.grab()
	if w.fn != nil {
		w.fn()
	} else {
		w.job.start()
	}
}

// Serve is the common acquire-serve-release pattern: wait for a unit,
// hold it for latency of simulated time, then run done (may be nil).
// Unlike hand-rolling Acquire+Schedule+Release, Serve allocates nothing
// in steady state: its bookkeeping record is recycled through a free
// list and the completion event captures no closure.
func (r *Resource) Serve(latency time.Duration, done func()) {
	j := r.newJob(latency, done)
	if r.inUse < r.capacity {
		r.grab()
		j.start()
		return
	}
	r.enqueue(waiter{job: j})
}

// enqueue appends a waiter and tracks the queue high-water mark.
func (r *Resource) enqueue(w waiter) {
	r.waiting = append(r.waiting, w)
	if len(r.waiting) > r.maxQueue {
		r.maxQueue = len(r.waiting)
	}
}

// newJob takes a serve record off the free list (or mints one) and
// fills it for this call.
func (r *Resource) newJob(latency time.Duration, done func()) *serveJob {
	j := r.freeJobs
	if j != nil {
		r.freeJobs = j.next
		j.next = nil
	} else {
		j = &serveJob{r: r}
	}
	j.latency, j.done = latency, done
	return j
}

// start schedules the job's completion after its service latency; the
// unit has just been granted.
func (j *serveJob) start() {
	j.r.engine.ScheduleCall(j.latency, serveComplete, j)
}

// serveComplete is the completion event of a Serve: release the unit,
// then run the caller's continuation.  It is a package-level function so
// scheduling it captures no closure.
func serveComplete(a any) {
	j := a.(*serveJob)
	r, done := j.r, j.done
	j.done = nil
	j.next = r.freeJobs
	r.freeJobs = j
	r.Release()
	if done != nil {
		done()
	}
}

func (r *Resource) grab() {
	r.accountBusy()
	r.inUse++
	r.acquired++
}

func (r *Resource) accountBusy() {
	now := r.engine.Now()
	r.busyTime += time.Duration(r.inUse) * (now - r.lastChange)
	r.lastChange = now
}

// Stats returns cumulative counters: total acquisitions, the maximum
// observed queue length, and the aggregate unit-busy time (unit-seconds
// of service).
func (r *Resource) Stats() (acquired uint64, maxQueue int, busy time.Duration) {
	r.accountBusy()
	return r.acquired, r.maxQueue, r.busyTime
}

// Utilization returns the fraction of unit-time spent busy since the
// start of the simulation (0 if no time has passed).
func (r *Resource) Utilization() float64 {
	r.accountBusy()
	total := time.Duration(r.capacity) * r.engine.Now()
	if total <= 0 {
		return 0
	}
	return float64(r.busyTime) / float64(total)
}

// Tally accumulates scalar observations: count, sum, min, max and mean.
type Tally struct {
	n        uint64
	sum      float64
	min, max float64
}

// Add records one observation.
func (t *Tally) Add(x float64) {
	if t.n == 0 || x < t.min {
		t.min = x
	}
	if t.n == 0 || x > t.max {
		t.max = x
	}
	t.n++
	t.sum += x
}

// Count returns the number of observations.
func (t *Tally) Count() uint64 { return t.n }

// Sum returns the sum of observations.
func (t *Tally) Sum() float64 { return t.sum }

// Mean returns the average observation (0 when empty).
func (t *Tally) Mean() float64 {
	if t.n == 0 {
		return 0
	}
	return t.sum / float64(t.n)
}

// Min returns the smallest observation (0 when empty).
func (t *Tally) Min() float64 { return t.min }

// Max returns the largest observation (0 when empty).
func (t *Tally) Max() float64 { return t.max }
