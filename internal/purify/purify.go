// Package purify implements entanglement purification: the DEJMPS
// protocol (Deutsch et al. 1996) and the BBPSSW protocol (Bennett et al.
// 1996), with noisy local operations, plus the resource accounting the
// paper builds on them (Section 4.5, 4.7; Figures 8, 10, 11, 12) and the
// queue-based purifier hardware model of Figure 14.
//
// Purification combines two lower-fidelity EPR pairs using local
// operations at both channel endpoints and one round of classical
// communication, producing one pair of higher fidelity with some success
// probability; the sacrificed pair is measured and discarded.  Repeating
// rounds in a tree raises fidelity further at a cost exponential in the
// number of rounds.
package purify

import (
	"fmt"
	"math"

	"repro/internal/fidelity"
	"repro/internal/phys"
)

// Protocol is a two-to-one entanglement purification protocol acting on
// Bell-diagonal pairs.  Round consumes two input pairs and returns the
// state of the surviving pair conditioned on success, together with the
// success probability.  Implementations incorporate the local gate and
// measurement noise of their phys.Params.
type Protocol interface {
	// Name identifies the protocol ("DEJMPS" or "BBPSSW").
	Name() string
	// Round purifies pair a with pair b.
	Round(a, b fidelity.Bell) (out fidelity.Bell, pSuccess float64)
}

// DEJMPS is the Deutsch et al. protocol.  It operates on general
// Bell-diagonal states (no twirling between rounds), which the paper
// observes gives tighter bounds, faster convergence and higher maximum
// fidelity than BBPSSW.
type DEJMPS struct {
	Params phys.Params
}

// Name implements Protocol.
func (d DEJMPS) Name() string { return "DEJMPS" }

// Round implements Protocol.  The ideal DEJMPS map on Bell-diagonal
// coefficients (A, B, C, D) = (Φ+, Ψ−, Ψ+, Φ−) of the two inputs is
//
//	A' = (A₁A₂ + B₁B₂)/N    B' = (C₁D₂ + D₁C₂)/N
//	C' = (C₁C₂ + D₁D₂)/N    D' = (A₁B₂ + B₁A₂)/N
//	N  = (A₁+B₁)(A₂+B₂) + (C₁+D₁)(C₂+D₂)
//
// Noise model: each input pair first passes through a depolarizing
// channel for the bilateral CNOT (one two-qubit gate at each endpoint)
// and the DEJMPS single-qubit rotations; the keep/discard decision
// compares one measurement outcome from each endpoint, and with
// probability 2·pms(1−pms) the comparison is corrupted, admitting the
// (maximally mixed, conservatively) reject branch.
func (d DEJMPS) Round(a, b fidelity.Bell) (fidelity.Bell, float64) {
	a = applyLocalGateNoise(d.Params, a, true)
	b = applyLocalGateNoise(d.Params, b, true)
	keep, n := dejmpsIdeal(a, b)
	return applyMeasurementNoise(d.Params, keep, n)
}

// BBPSSW is the Bennett et al. protocol.  It twirls the state to Werner
// form after every round ("partially randomizes its state", as the paper
// puts it), which slows convergence by 5–10× relative to DEJMPS and
// lowers the achievable maximum fidelity.
type BBPSSW struct {
	Params phys.Params
}

// Name implements Protocol.
func (p BBPSSW) Name() string { return "BBPSSW" }

// Round implements Protocol.  Inputs are twirled to Werner form, the
// ideal map applied, noise folded in as for DEJMPS (minus the DEJMPS
// rotations), and the output twirled again.
func (p BBPSSW) Round(a, b fidelity.Bell) (fidelity.Bell, float64) {
	a = applyLocalGateNoise(p.Params, a.Twirl(), false)
	b = applyLocalGateNoise(p.Params, b.Twirl(), false)
	keep, n := bbpsswIdeal(a, b)
	out, ps := applyMeasurementNoise(p.Params, keep, n)
	return out.Twirl(), ps
}

// dejmpsIdeal applies the noiseless DEJMPS map, returning the
// (normalized) keep-branch state and the success probability N.
func dejmpsIdeal(a, b fidelity.Bell) (fidelity.Bell, float64) {
	n := (a.A+a.B)*(b.A+b.B) + (a.C+a.D)*(b.C+b.D)
	if n <= 0 {
		return fidelity.Werner(0.25), 0
	}
	return fidelity.Bell{
		A: (a.A*b.A + a.B*b.B) / n,
		B: (a.C*b.D + a.D*b.C) / n,
		C: (a.C*b.C + a.D*b.D) / n,
		D: (a.A*b.B + a.B*b.A) / n,
	}, n
}

// bbpsswIdeal applies the noiseless BBPSSW map to two Werner inputs.
// For Werner states the keep-branch map coincides with the classic
// fidelity recurrence
//
//	F' = (F₁F₂ + (1−F₁)(1−F₂)/9) / N
//	N  = F₁F₂ + F₁(1−F₂)/3 + F₂(1−F₁)/3 + 5(1−F₁)(1−F₂)/9
func bbpsswIdeal(a, b fidelity.Bell) (fidelity.Bell, float64) {
	f1, f2 := a.A, b.A
	e1, e2 := (1-f1)/3, (1-f2)/3
	n := f1*f2 + f1*e2 + f2*e1 + 5*e1*e2
	if n <= 0 {
		return fidelity.Werner(0.25), 0
	}
	fNew := (f1*f2 + e1*e2) / n
	// Distribute the remaining mass per the Bell-basis bookkeeping; the
	// subsequent twirl flattens it, so Werner is exact here.
	return fidelity.Werner(fNew), n
}

// applyLocalGateNoise depolarizes a pair for the two-qubit gates of the
// bilateral CNOT (one at each endpoint) and, if rotations is true, the
// DEJMPS single-qubit pre-rotations (one at each endpoint).
func applyLocalGateNoise(p phys.Params, s fidelity.Bell, rotations bool) fidelity.Bell {
	g := 1 - (1-p.Errors.TwoQubitGate)*(1-p.Errors.TwoQubitGate)
	if rotations {
		g = 1 - (1-g)*(1-p.Errors.OneQubitGate)*(1-p.Errors.OneQubitGate)
	}
	return s.Depolarize(g)
}

// applyMeasurementNoise folds the imperfect keep/discard comparison into
// the keep-branch state.  The comparison of the two endpoint measurement
// outcomes is corrupted with probability eps = 2·pms(1−pms): a true
// reject is then accepted (contributing junk, modeled as maximally
// mixed) and a true accept is rejected (lowering success probability).
func applyMeasurementNoise(p phys.Params, keep fidelity.Bell, n float64) (fidelity.Bell, float64) {
	pm := p.Errors.Measure
	eps := 2 * pm * (1 - pm)
	pAccept := (1-eps)*n + eps*(1-n)
	if pAccept <= 0 {
		return fidelity.Werner(0.25), 0
	}
	wKeep := (1 - eps) * n / pAccept
	wJunk := eps * (1 - n) / pAccept
	mixed := fidelity.Werner(0.25)
	out := fidelity.Bell{
		A: wKeep*keep.A + wJunk*mixed.A,
		B: wKeep*keep.B + wJunk*mixed.B,
		C: wKeep*keep.C + wJunk*mixed.C,
		D: wKeep*keep.D + wJunk*mixed.D,
	}
	return out, pAccept
}

// RoundResult records the state of the surviving pairs after one level of
// tree purification, the per-round success probability, and the expected
// number of raw input pairs consumed per surviving pair so far.
type RoundResult struct {
	// Round is the 1-based round (tree level) index.
	Round int
	// State is the Bell-diagonal state of pairs surviving this round.
	State fidelity.Bell
	// PSuccess is the probability this round's purification succeeded.
	PSuccess float64
	// ExpectedPairs is the expected number of raw pairs consumed to yield
	// one pair at this level: the product over rounds of 2/PSuccess.
	ExpectedPairs float64
}

// Rounds performs up to maxRounds symmetric tree-purification rounds
// starting from initial, recording each level.  In tree purification all
// pairs at a level share the same state, so each round combines two
// identical copies.
func Rounds(proto Protocol, initial fidelity.Bell, maxRounds int) []RoundResult {
	results := make([]RoundResult, 0, maxRounds)
	state := initial
	pairs := 1.0
	for r := 1; r <= maxRounds; r++ {
		next, ps := proto.Round(state, state)
		if ps <= 0 {
			break
		}
		pairs *= 2 / ps
		state = next
		results = append(results, RoundResult{Round: r, State: state, PSuccess: ps, ExpectedPairs: pairs})
	}
	return results
}

// RoundsToReach returns the minimum number of tree-purification rounds
// needed to bring the pair error at or below targetError, along with the
// final state and the expected raw pairs consumed per output pair.
// ok is false if maxRounds rounds cannot reach the target (e.g. the
// protocol's noise floor is above it).
func RoundsToReach(proto Protocol, initial fidelity.Bell, targetError float64, maxRounds int) (rounds int, final fidelity.Bell, expectedPairs float64, ok bool) {
	if initial.Error() <= targetError {
		return 0, initial, 1, true
	}
	state := initial
	pairs := 1.0
	prevErr := initial.Error()
	for r := 1; r <= maxRounds; r++ {
		next, ps := proto.Round(state, state)
		if ps <= 0 {
			return 0, state, pairs, false
		}
		pairs *= 2 / ps
		state = next
		if state.Error() <= targetError {
			return r, state, pairs, true
		}
		// Detect a converged noise floor above the target: no meaningful
		// progress over a round.
		if state.Error() >= prevErr*(1-1e-9) && r > 1 {
			return 0, state, pairs, false
		}
		prevErr = state.Error()
	}
	return 0, state, pairs, false
}

// MaxFidelity iterates the protocol to (near) convergence and returns the
// fixed-point fidelity — the maximum achievable fidelity given the
// operation error rates.  The paper's Figure 12 shows the whole
// distribution network breaking down when this drops below the
// fault-tolerance threshold.
func MaxFidelity(proto Protocol, initial fidelity.Bell) float64 {
	state := initial
	best := state.Fidelity()
	for r := 0; r < 200; r++ {
		next, ps := proto.Round(state, state)
		if ps <= 0 {
			break
		}
		if math.Abs(next.Fidelity()-state.Fidelity()) < 1e-15 {
			state = next
			break
		}
		state = next
		if state.Fidelity() > best {
			best = state.Fidelity()
		}
	}
	if state.Fidelity() > best {
		best = state.Fidelity()
	}
	return best
}

// Fig8Point is one sample of the paper's Figure 8: error after a given
// number of purification rounds for a protocol and initial fidelity.
type Fig8Point struct {
	Protocol        string
	InitialFidelity float64
	Round           int
	Error           float64
}

// Fig8Series reproduces Figure 8: error rate (1-fidelity) of surviving
// EPR pairs as a function of purification rounds for each protocol and
// initial fidelity.  Round 0 records the initial error.
func Fig8Series(p phys.Params, initialFidelities []float64, maxRounds int) []Fig8Point {
	var out []Fig8Point
	for _, proto := range []Protocol{BBPSSW{p}, DEJMPS{p}} {
		for _, f0 := range initialFidelities {
			initial := fidelity.Werner(f0)
			out = append(out, Fig8Point{proto.Name(), f0, 0, initial.Error()})
			for _, r := range Rounds(proto, initial, maxRounds) {
				out = append(out, Fig8Point{proto.Name(), f0, r.Round, r.State.Error()})
			}
		}
	}
	return out
}

// TreePairs returns the number of input pairs a full purification tree of
// depth rounds consumes in the noiseless, always-succeeding limit: 2^rounds.
func TreePairs(rounds int) int {
	if rounds < 0 {
		return 0
	}
	if rounds > 62 {
		panic(fmt.Sprintf("purify: tree depth %d overflows", rounds))
	}
	return 1 << uint(rounds)
}

// ConvergenceRounds returns the number of rounds each protocol needs to
// come within slack of its maximum fidelity, starting from initial.
// The paper reports BBPSSW needing 5–10× the rounds of DEJMPS.
func ConvergenceRounds(proto Protocol, initial fidelity.Bell, slack float64, maxRounds int) int {
	maxF := MaxFidelity(proto, initial)
	state := initial
	for r := 1; r <= maxRounds; r++ {
		next, ps := proto.Round(state, state)
		if ps <= 0 {
			return -1
		}
		state = next
		if state.Fidelity() >= maxF-slack {
			return r
		}
	}
	return -1
}
