package ballistic

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/phys"
)

var base = phys.IonTrap2006()

func TestPlanMoveBasics(t *testing.T) {
	plan, err := PlanMove(3, 9)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Cells() != 6 {
		t.Errorf("cells = %d, want 6", plan.Cells())
	}
	if want := 6 * PhasesPerCell; len(plan.Steps) != want {
		t.Errorf("steps = %d, want %d", len(plan.Steps), want)
	}
	if plan.Signals() <= 0 {
		t.Error("plan should issue signals")
	}
	// Phases must be consecutively numbered.
	for i, s := range plan.Steps {
		if s.Phase != i {
			t.Fatalf("step %d has phase %d", i, s.Phase)
		}
	}
}

func TestPlanMoveBackward(t *testing.T) {
	fwd, err := PlanMove(0, 5)
	if err != nil {
		t.Fatal(err)
	}
	back, err := PlanMove(5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if fwd.Cells() != back.Cells() || fwd.Signals() != back.Signals() {
		t.Error("forward and backward moves should cost the same")
	}
}

func TestPlanMoveDegenerateAndInvalid(t *testing.T) {
	plan, err := PlanMove(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Steps) != 0 || plan.Signals() != 0 {
		t.Error("zero-distance move should be free")
	}
	if _, err := PlanMove(-1, 3); err == nil {
		t.Error("negative trap index should fail")
	}
}

func TestPlanMoveDurationAndFidelity(t *testing.T) {
	plan, _ := PlanMove(0, 600)
	if got, want := plan.Duration(base), 120*time.Microsecond; got != want {
		t.Errorf("duration = %v, want %v", got, want)
	}
	e := 1 - plan.Fidelity(base)
	if e < 5e-4 || e > 7e-4 {
		t.Errorf("600-cell move error = %g, want ~6e-4", e)
	}
}

// Property: signals scale linearly with distance, touching only local
// electrodes each phase.
func TestPlanMoveLinearSignalsProperty(t *testing.T) {
	f := func(aRaw, bRaw uint8) bool {
		a, b := int(aRaw), int(bRaw)
		plan, err := PlanMove(a, b)
		if err != nil {
			return false
		}
		if plan.Signals() != plan.Cells()*2*PhasesPerCell {
			return false
		}
		for _, s := range plan.Steps {
			if len(s.Levels) > ElectrodesPerTrap {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDistributionBaseline(t *testing.T) {
	// A 16x16-grid diameter worth of distance: 30 hops x 600 cells.
	d := Distribution{Params: base, DistanceCells: 18000}
	res, err := d.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatal("baseline ballistic distribution should be feasible")
	}
	if res.FinalError > 7.5e-5 {
		t.Errorf("final error %g above threshold", res.FinalError)
	}
	// 18000 cells of movement error ~ 1.8e-2 arrival error.
	if res.ArrivalError < 1e-2 || res.ArrivalError > 3e-2 {
		t.Errorf("arrival error = %g, want ~1.8e-2", res.ArrivalError)
	}
	if res.Rounds != 3 {
		t.Errorf("rounds = %d, want 3", res.Rounds)
	}
	if res.ControlSignals <= 0 {
		t.Error("shuttling must cost control signals")
	}
}

func TestDistributionValidation(t *testing.T) {
	if _, err := (Distribution{Params: base, DistanceCells: 1}).Evaluate(); err == nil {
		t.Error("distance 1 should fail")
	}
	bad := base
	bad.Errors.MoveCell = -1
	if _, err := (Distribution{Params: bad, DistanceCells: 100}).Evaluate(); err == nil {
		t.Error("invalid params should fail")
	}
}

func TestDistributionInfeasibleAtHighError(t *testing.T) {
	d := Distribution{Params: base.WithUniformError(1e-3), DistanceCells: 1200}
	res, err := d.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	if res.Feasible {
		t.Error("distribution at 1e-3 uniform error should be infeasible")
	}
}

func TestFidelityDifferenceClaim(t *testing.T) {
	// Paper §4.6: "The final fidelity of these two techniques is
	// approximately the same" because gate error is far below movement
	// error.  Check within 2x over a range of distances.
	for _, cells := range []int{600, 3000, 12000, 36000} {
		c, err := Compare(base, cells, 600)
		if err != nil {
			t.Fatal(err)
		}
		ratio := c.ChainedPairError / c.BallisticPairError
		if ratio < 0.5 || ratio > 2.0 {
			t.Errorf("%d cells: chained/ballistic pair error = %.2f, want ~1", cells, ratio)
		}
	}
}

func TestLatencyCrossoverClaim(t *testing.T) {
	// Paper §4.6: ballistic wins below ~600 cells, teleportation above.
	short, err := Compare(base, 300, 600)
	if err != nil {
		t.Fatal(err)
	}
	if short.BallisticLatency >= short.TeleportLatency {
		t.Errorf("at 300 cells ballistic %v should beat teleport %v",
			short.BallisticLatency, short.TeleportLatency)
	}
	long, err := Compare(base, 6000, 600)
	if err != nil {
		t.Fatal(err)
	}
	if long.TeleportLatency >= long.BallisticLatency {
		t.Errorf("at 6000 cells teleport %v should beat ballistic %v",
			long.TeleportLatency, long.BallisticLatency)
	}
}

func TestCompareValidation(t *testing.T) {
	if _, err := Compare(base, 0, 600); err == nil {
		t.Error("zero distance should fail")
	}
	if _, err := Compare(base, 600, 0); err == nil {
		t.Error("zero hop length should fail")
	}
}

func TestLevelString(t *testing.T) {
	if Low.String() != "low" || Mid.String() != "mid" || High.String() != "high" {
		t.Error("level names wrong")
	}
	if Level(9).String() != "Level(9)" {
		t.Error("unknown level rendering wrong")
	}
}
