package route

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/mesh"
)

// byDistance routes each communication with one of two inner policies
// chosen by the channel's distance class.
type byDistance struct {
	short, long Policy
	threshold   int
}

// ByDistance returns a per-channel composite policy: communications
// whose Manhattan distance is below threshold route with the short
// policy, all others with the long policy.  It lets a machine pair a
// low-turn policy for neighbor traffic with a load-spreading one for
// long hauls — the per-channel routing dimension of the resource
// studies.
//
// The canonical name encodes the composition, e.g.
// "bydist(xy,zigzag,5)", so cache keys distinguish every (short, long,
// threshold) combination and Parse round-trips it.  The composite is
// deterministic (route-cacheable) exactly when both inner policies
// are; threshold must be >= 1 and the inner policies must themselves
// be deadlock-free under the router's turn model, which every shipped
// policy is.
func ByDistance(short, long Policy, threshold int) (Policy, error) {
	if short == nil || long == nil {
		return nil, fmt.Errorf("route: ByDistance needs two policies")
	}
	if threshold < 1 {
		return nil, fmt.Errorf("route: ByDistance threshold must be >= 1, got %d", threshold)
	}
	return byDistance{short: short, long: long, threshold: threshold}, nil
}

// Name returns the canonical composite name,
// "bydist(<short>,<long>,<threshold>)".
func (p byDistance) Name() string {
	return fmt.Sprintf("bydist(%s,%s,%d)", p.short.Name(), p.long.Name(), p.threshold)
}

// Deterministic reports load-independence: true exactly when both
// inner policies are deterministic, so the route cache stays sound.
func (p byDistance) Deterministic() bool {
	return IsDeterministic(p.short) && IsDeterministic(p.long)
}

// Route delegates to the distance class's policy.
func (p byDistance) Route(g mesh.Grid, src, dst mesh.Coord, loads Loads) ([]mesh.Direction, error) {
	if mesh.Manhattan(src, dst) < p.threshold {
		return p.short.Route(g, src, dst, loads)
	}
	return p.long.Route(g, src, dst, loads)
}

// parseByDistance resolves a "bydist(short,long,threshold)" name; the
// inner policy names are themselves resolved with Parse, so composites
// may nest.
func parseByDistance(n string) (Policy, error) {
	inner := strings.TrimSuffix(strings.TrimPrefix(n, "bydist("), ")")
	parts := splitTopLevel(inner)
	if len(parts) != 3 {
		return nil, fmt.Errorf("route: bad bydist spec %q (want bydist(short,long,threshold))", n)
	}
	short, err := Parse(parts[0])
	if err != nil {
		return nil, err
	}
	long, err := Parse(parts[1])
	if err != nil {
		return nil, err
	}
	threshold, err := strconv.Atoi(strings.TrimSpace(parts[2]))
	if err != nil {
		return nil, fmt.Errorf("route: bad bydist threshold %q: %v", parts[2], err)
	}
	return ByDistance(short, long, threshold)
}

// splitTopLevel splits a comma-separated list while respecting
// parentheses, so "bydist(xy,yx,5),zigzag" yields two elements.
func splitTopLevel(s string) []string {
	var out []string
	depth, start := 0, 0
	for i, c := range s {
		switch c {
		case '(':
			depth++
		case ')':
			depth--
		case ',':
			if depth == 0 {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	return append(out, s[start:])
}
