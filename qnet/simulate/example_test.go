package simulate_test

import (
	"context"
	"fmt"
	"log"

	"repro/qnet"
	"repro/qnet/simulate"
)

// Example_machineRun builds one simulated machine and executes a QFT
// instruction stream on it — the quickstart of the qnet/simulate API.
func Example_machineRun() {
	grid, err := qnet.NewGrid(4, 4)
	if err != nil {
		log.Fatal(err)
	}
	m, err := simulate.New(grid, simulate.MobileQubit,
		simulate.WithResources(16, 16, 8),
		simulate.WithPurifyDepth(3))
	if err != nil {
		log.Fatal(err)
	}
	res, err := m.Run(context.Background(), qnet.QFT(grid.Tiles()))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ops=%d local=%d channels=%d pairs=%d\n",
		res.Ops, res.LocalOps, res.Channels, res.PairsDelivered)
	// Output:
	// ops=120 local=0 channels=135 pairs=52920
}

// Example_sweep expands a small parameter space — both layouts at two
// allocations — and fans the runs out across worker goroutines.
// Results come back in deterministic expansion order regardless of
// worker count.
func Example_sweep() {
	grid, err := qnet.NewGrid(4, 4)
	if err != nil {
		log.Fatal(err)
	}
	points, err := simulate.Sweep(context.Background(), simulate.Space{
		Grids:   []qnet.Grid{grid},
		Layouts: []simulate.Layout{simulate.HomeBase, simulate.MobileQubit},
		Resources: []simulate.Resources{
			{Teleporters: 16, Generators: 16, Purifiers: 8},
			{Teleporters: 8, Generators: 8, Purifiers: 4},
		},
		Programs: []qnet.Program{qnet.QFT(grid.Tiles())},
	}, simulate.WithWorkers(4))
	if err != nil {
		log.Fatal(err)
	}
	for _, pt := range points {
		fmt.Printf("%v t=%d: ops=%d\n",
			pt.Point.Layout, pt.Point.Resources.Teleporters, pt.Result.Ops)
	}
	// Output:
	// HomeBase t=16: ops=120
	// HomeBase t=8: ops=120
	// MobileQubit t=16: ops=120
	// MobileQubit t=8: ops=120
}

// Example_cachedSweep runs the same sweep twice against one result
// cache: every point of the second pass is served from the cache
// without simulating, which is what makes repeated figure generation
// incremental.  A disk-backed cache (NewDiskCache / WithCacheDir)
// extends the same behaviour across processes.
func Example_cachedSweep() {
	grid, err := qnet.NewGrid(4, 4)
	if err != nil {
		log.Fatal(err)
	}
	space := simulate.Space{
		Grids:     []qnet.Grid{grid},
		Layouts:   []simulate.Layout{simulate.HomeBase, simulate.MobileQubit},
		Resources: []simulate.Resources{{Teleporters: 16, Generators: 16, Purifiers: 8}},
		Programs:  []qnet.Program{qnet.QFT(grid.Tiles())},
		Seeds:     []int64{1, 2, 3},
		Options:   []simulate.Option{simulate.WithFailureRate(0.1)},
	}
	cache := simulate.NewCache(0)
	ctx := context.Background()
	cold, err := simulate.Sweep(ctx, space, simulate.WithCache(cache))
	if err != nil {
		log.Fatal(err)
	}
	warm, err := simulate.Sweep(ctx, space, simulate.WithCache(cache))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("cold:", simulate.Summarize(cold))
	fmt.Println("warm:", simulate.Summarize(warm))
	// Output:
	// cold: 6 points, 0 cached (0.0%), 0 failed
	// warm: 6 points, 6 cached (100.0%), 0 failed
}
