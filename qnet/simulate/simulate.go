// Package simulate is the event-driven mesh-interconnect simulator of
// the paper's Section 5 behind a builder-style public API: a mesh grid
// of teleporter/generator/purifier nodes executing logical instruction
// streams under full contention.
//
// A Machine is built once from a grid, a layout and functional options,
// then run against any number of Programs:
//
//	m, err := simulate.New(grid, simulate.MobileQubit,
//		simulate.WithResources(16, 16, 8),
//		simulate.WithPurifyDepth(3),
//		simulate.WithSeed(42))
//	res, err := m.Run(ctx, qnet.QFT(grid.Tiles()))
//
// Run takes a context.Context; cancellation and deadlines propagate into
// the discrete-event loop, so a runaway configuration can be aborted.
//
// A Session wraps a Machine for a sequence of runs, deriving a distinct
// reproducible RNG seed per run and recording every result.  Sweep
// expands a parameter space (grids × layouts × resources × programs ×
// depths × seeds) and fans the runs out across worker goroutines — see
// sweep.go.
//
// Because every run is a pure function of its resolved configuration,
// results are content-addressable: Machine.CacheKey hashes the full
// run point and Cache stores Results under it (in-memory LRU plus an
// optional on-disk JSON store), so a sweep installed with WithCache or
// WithCacheDir only simulates points it has never seen — see cache.go
// and the Example_cachedSweep function.  Ensemble statistics over the
// seed dimension live in the sibling package qnet/stats.
//
// Configuration mistakes surface as *qnet.ConfigError and capacity
// overruns as *qnet.CapacityError, matchable with errors.Is/errors.As.
package simulate

import (
	"context"
	"time"

	"repro/internal/netsim"

	"repro/qnet"
)

// Layout selects the logical-qubit floorplan (Figure 15).
type Layout = netsim.Layout

// The two floorplans of the paper's Section 5.
const (
	// HomeBase gives every logical qubit a fixed home tile; operands
	// teleport in for each operation and back home afterwards.
	HomeBase = netsim.HomeBase
	// MobileQubit lets the moving operand stay wherever it travels.
	MobileQubit = netsim.MobileQubit
)

// Result summarizes a simulation run: execution time, channel and EPR
// statistics, event counts and resource utilizations.
type Result = netsim.Result

// Detail carries per-component statistics of a run (per-tile and
// per-link utilizations, turn counts, ASCII heatmaps) for bottleneck
// analysis.
type Detail = netsim.Detail

// Option configures a Machine.  Options are applied in order over the
// paper's defaults (depth-3 purifiers, level-2 Steane code, 600-cell
// hops, t=g=p=16, the Table 1-2 ion-trap device).
type Option func(*netsim.Config)

// WithParams replaces the device constants (Tables 1 and 2).
func WithParams(p qnet.Params) Option {
	return func(c *netsim.Config) { c.Params = p }
}

// WithResources sets the per-node resource counts: t teleporters per T'
// node, g generators per G node and p queue purifiers per P node.
func WithResources(t, g, p int) Option {
	return func(c *netsim.Config) {
		c.Teleporters, c.Generators, c.Purifiers = t, g, p
	}
}

// WithPurifyDepth sets the queue-purifier tree depth (the paper uses 3:
// 8 pairs per purified output).
func WithPurifyDepth(depth int) Option {
	return func(c *netsim.Config) { c.PurifyDepth = depth }
}

// WithCodeLevel sets the Steane concatenation level of transported
// logical qubits (the paper uses 2: 49 physical qubits).
func WithCodeLevel(level int) Option {
	return func(c *netsim.Config) { c.CodeLevel = level }
}

// WithHopCells sets the physical span of one mesh hop (the paper derives
// 600 cells from the latency crossover).
func WithHopCells(cells int) Option {
	return func(c *netsim.Config) { c.HopCells = cells }
}

// WithTurnCells sets the in-router ballistic distance paid on X/Y turns.
func WithTurnCells(cells int) Option {
	return func(c *netsim.Config) { c.TurnCells = cells }
}

// WithSeed sets the base seed of the machine's per-run RNG.  Two
// machines with equal configurations and seeds produce identical runs.
func WithSeed(seed int64) Option {
	return func(c *netsim.Config) { c.Seed = seed }
}

// WithFailureRate injects stochastic purification failure: each batch
// fails end-to-end purification with this probability and a replacement
// batch is sent through the network.  Zero (the default) keeps the
// simulation fully deterministic regardless of seed.
func WithFailureRate(rate float64) Option {
	return func(c *netsim.Config) { c.PurifyFailureRate = rate }
}

// Machine is a configured, validated simulated quantum computer.  It is
// immutable after New and safe for concurrent use: every Run builds
// fresh simulator state (including a per-run RNG), so one Machine can
// serve many goroutines.
type Machine struct {
	cfg netsim.Config
}

// New builds a Machine on the given grid and layout, applying opts over
// the paper's defaults.  It returns a *qnet.ConfigError describing the
// first invalid setting.
func New(grid qnet.Grid, layout Layout, opts ...Option) (*Machine, error) {
	cfg := netsim.DefaultConfig(grid, layout, 16, 16, 16)
	for _, opt := range opts {
		opt(&cfg)
	}
	if err := validate(cfg); err != nil {
		return nil, err
	}
	// Backstop: any rule added to netsim.Config.Validate that validate
	// does not mirror yet still surfaces here at build time as a
	// structured error, not at Run time as a bare string.
	if err := cfg.Validate(); err != nil {
		return nil, &qnet.ConfigError{Field: "Config", Value: "-", Reason: err.Error()}
	}
	return &Machine{cfg: cfg}, nil
}

// validate mirrors netsim.Config.Validate with structured errors, so
// misconfiguration is caught at build time and matchable with errors.Is.
func validate(cfg netsim.Config) error {
	if err := cfg.Params.Validate(); err != nil {
		return &qnet.ConfigError{Field: "Params", Value: "-", Reason: err.Error()}
	}
	if cfg.Grid.Tiles() == 0 {
		return &qnet.ConfigError{Field: "Grid", Value: cfg.Grid, Reason: "grid must contain at least one tile"}
	}
	switch cfg.Layout {
	case HomeBase, MobileQubit:
	default:
		return &qnet.ConfigError{Field: "Layout", Value: int(cfg.Layout), Reason: "want HomeBase or MobileQubit"}
	}
	if cfg.Teleporters < 1 {
		return &qnet.ConfigError{Field: "Teleporters", Value: cfg.Teleporters, Reason: "must be >= 1"}
	}
	if cfg.Generators < 1 {
		return &qnet.ConfigError{Field: "Generators", Value: cfg.Generators, Reason: "must be >= 1"}
	}
	if cfg.Purifiers < 1 {
		return &qnet.ConfigError{Field: "Purifiers", Value: cfg.Purifiers, Reason: "must be >= 1"}
	}
	if cfg.PurifyDepth < 1 || cfg.PurifyDepth > 16 {
		return &qnet.ConfigError{Field: "PurifyDepth", Value: cfg.PurifyDepth, Reason: "must be in [1,16]"}
	}
	if cfg.CodeLevel < 0 {
		return &qnet.ConfigError{Field: "CodeLevel", Value: cfg.CodeLevel, Reason: "must be >= 0"}
	}
	if cfg.HopCells < 1 {
		return &qnet.ConfigError{Field: "HopCells", Value: cfg.HopCells, Reason: "must be >= 1"}
	}
	if cfg.TurnCells < 0 {
		return &qnet.ConfigError{Field: "TurnCells", Value: cfg.TurnCells, Reason: "must be >= 0"}
	}
	if cfg.PurifyFailureRate < 0 || cfg.PurifyFailureRate >= 1 {
		return &qnet.ConfigError{Field: "FailureRate", Value: cfg.PurifyFailureRate, Reason: "must be in [0,1)"}
	}
	return nil
}

// Grid returns the machine's mesh.
func (m *Machine) Grid() qnet.Grid { return m.cfg.Grid }

// Layout returns the machine's floorplan policy.
func (m *Machine) Layout() Layout { return m.cfg.Layout }

// Seed returns the machine's base RNG seed.
func (m *Machine) Seed() int64 { return m.cfg.Seed }

// checkProgram validates prog against the machine's capacity.
func (m *Machine) checkProgram(prog qnet.Program) error {
	if err := prog.Validate(); err != nil {
		return &qnet.ConfigError{Field: "Program", Value: prog.Name, Reason: err.Error()}
	}
	if prog.Qubits > m.cfg.Grid.Tiles() {
		return &qnet.CapacityError{Resource: "tiles", Need: prog.Qubits, Have: m.cfg.Grid.Tiles()}
	}
	return nil
}

// Run executes one logical instruction stream on the machine.  The
// context is threaded into the discrete-event loop: when ctx is
// cancelled or its deadline passes, Run aborts and returns an error
// wrapping ctx.Err().
func (m *Machine) Run(ctx context.Context, prog qnet.Program) (Result, error) {
	res, _, err := m.RunDetailed(ctx, prog)
	return res, err
}

// RunDetailed is Run plus per-component statistics for bottleneck
// analysis and heatmaps.
func (m *Machine) RunDetailed(ctx context.Context, prog qnet.Program) (Result, *Detail, error) {
	if err := m.checkProgram(prog); err != nil {
		return Result{}, nil, err
	}
	return netsim.RunDetailedContext(ctx, m.cfg, prog)
}

// runSeeded is Run with the per-run seed overridden (Session and Sweep
// derive one seed per run from the base seed).
func (m *Machine) runSeeded(ctx context.Context, prog qnet.Program, seed int64) (Result, error) {
	if err := m.checkProgram(prog); err != nil {
		return Result{}, err
	}
	cfg := m.cfg
	cfg.Seed = seed
	return netsim.RunContext(ctx, cfg, prog)
}

// Session runs a sequence of programs on one Machine.  Each run gets a
// distinct, reproducibly derived RNG seed (run i of two sessions on
// identical machines behaves identically), and every result is
// recorded.  A Session is not safe for concurrent use; create one per
// goroutine, or use Sweep for parallel fan-out.
type Session struct {
	machine *Machine
	runs    int
	results []Result
}

// NewSession starts a fresh run sequence on the machine.
func (m *Machine) NewSession() *Session {
	return &Session{machine: m}
}

// deriveSeed mixes a base seed and a run index into a decorrelated
// per-run seed (splitmix64 finalizer).
func deriveSeed(base int64, run int) int64 {
	z := uint64(base) + uint64(run+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// Run executes prog as the session's next run.
func (s *Session) Run(ctx context.Context, prog qnet.Program) (Result, error) {
	seed := deriveSeed(s.machine.cfg.Seed, s.runs)
	res, err := s.machine.runSeeded(ctx, prog, seed)
	if err != nil {
		return Result{}, err
	}
	s.runs++
	s.results = append(s.results, res)
	return res, nil
}

// Runs returns the number of completed runs.
func (s *Session) Runs() int { return s.runs }

// Results returns the recorded results of all completed runs, in run
// order.  The returned slice is the session's own; do not modify it.
func (s *Session) Results() []Result { return s.results }

// TotalExec sums the execution times of all completed runs.
func (s *Session) TotalExec() time.Duration {
	var total time.Duration
	for _, r := range s.results {
		total += r.Exec
	}
	return total
}
