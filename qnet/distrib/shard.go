// The shard planner: deterministic partition of a point list.

package distrib

// Shard is one planned unit of dispatch: a contiguous slice of point
// indices into a space's deterministic expansion.
type Shard struct {
	// ID is the shard's position in plan order, 0-based.
	ID int
	// Indices are the point indices this shard owns.
	Indices []int
}

// PlanShards partitions the point indices [0, total) into at most
// shards contiguous, near-equal shards (the first total%shards shards
// get one extra point).  A non-positive shard count, or one exceeding
// the point count, collapses to one point per shard.  The plan is a
// pure function of its arguments, so coordinator restarts re-plan
// identically.
func PlanShards(total, shards int) []Shard {
	if total <= 0 {
		return nil
	}
	if shards <= 0 || shards > total {
		shards = total
	}
	out := make([]Shard, 0, shards)
	base := total / shards
	extra := total % shards
	next := 0
	for i := 0; i < shards; i++ {
		size := base
		if i < extra {
			size++
		}
		idx := make([]int, size)
		for j := range idx {
			idx[j] = next
			next++
		}
		out = append(out, Shard{ID: i, Indices: idx})
	}
	return out
}
