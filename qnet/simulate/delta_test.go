package simulate

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/qnet"
)

func TestDiff(t *testing.T) {
	a := Result{Exec: time.Second, Ops: 10, Events: 100, Turns: 5, TeleporterUtil: 0.5}
	if d := Diff(a, a); !d.IsZero() {
		t.Fatalf("Diff(a, a) = %+v, want zero", d)
	}
	if s := Diff(a, a).String(); s != "no change" {
		t.Fatalf("zero delta renders %q", s)
	}
	b := a
	b.Exec += 200 * time.Millisecond
	b.Events += 40
	b.Turns -= 2
	d := Diff(a, b)
	if d.IsZero() {
		t.Fatal("nonzero delta reported zero")
	}
	if d.Exec != 200*time.Millisecond || d.Events != 40 || d.Turns != -2 {
		t.Fatalf("Diff = %+v", d)
	}
	s := d.String()
	for _, want := range []string{"exec +200ms", "events +40", "turns -2"} {
		if !strings.Contains(s, want) {
			t.Fatalf("delta string %q missing %q", s, want)
		}
	}
	if strings.Contains(s, "ops") {
		t.Fatalf("delta string %q includes an unchanged metric", s)
	}
	// Signs: Diff(b, a) is the negation.
	if r := Diff(b, a); r.Exec != -d.Exec || r.Events != -d.Events {
		t.Fatalf("reverse diff %+v does not negate %+v", r, d)
	}
}

func TestSessionDelta(t *testing.T) {
	grid, err := qnet.NewGrid(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(grid, HomeBase, WithResources(8, 8, 4), WithFailureRate(0.1), WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	s := m.NewSession()
	prog := qnet.QFT(grid.Tiles())
	for i := 0; i < 2; i++ {
		if _, err := s.Run(context.Background(), prog); err != nil {
			t.Fatal(err)
		}
	}
	d, err := s.Delta(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if want := Diff(s.Results()[0], s.Results()[1]); d != want {
		t.Fatalf("Session.Delta = %+v, want %+v", d, want)
	}
	// With failure injection the two derived seeds almost surely
	// diverge somewhere; assert the delta is self-consistent either
	// way: zero iff the results are equal.
	if d.IsZero() != (s.Results()[0] == s.Results()[1]) {
		t.Fatal("IsZero disagrees with result equality")
	}
	if _, err := s.Delta(0, 2); err == nil {
		t.Fatal("out-of-range run index accepted")
	}
	if _, err := s.Delta(-1, 0); err == nil {
		t.Fatal("negative run index accepted")
	}
}
