package netsim

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/mesh"
	"repro/internal/sim"
	"repro/internal/workload"
)

// StallError reports that the event loop drained before the program
// finished: some operation is blocked forever (historically, a routing
// policy whose turn model admits a dependency cycle).  The simulator
// detects the stall and returns this structured error instead of
// hanging — the engine has no pending events for blocked waiters, so a
// deadlocked run terminates immediately.
type StallError struct {
	// Completed and Total are the program's finished and total op
	// counts at the stall.
	Completed, Total int
}

// Error renders the stall.
func (e *StallError) Error() string {
	return fmt.Sprintf("netsim: simulation stalled with %d/%d ops done", e.Completed, e.Total)
}

// Detail carries per-component statistics of a run, for bottleneck
// analysis and visualization.  It accompanies Result (which stays a
// flat, comparable summary).
type Detail struct {
	Grid mesh.Grid
	// TeleporterUtil, PurifierUtil are per-tile utilizations, indexed
	// row-major.
	TeleporterUtil []float64
	PurifierUtil   []float64
	// Turns is the per-tile count of X/Y turns routed through the node.
	Turns []uint64
	// GeneratorUtil is the per-link generator utilization, indexed like
	// Grid.Links().
	GeneratorUtil []float64
}

// RunDetailed is Run plus per-component statistics.
func RunDetailed(cfg Config, prog workload.Program) (Result, *Detail, error) {
	return RunDetailedContext(context.Background(), cfg, prog)
}

// RunDetailedContext is RunDetailed with cancellation: the event loop
// polls ctx and aborts with the context's error when it is cancelled.
func RunDetailedContext(ctx context.Context, cfg Config, prog workload.Program) (Result, *Detail, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, nil, err
	}
	if err := prog.Validate(); err != nil {
		return Result{}, nil, err
	}
	if prog.Qubits > cfg.Grid.Tiles() {
		return Result{}, nil, fmt.Errorf("netsim: %d qubits exceed %d tiles", prog.Qubits, cfg.Grid.Tiles())
	}

	s := &simulator{cfg: cfg}
	plan, err := s.planPartition()
	if err != nil {
		return Result{}, nil, err
	}
	if plan != nil {
		// Parallel mode: the coupled model executes inside region 0 of
		// the partitioned engine; see parallel.go for the decomposition
		// contract.
		s.engine = plan.engine.Region(0).Engine
	} else {
		s.engine = sim.New()
	}
	if err := s.build(prog); err != nil {
		return Result{}, nil, err
	}
	s.tryIssue()
	if plan != nil {
		err = plan.run(ctx)
	} else {
		_, err = s.engine.RunContext(ctx, 0)
	}
	if err != nil {
		return Result{}, nil, fmt.Errorf("netsim: run aborted: %w", err)
	}
	if s.err != nil {
		// A structured mid-run abort (blocked route, partitioned pair,
		// exhausted resend budget): the event loop drained cleanly, the
		// error explains why the program could not complete.
		return Result{}, nil, s.err
	}
	if !s.sch.Done() {
		return Result{}, nil, &StallError{Completed: s.sch.Completed(), Total: s.sch.Len()}
	}

	d := &Detail{Grid: cfg.Grid}
	d.TeleporterUtil = make([]float64, len(s.nodes))
	d.Turns = make([]uint64, len(s.nodes))
	for i, n := range s.nodes {
		d.TeleporterUtil[i] = n.Utilization()
		d.Turns[i] = n.Turns()
	}
	d.PurifierUtil = make([]float64, len(s.purify))
	for i, p := range s.purify {
		d.PurifierUtil[i] = p.Utilization()
	}
	// s.gnodes is indexed by mesh.Grid.LinkIndex, which is exactly the
	// Links() enumeration order Detail documents.
	d.GeneratorUtil = make([]float64, len(s.gnodes))
	for i, g := range s.gnodes {
		d.GeneratorUtil[i] = g.Utilization()
	}
	return s.result(prog), d, nil
}

// Heatmap renders one per-tile metric as an ASCII grid: each tile shows
// a digit 0-9 scaling with utilization (".": zero).
func (d *Detail) Heatmap(metric string) (string, error) {
	var values []float64
	switch metric {
	case "teleporter":
		values = d.TeleporterUtil
	case "purifier":
		values = d.PurifierUtil
	default:
		return "", fmt.Errorf("netsim: unknown heatmap metric %q (want teleporter or purifier)", metric)
	}
	max := 0.0
	for _, v := range values {
		if v > max {
			max = v
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s utilization (max %.1f%%)\n", metric, 100*max)
	for y := 0; y < d.Grid.Height; y++ {
		for x := 0; x < d.Grid.Width; x++ {
			v := values[d.Grid.Index(mesh.Coord{X: x, Y: y})]
			switch {
			case v <= 0:
				b.WriteByte('.')
			case max <= 0:
				b.WriteByte('.')
			default:
				level := int(v / max * 9)
				b.WriteByte(byte('0' + level))
			}
			b.WriteByte(' ')
		}
		b.WriteByte('\n')
	}
	return b.String(), nil
}

// HottestTile returns the coordinate and value of the highest
// teleporter-utilization tile.
func (d *Detail) HottestTile() (mesh.Coord, float64) {
	best, bestIdx := -1.0, 0
	for i, v := range d.TeleporterUtil {
		if v > best {
			best, bestIdx = v, i
		}
	}
	return d.Grid.CoordOf(bestIdx), best
}
