// Package repro is a Go reproduction of "Interconnection Networks for
// Scalable Quantum Computers" (Isailovic, Patel, Whitney, Kubiatowicz —
// ISCA 2006, arXiv:quant-ph/0604048).
//
// The paper shows that communication in a quantum computer reduces to
// constructing reliable quantum channels by distributing high-fidelity
// EPR pairs, develops analytical models of such channels (latency,
// bandwidth, error rate, resource usage), and simulates a mesh-grid
// interconnect of teleporter nodes running the Quantum Fourier
// Transform.
//
// This package is a facade over the implementation packages, re-exported
// so that the library presents one coherent public API:
//
//   - Device parameters (Tables 1-2):       Params, IonTrap2006
//   - Channel fidelity models (Eqs 1-6):    Ballistic, Teleport, Generate
//   - Bell-diagonal states:                 Bell, Werner
//   - Purification (Fig 8, Fig 14):         DEJMPS, BBPSSW, QueuePurifier
//   - EPR distribution policies (Figs 9-12): DistributionConfig, Scheme
//   - Error-correction sizing:              Steane
//   - The network simulator (Fig 16):       SimConfig, RunSimulation
//   - Workloads (Shor kernels):             QFT, ModMult, ModExp
//
// The deeper APIs (discrete-event engine, router model, classical
// network, report emitters) live in the internal packages and are
// exercised through the commands in cmd/ and the examples in examples/.
package repro

import (
	"repro/internal/core"
	"repro/internal/ecc"
	"repro/internal/epr"
	"repro/internal/fidelity"
	"repro/internal/mesh"
	"repro/internal/netsim"
	"repro/internal/phys"
	"repro/internal/purify"
	"repro/internal/workload"
)

// Params bundles the ion-trap device constants of the paper's Tables 1
// and 2.
type Params = phys.Params

// IonTrap2006 returns the paper's baseline device parameters.
func IonTrap2006() Params { return phys.IonTrap2006() }

// ThresholdError is the fault-tolerance threshold 7.5e-5 the paper
// imposes on data-qubit error.
const ThresholdError = fidelity.ThresholdError

// Bell is a Bell-diagonal two-qubit state; its A coefficient is the
// pair's fidelity.
type Bell = fidelity.Bell

// Werner lifts a scalar fidelity into the Bell-diagonal representation.
func Werner(f float64) Bell { return fidelity.Werner(f) }

// Ballistic applies the paper's Eq 1: fidelity after moving a qubit over
// the given number of ion-trap cells.
func Ballistic(p Params, old float64, cells int) float64 {
	return fidelity.Ballistic(p, old, cells)
}

// Teleport applies the paper's Eq 3: fidelity after one teleportation
// using an EPR pair of the given fidelity.
func Teleport(p Params, old, epr float64) float64 { return fidelity.Teleport(p, old, epr) }

// Generate applies the paper's Eq 4: fidelity of a freshly generated EPR
// pair.
func Generate(p Params, fzero float64) float64 { return fidelity.Generate(p, fzero) }

// Protocol is a two-to-one entanglement purification protocol.
type Protocol = purify.Protocol

// DEJMPS is the Deutsch et al. purification protocol (the paper's
// choice).
type DEJMPS = purify.DEJMPS

// BBPSSW is the Bennett et al. purification protocol.
type BBPSSW = purify.BBPSSW

// QueuePurifier is the robust queue-based purifier of Figure 14.
type QueuePurifier = purify.QueuePurifier

// NewQueuePurifier builds a queue purifier of the given tree depth.
func NewQueuePurifier(proto Protocol, depth int) (*QueuePurifier, error) {
	return purify.NewQueuePurifier(proto, depth)
}

// Scheme selects where purification happens during EPR distribution
// (the five policies of Figures 10-12).
type Scheme = epr.Scheme

// The five purification placement policies.
const (
	EndpointsOnly = epr.EndpointsOnly
	OnceBefore    = epr.OnceBefore
	TwiceBefore   = epr.TwiceBefore
	OnceAfter     = epr.OnceAfter
	TwiceAfter    = epr.TwiceAfter
)

// DistributionConfig models EPR-pair distribution over a chain of
// teleporter hops.
type DistributionConfig = epr.Config

// DefaultDistributionConfig returns the paper's channel-setup model:
// 600-cell hops, DEJMPS purification, 7.5e-5 target.
func DefaultDistributionConfig(p Params) DistributionConfig { return epr.DefaultConfig(p) }

// Code is a concatenated quantum error-correcting code.
type Code = ecc.Code

// Steane returns the concatenated Steane [[7,1,3]] code at the given
// level; level 2 (49 physical qubits) is the paper's choice.
func Steane(level int) (Code, error) { return ecc.Steane(level) }

// Grid is a rectangular tile mesh.
type Grid = mesh.Grid

// NewGrid builds a mesh of the given dimensions.
func NewGrid(w, h int) (Grid, error) { return mesh.NewGrid(w, h) }

// Layout selects the logical-qubit floorplan (Figure 15).
type Layout = netsim.Layout

// The two floorplans of the paper's Section 5.
const (
	HomeBase    = netsim.HomeBase
	MobileQubit = netsim.MobileQubit
)

// SimConfig parameterizes the event-driven network simulator.
type SimConfig = netsim.Config

// SimResult summarizes a simulation run.
type SimResult = netsim.Result

// DefaultSimConfig returns the paper's simulator parameters on the given
// grid with per-node resource counts t (teleporters), g (generators) and
// p (queue purifiers).
func DefaultSimConfig(grid Grid, layout Layout, t, g, p int) SimConfig {
	return netsim.DefaultConfig(grid, layout, t, g, p)
}

// RunSimulation executes a logical instruction stream on the simulated
// machine.
func RunSimulation(cfg SimConfig, prog Program) (SimResult, error) {
	return netsim.Run(cfg, prog)
}

// ChannelSpec describes a reliable quantum channel to be planned.
type ChannelSpec = core.Spec

// Channel is a planned reliable quantum channel: the paper's latency,
// bandwidth, error-rate and resource metrics.
type Channel = core.Channel

// PlanChannel builds the analytical channel model of the paper's
// Section 4 for one path.
func PlanChannel(spec ChannelSpec) (Channel, error) { return core.Plan(spec) }

// Program is a logical instruction stream of two-qubit operations.
type Program = workload.Program

// Op is one two-logical-qubit operation.
type Op = workload.Op

// QFT returns the Quantum Fourier Transform communication pattern
// (all-to-all) on n logical qubits.
func QFT(n int) Program { return workload.QFT(n) }

// ModMult returns the Modular Multiplication pattern (bipartite) between
// two sets of n logical qubits.
func ModMult(n int) Program { return workload.ModMult(n) }

// ModExp returns the Modular Exponentiation pattern (alternating
// all-to-all and bipartite) over two sets of n qubits.
func ModExp(n, steps int) Program { return workload.ModExp(n, steps) }
