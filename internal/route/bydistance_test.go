package route

import (
	"testing"

	"repro/internal/mesh"
)

func TestByDistanceRoutesByClass(t *testing.T) {
	g, err := mesh.NewGrid(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	p, err := ByDistance(XYOrder(), YXOrder(), 5)
	if err != nil {
		t.Fatal(err)
	}
	src := mesh.Coord{X: 1, Y: 1}
	// Distance 4 < 5: short class, must match XY exactly.
	near := mesh.Coord{X: 3, Y: 3}
	got, err := p.Route(g, src, near, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := XYOrder().Route(g, src, near, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("near route %v, want XY route %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("near route %v, want XY route %v", got, want)
		}
	}
	// Distance 10 >= 5: long class, must match YX exactly.
	far := mesh.Coord{X: 6, Y: 6}
	got, err = p.Route(g, src, far, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err = YXOrder().Route(g, src, far, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("far route %v, want YX route %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("far route %v, want YX route %v", got, want)
		}
	}
}

func TestByDistanceName(t *testing.T) {
	p, err := ByDistance(XYOrder(), ZigZag(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := p.Name(), "bydist(xy,zigzag,5)"; got != want {
		t.Errorf("Name() = %q, want %q", got, want)
	}
}

func TestByDistanceDeterministic(t *testing.T) {
	det, err := ByDistance(XYOrder(), YXOrder(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if !IsDeterministic(det) {
		t.Error("bydist(xy,yx,5) should be deterministic")
	}
	mixed, err := ByDistance(XYOrder(), LeastCongested(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if IsDeterministic(mixed) {
		t.Error("bydist(xy,least-congested,5) should not be deterministic")
	}
}

func TestByDistanceParse(t *testing.T) {
	p, err := Parse("bydist(xy,yx,5)")
	if err != nil {
		t.Fatal(err)
	}
	if got, want := p.Name(), "bydist(xy,yx,5)"; got != want {
		t.Errorf("parsed name %q, want %q", got, want)
	}
	// Nested composites round-trip too.
	nested, err := Parse("bydist(bydist(xy,yx,3),zigzag,9)")
	if err != nil {
		t.Fatal(err)
	}
	if got, want := nested.Name(), "bydist(bydist(xy,yx,3),zigzag,9)"; got != want {
		t.Errorf("nested name %q, want %q", got, want)
	}
	for _, bad := range []string{
		"bydist()",
		"bydist(xy,yx)",
		"bydist(xy,yx,zero)",
		"bydist(xy,yx,0)",
		"bydist(nope,yx,5)",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
}

func TestByDistanceParseList(t *testing.T) {
	ps, err := ParseList("bydist(xy,yx,5),zigzag")
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 2 {
		t.Fatalf("ParseList split into %d policies, want 2", len(ps))
	}
	if ps[0].Name() != "bydist(xy,yx,5)" || ps[1].Name() != "zigzag" {
		t.Errorf("ParseList = [%s, %s]", ps[0].Name(), ps[1].Name())
	}
}

func TestByDistanceValidation(t *testing.T) {
	if _, err := ByDistance(nil, YXOrder(), 5); err == nil {
		t.Error("nil short accepted")
	}
	if _, err := ByDistance(XYOrder(), nil, 5); err == nil {
		t.Error("nil long accepted")
	}
	if _, err := ByDistance(XYOrder(), YXOrder(), 0); err == nil {
		t.Error("zero threshold accepted")
	}
}
