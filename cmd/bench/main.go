// Command bench runs the repository's performance benchmarks
// (internal/perfbench) outside `go test` and emits a machine-readable
// JSON report — by default BENCH_qft.json — so the simulator's perf
// trajectory (ns/op, allocs/op, simulated events/sec) is recorded per
// change and comparable across changes.
//
// The benchmark bodies are exactly the ones `go test -bench .
// ./internal/perfbench/` runs; this command drives them through
// testing.Benchmark, so both harnesses measure the same code.
//
// Usage:
//
//	bench                  # 1s per benchmark, writes BENCH_qft.json
//	bench -benchtime 3x    # exactly 3 iterations per benchmark
//	bench -out report.json # alternate output path
//	bench -check           # 1 iteration each, validate the JSON, write nothing
//	bench -stamp 2026-08-07T00:00:00Z  # pin the generated timestamp (diff-stable reruns)
//
// The -check form is the CI smoke mode: it exercises every benchmark
// body and the whole JSON emission path in seconds, failing loudly if
// either rots, without recording numbers from an unloaded shared
// runner as if they were a trustworthy baseline.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/perfbench"
)

// report is the schema of BENCH_qft.json.
type report struct {
	// Schema versions the file format; consumers should check it.
	Schema string `json:"schema"`
	// Go, OS and Arch identify the toolchain and platform the numbers
	// were measured on (benchmark numbers are only comparable within a
	// platform).
	Go   string `json:"go"`
	OS   string `json:"os"`
	Arch string `json:"arch"`
	// CPUs is the logical CPU count of the measuring machine — required
	// context for the ParallelQFT numbers: the partitioned engine cannot
	// beat the serial one on a single-CPU box no matter how well it
	// scales, so speedups are only meaningful relative to this.
	CPUs int `json:"cpus"`
	// Generated is the RFC 3339 wall-clock time of the run.
	Generated string `json:"generated"`
	// Benchtime is the per-benchmark measuring budget that produced
	// these numbers ("1s", "3x", ...).
	Benchtime string `json:"benchtime"`
	// Benchmarks holds one entry per benchmark, in a fixed order.
	Benchmarks []entry `json:"benchmarks"`
}

// entry is one benchmark's measurement.
type entry struct {
	// Name is the benchmark's go-test-style name, e.g.
	// "EngineCancel/pending=1024" or "QFT/layout=HomeBase/route=xy".
	Name string `json:"name"`
	// Iterations is the measured b.N.
	Iterations int `json:"iterations"`
	// NsPerOp is wall time per operation in nanoseconds.
	NsPerOp float64 `json:"ns_per_op"`
	// AllocsPerOp and BytesPerOp are heap allocation counts and bytes
	// per operation.
	AllocsPerOp int64 `json:"allocs_per_op"`
	// BytesPerOp is heap bytes allocated per operation.
	BytesPerOp int64 `json:"bytes_per_op"`
	// EventsPerSec is the simulated-event throughput for full-run and
	// sweep benchmarks (0 for micro-benchmarks that don't report it).
	EventsPerSec float64 `json:"events_per_sec,omitempty"`
	// PointsPerSec is the merged run-point throughput of the
	// distributed-sweep benchmark (0 for benchmarks that don't report
	// it).
	PointsPerSec float64 `json:"points_per_sec,omitempty"`
	// SpeedupVsSerial is, for ParallelQFT entries with partitions > 1,
	// the events/sec ratio against the partitions=1 entry of the same
	// mesh (0 elsewhere).  Interpret it against CPUs.
	SpeedupVsSerial float64 `json:"speedup_vs_serial,omitempty"`
}

func main() {
	out := flag.String("out", "BENCH_qft.json", "output path for the JSON report")
	benchtime := flag.String("benchtime", "1s", "per-benchmark measuring budget (go test -benchtime syntax: a duration or Nx)")
	check := flag.Bool("check", false, "smoke mode: one iteration per benchmark, validate the JSON, write nothing")
	stamp := flag.String("stamp", "", "override the generated timestamp (RFC 3339), so reruns produce diff-stable reports")
	// testing.Init registers the test.* flags testing.Benchmark reads
	// its benchtime from; it must run before flag.Parse.
	testing.Init()
	flag.Parse()

	if *check {
		*benchtime = "1x"
	}
	if err := flag.Set("test.benchtime", *benchtime); err != nil {
		fmt.Fprintf(os.Stderr, "bench: bad -benchtime %q: %v\n", *benchtime, err)
		os.Exit(2)
	}

	generated := time.Now().UTC().Format(time.RFC3339)
	if *stamp != "" {
		ts, err := time.Parse(time.RFC3339, *stamp)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: bad -stamp %q: %v\n", *stamp, err)
			os.Exit(2)
		}
		generated = ts.UTC().Format(time.RFC3339)
	}
	rep := report{
		Schema:    "qnet-bench-v1",
		Go:        runtime.Version(),
		OS:        runtime.GOOS,
		Arch:      runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
		Generated: generated,
		Benchtime: *benchtime,
	}
	for _, b := range benchmarks() {
		fmt.Fprintf(os.Stderr, "bench: %s...\n", b.name)
		rep.Benchmarks = append(rep.Benchmarks, measure(b.name, b.fn))
	}
	fillSpeedups(rep.Benchmarks)

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := validate(data); err != nil {
		fmt.Fprintln(os.Stderr, "bench: invalid report:", err)
		os.Exit(1)
	}
	if *check {
		fmt.Printf("bench: ok (%d benchmarks, JSON emitter valid, nothing written)\n", len(rep.Benchmarks))
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	for _, e := range rep.Benchmarks {
		fmt.Printf("%-48s %12.0f ns/op %10d allocs/op", e.Name, e.NsPerOp, e.AllocsPerOp)
		if e.EventsPerSec > 0 {
			fmt.Printf(" %12.0f events/sec", e.EventsPerSec)
		}
		if e.PointsPerSec > 0 {
			fmt.Printf(" %12.1f points/sec", e.PointsPerSec)
		}
		fmt.Println()
	}
	fmt.Printf("bench: wrote %s (%d benchmarks)\n", *out, len(rep.Benchmarks))
}

// namedBench pairs a benchmark body with its report name.
type namedBench struct {
	name string
	fn   func(*testing.B)
}

// benchmarks enumerates the report's benchmark suite in fixed order:
// the engine micro-benchmarks, the cancellation regression sizes, the
// full-run layout x policy matrix, the 8-worker sweep and the
// 2-worker distributed sweep.
func benchmarks() []namedBench {
	list := []namedBench{{name: "EngineSchedule", fn: perfbench.EngineSchedule}}
	for _, n := range perfbench.CancelPendingSizes {
		list = append(list, namedBench{
			name: fmt.Sprintf("EngineCancel/pending=%d", n),
			fn:   perfbench.EngineCancel(n),
		})
	}
	for _, cfg := range perfbench.FullRunConfigs() {
		list = append(list, namedBench{
			name: "QFT/" + cfg.Name,
			fn:   perfbench.QFTRun(cfg.Layout, cfg.Policy),
		})
	}
	for _, edge := range perfbench.ParallelQFTEdges {
		for _, parts := range perfbench.ParallelQFTPartitions {
			list = append(list, namedBench{
				name: parallelName(edge, parts),
				fn:   perfbench.ParallelQFT(edge, parts),
			})
		}
	}
	for _, mode := range perfbench.TraceModes {
		list = append(list, namedBench{
			name: traceName(mode),
			fn:   perfbench.TraceQFT(mode),
		})
	}
	list = append(list, namedBench{name: "Sweep/workers=8", fn: perfbench.SweepWorkers(8)})
	list = append(list, namedBench{name: "DistribSweep/workers=2", fn: perfbench.DistributedSweep(2)})
	return list
}

// traceName is the report name of one TraceQFT mode.
func traceName(mode string) string {
	return "TraceQFT/trace=" + mode
}

// parallelName is the report name of one ParallelQFT cell.
func parallelName(edge, partitions int) string {
	return fmt.Sprintf("ParallelQFT/mesh=%dx%d/partitions=%d", edge, edge, partitions)
}

// fillSpeedups derives SpeedupVsSerial for every ParallelQFT entry with
// partitions > 1 from the partitions=1 entry of the same mesh.
func fillSpeedups(entries []entry) {
	serial := make(map[int]float64)
	for _, edge := range perfbench.ParallelQFTEdges {
		for i := range entries {
			if entries[i].Name == parallelName(edge, 1) {
				serial[edge] = entries[i].EventsPerSec
			}
		}
		base := serial[edge]
		if base <= 0 {
			continue
		}
		for _, parts := range perfbench.ParallelQFTPartitions {
			if parts == 1 {
				continue
			}
			for i := range entries {
				if entries[i].Name == parallelName(edge, parts) && entries[i].EventsPerSec > 0 {
					entries[i].SpeedupVsSerial = entries[i].EventsPerSec / base
				}
			}
		}
	}
}

// measure runs one benchmark body through testing.Benchmark and
// flattens the result into a report entry.
func measure(name string, fn func(*testing.B)) entry {
	r := testing.Benchmark(fn)
	e := entry{
		Name:        name,
		Iterations:  r.N,
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
	if r.N > 0 {
		e.NsPerOp = float64(r.T.Nanoseconds()) / float64(r.N)
	}
	e.EventsPerSec = r.Extra["events/sec"]
	e.PointsPerSec = r.Extra["points/sec"]
	return e
}

// validate round-trips the marshaled report and rejects entries a
// perf-trajectory consumer could not use, so a silent breakage of the
// emitter (or of a benchmark body) fails this command instead of
// producing a plausible-looking but useless BENCH file.
func validate(data []byte) error {
	var rep report
	if err := json.Unmarshal(data, &rep); err != nil {
		return err
	}
	if rep.Schema != "qnet-bench-v1" {
		return fmt.Errorf("schema %q, want qnet-bench-v1", rep.Schema)
	}
	if len(rep.Benchmarks) == 0 {
		return fmt.Errorf("no benchmarks in report")
	}
	seen := make(map[string]bool, len(rep.Benchmarks))
	for _, e := range rep.Benchmarks {
		switch {
		case e.Name == "":
			return fmt.Errorf("entry with empty name")
		case seen[e.Name]:
			return fmt.Errorf("duplicate benchmark %q", e.Name)
		case e.Iterations <= 0:
			return fmt.Errorf("%s: %d iterations", e.Name, e.Iterations)
		case e.NsPerOp <= 0:
			return fmt.Errorf("%s: ns/op = %g", e.Name, e.NsPerOp)
		case e.AllocsPerOp < 0:
			return fmt.Errorf("%s: allocs/op = %d", e.Name, e.AllocsPerOp)
		}
		seen[e.Name] = true
	}
	// The ParallelQFT matrix must be complete and carry throughput:
	// every (mesh, partitions) cell, each with a positive events/sec,
	// and a derived speedup on every multi-partition cell.  A report
	// missing them cannot track the parallel engine's trajectory.
	byName := make(map[string]entry, len(rep.Benchmarks))
	for _, e := range rep.Benchmarks {
		byName[e.Name] = e
	}
	for _, edge := range perfbench.ParallelQFTEdges {
		for _, parts := range perfbench.ParallelQFTPartitions {
			name := parallelName(edge, parts)
			e, ok := byName[name]
			if !ok {
				return fmt.Errorf("missing benchmark %q", name)
			}
			if e.EventsPerSec <= 0 {
				return fmt.Errorf("%s: events/sec = %g", name, e.EventsPerSec)
			}
			if parts > 1 && e.SpeedupVsSerial <= 0 {
				return fmt.Errorf("%s: speedup_vs_serial = %g", name, e.SpeedupVsSerial)
			}
		}
	}
	// The tracer-overhead trio must be complete with positive
	// throughput, or the report cannot answer "what does telemetry
	// cost" — the question those entries exist for.
	for _, mode := range perfbench.TraceModes {
		name := traceName(mode)
		e, ok := byName[name]
		if !ok {
			return fmt.Errorf("missing benchmark %q", name)
		}
		if e.EventsPerSec <= 0 {
			return fmt.Errorf("%s: events/sec = %g", name, e.EventsPerSec)
		}
	}
	return nil
}
