package qnet_test

import (
	"fmt"

	"repro/qnet"
)

// Example applies the paper's channel fidelity equations: a freshly
// generated EPR pair (Eq 4) is degraded by ballistic movement (Eq 1)
// and recovered by DEJMPS purification rounds.
func Example() {
	p := qnet.IonTrap2006()
	fresh := qnet.Generate(p, 1)
	moved := qnet.Ballistic(p, fresh, 600)
	fmt.Printf("fresh error %.2e, after 600 cells %.2e\n", 1-fresh, 1-moved)

	rounds := qnet.Rounds(qnet.DEJMPS{Params: p}, qnet.Werner(moved), 3)
	for i, r := range rounds {
		fmt.Printf("round %d: error %.2e\n", i+1, 1-r.State.A)
	}
	// Output:
	// fresh error 1.10e-07, after 600 cells 6.00e-04
	// round 1: error 4.00e-04
	// round 2: error 4.31e-07
	// round 3: error 1.10e-07
}

// Example_queuePurifier pushes a stream of Werner pairs through the
// robust queue purifier of Figure 14: a depth-3 tree consumes 2³ = 8
// input pairs per purified output.
func Example_queuePurifier() {
	q, err := qnet.NewQueuePurifier(qnet.DEJMPS{Params: qnet.IonTrap2006()}, 3)
	if err != nil {
		panic(err)
	}
	emitted := 0
	for i := 0; i < 32; i++ {
		if res := q.Offer(qnet.Werner(0.99)); res.Emitted {
			emitted++
		}
	}
	fmt.Printf("32 pairs in, %d purified pairs out\n", emitted)
	// Output:
	// 32 pairs in, 4 purified pairs out
}

// Example_workloads generates the three Shor's-algorithm kernels of
// the paper's Section 5.2 benchmark suite.
func Example_workloads() {
	for _, prog := range []qnet.Program{qnet.QFT(16), qnet.ModMult(8), qnet.ModExp(4, 2)} {
		fmt.Printf("%s: %d qubits, %d ops\n", prog.Name, prog.Qubits, len(prog.Ops))
	}
	// Output:
	// QFT: 16 qubits, 120 ops
	// MM: 16 qubits, 64 ops
	// ME: 8 qubits, 44 ops
}
