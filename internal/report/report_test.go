package report

import (
	"math"
	"strings"
	"testing"
)

func TestTableText(t *testing.T) {
	tb := NewTable("Table 1", "Operation", "Time")
	tb.AddRow("One-Qubit Gate", "1µs")
	tb.AddRow("Two-Qubit Gate", "20µs")
	var b strings.Builder
	if err := tb.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"# Table 1", "Operation", "One-Qubit Gate", "20µs"} {
		if !strings.Contains(out, want) {
			t.Errorf("text output missing %q:\n%s", want, out)
		}
	}
	// Alignment: the Time column should start at the same offset on data
	// rows.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) < 4 {
		t.Fatalf("unexpected line count: %d", len(lines))
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("x", "a", "b")
	tb.AddRow("plain", 3.5)
	tb.AddRow("with,comma", `say "hi"`)
	var b strings.Builder
	if err := tb.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "a,b\n") {
		t.Errorf("missing header: %s", out)
	}
	if !strings.Contains(out, "plain,3.5") {
		t.Errorf("missing plain row: %s", out)
	}
	if !strings.Contains(out, `"with,comma","say ""hi"""`) {
		t.Errorf("missing quoted row: %s", out)
	}
}

func TestFloatFormatting(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		1.5:     "1.5",
		2e-8:    "2.000e-08",
		3.2e9:   "3.200e+09",
		123.456: "123.5",
	}
	for in, want := range cases {
		if got := formatFloat(in); got != want {
			t.Errorf("formatFloat(%g) = %q, want %q", in, got, want)
		}
	}
	if got := formatFloat(math.Inf(1)); got != "inf" {
		t.Errorf("formatFloat(+inf) = %q, want inf", got)
	}
}

func TestPlotLogLog(t *testing.T) {
	p := NewPlot("Fig", "distance", "pairs")
	p.LogX, p.LogY = true, true
	var xs, ys []float64
	for d := 1; d <= 60; d++ {
		xs = append(xs, float64(d))
		ys = append(ys, math.Pow(2, float64(d)))
	}
	p.Add(Series{Name: "exponential", X: xs, Y: ys})
	var b strings.Builder
	if err := p.Write(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "# Fig") || !strings.Contains(out, "exponential") {
		t.Errorf("plot output incomplete:\n%s", out)
	}
	if !strings.Contains(out, "*") {
		t.Error("plot has no points")
	}
	// On log-log axes an exponential is convex increasing; at minimum the
	// first and last columns must both be plotted.
	lines := strings.Split(out, "\n")
	var rows []string
	for _, l := range lines {
		if strings.HasPrefix(l, "|") {
			rows = append(rows, l)
		}
	}
	if len(rows) == 0 {
		t.Fatal("no plot rows")
	}
	if !strings.Contains(rows[0], "*") {
		t.Error("top row (max y) has no point")
	}
	if !strings.Contains(rows[len(rows)-1], "*") {
		t.Error("bottom row (min y) has no point")
	}
}

func TestPlotDropsUnplottablePoints(t *testing.T) {
	p := NewPlot("x", "x", "y")
	p.LogY = true
	p.Add(Series{Name: "bad", X: []float64{1, 2, 3}, Y: []float64{0, math.Inf(1), math.NaN()}})
	var b strings.Builder
	if err := p.Write(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "no plottable points") {
		t.Errorf("expected empty-plot message:\n%s", b.String())
	}
}

func TestPlotMultipleSeriesGlyphs(t *testing.T) {
	p := NewPlot("multi", "x", "y")
	p.Add(Series{Name: "a", X: []float64{0, 1}, Y: []float64{0, 1}})
	p.Add(Series{Name: "b", X: []float64{0, 1}, Y: []float64{1, 0}})
	var b strings.Builder
	if err := p.Write(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Errorf("expected two glyph kinds:\n%s", out)
	}
	if !strings.Contains(out, "* a") || !strings.Contains(out, "o b") {
		t.Errorf("legend missing:\n%s", out)
	}
}

func TestPlotConstantSeries(t *testing.T) {
	p := NewPlot("flat", "x", "y")
	p.Add(Series{Name: "c", X: []float64{1, 2, 3}, Y: []float64{5, 5, 5}})
	var b strings.Builder
	if err := p.Write(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "*") {
		t.Error("constant series should still plot")
	}
}
