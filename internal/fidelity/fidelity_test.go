package fidelity

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/phys"
)

var base = phys.IonTrap2006()

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestBallisticSingleCell(t *testing.T) {
	got := Ballistic(base, 1, 1)
	want := 1 - 1e-6
	if !almost(got, want, 1e-12) {
		t.Errorf("Ballistic(1 cell) = %g, want %g", got, want)
	}
}

func TestBallisticZeroAndNegative(t *testing.T) {
	if got := Ballistic(base, 0.9, 0); got != 0.9 {
		t.Errorf("zero cells must not change fidelity, got %g", got)
	}
	if got := Ballistic(base, 0.9, -3); got != 0.9 {
		t.Errorf("negative cells must not change fidelity, got %g", got)
	}
}

func TestCornerToCornerErrorClaim(t *testing.T) {
	// Paper §1: on a 1000×1000 grid a qubit "would experience a
	// probability of error of more than 1e-3 in traveling from corner to
	// corner."
	e := CornerToCornerError(base, 1000)
	if e <= 1e-3 {
		t.Errorf("corner-to-corner error on 1000x1000 grid = %g, want > 1e-3", e)
	}
	if e > 3e-3 {
		t.Errorf("corner-to-corner error = %g, implausibly large (want ~2e-3)", e)
	}
}

func TestCornerToCornerDegenerate(t *testing.T) {
	if got := CornerToCornerError(base, 1); got != 0 {
		t.Errorf("1x1 grid should have zero movement error, got %g", got)
	}
	if got := CornerToCornerError(base, 0); got != 0 {
		t.Errorf("0x0 grid should have zero movement error, got %g", got)
	}
}

func TestTeleportIdentityUnderPerfectOps(t *testing.T) {
	perfect := base.WithUniformError(0)
	for _, f := range []float64{1, 0.999, 0.9, 0.5, 0.25} {
		got := Teleport(perfect, f, 1)
		if !almost(got, f, 1e-12) {
			t.Errorf("perfect teleport of F=%g gave %g", f, got)
		}
	}
}

func TestTeleportFullyMixedEPR(t *testing.T) {
	// A fully mixed EPR pair (F=1/4) carries no entanglement: output must
	// be fully mixed regardless of input.
	perfect := base.WithUniformError(0)
	got := Teleport(perfect, 1, 0.25)
	if !almost(got, 0.25, 1e-12) {
		t.Errorf("teleport with F_EPR=1/4 gave %g, want 0.25", got)
	}
}

func TestTeleportDegradesWithEPRError(t *testing.T) {
	f1 := Teleport(base, 1, 1)
	f2 := Teleport(base, 1, 1-1e-4)
	if f2 >= f1 {
		t.Errorf("lower EPR fidelity must lower output fidelity: %g >= %g", f2, f1)
	}
	// For small errors, output error ≈ data error + (4/3)·EPR error-ish;
	// at least it must exceed the EPR error alone.
	if (1 - f2) < 1e-4 {
		t.Errorf("output error %g should be >= EPR error 1e-4", 1-f2)
	}
}

func TestTeleportChainLinearErrorGrowth(t *testing.T) {
	// With small errors, error after n hops ≈ n × per-hop error.
	epr := 1 - 1e-6
	f10 := TeleportChain(base, 1, epr, 10)
	f20 := TeleportChain(base, 1, epr, 20)
	e10, e20 := 1-f10, 1-f20
	if ratio := e20 / e10; ratio < 1.9 || ratio > 2.1 {
		t.Errorf("error growth should be ~linear: e20/e10 = %g, want ~2", ratio)
	}
}

func TestTeleportChainZeroHops(t *testing.T) {
	if got := TeleportChain(base, 0.87, 0.99, 0); got != 0.87 {
		t.Errorf("0 hops must be identity, got %g", got)
	}
}

func TestFig9Factor100At64Hops(t *testing.T) {
	// Paper §4.6: "teleporting 64 times could increase EPR pair qubit
	// error by a factor of 100" (Figure 9).  With initial error 1e-6 and
	// link pairs of the same quality, the error after 64 hops should be
	// roughly two orders of magnitude above the initial error.
	init := 1e-6
	f := TeleportChain(base, 1-init, 1-init, 64)
	factor := (1 - f) / init
	if factor < 50 || factor > 200 {
		t.Errorf("64-hop error amplification = %gx, want ~100x", factor)
	}
}

func TestGenerate(t *testing.T) {
	got := Generate(base, 1)
	want := (1 - 1e-8) * (1 - 1e-7)
	if !almost(got, want, 1e-15) {
		t.Errorf("Generate = %g, want %g", got, want)
	}
	if g := Generate(base, 0.5); !almost(g, want*0.5, 1e-15) {
		t.Errorf("Generate with F_zero=0.5 = %g, want %g", g, want*0.5)
	}
}

func TestLinkPairFidelity(t *testing.T) {
	// A 600-cell hop accumulates ~6e-4 of movement error on the pair.
	f := LinkPairFidelity(base, 600)
	e := 1 - f
	if e < 5e-4 || e > 7e-4 {
		t.Errorf("600-cell link pair error = %g, want ~6e-4", e)
	}
}

func TestThresholdConstant(t *testing.T) {
	if ThresholdError != 7.5e-5 {
		t.Errorf("ThresholdError = %g, want 7.5e-5", ThresholdError)
	}
	if !almost(Threshold, 1-7.5e-5, 1e-15) {
		t.Errorf("Threshold = %g, want %g", Threshold, 1-7.5e-5)
	}
}

func TestWernerState(t *testing.T) {
	s := Werner(0.97)
	if !s.Valid() {
		t.Fatalf("Werner(0.97) invalid: %+v", s)
	}
	if s.Fidelity() != 0.97 {
		t.Errorf("fidelity = %g, want 0.97", s.Fidelity())
	}
	if !almost(s.B, 0.01, 1e-12) || !almost(s.C, 0.01, 1e-12) || !almost(s.D, 0.01, 1e-12) {
		t.Errorf("Werner error mass not even: %+v", s)
	}
}

func TestBellNormalize(t *testing.T) {
	s := Bell{A: 2, B: 1, C: 1, D: 0}
	n, err := s.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if !n.Valid() {
		t.Errorf("normalized state invalid: %+v", n)
	}
	if !almost(n.A, 0.5, 1e-12) {
		t.Errorf("normalized A = %g, want 0.5", n.A)
	}
	if _, err := (Bell{}).Normalize(); err == nil {
		t.Error("normalizing the zero state should error")
	}
}

func TestTwirlPreservesFidelity(t *testing.T) {
	s := Bell{A: 0.9, B: 0.08, C: 0.02, D: 0}
	w := s.Twirl()
	if w.A != s.A {
		t.Errorf("twirl changed fidelity: %g -> %g", s.A, w.A)
	}
	if !w.Valid() {
		t.Errorf("twirled state invalid: %+v", w)
	}
	if w.B != w.C || w.C != w.D {
		t.Errorf("twirled state not Werner: %+v", w)
	}
}

func TestDepolarizePreservesMassAndShrinksToMixed(t *testing.T) {
	s := Werner(1)
	d := s.Depolarize(0.1)
	if !d.Valid() {
		t.Fatalf("depolarized state invalid: %+v", d)
	}
	if !almost(d.A, 0.9*1+0.1/4, 1e-12) {
		t.Errorf("depolarized A = %g", d.A)
	}
	full := s.Depolarize(1)
	if !almost(full.A, 0.25, 1e-12) || !almost(full.D, 0.25, 1e-12) {
		t.Errorf("fully depolarized state should be maximally mixed: %+v", full)
	}
}

func TestAfterBallisticMatchesEq1(t *testing.T) {
	s := Werner(0.999)
	moved := s.AfterBallistic(base, 600)
	if !moved.Valid() {
		t.Fatalf("moved state invalid: %+v", moved)
	}
	want := Ballistic(base, 0.999, 600)
	if !almost(moved.A, want, 1e-12) {
		t.Errorf("AfterBallistic fidelity = %g, want Eq 1 value %g", moved.A, want)
	}
}

func TestAfterBallisticZeroCells(t *testing.T) {
	s := Werner(0.9)
	if got := s.AfterBallistic(base, 0); got != s {
		t.Errorf("0 cells changed state: %+v", got)
	}
}

// Property: teleport output fidelity is monotone in both input fidelities
// over the physical range [1/4, 1].
func TestTeleportMonotoneProperty(t *testing.T) {
	f := func(a, b, c uint8) bool {
		// Map to [0.25, 1].
		lift := func(x uint8) float64 { return 0.25 + 0.75*float64(x)/255 }
		fOld, fEPR1, fEPR2 := lift(a), lift(b), lift(c)
		lo, hi := math.Min(fEPR1, fEPR2), math.Max(fEPR1, fEPR2)
		return Teleport(base, fOld, lo) <= Teleport(base, fOld, hi)+1e-15
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Bell state operations keep states valid.
func TestBellOperationsValidProperty(t *testing.T) {
	f := func(a, b, c, d uint16, p uint8, cells uint8) bool {
		s := Bell{float64(a) + 1, float64(b), float64(c), float64(d)}
		n, err := s.Normalize()
		if err != nil || !n.Valid() {
			return false
		}
		if !n.Twirl().Valid() {
			return false
		}
		if !n.Depolarize(float64(p) / 255).Valid() {
			return false
		}
		if !n.AfterBallistic(base, int(cells)).Valid() {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: ballistic fidelity decreases monotonically with distance.
func TestBallisticMonotoneProperty(t *testing.T) {
	f := func(d1, d2 uint16) bool {
		lo, hi := int(d1), int(d2)
		if lo > hi {
			lo, hi = hi, lo
		}
		return Ballistic(base, 1, hi) <= Ballistic(base, 1, lo)+1e-15
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
