package mesh

import "fmt"

// Partition is a contiguous row-band decomposition of a grid into
// regions, the domain decomposition of the parallel event engine: each
// region owns a horizontal band of full rows, so every cut link is a
// vertical (South) link between the last row of one band and the first
// row of the next.  Build one with RowBands.
//
// The zero Partition is invalid; Partition values are immutable and
// safe for concurrent use.
type Partition struct {
	grid Grid
	// firstRow[r] is the first row of region r; firstRow[regions] ==
	// Height acts as a sentinel.
	firstRow []int
	// regionOfRow[y] is the region owning row y.
	regionOfRow []int
}

// RowBands decomposes the grid into n contiguous row bands of
// near-equal height (earlier bands take the remainder rows).  When n
// exceeds the grid height the partition clamps to one region per row —
// the finest decomposition a row-band cut supports — so callers may
// pass a requested parallelism directly.  n must be >= 1.
func RowBands(g Grid, n int) (Partition, error) {
	if g.Tiles() == 0 {
		return Partition{}, fmt.Errorf("mesh: cannot partition an empty grid")
	}
	if n < 1 {
		return Partition{}, fmt.Errorf("mesh: partition count must be >= 1, got %d", n)
	}
	if n > g.Height {
		n = g.Height
	}
	p := Partition{grid: g, firstRow: make([]int, n+1), regionOfRow: make([]int, g.Height)}
	base, rem := g.Height/n, g.Height%n
	row := 0
	for r := 0; r < n; r++ {
		p.firstRow[r] = row
		rows := base
		if r < rem {
			rows++
		}
		for i := 0; i < rows; i++ {
			p.regionOfRow[row] = r
			row++
		}
	}
	p.firstRow[n] = g.Height
	return p, nil
}

// Grid returns the partitioned grid.
func (p Partition) Grid() Grid { return p.grid }

// Regions returns the number of regions.
func (p Partition) Regions() int { return len(p.firstRow) - 1 }

// RegionOf returns the region owning tile c.
func (p Partition) RegionOf(c Coord) int {
	if !p.grid.Contains(c) {
		panic(fmt.Sprintf("mesh: coordinate %v outside %dx%d grid", c, p.grid.Width, p.grid.Height))
	}
	return p.regionOfRow[c.Y]
}

// RowRange returns the half-open row interval [y0, y1) of region r.
func (p Partition) RowRange(r int) (y0, y1 int) {
	if r < 0 || r >= p.Regions() {
		panic(fmt.Sprintf("mesh: region %d outside partition of %d", r, p.Regions()))
	}
	return p.firstRow[r], p.firstRow[r+1]
}

// CutLinks enumerates the links crossed by the region cuts — the
// boundary links whose endpoints lie in different regions — in the
// grid's canonical Links order.  For a row-band partition these are
// exactly the South links out of each band's last row, Width per cut.
func (p Partition) CutLinks() []Link {
	var cuts []Link
	for _, l := range p.grid.Links() {
		if p.IsCut(l) {
			cuts = append(cuts, l)
		}
	}
	return cuts
}

// IsCut reports whether the link's endpoints lie in different regions.
func (p Partition) IsCut(l Link) bool {
	return p.RegionOf(l.From) != p.RegionOf(l.From.Step(l.Dir))
}
