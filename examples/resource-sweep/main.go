// Resource allocation sweep: a configurable Figure 16, run concurrently.
//
// The paper's final experiment fixes the chip area devoted to the
// interconnect (T' + G + P nodes) and varies how it is split between
// teleporters/generators and queue purifiers.  Home Base channels share
// T' nodes heavily, so they tolerate fewer purifiers; the Mobile Qubit
// layout's local traffic hammers the endpoint purifiers instead.
//
// All configurations (both layouts × every allocation, plus the
// unlimited-resource baselines) fan out across the sweep engine's
// worker pool, and the results print as a normalized-execution table.
//
// This example deliberately builds the Space and decodes the results by
// hand to show the public qnet/simulate API end to end; the library
// version of the same experiment — with ASCII plot output — is
// internal/figures.Fig16, reachable via `cmd/figures -fig 16`.
//
// Run with: go run ./examples/resource-sweep [-grid 8] [-area 48]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"repro/qnet"
	"repro/qnet/simulate"
)

func main() {
	gridN := flag.Int("grid", 8, "mesh edge length (paper: 16)")
	area := flag.Int("area", 48, "per-tile resource budget t+g+p")
	flag.Parse()

	if err := run(*gridN, *area); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(gridN, area int) error {
	grid, err := qnet.NewGrid(gridN, gridN)
	if err != nil {
		return err
	}
	allocs, err := simulate.Allocations(area, []int{1, 2, 4, 8})
	if err != nil {
		return err
	}
	resources := []simulate.Resources{{Teleporters: 1024, Generators: 1024, Purifiers: 1024}}
	for _, a := range allocs {
		resources = append(resources, simulate.AllocationResources(a))
	}
	space := simulate.Space{
		Grids:     []qnet.Grid{grid},
		Layouts:   []simulate.Layout{simulate.HomeBase, simulate.MobileQubit},
		Resources: resources,
		Programs:  []qnet.Program{qnet.QFT(grid.Tiles())},
	}

	fmt.Printf("sweeping QFT-%d with area budget %d (%d configurations)...\n\n",
		grid.Tiles(), area, space.Size())
	points, err := simulate.Sweep(context.Background(), space,
		simulate.WithProgress(func(done, total int) {
			fmt.Fprintf(os.Stderr, "\r%d/%d runs complete", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}))
	if err != nil {
		return err
	}

	// Decode the results by point metadata (layout × resources) rather
	// than position, so extending the space cannot mis-pair the rows.
	type runKey struct {
		layout simulate.Layout
		res    simulate.Resources
	}
	results := make(map[runKey]simulate.Result, len(points))
	for _, pt := range points {
		if pt.Err != nil {
			return pt.Err
		}
		results[runKey{pt.Point.Layout, pt.Point.Resources}] = pt.Result
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Layout\tAllocation\tExec\tNormalized\tTeleporterUtil\tPurifierUtil")
	for _, layout := range space.Layouts {
		base, ok := results[runKey{layout, resources[0]}]
		if !ok {
			return fmt.Errorf("%v baseline missing from sweep results", layout)
		}
		fmt.Fprintf(w, "%v\tt=g=p=1024 (baseline)\t%v\t%.3f\t%.3f\t%.3f\n",
			layout, base.Exec, 1.0, base.TeleporterUtil, base.PurifierUtil)
		for _, a := range allocs {
			res, ok := results[runKey{layout, simulate.AllocationResources(a)}]
			if !ok {
				return fmt.Errorf("%v %v missing from sweep results", layout, a)
			}
			fmt.Fprintf(w, "%v\t%v\t%v\t%.3f\t%.3f\t%.3f\n",
				layout, a, res.Exec,
				float64(res.Exec)/float64(base.Exec),
				res.TeleporterUtil, res.PurifierUtil)
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}

	fmt.Println("\nReading the sweep: Mobile degrades sharply once purifiers are")
	fmt.Println("starved (t=g=8p); Home Base, already throttled by T' sharing,")
	fmt.Println("tolerates the same cut far better — the paper's Figure 16 shape.")
	return nil
}
