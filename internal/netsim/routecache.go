package netsim

import (
	"math"

	"repro/internal/mesh"
)

// routeCache memoizes the hop paths of a deterministic routing policy
// for one simulator run.  Deterministic policies (route.IsDeterministic)
// answer every repeated (src, dst) query identically, yet the paper's
// workloads open thousands of channels over a handful of distinct
// pairs — so the simulator resolves each pair once and replays the
// stored path for every later channel, skipping the policy call, the
// Follow validation walk and both per-channel slice allocations.
//
// Paths live back to back in two flat arenas (hop directions and the
// parallel visited-tile sequence); the span table is dense over
// src×dst tile indices, so a lookup is two array reads with no map
// hashing.  The cache is strictly per-simulator state: concurrent
// sweep workers each own their run's cache, so there is no shared
// mutable state across goroutines.
type routeCache struct {
	tiles int // grid tile count (span table stride)
	spans []cacheSpan
	// dirArena and tileArena hold every cached path back to back; a
	// span's path occupies n directions and n+1 tiles.  Arenas only
	// ever append, so slices handed out by get stay valid across growth
	// (they keep referencing the old backing array).
	dirArena  []mesh.Direction
	tileArena []mesh.Coord
}

// cacheSpan locates one cached path inside the arenas.  n == 0 means
// "not cached": a real path always has at least one hop, because the
// simulator never opens a channel from a tile to itself.
type cacheSpan struct {
	dirOff, tileOff int32
	n               int32
}

// newRouteCache builds an empty cache for a grid of the given tile
// count.
func newRouteCache(tiles int) *routeCache {
	return &routeCache{tiles: tiles, spans: make([]cacheSpan, tiles*tiles)}
}

// get returns the cached path for srcIdx→dstIdx, or (nil, nil) on a
// miss.  The returned slices are capacity-capped views into the
// arenas; callers must treat them as read-only.
func (rc *routeCache) get(srcIdx, dstIdx int) ([]mesh.Direction, []mesh.Coord) {
	sp := rc.spans[srcIdx*rc.tiles+dstIdx]
	if sp.n == 0 {
		return nil, nil
	}
	dirs := rc.dirArena[sp.dirOff : sp.dirOff+sp.n : sp.dirOff+sp.n]
	tiles := rc.tileArena[sp.tileOff : sp.tileOff+sp.n+1 : sp.tileOff+sp.n+1]
	return dirs, tiles
}

// put stores a validated path for srcIdx→dstIdx.  Empty paths are
// never stored (the zero span means "absent"), and a path that would
// push an arena past the int32 offset range is silently not cached —
// the cache is an optimization, never a correctness requirement.
func (rc *routeCache) put(srcIdx, dstIdx int, dirs []mesh.Direction, tiles []mesh.Coord) {
	if len(dirs) == 0 || len(tiles) != len(dirs)+1 {
		return
	}
	if len(rc.dirArena)+len(dirs) > math.MaxInt32 || len(rc.tileArena)+len(tiles) > math.MaxInt32 {
		return
	}
	sp := cacheSpan{
		dirOff:  int32(len(rc.dirArena)),
		tileOff: int32(len(rc.tileArena)),
		n:       int32(len(dirs)),
	}
	rc.dirArena = append(rc.dirArena, dirs...)
	rc.tileArena = append(rc.tileArena, tiles...)
	rc.spans[srcIdx*rc.tiles+dstIdx] = sp
}
