// Methodology comparison: ballistic distribution versus chained
// teleportation (the paper's Figures 4 and 5, analysed in Section 4.6).
//
// Both methodologies deliver EPR pairs to channel endpoints.  Ballistic
// distribution physically shuttles the pair halves down ion-trap
// channels; chained teleportation hops them between teleporter nodes
// over pre-distributed virtual wires.  The paper's findings, made
// executable here:
//
//  1. final pair fidelity is approximately the same (movement error
//     dominates gate error in ion traps);
//  2. latency crosses over near 600 cells — which is why the paper
//     spaces teleporter nodes 600 cells apart;
//  3. ballistic control cost grows with distance (electrode waveforms
//     per cell, Figure 2), while teleportation control is constant per
//     hop.
//
// Run with: go run ./examples/methodology
package main

import (
	"fmt"
	"os"
	"text/tabwriter"

	"repro/qnet"
	"repro/qnet/channel"
)

func main() {
	p := qnet.IonTrap2006()

	// The electrode-level view (Figure 2): what it takes to move one ion.
	plan, err := channel.PlanMove(3, 9)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("Shuttling an ion from trap 3 to trap 9 (%d cells):\n", plan.Cells())
	fmt.Printf("  %d waveform phases, %d electrode level changes, %v\n",
		len(plan.Steps), plan.Signals(), plan.Duration(p))
	fmt.Printf("  first three phases of the pulse program:\n")
	for _, step := range plan.Steps[:3] {
		fmt.Printf("    phase %d: ", step.Phase)
		for e := 3; e <= 4; e++ {
			if l, ok := step.Levels[e]; ok {
				fmt.Printf("electrode %d -> %v  ", e, l)
			}
		}
		fmt.Println()
	}

	// The methodology comparison across distances.
	fmt.Println("\nDistribution methodology comparison (hop length 600 cells):")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Distance (cells)\tBallistic latency\tTeleport latency\tBallistic pair err\tChained pair err")
	for _, cells := range []int{150, 600, 2400, 9600, 38400} {
		c, err := channel.CompareMethodologies(p, cells, 600)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(w, "%d\t%v\t%v\t%.3e\t%.3e\n", cells, c.BallisticLatency, c.TeleportLatency,
			c.BallisticPairError, c.ChainedPairError)
	}
	if err := w.Flush(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Println("\nBelow ~600 cells ballistic movement wins on latency; above it,")
	fmt.Println("teleportation's near-constant cost wins.  Pair errors stay within")
	fmt.Println("2x of each other throughout — the paper's 'fidelity difference'")
	fmt.Println("claim — so the choice is driven by latency and control complexity.")

	// End-to-end ballistic distribution with endpoint purification.
	fmt.Println("\nBallistic distribution across a 16x16-grid diameter (18000 cells):")
	res, err := (channel.BallisticDistribution{Params: p, DistanceCells: 18000}).Evaluate()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("  arrival error %.2e -> %d purification rounds -> final %.2e\n",
		res.ArrivalError, res.Rounds, res.FinalError)
	fmt.Printf("  %.1f raw pairs consumed per delivered pair, setup %v\n",
		res.PairsConsumed, res.SetupLatency)
	fmt.Printf("  %d electrode control signals per delivered pair\n", res.ControlSignals)
}
