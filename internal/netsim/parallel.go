package netsim

import (
	"context"
	"time"

	"repro/internal/mesh"
	"repro/internal/sim"
)

// Domain-decomposed execution.
//
// Config.Parallel >= 2 runs the simulation on the conservative
// partitioned engine (sim.Partitioned): the mesh is cut into contiguous
// row bands (mesh.RowBands) and the engine synchronizes its regions in
// lookahead windows, where the lookahead is the minimum latency a batch
// needs to cross a cut link — one generator service plus one teleporter
// service, the cheapest cut-crossing interaction the model can emit.
//
// The interconnect model itself is tightly coupled at zero delay:
// storage-credit acquisition blocks inline across tiles, the op
// scheduler issues globally on every completion, and the
// failure-injection RNG is one sequential stream whose draw order is
// the global event order.  Splitting those couplings across regions
// would either deadlock (credits) or change draw order (RNG) — i.e.
// change results.  The parallel mode therefore keeps the model's event
// graph in a single coupled region and uses the remaining regions as
// synchronization peers: every window barrier, horizon computation and
// deterministic merge path of the partitioned engine runs for real
// (and is exercised under -race by CI), while the event order — and so
// the Result — stays byte-identical to the serial engine for every
// config, policy, layout and fault spec.  Decoupled workloads, where
// the speedup is realized, are measured by the engine-level replay
// benchmarks (internal/perfbench.ParallelQFT).
//
// Because parallel execution is an engine choice and not a model
// change, Config.Parallel is excluded from result cache keys.

// partitionPlan is the resolved decomposition of one parallel run.
type partitionPlan struct {
	part      mesh.Partition
	lookahead time.Duration
	engine    *sim.Partitioned
}

// cutLookahead returns the conservative bound for the config: the
// minimum time a batch needs to traverse one inter-region link, a
// generator service plus one teleporter-set service.  Both terms are
// config constants (they do not depend on run state), so the bound is
// computable before the simulation starts.
func (s *simulator) cutLookahead() time.Duration {
	return s.genLatency() + s.teleportLatency()
}

// planPartition resolves Config.Parallel into a partition plan, or nil
// for a serial run.  The region count is clamped by RowBands to one
// band per row.
func (s *simulator) planPartition() (*partitionPlan, error) {
	if s.cfg.Parallel < 2 {
		return nil, nil
	}
	part, err := mesh.RowBands(s.cfg.Grid, s.cfg.Parallel)
	if err != nil {
		return nil, err
	}
	if part.Regions() < 2 {
		// A one-row grid admits only one band; fall back to serial.
		return nil, nil
	}
	eng, err := sim.NewPartitioned(part.Regions(), s.cutLookahead())
	if err != nil {
		return nil, err
	}
	return &partitionPlan{part: part, lookahead: s.cutLookahead(), engine: eng}, nil
}

// run executes the plan to completion: the coupled model lives in
// region 0 and the windowed barrier loop drives it.
func (p *partitionPlan) run(ctx context.Context) error {
	_, err := p.engine.Run(ctx)
	return err
}
