// The in-process loopback transport: the whole distributed subsystem
// — sharding, dispatch, retry, reassignment, shared store — without a
// socket.  Tests and benchmarks use it to exercise coordinator logic
// deterministically, including injected worker death mid-shard.

package distrib

import (
	"context"
	"fmt"
	"sync"
)

// Loopback is an in-process Transport over named Workers.  Besides
// plain dispatch it supports fault injection: Kill marks a worker dead
// immediately, KillAfterPoints arms a death that triggers mid-shard
// after the worker has delivered a given number of points — the
// reassignment path's test hook.
type Loopback struct {
	mu      sync.Mutex
	workers map[string]*loopbackWorker
}

// loopbackWorker is one registered worker plus its fault state.
type loopbackWorker struct {
	worker    *Worker
	dead      bool
	draining  bool
	killAfter int // points until injected death; <0 = never
	emitted   int // points delivered across all jobs
	cancels   map[*context.CancelFunc]struct{}
}

// Loopback implements Transport.
var _ Transport = (*Loopback)(nil)

// NewLoopback builds an empty loopback transport.
func NewLoopback() *Loopback {
	return &Loopback{workers: make(map[string]*loopbackWorker)}
}

// Add registers a worker under a name (the "address" coordinators
// dispatch to).
func (l *Loopback) Add(name string, w *Worker) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.workers[name] = &loopbackWorker{
		worker:    w,
		killAfter: -1,
		cancels:   make(map[*context.CancelFunc]struct{}),
	}
}

// Kill marks the named worker dead: its in-flight jobs abort, and
// every later Run or Healthy against it fails.
func (l *Loopback) Kill(name string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if lw := l.workers[name]; lw != nil {
		lw.die()
	}
}

// die marks the worker dead and aborts its in-flight jobs.  Callers
// hold l.mu.
func (lw *loopbackWorker) die() {
	lw.dead = true
	for cancel := range lw.cancels {
		(*cancel)()
	}
}

// Drain marks the named worker draining, mirroring a sweepd that
// received SIGTERM: new Runs are refused with ErrWorkerDraining and
// Healthy reports the same, while jobs already in flight finish and
// Status keeps answering with Draining set — healthy but unavailable.
func (l *Loopback) Drain(name string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if lw := l.workers[name]; lw != nil {
		lw.draining = true
	}
}

// KillAfterPoints arms an injected death: the named worker dies as
// soon as it has delivered n points in total (across jobs), truncating
// whatever shard it is running at that moment — exactly what a
// process crash mid-stream looks like to the coordinator.
func (l *Loopback) KillAfterPoints(name string, n int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if lw := l.workers[name]; lw != nil {
		lw.killAfter = n
	}
}

// Run executes the job on the named worker in process, forwarding each
// point to emit; it fails like a network transport would when the
// worker is dead or dies mid-shard.
func (l *Loopback) Run(ctx context.Context, worker string, job Job, emit func(PointResult) error) error {
	l.mu.Lock()
	lw := l.workers[worker]
	if lw == nil {
		l.mu.Unlock()
		return fmt.Errorf("distrib: unknown loopback worker %q", worker)
	}
	if lw.dead {
		l.mu.Unlock()
		return fmt.Errorf("distrib: loopback worker %q is dead", worker)
	}
	if lw.draining {
		l.mu.Unlock()
		return &TransportError{Worker: worker, Op: "submit", Err: ErrWorkerDraining}
	}
	jctx, cancel := context.WithCancel(ctx)
	defer cancel()
	lw.cancels[&cancel] = struct{}{}
	l.mu.Unlock()
	defer func() {
		l.mu.Lock()
		delete(lw.cancels, &cancel)
		l.mu.Unlock()
	}()

	err := lw.worker.Execute(jctx, job, func(pr PointResult) error {
		l.mu.Lock()
		if lw.dead {
			l.mu.Unlock()
			return fmt.Errorf("distrib: loopback worker %q died mid-shard", worker)
		}
		if lw.killAfter >= 0 && lw.emitted >= lw.killAfter {
			lw.die()
			l.mu.Unlock()
			return fmt.Errorf("distrib: loopback worker %q died mid-shard", worker)
		}
		lw.emitted++
		l.mu.Unlock()
		return emit(pr)
	})
	if err != nil {
		return err
	}
	// Death can land between the last point and stream completion.
	l.mu.Lock()
	dead := lw.dead
	l.mu.Unlock()
	if dead {
		return fmt.Errorf("distrib: loopback worker %q died mid-shard", worker)
	}
	return nil
}

// Status returns the named worker's live telemetry snapshot, failing
// like Healthy for unknown or dead workers.
func (l *Loopback) Status(_ context.Context, worker string) (Status, error) {
	l.mu.Lock()
	lw := l.workers[worker]
	switch {
	case lw == nil:
		l.mu.Unlock()
		return Status{}, fmt.Errorf("distrib: unknown loopback worker %q", worker)
	case lw.dead:
		l.mu.Unlock()
		return Status{}, fmt.Errorf("distrib: loopback worker %q is dead", worker)
	}
	w, draining := lw.worker, lw.draining
	l.mu.Unlock()
	st := w.Status()
	st.Draining = draining
	return st, nil
}

// Healthy reports the named worker's liveness.
func (l *Loopback) Healthy(_ context.Context, worker string) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	lw := l.workers[worker]
	switch {
	case lw == nil:
		return fmt.Errorf("distrib: unknown loopback worker %q", worker)
	case lw.dead:
		return fmt.Errorf("distrib: loopback worker %q is dead", worker)
	case lw.draining:
		return &TransportError{Worker: worker, Op: "healthz", Err: ErrWorkerDraining}
	}
	return nil
}
