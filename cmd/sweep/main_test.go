package main

import (
	"testing"

	"repro/qnet/fault"
)

// TestDepthSweepRoutingAutoSwitch pins the depth sweep's routing
// auto-switch: injecting dead links flips the space to fault-adaptive
// routing (and reports it), drop-only faults and healthy meshes do
// not, and the switched configuration already carries a distinct cache
// key — a faulted ablation can never be served a default-routed
// result, or vice versa.
func TestDepthSweepRoutingAutoSwitch(t *testing.T) {
	healthy, auto, err := depthSweepSpace(4, 1, 0, fault.Spec{})
	if err != nil {
		t.Fatal(err)
	}
	if auto {
		t.Error("healthy space reported a routing auto-switch")
	}
	if len(healthy.Routings) != 0 {
		t.Errorf("healthy space routings = %v, want none", healthy.Routings)
	}

	dropOnly, auto, err := depthSweepSpace(4, 1, 0, fault.Spec{Drop: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if auto {
		t.Error("drop-only space reported a routing auto-switch")
	}
	if len(dropOnly.Routings) != 0 {
		t.Errorf("drop-only space routings = %v, want none", dropOnly.Routings)
	}

	dead, auto, err := depthSweepSpace(4, 1, 0, fault.Spec{DeadLinks: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if !auto {
		t.Error("dead-link space did not report the routing auto-switch")
	}
	pts, err := dead.Points()
	if err != nil {
		t.Fatal(err)
	}
	if got := pts[0].RoutingName(); got != "fault-adaptive" {
		t.Fatalf("dead-link point routing = %q, want fault-adaptive", got)
	}

	// The switch must be content-addressed: the same point under the
	// default routing hashes to a different result key.
	base := dead
	base.Routings = nil
	basePts, err := base.Points()
	if err != nil {
		t.Fatal(err)
	}
	switched, err := dead.Machine(pts[0])
	if err != nil {
		t.Fatal(err)
	}
	plain, err := base.Machine(basePts[0])
	if err != nil {
		t.Fatal(err)
	}
	if switched.CacheKey(pts[0].Program) == plain.CacheKey(basePts[0].Program) {
		t.Error("fault-adaptive and default routing share a cache key")
	}
}
