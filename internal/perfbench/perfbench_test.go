package perfbench

import (
	"fmt"
	"testing"
)

func BenchmarkEngineSchedule(b *testing.B) { EngineSchedule(b) }

func BenchmarkEngineCancel(b *testing.B) {
	for _, n := range CancelPendingSizes {
		b.Run(fmt.Sprintf("pending=%d", n), EngineCancel(n))
	}
}

func BenchmarkQFT(b *testing.B) {
	for _, cfg := range FullRunConfigs() {
		b.Run(cfg.Name, QFTRun(cfg.Layout, cfg.Policy))
	}
}

func BenchmarkParallelQFT(b *testing.B) {
	for _, edge := range ParallelQFTEdges {
		for _, parts := range ParallelQFTPartitions {
			b.Run(fmt.Sprintf("mesh=%dx%d/partitions=%d", edge, edge, parts), ParallelQFT(edge, parts))
		}
	}
}

func BenchmarkSweep(b *testing.B) {
	b.Run("workers=8", SweepWorkers(8))
}

func BenchmarkDistribSweep(b *testing.B) {
	b.Run("workers=2", DistributedSweep(2))
}
