package figures

import (
	"context"
	"fmt"
	"time"

	"repro/internal/mesh"
	"repro/internal/report"
	"repro/internal/workload"

	"repro/qnet/simulate"
	"repro/qnet/stats"
)

// Fig16Config parameterizes the Figure 16 reproduction: the benchmark
// execution time of QFT under both layouts as a function of network
// resource allocation, normalized to t = g = p = 1024, with every point
// measured as an ensemble over RNG seeds.
type Fig16Config struct {
	// GridSize is the mesh edge length; the paper uses 16 (QFT-256).
	// The default harness uses 8 to keep run time short; pass 16 for the
	// full-scale reproduction.
	GridSize int
	// Area is the per-tile resource budget t + g + p; 48 by default.
	Area int
	// Ratios are the t/p points of the sweep.
	Ratios []int
	// Seeds are the RNG seeds of the per-point ensemble; the default is
	// {1..5}.  With FailureRate zero the runs are deterministic, the
	// cache collapses the ensemble to one simulation per point, and the
	// confidence intervals are exactly zero-width.
	Seeds []int64
	// FailureRate injects stochastic purification failure
	// (simulate.WithFailureRate) so the seed ensemble develops a real
	// spread; zero keeps the paper's deterministic setup.
	FailureRate float64
	// Cache, when non-nil, serves repeated points without re-simulating
	// them (a disk-backed cache makes repeated figure generation
	// incremental across processes).  When nil an in-memory cache still
	// deduplicates identical runs within this one figure.
	Cache *simulate.Cache
}

// DefaultFig16Config returns the quick (8×8, QFT-64) configuration with
// a five-seed ensemble.
func DefaultFig16Config() Fig16Config {
	return Fig16Config{
		GridSize: 8,
		Area:     48,
		Ratios:   []int{1, 2, 4, 8},
		Seeds:    simulate.SeedRange(5),
	}
}

// seeds returns the configured seed ensemble, defaulting to {1..5}.
func (cfg Fig16Config) seeds() []int64 {
	if len(cfg.Seeds) > 0 {
		return cfg.Seeds
	}
	return simulate.SeedRange(5)
}

// Fig16Row is one measurement of the sweep: an allocation under a
// layout, aggregated over the seed ensemble.
type Fig16Row struct {
	// Layout is the floorplan the row was measured under.
	Layout simulate.Layout
	// Allocation is the swept resource split.
	Allocation simulate.Allocation
	// Exec is the mean execution time over the ensemble.
	Exec time.Duration
	// ExecCI is the 95% normal confidence interval of Exec, in seconds.
	ExecCI stats.Interval
	// Normalized is the mean of the per-seed execution times, each
	// normalized by the same seed's unlimited-resource baseline.
	Normalized float64
	// NormalizedCI is the 95% normal confidence interval of Normalized.
	NormalizedCI stats.Interval
	// Ensemble carries the full metric aggregate over the seeds.
	Ensemble stats.Ensemble
	// Result is the first seed's raw result, kept for detail columns.
	Result simulate.Result
}

// Fig16Data holds the full sweep, including the normalization runs.
type Fig16Data struct {
	// Config echoes the configuration the data was generated from.
	Config Fig16Config
	// Qubits is the QFT size (one logical qubit per tile).
	Qubits int
	// Seeds is the seed ensemble every point was measured over.
	Seeds []int64
	// Baselines aggregates the unlimited-resource (t=g=p=1024) runs per
	// layout.
	Baselines map[simulate.Layout]stats.Ensemble
	// Rows are the swept allocations, grouped by layout in sweep order.
	Rows []Fig16Row
	// Sweep tallies the underlying runs, including cache hits.
	Sweep simulate.Summary
}

// Fig16 runs the resource-allocation sweep of Figure 16.  All
// configurations (both layouts, the baselines and every allocation,
// times every seed) run concurrently through the simulate.Sweep engine,
// deduplicated through the configured result cache.
func Fig16(cfg Fig16Config) (*Fig16Data, error) {
	return Fig16Context(context.Background(), cfg)
}

// Fig16Context is Fig16 with cancellation.
func Fig16Context(ctx context.Context, cfg Fig16Config) (*Fig16Data, error) {
	if cfg.GridSize < 2 {
		return nil, fmt.Errorf("figures: grid size %d too small", cfg.GridSize)
	}
	grid, err := mesh.NewGrid(cfg.GridSize, cfg.GridSize)
	if err != nil {
		return nil, err
	}
	qubits := grid.Tiles()
	allocs, err := simulate.Allocations(cfg.Area, cfg.Ratios)
	if err != nil {
		return nil, err
	}

	// Point 0 of the resource dimension is the unlimited-resource
	// baseline; the rest are the swept allocations, in ratio order.
	resources := make([]simulate.Resources, 0, len(allocs)+1)
	resources = append(resources, simulate.Resources{Teleporters: 1024, Generators: 1024, Purifiers: 1024})
	for _, a := range allocs {
		resources = append(resources, simulate.AllocationResources(a))
	}
	space := simulate.Space{
		Grids:     []mesh.Grid{grid},
		Layouts:   []simulate.Layout{simulate.HomeBase, simulate.MobileQubit},
		Resources: resources,
		Programs:  []workload.Program{workload.QFT(qubits)},
		Seeds:     cfg.seeds(),
		Options:   []simulate.Option{simulate.WithFailureRate(cfg.FailureRate)},
	}
	cache := cfg.Cache
	if cache == nil {
		cache = simulate.NewCache(0)
	}
	points, err := simulate.Sweep(ctx, space, simulate.WithCache(cache))
	if err != nil {
		return nil, err
	}
	for _, pt := range points {
		if pt.Err != nil {
			return nil, fmt.Errorf("figures: %v %+v seed %d: %w",
				pt.Point.Layout, pt.Point.Resources, pt.Point.Seed, pt.Err)
		}
	}

	// Decode by point metadata, not position, so the mapping survives
	// any change to the space's dimensions or expansion order.  Group
	// folds the seed dimension into per-configuration ensembles.
	type runKey struct {
		layout simulate.Layout
		res    simulate.Resources
	}
	groups := make(map[runKey]stats.PointEnsemble, 2*len(resources))
	for _, g := range stats.Group(points) {
		groups[runKey{g.Point.Layout, g.Point.Resources}] = g
	}

	data := &Fig16Data{
		Config:    cfg,
		Qubits:    qubits,
		Seeds:     space.Seeds,
		Baselines: make(map[simulate.Layout]stats.Ensemble, 2),
		Sweep:     simulate.Summarize(points),
	}
	for _, layout := range space.Layouts {
		base, ok := groups[runKey{layout, resources[0]}]
		if !ok {
			return nil, fmt.Errorf("figures: %v baseline missing from sweep results", layout)
		}
		data.Baselines[layout] = base.Ensemble
		for _, a := range allocs {
			g, ok := groups[runKey{layout, simulate.AllocationResources(a)}]
			if !ok {
				return nil, fmt.Errorf("figures: %v %v missing from sweep results", layout, a)
			}
			// Normalize per seed — run i of the allocation against run i
			// of the baseline — then aggregate, so baseline noise widens
			// the interval instead of biasing the mean.
			normalized := make([]float64, len(g.Results))
			for i, r := range g.Results {
				normalized[i] = float64(r.Exec) / float64(base.Results[i].Exec)
			}
			normSummary := stats.Describe(normalized)
			data.Rows = append(data.Rows, Fig16Row{
				Layout:       layout,
				Allocation:   a,
				Exec:         g.Ensemble.MeanExec(),
				ExecCI:       g.Ensemble.Exec.CI(0.95),
				Normalized:   normSummary.Mean,
				NormalizedCI: normSummary.CI(0.95),
				Ensemble:     g.Ensemble,
				Result:       g.Results[0],
			})
		}
	}
	return data, nil
}

// Table renders the sweep as a table, one row per allocation with the
// ensemble mean ± 95% confidence half-width.
func (d *Fig16Data) Table() *report.Table {
	t := report.NewTable(
		fmt.Sprintf("Figure 16: QFT-%d execution vs resource allocation (normalized to t=g=p=1024, %d seeds, 95%% CI)",
			d.Qubits, len(d.Seeds)),
		"Layout", "Allocation", "MeanExec", "Normalized", "CI95", "TeleporterUtil", "PurifierUtil")
	for _, layout := range []simulate.Layout{simulate.HomeBase, simulate.MobileQubit} {
		base := d.Baselines[layout]
		t.AddRow(layout.String(), "t=g=p=1024 (baseline)", base.MeanExec().String(),
			1.0, "± 0.000",
			base.TeleporterUtil.Mean, base.PurifierUtil.Mean)
		for _, r := range d.Rows {
			if r.Layout != layout {
				continue
			}
			t.AddRow(layout.String(), r.Allocation.String(), r.Exec.String(),
				r.Normalized, fmt.Sprintf("± %.3f", r.NormalizedCI.Half()),
				r.Ensemble.TeleporterUtil.Mean, r.Ensemble.PurifierUtil.Mean)
		}
	}
	return t
}

// Plot renders mean normalized execution versus the t/p ratio.
func (d *Fig16Data) Plot() *report.Plot {
	plot := report.NewPlot(
		fmt.Sprintf("Figure 16: QFT-%d normalized execution vs t/p ratio (mean over %d seeds)",
			d.Qubits, len(d.Seeds)),
		"t = g = ratio × p", "execution / unlimited-resource execution")
	plot.LogY = true
	for _, layout := range []simulate.Layout{simulate.HomeBase, simulate.MobileQubit} {
		s := report.Series{Name: layout.String()}
		for _, r := range d.Rows {
			if r.Layout != layout {
				continue
			}
			s.X = append(s.X, float64(r.Allocation.Ratio))
			s.Y = append(s.Y, r.Normalized)
		}
		plot.Add(s)
	}
	return plot
}

// MEMMConfig parameterizes the Shor's-algorithm kernel comparison (the
// paper's benchmark suite of §5.2): three kernels under both layouts at
// one allocation, measured as seed ensembles.
type MEMMConfig struct {
	// GridSize is the mesh edge length.
	GridSize int
	// Teleporters, Generators and Purifiers fix the per-node allocation.
	Teleporters, Generators, Purifiers int
	// Seeds are the ensemble seeds; the default is {1..5}.
	Seeds []int64
	// FailureRate injects stochastic purification failure.
	FailureRate float64
	// Cache, when non-nil, serves repeated points without re-simulating.
	Cache *simulate.Cache
}

// DefaultMEMMConfig returns the kernel-table configuration used by
// cmd/figures: t=g=16, p=8, five seeds.
func DefaultMEMMConfig(gridSize int) MEMMConfig {
	return MEMMConfig{
		GridSize:    gridSize,
		Teleporters: 16,
		Generators:  16,
		Purifiers:   8,
		Seeds:       simulate.SeedRange(5),
	}
}

// MEMMData is the kernel comparison: the rendered table plus the sweep
// tally (for cache-hit reporting).
type MEMMData struct {
	// Table is the rendered kernel comparison.
	Table *report.Table
	// Sweep tallies the underlying runs, including cache hits.
	Sweep simulate.Summary
}

// MEMM compares the three Shor's-algorithm kernels under one
// allocation; all runs (kernels × layouts × seeds) execute concurrently
// through the sweep engine, deduplicated through the configured cache.
func MEMM(cfg MEMMConfig) (*MEMMData, error) {
	grid, err := mesh.NewGrid(cfg.GridSize, cfg.GridSize)
	if err != nil {
		return nil, err
	}
	seeds := cfg.Seeds
	if len(seeds) == 0 {
		seeds = simulate.SeedRange(5)
	}
	half := grid.Tiles() / 2
	space := simulate.Space{
		Grids:   []mesh.Grid{grid},
		Layouts: []simulate.Layout{simulate.HomeBase, simulate.MobileQubit},
		Resources: []simulate.Resources{
			{Teleporters: cfg.Teleporters, Generators: cfg.Generators, Purifiers: cfg.Purifiers},
		},
		Programs: []workload.Program{
			workload.QFT(grid.Tiles()),
			workload.ModMult(half),
			workload.ModExp(half/2, 1),
		},
		Seeds:   seeds,
		Options: []simulate.Option{simulate.WithFailureRate(cfg.FailureRate)},
	}
	cache := cfg.Cache
	if cache == nil {
		cache = simulate.NewCache(0)
	}
	points, err := simulate.Sweep(context.Background(), space, simulate.WithCache(cache))
	if err != nil {
		return nil, err
	}
	for _, pt := range points {
		if pt.Err != nil {
			return nil, pt.Err
		}
	}
	// Decode by point metadata (kernel name × layout), not position.
	type runKey struct {
		kernel string
		layout simulate.Layout
	}
	groups := make(map[runKey]stats.PointEnsemble, 6)
	for _, g := range stats.Group(points) {
		groups[runKey{g.Point.Program.Name, g.Point.Layout}] = g
	}
	tab := report.NewTable(
		fmt.Sprintf("Shor kernels on a %dx%d mesh (t=%d g=%d p=%d, %d seeds, 95%% CI)",
			cfg.GridSize, cfg.GridSize, cfg.Teleporters, cfg.Generators, cfg.Purifiers, len(seeds)),
		"Kernel", "Layout", "Ops", "MeanPairsDelivered", "MeanPairHops", "MeanExec", "ExecCI95", "MeanChannelLatency")
	// The paper's table groups by kernel first.  Ops is a property of
	// the instruction stream, so it is seed-invariant; the traffic
	// counts vary under failure injection and are reported as ensemble
	// means like the latencies.
	for _, prog := range space.Programs {
		for _, layout := range space.Layouts {
			g, ok := groups[runKey{prog.Name, layout}]
			if !ok {
				return nil, fmt.Errorf("figures: %s/%v missing from sweep results", prog.Name, layout)
			}
			e := g.Ensemble
			tab.AddRow(prog.Name, layout.String(), g.Results[0].Ops,
				e.PairsDelivered.Mean, e.PairHops.Mean,
				e.MeanExec().String(),
				fmt.Sprintf("± %s", time.Duration(e.Exec.CI(0.95).Half()*float64(time.Second))),
				time.Duration(e.ChannelLatency.Mean*float64(time.Second)).String())
		}
	}
	return &MEMMData{Table: tab, Sweep: simulate.Summarize(points)}, nil
}
